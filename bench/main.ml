(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation (Section 6) and times the search with Bechamel.

    {v
    dune exec bench/main.exe                 -- everything
    dune exec bench/main.exe -- --only fig5  -- one artifact
    dune exec bench/main.exe -- --list       -- list artifact ids
    dune exec bench/main.exe -- --smoke      -- fast CI subset
    v}

    Artifacts: fig4 fig5 fig6 fig7 fig8 fig9 fig10 (balance / cycles /
    area sweeps), tab2 (speedups), frac (fraction of the space searched),
    acc (estimate accuracy after the P&R model), ablation (contribution
    of each transformation), json (machine-readable DSE perf trajectory,
    written to BENCH_dse.json), speed (Bechamel timing of the search).

    [--smoke] runs a reduced subset with small sweep lattices and a
    throwaway JSON file; the test suite executes it on every [dune
    runtest] so the bench code cannot bit-rot silently. *)

module Design = Dse.Design
module Search = Dse.Search
module Space = Dse.Space
module Estimate = Hls.Estimate

let capacity = Hls.Device.default.Hls.Device.capacity_slices

(** Smoke mode: tiny sweep lattices, temp-file JSON, fast artifact
    subset — exercised from the test suite. *)
let smoke = ref false

let sweep_product () = if !smoke then 16 else 256

let ctx ?(pipelined = true) ?incremental name =
  let k = Option.get (Kernels.find name) in
  let profile = Estimate.default_profile ~pipelined () in
  Design.context ~profile ?incremental k

let divisors = Dse.Util.divisors

let vec_str v =
  "(" ^ String.concat "," (List.map (fun (_, u) -> string_of_int u) v) ^ ")"

(* ------------------------------------------------------------------ *)
(* Figures 4-10: balance, cycles, area as functions of unroll factors *)

type sweep_axes = {
  outer : string;  (** curve parameter *)
  inner : string;  (** x axis *)
  outer_vals : int list;
  inner_vals : int list;
}

let axes_of name =
  let k = Option.get (Kernels.find name) in
  let spine = Ir.Loop_nest.spine k.Ir.Ast.k_body in
  match spine with
  | o :: i :: _ ->
      let touter = Ir.Ast.loop_trip o and tinner = Ir.Ast.loop_trip i in
      {
        outer = o.Ir.Ast.index;
        inner = i.Ir.Ast.index;
        outer_vals = List.filteri (fun idx _ -> idx < 5) (divisors touter);
        inner_vals = divisors tinner;
      }
  | _ -> invalid_arg "axes_of: kernel too shallow"

let figure ~id ~pipelined name =
  let axes = axes_of name in
  let c = ctx ~pipelined name in
  let selected = (Search.run c).Search.selected.Design.vector in
  Printf.printf
    "## %s: %s, %s memory -- balance / execution cycles / area(slices)\n" id
    (String.uppercase_ascii name)
    (if pipelined then "pipelined" else "non-pipelined");
  Printf.printf
    "#  rows: outer loop %s unroll; columns: inner loop %s unroll\n\
     #  (*) = design selected by the search; '-' = over capacity (%d slices)\n"
    axes.outer axes.inner capacity;
  let eval uo ui = Design.evaluate c [ (axes.outer, uo); (axes.inner, ui) ] in
  let points =
    List.map
      (fun uo -> (uo, List.map (fun ui -> (ui, eval uo ui)) axes.inner_vals))
      axes.outer_vals
  in
  let header () =
    Printf.printf "%-8s" (axes.outer ^ "\\" ^ axes.inner);
    List.iter (fun ui -> Printf.printf "%10d" ui) axes.inner_vals;
    print_newline ()
  in
  let mark uo ui s =
    let v = [ (axes.outer, uo); (axes.inner, ui) ] in
    if Design.vector_equal (Design.normalize_vector c v) selected then s ^ "*"
    else s
  in
  let table title render =
    Printf.printf "\n%s\n" title;
    header ();
    List.iter
      (fun (uo, row) ->
        Printf.printf "%-8d" uo;
        List.iter
          (fun (ui, (p : Design.point)) ->
            Printf.printf "%10s" (mark uo ui (render p)))
          row;
        print_newline ())
      points
  in
  table "balance B = F/C" (fun p ->
      let b = Design.balance p in
      if b > 999.0 then "inf" else Printf.sprintf "%.3f" b);
  table "execution cycles" (fun p -> string_of_int (Design.cycles p));
  table "area (slices)" (fun p ->
      let s = Design.space p in
      if s > capacity then "-" else string_of_int s);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Table 2: speedups of the selected design over the baseline *)

let paper_speedups =
  (* Table 2 of the paper, for side-by-side comparison. *)
  [
    ("fir", (7.67, 5.56));
    ("mm", (17.26, 7.53));
    ("jac", (4.55, 34.61));
    ("pat", (13.36, 4.01));
    ("sobel", (3.87, 3.90));
  ]

let table2 () =
  Printf.printf
    "## tab2: Speedup of the selected design over the baseline (no unrolling)\n";
  Printf.printf "%-8s %18s %18s %14s %14s\n" "kernel" "non-pipelined"
    "pipelined" "paper(non-p.)" "paper(pipe.)";
  List.iter
    (fun name ->
      let speedup pipelined =
        let c = ctx ~pipelined name in
        let r = Search.run c in
        let base = Design.evaluate c (Design.ubase c) in
        float_of_int (Design.cycles base)
        /. float_of_int (Design.cycles r.Search.selected)
      in
      let pn, pp = List.assoc name paper_speedups in
      Printf.printf "%-8s %18.2f %18.2f %14.2f %14.2f\n" name (speedup false)
        (speedup true) pn pp)
    Kernels.names;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Fraction of the design space searched (Section 6.3) *)

let fraction () =
  Printf.printf
    "## frac: designs synthesized by the search vs. the full design space\n";
  Printf.printf "%-8s %-6s %8s %10s %10s %16s %9s\n" "kernel" "mem" "evals"
    "space" "searched" "selected" "vs best";
  let total = ref 0 and totsp = ref 0 in
  let evals = ref 0 and hits = ref 0 and pruned = ref 0 in
  let smhits = ref 0 in
  (* One pool of worker domains for all twenty sweeps: the domain-spawn
     cost is paid once per artifact, not once per sweep. *)
  Engine.Pool.with_pool (Space.default_jobs ()) @@ fun pool ->
  List.iter
    (fun pipelined ->
      List.iter
        (fun name ->
          let c = ctx ~pipelined name in
          let r = Search.run c in
          let visited = Search.designs_evaluated r in
          (* The sweep oracle itself runs two-tier: tier-1 bounds prune
             points that provably cannot beat the best fitting design,
             without changing which design that is. *)
          let sp =
            Space.sweep ~max_product:(sweep_product ()) ~prune:true ~pool c
          in
          evals := !evals + c.Design.stats.Design.evaluations;
          hits := !hits + c.Design.stats.Design.cache_hits;
          pruned := !pruned + sp.Space.pruned;
          smhits := !smhits + c.Design.stats.Design.sched_memo_hits;
          let best = Option.get (Space.best_fitting c sp) in
          let ratio =
            float_of_int (Design.cycles r.Search.selected)
            /. float_of_int (Design.cycles best.Space.point)
          in
          total := !total + visited;
          totsp := !totsp + sp.Space.total_designs;
          Printf.printf "%-8s %-6s %8d %10d %9.2f%% %16s %8.2fx\n" name
            (if pipelined then "pipe" else "nonp")
            visited sp.Space.total_designs
            (100.0 *. Space.fraction_searched sp ~visited)
            (vec_str r.Search.selected.Design.vector)
            ratio)
        Kernels.names)
    [ true; false ];
  Printf.printf "%-8s %-6s %8d %10d %9.2f%%\n" "overall" "" !total !totsp
    (100.0 *. float_of_int !total /. float_of_int !totsp);
  Printf.printf
    "# stats: %d designs synthesized, %d served from the evaluation cache, \
     %d sweep points pruned by quick estimates, %d block tri-schedules \
     served from the fingerprint memo\n"
    !evals !hits !pruned !smhits;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Machine-readable DSE performance trajectory: BENCH_dse.json *)

(* Hand-rolled serialization — the repo carries no JSON dependency and
   the schema is flat. *)
let json_of_fields fields =
  "{"
  ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k v) fields)
  ^ "}"

(** Directory for the session phase's persistent store; settable with
    [--cache-dir] so CI can carry it across jobs. Without the flag a
    throwaway directory is used and removed afterwards. *)
let bench_cache_dir : string option ref = ref None

(** Per kernel: search wall time and evaluations, selected design, the
    exhaustive-sweep wall time with and without tier-1 pruning on fresh
    contexts (sequential, so the times are comparable), and the batched
    session's cold-vs-warm wall times over the persistent store. Emitted
    as one JSON document so the perf trajectory is trackable across PRs. *)
let dse_json () =
  let file =
    if !smoke then Filename.temp_file "BENCH_dse" ".json" else "BENCH_dse.json"
  in
  let mp = sweep_product () in
  Printf.printf "## json: DSE performance counters -> %s\n" file;
  (* Session phase: the paper's five kernels as one batched session over
     a persistent store — cold (loads ignored, results saved), then warm
     (everything served from the store). The warm run must perform zero
     full syntheses and select bit-identical designs; smoke mode asserts
     both, so CI catches a persistence regression. *)
  let session_dir, transient =
    match !bench_cache_dir with
    | Some d -> (d, false)
    | None ->
        let f = Filename.temp_file "defacto-bench-cache" "" in
        Sys.remove f;
        (f, true)
  in
  let tasks =
    List.map
      (fun name -> { Engine.name; kernel = Option.get (Kernels.find name) })
      Kernels.names
  in
  let cold_session =
    Dse.Driver.run_many ~cache_dir:session_dir ~cold:true ~jobs:1 tasks
  in
  let warm_session = Dse.Driver.run_many ~cache_dir:session_dir ~jobs:1 tasks in
  if transient then ignore (Engine.Persist.clear ~cache_dir:session_dir);
  let session_extra =
    List.map2
      (fun (c : Dse.Driver.outcome) (w : Dse.Driver.outcome) ->
        let unchanged =
          Design.vector_equal c.Dse.Driver.search.Search.selected.Design.vector
            w.Dse.Driver.search.Search.selected.Design.vector
        in
        if !smoke then begin
          if w.Dse.Driver.stats.Design.evaluations <> 0 then
            failwith
              (Printf.sprintf
                 "warm session synthesized %d design(s) for %s (want 0)"
                 w.Dse.Driver.stats.Design.evaluations
                 c.Dse.Driver.task.Engine.name);
          if not unchanged then
            failwith
              ("warm session selected a different design for "
             ^ c.Dse.Driver.task.Engine.name)
        end;
        ( c.Dse.Driver.task.Engine.name,
          [
            ( "search_seconds_cold_session",
              Printf.sprintf "%.6f" c.Dse.Driver.wall_seconds );
            ( "search_seconds_warm",
              Printf.sprintf "%.6f" w.Dse.Driver.wall_seconds );
            ( "warm_syntheses",
              string_of_int w.Dse.Driver.stats.Design.evaluations );
            ("warm_loaded_points", string_of_int w.Dse.Driver.loaded_points);
            ( "session_sched_memo_hits",
              string_of_int c.Dse.Driver.stats.Design.sched_memo_hits );
            ("warm_selection_unchanged", if unchanged then "true" else "false");
          ] ))
      cold_session.Dse.Driver.outcomes warm_session.Dse.Driver.outcomes
  in
  Printf.printf
    "#  session: cold %d syntheses, warm %d; %d cross-kernel memo shapes\n"
    cold_session.Dse.Driver.total.Design.evaluations
    warm_session.Dse.Driver.total.Design.evaluations
    cold_session.Dse.Driver.sched_memo_shapes;
  Printf.printf "%-8s %10s %8s %12s %11s %12s %8s %8s %8s %7s %6s %11s %6s\n"
    "kernel" "search(ms)" "evals" "sweep(ms)" "noinc(ms)" "pruned(ms)" "synth"
    "pruned" "smhits" "region" "delta" "verify(ms)" "viol";
  (* Kernels on which the joint configuration sweep beat the unroll-only
     sweep outright (fewer cycles, or fewer slices at equal cycles). *)
  let joint_wins = ref 0 in
  let entries =
    List.map
      (fun name ->
        let c = ctx name in
        let t0 = Dse.Util.now () in
        let r = Search.run c in
        let t_search = Dse.Util.now () -. t0 in
        (* Exhaustive and two-tier sweeps on fresh contexts: same
           lattice, cold caches, one domain each, so wall times and
           synthesis counts are directly comparable. *)
        let c_full = ctx name in
        let gc0 = Gc.minor_words () in
        let t0 = Dse.Util.now () in
        let sp_full = Space.sweep ~max_product:mp ~jobs:1 c_full in
        let t_full = Dse.Util.now () -. t0 in
        let gc_full = Gc.minor_words () -. gc0 in
        (* The same lattice with the structure-sharing paths disabled
           ([--no-incremental]): no DFG arena, no region snapshots, no
           delta transform cache. Results must be field-for-field
           identical; the wall-time gap is the incremental machinery's
           contribution. *)
        let c_noinc = ctx ~incremental:false name in
        let t0 = Dse.Util.now () in
        let sp_noinc = Space.sweep ~max_product:mp ~jobs:1 c_noinc in
        let t_noinc = Dse.Util.now () -. t0 in
        let c_pruned = ctx name in
        let t0 = Dse.Util.now () in
        let sp_pruned = Space.sweep ~max_product:mp ~prune:true ~jobs:1 c_pruned in
        let t_pruned = Dse.Util.now () -. t0 in
        (* Verified sweep: same lattice with per-point translation
           validation ([--verify]); selections must be bit-identical and
           violations zero on the paper kernels. *)
        let c_verified =
          let k = Option.get (Kernels.find name) in
          Design.context ~profile:(Estimate.default_profile ()) ~verify:true k
        in
        let t0 = Dse.Util.now () in
        let sp_verified = Space.sweep ~max_product:mp ~jobs:1 c_verified in
        let t_verified = Dse.Util.now () -. t0 in
        (* Joint configuration space: same product bound, fresh context,
           sequential — comparable with the sweeps above. The smoke
           asserts the joint winner is never behind the unroll-only
           winner (the joint space is a superset, and the pruning is
           admissible). *)
        let c_joint = ctx name in
        let t0 = Dse.Util.now () in
        let jt = Space.sweep_joint ~max_product:mp c_joint in
        let t_joint = Dse.Util.now () -. t0 in
        let best_full = Option.get (Space.best_fitting c_full sp_full) in
        let best_noinc = Option.get (Space.best_fitting c_noinc sp_noinc) in
        let best_pruned = Option.get (Space.best_fitting c_pruned sp_pruned) in
        let best_verified = Option.get (Space.best_fitting c_verified sp_verified) in
        if !smoke then begin
          (* The incremental and from-scratch sweeps must agree point for
             point, not just on the winner. *)
          List.iter2
            (fun (a : Space.sweep_point) (b : Space.sweep_point) ->
              if
                not
                  (Design.vector_equal a.Space.vector b.Space.vector
                  && Design.cycles a.Space.point = Design.cycles b.Space.point
                  && Design.space a.Space.point = Design.space b.Space.point)
              then
                failwith
                  (Printf.sprintf
                     "incremental sweep diverged from --no-incremental on %s \
                      at %s"
                     name (vec_str a.Space.vector)))
            sp_full.Space.points sp_noinc.Space.points
        end;
        let sched_memo_hits =
          c.Design.stats.Design.sched_memo_hits
          + c_full.Design.stats.Design.sched_memo_hits
          + c_pruned.Design.stats.Design.sched_memo_hits
        in
        let jb = Option.get (Space.joint_best c_joint jt) in
        let jb_cycles = Design.cycles jb.Space.point in
        let jb_slices = Design.space jb.Space.point in
        let ub_cycles = Design.cycles best_full.Space.point in
        let ub_slices = Design.space best_full.Space.point in
        let joint_strictly_better =
          jb_cycles < ub_cycles || (jb_cycles = ub_cycles && jb_slices < ub_slices)
        in
        if joint_strictly_better then incr joint_wins;
        if !smoke && jb_cycles > ub_cycles then
          failwith
            (Printf.sprintf
               "joint sweep selected a slower design than unroll-only on %s \
                (%d vs %d cycles)"
               name jb_cycles ub_cycles);
        Printf.printf
          "%-8s %10.1f %8d %12.1f %11.1f %12.1f %8d %8d %8d %7d %6d %11.1f \
           %6d\n"
          name
          (1000.0 *. t_search)
          r.Search.stats.Design.evaluations
          (1000.0 *. t_full) (1000.0 *. t_noinc) (1000.0 *. t_pruned)
          c_pruned.Design.stats.Design.evaluations sp_pruned.Space.pruned
          sched_memo_hits c_full.Design.stats.Design.region_memo_hits
          c_full.Design.stats.Design.delta_reuses
          (1000.0 *. t_verified)
          c_verified.Design.stats.Design.verify_violations;
        Printf.printf
          "#  joint %-8s %d cfgs -> %d evald (%d illegal, %d redundant, %d \
           bound-pruned) in %.1f ms; best %s c=%d s=%d%s\n"
          name jt.Space.space_size
          (List.length jt.Space.points)
          jt.Space.pruned_illegal jt.Space.pruned_redundant
          jt.Space.pruned_bound (1000.0 *. t_joint)
          (Design.config_to_string jb.Space.config)
          jb_cycles jb_slices
          (if joint_strictly_better then " (beats unroll-only)" else "");
        json_of_fields
          ([
            ("kernel", Printf.sprintf "%S" name);
            ("search_seconds", Printf.sprintf "%.6f" t_search);
            ( "search_evaluations",
              string_of_int r.Search.stats.Design.evaluations );
            ( "selected_vector",
              Printf.sprintf "%S" (vec_str r.Search.selected.Design.vector) );
            ( "selected_cycles",
              string_of_int (Design.cycles r.Search.selected) );
            ("sweep_max_product", string_of_int mp);
            ("sweep_points", string_of_int (List.length sp_full.Space.points));
            ("sweep_seconds_full", Printf.sprintf "%.6f" t_full);
            ("sweep_seconds_pruned", Printf.sprintf "%.6f" t_pruned);
            ( "sweep_evaluations_full",
              string_of_int c_full.Design.stats.Design.evaluations );
            ( "sweep_evaluations_pruned",
              string_of_int c_pruned.Design.stats.Design.evaluations );
            ( "sweep_cache_hits_pruned",
              string_of_int c_pruned.Design.stats.Design.cache_hits );
            ( "quick_estimates",
              string_of_int c_pruned.Design.stats.Design.quick_estimates );
            ("pruned", string_of_int sp_pruned.Space.pruned);
            ("sched_memo_hits", string_of_int sched_memo_hits);
            ( "search_sched_memo_hits",
              string_of_int r.Search.stats.Design.sched_memo_hits );
            ( "sweep_sched_memo_hits_full",
              string_of_int c_full.Design.stats.Design.sched_memo_hits );
            ( "sweep_sched_memo_hits_pruned",
              string_of_int c_pruned.Design.stats.Design.sched_memo_hits );
            ( "sweep_sched_memo_shapes_full",
              string_of_int (Design.sched_memo_size c_full) );
            ( "sweep_dfg_seconds_full",
              Printf.sprintf "%.6f" c_full.Design.stats.Design.dfg_seconds );
            ( "sweep_schedule_seconds_full",
              Printf.sprintf "%.6f" c_full.Design.stats.Design.schedule_seconds
            );
            ( "sweep_layout_seconds_full",
              Printf.sprintf "%.6f" c_full.Design.stats.Design.layout_seconds );
            ( "sweep_transform_seconds_full",
              Printf.sprintf "%.6f"
                c_full.Design.stats.Design.transform_seconds );
            ( "sweep_estimate_seconds_full",
              Printf.sprintf "%.6f" c_full.Design.stats.Design.estimate_seconds
            );
            ( "sweep_region_memo_hits_full",
              string_of_int c_full.Design.stats.Design.region_memo_hits );
            ( "sweep_delta_reuses_full",
              string_of_int c_full.Design.stats.Design.delta_reuses );
            ("sweep_gc_minor_mwords_full", Printf.sprintf "%.3f" (gc_full /. 1e6));
            ("sweep_seconds_noincremental", Printf.sprintf "%.6f" t_noinc);
            ( "incremental_selection_unchanged",
              if
                Design.vector_equal best_full.Space.vector
                  best_noinc.Space.vector
                && Design.cycles best_full.Space.point
                   = Design.cycles best_noinc.Space.point
              then "true"
              else "false" );
            ( "best_cycles_full",
              string_of_int (Design.cycles best_full.Space.point) );
            ( "best_cycles_pruned",
              string_of_int (Design.cycles best_pruned.Space.point) );
            ("sweep_seconds_verified", Printf.sprintf "%.6f" t_verified);
            ( "checked_points",
              string_of_int c_verified.Design.stats.Design.checked_points );
            ( "verify_violations",
              string_of_int c_verified.Design.stats.Design.verify_violations );
            ( "flow_builds_verified",
              string_of_int c_verified.Design.stats.Design.flow_builds );
            ( "flow_solves_verified",
              string_of_int c_verified.Design.stats.Design.flow_solves );
            ( "flow_seconds_verified",
              Printf.sprintf "%.6f" c_verified.Design.stats.Design.flow_seconds
            );
            ( "verified_selection_unchanged",
              if
                Design.vector_equal best_full.Space.vector
                  best_verified.Space.vector
              then "true"
              else "false" );
            ( "selection_unchanged",
              if
                Design.vector_equal best_full.Space.vector
                  best_pruned.Space.vector
              then "true"
              else "false" );
            ("joint_space_size", string_of_int jt.Space.space_size);
            ("joint_pruned_illegal", string_of_int jt.Space.pruned_illegal);
            ( "joint_pruned_redundant",
              string_of_int jt.Space.pruned_redundant );
            ("joint_pruned_bound", string_of_int jt.Space.pruned_bound);
            ("joint_evaluated", string_of_int (List.length jt.Space.points));
            ("joint_seconds", Printf.sprintf "%.6f" t_joint);
            ( "joint_selection",
              Printf.sprintf "%S" (Design.config_to_string jb.Space.config) );
            ("joint_selection_cycles", string_of_int jb_cycles);
            ("joint_selection_slices", string_of_int jb_slices);
            ("unroll_selection_cycles", string_of_int ub_cycles);
            ( "joint_strictly_better",
              if joint_strictly_better then "true" else "false" );
          ]
          @ List.assoc name session_extra))
      Kernels.names
  in
  (* At the smoke lattice (unroll product <= 16) the joint winner often
     ties the unroll-only winner; widen fir's lattice enough to show the
     strict win the full bench records, so CI still covers it. *)
  if !joint_wins = 0 then begin
    let c_u = ctx "fir" in
    let su = Space.sweep ~max_product:128 ~jobs:1 c_u in
    let bu = Option.get (Space.best_fitting c_u su) in
    let c_j = ctx "fir" in
    let jt = Space.sweep_joint ~max_product:128 c_j in
    let jb = Option.get (Space.joint_best c_j jt) in
    let better =
      Design.cycles jb.Space.point < Design.cycles bu.Space.point
      || Design.cycles jb.Space.point = Design.cycles bu.Space.point
         && Design.space jb.Space.point < Design.space bu.Space.point
    in
    Printf.printf
      "#  joint fir @ product<=128: best %s c=%d s=%d vs unroll-only c=%d \
       s=%d\n"
      (Design.config_to_string jb.Space.config)
      (Design.cycles jb.Space.point)
      (Design.space jb.Space.point)
      (Design.cycles bu.Space.point)
      (Design.space bu.Space.point);
    if better then incr joint_wins
  end;
  if !smoke && !joint_wins = 0 then
    failwith "joint sweep strictly beat unroll-only on no kernel";
  let oc = open_out file in
  output_string oc ("[\n  " ^ String.concat ",\n  " entries ^ "\n]\n");
  close_out oc;
  if !smoke then Sys.remove file;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Section 6.4: accuracy of estimates vs implemented designs *)

let accuracy () =
  Printf.printf
    "## acc: behavioral estimates vs. implemented designs (P&R model)\n";
  Printf.printf "%-8s %-22s %8s %8s %10s %9s %9s\n" "kernel" "design" "cycles"
    "cyc(P&R)" "clock(ns)" "slices" "sl(P&R)";
  List.iter
    (fun name ->
      let c = ctx name in
      let r = Search.run c in
      let show label (p : Design.point) =
        let impl = Hls.Lowlevel.place_and_route p.Design.estimate in
        Printf.printf "%-8s %-22s %8d %8d %10.1f %9d %9d\n" name
          (label ^ vec_str p.Design.vector)
          (Design.cycles p) impl.Hls.Lowlevel.cycles
          impl.Hls.Lowlevel.achieved_clock_ns (Design.space p)
          impl.Hls.Lowlevel.actual_slices
      in
      show "baseline" (Design.evaluate c (Design.ubase c));
      show "selected" r.Search.selected;
      let big =
        Design.evaluate c
          (List.map
             (fun (l : Ir.Ast.loop) ->
               (l.Ir.Ast.index, min 16 (Ir.Ast.loop_trip l)))
             c.Design.spine)
      in
      show "large" big)
    Kernels.names;
  Printf.printf
    "# expected shapes: cycles identical; clock degradation small for\n\
     # selected designs, large for over-sized ones; slices grow super-linearly.\n\n"

(* ------------------------------------------------------------------ *)
(* Ablation: contribution of each transformation to the selected design *)

let ablation () =
  Printf.printf
    "## ablation: selected-design cycles per compiler configuration\n";
  Printf.printf "%-8s %10s %12s %12s %12s %12s\n" "kernel" "full" "no-banks"
    "no-chains" "no-replace" "1-memory";
  List.iter
    (fun name ->
      let run ?(memories = 4) scalar =
        let k = Option.get (Kernels.find name) in
        let device =
          { Hls.Device.default with Hls.Device.num_memories = memories }
        in
        let profile = { (Estimate.default_profile ()) with Estimate.device } in
        let pipeline = { Transform.Pipeline.default with scalar } in
        let c = Design.context ~profile ~pipeline k in
        let r = Search.run c in
        Design.cycles r.Search.selected
      in
      let dflt = Transform.Scalar_replace.default_config in
      Printf.printf "%-8s %10d %12d %12d %12d %12d\n" name (run dflt)
        (run { dflt with across_loops = false })
        (run { dflt with chains = false })
        (run { dflt with across_loops = false; chains = false; max_registers = 0 })
        (run ~memories:1 dflt))
    Kernels.names;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Gallery: the search on the wider application class the paper's
   Section 2.4 motivates (no paper analogue; generalization evidence) *)

let gallery () =
  Printf.printf
    "## gallery: exploration on the extended kernel suite (pipelined)\n";
  Printf.printf "%-12s %16s %10s %10s %10s %10s\n" "kernel" "selected" "cycles"
    "slices" "balance" "speedup";
  List.iter
    (fun name ->
      let k = Option.get (Gallery.find name) in
      let profile = Estimate.default_profile () in
      let c = Design.context ~profile k in
      let r = Search.run c in
      let base = Design.evaluate c (Design.ubase c) in
      let sel = r.Search.selected in
      Printf.printf "%-12s %16s %10d %10d %10.3f %9.2fx\n" name
        (vec_str sel.Design.vector) (Design.cycles sel) (Design.space sel)
        (Design.balance sel)
        (float_of_int (Design.cycles base) /. float_of_int (Design.cycles sel)))
    Gallery.names;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Bechamel: wall-clock of one full search per kernel (the paper: under
   five minutes per kernel on year-2002 hardware; ours run in
   milliseconds) *)

let bechamel_speed () =
  let open Bechamel in
  let test name =
    Test.make ~name (Staged.stage (fun () -> ignore (Search.run (ctx name))))
  in
  let tests =
    Test.make_grouped ~name:"dse-search" (List.map test Kernels.names)
  in
  Printf.printf "## speed: one full design space exploration per kernel\n";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] in
  List.iter
    (fun name ->
      match Analyze.OLS.estimates (Hashtbl.find results name) with
      | Some [ est ] -> Printf.printf "%-28s %10.3f ms/search\n" name (est /. 1e6)
      | _ -> ())
    (List.sort compare names);
  Printf.printf "# paper: the search ran in under 5 minutes per kernel.\n\n"

(* ------------------------------------------------------------------ *)

let artifacts : (string * (unit -> unit)) list =
  [
    ("fig4", fun () -> figure ~id:"fig4" ~pipelined:false "fir");
    ("fig5", fun () -> figure ~id:"fig5" ~pipelined:true "fir");
    ("fig6", fun () -> figure ~id:"fig6" ~pipelined:false "mm");
    ("fig7", fun () -> figure ~id:"fig7" ~pipelined:true "mm");
    ("fig8", fun () -> figure ~id:"fig8" ~pipelined:true "jac");
    ("fig9", fun () -> figure ~id:"fig9" ~pipelined:true "pat");
    ("fig10", fun () -> figure ~id:"fig10" ~pipelined:true "sobel");
    ("tab2", table2);
    ("frac", fraction);
    ("json", dse_json);
    ("acc", accuracy);
    ("ablation", ablation);
    ("gallery", gallery);
    ("speed", bechamel_speed);
  ]

(** The CI subset: one figure, the speedup table, the two-tier sweep
    statistics and the JSON emitter — every distinct code path, small
    lattices, no Bechamel sampling. *)
let smoke_artifacts = [ "fig5"; "tab2"; "frac"; "json" ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec strip = function
    | [] -> []
    | "--smoke" :: rest ->
        smoke := true;
        strip rest
    | "--cache-dir" :: dir :: rest ->
        bench_cache_dir := Some dir;
        strip rest
    | a :: rest -> a :: strip rest
  in
  let args = strip args in
  match args with
  | [ "--list" ] -> List.iter (fun (id, _) -> print_endline id) artifacts
  | [ "--only"; id ] -> (
      match List.assoc_opt id artifacts with
      | Some f -> f ()
      | None ->
          prerr_endline ("unknown artifact " ^ id);
          exit 1)
  | [] ->
      Printf.printf
        "# DEFACTO-style design space exploration - evaluation reproduction\n";
      Printf.printf "# device: %s, %d memories, clock %.0f ns\n\n"
        Hls.Device.default.Hls.Device.name
        Hls.Device.default.Hls.Device.num_memories
        Hls.Device.default.Hls.Device.clock_ns;
      let ids = if !smoke then smoke_artifacts else List.map fst artifacts in
      List.iter (fun id -> (List.assoc id artifacts) ()) ids
  | _ ->
      prerr_endline
        "usage: main.exe [--smoke] [--cache-dir DIR] [--list | --only \
         <artifact>]";
      exit 1
