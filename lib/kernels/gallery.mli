(** Extended kernel gallery: the rest of the application class the paper
    motivates (image correlation, Laplacian, erosion/dilation, ...), plus
    affine staples (1D convolution, transpose, strided downsampling) and
    one deliberately non-affine kernel (histogram) that every analysis
    must reject gracefully. *)

val corr_src : string
val laplace_src : string
val erosion_src : string
val dilation_src : string
val conv1d_src : string
val transpose_src : string
val boxblur_src : string
val downsample_src : string
val histogram_src : string
val all : (string * Ir.Ast.kernel lazy_t) list
val find : string -> Ir.Ast.kernel option
val names : string list
