(** The five multimedia kernels of the paper's evaluation (Section 6.1),
    at the paper's problem sizes, as C-subset source text parsed through
    the front end — exactly how DEFACTO consumed C. *)

val fir_src : string  (** FIR filter: 32-tap MAC over a 64-entry output *)

val mm_src : string  (** 32x16 by 16x4 integer matrix multiply *)

val pat_src : string  (** pattern of length 16 over a string of 64 *)

val jac_src : string  (** 4-point Jacobi stencil on 32x32 *)

val sobel_src : string  (** 3x3 Sobel edge detection on 32x32 *)

(** Parsed on first use; name -> kernel. *)
val all : (string * Ir.Ast.kernel lazy_t) list

val find : string -> Ir.Ast.kernel option
val names : string list

(** Deterministic pseudo-random inputs for functional testing: every
    array of the kernel filled from a per-array-seeded LCG, wrapped to
    its element type. *)
val test_inputs : ?seed:int -> Ir.Ast.kernel -> (string * int array) list
