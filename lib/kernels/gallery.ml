(** Extended kernel gallery: the rest of the application class the paper
    motivates (Section 2.4 names image correlation, Laplacian operators,
    erosion/dilation, edge detection) plus other affine staples. These
    exercise shapes the five benchmarks do not: 2D windows with
    parameter arrays, pure max/min reductions, boundary-shifted
    accesses, transposition, and a non-affine access pattern the
    analyses must reject gracefully. *)

(** 2D image correlation with a 3x3 template. *)
let corr_src =
  {|
  unsigned char img[34][34];
  short t[3][3];
  int corr[32][32];
  for (i = 0; i < 32; i++)
    for (j = 0; j < 32; j++)
      for (di = 0; di < 3; di++)
        for (dj = 0; dj < 3; dj++)
          corr[i][j] = corr[i][j] + img[i+di][j+dj] * t[di][dj];
|}

(** 5-point Laplacian operator. *)
let laplace_src =
  {|
  short A[32][32];
  short L[32][32];
  for (i = 1; i < 31; i++)
    for (j = 1; j < 31; j++)
      L[i][j] = A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1] - 4 * A[i][j];
|}

(** Grayscale erosion: minimum over a 3x3 window. *)
let erosion_src =
  {|
  unsigned char img[34][34];
  unsigned char out[32][32];
  for (i = 0; i < 32; i++)
    for (j = 0; j < 32; j++)
      out[i][j] = min(min(min(img[i][j],   img[i][j+1]),
                          min(img[i][j+2], img[i+1][j])),
                      min(min(img[i+1][j+1], img[i+1][j+2]),
                          min(min(img[i+2][j], img[i+2][j+1]), img[i+2][j+2])));
|}

(** Grayscale dilation: maximum over a 3x3 window. *)
let dilation_src =
  {|
  unsigned char img[34][34];
  unsigned char out[32][32];
  for (i = 0; i < 32; i++)
    for (j = 0; j < 32; j++)
      out[i][j] = max(max(max(img[i][j],   img[i][j+1]),
                          max(img[i][j+2], img[i+1][j])),
                      max(max(img[i+1][j+1], img[i+1][j+2]),
                          max(max(img[i+2][j], img[i+2][j+1]), img[i+2][j+2])));
|}

(** 1D convolution (boundary-free inner form). *)
let conv1d_src =
  {|
  short x[80];
  short h[16];
  int y[64];
  for (n = 0; n < 64; n++)
    for (k = 0; k < 16; k++)
      y[n] = y[n] + x[n+k] * h[k];
|}

(** Matrix transpose: pure data movement, no reuse to exploit. *)
let transpose_src =
  {|
  short A[24][16];
  short B[16][24];
  for (i = 0; i < 24; i++)
    for (j = 0; j < 16; j++)
      B[j][i] = A[i][j];
|}

(** Box blur with a shift instead of a division. *)
let boxblur_src =
  {|
  unsigned char img[34][34];
  unsigned char out[32][32];
  for (i = 0; i < 32; i++)
    for (j = 0; j < 32; j++)
      out[i][j] = (img[i][j] + img[i][j+1] + img[i][j+2]
                 + img[i+1][j] + img[i+1][j+1] + img[i+1][j+2]
                 + img[i+2][j] + img[i+2][j+1] + img[i+2][j+2]) / 8;
|}

(** Strided (even/odd) downsample: exercises non-unit access strides. *)
let downsample_src =
  {|
  short x[64];
  short y[32];
  for (i = 0; i < 32; i++)
    y[i] = x[2*i];
|}

(** Histogram: the subscript is a *data* value — non-affine; every
    analysis must fall back conservatively (single memory, no
    replacement) yet the flow must still produce a working design. *)
let histogram_src =
  {|
  unsigned char img[64];
  short hist[256];
  for (i = 0; i < 64; i++)
    hist[img[i]] = hist[img[i]] + 1;
|}

let parse name src =
  match Frontend.Parser.kernel_of_string_res ~name src with
  | Ok k -> k
  | Error msg -> failwith (Printf.sprintf "gallery kernel %s: %s" name msg)

let all : (string * Ir.Ast.kernel lazy_t) list =
  [
    ("corr", lazy (parse "corr" corr_src));
    ("laplace", lazy (parse "laplace" laplace_src));
    ("erosion", lazy (parse "erosion" erosion_src));
    ("dilation", lazy (parse "dilation" dilation_src));
    ("conv1d", lazy (parse "conv1d" conv1d_src));
    ("transpose", lazy (parse "transpose" transpose_src));
    ("boxblur", lazy (parse "boxblur" boxblur_src));
    ("downsample", lazy (parse "downsample" downsample_src));
    ("histogram", lazy (parse "histogram" histogram_src));
  ]

let find name = Option.map Lazy.force (List.assoc_opt name all)
let names = List.map fst all
