(** The five multimedia kernels of the paper's evaluation (Section 6.1),
    with the paper's problem sizes. Each kernel is provided as C-subset
    source text (exercising the front end exactly as DEFACTO consumed C)
    and is parsed on first use. *)

open Ir

(** Finite Impulse Response filter: integer multiply-accumulate over 32
    consecutive elements of a 64-element output — the paper's running
    example (Figure 1(a)). *)
let fir_src =
  {|
  int S[96];
  int C[32];
  int D[64];
  for (j = 0; j < 64; j++)
    for (i = 0; i < 32; i++)
      D[j] = D[j] + (S[i+j] * C[i]);
|}

(** Integer dense matrix multiply of a 32x16 matrix by a 16x4 matrix. *)
let mm_src =
  {|
  int A[32][16];
  int B[16][4];
  int C[32][4];
  for (i = 0; i < 32; i++)
    for (j = 0; j < 4; j++)
      for (k = 0; k < 16; k++)
        C[i][j] = C[i][j] + A[i][k] * B[k][j];
|}

(** String pattern matching: character matching operator of a pattern of
    length 16 over an input string of length 64. *)
let pat_src =
  {|
  unsigned char str[64];
  unsigned char pat[16];
  short M[49];
  for (j = 0; j < 49; j++)
    for (i = 0; i < 16; i++)
      M[j] = M[j] + (str[i+j] == pat[i]);
|}

(** Jacobi iteration: 4-point stencil averaging over a 32x32 array. *)
let jac_src =
  {|
  short A[32][32];
  short B[32][32];
  for (i = 1; i < 31; i++)
    for (j = 1; j < 31; j++)
      B[i][j] = (A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]) / 4;
|}

(** Sobel edge detection: 3x3 window Laplacian-style operator over an
    integer image, with magnitude clamping. *)
let sobel_src =
  {|
  unsigned char img[32][32];
  short edge[32][32];
  for (i = 1; i < 31; i++)
    for (j = 1; j < 31; j++)
      edge[i][j] = min(255,
        abs((img[i-1][j+1] + 2*img[i][j+1] + img[i+1][j+1])
          - (img[i-1][j-1] + 2*img[i][j-1] + img[i+1][j-1]))
        + abs((img[i+1][j-1] + 2*img[i+1][j] + img[i+1][j+1])
          - (img[i-1][j-1] + 2*img[i-1][j] + img[i-1][j+1])));
|}

let parse name src =
  match Frontend.Parser.kernel_of_string_res ~name src with
  | Ok k -> k
  | Error msg -> failwith (Printf.sprintf "kernel %s: %s" name msg)

let fir = lazy (parse "fir" fir_src)
let mm = lazy (parse "mm" mm_src)
let pat = lazy (parse "pat" pat_src)
let jac = lazy (parse "jac" jac_src)
let sobel = lazy (parse "sobel" sobel_src)

let all : (string * Ast.kernel lazy_t) list =
  [ ("fir", fir); ("mm", mm); ("pat", pat); ("jac", jac); ("sobel", sobel) ]

let find name =
  match List.assoc_opt (String.lowercase_ascii name) all with
  | Some k -> Some (Lazy.force k)
  | None -> None

let names = List.map fst all

(** Deterministic pseudo-random inputs for functional testing: every
    input array of [k] filled from a simple LCG seeded per array. *)
let test_inputs ?(seed = 42) (k : Ast.kernel) : (string * int array) list =
  let lcg state = (state * 1103515245) + 12345 land 0x3FFFFFFF in
  List.map
    (fun (a : Ast.array_decl) ->
      let n = Ast.array_size a in
      let state = ref (seed + Hashtbl.hash a.a_name) in
      let data =
        Array.init n (fun _ ->
            state := lcg !state;
            Dtype.wrap a.a_elem (!state lsr 7))
      in
      (a.a_name, data))
    k.k_arrays
