(** Datapath operator characterisation for a Virtex-class device.

    Behavioral synthesis binds each operation in the specification to a
    hardware operator; the estimator needs, per operator class and bit
    width, the area (device slices) and the combinational delay (which
    decides how many operations chain within one 40 ns clock cycle).
    Values are calibrated to late-1990s Virtex data books: ripple-carry
    adders use half a slice per bit, array multipliers grow quadratically,
    constant shifts are free routing. Absolute accuracy is not required —
    the DSE algorithm consumes relative areas and schedule lengths. *)

type op_class =
  | Add  (** also subtract *)
  | Mul
  | Div  (** iterative divider, non-constant divisor *)
  | Cmp
  | Logic  (** bitwise and boolean *)
  | Shift_const
  | Shift_var
  | Mux
  | Abs_op
  | Min_max

let class_name = function
  | Add -> "add"
  | Mul -> "mul"
  | Div -> "div"
  | Cmp -> "cmp"
  | Logic -> "logic"
  | Shift_const -> "shiftc"
  | Shift_var -> "shiftv"
  | Mux -> "mux"
  | Abs_op -> "abs"
  | Min_max -> "minmax"

(** Area in slices of one operator instance. *)
let area (c : op_class) ~width =
  let w = max 1 width in
  match c with
  | Add -> (w + 1) / 2
  | Mul -> max 4 (w * w / 3)
  | Div -> max 8 (w * w / 2)
  | Cmp -> (w + 1) / 2
  | Logic -> (w + 1) / 2
  | Shift_const -> 0
  | Shift_var -> w
  | Mux -> (w + 1) / 2
  | Abs_op -> w
  | Min_max -> w

(** Combinational delay in nanoseconds; operations chain within a clock
    cycle as long as the accumulated delay fits the period. *)
let delay_ns (c : op_class) ~width =
  let w = float_of_int (max 1 width) in
  match c with
  | Add -> 5.0 +. (0.35 *. w)
  | Mul -> 18.0 +. (0.55 *. w)
  | Div -> 10.0 *. w (* iterative; effectively multi-cycle *)
  | Cmp -> 4.0 +. (0.30 *. w)
  | Logic -> 3.0
  | Shift_const -> 0.5
  | Shift_var -> 8.0
  | Mux -> 3.5
  | Abs_op -> 6.0 +. (0.35 *. w)
  | Min_max -> 8.0 +. (0.30 *. w)

(** Bucket widths so that operator sharing treats near-equal widths as
    compatible (synthesis widens the narrower operand). *)
let width_bucket w = if w <= 8 then 8 else if w <= 16 then 16 else 32
