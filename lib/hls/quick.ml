(** Tier-1 analytical pre-estimator: closed-form lower bounds on a
    design point's cycles and slices computed directly from the *source*
    kernel — no transform pipeline, no DFG, no scheduling.

    The bounds are *admissible*: for every unroll vector they never
    exceed what the full Generate;Synthesize estimate would report, so
    the search and the sweep may skip full synthesis of any point whose
    lower bound already disqualifies it (cannot fit the device, or
    cannot beat the incumbent) without ever changing which design they
    select. Three sources of cost survive every transformation the
    pipeline can apply:

    - {b Memory traffic.} Each distinct element of a never-written array
      that an unguarded read touches must be fetched from memory at
      least once (scalar replacement can remove re-loads, never the
      first load), and each distinct element an unguarded write touches
      must be stored at least once. Every such access occupies a memory
      port for its occupancy window, and ports are serialized per
      memory, so [total occupancy / num_memories] cycles is a floor on
      both the joint and the memory-only schedules. The footprint is a
      property of the source kernel alone — unrolling does not change
      it — so it is computed once per kernel, in {!facts}.

    - {b Loop control.} The estimator charges one control cycle per
      executed iteration of every surviving loop. Unrolling by [u]
      divides a loop's trip count by [u]; peeling can strip at most the
      four innermost-chain refill iterations (wherever they land after
      cascading) plus one carrier iteration per loop per execution, and
      a loop whose residual trip reaches one is folded away — hence the
      per-loop slack of 6 in {!bound}. Loops none of whose subtree
      accesses vary with their index are granted no overhead at all
      (their bodies can in principle be hoisted empty).

    - {b Structural area.} The memory interface (18 slices), the FSM
      floor (4), the registers for the kernel's declared scalars (no
      pass removes a declaration), and one instance of each operator
      class that appears with both operands data-dependent (such an
      operation can be widened or shared but never constant-folded
      away; it is charged at the narrowest width bucket).

    Guarded accesses, accesses whose subscripts cannot be evaluated at
    compile time, and anything under a conditional contribute nothing —
    dropping work only loosens a lower bound. The one care is dead
    code: a read whose value is never used could in principle be
    removed by a cleverer pipeline than ours; none of our passes drops
    loads, so the traffic bound holds for the estimator as built. *)

open Ir
module Access = Analysis.Access

type t = {
  cycles_lb : int;  (** lower bound on [Estimate.cycles] *)
  mem_cycles_lb : int;  (** lower bound on [Estimate.mem_only_cycles] *)
  comp_cycles_lb : int;  (** lower bound on [Estimate.comp_only_cycles] *)
  slices_lb : int;  (** lower bound on [Estimate.slices] *)
  balance_trend : float;
      (** [comp_cycles_lb / mem_cycles_lb] — same shape as the balance
          metric, usable to anticipate which side saturates first *)
}

(* Loop-control skeleton of the source kernel: one node per loop not
   nested under a conditional, [live] when some unguarded access in its
   subtree varies with the index. *)
type ctl = { index : string; trip : int; live : bool; inner : ctl list }

type facts = {
  device : Device.t;
  mem : Memory_model.t;
  min_port_cycles : int;
      (** total memory-port occupancy cycles of the mandatory footprint *)
  struct_slices : int;
      (** memory interface + FSM floor + operator floor (no registers) *)
  scalar_bits : int;  (** register bits of the declared scalars *)
  ctl : ctl list;
}

(* ------------------------------------------------------------------ *)
(* Footprint enumeration *)

(* Compile-time evaluation of a subscript under the loop-index
   environment; [None] for anything data-dependent. *)
let rec eval env (e : Ast.expr) : int option =
  match e with
  | Ast.Int n -> Some n
  | Ast.Var v -> Hashtbl.find_opt env v
  | Ast.Arr _ | Ast.Cond _ -> None
  | Ast.Un (op, x) -> (
      match (op, eval env x) with
      | Ast.Neg, Some a -> Some (-a)
      | Ast.Abs, Some a -> Some (abs a)
      | _ -> None)
  | Ast.Bin (op, x, y) -> (
      match (eval env x, eval env y) with
      | Some a, Some b -> (
          match op with
          | Ast.Add -> Some (a + b)
          | Ast.Sub -> Some (a - b)
          | Ast.Mul -> Some (a * b)
          | Ast.Div -> if b = 0 then None else Some (a / b)
          | Ast.Mod -> if b = 0 then None else Some (a mod b)
          | Ast.Min -> Some (min a b)
          | Ast.Max -> Some (max a b)
          | Ast.Shl -> if b < 0 || b > 62 then None else Some (a lsl b)
          | Ast.Shr -> if b < 0 || b > 62 then None else Some (a asr b)
          | _ -> None)
      | _ -> None)

exception Out_of_budget

(* The iteration spaces of the paper's kernels are a few thousand
   points; anything far beyond that stops early and keeps the partial
   footprint, which is still a valid lower bound. *)
let footprint_budget = 200_000

(* Distinct elements touched by mandatory accesses: reads of arrays the
   kernel never writes, and all unguarded writes, keyed by evaluated
   subscript tuple. Conditional branches contribute nothing. *)
let footprint (k : Ast.kernel) ~(written : (string, unit) Hashtbl.t) =
  let reads : (string * int list, unit) Hashtbl.t = Hashtbl.create 256 in
  let writes : (string * int list, unit) Hashtbl.t = Hashtbl.create 256 in
  let env : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let budget = ref footprint_budget in
  let spend () =
    decr budget;
    if !budget < 0 then raise Out_of_budget
  in
  let subs_values subs =
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | s :: rest -> (
          match eval env s with Some v -> go (v :: acc) rest | None -> None)
    in
    go [] subs
  in
  let record tbl name subs =
    spend ();
    match subs_values subs with
    | Some vs -> Hashtbl.replace tbl (name, vs) ()
    | None -> ()
  in
  (* Reads anywhere in an unconditionally evaluated expression, including
     reads nested inside other subscripts. *)
  let rec expr_reads (e : Ast.expr) =
    match e with
    | Ast.Int _ | Ast.Var _ -> ()
    | Ast.Arr (name, subs) ->
        List.iter expr_reads subs;
        if not (Hashtbl.mem written name) then record reads name subs
    | Ast.Bin (_, a, b) ->
        expr_reads a;
        expr_reads b
    | Ast.Un (_, a) -> expr_reads a
    | Ast.Cond (c, _, _) -> expr_reads c (* branches evaluate conditionally *)
  in
  let rec walk (s : Ast.stmt) =
    match s with
    | Ast.Assign (lv, e) -> (
        expr_reads e;
        match lv with
        | Ast.Lvar _ -> ()
        | Ast.Larr (name, subs) ->
            List.iter expr_reads subs;
            record writes name subs)
    | Ast.If (c, _, _) -> expr_reads c (* guarded bodies are optional *)
    | Ast.Rotate _ -> ()
    | Ast.For l ->
        let saved = Hashtbl.find_opt env l.Ast.index in
        let v = ref l.Ast.lo in
        while !v < l.Ast.hi do
          spend ();
          Hashtbl.replace env l.Ast.index !v;
          List.iter walk l.Ast.body;
          v := !v + l.Ast.step
        done;
        (match saved with
        | Some x -> Hashtbl.replace env l.Ast.index x
        | None -> Hashtbl.remove env l.Ast.index)
  in
  (try List.iter walk k.Ast.k_body with Out_of_budget -> ());
  (Hashtbl.length reads, Hashtbl.length writes)

(* ------------------------------------------------------------------ *)
(* Area floor *)

let classify_bin (op : Ast.binop) : Op_model.op_class option =
  match op with
  | Ast.Add | Ast.Sub -> Some Op_model.Add
  | Ast.Mul -> Some Op_model.Mul
  | Ast.Div | Ast.Mod -> Some Op_model.Div
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> Some Op_model.Cmp
  | Ast.And | Ast.Or | Ast.Band | Ast.Bor | Ast.Bxor -> Some Op_model.Logic
  | Ast.Shl | Ast.Shr -> Some Op_model.Shift_var
  | Ast.Min | Ast.Max -> Some Op_model.Min_max

let rec mentions_array (e : Ast.expr) =
  match e with
  | Ast.Arr _ -> true
  | Ast.Int _ | Ast.Var _ -> false
  | Ast.Bin (_, a, b) -> mentions_array a || mentions_array b
  | Ast.Un (_, a) -> mentions_array a
  | Ast.Cond (a, b, c) ->
      mentions_array a || mentions_array b || mentions_array c

(* One operator instance per class that appears with both operands
   data-dependent in unconditional code. Such an operation survives
   every pass (an operand holding an array value never folds to a
   constant, so the class is stable under unrolling and replacement),
   though CSE may share instances and temporaries may widen it — hence
   one unit per class, charged at the narrowest width bucket. *)
let op_floor (k : Ast.kernel) : int =
  let classes : (Op_model.op_class, unit) Hashtbl.t = Hashtbl.create 8 in
  let rec expr_ops (e : Ast.expr) =
    match e with
    | Ast.Int _ | Ast.Var _ -> ()
    | Ast.Arr (_, subs) -> List.iter expr_ops subs
    | Ast.Un (_, a) -> expr_ops a
    | Ast.Cond (c, _, _) -> expr_ops c
    | Ast.Bin (op, a, b) ->
        expr_ops a;
        expr_ops b;
        if mentions_array a && mentions_array b then
          Option.iter
            (fun cls ->
              if Op_model.delay_ns cls ~width:8 > 0.5 then
                Hashtbl.replace classes cls ())
            (classify_bin op)
  in
  let rec walk (s : Ast.stmt) =
    match s with
    | Ast.Assign (lv, e) -> (
        expr_ops e;
        match lv with
        | Ast.Lvar _ -> ()
        | Ast.Larr (_, subs) -> List.iter expr_ops subs)
    | Ast.If (c, _, _) -> expr_ops c
    | Ast.Rotate _ -> ()
    | Ast.For l -> List.iter walk l.Ast.body
  in
  List.iter walk k.Ast.k_body;
  Hashtbl.fold (fun cls () s -> s + Op_model.area cls ~width:8) classes 0

(* ------------------------------------------------------------------ *)
(* Facts *)

let facts ~(device : Device.t) ~(mem : Memory_model.t) (k : Ast.kernel) :
    facts =
  let accesses = Access.collect k.Ast.k_body in
  let written : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (a : Access.t) ->
      if Access.is_write a then Hashtbl.replace written a.Access.array ())
    accesses;
  let live : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (a : Access.t) ->
      if not a.Access.guarded then
        List.iter
          (fun idx -> Hashtbl.replace live idx ())
          (Access.varying_indices a))
    accesses;
  let rec ctl_of (body : Ast.stmt list) : ctl list =
    List.filter_map
      (function
        | Ast.For l ->
            Some
              {
                index = l.Ast.index;
                trip = Ast.loop_trip l;
                live = Hashtbl.mem live l.Ast.index;
                inner = ctl_of l.Ast.body;
              }
        | _ -> None)
      body
  in
  let loads, stores = footprint k ~written in
  let min_port_cycles =
    (loads * mem.Memory_model.read_occupancy)
    + (stores * mem.Memory_model.write_occupancy)
  in
  let scalar_bits =
    List.fold_left
      (fun s (d : Ast.scalar_decl) -> s + Dtype.bits d.Ast.s_elem)
      0 k.Ast.k_scalars
  in
  let struct_slices = 18 + 4 + op_floor k in
  {
    device;
    mem;
    min_port_cycles;
    struct_slices;
    scalar_bits;
    ctl = ctl_of k.Ast.k_body;
  }

(* ------------------------------------------------------------------ *)
(* Bounds at a vector *)

(* Peeling strips at most 4 innermost-chain iterations (wherever the
   cascade lands them) plus one carrier iteration per loop per
   execution, and a residual trip of 1 folds the loop away: overhead is
   safe only beyond 5 + 1 stripped iterations. *)
let peel_slack = 5

let bound (f : facts) ~(vector : (string * int) list) : t =
  let factor idx =
    match List.assoc_opt idx vector with Some u when u > 1 -> u | _ -> 1
  in
  (* Control cycles: the body structure of a loop executes [trip']
     times whether unrolled, jammed or peeled; only surviving
     iterations pay the control cycle. Ceiling division stays below
     the divisor-clamped trip the unroller actually uses. *)
  let rec control nodes =
    List.fold_left
      (fun s n ->
        let u = factor n.index in
        let trip' = (n.trip + u - 1) / u in
        s + (trip' * control n.inner)
        + (if n.live then max 0 (trip' - 1 - peel_slack) else 0))
      0 nodes
  in
  let comp_cycles_lb = control f.ctl in
  let mem_cycles_lb =
    let m = max 1 f.device.Device.num_memories in
    (f.min_port_cycles + m - 1) / m
  in
  let balance_trend =
    if mem_cycles_lb = 0 then Float.infinity
    else float_of_int comp_cycles_lb /. float_of_int mem_cycles_lb
  in
  (* Register-pressure term: every live loop whose residual trip cannot
     be peeled or folded away survives as a loop of the generated code,
     and the estimator charges each surviving loop a 16-bit counter
     register plus two FSM slices. The survival condition mirrors the
     control slack above: [trip' - 1 - peel_slack >= 1] leaves at least
     two iterations after every peel the pipeline can perform, so the
     loop is never folded. Facts computed from a strip-mined source see
     both the tile and the intra-tile loop here — the tile-aware part
     of the area bound. *)
  let rec surviving nodes =
    List.fold_left
      (fun n node ->
        let u = factor node.index in
        let trip' = (node.trip + u - 1) / u in
        n
        + (if node.live && trip' - 1 - peel_slack >= 1 then 1 else 0)
        + surviving node.inner)
      0 nodes
  in
  let loops = surviving f.ctl in
  let reg_slices =
    (f.scalar_bits + (16 * loops) + f.device.Device.ffs_per_slice - 1)
    / f.device.Device.ffs_per_slice
  in
  {
    cycles_lb = max comp_cycles_lb mem_cycles_lb;
    mem_cycles_lb;
    comp_cycles_lb;
    slices_lb = f.struct_slices + reg_slices + (2 * loops);
    balance_trend;
  }

let pp fmt (t : t) =
  Format.fprintf fmt "cycles>=%d (mem>=%d, comp>=%d) slices>=%d trend=%.3f"
    t.cycles_lb t.mem_cycles_lb t.comp_cycles_lb t.slices_lb t.balance_trend
