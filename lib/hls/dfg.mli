(** Data-flow graph construction for one straight-line block.

    Nodes carry a {e timing} facet (operator class and width, for the
    {!Schedule} ASAP scheduler) and a {e semantic} facet (which
    operation, which operands, which array element, for the {!Sim}
    datapath simulator). Conditionals are predicated: both branches
    build, scalar targets merge through muxes, loads issue
    unconditionally (the paper's conditional memory accesses), stores
    carry their guard conditions. Register rotation is a free parallel
    transfer; subscripts linearize into explicit address nodes. *)

open Ir
module Access = Analysis.Access

type source = Const of int | Scalar of string

type op_sem = Sbin of Ast.binop | Sun of Ast.unop | Smux

type node_kind =
  | Source of source  (** block input: ready at t = 0 *)
  | Op of { sem : op_sem; cls : Op_model.op_class; width : int }
  | Load of { array : string; mem : int; width : int; addr : int }
      (** [addr]: node computing the flat (row-major) element index *)
  | Store of {
      array : string;
      mem : int;
      width : int;
      addr : int;
      value : int;
      guards : (int * bool) list;
          (** all must evaluate to the given polarity for the write to
              commit; the schedule slot is occupied either way *)
    }
  | Move of { regs : string list; pre : int list }
      (** parallel left rotation; free in the datapath *)
  | Move_out of { move : int; index : int }
      (** value of register [index] after rotation [move] fires *)
  | Reg_write of { scalar : string; value : int }
      (** scalar commit: truncates to the declared width; free *)

type node = { id : int; kind : node_kind; preds : int list }

(** A built graph: the live nodes are [nodes.(0 .. len - 1)] (ids are
    topological), and [fp] is the structural fingerprint, computed as the
    nodes were emitted (see {!fingerprint}). Results of {!of_block} /
    {!of_block_with_defs} own their storage and satisfy
    [Array.length nodes = len]; results of {!of_block_arena} are views
    whose [nodes] array is longer than [len] and is reused by the next
    build on the same arena. *)
type t = { nodes : node array; len : int; fp : string }

(** Cursor over the kernel-wide access list (from [Access.collect] on the
    full body, in document order); the builder consumes accesses in the
    same order it encounters [Arr] occurrences, so the memory assignment
    of {!Data_layout.Layout} lines up. *)
type cursor

val cursor_of : Access.t list -> cursor

(** The cursor and the block disagree — a bug in the caller's region
    walk. *)
exception Desync of string

(** Reusable construction scratch: node storage, scalar environments and
    per-kernel declaration tables persist across {!of_block_arena} calls
    (and across design points, when threaded through a sweep), so
    steady-state construction allocates only the nodes. *)
type arena

val arena : unit -> arena

(** Build into [arena] and return a view (see {!t}) plus the top-level
    statement boundary marks: entry [i] is [(node_count, fp_bytes)] after
    statements [0..i]. Construction is append-only, so the graph of the
    statement prefix [0..i] is exactly nodes [0 .. node_count - 1] and
    its fingerprint is exactly the first [fp_bytes] bytes of [fp] — the
    keys of the region-level schedule memo. *)
val of_block_arena :
  arena:arena ->
  kernel:Ast.kernel ->
  mem_of:(Access.t -> int) ->
  cursor:cursor ->
  Ast.stmt list ->
  t * (int * int) array

(** Build the DFG of a straight-line block ([For] raises
    [Invalid_argument]); the cursor advances past the block's accesses.
    The [_with_defs] variant also returns the scalar environment at block
    exit (scalar -> node), for the simulator's write-back. *)
val of_block_with_defs :
  kernel:Ast.kernel ->
  mem_of:(Access.t -> int) ->
  cursor:cursor ->
  Ast.stmt list ->
  t * (string * int) list

val of_block :
  kernel:Ast.kernel ->
  mem_of:(Access.t -> int) ->
  cursor:cursor ->
  Ast.stmt list ->
  t

(** Canonical structural fingerprint of a graph: encodes exactly the
    schedule-relevant projection (node kind, operator class/width,
    memory id/width, predecessor ids) and nothing else. Invariant under
    scalar/array renaming and constant shifts, so iteration-shifted
    copies of one block collide; injective on the projection, so two
    graphs with the same fingerprint produce bit-identical
    {!Schedule.run_tri} results under any profile. *)
val fingerprint : t -> string

val n_loads : t -> int
val n_stores : t -> int
