(** Data-flow graph construction for one straight-line block (a loop body
    or pre/post region with the inner loops factored out).

    Nodes carry two independent facets:

    - a {e timing} facet (operator class and width) consumed by the
      {!Schedule} ASAP scheduler, and
    - a {e semantic} facet (which operation, which operands, which array
      element) consumed by the {!Sim} datapath simulator, which executes
      the scheduled graph and must reproduce the reference interpreter's
      results bit for bit.

    Conditionals are predicated, the way behavioral synthesis schedules
    them for a static FSM: both branches' operations are built, scalar
    targets merge through a multiplexer, loads are issued unconditionally
    (the paper's "the generated code always performs conditional memory
    accesses"), and stores carry their guard conditions so the datapath
    suppresses the write when the path is not taken. Register rotation is
    a free parallel register transfer. Subscript arithmetic is linearized
    into explicit address-computation nodes feeding the memory
    operation.

    Construction is {e append-only}: a node's content depends only on the
    statements already consumed, never on later ones, so the graph of a
    statement prefix of a block is literally an array prefix of the full
    block's graph — the property the region-level schedule memo builds
    on (see {!of_block_arena} and its statement marks). *)

open Ir
module Access = Analysis.Access

type source = Const of int | Scalar of string

(** Semantic operation of an [Op] node, aligned with its predecessors:
    binary operators take the first two preds, the mux takes
    (condition, then, else). *)
type op_sem = Sbin of Ast.binop | Sun of Ast.unop | Smux

type node_kind =
  | Source of source  (** block input: ready at t = 0 *)
  | Op of { sem : op_sem; cls : Op_model.op_class; width : int }
  | Load of { array : string; mem : int; width : int; addr : int }
      (** [addr]: node computing the flat (row-major) element index *)
  | Store of {
      array : string;
      mem : int;
      width : int;
      addr : int;
      value : int;
      guards : (int * bool) list;
          (** all must evaluate to the given polarity for the write to
              commit; timing-wise the slot is always occupied *)
    }
  | Move of { regs : string list; pre : int list }
      (** parallel left rotation of [regs], whose pre-rotation values are
          the nodes [pre]; costs nothing in the datapath *)
  | Move_out of { move : int; index : int }
      (** the value of register [index] of rotation [move] after it fires *)
  | Reg_write of { scalar : string; value : int }
      (** commit of a scalar assignment: the register truncates the value
          to the scalar's declared width (hardware registers are finite);
          free in the schedule — the write happens on the clock edge *)

type node = { id : int; kind : node_kind; preds : int list }

type t = { nodes : node array; len : int; fp : string }

let fingerprint (g : t) : string = g.fp

(** Cursor over the kernel-wide access list (from [Access.collect] on the
    full body, in document order); the builder consumes accesses in the
    same order it encounters the corresponding [Arr] occurrences, so the
    memory assignment computed by {!Data_layout.Layout} lines up. *)
type cursor = { mutable rest : Access.t list }

let cursor_of accesses = { rest = accesses }

exception Desync of string

let pop_access cur array kind =
  match cur.rest with
  | a :: tl when a.Access.array = array && a.Access.kind = kind ->
      cur.rest <- tl;
      a
  | a :: _ ->
      raise
        (Desync
           (Printf.sprintf "expected %s of %s, cursor at %s of %s"
              (match kind with Access.Read -> "read" | Access.Write -> "write")
              array
              (match a.Access.kind with
              | Access.Read -> "read"
              | Access.Write -> "write")
              a.Access.array))
  | [] -> raise (Desync ("cursor exhausted at " ^ array))

let dummy_node = { id = -1; kind = Source (Const 0); preds = [] }

(** Reusable construction scratch. One arena serves any number of
    [of_block_arena] calls in sequence; the node storage, the scalar
    environments and the per-kernel declaration tables persist across
    blocks (and across design points, when the caller threads one arena
    through a whole sweep), so steady-state construction allocates only
    the nodes themselves.

    The declaration tables matter as much as the storage: after scalar
    replacement of a heavily unrolled body, [k_scalars] holds thousands
    of compiler-introduced registers, and the [List.find_opt] behind
    {!Ast.expr_type} turns every width query quadratic. The arena hashes
    declarations once per kernel (refreshed on physical inequality). *)
type arena = {
  mutable buf : node array;  (* first [count] slots of the current block live *)
  fp_buf : Buffer.t;  (* fingerprint of the current block, built as nodes land *)
  defs0 : (string, int) Hashtbl.t;  (* scalar -> defining node *)
  inputs : (string, int) Hashtbl.t;  (* scalar -> shared Source node *)
  last_store : (string, int) Hashtbl.t;  (* array -> last store node *)
  loads_since : (string, int list) Hashtbl.t;  (* array -> loads after it *)
  stypes : (string, Dtype.t) Hashtbl.t;  (* declared scalar element types *)
  atypes : (string, Dtype.t * int list) Hashtbl.t;  (* array -> elem, dims *)
  mutable typed_for : Ast.kernel option;  (* kernel the tables describe *)
}

let arena () =
  {
    buf = Array.make 256 dummy_node;
    fp_buf = Buffer.create 1024;
    defs0 = Hashtbl.create 64;
    inputs = Hashtbl.create 32;
    last_store = Hashtbl.create 8;
    loads_since = Hashtbl.create 8;
    stypes = Hashtbl.create 64;
    atypes = Hashtbl.create 8;
    typed_for = None;
  }

type builder = {
  k : Ast.kernel;
  a : arena;
  mem_of : Access.t -> int;
  cur : cursor;
  mutable count : int;
  mutable defs : (string, int) Hashtbl.t;
      (* starts as [a.defs0]; the [If] merge snapshots/restores it with
         [Hashtbl.copy] (branches are rare; statements are not) *)
  mutable guards : (int * bool) list;  (* active predication context *)
}

(** Append one node's canonical encoding (see {!fingerprint}'s contract
    below) to the running fingerprint. *)
let rec add_digits buf n =
  if n >= 10 then add_digits buf (n / 10);
  Buffer.add_char buf (Char.unsafe_chr (Char.code '0' + (n mod 10)))

let encode_fp buf kind preds =
  (* decimal digits written directly: [string_of_int] would allocate a
     string per predecessor of every node of every block *)
  let int n =
    if n < 0 then begin
      Buffer.add_char buf '-';
      add_digits buf (-n)
    end
    else add_digits buf n;
    Buffer.add_char buf ','
  in
  (match kind with
  | Source _ -> Buffer.add_char buf 's'
  | Op { cls; width; _ } ->
      Buffer.add_char buf 'o';
      Buffer.add_string buf (Op_model.class_name cls);
      Buffer.add_char buf ':';
      int width
  | Load { mem; width; _ } ->
      Buffer.add_char buf 'l';
      int mem;
      int width
  | Store { mem; width; _ } ->
      Buffer.add_char buf 't';
      int mem;
      int width
  | Move _ -> Buffer.add_char buf 'm'
  | Move_out _ -> Buffer.add_char buf 'x'
  | Reg_write _ -> Buffer.add_char buf 'r');
  List.iter int preds;
  Buffer.add_char buf ';'

let add b kind preds =
  let id = b.count in
  if id = Array.length b.a.buf then begin
    let bigger = Array.make (2 * id) dummy_node in
    Array.blit b.a.buf 0 bigger 0 id;
    b.a.buf <- bigger
  end;
  b.a.buf.(id) <- { id; kind; preds };
  b.count <- id + 1;
  encode_fp b.a.fp_buf kind preds;
  id

let scalar_input b v =
  match Hashtbl.find_opt b.a.inputs v with
  | Some id -> id
  | None ->
      let id = add b (Source (Scalar v)) [] in
      Hashtbl.replace b.a.inputs v id;
      id

let is_pow2 n = n > 0 && n land (n - 1) = 0

let classify_bin (op : Ast.binop) (a : Ast.expr) (c : Ast.expr) :
    Op_model.op_class =
  let const_operand =
    match (a, c) with Ast.Int n, _ | _, Ast.Int n -> Some n | _ -> None
  in
  match op with
  | Ast.Add | Ast.Sub -> Op_model.Add
  | Ast.Mul -> (
      match const_operand with
      | Some n when is_pow2 (abs n) -> Op_model.Shift_const
      | Some _ -> Op_model.Add (* shift-add decomposition *)
      | None -> Op_model.Mul)
  | Ast.Div | Ast.Mod -> (
      match const_operand with
      | Some n when is_pow2 (abs n) -> Op_model.Shift_const
      | _ -> Op_model.Div)
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> Op_model.Cmp
  | Ast.And | Ast.Or | Ast.Band | Ast.Bor | Ast.Bxor -> Op_model.Logic
  | Ast.Shl | Ast.Shr -> (
      match (a, c) with
      | _, Ast.Int _ -> Op_model.Shift_const
      | _ -> Op_model.Shift_var)
  | Ast.Min | Ast.Max -> Op_model.Min_max

(** Fill the declaration tables for [k] unless they already describe it.
    Physical equality is the right test: one kernel value flows through
    all blocks of one estimation, and a rebuilt kernel is a new value. *)
let retype a (k : Ast.kernel) =
  match a.typed_for with
  | Some k0 when k0 == k -> ()
  | _ ->
      Hashtbl.reset a.stypes;
      Hashtbl.reset a.atypes;
      List.iter
        (fun (s : Ast.scalar_decl) -> Hashtbl.replace a.stypes s.s_name s.s_elem)
        k.Ast.k_scalars;
      List.iter
        (fun (d : Ast.array_decl) ->
          Hashtbl.replace a.atypes d.a_name (d.a_elem, d.a_dims))
        k.Ast.k_arrays;
      a.typed_for <- Some k

let scalar_type b v =
  match Hashtbl.find_opt b.a.stypes v with
  | Some ty -> ty
  | None -> Dtype.int32

let array_info b name =
  match Hashtbl.find_opt b.a.atypes name with
  | Some (elem, dims) -> (Dtype.bits elem, dims)
  | None -> (32, [ 0 ])

let array_elem b name =
  match Hashtbl.find_opt b.a.atypes name with
  | Some (elem, _) -> elem
  | None -> Dtype.int32

let note_load b array id =
  let cur =
    Option.value ~default:[] (Hashtbl.find_opt b.a.loads_since array)
  in
  Hashtbl.replace b.a.loads_since array (id :: cur)

let order_preds_for_load b array =
  match Hashtbl.find_opt b.a.last_store array with Some s -> [ s ] | None -> []

let order_preds_for_store b array =
  let loads =
    Option.value ~default:[] (Hashtbl.find_opt b.a.loads_since array)
  in
  let st =
    match Hashtbl.find_opt b.a.last_store array with
    | Some s -> [ s ]
    | None -> []
  in
  loads @ st

(* [build_expr] threads the expression's element type up alongside the
   node id. The type is exactly {!Ast.expr_type} of the subtree (operand
   join for intermediates), computed bottom-up in one pass instead of by
   re-walking the subtree — and the declaration lookups behind the leaves
   come from the arena's hash tables. *)
let rec build_expr b (e : Ast.expr) : int * Dtype.t =
  match e with
  | Ast.Int n -> (add b (Source (Const n)) [], Dtype.int32)
  | Ast.Var v -> (
      let ty = scalar_type b v in
      match Hashtbl.find_opt b.defs v with
      | Some id -> (id, ty)
      | None -> (scalar_input b v, ty))
  | Ast.Arr (array, subs) ->
      let addr = build_address b array subs in
      let access = pop_access b.cur array Access.Read in
      let width, _ = array_info b array in
      let mem = b.mem_of access in
      let id =
        add b
          (Load { array; mem; width; addr })
          (addr :: order_preds_for_load b array)
      in
      note_load b array id;
      (id, array_elem b array)
  | Ast.Bin (op, x, y) ->
      let nx, tx = build_expr b x in
      let ny, ty = build_expr b y in
      let t = Dtype.join tx ty in
      let cls = classify_bin op x y in
      (add b (Op { sem = Sbin op; cls; width = Dtype.bits t }) [ nx; ny ], t)
  | Ast.Un (op, x) ->
      let nx, t = build_expr b x in
      let cls =
        match op with
        | Ast.Neg -> Op_model.Add
        | Ast.Not | Ast.Bnot -> Op_model.Logic
        | Ast.Abs -> Op_model.Abs_op
      in
      (add b (Op { sem = Sun op; cls; width = Dtype.bits t }) [ nx ], t)
  | Ast.Cond (c, t, el) ->
      let nc, _ = build_expr b c in
      let nt, tt = build_expr b t in
      let ne, te = build_expr b el in
      let ty = Dtype.join tt te in
      ( add b
          (Op { sem = Smux; cls = Op_model.Mux; width = Dtype.bits ty })
          [ nc; nt; ne ],
        ty )

(** Row-major address computation, Horner style:
    [((s0 * d1 + s1) * d2 + s2) ...] — one constant multiply (usually a
    shift or shift-add) and one add per extra dimension, matching what
    synthesis emits for a linearized array. Returns the node holding the
    flat index. *)
and build_address b array subs : int =
  let _, dims = array_info b array in
  let sub_nodes = List.map (fun s -> (s, fst (build_expr b s))) subs in
  match (sub_nodes, dims) with
  | [ (_, n) ], _ -> n
  | [], _ -> add b (Source (Const 0)) []
  | (_, first) :: rest, _ :: rest_dims ->
      let rec go acc rest rest_dims =
        match (rest, rest_dims) with
        | [], _ | _, [] -> acc
        | (_, n) :: more, d :: more_dims ->
            let cd = add b (Source (Const d)) [] in
            let scaled =
              add b
                (Op
                   {
                     sem = Sbin Ast.Mul;
                     cls =
                       (if is_pow2 d then Op_model.Shift_const else Op_model.Add);
                     width = 16;
                   })
                [ acc; cd ]
            in
            let sum =
              add b
                (Op { sem = Sbin Ast.Add; cls = Op_model.Add; width = 16 })
                [ scaled; n ]
            in
            go sum more more_dims
      in
      go first rest rest_dims
  | _ :: _ :: _, [] -> add b (Source (Const 0)) []

let rec build_stmt b (s : Ast.stmt) : unit =
  match s with
  | Ast.Assign (Ast.Lvar v, e) ->
      let n, _ = build_expr b e in
      let w = add b (Reg_write { scalar = v; value = n }) [ n ] in
      Hashtbl.replace b.defs v w
  | Ast.Assign (Ast.Larr (array, subs), e) ->
      let n, _ = build_expr b e in
      let addr = build_address b array subs in
      let access = pop_access b.cur array Access.Write in
      let width, _ = array_info b array in
      let mem = b.mem_of access in
      let id =
        add b
          (Store { array; mem; width; addr; value = n; guards = b.guards })
          (n :: addr :: order_preds_for_store b array)
      in
      Hashtbl.replace b.a.last_store array id;
      Hashtbl.remove b.a.loads_since array
  | Ast.If (c, t, el) ->
      let nc, _ = build_expr b c in
      let before = b.defs in
      let outer_guards = b.guards in
      b.defs <- Hashtbl.copy before;
      b.guards <- (nc, true) :: outer_guards;
      List.iter (build_stmt b) t;
      let after_then = b.defs in
      b.defs <- Hashtbl.copy before;
      b.guards <- (nc, false) :: outer_guards;
      List.iter (build_stmt b) el;
      b.guards <- outer_guards;
      let after_else = b.defs in
      (* Merge scalar definitions through muxes. Sorted, so the mux
         emission order (hence node numbering) is deterministic. *)
      let changed tbl =
        Hashtbl.fold
          (fun v id acc ->
            if Hashtbl.find_opt before v <> Some id then v :: acc else acc)
          tbl []
      in
      let assigned =
        List.sort_uniq compare (changed after_then @ changed after_else)
      in
      b.defs <- after_else;
      List.iter
        (fun v ->
          let old () =
            match Hashtbl.find_opt before v with
            | Some id -> id
            | None -> scalar_input b v
          in
          let th =
            match Hashtbl.find_opt after_then v with Some id -> id | None -> old ()
          in
          let el' =
            match Hashtbl.find_opt after_else v with Some id -> id | None -> old ()
          in
          if th <> el' then begin
            let w = Dtype.bits (scalar_type b v) in
            let m =
              add b
                (Op { sem = Smux; cls = Op_model.Mux; width = w })
                [ nc; th; el' ]
            in
            Hashtbl.replace b.defs v m
          end)
        assigned
  | Ast.Rotate rs ->
      let pre = List.map (fun r ->
          match Hashtbl.find_opt b.defs r with
          | Some id -> id
          | None -> scalar_input b r) rs
      in
      let mid = add b (Move { regs = rs; pre }) pre in
      List.iteri
        (fun i r ->
          let out = add b (Move_out { move = mid; index = i }) [ mid ] in
          Hashtbl.replace b.defs r out)
        rs
  | Ast.For _ -> invalid_arg "Dfg.of_block: loops must be factored out"

let builder_of arena ~kernel ~mem_of ~cursor =
  retype arena kernel;
  Hashtbl.reset arena.defs0;
  Hashtbl.reset arena.inputs;
  Hashtbl.reset arena.last_store;
  Hashtbl.reset arena.loads_since;
  Buffer.clear arena.fp_buf;
  {
    k = kernel;
    a = arena;
    mem_of;
    cur = cursor;
    count = 0;
    defs = arena.defs0;
    guards = [];
  }

(** Build into [arena] and return a {e view}: [nodes] aliases the arena's
    storage (slots at and beyond [len] are garbage), valid until the next
    build that uses the same arena. The second component marks the
    top-level statement boundaries of the block: entry [i] is
    [(node_count, fp_bytes)] after statements [0..i], so the graph of
    that statement prefix is exactly nodes [0 .. node_count - 1] and its
    fingerprint is exactly the first [fp_bytes] bytes of [fp] — the keys
    under which the region-level schedule memo stores its snapshots. *)
let of_block_arena ~(arena : arena) ~(kernel : Ast.kernel)
    ~(mem_of : Access.t -> int) ~(cursor : cursor) (stmts : Ast.stmt list) :
    t * (int * int) array =
  let b = builder_of arena ~kernel ~mem_of ~cursor in
  let marks =
    List.map
      (fun s ->
        build_stmt b s;
        (b.count, Buffer.length arena.fp_buf))
      stmts
  in
  ( { nodes = arena.buf; len = b.count; fp = Buffer.contents arena.fp_buf },
    Array.of_list marks )

(** Build the DFG of a straight-line block. [cursor] advances past the
    block's accesses. The final scalar environment (scalar name -> node
    that holds its value at block exit) is returned alongside, for the
    simulator's write-back. The result owns its storage (safe to retain),
    unlike {!of_block_arena}'s view. *)
let of_block_with_defs ~(kernel : Ast.kernel) ~(mem_of : Access.t -> int)
    ~(cursor : cursor) (stmts : Ast.stmt list) : t * (string * int) list =
  let b = builder_of (arena ()) ~kernel ~mem_of ~cursor in
  List.iter (build_stmt b) stmts;
  let defs =
    Hashtbl.fold (fun v id acc -> (v, id) :: acc) b.defs []
    |> List.sort compare
  in
  ( {
      nodes = Array.sub b.a.buf 0 b.count;
      len = b.count;
      fp = Buffer.contents b.a.fp_buf;
    },
    defs )

let of_block ~kernel ~mem_of ~cursor stmts =
  fst (of_block_with_defs ~kernel ~mem_of ~cursor stmts)

(* The fingerprint contract (kept bit-compatible with the former
   after-the-fact encoder, and realised incrementally by {!encode_fp}):
   a compact, unambiguous encoding of exactly the schedule-relevant
   projection of every node — the kind tag, operator class and width for
   [Op], memory id and width for [Load]/[Store], and the predecessor
   ids. Scalar and array names, constant values, semantic operations and
   store guard polarities are deliberately excluded (the {!Schedule}
   walker never reads them), so copies of a block differing only by
   scalar renaming or by iteration-shifted address constants collide,
   while two graphs with the same fingerprint schedule identically under
   every profile. Every integer field is comma-terminated and fields
   occupy fixed positions after the kind tag, so the encoding is
   injective on the projection. *)

let n_loads (g : t) =
  let acc = ref 0 in
  for i = 0 to g.len - 1 do
    match g.nodes.(i).kind with Load _ -> incr acc | _ -> ()
  done;
  !acc

let n_stores (g : t) =
  let acc = ref 0 in
  for i = 0 to g.len - 1 do
    match g.nodes.(i).kind with Store _ -> incr acc | _ -> ()
  done;
  !acc
