(** Data-flow graph construction for one straight-line block (a loop body
    or pre/post region with the inner loops factored out).

    Nodes carry two independent facets:

    - a {e timing} facet (operator class and width) consumed by the
      {!Schedule} ASAP scheduler, and
    - a {e semantic} facet (which operation, which operands, which array
      element) consumed by the {!Sim} datapath simulator, which executes
      the scheduled graph and must reproduce the reference interpreter's
      results bit for bit.

    Conditionals are predicated, the way behavioral synthesis schedules
    them for a static FSM: both branches' operations are built, scalar
    targets merge through a multiplexer, loads are issued unconditionally
    (the paper's "the generated code always performs conditional memory
    accesses"), and stores carry their guard conditions so the datapath
    suppresses the write when the path is not taken. Register rotation is
    a free parallel register transfer. Subscript arithmetic is linearized
    into explicit address-computation nodes feeding the memory
    operation. *)

open Ir
module Access = Analysis.Access

type source = Const of int | Scalar of string

(** Semantic operation of an [Op] node, aligned with its predecessors:
    binary operators take the first two preds, the mux takes
    (condition, then, else). *)
type op_sem = Sbin of Ast.binop | Sun of Ast.unop | Smux

type node_kind =
  | Source of source  (** block input: ready at t = 0 *)
  | Op of { sem : op_sem; cls : Op_model.op_class; width : int }
  | Load of { array : string; mem : int; width : int; addr : int }
      (** [addr]: node computing the flat (row-major) element index *)
  | Store of {
      array : string;
      mem : int;
      width : int;
      addr : int;
      value : int;
      guards : (int * bool) list;
          (** all must evaluate to the given polarity for the write to
              commit; timing-wise the slot is always occupied *)
    }
  | Move of { regs : string list; pre : int list }
      (** parallel left rotation of [regs], whose pre-rotation values are
          the nodes [pre]; costs nothing in the datapath *)
  | Move_out of { move : int; index : int }
      (** the value of register [index] of rotation [move] after it fires *)
  | Reg_write of { scalar : string; value : int }
      (** commit of a scalar assignment: the register truncates the value
          to the scalar's declared width (hardware registers are finite);
          free in the schedule — the write happens on the clock edge *)

type node = { id : int; kind : node_kind; preds : int list }

type t = { nodes : node array }

(** Cursor over the kernel-wide access list (from [Access.collect] on the
    full body, in document order); the builder consumes accesses in the
    same order it encounters the corresponding [Arr] occurrences, so the
    memory assignment computed by {!Data_layout.Layout} lines up. *)
type cursor = { mutable rest : Access.t list }

let cursor_of accesses = { rest = accesses }

exception Desync of string

let pop_access cur array kind =
  match cur.rest with
  | a :: tl when a.Access.array = array && a.Access.kind = kind ->
      cur.rest <- tl;
      a
  | a :: _ ->
      raise
        (Desync
           (Printf.sprintf "expected %s of %s, cursor at %s of %s"
              (match kind with Access.Read -> "read" | Access.Write -> "write")
              array
              (match a.Access.kind with
              | Access.Read -> "read"
              | Access.Write -> "write")
              a.Access.array))
  | [] -> raise (Desync ("cursor exhausted at " ^ array))

(* Environments are hash tables rather than assoc lists: large unrolled
   blocks define thousands of scalars, and a [List.assoc_opt] +
   [List.remove_assoc] per statement turns construction quadratic on
   exactly the points the search probes. [defs] stays a mutable field so
   the [If] merge can snapshot/restore it with [Hashtbl.copy] (branches
   are rare; statements are not). *)
type builder = {
  k : Ast.kernel;
  mem_of : Access.t -> int;
  cur : cursor;
  mutable nodes : node array;  (* first [count] slots live; doubled on demand *)
  mutable count : int;
  mutable defs : (string, int) Hashtbl.t;  (* scalar -> defining node *)
  inputs : (string, int) Hashtbl.t;  (* scalar -> shared Source node *)
  last_store : (string, int) Hashtbl.t;  (* array -> last store node *)
  loads_since : (string, int list) Hashtbl.t;  (* array -> loads after it *)
  mutable guards : (int * bool) list;  (* active predication context *)
}

let dummy_node = { id = -1; kind = Source (Const 0); preds = [] }

let add b kind preds =
  let id = b.count in
  if id = Array.length b.nodes then begin
    let bigger = Array.make (max 16 (2 * id)) dummy_node in
    Array.blit b.nodes 0 bigger 0 id;
    b.nodes <- bigger
  end;
  b.nodes.(id) <- { id; kind; preds };
  b.count <- id + 1;
  id

let scalar_input b v =
  match Hashtbl.find_opt b.inputs v with
  | Some id -> id
  | None ->
      let id = add b (Source (Scalar v)) [] in
      Hashtbl.replace b.inputs v id;
      id

let width_of b e = Dtype.bits (Ast.expr_type b.k e)

let is_pow2 n = n > 0 && n land (n - 1) = 0

let classify_bin (op : Ast.binop) (a : Ast.expr) (c : Ast.expr) :
    Op_model.op_class =
  let const_operand =
    match (a, c) with Ast.Int n, _ | _, Ast.Int n -> Some n | _ -> None
  in
  match op with
  | Ast.Add | Ast.Sub -> Op_model.Add
  | Ast.Mul -> (
      match const_operand with
      | Some n when is_pow2 (abs n) -> Op_model.Shift_const
      | Some _ -> Op_model.Add (* shift-add decomposition *)
      | None -> Op_model.Mul)
  | Ast.Div | Ast.Mod -> (
      match const_operand with
      | Some n when is_pow2 (abs n) -> Op_model.Shift_const
      | _ -> Op_model.Div)
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> Op_model.Cmp
  | Ast.And | Ast.Or | Ast.Band | Ast.Bor | Ast.Bxor -> Op_model.Logic
  | Ast.Shl | Ast.Shr -> (
      match (a, c) with
      | _, Ast.Int _ -> Op_model.Shift_const
      | _ -> Op_model.Shift_var)
  | Ast.Min | Ast.Max -> Op_model.Min_max

let array_info b name =
  match Ast.find_array b.k name with
  | Some d -> (Dtype.bits d.Ast.a_elem, d.Ast.a_dims)
  | None -> (32, [ 0 ])

let note_load b array id =
  let cur = Option.value ~default:[] (Hashtbl.find_opt b.loads_since array) in
  Hashtbl.replace b.loads_since array (id :: cur)

let order_preds_for_load b array =
  match Hashtbl.find_opt b.last_store array with Some s -> [ s ] | None -> []

let order_preds_for_store b array =
  let loads = Option.value ~default:[] (Hashtbl.find_opt b.loads_since array) in
  let st =
    match Hashtbl.find_opt b.last_store array with Some s -> [ s ] | None -> []
  in
  loads @ st

let rec build_expr b (e : Ast.expr) : int =
  match e with
  | Ast.Int n -> add b (Source (Const n)) []
  | Ast.Var v -> (
      match Hashtbl.find_opt b.defs v with
      | Some id -> id
      | None -> scalar_input b v)
  | Ast.Arr (array, subs) ->
      let addr = build_address b array subs in
      let access = pop_access b.cur array Access.Read in
      let width, _ = array_info b array in
      let mem = b.mem_of access in
      let id =
        add b
          (Load { array; mem; width; addr })
          ((addr :: order_preds_for_load b array))
      in
      note_load b array id;
      id
  | Ast.Bin (op, x, y) ->
      let nx = build_expr b x in
      let ny = build_expr b y in
      let cls = classify_bin op x y in
      add b (Op { sem = Sbin op; cls; width = width_of b e }) [ nx; ny ]
  | Ast.Un (op, x) ->
      let nx = build_expr b x in
      let cls =
        match op with
        | Ast.Neg -> Op_model.Add
        | Ast.Not | Ast.Bnot -> Op_model.Logic
        | Ast.Abs -> Op_model.Abs_op
      in
      add b (Op { sem = Sun op; cls; width = width_of b e }) [ nx ]
  | Ast.Cond (c, t, el) ->
      let nc = build_expr b c in
      let nt = build_expr b t in
      let ne = build_expr b el in
      add b
        (Op { sem = Smux; cls = Op_model.Mux; width = width_of b e })
        [ nc; nt; ne ]

(** Row-major address computation, Horner style:
    [((s0 * d1 + s1) * d2 + s2) ...] — one constant multiply (usually a
    shift or shift-add) and one add per extra dimension, matching what
    synthesis emits for a linearized array. Returns the node holding the
    flat index. *)
and build_address b array subs : int =
  let _, dims = array_info b array in
  let sub_nodes = List.map (fun s -> (s, build_expr b s)) subs in
  match (sub_nodes, dims) with
  | [ (_, n) ], _ -> n
  | [], _ -> add b (Source (Const 0)) []
  | (_, first) :: rest, _ :: rest_dims ->
      let rec go acc rest rest_dims =
        match (rest, rest_dims) with
        | [], _ | _, [] -> acc
        | (_, n) :: more, d :: more_dims ->
            let cd = add b (Source (Const d)) [] in
            let scaled =
              add b
                (Op
                   {
                     sem = Sbin Ast.Mul;
                     cls =
                       (if is_pow2 d then Op_model.Shift_const else Op_model.Add);
                     width = 16;
                   })
                [ acc; cd ]
            in
            let sum =
              add b
                (Op { sem = Sbin Ast.Add; cls = Op_model.Add; width = 16 })
                [ scaled; n ]
            in
            go sum more more_dims
      in
      go first rest rest_dims
  | _ :: _ :: _, [] -> add b (Source (Const 0)) []

let rec build_stmt b (s : Ast.stmt) : unit =
  match s with
  | Ast.Assign (Ast.Lvar v, e) ->
      let n = build_expr b e in
      let w = add b (Reg_write { scalar = v; value = n }) [ n ] in
      Hashtbl.replace b.defs v w
  | Ast.Assign (Ast.Larr (array, subs), e) ->
      let n = build_expr b e in
      let addr = build_address b array subs in
      let access = pop_access b.cur array Access.Write in
      let width, _ = array_info b array in
      let mem = b.mem_of access in
      let id =
        add b
          (Store { array; mem; width; addr; value = n; guards = b.guards })
          ((n :: addr :: order_preds_for_store b array))
      in
      Hashtbl.replace b.last_store array id;
      Hashtbl.remove b.loads_since array
  | Ast.If (c, t, el) ->
      let nc = build_expr b c in
      let before = b.defs in
      let outer_guards = b.guards in
      b.defs <- Hashtbl.copy before;
      b.guards <- (nc, true) :: outer_guards;
      List.iter (build_stmt b) t;
      let after_then = b.defs in
      b.defs <- Hashtbl.copy before;
      b.guards <- (nc, false) :: outer_guards;
      List.iter (build_stmt b) el;
      b.guards <- outer_guards;
      let after_else = b.defs in
      (* Merge scalar definitions through muxes. Sorted, so the mux
         emission order (hence node numbering) is deterministic. *)
      let changed tbl =
        Hashtbl.fold
          (fun v id acc ->
            if Hashtbl.find_opt before v <> Some id then v :: acc else acc)
          tbl []
      in
      let assigned =
        List.sort_uniq compare (changed after_then @ changed after_else)
      in
      b.defs <- after_else;
      List.iter
        (fun v ->
          let old () =
            match Hashtbl.find_opt before v with
            | Some id -> id
            | None -> scalar_input b v
          in
          let th =
            match Hashtbl.find_opt after_then v with Some id -> id | None -> old ()
          in
          let el' =
            match Hashtbl.find_opt after_else v with Some id -> id | None -> old ()
          in
          if th <> el' then begin
            let w =
              match Ast.find_scalar b.k v with
              | Some d -> Dtype.bits d.Ast.s_elem
              | None -> 32
            in
            let m =
              add b
                (Op { sem = Smux; cls = Op_model.Mux; width = w })
                [ nc; th; el' ]
            in
            Hashtbl.replace b.defs v m
          end)
        assigned
  | Ast.Rotate rs ->
      let pre = List.map (fun r ->
          match Hashtbl.find_opt b.defs r with
          | Some id -> id
          | None -> scalar_input b r) rs
      in
      let mid = add b (Move { regs = rs; pre }) pre in
      List.iteri
        (fun i r ->
          let out = add b (Move_out { move = mid; index = i }) [ mid ] in
          Hashtbl.replace b.defs r out)
        rs
  | Ast.For _ -> invalid_arg "Dfg.of_block: loops must be factored out"

(** Build the DFG of a straight-line block. [cursor] advances past the
    block's accesses. The final scalar environment (scalar name -> node
    that holds its value at block exit) is returned alongside, for the
    simulator's write-back. *)
let of_block_with_defs ~(kernel : Ast.kernel) ~(mem_of : Access.t -> int)
    ~(cursor : cursor) (stmts : Ast.stmt list) : t * (string * int) list =
  let b =
    {
      k = kernel;
      mem_of;
      cur = cursor;
      nodes = Array.make 64 dummy_node;
      count = 0;
      defs = Hashtbl.create 32;
      inputs = Hashtbl.create 32;
      last_store = Hashtbl.create 8;
      loads_since = Hashtbl.create 8;
      guards = [];
    }
  in
  List.iter (build_stmt b) stmts;
  let defs =
    Hashtbl.fold (fun v id acc -> (v, id) :: acc) b.defs []
    |> List.sort compare
  in
  ({ nodes = Array.sub b.nodes 0 b.count }, defs)

let of_block ~kernel ~mem_of ~cursor stmts =
  fst (of_block_with_defs ~kernel ~mem_of ~cursor stmts)

(** Canonical structural fingerprint: a compact, unambiguous encoding of
    exactly the schedule-relevant projection of every node — the kind
    tag, operator class and width for [Op], memory id and width for
    [Load]/[Store], and the predecessor ids. Scalar and array names,
    constant values, semantic operations and store guard polarities are
    deliberately excluded (the {!Schedule} walker never reads them), so
    copies of a block differing only by scalar renaming or by
    iteration-shifted address constants collide, while two graphs with
    the same fingerprint schedule identically under every profile. Every
    integer field is comma-terminated and fields occupy fixed positions
    after the kind tag, so the encoding is injective on the projection. *)
let fingerprint (g : t) : string =
  let buf = Buffer.create (64 + (8 * Array.length g.nodes)) in
  let int n =
    Buffer.add_string buf (string_of_int n);
    Buffer.add_char buf ','
  in
  Array.iter
    (fun n ->
      (match n.kind with
      | Source _ -> Buffer.add_char buf 's'
      | Op { cls; width; _ } ->
          Buffer.add_char buf 'o';
          Buffer.add_string buf (Op_model.class_name cls);
          Buffer.add_char buf ':';
          int width
      | Load { mem; width; _ } ->
          Buffer.add_char buf 'l';
          int mem;
          int width
      | Store { mem; width; _ } ->
          Buffer.add_char buf 't';
          int mem;
          int width
      | Move _ -> Buffer.add_char buf 'm'
      | Move_out _ -> Buffer.add_char buf 'x'
      | Reg_write _ -> Buffer.add_char buf 'r');
      List.iter int n.preds;
      Buffer.add_char buf ';')
    g.nodes;
  Buffer.contents buf

let n_loads (g : t) =
  Array.fold_left
    (fun acc n -> match n.kind with Load _ -> acc + 1 | _ -> acc)
    0 g.nodes

let n_stores (g : t) =
  Array.fold_left
    (fun acc n -> match n.kind with Store _ -> acc + 1 | _ -> acc)
    0 g.nodes
