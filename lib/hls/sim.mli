(** Cycle-faithful datapath simulation of the synthesized design.

    Where the reference interpreter executes the *IR*, this module
    executes the *hardware*: the very data-flow graphs the scheduler
    timed — predicated stores, unconditionally-issued loads, register
    banks rotating on clock edges, finite-width register commits, and
    the memory banking chosen by the data layout. Agreement with the
    interpreter (checked in the test suite for every kernel, many unroll
    vectors and random programs) validates that the structures the
    estimator prices really compute the source program. *)

open Ir

type result = {
  arrays : (string * int array) list;  (** final contents, declaration order *)
  cycles : int;  (** same static accounting as {!Estimate} *)
  dynamic_loads : int;  (** loads issued, counting every iteration *)
  dynamic_stores : int;  (** stores issued (committed or suppressed) *)
  stores_suppressed : int;  (** predicated stores whose guard was false *)
}

val run :
  ?inputs:(string * int array) list -> Estimate.profile -> Ast.kernel -> result
