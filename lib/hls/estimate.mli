(** Behavioral synthesis estimation: area (slices) and performance
    (cycles) for a transformed kernel, plus the fetch/consumption rates
    behind the balance metric — the system's stand-in for the Monet
    estimator the paper invokes once per candidate design.

    The kernel decomposes into a region tree (straight-line blocks and
    loops); each block is scheduled jointly, memory-only and
    compute-only; loops multiply their children by the trip count plus
    one control cycle per iteration. Operator allocation takes the
    per-class maximum concurrency over all blocks — behavioral synthesis
    reuses operators across the peeled and main bodies, which is why
    peeling does not double the datapath. *)

open Ir

type profile = {
  device : Device.t;
  mem : Memory_model.t;
  chaining : bool;  (** see {!Schedule.profile} *)
}

val default_profile : ?pipelined:bool -> ?chaining:bool -> unit -> profile

type t = {
  cycles : int;  (** total execution cycles of the nest *)
  mem_only_cycles : int;
      (** cycles if only memory ports/latencies constrained the design *)
  comp_only_cycles : int;
      (** cycles if only operator delays and loop control constrained it *)
  slices : int;  (** estimated area *)
  register_bits : int;
  bits_moved : int;  (** total data bits transferred to/from memories *)
  fetch_rate : float;  (** F: bits per cycle the memories can provide *)
  consumption_rate : float;  (** C: bits per cycle the datapath consumes *)
  balance : float;  (** B = F / C (Section 3 of the paper) *)
  states : int;  (** FSM states (static schedule length) *)
  memories_used : int;
  usage : ((Op_model.op_class * int) * int) list;  (** allocated operators *)
  reads : int;  (** static read sites *)
  writes : int;
  time_ns : float;
}

(** Control cycles charged per loop iteration (FSM back edge). *)
val loop_overhead_cycles : int

val estimate : profile -> Ast.kernel -> t
val pp : Format.formatter -> t -> unit
