(** Behavioral synthesis estimation: area (slices) and performance
    (cycles) for a transformed kernel, plus the fetch/consumption rates
    behind the balance metric — the system's stand-in for the Monet
    estimator the paper invokes once per candidate design.

    The kernel decomposes into a region tree (straight-line blocks and
    loops); each block is scheduled jointly, memory-only and
    compute-only; loops multiply their children by the trip count plus
    one control cycle per iteration. Operator allocation takes the
    per-class maximum concurrency over all blocks — behavioral synthesis
    reuses operators across the peeled and main bodies, which is why
    peeling does not double the datapath. *)

open Ir

type profile = {
  device : Device.t;
  mem : Memory_model.t;
  chaining : bool;  (** see {!Schedule.profile} *)
}

val default_profile : ?pipelined:bool -> ?chaining:bool -> unit -> profile

(** Version tag of the estimator's observable behaviour, bumped whenever
    the scheduler, DFG builder, data layout, operator/memory models or
    the area/cycle accounting change what {!estimate} can return.
    Persistent evaluation stores include it in their key hash so a cache
    written by an older estimator is never read. *)
val version : string

type t = {
  cycles : int;  (** total execution cycles of the nest *)
  mem_only_cycles : int;
      (** cycles if only memory ports/latencies constrained the design *)
  comp_only_cycles : int;
      (** cycles if only operator delays and loop control constrained it *)
  slices : int;  (** estimated area *)
  register_bits : int;
  bits_moved : int;  (** total data bits transferred to/from memories *)
  fetch_rate : float;  (** F: bits per cycle the memories can provide *)
  consumption_rate : float;  (** C: bits per cycle the datapath consumes *)
  balance : float;  (** B = F / C (Section 3 of the paper) *)
  states : int;  (** FSM states (static schedule length) *)
  memories_used : int;
  usage : ((Op_model.op_class * int) * int) list;  (** allocated operators *)
  reads : int;  (** static read sites *)
  writes : int;
  time_ns : float;
}

(** Control cycles charged per loop iteration (FSM back edge). *)
val loop_overhead_cycles : int

(** Per-stage accounting for one or more {!estimate} calls: wall time
    in DFG construction, scheduling and data layout, plus how many
    blocks were served from the tri-schedule memo. The caller owns the
    record and may accumulate across calls. *)
type stage_timers = {
  mutable dfg_seconds : float;
  mutable schedule_seconds : float;
  mutable layout_seconds : float;
  mutable sched_memo_hits : int;
  mutable region_memo_hits : int;
      (** blocks that missed the whole-block table but restored a
          statement-prefix snapshot and scheduled only their tail *)
}

val fresh_timers : unit -> stage_timers

(** Estimate a transformed kernel. With [sched_memo], each block's
    tri-schedule is looked up by {!Dfg.fingerprint} before scheduling —
    the memo is exact (same fingerprint, bit-identical schedule), so the
    result is field-for-field identical with and without it; an unrolled
    nest then schedules each distinct block shape once. With [arena],
    DFGs are built into the reusable arena (no per-block allocation in
    steady state) and blocks additionally hit the memo's region level:
    a block extending a previously seen statement prefix restores the
    frozen scheduler state and schedules only the tail. With [timers],
    per-stage wall time and memo hits are accumulated into the record. *)
val estimate :
  ?sched_memo:Schedule.memo ->
  ?timers:stage_timers ->
  ?arena:Dfg.arena ->
  profile ->
  Ast.kernel ->
  t

val pp : Format.formatter -> t -> unit
