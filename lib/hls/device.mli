(** Target device and board model: a Xilinx Virtex-1000-class FPGA on an
    Annapolis WildStar-class board, the platform of the paper's
    experiments. Only the figures the DSE algorithm consumes are
    modelled: slice capacity, number and width of the external memories,
    and the fixed target clock. *)

type t = {
  name : string;
  capacity_slices : int;
  num_memories : int;
  memory_width_bits : int;
  clock_ns : float;
  ffs_per_slice : int;
}

(** Virtex 1000 (12,288 slices); 4 external 32-bit memories; 40 ns
    clock. *)
val virtex1000_wildstar : t

val default : t
