(** External memory timing. The paper evaluates two regimes
    (Section 6.2): fully pipelined accesses (1-cycle reads and writes,
    one access per memory per cycle) and non-pipelined accesses with the
    Annapolis WildStar latencies — 7-cycle reads, 3-cycle writes, the
    memory busy throughout. *)

type t = {
  read_latency : int;  (** cycles from issue to data *)
  write_latency : int;
  read_occupancy : int;  (** cycles the port is busy per read *)
  write_occupancy : int;
}

val pipelined : t
val non_pipelined : t
val of_flag : pipelined:bool -> t
val name : t -> string
