(** As-Soon-As-Possible scheduling of one block's DFG under memory-port
    and clock-period constraints — the estimator's stand-in for Monet's
    scheduler (the paper names Monet's algorithm ASAP, Section 5.2).

    Operations chain combinationally within the 40 ns cycle as long as
    their accumulated delay fits; memory operations are issued at cycle
    boundaries, at most one unposted access per memory per occupancy
    window. Two relaxed modes serve the balance metric: [`Mem_only]
    ignores computation (the rate at which the memories could supply
    data) and [`Comp_only] ignores memory constraints (the rate at which
    the datapath could consume it).

    The estimator needs all three schedules of every block; {!run_tri}
    produces them in a single walk over the node array (one traversal,
    one operator-class/delay lookup per node) instead of three separate
    {!run} calls. Both entry points share the same per-node scheduling
    helpers, so their results are identical by construction. *)

type mode = [ `Joint | `Mem_only | `Comp_only ]

type profile = {
  device : Device.t;
  mem : Memory_model.t;
  chaining : bool;
      (** allow several dependent operators to share one clock cycle when
          their delays fit the period. Monet-generation tools scheduled
          essentially one operation level per control step, so the
          paper-faithful default is [false]; modern HLS chains freely. *)
}

type result = {
  cycles : int;
  bits_moved : int;
  usage : ((Op_model.op_class * int) * int) list;
      (** operator class/width-bucket -> max per-cycle concurrency;
          the allocation a behavioral synthesis binder would need *)
  reads : int;
  writes : int;
}

let eps = 1e-6

(* One mode's scheduling state: finish times plus the memory-occupancy
   and operator-concurrency tables its constraints need. The three modes
   never share state, which is what lets [run_tri] advance all of them
   through a single node-array walk. *)
type state = {
  use_mem : bool;
  use_comp : bool;
  finish : float array;
  (* Memory occupancy as a busy-cycle set per memory, with a per-memory
     hint for the earliest cycle that may still be free (keeps the
     all-ready-at-zero relaxed schedules linear). *)
  busy : (int * int, unit) Hashtbl.t;
  hint : (int, int) Hashtbl.t;
  (* Operator concurrency per cycle. *)
  occupancy : (Op_model.op_class * int * int, int) Hashtbl.t;
  mutable bits : int;
  mutable reads : int;
  mutable writes : int;
}

let make_state ~(mode : mode) n =
  {
    use_mem = mode <> `Comp_only;
    use_comp = mode <> `Mem_only;
    finish = Array.make n 0.0;
    busy = Hashtbl.create 256;
    hint = Hashtbl.create 8;
    occupancy = Hashtbl.create 64;
    bits = 0;
    reads = 0;
    writes = 0;
  }

let find_slot st memid c0 occ =
  let h = Option.value ~default:0 (Hashtbl.find_opt st.hint memid) in
  let free c =
    let rec go k = k >= occ || ((not (Hashtbl.mem st.busy (memid, c + k))) && go (k + 1)) in
    go 0
  in
  let rec search c = if free c then c else search (c + 1) in
  let c = search (max c0 h) in
  for k = 0 to occ - 1 do
    Hashtbl.replace st.busy (memid, c + k) ()
  done;
  (* advance the hint past any now-full prefix when this fill touched it *)
  if c = h then begin
    let rec bump c = if Hashtbl.mem st.busy (memid, c) then bump (c + 1) else c in
    Hashtbl.replace st.hint memid (bump h)
  end;
  c

let occupy st cls bucket c0 c1 =
  for c = c0 to c1 do
    let key = (cls, bucket, c) in
    Hashtbl.replace st.occupancy key
      (1 + Option.value ~default:0 (Hashtbl.find_opt st.occupancy key))
  done

let ready st preds =
  List.fold_left (fun acc p -> Float.max acc st.finish.(p)) 0.0 preds

let boundary clk t =
  Float.of_int (int_of_float (Float.ceil ((t -. eps) /. clk))) *. clk

(* Per-node scheduling of one mode, shared verbatim by [run] and
   [run_tri]. Each takes the node's ready time [r] under that mode. *)

let sched_op (p : profile) st id cls ~d ~bucket r =
  if not st.use_comp then st.finish.(id) <- r
  else begin
    let clk = p.device.Device.clock_ns in
    let free = d <= 1.0 in
    (* free operations (constant shifts, wiring) always chain *)
    let start =
      if free then r
      else if not p.chaining then boundary clk r
      else if d >= clk then boundary clk r
      else begin
        (* chain within the current cycle if the delay fits *)
        let cyc_start = Float.of_int (int_of_float (r /. clk)) *. clk in
        if r +. d <= cyc_start +. clk +. eps then r else boundary clk r
      end
    in
    let f = start +. d in
    st.finish.(id) <- f;
    if d > 0.5 then begin
      let c0 = int_of_float (start /. clk) in
      let c1 = int_of_float ((f -. eps) /. clk) in
      occupy st cls bucket c0 (max c0 c1)
    end
  end

let sched_mem (p : profile) st id ~mem ~width ~is_read r =
  let clk = p.device.Device.clock_ns in
  if is_read then st.reads <- st.reads + 1 else st.writes <- st.writes + 1;
  st.bits <- st.bits + width;
  if not st.use_mem then st.finish.(id) <- r
  else begin
    let occ, lat =
      if is_read then (p.mem.Memory_model.read_occupancy, p.mem.Memory_model.read_latency)
      else (p.mem.Memory_model.write_occupancy, p.mem.Memory_model.write_latency)
    in
    let c0 = int_of_float (Float.ceil ((r -. eps) /. clk)) in
    let c = find_slot st mem c0 occ in
    st.finish.(id) <- Float.of_int (c + lat) *. clk
  end

let finalize (p : profile) st : result =
  let clk = p.device.Device.clock_ns in
  let max_finish = Array.fold_left Float.max 0.0 st.finish in
  let cycles = int_of_float (Float.ceil ((max_finish -. eps) /. clk)) in
  (* Fold per-cycle occupancy into per-operator maxima. *)
  let usage : ((Op_model.op_class * int) * int) list =
    let tbl = Hashtbl.create 16 in
    Hashtbl.iter
      (fun (cls, bucket, _) count ->
        let key = (cls, bucket) in
        let cur = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
        Hashtbl.replace tbl key (max cur count))
      st.occupancy;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort compare
  in
  { cycles = max cycles 0; bits_moved = st.bits; usage; reads = st.reads; writes = st.writes }

let step (p : profile) st (node : Dfg.node) =
  let r = ready st node.preds in
  match node.kind with
  | Dfg.Source _ | Dfg.Move _ | Dfg.Move_out _ | Dfg.Reg_write _ ->
      st.finish.(node.id) <- r
  | Dfg.Op { cls; width; _ } ->
      sched_op p st node.id cls ~d:(Op_model.delay_ns cls ~width)
        ~bucket:(Op_model.width_bucket width) r
  | Dfg.Load { mem; width; _ } -> sched_mem p st node.id ~mem ~width ~is_read:true r
  | Dfg.Store { mem; width; _ } -> sched_mem p st node.id ~mem ~width ~is_read:false r

let run ?(mode : mode = `Joint) (p : profile) (g : Dfg.t) : result =
  let st = make_state ~mode (Array.length g.Dfg.nodes) in
  Array.iter (step p st) g.Dfg.nodes;
  finalize p st

type tri = { joint : result; mem_only : result; comp_only : result }

(* ------------------------------------------------------------------ *)
(* Content-addressed tri-schedule memo.

   [run_tri] is a pure function of the graph's schedule-relevant
   projection and the profile; {!Dfg.fingerprint} is injective on that
   projection, so a fingerprint -> tri table keyed by it is an *exact*
   memo: a hit returns the very record a fresh run would compute. One
   table serves one profile (the {!Design} context that owns it fixes
   the profile for its lifetime); tables are copied into domain forks
   and merged back with {!memo_absorb}, never shared across domains. *)

type memo = (string, tri) Hashtbl.t

let memo_create () : memo = Hashtbl.create 256
let memo_copy : memo -> memo = Hashtbl.copy
let memo_size : memo -> int = Hashtbl.length

let memo_absorb ~(into : memo) (forked : memo) : unit =
  Hashtbl.iter
    (fun fp tri -> if not (Hashtbl.mem into fp) then Hashtbl.replace into fp tri)
    forked

let run_tri (p : profile) (g : Dfg.t) : tri =
  let n = Array.length g.Dfg.nodes in
  let j = make_state ~mode:`Joint n in
  let m = make_state ~mode:`Mem_only n in
  let c = make_state ~mode:`Comp_only n in
  (* One walk: the node kind is matched and the operator delay/bucket
     looked up once, then each mode advances on its own state (ready
     times genuinely differ per mode, so they are computed per state). *)
  Array.iter
    (fun (node : Dfg.node) ->
      match node.kind with
      | Dfg.Source _ | Dfg.Move _ | Dfg.Move_out _ | Dfg.Reg_write _ ->
          j.finish.(node.id) <- ready j node.preds;
          m.finish.(node.id) <- ready m node.preds;
          c.finish.(node.id) <- ready c node.preds
      | Dfg.Op { cls; width; _ } ->
          let d = Op_model.delay_ns cls ~width in
          let bucket = Op_model.width_bucket width in
          sched_op p j node.id cls ~d ~bucket (ready j node.preds);
          m.finish.(node.id) <- ready m node.preds;
          sched_op p c node.id cls ~d ~bucket (ready c node.preds)
      | Dfg.Load { mem; width; _ } ->
          sched_mem p j node.id ~mem ~width ~is_read:true (ready j node.preds);
          sched_mem p m node.id ~mem ~width ~is_read:true (ready m node.preds);
          sched_mem p c node.id ~mem ~width ~is_read:true (ready c node.preds)
      | Dfg.Store { mem; width; _ } ->
          sched_mem p j node.id ~mem ~width ~is_read:false (ready j node.preds);
          sched_mem p m node.id ~mem ~width ~is_read:false (ready m node.preds);
          sched_mem p c node.id ~mem ~width ~is_read:false (ready c node.preds))
    g.Dfg.nodes;
  { joint = finalize p j; mem_only = finalize p m; comp_only = finalize p c }

(** Memoized {!run_tri}. Returns the tri-schedule plus whether it was
    served from the table ([true] = hit, no scheduling ran). *)
let run_tri_memo (memo : memo) (p : profile) (g : Dfg.t) : tri * bool =
  let fp = Dfg.fingerprint g in
  match Hashtbl.find_opt memo fp with
  | Some tri -> (tri, true)
  | None ->
      let tri = run_tri p g in
      Hashtbl.replace memo fp tri;
      (tri, false)
