(** As-Soon-As-Possible scheduling of one block's DFG under memory-port
    and clock-period constraints — the estimator's stand-in for Monet's
    scheduler (the paper names Monet's algorithm ASAP, Section 5.2).

    Operations chain combinationally within the 40 ns cycle as long as
    their accumulated delay fits; memory operations are issued at cycle
    boundaries, at most one unposted access per memory per occupancy
    window. Two relaxed modes serve the balance metric: [`Mem_only]
    ignores computation (the rate at which the memories could supply
    data) and [`Comp_only] ignores memory constraints (the rate at which
    the datapath could consume it). *)

type mode = [ `Joint | `Mem_only | `Comp_only ]

type profile = {
  device : Device.t;
  mem : Memory_model.t;
  chaining : bool;
      (** allow several dependent operators to share one clock cycle when
          their delays fit the period. Monet-generation tools scheduled
          essentially one operation level per control step, so the
          paper-faithful default is [false]; modern HLS chains freely. *)
}

type result = {
  cycles : int;
  bits_moved : int;
  usage : ((Op_model.op_class * int) * int) list;
      (** operator class/width-bucket -> max per-cycle concurrency;
          the allocation a behavioral synthesis binder would need *)
  reads : int;
  writes : int;
}

let eps = 1e-6

let run ?(mode : mode = `Joint) (p : profile) (g : Dfg.t) : result =
  let clk = p.device.Device.clock_ns in
  let use_mem = mode <> `Comp_only in
  let use_comp = mode <> `Mem_only in
  let n = Array.length g.Dfg.nodes in
  let finish = Array.make n 0.0 in
  (* Memory occupancy as a busy-cycle set per memory, with a per-memory
     hint for the earliest cycle that may still be free (keeps the
     all-ready-at-zero relaxed schedules linear). *)
  let busy : (int * int, unit) Hashtbl.t = Hashtbl.create 256 in
  let hint : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let find_slot memid c0 occ =
    let h = Option.value ~default:0 (Hashtbl.find_opt hint memid) in
    let free c =
      let rec go k = k >= occ || ((not (Hashtbl.mem busy (memid, c + k))) && go (k + 1)) in
      go 0
    in
    let rec search c = if free c then c else search (c + 1) in
    let c = search (max c0 h) in
    for k = 0 to occ - 1 do
      Hashtbl.replace busy (memid, c + k) ()
    done;
    (* advance the hint past any now-full prefix when this fill touched it *)
    if c = h then begin
      let rec bump c = if Hashtbl.mem busy (memid, c) then bump (c + 1) else c in
      Hashtbl.replace hint memid (bump h)
    end;
    c
  in
  (* Operator concurrency per cycle. *)
  let occupancy : (Op_model.op_class * int * int, int) Hashtbl.t =
    Hashtbl.create 64
  in
  let occupy cls bucket c0 c1 =
    for c = c0 to c1 do
      let key = (cls, bucket, c) in
      Hashtbl.replace occupancy key
        (1 + Option.value ~default:0 (Hashtbl.find_opt occupancy key))
    done
  in
  let bits = ref 0 in
  let reads = ref 0 in
  let writes = ref 0 in
  let ready preds =
    List.fold_left (fun acc p -> Float.max acc finish.(p)) 0.0 preds
  in
  let boundary t = Float.of_int (int_of_float (Float.ceil ((t -. eps) /. clk))) *. clk in
  Array.iter
    (fun (node : Dfg.node) ->
      let r = ready node.preds in
      match node.kind with
      | Dfg.Source _ -> finish.(node.id) <- r
      | Dfg.Move _ | Dfg.Move_out _ | Dfg.Reg_write _ -> finish.(node.id) <- r
      | Dfg.Op { cls; width; _ } ->
          if not use_comp then finish.(node.id) <- r
          else begin
            let d = Op_model.delay_ns cls ~width in
            let free = d <= 1.0 in
            (* free operations (constant shifts, wiring) always chain *)
            let start =
              if free then r
              else if not p.chaining then boundary r
              else if d >= clk then boundary r
              else begin
                (* chain within the current cycle if the delay fits *)
                let cyc_start = Float.of_int (int_of_float (r /. clk)) *. clk in
                if r +. d <= cyc_start +. clk +. eps then r else boundary r
              end
            in
            let f = start +. d in
            finish.(node.id) <- f;
            if d > 0.5 then begin
              let c0 = int_of_float (start /. clk) in
              let c1 = int_of_float ((f -. eps) /. clk) in
              occupy cls (Op_model.width_bucket width) c0 (max c0 c1)
            end
          end
      | Dfg.Load { mem; width; _ } ->
          incr reads;
          bits := !bits + width;
          if not use_mem then finish.(node.id) <- r
          else begin
            let c0 = int_of_float (Float.ceil ((r -. eps) /. clk)) in
            let c = find_slot mem c0 p.mem.Memory_model.read_occupancy in
            finish.(node.id) <-
              Float.of_int (c + p.mem.Memory_model.read_latency) *. clk
          end
      | Dfg.Store { mem; width; _ } ->
          incr writes;
          bits := !bits + width;
          if not use_mem then finish.(node.id) <- r
          else begin
            let c0 = int_of_float (Float.ceil ((r -. eps) /. clk)) in
            let c = find_slot mem c0 p.mem.Memory_model.write_occupancy in
            finish.(node.id) <-
              Float.of_int (c + p.mem.Memory_model.write_latency) *. clk
          end)
    g.Dfg.nodes;
  let max_finish = Array.fold_left Float.max 0.0 finish in
  let cycles = int_of_float (Float.ceil ((max_finish -. eps) /. clk)) in
  (* Fold per-cycle occupancy into per-operator maxima. *)
  let usage : ((Op_model.op_class * int) * int) list =
    let tbl = Hashtbl.create 16 in
    Hashtbl.iter
      (fun (cls, bucket, _) count ->
        let key = (cls, bucket) in
        let cur = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
        Hashtbl.replace tbl key (max cur count))
      occupancy;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort compare
  in
  { cycles = max cycles 0; bits_moved = !bits; usage; reads = !reads; writes = !writes }
