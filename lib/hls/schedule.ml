(** As-Soon-As-Possible scheduling of one block's DFG under memory-port
    and clock-period constraints — the estimator's stand-in for Monet's
    scheduler (the paper names Monet's algorithm ASAP, Section 5.2).

    Operations chain combinationally within the 40 ns cycle as long as
    their accumulated delay fits; memory operations are issued at cycle
    boundaries, at most one unposted access per memory per occupancy
    window. Two relaxed modes serve the balance metric: [`Mem_only]
    ignores computation (the rate at which the memories could supply
    data) and [`Comp_only] ignores memory constraints (the rate at which
    the datapath could consume it).

    The estimator needs all three schedules of every block; {!run_tri}
    produces them in a single walk over the node array (one traversal,
    one operator-class/delay lookup per node) instead of three separate
    {!run} calls. Both entry points share the same per-node scheduling
    helpers, so their results are identical by construction. *)

type mode = [ `Joint | `Mem_only | `Comp_only ]

type profile = {
  device : Device.t;
  mem : Memory_model.t;
  chaining : bool;
      (** allow several dependent operators to share one clock cycle when
          their delays fit the period. Monet-generation tools scheduled
          essentially one operation level per control step, so the
          paper-faithful default is [false]; modern HLS chains freely. *)
}

type result = {
  cycles : int;
  bits_moved : int;
  usage : ((Op_model.op_class * int) * int) list;
      (** operator class/width-bucket -> max per-cycle concurrency;
          the allocation a behavioral synthesis binder would need *)
  reads : int;
  writes : int;
}

let eps = 1e-6

(* One mode's scheduling state: finish times plus the memory-occupancy
   and operator-concurrency tables its constraints need. The three modes
   never share state, which is what lets [run_tri] advance all of them
   through a single node-array walk. *)
type state = {
  use_mem : bool;
  use_comp : bool;
  finish : float array;
  (* Memory occupancy as a busy-cycle set per memory, with a per-memory
     hint for the earliest cycle that may still be free (keeps the
     all-ready-at-zero relaxed schedules linear). *)
  busy : (int * int, unit) Hashtbl.t;
  hint : (int, int) Hashtbl.t;
  (* Operator concurrency per cycle. *)
  occupancy : (Op_model.op_class * int * int, int) Hashtbl.t;
  mutable bits : int;
  mutable reads : int;
  mutable writes : int;
}

let make_state ~(mode : mode) n =
  {
    use_mem = mode <> `Comp_only;
    use_comp = mode <> `Mem_only;
    finish = Array.make n 0.0;
    busy = Hashtbl.create 256;
    hint = Hashtbl.create 8;
    occupancy = Hashtbl.create 64;
    bits = 0;
    reads = 0;
    writes = 0;
  }

let find_slot st memid c0 occ =
  let h = Option.value ~default:0 (Hashtbl.find_opt st.hint memid) in
  let free c =
    let rec go k = k >= occ || ((not (Hashtbl.mem st.busy (memid, c + k))) && go (k + 1)) in
    go 0
  in
  let rec search c = if free c then c else search (c + 1) in
  let c = search (max c0 h) in
  for k = 0 to occ - 1 do
    Hashtbl.replace st.busy (memid, c + k) ()
  done;
  (* advance the hint past any now-full prefix when this fill touched it *)
  if c = h then begin
    let rec bump c = if Hashtbl.mem st.busy (memid, c) then bump (c + 1) else c in
    Hashtbl.replace st.hint memid (bump h)
  end;
  c

let occupy st cls bucket c0 c1 =
  for c = c0 to c1 do
    let key = (cls, bucket, c) in
    Hashtbl.replace st.occupancy key
      (1 + Option.value ~default:0 (Hashtbl.find_opt st.occupancy key))
  done

let ready st preds =
  List.fold_left (fun acc p -> Float.max acc st.finish.(p)) 0.0 preds

let boundary clk t =
  Float.of_int (int_of_float (Float.ceil ((t -. eps) /. clk))) *. clk

(* Per-node scheduling of one mode, shared verbatim by [run] and
   [run_tri]. Each takes the node's ready time [r] under that mode. *)

let sched_op (p : profile) st id cls ~d ~bucket r =
  if not st.use_comp then st.finish.(id) <- r
  else begin
    let clk = p.device.Device.clock_ns in
    let free = d <= 1.0 in
    (* free operations (constant shifts, wiring) always chain *)
    let start =
      if free then r
      else if not p.chaining then boundary clk r
      else if d >= clk then boundary clk r
      else begin
        (* chain within the current cycle if the delay fits *)
        let cyc_start = Float.of_int (int_of_float (r /. clk)) *. clk in
        if r +. d <= cyc_start +. clk +. eps then r else boundary clk r
      end
    in
    let f = start +. d in
    st.finish.(id) <- f;
    if d > 0.5 then begin
      let c0 = int_of_float (start /. clk) in
      let c1 = int_of_float ((f -. eps) /. clk) in
      occupy st cls bucket c0 (max c0 c1)
    end
  end

let sched_mem (p : profile) st id ~mem ~width ~is_read r =
  let clk = p.device.Device.clock_ns in
  if is_read then st.reads <- st.reads + 1 else st.writes <- st.writes + 1;
  st.bits <- st.bits + width;
  if not st.use_mem then st.finish.(id) <- r
  else begin
    let occ, lat =
      if is_read then (p.mem.Memory_model.read_occupancy, p.mem.Memory_model.read_latency)
      else (p.mem.Memory_model.write_occupancy, p.mem.Memory_model.write_latency)
    in
    let c0 = int_of_float (Float.ceil ((r -. eps) /. clk)) in
    let c = find_slot st mem c0 occ in
    st.finish.(id) <- Float.of_int (c + lat) *. clk
  end

let finalize (p : profile) st : result =
  let clk = p.device.Device.clock_ns in
  let max_finish = Array.fold_left Float.max 0.0 st.finish in
  let cycles = int_of_float (Float.ceil ((max_finish -. eps) /. clk)) in
  (* Fold per-cycle occupancy into per-operator maxima. *)
  let usage : ((Op_model.op_class * int) * int) list =
    let tbl = Hashtbl.create 16 in
    Hashtbl.iter
      (fun (cls, bucket, _) count ->
        let key = (cls, bucket) in
        let cur = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
        Hashtbl.replace tbl key (max cur count))
      st.occupancy;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort compare
  in
  { cycles = max cycles 0; bits_moved = st.bits; usage; reads = st.reads; writes = st.writes }

let step (p : profile) st (node : Dfg.node) =
  let r = ready st node.preds in
  match node.kind with
  | Dfg.Source _ | Dfg.Move _ | Dfg.Move_out _ | Dfg.Reg_write _ ->
      st.finish.(node.id) <- r
  | Dfg.Op { cls; width; _ } ->
      sched_op p st node.id cls ~d:(Op_model.delay_ns cls ~width)
        ~bucket:(Op_model.width_bucket width) r
  | Dfg.Load { mem; width; _ } -> sched_mem p st node.id ~mem ~width ~is_read:true r
  | Dfg.Store { mem; width; _ } -> sched_mem p st node.id ~mem ~width ~is_read:false r

let run ?(mode : mode = `Joint) (p : profile) (g : Dfg.t) : result =
  let st = make_state ~mode g.Dfg.len in
  for i = 0 to g.Dfg.len - 1 do
    step p st g.Dfg.nodes.(i)
  done;
  finalize p st

type tri = { joint : result; mem_only : result; comp_only : result }

(* ------------------------------------------------------------------ *)
(* Content-addressed tri-schedule memo, at two granularities.

   [run_tri] is a pure function of the graph's schedule-relevant
   projection and the profile; {!Dfg.fingerprint} is injective on that
   projection, so a fingerprint -> tri table keyed by it is an *exact*
   memo: a hit returns the very record a fresh run would compute.

   The scheduler walks the node array in order and its whole state after
   [m] nodes depends only on those [m] nodes — and DFG construction is
   append-only, so a statement prefix of a block has exactly an array
   prefix of its graph and a byte prefix of its fingerprint. The memo
   therefore also stores {e snapshots} of the tri-state at statement
   boundaries, keyed by the prefix fingerprint: a block that misses the
   whole-block table but extends a previously seen region restores the
   longest stored snapshot and schedules only the tail. Peeled copies,
   guard-specialised bodies and neighbouring unroll factors share long
   statement prefixes, which is where region hits come from.

   One table serves one profile (the {!Design} context that owns it
   fixes the profile for its lifetime); tables are copied into domain
   forks and merged back with {!memo_absorb}, never shared across
   domains (snapshot records are immutable after creation, so forks may
   share them). *)

(* One mode's state frozen after [sn_count] nodes: the finish-time
   prefix, private copies of the occupancy tables, and the counters. *)
type mode_snap = {
  ms_finish : float array;  (* length = snapshot node count *)
  ms_busy : (int * int, unit) Hashtbl.t;
  ms_hint : (int, int) Hashtbl.t;
  ms_occ : (Op_model.op_class * int * int, int) Hashtbl.t;
  ms_bits : int;
  ms_reads : int;
  ms_writes : int;
}

type snapshot = {
  sn_count : int;  (* nodes already scheduled *)
  sn_j : mode_snap;
  sn_m : mode_snap;
  sn_c : mode_snap;
}

type memo = {
  whole : (string, tri) Hashtbl.t;
  partial : (string, snapshot) Hashtbl.t;
}

let memo_create () : memo =
  { whole = Hashtbl.create 256; partial = Hashtbl.create 256 }

let memo_copy (m : memo) : memo =
  { whole = Hashtbl.copy m.whole; partial = Hashtbl.copy m.partial }

let memo_size (m : memo) : int = Hashtbl.length m.whole

let memo_absorb ~(into : memo) (forked : memo) : unit =
  Hashtbl.iter
    (fun fp tri ->
      if not (Hashtbl.mem into.whole fp) then Hashtbl.replace into.whole fp tri)
    forked.whole;
  Hashtbl.iter
    (fun fp sn ->
      if not (Hashtbl.mem into.partial fp) then
        Hashtbl.replace into.partial fp sn)
    forked.partial

let snap_mode (st : state) count : mode_snap =
  {
    ms_finish = Array.sub st.finish 0 count;
    ms_busy = Hashtbl.copy st.busy;
    ms_hint = Hashtbl.copy st.hint;
    ms_occ = Hashtbl.copy st.occupancy;
    ms_bits = st.bits;
    ms_reads = st.reads;
    ms_writes = st.writes;
  }

let restore_mode ~(mode : mode) n (ms : mode_snap) : state =
  let finish = Array.make n 0.0 in
  Array.blit ms.ms_finish 0 finish 0 (Array.length ms.ms_finish);
  {
    use_mem = mode <> `Comp_only;
    use_comp = mode <> `Mem_only;
    finish;
    busy = Hashtbl.copy ms.ms_busy;
    hint = Hashtbl.copy ms.ms_hint;
    occupancy = Hashtbl.copy ms.ms_occ;
    bits = ms.ms_bits;
    reads = ms.ms_reads;
    writes = ms.ms_writes;
  }

(* Advance all three modes over node [i] of [g]. One walk: the node kind
   is matched and the operator delay/bucket looked up once, then each
   mode advances on its own state (ready times genuinely differ per
   mode, so they are computed per state). *)
let tri_step (p : profile) j m c (node : Dfg.node) =
  match node.kind with
  | Dfg.Source _ | Dfg.Move _ | Dfg.Move_out _ | Dfg.Reg_write _ ->
      j.finish.(node.id) <- ready j node.preds;
      m.finish.(node.id) <- ready m node.preds;
      c.finish.(node.id) <- ready c node.preds
  | Dfg.Op { cls; width; _ } ->
      let d = Op_model.delay_ns cls ~width in
      let bucket = Op_model.width_bucket width in
      sched_op p j node.id cls ~d ~bucket (ready j node.preds);
      m.finish.(node.id) <- ready m node.preds;
      sched_op p c node.id cls ~d ~bucket (ready c node.preds)
  | Dfg.Load { mem; width; _ } ->
      sched_mem p j node.id ~mem ~width ~is_read:true (ready j node.preds);
      sched_mem p m node.id ~mem ~width ~is_read:true (ready m node.preds);
      sched_mem p c node.id ~mem ~width ~is_read:true (ready c node.preds)
  | Dfg.Store { mem; width; _ } ->
      sched_mem p j node.id ~mem ~width ~is_read:false (ready j node.preds);
      sched_mem p m node.id ~mem ~width ~is_read:false (ready m node.preds);
      sched_mem p c node.id ~mem ~width ~is_read:false (ready c node.preds)

let run_tri (p : profile) (g : Dfg.t) : tri =
  let n = g.Dfg.len in
  let j = make_state ~mode:`Joint n in
  let m = make_state ~mode:`Mem_only n in
  let c = make_state ~mode:`Comp_only n in
  for i = 0 to n - 1 do
    tri_step p j m c g.Dfg.nodes.(i)
  done;
  { joint = finalize p j; mem_only = finalize p m; comp_only = finalize p c }

type memo_outcome =
  | Whole_hit  (** served from the whole-block table; nothing scheduled *)
  | Region_hit of int
      (** restored a statement-prefix snapshot covering this many nodes;
          only the tail was scheduled *)
  | Miss

(* Statement boundaries worth keying snapshots under. Blocks can run to
   hundreds of statements, so probing every boundary would cost more
   string hashing than the skipped scheduling saves; keeping O(log
   #stmts) boundaries bounds that. The boundaries must also be
   {e shape-independent}: a block probes with its own marks, so two
   blocks sharing a statement prefix only rendezvous at boundaries whose
   statement count does not depend on either block's total length.
   Boundaries at statement counts 1, 2, 4, 8, ... satisfy both — any two
   blocks sharing at least [2^k] statements meet at [2^k] — and the last
   interior boundary is added on top for the trailing-extension case
   (peeled copies, guard-specialised bodies). Boundaries are
   [(node_count, fp_bytes)] pairs; whole-block entries are excluded
   (that is the [whole] table's job). Returned longest first.

   Boundaries deeper than {!snap_cap} nodes are dropped entirely: a
   snapshot copies the occupancy tables and the finish prefix, so its
   cost grows with the prefix, while the chance that another block
   shares a prefix that long shrinks — past a few hundred nodes the
   unrolled bodies have long since diverged and deep snapshots are pure
   copy cost that is never restored. *)
let snap_cap = 512

let candidate_marks (marks : (int * int) array) (n : int) : (int * int) list =
  let len = Array.length marks in
  let keep = ref [] in
  let add ((count, _) as mk) =
    if count > 0 && count < n && count <= snap_cap then
      match !keep with
      | (c0, _) :: _ when c0 = count -> ()
      | _ -> keep := mk :: !keep
  in
  (* statement counts 1, 2, 4, ...: marks.(i) closes statement i+1 *)
  let i = ref 1 in
  while !i <= len - 1 do
    add marks.(!i - 1);
    i := !i * 2
  done;
  if len > 1 then add marks.(len - 2);
  List.sort (fun (a, _) (b, _) -> compare b a) !keep

(** Memoized {!run_tri}. A whole-fingerprint hit returns the stored
    record (no scheduling); otherwise, when [marks] describes the
    block's statement boundaries (see {!Dfg.of_block_arena}), the
    longest stored prefix snapshot is restored and only the remaining
    nodes are scheduled. Either way the result equals a fresh
    {!run_tri} bit for bit — snapshots capture the scheduler's complete
    state, and the state after [m] nodes depends on nothing else. *)
let run_tri_memo ?(marks : (int * int) array = [||]) (memo : memo)
    (p : profile) (g : Dfg.t) : tri * memo_outcome =
  let fp = Dfg.fingerprint g in
  match Hashtbl.find_opt memo.whole fp with
  | Some tri -> (tri, Whole_hit)
  | None ->
      let n = g.Dfg.len in
      let cands = candidate_marks marks n in
      let restored =
        List.find_map
          (fun (count, off) ->
            match Hashtbl.find_opt memo.partial (String.sub fp 0 off) with
            | Some sn when sn.sn_count = count -> Some sn
            | _ -> None)
          cands
      in
      let j, m, c, start =
        match restored with
        | Some sn ->
            ( restore_mode ~mode:`Joint n sn.sn_j,
              restore_mode ~mode:`Mem_only n sn.sn_m,
              restore_mode ~mode:`Comp_only n sn.sn_c,
              sn.sn_count )
        | None -> (make_state ~mode:`Joint n, make_state ~mode:`Mem_only n,
                   make_state ~mode:`Comp_only n, 0)
      in
      (* Snapshot boundaries ahead of the walk, deepest last. *)
      let to_snap =
        List.filter
          (fun (count, off) ->
            count > start
            && not (Hashtbl.mem memo.partial (String.sub fp 0 off)))
          (List.rev cands)
      in
      let rec walk i to_snap =
        let to_snap =
          match to_snap with
          | (count, off) :: rest when count = i ->
              Hashtbl.replace memo.partial (String.sub fp 0 off)
                {
                  sn_count = count;
                  sn_j = snap_mode j count;
                  sn_m = snap_mode m count;
                  sn_c = snap_mode c count;
                };
              rest
          | ts -> ts
        in
        if i < n then begin
          tri_step p j m c g.Dfg.nodes.(i);
          walk (i + 1) to_snap
        end
      in
      walk start to_snap;
      let tri =
        { joint = finalize p j; mem_only = finalize p m; comp_only = finalize p c }
      in
      Hashtbl.replace memo.whole fp tri;
      ( tri,
        match restored with Some sn -> Region_hit sn.sn_count | None -> Miss )
