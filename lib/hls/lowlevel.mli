(** Low-level synthesis (logic synthesis + place-and-route) degradation
    model, used to reproduce the paper's Section 6.4 accuracy study:
    cycle counts never change from the behavioral estimate; the achieved
    clock degrades with routing complexity (small for selected designs,
    severe for the very largest); area grows slightly super-linearly. *)

type implemented = {
  estimate : Estimate.t;
  cycles : int;  (** unchanged from behavioral synthesis *)
  achieved_clock_ns : float;
  actual_slices : int;
  meets_timing : bool;  (** within the 40 ns target *)
  time_ns : float;
}

val place_and_route : ?device:Device.t -> Estimate.t -> implemented
