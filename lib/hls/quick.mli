(** Tier-1 analytical pre-estimator: closed-form, *admissible* lower
    bounds on a design point's cycles and slices computed directly from
    the source kernel and an unroll vector — no transform pipeline, no
    DFG, no scheduling.

    Admissible means that for every vector the bounds never exceed the
    corresponding fields of the full {!Estimate.t} the two-tier engine
    would otherwise compute, so a caller may skip full synthesis of any
    point whose lower bound already disqualifies it (over capacity, or
    provably slower than an incumbent) without changing which design
    the search or the sweep selects. Three transformation-invariant cost
    sources feed the bounds: the mandatory memory footprint (distinct
    elements read from never-written arrays plus distinct elements
    written, divided over the memory ports), the per-iteration loop
    control cycles that survive unrolling and peeling, and the
    structural area floor (memory interface, FSM, declared-scalar
    registers, one operator per data-dependent class).

    Caveats, enforced by the callers in [Dse.Design]: the bounds assume
    the default pipeline (no tiling — strip-mining introduces loops the
    source skeleton does not know), and vectors are normalized to the
    divisor lattice before {!bound} is consulted. *)

open Ir

type t = {
  cycles_lb : int;  (** lower bound on [Estimate.cycles] *)
  mem_cycles_lb : int;  (** lower bound on [Estimate.mem_only_cycles] *)
  comp_cycles_lb : int;  (** lower bound on [Estimate.comp_only_cycles] *)
  slices_lb : int;  (** lower bound on [Estimate.slices] *)
  balance_trend : float;
      (** [comp_cycles_lb / mem_cycles_lb]: same shape as the balance
          metric B, usable to anticipate which side saturates first *)
}

(** Per-kernel precomputation: the mandatory memory footprint (one
    budget-bounded walk of the iteration space), the area floor and the
    loop-control skeleton. Computed once; {!bound} then evaluates any
    vector in time linear in the number of loops. *)
type facts

val facts : device:Device.t -> mem:Memory_model.t -> Ast.kernel -> facts

(** Lower bounds for the design point at [vector] (unroll factors per
    loop index; missing indices mean 1). Monotone in nothing — call it
    per point; it is a few hundred integer operations. *)
val bound : facts -> vector:(string * int) list -> t

val pp : Format.formatter -> t -> unit
