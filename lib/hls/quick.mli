(** Tier-1 analytical pre-estimator: closed-form, *admissible* lower
    bounds on a design point's cycles and slices computed directly from
    the source kernel and an unroll vector — no transform pipeline, no
    DFG, no scheduling.

    Admissible means that for every vector the bounds never exceed the
    corresponding fields of the full {!Estimate.t} the two-tier engine
    would otherwise compute, so a caller may skip full synthesis of any
    point whose lower bound already disqualifies it (over capacity, or
    provably slower than an incumbent) without changing which design
    the search or the sweep selects. Three transformation-invariant cost
    sources feed the bounds: the mandatory memory footprint (distinct
    elements read from never-written arrays plus distinct elements
    written, divided over the memory ports), the per-iteration loop
    control cycles that survive unrolling and peeling, and the
    structural area floor (memory interface, FSM, declared-scalar
    registers, one operator per data-dependent class).

    The bounds are admissible over the *joint* transform space, not
    just the unroll lattice: the control and register-pressure terms
    carry per-loop slack covering every peel the pipeline can perform,
    hold whether or not peeling/LICM/scalar replacement run (disabling
    a pass only adds cost), and a tiling design point is bounded by
    computing {!facts} from the strip-mined source (the skeleton then
    contains the tile and intra-tile loops; the footprint is a property
    of the iteration space and does not change). The engine memoizes
    one [facts] per tile candidate. Vectors are normalized to the
    divisor lattice by the callers before {!bound} is consulted (a raw
    vector still yields a valid, merely looser, bound). *)

open Ir

type t = {
  cycles_lb : int;  (** lower bound on [Estimate.cycles] *)
  mem_cycles_lb : int;  (** lower bound on [Estimate.mem_only_cycles] *)
  comp_cycles_lb : int;  (** lower bound on [Estimate.comp_only_cycles] *)
  slices_lb : int;  (** lower bound on [Estimate.slices] *)
  balance_trend : float;
      (** [comp_cycles_lb / mem_cycles_lb]: same shape as the balance
          metric B, usable to anticipate which side saturates first *)
}

(** Per-kernel precomputation: the mandatory memory footprint (one
    budget-bounded walk of the iteration space), the structural area
    floor, the declared-scalar register bits and the loop-control
    skeleton. Computed once per (kernel, tile) pair; {!bound} then
    evaluates any vector in time linear in the number of loops. *)
type facts

val facts : device:Device.t -> mem:Memory_model.t -> Ast.kernel -> facts

(** Lower bounds for the design point at [vector] (unroll factors per
    loop index; missing indices mean 1). Monotone in nothing — call it
    per point; it is a few hundred integer operations. *)
val bound : facts -> vector:(string * int) list -> t

val pp : Format.formatter -> t -> unit
