(** Datapath operator characterisation for a Virtex-class device: per
    operator class and bit width, the area in device slices and the
    combinational delay deciding how operations pack into the 40 ns
    cycle. Absolute accuracy is not required — the DSE algorithm consumes
    relative areas and schedule lengths. *)

type op_class =
  | Add  (** also subtract and shift-add decompositions *)
  | Mul
  | Div  (** iterative divider, non-constant divisor *)
  | Cmp
  | Logic
  | Shift_const  (** free: routing only *)
  | Shift_var
  | Mux
  | Abs_op
  | Min_max

val class_name : op_class -> string

(** Area in slices of one operator instance. *)
val area : op_class -> width:int -> int

(** Combinational delay in nanoseconds. *)
val delay_ns : op_class -> width:int -> float

(** Bucket widths so operator sharing treats near-equal widths as
    compatible. *)
val width_bucket : int -> int
