(** External memory timing model.

    The paper evaluates two regimes (Section 6.2): fully pipelined
    accesses (read and write latency of 1 cycle, one access issued per
    memory per cycle) and non-pipelined accesses with the Annapolis
    WildStar latencies — 7-cycle reads and 3-cycle writes, during which
    the memory is busy. Real systems fall in between. *)

type t = {
  read_latency : int;  (** cycles from issue to data *)
  write_latency : int;
  read_occupancy : int;  (** cycles the memory port is busy per read *)
  write_occupancy : int;
}

let pipelined =
  { read_latency = 1; write_latency = 1; read_occupancy = 1; write_occupancy = 1 }

(** WildStar without access pipelining. *)
let non_pipelined =
  { read_latency = 7; write_latency = 3; read_occupancy = 7; write_occupancy = 3 }

let of_flag ~pipelined:p = if p then pipelined else non_pipelined

let name t = if t.read_occupancy = 1 then "pipelined" else "non-pipelined"
