(** Behavioral synthesis estimation: area (slices) and performance
    (cycles) for a transformed kernel, plus the fetch/consumption rates
    behind the balance metric. This module is the system's stand-in for
    the Monet estimator the paper invokes (Section 6.2): the compiler
    calls it once per candidate design point.

    The kernel is decomposed into a region tree (straight-line blocks and
    loops); each block is scheduled under all three modes (jointly,
    memory-only, compute-only) in one fused {!Schedule.run_tri} pass;
    loop regions multiply their children's cycles by the trip count plus
    one control cycle per iteration. Operator allocation
    takes the per-class maximum concurrency over all blocks — behavioral
    synthesis reuses operators across the peeled and main bodies, which
    is why peeling does not double the datapath (Section 4). *)

open Ir
module Access = Analysis.Access
module Layout = Data_layout.Layout

type profile = {
  device : Device.t;
  mem : Memory_model.t;
  chaining : bool;  (** operator chaining within a cycle; see {!Schedule.profile} *)
}

let default_profile ?(pipelined = true) ?(chaining = false) () =
  { device = Device.default; mem = Memory_model.of_flag ~pipelined; chaining }

(* Bump whenever the estimator's observable output can change — the
   scheduler, the DFG builder, the data layout, the operator or memory
   models, or this module's area/cycle accounting. Persistent evaluation
   stores are keyed on it, so a stale bump silently serves wrong
   estimates while a missed bump only costs a cold start: when in doubt,
   bump. *)
let version = "1"

type t = {
  cycles : int;  (** total execution cycles of the whole nest *)
  mem_only_cycles : int;
      (** cycles if only memory ports/latencies constrained the design *)
  comp_only_cycles : int;
      (** cycles if only operator delays and loop control constrained it *)
  slices : int;  (** estimated area *)
  register_bits : int;
  bits_moved : int;  (** total data bits transferred to/from memories *)
  fetch_rate : float;  (** F: bits per cycle the memories can provide *)
  consumption_rate : float;  (** C: bits per cycle the datapath consumes *)
  balance : float;  (** B = F / C *)
  states : int;  (** FSM states (static schedule length) *)
  memories_used : int;
  usage : ((Op_model.op_class * int) * int) list;  (** allocated operators *)
  reads : int;  (** static read sites *)
  writes : int;
  time_ns : float;
}

let loop_overhead_cycles = 1

(** Per-stage accounting for one or more [estimate] calls: wall time
    spent building DFGs, scheduling them (memo hits cost only the
    fingerprint), and assigning the data layout, plus how many blocks
    were served from the tri-schedule memo. The caller owns the record
    and may accumulate across calls. *)
type stage_timers = {
  mutable dfg_seconds : float;
  mutable schedule_seconds : float;
  mutable layout_seconds : float;
  mutable sched_memo_hits : int;
  mutable region_memo_hits : int;
}

let fresh_timers () =
  {
    dfg_seconds = 0.0;
    schedule_seconds = 0.0;
    layout_seconds = 0.0;
    sched_memo_hits = 0;
    region_memo_hits = 0;
  }

let now () = Unix.gettimeofday ()

(* Region walk: returns (joint, mem_only, comp_only, bits) as executed
   totals; mutates [usage], [states], [loops]. *)
type acc = {
  usage : (Op_model.op_class * int, int) Hashtbl.t;
  mutable states : int;
  mutable loops : int;
}

let merge_usage acc u =
  List.iter
    (fun (key, n) ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt acc.usage key) in
      Hashtbl.replace acc.usage key (max cur n))
    u

let estimate ?(sched_memo : Schedule.memo option)
    ?(timers : stage_timers option) ?(arena : Dfg.arena option) (p : profile)
    (kernel : Ast.kernel) : t =
  let sched_profile = { Schedule.device = p.device; mem = p.mem; chaining = p.chaining } in
  let accesses = Access.collect kernel.k_body in
  let t0 = now () in
  let layout =
    Layout.assign ~num_memories:p.device.Device.num_memories kernel accesses
  in
  (match timers with
  | Some ts -> ts.layout_seconds <- ts.layout_seconds +. (now () -. t0)
  | None -> ());
  let mem_of a = Layout.memory_of layout a in
  let cursor = Dfg.cursor_of accesses in
  let acc = { usage = Hashtbl.create 16; states = 0; loops = 0 } in
  let rec walk (body : Ast.stmt list) : int * int * int * int =
    (* Split into maximal straight-line chunks and loops. *)
    let flush chunk (j, m, c, b) =
      match List.rev chunk with
      | [] -> (j, m, c, b)
      | stmts ->
          let t0 = now () in
          (* With an arena, build in place and collect the statement
             marks that key the region-level schedule memo; without one
             (the [--no-incremental] escape hatch, or one-shot callers)
             build an owned graph and use only whole-block lookups. *)
          let g, marks =
            match arena with
            | Some arena -> Dfg.of_block_arena ~arena ~kernel ~mem_of ~cursor stmts
            | None -> (Dfg.of_block ~kernel ~mem_of ~cursor stmts, [||])
          in
          let t1 = now () in
          let { Schedule.joint; mem_only = mem_res; comp_only = comp }, outcome =
            match sched_memo with
            | Some memo -> Schedule.run_tri_memo ~marks memo sched_profile g
            | None -> (Schedule.run_tri sched_profile g, Schedule.Miss)
          in
          (match timers with
          | Some ts -> (
              ts.dfg_seconds <- ts.dfg_seconds +. (t1 -. t0);
              ts.schedule_seconds <- ts.schedule_seconds +. (now () -. t1);
              match outcome with
              | Schedule.Whole_hit ->
                  ts.sched_memo_hits <- ts.sched_memo_hits + 1
              | Schedule.Region_hit _ ->
                  ts.region_memo_hits <- ts.region_memo_hits + 1
              | Schedule.Miss -> ())
          | None -> ());
          merge_usage acc joint.Schedule.usage;
          acc.states <- acc.states + joint.Schedule.cycles;
          ( j + joint.Schedule.cycles,
            m + mem_res.Schedule.cycles,
            c + comp.Schedule.cycles,
            b + joint.Schedule.bits_moved )
    in
    let rec go chunk totals = function
      | [] -> flush chunk totals
      | Ast.For l :: rest ->
          let totals = flush chunk totals in
          acc.loops <- acc.loops + 1;
          let trip = Ast.loop_trip l in
          let jl, ml, cl, bl = walk l.body in
          let j, m, c, b = totals in
          let totals =
            ( j + (trip * (jl + loop_overhead_cycles)),
              m + (trip * ml),
              c + (trip * (cl + loop_overhead_cycles)),
              b + (trip * bl) )
          in
          go [] totals rest
      | s :: rest -> go (s :: chunk) totals rest
    in
    go [] (0, 0, 0, 0) body
  in
  let cycles, mem_only, comp_only, bits = walk kernel.k_body in
  (* Static read/write sites (after transformation). *)
  let reads = List.length (List.filter Access.is_read accesses) in
  let writes = List.length (List.filter Access.is_write accesses) in
  (* Area. *)
  let usage =
    Hashtbl.fold (fun k v l -> (k, v) :: l) acc.usage [] |> List.sort compare
  in
  let op_slices =
    List.fold_left
      (fun s ((cls, bucket), n) -> s + (n * Op_model.area cls ~width:bucket))
      0 usage
  in
  let register_bits =
    List.fold_left
      (fun s (d : Ast.scalar_decl) -> s + Dtype.bits d.s_elem)
      0 kernel.k_scalars
    + (16 * acc.loops) (* loop counters *)
  in
  let reg_slices = (register_bits + p.device.Device.ffs_per_slice - 1) / p.device.Device.ffs_per_slice in
  let memories_used =
    List.sort_uniq compare (List.map snd layout.Layout.phys) |> List.length
  in
  let mem_if_slices = 18 * max 1 memories_used in
  let fsm_slices = 4 + (acc.states / 3) + (2 * acc.loops) in
  let slices = op_slices + reg_slices + mem_if_slices + fsm_slices in
  let fetch_rate =
    if mem_only = 0 then Float.infinity else float_of_int bits /. float_of_int mem_only
  in
  let consumption_rate =
    if comp_only = 0 then Float.infinity
    else float_of_int bits /. float_of_int comp_only
  in
  let balance =
    if bits = 0 then Float.infinity
    else if mem_only = 0 then Float.infinity
    else float_of_int comp_only /. float_of_int mem_only
  in
  {
    cycles;
    mem_only_cycles = mem_only;
    comp_only_cycles = comp_only;
    slices;
    register_bits;
    bits_moved = bits;
    fetch_rate;
    consumption_rate;
    balance;
    states = acc.states;
    memories_used;
    usage;
    reads;
    writes;
    time_ns = float_of_int cycles *. p.device.Device.clock_ns;
  }

let pp fmt (t : t) =
  Format.fprintf fmt
    "cycles=%d (mem %d, comp %d) slices=%d regs=%db balance=%.3f F=%.2f C=%.2f states=%d mems=%d"
    t.cycles t.mem_only_cycles t.comp_only_cycles t.slices t.register_bits
    t.balance t.fetch_rate t.consumption_rate t.states t.memories_used
