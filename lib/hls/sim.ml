(** Cycle-faithful datapath simulation of the synthesized design.

    Where the reference interpreter ({!Ir.Eval}) executes the *IR*, this
    module executes the *hardware*: the very data-flow graphs the
    scheduler timed — predicated stores, unconditionally-issued loads,
    register banks rotating on clock edges, finite-width register
    commits, and the memory banking chosen by the data layout. Agreement
    between the two (checked in the test suite for every kernel and many
    unroll vectors) validates that the structures the estimator prices
    really do compute the source program.

    Semantics notes, mirroring predicated hardware:
    - loads on a not-taken path are still issued (the paper's conditional
      memory accesses); their addresses are clamped into the array so the
      dead value is representable, then discarded by the merge mux;
    - division by zero on a not-taken path yields 0 rather than trapping;
    - [&&]/[||] evaluate both operands (no short circuit) — identical
      results on all defined executions. *)

open Ir
module Access = Analysis.Access
module Layout = Data_layout.Layout

type result = {
  arrays : (string * int array) list;  (** final contents, declaration order *)
  cycles : int;  (** same static accounting as {!Estimate} *)
  dynamic_loads : int;  (** loads issued, counting every iteration *)
  dynamic_stores : int;  (** stores issued (committed or suppressed) *)
  stores_suppressed : int;  (** predicated stores whose guard was false *)
}

(* Static structure: blocks with prebuilt graphs and schedule lengths. *)
type region =
  | Block of {
      graph : Dfg.t;
      defs : (string * int) list;  (** scalar -> node at block exit *)
      len : int;  (** joint schedule length in cycles *)
    }
  | Loop of Ast.loop * region list

let build_regions (p : Estimate.profile) (kernel : Ast.kernel) : region list =
  let sched_profile =
    { Schedule.device = p.Estimate.device; mem = p.Estimate.mem;
      chaining = p.Estimate.chaining }
  in
  let accesses = Access.collect kernel.k_body in
  let layout =
    Layout.assign ~num_memories:p.Estimate.device.Device.num_memories kernel
      accesses
  in
  let mem_of a = Layout.memory_of layout a in
  let cursor = Dfg.cursor_of accesses in
  let rec walk (body : Ast.stmt list) : region list =
    let flush chunk acc =
      match List.rev chunk with
      | [] -> acc
      | stmts ->
          let graph, defs =
            Dfg.of_block_with_defs ~kernel ~mem_of ~cursor stmts
          in
          let len = (Schedule.run ~mode:`Joint sched_profile graph).Schedule.cycles in
          Block { graph; defs; len } :: acc
    in
    let rec go chunk acc = function
      | [] -> List.rev (flush chunk acc)
      | Ast.For l :: rest ->
          let acc = flush chunk acc in
          let inner = walk l.body in
          go [] (Loop (l, inner) :: acc) rest
      | s :: rest -> go (s :: chunk) acc rest
    in
    go [] [] body
  in
  walk kernel.k_body

(* ------------------------------------------------------------------ *)

type state = {
  kernel : Ast.kernel;
  arrays : (string, int array) Hashtbl.t;
  scalars : (string, int) Hashtbl.t;
  mutable cycles : int;
  mutable loads : int;
  mutable stores : int;
  mutable suppressed : int;
}

let scalar_type st v =
  match Ast.find_scalar st.kernel v with
  | Some s -> s.Ast.s_elem
  | None -> Dtype.int32

let bool_of v = v <> 0
let b2i b = if b then 1 else 0

let eval_bin (op : Ast.binop) a b =
  match op with
  | Ast.Add -> a + b
  | Ast.Sub -> a - b
  | Ast.Mul -> a * b
  | Ast.Div -> if b = 0 then 0 else a / b
  | Ast.Mod -> if b = 0 then 0 else a mod b
  | Ast.Lt -> b2i (a < b)
  | Ast.Le -> b2i (a <= b)
  | Ast.Gt -> b2i (a > b)
  | Ast.Ge -> b2i (a >= b)
  | Ast.Eq -> b2i (a = b)
  | Ast.Ne -> b2i (a <> b)
  | Ast.And -> b2i (bool_of a && bool_of b)
  | Ast.Or -> b2i (bool_of a || bool_of b)
  | Ast.Band -> a land b
  | Ast.Bor -> a lor b
  | Ast.Bxor -> a lxor b
  | Ast.Shl -> a lsl max 0 b
  | Ast.Shr -> a asr max 0 b
  | Ast.Min -> min a b
  | Ast.Max -> max a b

let eval_un (op : Ast.unop) a =
  match op with
  | Ast.Neg -> -a
  | Ast.Not -> b2i (a = 0)
  | Ast.Bnot -> lnot a
  | Ast.Abs -> abs a

(** Execute one block instance under the current state. *)
let exec_block st (graph : Dfg.t) (defs : (string * int) list) =
  let n = graph.Dfg.len in
  let values = Array.make (max n 1) 0 in
  for node_i = 0 to n - 1 do
    (fun (node : Dfg.node) ->
      let v =
        match node.Dfg.kind with
        | Dfg.Source (Dfg.Const c) -> c
        | Dfg.Source (Dfg.Scalar s) ->
            Option.value ~default:0 (Hashtbl.find_opt st.scalars s)
        | Dfg.Op { sem = Dfg.Sbin op; _ } -> (
            match node.preds with
            | a :: b :: _ -> eval_bin op values.(a) values.(b)
            | _ -> 0)
        | Dfg.Op { sem = Dfg.Sun op; _ } -> (
            match node.preds with a :: _ -> eval_un op values.(a) | _ -> 0)
        | Dfg.Op { sem = Dfg.Smux; _ } -> (
            match node.preds with
            | c :: t :: e :: _ -> if bool_of values.(c) then values.(t) else values.(e)
            | _ -> 0)
        | Dfg.Load { array; addr; _ } -> (
            st.loads <- st.loads + 1;
            match Hashtbl.find_opt st.arrays array with
            | Some data when Array.length data > 0 ->
                let a = values.(addr) in
                let a = if a < 0 then 0 else if a >= Array.length data then Array.length data - 1 else a in
                data.(a)
            | _ -> 0)
        | Dfg.Store { array; addr; value; guards; _ } -> (
            st.stores <- st.stores + 1;
            let taken =
              List.for_all (fun (g, pol) -> bool_of values.(g) = pol) guards
            in
            if not taken then begin
              st.suppressed <- st.suppressed + 1;
              0
            end
            else
              match Hashtbl.find_opt st.arrays array with
              | Some data when Array.length data > 0 ->
                  let a = values.(addr) in
                  if a >= 0 && a < Array.length data then begin
                    let elem =
                      match Ast.find_array st.kernel array with
                      | Some d -> d.Ast.a_elem
                      | None -> Dtype.int32
                    in
                    data.(a) <- Dtype.wrap elem values.(value)
                  end;
                  0
              | _ -> 0)
        | Dfg.Move _ -> 0
        | Dfg.Move_out { move; index } -> (
            match graph.Dfg.nodes.(move).Dfg.kind with
            | Dfg.Move { pre; _ } ->
                let m = List.length pre in
                values.(List.nth pre ((index + 1) mod m))
            | _ -> 0)
        | Dfg.Reg_write { scalar; value } ->
            Dtype.wrap (scalar_type st scalar) values.(value)
      in
      values.(node.Dfg.id) <- v)
      graph.Dfg.nodes.(node_i)
  done;
  (* Commit scalar state at block exit. *)
  List.iter (fun (v, node) -> Hashtbl.replace st.scalars v values.(node)) defs

let rec exec_regions st rs =
  List.iter
    (fun r ->
      match r with
      | Block { graph; defs; len } ->
          st.cycles <- st.cycles + len;
          exec_block st graph defs
      | Loop (l, inner) ->
          let i = ref l.Ast.lo in
          while !i < l.Ast.hi do
            Hashtbl.replace st.scalars l.Ast.index !i;
            st.cycles <- st.cycles + Estimate.loop_overhead_cycles;
            exec_regions st inner;
            i := !i + l.Ast.step
          done)
    rs

(** Simulate a transformed kernel on the given inputs. *)
let run ?(inputs = []) (p : Estimate.profile) (kernel : Ast.kernel) : result =
  let regions = build_regions p kernel in
  let arrays = Hashtbl.create 16 in
  List.iter
    (fun (a : Ast.array_decl) ->
      Hashtbl.replace arrays a.a_name (Array.make (Ast.array_size a) 0))
    kernel.k_arrays;
  List.iter
    (fun (name, data) ->
      match Ast.find_array kernel name with
      | Some a ->
          Hashtbl.replace arrays name (Array.map (Dtype.wrap a.a_elem) data)
      | None -> ())
    inputs;
  let st =
    {
      kernel;
      arrays;
      scalars = Hashtbl.create 16;
      cycles = 0;
      loads = 0;
      stores = 0;
      suppressed = 0;
    }
  in
  exec_regions st regions;
  {
    arrays =
      List.map
        (fun (a : Ast.array_decl) ->
          (a.a_name, Array.copy (Hashtbl.find arrays a.a_name)))
        kernel.k_arrays;
    cycles = st.cycles;
    dynamic_loads = st.loads;
    dynamic_stores = st.stores;
    stores_suppressed = st.suppressed;
  }
