(** As-Soon-As-Possible scheduling of one block's DFG under memory-port
    and clock-period constraints — the estimator's stand-in for Monet's
    scheduler (the paper names Monet's algorithm ASAP, Section 5.2).

    Memory operations issue at cycle boundaries, at most one per memory
    per occupancy window. Two relaxed modes serve the balance metric:
    [`Mem_only] ignores computation (the rate at which the memories could
    supply data), [`Comp_only] ignores memory constraints (the rate at
    which the datapath could consume it). *)

type mode = [ `Joint | `Mem_only | `Comp_only ]

type profile = {
  device : Device.t;
  mem : Memory_model.t;
  chaining : bool;
      (** allow dependent operators to share a clock cycle when their
          delays fit the period. Monet-generation tools scheduled one
          operation level per control step, so the paper-faithful default
          used throughout is [false]. *)
}

type result = {
  cycles : int;
  bits_moved : int;
  usage : ((Op_model.op_class * int) * int) list;
      (** operator class/width-bucket -> max per-cycle concurrency: the
          allocation a behavioral-synthesis binder would need *)
  reads : int;
  writes : int;
}

val run : ?mode:mode -> profile -> Dfg.t -> result

type tri = { joint : result; mem_only : result; comp_only : result }

val run_tri : profile -> Dfg.t -> tri
(** All three schedules of one graph in a single walk over the node
    array: the node kind is matched and the operator delay looked up
    once per node, then each mode advances on its own state. Shares the
    per-node scheduling helpers with {!run}, so
    [run_tri p g = {joint = run ~mode:`Joint p g;
                    mem_only = run ~mode:`Mem_only p g;
                    comp_only = run ~mode:`Comp_only p g}]
    exactly — the estimator calls this once per block instead of [run]
    three times. *)

(** Content-addressed tri-schedule table, keyed on {!Dfg.fingerprint} at
    two granularities: whole blocks map to their {!tri} records, and
    statement-boundary {e prefixes} of blocks map to frozen scheduler
    states (region snapshots). Because the fingerprint is injective on
    the schedule-relevant projection of a graph and {!run_tri} reads
    nothing else, both tables are exact: a whole hit returns
    bit-identically what a fresh run would compute, and a region hit
    restores the exact mid-walk state and schedules only the tail.
    One table must only ever serve one {!profile} (the owning context
    fixes it); use {!memo_copy}/{!memo_absorb} to fork a private copy
    per domain and merge it back — never share a table across domains. *)
type memo

val memo_create : unit -> memo
val memo_copy : memo -> memo

(** Number of distinct whole-block shapes scheduled so far. *)
val memo_size : memo -> int

(** Merge a fork's entries into [into] (existing entries win). *)
val memo_absorb : into:memo -> memo -> unit

type memo_outcome =
  | Whole_hit  (** served from the whole-block table; nothing scheduled *)
  | Region_hit of int
      (** restored a statement-prefix snapshot covering this many nodes;
          only the tail was scheduled *)
  | Miss

(** Memoized {!run_tri}. Pass the block's statement-boundary [marks]
    (from {!Dfg.of_block_arena}) to enable region-level lookup and
    snapshotting; without them only the whole-block table is used — the
    result is the same either way, the marks only change how much
    scheduling work a partial overlap saves. *)
val run_tri_memo :
  ?marks:(int * int) array -> memo -> profile -> Dfg.t -> tri * memo_outcome
