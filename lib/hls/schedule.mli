(** As-Soon-As-Possible scheduling of one block's DFG under memory-port
    and clock-period constraints — the estimator's stand-in for Monet's
    scheduler (the paper names Monet's algorithm ASAP, Section 5.2).

    Memory operations issue at cycle boundaries, at most one per memory
    per occupancy window. Two relaxed modes serve the balance metric:
    [`Mem_only] ignores computation (the rate at which the memories could
    supply data), [`Comp_only] ignores memory constraints (the rate at
    which the datapath could consume it). *)

type mode = [ `Joint | `Mem_only | `Comp_only ]

type profile = {
  device : Device.t;
  mem : Memory_model.t;
  chaining : bool;
      (** allow dependent operators to share a clock cycle when their
          delays fit the period. Monet-generation tools scheduled one
          operation level per control step, so the paper-faithful default
          used throughout is [false]. *)
}

type result = {
  cycles : int;
  bits_moved : int;
  usage : ((Op_model.op_class * int) * int) list;
      (** operator class/width-bucket -> max per-cycle concurrency: the
          allocation a behavioral-synthesis binder would need *)
  reads : int;
  writes : int;
}

val run : ?mode:mode -> profile -> Dfg.t -> result
