(** Target device and board model: a Xilinx Virtex-1000-class FPGA on an
    Annapolis WildStar-class board, the platform of the paper's
    experiments (Sections 2.1 and 6.2). Only the figures the DSE
    algorithm consumes are modelled: slice capacity, the number of
    external memories, their width, and the fixed target clock. *)

type t = {
  name : string;
  capacity_slices : int;
  num_memories : int;
  memory_width_bits : int;
  clock_ns : float;
  ffs_per_slice : int;
}

(** Virtex 1000 with 12,288 slices; 4 external 32-bit memories per FPGA
    on the WildStar board; the paper fixes the clock period at 40 ns. *)
let virtex1000_wildstar =
  {
    name = "XCV1000 / WildStar";
    capacity_slices = 12288;
    num_memories = 4;
    memory_width_bits = 32;
    clock_ns = 40.0;
    ffs_per_slice = 2;
  }

let default = virtex1000_wildstar
