(** Low-level synthesis (logic synthesis + place-and-route) degradation
    model, used to reproduce the paper's Section 6.4 accuracy study.

    The paper reports, for fully implemented designs: the cycle count
    never changes relative to behavioral estimates; the achieved clock
    degrades with routing complexity (<10% for most selected designs,
    ~30% for one, much worse for the very largest designs); and area
    grows slightly super-linearly with design size. This module applies
    those trends deterministically to an estimate. *)

type implemented = {
  estimate : Estimate.t;
  cycles : int;  (** unchanged from behavioral synthesis, as in the paper *)
  achieved_clock_ns : float;
  actual_slices : int;
  meets_timing : bool;  (** achieved clock within the 40 ns target *)
  time_ns : float;
}

let place_and_route ?(device = Device.default) (e : Estimate.t) : implemented =
  let cap = float_of_int device.Device.capacity_slices in
  let util = float_of_int e.Estimate.slices /. cap in
  (* Routing congestion: negligible below 30% utilisation, then growing;
     blows up as the device fills. *)
  let degradation =
    if util <= 0.3 then 0.02
    else if util <= 0.7 then 0.02 +. ((util -. 0.3) *. 0.2)
    else 0.10 +. ((util -. 0.7) *. 1.2)
  in
  let achieved_clock_ns = device.Device.clock_ns *. (1.0 +. degradation) in
  (* Mapping overhead plus congestion-driven replication. *)
  let actual_slices =
    int_of_float (Float.round (float_of_int e.Estimate.slices *. (1.05 +. (0.15 *. util))))
  in
  {
    estimate = e;
    cycles = e.Estimate.cycles;
    achieved_clock_ns;
    actual_slices;
    meets_timing = achieved_clock_ns <= device.Device.clock_ns *. 1.001;
    time_ns = float_of_int e.Estimate.cycles *. achieved_clock_ns;
  }
