(** Code-level array renaming: materialise the custom data layout in the
    IR, as in the paper's final generated code (Figure 1(d), [S0]/[S1],
    [C0]/[C1], [D2]/[D3]).

    The kernel is first loop-normalized and every array linearized (the
    paper notes behavioral synthesis requires linearized arrays). An
    array with [B > 1] virtual banks is split into [B] flat arrays, bank
    [r] holding the elements congruent to [r] modulo [B]; a (normalized)
    access with linearized subscript [f + c] is rewritten to bank
    [c mod B] at subscript [(f + c - (c mod B)) / B]. Splitting an array
    is abandoned (it stays in one memory) if any access's coefficients
    are not divisible by [B] — exactly the non-uniform case the paper
    maps to a single memory.

    [scatter]/[gather] translate array contents between the original and
    the distributed shapes, so functional equivalence of the rewritten
    kernel is testable with the reference interpreter. *)

open Ir
module Access = Analysis.Access

type t = {
  kernel : Ast.kernel;  (** the rewritten kernel *)
  layout : Layout.t;  (** layout of the normalized original *)
  split : (string * string list) list;
      (** original array -> bank arrays in residue order *)
}

let bank_name ar r = Printf.sprintf "%s%d" ar r

(** Linearized affine form of a subscript list under a declaration,
    assuming normalized (lo=0) loops so the residue is the constant part
    mod [b]. *)
let lin_form (decl : Ast.array_decl) subs : Affine.t option =
  let affs = List.map Affine.of_expr subs in
  if List.exists Option.is_none affs then None
  else begin
    let rec go dims affs acc =
      match (dims, affs) with
      | [], [] -> Some acc
      | _ :: rest_dims, Some f :: rest ->
          let stride = List.fold_left ( * ) 1 rest_dims in
          go rest_dims rest (Affine.add acc (Affine.scale stride f))
      | _ -> None
    in
    if List.length decl.a_dims <> List.length subs then None
    else go decl.a_dims affs Affine.zero
  end

let divisible f b =
  List.for_all (fun v -> Affine.coeff f v mod b = 0) (Affine.vars f)

(** Split plan per array: the largest bank count not exceeding the
    layout's choice for which the linearized rewrite stays affine (every
    coefficient divisible). Steady-state layouts may use more banks than
    the rewrite can express; the code level then settles for fewer. *)
let plan (k : Ast.kernel) (layout : Layout.t) (accesses : Access.t list) :
    (string * int) list =
  List.map
    (fun (ar, b) ->
      if b <= 1 then (ar, 1)
      else
        match Ast.find_array k ar with
        | None -> (ar, 1)
        | Some decl ->
            let feasible b' =
              List.for_all
                (fun (a : Access.t) ->
                  if a.array <> ar then true
                  else
                    match lin_form decl a.subs with
                    | Some f -> divisible f b'
                    | None -> false)
                accesses
            in
            let rec best b' =
              if b' <= 1 then 1 else if feasible b' then b' else best (b' - 1)
            in
            (ar, best b))
    layout.Layout.banks

let rewrite_expr k plans e =
  match e with
  | Ast.Arr (ar, subs) -> (
      match (Ast.find_array k ar, List.assoc_opt ar plans) with
      | Some decl, Some b -> (
          match lin_form decl subs with
          | Some f when b > 1 ->
              let c = Affine.const_part f in
              let r = ((c mod b) + b) mod b in
              let f' =
                Affine.make
                  (List.map (fun v -> (v, Affine.coeff f v / b)) (Affine.vars f))
                  ((c - r) / b)
              in
              Ast.Arr (bank_name ar r, [ Affine.to_expr f' ])
          | Some f ->
              (* linearize even unsplit arrays *)
              if List.length decl.a_dims > 1 then Ast.Arr (ar, [ Affine.to_expr f ])
              else e
          | None -> e)
      | _ -> e)
  | e -> e

let rec rewrite_stmt k plans (s : Ast.stmt) : Ast.stmt =
  let rw_e = Ast.map_expr (rewrite_expr k plans) in
  match s with
  | Ast.Assign (lv, e) ->
      let lv =
        match lv with
        | Ast.Lvar _ -> lv
        | Ast.Larr (ar, subs) -> (
            let subs = List.map rw_e subs in
            match rewrite_expr k plans (Ast.Arr (ar, subs)) with
            | Ast.Arr (ar', subs') -> Ast.Larr (ar', subs')
            | _ -> Ast.Larr (ar, subs))
      in
      Ast.Assign (lv, rw_e e)
  | Ast.If (c, t, e) ->
      Ast.If (rw_e c, List.map (rewrite_stmt k plans) t, List.map (rewrite_stmt k plans) e)
  | Ast.For l -> Ast.For { l with body = List.map (rewrite_stmt k plans) l.body }
  | Ast.Rotate rs -> Ast.Rotate rs

(* Bank sizes: elements congruent to r mod b within [0, size). *)
let bank_extent ~size ~b ~r = if size <= r then 0 else ((size - 1 - r) / b) + 1

(** Apply the layout to a kernel. The input is loop-normalized first. *)
let rewrite ~num_memories (k : Ast.kernel) : t =
  let k = Transform.Normalize.run k in
  let accesses = Access.collect k.k_body in
  let layout = Layout.assign ~num_memories k accesses in
  let plans = plan k layout accesses in
  let body = List.map (rewrite_stmt k plans) k.k_body in
  let arrays =
    List.concat_map
      (fun (a : Ast.array_decl) ->
        let size = Ast.array_size a in
        match List.assoc_opt a.a_name plans with
        | Some b when b > 1 ->
            List.init b (fun r ->
                {
                  Ast.a_name = bank_name a.a_name r;
                  a_elem = a.a_elem;
                  a_dims = [ max 1 (bank_extent ~size ~b ~r) ];
                  a_span = a.a_span;
                })
        | _ -> [ { a with Ast.a_dims = [ size ] } ])
      k.k_arrays
  in
  let split =
    List.filter_map
      (fun (ar, b) ->
        if b > 1 then Some (ar, List.init b (bank_name ar)) else None)
      plans
  in
  let kernel = Transform.Simplify.run { k with Ast.k_body = body; k_arrays = arrays } in
  { kernel; layout; split }

(** Translate original array contents to the distributed arrays. *)
let scatter (t : t) (k_orig : Ast.kernel) (inputs : (string * int array) list) :
    (string * int array) list =
  List.concat_map
    (fun (name, data) ->
      match List.assoc_opt name t.split with
      | None -> [ (name, data) ]
      | Some banks ->
          let b = List.length banks in
          ignore k_orig;
          List.mapi
            (fun r bank ->
              let n = bank_extent ~size:(Array.length data) ~b ~r in
              (bank, Array.init n (fun q -> data.((q * b) + r))))
            banks)
    inputs

(** Reassemble original arrays from distributed observables. *)
let gather (t : t) (k_orig : Ast.kernel) (outputs : (string * int array) list) :
    (string * int array) list =
  List.map
    (fun (a : Ast.array_decl) ->
      let size = Ast.array_size a in
      match List.assoc_opt a.a_name t.split with
      | None -> (
          ( a.a_name,
            match List.assoc_opt a.a_name outputs with
            | Some d -> d
            | None -> Array.make size 0 ))
      | Some banks ->
          let b = List.length banks in
          let data = Array.make size 0 in
          List.iteri
            (fun r bank ->
              match List.assoc_opt bank outputs with
              | None -> ()
              | Some bd -> Array.iteri (fun q v -> data.((q * b) + r) <- v) bd)
            banks;
          (a.a_name, data))
    k_orig.k_arrays
