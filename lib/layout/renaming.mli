(** Code-level array renaming: materialise the custom data layout in the
    IR, as in the paper's final generated code (Figure 1(d): [S0]/[S1],
    [C0]/[C1], [D2]/[D3]).

    The kernel is loop-normalized and every array linearized (the paper
    notes behavioral synthesis requires linearized arrays). An array with
    [B > 1] banks splits into [B] flat arrays, bank [r] holding the
    elements congruent to [r] modulo [B]. When the layout's bank count is
    not expressible as an affine rewrite (coefficients not divisible),
    the split falls back to the largest feasible divisor, down to a
    single memory — the paper's treatment of non-uniformly generated
    accesses. *)

open Ir

type t = {
  kernel : Ast.kernel;  (** the rewritten kernel *)
  layout : Layout.t;  (** layout of the normalized original *)
  split : (string * string list) list;
      (** original array -> bank arrays in residue order *)
}

val bank_name : string -> int -> string

(** Apply the layout to a (transformed) kernel. *)
val rewrite : num_memories:int -> Ast.kernel -> t

(** Translate original array contents to the distributed arrays, and
    back; [scatter]/[gather] make the rewritten kernel testable against
    the reference interpreter. *)
val scatter :
  t -> Ast.kernel -> (string * int array) list -> (string * int array) list

val gather :
  t -> Ast.kernel -> (string * int array) list -> (string * int array) list
