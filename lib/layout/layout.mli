(** Custom data layout (Section 4 of the paper): array renaming followed
    by memory mapping.

    {b Array renaming} distributes each array cyclically over a number of
    virtual memories — cyclic in at least one dimension, possibly more —
    and gives every access expression a virtual memory id. For a bank
    shape [(b_1, ..., b_n)], the element at subscripts [(s_1, ..., s_n)]
    lives in bank [(s_1 mod b_1, ..., s_n mod b_n)]. An access's bank is
    usable at schedule time either because it is {e constant} (each
    [b_d] divides the access's per-dimension stride modulus) or via the
    paper's {e steady state} regime (Section 5.2): uniformly generated
    co-scheduled accesses rotate banks in lockstep, so conflicts depend
    only on the constant offsets. Shapes maximise the distinct banks of
    co-scheduled accesses. Non-uniform arrays keep one memory.

    {b Memory mapping} binds (array, virtual id) pairs to physical
    memories in first-read order, round-robin, then writes — the paper's
    read-order-first policy. *)

open Ir
module Access = Analysis.Access

type t = {
  num_memories : int;
  banks : (string * int) list;  (** array -> total virtual banks *)
  shapes : (string * int list) list;  (** array -> per-dimension factors *)
  vids : (int * int) list;  (** access id -> virtual id within its array *)
  phys : ((string * int) * int) list;  (** (array, vid) -> physical memory *)
  vid_tbl : (int, int) Hashtbl.t;
      (** [vids] as a table; {!memory_of} is on the DFG-build hot path *)
  mem_tbl : (string * int, int) Hashtbl.t;  (** [phys] as a table *)
}

(** Per-dimension stride modulus of an access: gcd of
    [coefficient * step] over its enclosing loops. [Some 0] for constant
    subscripts, [None] when non-affine. *)
val dim_modulus : Access.t -> int -> int option

(** Per-dimension constant offset (subscript at the loop lower bounds). *)
val dim_offset : Access.t -> int -> int

(** Virtual id of an access under a bank shape. *)
val vid_of : shape:int list -> Access.t -> int

(** Choose the bank shape of one array given all its accesses. *)
val choose_shape :
  num_memories:int -> Ast.array_decl -> Access.t list -> int list

(** Compute the full layout for a kernel given its collected accesses
    (pass the same [Access.collect] result the scheduler consumes so the
    ids agree). *)
val assign : num_memories:int -> Ast.kernel -> Access.t list -> t

(** Physical memory of an access (by id from the shared collection). *)
val memory_of : t -> Access.t -> int

val pp : Format.formatter -> t -> unit
