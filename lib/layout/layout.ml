(** Custom data layout (Section 4 of the paper): array renaming followed
    by memory mapping.

    {b Array renaming} distributes each array cyclically over a number of
    virtual memories — cyclic in at least one dimension, possibly more —
    and gives every array access expression a virtual memory id. For a
    bank shape [(b_1, ..., b_n)] (one factor per dimension, product at
    most the number of physical memories), the element at subscripts
    [(s_1, ..., s_n)] lives in bank [(s_1 mod b_1, ..., s_n mod b_n)].

    Whether an access's bank is usable at schedule time follows the
    paper's two regimes:

    - {e constant residue}: the per-dimension strides of the access are
      multiples of [b_d], so the access always touches the same bank;
    - {e steady state} (Section 5.2): all of the array's accesses in one
      loop context are uniformly generated, so their banks rotate in
      lockstep from iteration to iteration and conflicts depend only on
      the constant offsets. Peeled copies live in different contexts and
      are never co-scheduled with the main body, so each context is
      checked separately.

    The bank shape is chosen to maximise the number of distinct banks
    among co-scheduled accesses. Arrays that fit neither regime keep a
    single memory, as the paper prescribes for non-uniformly generated
    accesses.

    {b Memory mapping} binds (array, virtual id) pairs to physical
    memories in first-read order, round-robin, so that the reads of the
    unrolled body spread across the memories; writes are bound next, the
    paper's read-order-first policy. *)

open Ir
module Access = Analysis.Access

type t = {
  num_memories : int;
  banks : (string * int) list;  (** array -> total number of virtual banks *)
  shapes : (string * int list) list;  (** array -> per-dimension factors *)
  vids : (int * int) list;  (** access id -> virtual id within its array *)
  phys : ((string * int) * int) list;  (** (array, vid) -> physical memory *)
  vid_tbl : (int, int) Hashtbl.t;
      (** [vids] as a table — {!memory_of} runs once per load/store node
          of every DFG build, so the lookup must not scan the access list *)
  mem_tbl : (string * int, int) Hashtbl.t;  (** [phys] as a table *)
}

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(** Per-dimension stride modulus of an access: gcd of [coefficient * step]
    over its enclosing loops. A bank factor dividing this keeps the
    access's bank constant in that dimension. [None] when non-affine. *)
let dim_modulus (a : Access.t) (d : int) : int option =
  match List.nth a.affine d with
  | None -> None
  | Some f ->
      Some
        (List.fold_left
           (fun acc (l : Ast.loop) ->
             let c = Affine.coeff f l.index in
             if c = 0 then acc else gcd acc (c * l.step))
           0 a.loops)

(** Per-dimension constant offset (subscript at the loop lower bounds). *)
let dim_offset (a : Access.t) (d : int) : int =
  match List.nth a.affine d with
  | None -> 0
  | Some f ->
      let env v =
        match List.find_opt (fun (l : Ast.loop) -> l.index = v) a.loops with
        | Some l -> l.lo
        | None -> 0
      in
      Affine.eval ~env f

(** Accesses grouped by loop context: only same-context accesses can be
    co-scheduled in one block. *)
let context_groups (of_array : Access.t list) : Access.t list list =
  let tbl : (string list, Access.t list) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (a : Access.t) ->
      let key = Access.indices a in
      (match Hashtbl.find_opt tbl key with
      | None -> order := key :: !order
      | Some _ -> ());
      Hashtbl.replace tbl key
        (a :: Option.value ~default:[] (Hashtbl.find_opt tbl key)))
    of_array;
  List.rev_map (fun k -> List.rev (Hashtbl.find tbl k)) !order

(** Uniform generation within a context, per dimension. *)
let group_uniform (group : Access.t list) ~dims : bool =
  match group with
  | [] | [ _ ] -> true
  | first :: rest ->
      List.for_all
        (fun (a : Access.t) ->
          List.length a.affine = dims
          && List.for_all
               (fun d ->
                 match (List.nth first.affine d, List.nth a.affine d) with
                 | Some f, Some g -> Affine.uniformly_generated f g
                 | _ -> false)
               (List.init dims Fun.id))
        rest

(** Candidate per-dimension bank shapes (powers of two per dimension)
    with product at most [n]. *)
let shapes_for ~dims ~n : int list list =
  let opts = List.filter (fun b -> b <= n) [ 1; 2; 4; 8 ] in
  let rec go d =
    if d = 0 then [ [] ]
    else List.concat_map (fun tl -> List.map (fun b -> b :: tl) opts) (go (d - 1))
  in
  List.filter (fun s -> List.fold_left ( * ) 1 s <= n) (go dims)
  |> List.sort_uniq compare

(** A shape is legal for an access when each dimension is either constant
    residue ([b_d] divides the stride modulus) or covered by the
    steady-state regime (checked per context by the caller). *)
let shape_constant_ok (a : Access.t) (shape : int list) : bool =
  List.for_all2
    (fun b d ->
      b = 1
      ||
      match dim_modulus a d with
      | None -> false
      | Some 0 -> true (* constant subscript in this dimension *)
      | Some g -> g mod b = 0)
    shape
    (List.init (List.length shape) Fun.id)

let vid_of ~shape (a : Access.t) : int =
  let rec go shape d acc =
    match shape with
    | [] -> acc
    | b :: rest ->
        let off = dim_offset a d in
        let r = ((off mod b) + b) mod b in
        go rest (d + 1) ((acc * b) + r)
  in
  go shape 0 0

(** Choose the bank shape of one array: among legal shapes, maximise the
    number of distinct virtual ids among co-scheduled accesses (summed
    over contexts), preferring fewer banks on ties. *)
let choose_shape ~num_memories (decl : Ast.array_decl)
    (of_array : Access.t list) : int list =
  let dims = List.length decl.a_dims in
  let default = List.init dims (fun _ -> 1) in
  if List.exists (fun a -> not (Access.is_affine a)) of_array then default
  else begin
    let groups = context_groups of_array in
    let uniform = List.for_all (fun g -> group_uniform g ~dims) groups in
    let legal shape =
      uniform || List.for_all (fun a -> shape_constant_ok a shape) of_array
    in
    let score shape =
      List.fold_left
        (fun acc group ->
          acc
          + List.length
              (List.sort_uniq compare (List.map (vid_of ~shape) group)))
        0 groups
    in
    let candidates = List.filter legal (shapes_for ~dims ~n:num_memories) in
    match candidates with
    | [] -> default
    | c :: rest ->
        List.fold_left
          (fun best s ->
            let sb = score best and ss = score s in
            let pb = List.fold_left ( * ) 1 best
            and ps = List.fold_left ( * ) 1 s in
            if ss > sb || (ss = sb && ps < pb) then s else best)
          c rest
  end

(** Compute the full layout for a kernel given its collected accesses
    (use the same [Access.collect] result the scheduler consumes, so the
    access ids agree). *)
let assign ~num_memories (k : Ast.kernel) (accesses : Access.t list) : t =
  let arrays =
    List.sort_uniq String.compare
      (List.map (fun (a : Access.t) -> a.Access.array) accesses)
  in
  let shapes =
    List.map
      (fun ar ->
        match Ast.find_array k ar with
        | None -> (ar, [ 1 ])
        | Some decl ->
            let of_array =
              List.filter (fun (a : Access.t) -> a.array = ar) accesses
            in
            (ar, choose_shape ~num_memories decl of_array))
      arrays
  in
  let banks =
    List.map (fun (ar, s) -> (ar, List.fold_left ( * ) 1 s)) shapes
  in
  let vid_tbl = Hashtbl.create (List.length accesses) in
  let vids =
    List.map
      (fun (a : Access.t) ->
        let shape = List.assoc a.array shapes in
        let vid =
          if List.length a.affine = List.length shape && Access.is_affine a
          then vid_of ~shape a
          else 0
        in
        Hashtbl.replace vid_tbl a.id vid;
        (a.id, vid))
      accesses
  in
  (* Physical binding: distinct (array, vid) pairs in first-read order,
     then first-write order, round-robin over the memories. *)
  let phys = ref [] in
  let mem_tbl = Hashtbl.create 16 in
  let next = ref 0 in
  let bind (a : Access.t) =
    let vid = Hashtbl.find vid_tbl a.id in
    let key = (a.array, vid) in
    if not (Hashtbl.mem mem_tbl key) then begin
      let m = !next mod num_memories in
      phys := (key, m) :: !phys;
      Hashtbl.replace mem_tbl key m;
      incr next
    end
  in
  List.iter (fun a -> if Access.is_read a then bind a) accesses;
  List.iter (fun a -> if Access.is_write a then bind a) accesses;
  { num_memories; banks; shapes; vids; phys = List.rev !phys; vid_tbl; mem_tbl }

(** Physical memory of an access (by its id from the shared collection). *)
let memory_of (t : t) (a : Access.t) : int =
  match Hashtbl.find_opt t.vid_tbl a.id with
  | None -> 0
  | Some vid -> (
      match Hashtbl.find_opt t.mem_tbl (a.array, vid) with
      | Some m -> m
      | None -> 0)

let pp fmt (t : t) =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (ar, shape) ->
      Format.fprintf fmt "array %s: banks (%s)@," ar
        (String.concat " x " (List.map string_of_int shape)))
    t.shapes;
  List.iter
    (fun ((ar, vid), m) -> Format.fprintf fmt "%s#%d -> mem%d@," ar vid m)
    t.phys;
  Format.fprintf fmt "@]"
