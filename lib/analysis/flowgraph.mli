(** Control-flow graph over {!Ast.kernel} bodies and a generic monotone
    dataflow framework on top of it.

    The graph has one node per statement or loop header plus synthetic
    entry/exit nodes, with structured-control edges. Loop edges are
    trip-count aware: a loop whose constant bounds give a positive trip
    count must execute its body at least once, so the only path to the
    loop's continuation goes through the body — which is what makes
    accumulator initialisation provable. A zero-trip loop keeps its body
    nodes in the graph (spans and all) but leaves them unreachable.

    Analyses are instances of the monotone framework: a {!spec} supplies
    direction, lattice operations and a transfer function, and {!solve}
    iterates a worklist to fixpoint. Four reusable analyses are provided
    — {!reaching}, {!live}, {!must_init} and {!anticipated} — plus the
    derived {!use_before_def} classification that {!Check.Uninit} is
    built on. All of them track scalars and individual array cells;
    array cells are keyed by their affine subscript forms
    ({!Affine.t}), degrading conservatively to whole-array facts for
    non-affine subscripts or forms that mention non-index variables. *)

open Ir

(** {1 Cost accounting}

    Construction and solve counters, so flowgraph time shows up in
    [Design.stats] / [--profile] / BENCH_dse.json like every other
    phase. One [cost] record is threaded through [?cost] arguments;
    there is no global state. *)

type cost = {
  mutable builds : int;  (** CFGs constructed *)
  mutable solves : int;  (** fixpoint solves run *)
  mutable steps : int;  (** worklist iterations across all solves *)
  mutable build_seconds : float;
  mutable solve_seconds : float;
}

val fresh_cost : unit -> cost

(** Fold [extra] into [into] (all five fields added). *)
val cost_add : into:cost -> cost -> unit

(** {1 The graph} *)

type kind =
  | Entry
  | Exit
  | Assign of Ast.lvalue * Ast.expr
  | Rotate of string list
  | Branch of Ast.expr  (** an [If] condition; both branches succeed it *)
  | Header of Ast.loop  (** loop header; defines the index variable *)

type node = {
  id : int;
  kind : kind;
  loops : Ast.loop list;
      (** enclosing loops, outermost first; a [Header]'s own loop is
          included (it is the innermost entry) *)
  guarded : bool;  (** syntactically under an [If] branch *)
  span : Ast.span option;
      (** nearest enclosing source location (the [Header]'s own span
          when it has one) *)
}

type t = {
  kernel : Ast.kernel;
  nodes : node array;  (** indexed by [id]; entry is 0, exit is last *)
  succ : int list array;
  pred : int list array;
  entry : int;
  exit_ : int;
  reachable : bool array;
      (** reachable from entry; zero-trip loop bodies are not *)
}

(** Build the CFG of a kernel. Nodes are allocated in a documented
    order — entry first (id 0), then the statements in preorder (a
    loop's header before its body), exit last — so tests can align
    nodes with the AST positionally. Total on any well-typed kernel;
    a non-positive loop step (which {!Check.Wellformed} rejects) is
    treated conservatively as "may run zero or more times". *)
val build : ?cost:cost -> Ast.kernel -> t

(** {1 Abstract memory locations} *)

(** What a dataflow fact talks about. A [Cell] carries one affine form
    per dimension and is only used when every form is affine over the
    node's enclosing loop indices; anything else widens to [Whole]
    array. *)
type loc =
  | Scalar of string
  | Cell of string * Affine.t list
  | Whole of string  (** some unknown cell(s) of the array *)

val compare_loc : loc -> loc -> int
val equal_loc : loc -> loc -> bool
val pp_loc : Format.formatter -> loc -> unit

module LocSet : Set.S with type elt = loc

(** Conservative: can the two locations denote the same memory? Two
    [Cell]s of one array are disjoint only when some dimension has two
    distinct constant subscripts. *)
val may_alias : loc -> loc -> bool

(** Locations possibly read by a node ([Branch] conditions, RHS and
    subscript reads, [Rotate] sources). *)
val uses : t -> int -> loc list

(** Locations written by a node ([Assign] targets, [Rotate] members,
    the index at a [Header]). *)
val defs_at : t -> int -> loc list

(** {1 The monotone framework} *)

type direction = Forward | Backward

type 'f spec = {
  dir : direction;
  boundary : 'f;  (** fact at entry (forward) or exit (backward) *)
  init : 'f;  (** optimistic initial fact everywhere else *)
  join : 'f -> 'f -> 'f;
  equal : 'f -> 'f -> bool;
  transfer : node -> 'f -> 'f;
}

(** Facts in {e program order} for both directions: [before.(n)] holds
    on entry to node [n], [after.(n)] on exit. For a forward analysis
    [after = transfer before]; for a backward one [before = transfer
    after]. *)
type 'f solution = { before : 'f array; after : 'f array }

val solve : ?cost:cost -> t -> 'f spec -> 'f solution

(** {1 Reaching definitions} *)

(** One static definition site. A node makes one [def] per location it
    writes ([Rotate] makes several). *)
type def = { d_id : int; d_node : int; d_loc : loc }

(** All definition sites, in node order; [d_id] indexes this array. *)
val def_sites : t -> def array

module IntSet : Set.S with type elt = int

type reaching = {
  r_defs : def array;
  r_sol : IntSet.t solution;  (** sets of [d_id]s *)
}

(** Forward may-analysis. A definition is strongly killed only by a
    write that provably overwrites it on every execution reaching here:
    a scalar write, or a write to a cell with all-constant subscripts.
    Writes to index-dependent cells kill nothing (an earlier iteration's
    instance may survive in another cell). *)
val reaching : ?cost:cost -> t -> reaching

(** Definitions of [d] reaching the entry of node [n] that may alias
    [loc]. *)
val reaching_defs_of : reaching -> int -> loc -> def list

(** {1 Liveness} *)

(** Backward may-analysis. Boundary at exit: every array is live (the
    host reads results back); no scalar is. Facts about cells that
    mention a loop's index widen to [Whole] at that loop's header —
    the index changes there, so the cell identity does. *)
val live : ?cost:cost -> t -> LocSet.t solution

(** Is a write to [loc] at program point observed by any later read?
    (Membership up to {!may_alias}.) *)
val live_at : LocSet.t -> loc -> bool

(** {1 Must-initialisation} *)

(** Forward must-analysis over an option lattice ([None] = unreachable
    top). Boundary at entry: [Param] scalars and whole arrays are
    host-initialised. A location joins the set when every path to the
    point writes it; index-dependent cell facts are cleared at their
    loop's header. *)
val must_init : ?cost:cost -> t -> LocSet.t option solution

(** {1 Anticipated (redundant-making) overwrites} *)

(** Backward must-analysis over an option lattice: [loc] is in the set
    at a point when every path from the point overwrites [loc] before
    any possible read of it. A store whose target is anticipated right
    after it is redundant. *)
val anticipated : ?cost:cost -> t -> LocSet.t option solution

(** {1 Use-before-def classification} *)

type init_status =
  | Initialized  (** written on every path, or host-initialised *)
  | Maybe_uninitialized  (** a definition reaches, but not on all paths *)
  | Uninitialized  (** no definition reaches this use *)

type use_site = { u_node : int; u_loc : loc; u_status : init_status }

(** Classify every location use at every reachable node. [Param]
    scalars and array cells count as host-initialised, so only [Temp]
    and [Register] scalars (and undeclared names) can come out
    [Uninitialized]. *)
val use_before_def : ?cost:cost -> t -> use_site list
