(** Exact rational arithmetic for the dependence solver's Gaussian
    elimination. Numerators and denominators stay tiny (loop coefficients
    and bounds), so native [int]s suffice. *)

type t = { num : int; den : int }  (* den > 0, gcd(|num|, den) = 1 *)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let make num den =
  if den = 0 then invalid_arg "Rat.make: zero denominator";
  let s = if den < 0 then -1 else 1 in
  let num = s * num and den = s * den in
  let g = gcd num den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let is_zero r = r.num = 0
let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let neg a = { a with num = -a.num }
let sub a b = add a (neg b)
let mul a b = make (a.num * b.num) (a.den * b.den)

let div a b =
  if is_zero b then invalid_arg "Rat.div: division by zero";
  make (a.num * b.den) (a.den * b.num)

let equal a b = a.num = b.num && a.den = b.den
let to_int_opt r = if r.den = 1 then Some r.num else None
let to_string r =
  if r.den = 1 then string_of_int r.num
  else Printf.sprintf "%d/%d" r.num r.den
