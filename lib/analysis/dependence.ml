(** Data-dependence analysis on array accesses.

    The design space exploration algorithm consumes three facts computed
    here (Section 5.3 of the paper):

    - whether a loop carries no dependence (such loops are unrolled first,
      to the saturation point, because all unrolled iterations run in
      parallel);
    - minimum nonzero carried dependence distances (loops with larger
      distances are favoured otherwise);
    - per-pair *consistent* distance vectors (constant distances), the
      precondition for scalar replacement.

    For uniformly generated pairs the distance system is linear with the
    subscript coefficient matrix; we solve it exactly (rational Gaussian
    elimination + integrality check). Loops the subscripts do not mention
    get the wildcard distance [Any]. An underdetermined system means the
    pair has dependences but no consistent distance — reported as
    [Coupled] entries. For non-uniformly generated pairs we fall back to
    the GCD and Banerjee tests on the linearized subscripts to prove
    independence where possible. *)

open Ir

type entry =
  | Exact of int  (** constant distance along this loop *)
  | Any  (** subscripts do not constrain this loop: all distances occur *)
  | Coupled  (** constrained jointly with other loops; not consistent *)
[@@deriving show { with_path = false }, eq]

type result =
  | Independent
  | Distance of entry list  (** per common loop, outermost first *)
  | Unknown  (** could not prove independence; no distance information *)
[@@deriving show { with_path = false }, eq]

type kind = Flow | Anti | Output | Input
[@@deriving show { with_path = false }, eq, ord]

type dep = {
  src : Access.t;
  dst : Access.t;
  kind : kind;
  loops : Ast.loop list;  (** common enclosing loops, outermost first *)
  distance : entry list;  (** aligned with [loops] *)
}

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* ------------------------------------------------------------------ *)
(* Common nest *)

let common_loops (a : Access.t) (b : Access.t) : Ast.loop list =
  let rec go la lb =
    match (la, lb) with
    | (x : Ast.loop) :: ta, (y : Ast.loop) :: tb when x.index = y.index ->
        x :: go ta tb
    | _ -> []
  in
  go a.loops b.loops

(* ------------------------------------------------------------------ *)
(* Distance system for uniformly generated pairs *)

(** Solve [A t = rhs] where row d constrains the per-dimension subscript
    difference. Variables are the common loop *iteration counts* — we
    normalise by each loop's step so that a distance of 1 means "next
    iteration of that loop", matching the unit in which unroll factors and
    register chains are expressed. *)
let solve_distance ~(loops : Ast.loop list) ~(rows : (int list * int) list) :
    [ `NoSolution | `Solved of entry list ] =
  let n = List.length loops in
  let matrix =
    List.map (fun (coeffs, rhs) -> (Array.of_list (List.map Rat.of_int coeffs), Rat.of_int rhs)) rows
    |> Array.of_list
  in
  let rows_n = Array.length matrix in
  (* Gauss-Jordan with partial pivoting by nonzero. *)
  let pivot_col = Array.make rows_n (-1) in
  let r = ref 0 in
  for c = 0 to n - 1 do
    if !r < rows_n then begin
      (* find pivot row *)
      let p = ref (-1) in
      for i = !r to rows_n - 1 do
        if !p = -1 && not (Rat.is_zero (fst matrix.(i)).(c)) then p := i
      done;
      if !p >= 0 then begin
        (* swap *)
        let tmp = matrix.(!r) in
        matrix.(!r) <- matrix.(!p);
        matrix.(!p) <- tmp;
        let row, rhs = matrix.(!r) in
        let inv = Rat.div Rat.one row.(c) in
        let row = Array.map (fun x -> Rat.mul x inv) row in
        let rhs = Rat.mul rhs inv in
        matrix.(!r) <- (row, rhs);
        for i = 0 to rows_n - 1 do
          if i <> !r then begin
            let ri, bi = matrix.(i) in
            let f = ri.(c) in
            if not (Rat.is_zero f) then begin
              let ri' = Array.mapi (fun j x -> Rat.sub x (Rat.mul f row.(j))) ri in
              let bi' = Rat.sub bi (Rat.mul f rhs) in
              matrix.(i) <- (ri', bi')
            end
          end
        done;
        pivot_col.(!r) <- c;
        incr r
      end
    end
  done;
  (* rows beyond rank must have zero rhs, else inconsistent *)
  let inconsistent = ref false in
  for i = !r to rows_n - 1 do
    let row, rhs = matrix.(i) in
    if Array.for_all Rat.is_zero row && not (Rat.is_zero rhs) then
      inconsistent := true
  done;
  if !inconsistent then `NoSolution
  else begin
    (* classify each variable *)
    let entries =
      List.mapi
        (fun c _ ->
          (* Column never mentioned by any original row -> Any. *)
          let mentioned =
            List.exists (fun (coeffs, _) -> List.nth coeffs c <> 0) rows
          in
          if not mentioned then Any
          else begin
            (* Unique if c is a pivot column and its row has no other
               nonzero in a non-pivot (free) column. *)
            let rec find_pivot i =
              if i >= !r then None
              else if pivot_col.(i) = c then Some i
              else find_pivot (i + 1)
            in
            match find_pivot 0 with
            | None -> Coupled (* free variable *)
            | Some i ->
                let row, rhs = matrix.(i) in
                let depends_on_free = ref false in
                Array.iteri
                  (fun j x ->
                    if j <> c && not (Rat.is_zero x) then
                      (* j is necessarily a free column after Jordan *)
                      depends_on_free := true)
                  row;
                if !depends_on_free then Coupled
                else (
                  match Rat.to_int_opt rhs with
                  | Some v -> Exact v
                  | None -> Exact min_int (* non-integral: flagged below *))
          end)
        loops
    in
    (* A non-integral unique solution means no integer dependence. *)
    if List.exists (function Exact v -> v = min_int | _ -> false) entries then
      `NoSolution
    else `Solved entries
  end

(** Distance entries for a uniformly generated pair, in units of
    iterations of each common loop. *)
let ug_distance_vector (a : Access.t) (b : Access.t) : result =
  let loops = common_loops a b in
  if not (Access.is_affine a && Access.is_affine b) then Unknown
  else
    let fa = Access.affine_exn a and fb = Access.affine_exn b in
    if List.length fa <> List.length fb then Independent
    else begin
      let names = List.map (fun (l : Ast.loop) -> l.index) loops in
      (* Uniform generation over the *common* loops: equal coefficients. *)
      let uniform =
        List.for_all2
          (fun f g ->
            List.for_all (fun v -> Affine.coeff f v = Affine.coeff g v) names)
          fa fb
      in
      if not uniform then Unknown
      else begin
        (* Subscripts may also involve non-common variables (e.g. an inner
           loop index below the common nest); if coefficients on those
           also match, the difference cancels, otherwise give up. *)
        let extra_ok =
          List.for_all2
            (fun f g ->
              let all = Affine.vars f @ Affine.vars g in
              List.for_all
                (fun v -> List.mem v names || Affine.coeff f v = Affine.coeff g v)
                all)
            fa fb
        in
        if not extra_ok then Unknown
        else begin
          (* Row per dimension: sum_k a_k * step_k * t_k = ca - cb, so
             that [t] solves [f_a(i) = f_b(i + t)] — entry [t_k] is the
             number of iterations of loop k *after* [a]'s access at which
             [b] touches the same element (negative: [b] touched it
             earlier). *)
          let rows =
            List.map2
              (fun f g ->
                let coeffs =
                  List.map
                    (fun (l : Ast.loop) -> Affine.coeff f l.index * l.step)
                    loops
                in
                (coeffs, Affine.const_part f - Affine.const_part g))
              fa fb
          in
          (* Drop rows that constrain nothing and have zero rhs. *)
          let rows' =
            List.filter (fun (cs, rhs) -> rhs <> 0 || List.exists (( <> ) 0) cs) rows
          in
          (* Integer feasibility per row (GCD test): even an
             underdetermined rational system has no integer solution when
             some row's coefficient gcd does not divide its constant. *)
          let row_infeasible (cs, rhs) =
            let g = List.fold_left gcd 0 cs in
            if g = 0 then rhs <> 0 else rhs mod g <> 0
          in
          if List.exists row_infeasible rows' then Independent
          else if rows' = [] then
            Distance (List.map (fun _ -> Any) loops)
          else
            match solve_distance ~loops ~rows:rows' with
            | `NoSolution -> Independent
            | `Solved entries ->
                (* Distances beyond the trip count cannot be realised. *)
                let realizable =
                  List.for_all2
                    (fun e (l : Ast.loop) ->
                      match e with
                      | Exact v -> abs v < Ast.loop_trip l
                      | Any | Coupled -> true)
                    entries loops
                in
                if realizable then Distance entries else Independent
        end
      end
    end

(* ------------------------------------------------------------------ *)
(* Independence tests for non-uniformly generated pairs *)


(** GCD test on linearized subscripts: independence when the gcd of all
    index coefficients does not divide the constant difference. *)
let gcd_test (decl : Ast.array_decl) (a : Access.t) (b : Access.t) : bool =
  match (Access.linearized decl a, Access.linearized decl b) with
  | Some fa, Some fb ->
      let diff = Affine.const_part fb - Affine.const_part fa in
      let coeffs =
        List.map (fun v -> Affine.coeff fa v) (Affine.vars fa)
        @ List.map (fun v -> -Affine.coeff fb v) (Affine.vars fb)
      in
      let g = List.fold_left gcd 0 coeffs in
      if g = 0 then diff <> 0 else diff mod g <> 0
  | _ -> false

(** Banerjee-style extreme value test: independence when
    [f_a(i) - f_b(i')] cannot be zero over the iteration spaces. Loop
    bounds are constant in our input domain, so the extrema are exact for
    independent variables. *)
let banerjee_test (decl : Ast.array_decl) (a : Access.t) (b : Access.t) : bool =
  match (Access.linearized decl a, Access.linearized decl b) with
  | Some fa, Some fb ->
      let bound_of access v =
        List.find_opt (fun (l : Ast.loop) -> l.index = v) access.Access.loops
      in
      let range access f =
        List.fold_left
          (fun (lo, hi) v ->
            let c = Affine.coeff f v in
            match bound_of access v with
            | Some l ->
                let last = l.lo + ((Ast.loop_trip l - 1) * l.step) in
                let x = c * l.lo and y = c * last in
                (lo + min x y, hi + max x y)
            | None -> (min_int / 4, max_int / 4))
          (Affine.const_part f, Affine.const_part f)
          (Affine.vars f)
      in
      let lo_a, hi_a = range a fa in
      let lo_b, hi_b = range b fb in
      (* f_a - f_b ranges over [lo_a - hi_b, hi_a - lo_b] *)
      lo_a - hi_b > 0 || hi_a - lo_b < 0
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Pair classification *)

let kind_of (a : Access.t) (b : Access.t) : kind =
  match (a.kind, b.kind) with
  | Access.Write, Access.Read -> Flow
  | Access.Read, Access.Write -> Anti
  | Access.Write, Access.Write -> Output
  | Access.Read, Access.Read -> Input

(** Dependence test for one ordered pair of same-array accesses. *)
let test ?(decl : Ast.array_decl option) (a : Access.t) (b : Access.t) : result =
  match ug_distance_vector a b with
  | (Independent | Distance _) as r -> r
  | Unknown -> (
      match decl with
      | Some d when gcd_test d a b || banerjee_test d a b -> Independent
      | _ -> Unknown)

(** All dependences of a body. Input (read-read) pairs are included only
    when [include_input] — they matter for reuse, not for legality. For
    pairs without a consistent distance we keep the dependence with
    [Coupled]/[Any] entries where applicable, or a fully-[Coupled] vector
    when nothing is known. *)
let dependences ?(include_input = false) (k : Ast.kernel) (body : Ast.stmt list)
    : dep list =
  let accesses = Access.collect body in
  let by_array = Access.to_array_map accesses in
  List.concat_map
    (fun (array, accs) ->
      let decl = Ast.find_array k array in
      let pairs = ref [] in
      List.iter
        (fun (a : Access.t) ->
          List.iter
            (fun (b : Access.t) ->
              if a.id <= b.id then
                let knd = kind_of a b in
                if knd <> Input || include_input then
                  pairs := (a, b) :: !pairs)
            accs)
        accs;
      List.filter_map
        (fun (a, b) ->
          let loops = common_loops a b in
          match test ?decl a b with
          | Independent -> None
          | Distance entries ->
              (* Self-pairs with all-zero distance are the same access at
                 the same iteration: not a dependence. *)
              if
                a.id = b.id
                && List.for_all (function Exact 0 -> true | _ -> false) entries
              then None
              else begin
                (* Normalise to a lexicographically non-negative vector:
                   a negative leading distance is the same dependence
                   viewed from the other end. *)
                let rec leading = function
                  | [] -> 0
                  | Exact 0 :: rest -> leading rest
                  | Exact v :: _ -> v
                  | (Any | Coupled) :: _ -> 0
                in
                if leading entries < 0 then
                  let flipped =
                    List.map
                      (function Exact v -> Exact (-v) | e -> e)
                      entries
                  in
                  let flip_kind = function
                    | Flow -> Anti
                    | Anti -> Flow
                    | (Output | Input) as k -> k
                  in
                  Some
                    {
                      src = b;
                      dst = a;
                      kind = flip_kind (kind_of a b);
                      loops;
                      distance = flipped;
                    }
                else
                  Some
                    { src = a; dst = b; kind = kind_of a b; loops; distance = entries }
              end
          | Unknown ->
              Some
                {
                  src = a;
                  dst = b;
                  kind = kind_of a b;
                  loops;
                  distance = List.map (fun _ -> Coupled) loops;
                })
        (List.rev !pairs))
    by_array

(** The loop carrying this dependence: the outermost position whose
    distance entry can be nonzero. [None] for loop-independent
    dependences (all-zero distance). *)
let carried_by (d : dep) : string option =
  let rec go loops entries =
    match (loops, entries) with
    | [], [] -> None
    | (l : Ast.loop) :: ls, e :: es -> (
        match e with
        | Exact 0 -> go ls es
        | Exact _ | Any | Coupled -> Some l.index)
    | _ -> None
  in
  go d.loops d.distance

(** True when no true/anti/output dependence is carried by loop [index].
    Such a loop's unrolled iterations all execute in parallel. *)
let loop_carries_no_dependence (k : Ast.kernel) (body : Ast.stmt list) index :
    bool =
  let deps = dependences ~include_input:false k body in
  not
    (List.exists
       (fun d ->
         match carried_by d with Some i -> i = index | None -> false)
       deps)

(** Minimum nonzero |distance| among dependences carried by [index];
    [None] when nothing consistent is carried by it. Larger minimum
    distances admit more parallelism between dependent iterations. *)
let min_carried_distance (k : Ast.kernel) (body : Ast.stmt list) index :
    int option =
  let deps = dependences ~include_input:false k body in
  List.fold_left
    (fun acc d ->
      if carried_by d = Some index then
        let entry =
          List.fold_left2
            (fun found (l : Ast.loop) e ->
              if l.index = index then Some e else found)
            None d.loops d.distance
        in
        match entry with
        | Some (Exact v) when v <> 0 -> (
            match acc with
            | Some m -> Some (min m (abs v))
            | None -> Some (abs v))
        | _ -> acc
      else acc)
    None deps

let pp_dep fmt d =
  let entry_str = function
    | Exact v -> string_of_int v
    | Any -> "*"
    | Coupled -> "?"
  in
  Format.fprintf fmt "%s: %a -> %a (%s)"
    (match d.kind with
    | Flow -> "flow"
    | Anti -> "anti"
    | Output -> "output"
    | Input -> "input")
    Access.pp d.src Access.pp d.dst
    (String.concat ", " (List.map entry_str d.distance))
