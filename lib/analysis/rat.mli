(** Exact rational arithmetic for the dependence solver's Gaussian
    elimination. Numerators and denominators stay tiny (loop coefficients
    and bounds), so native [int]s suffice. *)

type t = private { num : int; den : int }  (** den > 0, reduced *)

(** Raises [Invalid_argument] on a zero denominator. *)
val make : int -> int -> t

val of_int : int -> t
val zero : t
val one : t
val is_zero : t -> bool
val add : t -> t -> t
val neg : t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** Raises [Invalid_argument] on division by zero. *)
val div : t -> t -> t

val equal : t -> t -> bool

(** [Some n] when the rational is the integer [n]. *)
val to_int_opt : t -> int option

val to_string : t -> string
