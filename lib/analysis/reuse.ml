(** Reuse analysis: uniformly generated sets and the reuse each carries.

    Scalar replacement consumes this analysis to decide, per set, whether
    the data can live in on-chip registers (and how many); the saturation
    point computation consumes the set counts R and W (Section 5.1). *)

open Ir

type group = {
  array : string;
  kind : Access.kind;
  members : Access.t list;  (** in execution order *)
}

(** Same coefficients on every dimension over the given index set. *)
let same_pattern indices (a : Access.t) (b : Access.t) =
  Access.is_affine a && Access.is_affine b
  && List.length a.affine = List.length b.affine
  && List.for_all2
       (fun fa fb ->
         match (fa, fb) with
         | Some fa, Some fb ->
             List.for_all (fun v -> Affine.coeff fa v = Affine.coeff fb v) indices
         | _ -> false)
       a.affine b.affine

(** Structural key of an access's per-dimension coefficient vectors over
    [indices]: uniform generation is equality of these keys, which lets
    grouping run in linear time instead of pairwise comparison. *)
let pattern_key indices (a : Access.t) : string option =
  if not (Access.is_affine a) then None
  else
    Some
      (String.concat "|"
         (List.map
            (fun f ->
              match f with
              | Some f ->
                  String.concat ","
                    (List.map (fun v -> string_of_int (Affine.coeff f v)) indices)
              | None -> "?")
            a.affine))

(** Partition accesses into uniformly generated sets, reads and writes
    separately. Non-affine accesses land in singleton groups. *)
let groups (body : Ast.stmt list) : group list =
  let indices = Loop_nest.spine_indices body in
  let accesses = Access.collect body in
  let tbl : (string * Access.kind * string, Access.t list) Hashtbl.t =
    Hashtbl.create 32
  in
  let order = ref [] in
  let singles = ref [] in
  List.iter
    (fun (a : Access.t) ->
      match pattern_key indices a with
      | None -> singles := { array = a.array; kind = a.kind; members = [ a ] } :: !singles
      | Some key ->
          let k = (a.array, a.kind, key) in
          (match Hashtbl.find_opt tbl k with
          | None ->
              order := k :: !order;
              Hashtbl.replace tbl k [ a ]
          | Some ms -> Hashtbl.replace tbl k (a :: ms)))
    accesses;
  List.rev_map
    (fun ((array, kind, _) as k) ->
      { array; kind; members = List.rev (Hashtbl.find tbl k) })
    !order
  @ List.rev !singles

let read_sets body = List.filter (fun g -> g.kind = Access.Read) (groups body)
let write_sets body = List.filter (fun g -> g.kind = Access.Write) (groups body)

(** R and W of the saturation-point formula: the number of uniformly
    generated read and write sets of the body. *)
let set_counts body = (List.length (read_sets body), List.length (write_sets body))

(** Distinct subscript-expression members of a group (members that appear
    several times syntactically count once — a single load serves all). *)
let distinct_members (g : group) : Access.t list =
  List.fold_left
    (fun acc (a : Access.t) ->
      if List.exists (fun (b : Access.t) -> b.subs = a.subs) acc then acc
      else acc @ [ a ])
    [] g.members

(** Loops of the group's enclosing nest that the group's subscripts do not
    vary with — temporal reuse is carried by each of them (every iteration
    of such a loop touches the same elements). *)
let invariant_loops (g : group) : Ast.loop list =
  match g.members with
  | [] -> []
  | m :: _ ->
      List.filter
        (fun (l : Ast.loop) ->
          List.for_all (fun (a : Access.t) -> not (Access.varies_with a l.index)) g.members)
        m.loops

(** Number of registers needed to hold the group's data across one
    traversal of the loops deeper than [carrier]: the product of inner
    trip counts that the group varies with, times the number of distinct
    members. This is the register pressure of exploiting reuse carried by
    [carrier] (Section 5.4 bounds it with tiling). *)
let bank_size (g : group) ~(carrier : Ast.loop) : int =
  match g.members with
  | [] -> 0
  | m :: _ ->
      let rec inner_of = function
        | [] -> []
        | (l : Ast.loop) :: rest ->
            if l.index = carrier.index then rest else inner_of rest
      in
      let inner = inner_of m.Access.loops in
      let varying =
        List.filter
          (fun (l : Ast.loop) ->
            List.exists (fun a -> Access.varies_with a l.index) g.members)
          inner
      in
      List.fold_left (fun acc l -> acc * Ast.loop_trip l) 1 varying
      * List.length (distinct_members g)
