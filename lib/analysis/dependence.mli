(** Data-dependence analysis on array accesses.

    The design space exploration consumes three facts computed here
    (Section 5.3 of the paper): whether a loop carries no dependence
    (such loops are unrolled first, to the saturation point), minimum
    nonzero carried distances (loops with larger distances are favoured
    otherwise), and per-pair *consistent* distance vectors — the
    precondition for scalar replacement.

    For uniformly generated pairs the distance system is linear in the
    subscript coefficients and solved exactly (rational Gaussian
    elimination with per-row GCD feasibility and an integrality check);
    non-uniformly generated pairs fall back to the GCD and Banerjee
    independence tests. *)

open Ir

type entry =
  | Exact of int  (** constant distance along this loop *)
  | Any  (** subscripts do not constrain this loop: all distances occur *)
  | Coupled  (** constrained jointly with other loops; not consistent *)

val pp_entry : Format.formatter -> entry -> unit
val equal_entry : entry -> entry -> bool

type result =
  | Independent
  | Distance of entry list  (** per common loop, outermost first *)
  | Unknown  (** could not prove independence; no distance information *)

val pp_result : Format.formatter -> result -> unit
val show_result : result -> string
val equal_result : result -> result -> bool

type kind = Flow | Anti | Output | Input

val pp_kind : Format.formatter -> kind -> unit
val equal_kind : kind -> kind -> bool

type dep = {
  src : Access.t;
  dst : Access.t;
  kind : kind;
  loops : Ast.loop list;  (** common enclosing loops, outermost first *)
  distance : entry list;  (** aligned with [loops]; lexicographically
                              non-negative *)
}

(** Common enclosing loops of two accesses (prefix by index name). *)
val common_loops : Access.t -> Access.t -> Ast.loop list

(** Distance entries for a uniformly generated pair, in iterations of
    each common loop: entry [t_k] solves [f_a(i) = f_b(i + t)] — how many
    iterations after [a]'s access [b] touches the same element. *)
val ug_distance_vector : Access.t -> Access.t -> result

(** GCD independence test on linearized subscripts. *)
val gcd_test : Ast.array_decl -> Access.t -> Access.t -> bool

(** Banerjee extreme-value independence test (exact extrema under the
    constant loop bounds of the input domain). *)
val banerjee_test : Ast.array_decl -> Access.t -> Access.t -> bool

val kind_of : Access.t -> Access.t -> kind

(** Dependence test for one pair of same-array accesses, using the exact
    solver first and the independence tests as fallback. *)
val test : ?decl:Ast.array_decl -> Access.t -> Access.t -> result

(** All dependences of a body, normalised to lexicographically
    non-negative distance vectors. Input (read-read) pairs only when
    [include_input]. *)
val dependences : ?include_input:bool -> Ast.kernel -> Ast.stmt list -> dep list

(** The loop carrying a dependence: outermost position whose entry can be
    nonzero; [None] for loop-independent dependences. *)
val carried_by : dep -> string option

(** No true/anti/output dependence is carried by the loop: its unrolled
    iterations all execute in parallel. *)
val loop_carries_no_dependence : Ast.kernel -> Ast.stmt list -> string -> bool

(** Minimum nonzero |distance| among dependences carried by the loop. *)
val min_carried_distance : Ast.kernel -> Ast.stmt list -> string -> int option

val pp_dep : Format.formatter -> dep -> unit
