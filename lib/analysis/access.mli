(** Collection and affine classification of array accesses.

    Every analysis and the memory side of the estimator work on the list
    of array accesses of a (possibly transformed) loop body, each
    annotated with its affine subscript functions over the enclosing loop
    indices and with the loop context it appears in. *)

open Ir

type kind = Read | Write

val pp_kind : Format.formatter -> kind -> unit
val equal_kind : kind -> kind -> bool
val compare_kind : kind -> kind -> int

type t = {
  id : int;  (** unique within one [collect] result *)
  array : string;
  kind : kind;
  subs : Ast.expr list;  (** raw subscript expressions *)
  affine : Affine.t option list;  (** affine form per dimension, if any *)
  loops : Ast.loop list;  (** enclosing loops, outermost first *)
  guarded : bool;  (** syntactically under an [if] *)
}

val indices : t -> string list
val depth : t -> int
val is_read : t -> bool
val is_write : t -> bool
val is_affine : t -> bool

(** Affine forms of all dimensions; raises [Invalid_argument] when a
    dimension is non-affine. *)
val affine_exn : t -> Affine.t list

(** Collect accesses in execution (document) order. Reads nested inside
    subscripts of other accesses are collected as accesses too. *)
val collect : Ast.stmt list -> t list

val reads : t list -> t list
val writes : t list -> t list

(** Accesses grouped per array, sorted by array name. *)
val to_array_map : t list -> (string * t list) list

(** Subscripts linearized into one affine form using the array's
    row-major layout, e.g. [A[i][j]] with dims [[n; m]] becomes
    [m*i + j]. [None] if any subscript is non-affine. *)
val linearized : Ast.array_decl -> t -> Affine.t option

(** Does the access vary with the loop index? Exact for affine accesses,
    conservative for non-affine ones. *)
val varies_with : t -> string -> bool

val varying_indices : t -> string list
val pp : Format.formatter -> t -> unit
