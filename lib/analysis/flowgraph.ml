(** See flowgraph.mli. *)

open Ir

(* ------------------------------------------------------------------ *)
(* Cost accounting *)

type cost = {
  mutable builds : int;
  mutable solves : int;
  mutable steps : int;
  mutable build_seconds : float;
  mutable solve_seconds : float;
}

let fresh_cost () =
  { builds = 0; solves = 0; steps = 0; build_seconds = 0.0; solve_seconds = 0.0 }

let cost_add ~(into : cost) (c : cost) =
  into.builds <- into.builds + c.builds;
  into.solves <- into.solves + c.solves;
  into.steps <- into.steps + c.steps;
  into.build_seconds <- into.build_seconds +. c.build_seconds;
  into.solve_seconds <- into.solve_seconds +. c.solve_seconds

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* The graph *)

type kind =
  | Entry
  | Exit
  | Assign of Ast.lvalue * Ast.expr
  | Rotate of string list
  | Branch of Ast.expr
  | Header of Ast.loop

type node = {
  id : int;
  kind : kind;
  loops : Ast.loop list;
  guarded : bool;
  span : Ast.span option;
}

type t = {
  kernel : Ast.kernel;
  nodes : node array;
  succ : int list array;
  pred : int list array;
  entry : int;
  exit_ : int;
  reachable : bool array;
}

let build ?cost (k : Ast.kernel) : t =
  let t0 = now () in
  let nodes = ref [] and count = ref 0 in
  let edges = ref [] in
  let add_node kind ~loops ~guarded ~span =
    let id = !count in
    incr count;
    nodes := { id; kind; loops; guarded; span } :: !nodes;
    id
  in
  let connect froms dst = List.iter (fun f -> edges := (f, dst) :: !edges) froms in
  (* The frontier is the set of node ids whose (fall-through) successor
     is the next statement. An empty frontier builds unreachable nodes:
     they get ids and spans but no incoming edges. *)
  let rec go_stmts ~loops ~guarded ~span frontier stmts =
    List.fold_left (fun fr s -> go_stmt ~loops ~guarded ~span fr s) frontier stmts
  and go_stmt ~loops ~guarded ~span frontier (s : Ast.stmt) =
    match s with
    | Ast.Assign (lv, e) ->
        let id = add_node (Assign (lv, e)) ~loops ~guarded ~span in
        connect frontier id;
        [ id ]
    | Ast.Rotate rs ->
        let id = add_node (Rotate rs) ~loops ~guarded ~span in
        connect frontier id;
        [ id ]
    | Ast.If (c, then_, else_) ->
        let b = add_node (Branch c) ~loops ~guarded ~span in
        connect frontier b;
        let ft = go_stmts ~loops ~guarded:true ~span [ b ] then_ in
        let fe = go_stmts ~loops ~guarded:true ~span [ b ] else_ in
        List.sort_uniq compare (ft @ fe)
    | Ast.For l ->
        let span = match l.Ast.l_span with Some _ as s -> s | None -> span in
        let h = add_node (Header l) ~loops:(loops @ [ l ]) ~guarded ~span in
        connect frontier h;
        let loops' = loops @ [ l ] in
        let trip =
          if l.Ast.step <= 0 then None (* ill-formed: be conservative *)
          else Some (Ast.loop_trip l)
        in
        (match trip with
        | Some 0 ->
            (* Body provably never runs: keep its nodes, connect nothing. *)
            ignore (go_stmts ~loops:loops' ~guarded ~span [] l.Ast.body);
            [ h ]
        | Some _ ->
            (* At least one iteration: the continuation is only reachable
               through the body's tail. *)
            let tail = go_stmts ~loops:loops' ~guarded ~span [ h ] l.Ast.body in
            connect tail h;
            tail
        | None ->
            let tail = go_stmts ~loops:loops' ~guarded ~span [ h ] l.Ast.body in
            connect tail h;
            List.sort_uniq compare (h :: tail))
  in
  let entry = add_node Entry ~loops:[] ~guarded:false ~span:None in
  let final = go_stmts ~loops:[] ~guarded:false ~span:None [ entry ] k.Ast.k_body in
  let exit_ = add_node Exit ~loops:[] ~guarded:false ~span:None in
  connect final exit_;
  let n = !count in
  let node_arr = Array.make n { id = 0; kind = Entry; loops = []; guarded = false; span = None } in
  List.iter (fun nd -> node_arr.(nd.id) <- nd) !nodes;
  let succ = Array.make n [] and pred = Array.make n [] in
  List.iter
    (fun (a, b) ->
      if not (List.mem b succ.(a)) then begin
        succ.(a) <- b :: succ.(a);
        pred.(b) <- a :: pred.(b)
      end)
    !edges;
  Array.iteri (fun i l -> succ.(i) <- List.sort compare l) succ;
  Array.iteri (fun i l -> pred.(i) <- List.sort compare l) pred;
  let reachable = Array.make n false in
  let rec dfs i =
    if not reachable.(i) then begin
      reachable.(i) <- true;
      List.iter dfs succ.(i)
    end
  in
  dfs entry;
  (match cost with
  | Some c ->
      c.builds <- c.builds + 1;
      c.build_seconds <- c.build_seconds +. (now () -. t0)
  | None -> ());
  { kernel = k; nodes = node_arr; succ; pred; entry; exit_; reachable }

(* ------------------------------------------------------------------ *)
(* Abstract locations *)

type loc = Scalar of string | Cell of string * Affine.t list | Whole of string

let compare_loc (a : loc) (b : loc) = compare a b
let equal_loc a b = compare_loc a b = 0

let pp_loc fmt = function
  | Scalar s -> Format.pp_print_string fmt s
  | Cell (a, fs) ->
      Format.fprintf fmt "%s%s" a
        (String.concat ""
           (List.map (fun f -> "[" ^ Affine.to_string f ^ "]") fs))
  | Whole a -> Format.fprintf fmt "%s[*]" a

module LocSet = Set.Make (struct
  type t = loc

  let compare = compare_loc
end)

let may_alias (a : loc) (b : loc) =
  match (a, b) with
  | Scalar x, Scalar y -> String.equal x y
  | Scalar _, (Cell _ | Whole _) | (Cell _ | Whole _), Scalar _ -> false
  | (Cell (x, _) | Whole x), Whole y | Whole x, Cell (y, _) ->
      String.equal x y
  | Cell (x, fs), Cell (y, gs) ->
      String.equal x y
      && (List.length fs <> List.length gs
         || not
              (List.exists2
                 (fun f g ->
                   (* provably distinct cells across *all* iterations:
                      both subscripts constant and different *)
                   Affine.is_const f && Affine.is_const g
                   && Affine.const_part f <> Affine.const_part g)
                 fs gs))

(* The cell key of an access, valid at a node whose enclosing loop
   indices are [indices]: affine in every dimension and mentioning only
   those indices; otherwise the whole array. *)
let loc_of_access indices (a : string) (subs : Ast.expr list) : loc =
  let forms = List.map Affine.of_expr subs in
  if
    List.for_all
      (function
        | Some f -> List.for_all (fun v -> List.mem v indices) (Affine.vars f)
        | None -> false)
      forms
  then Cell (a, List.map Option.get forms)
  else Whole a

let index_names loops = List.map (fun (l : Ast.loop) -> l.Ast.index) loops

let rec expr_locs indices acc (e : Ast.expr) =
  match e with
  | Ast.Int _ -> acc
  | Ast.Var v -> Scalar v :: acc
  | Ast.Arr (a, subs) ->
      let acc = List.fold_left (expr_locs indices) acc subs in
      loc_of_access indices a subs :: acc
  | Ast.Bin (_, x, y) -> expr_locs indices (expr_locs indices acc x) y
  | Ast.Un (_, x) -> expr_locs indices acc x
  | Ast.Cond (c, x, y) ->
      expr_locs indices (expr_locs indices (expr_locs indices acc c) x) y

let uses (g : t) (i : int) : loc list =
  let nd = g.nodes.(i) in
  let indices = index_names nd.loops in
  match nd.kind with
  | Entry | Exit | Header _ -> []
  | Branch c -> List.rev (expr_locs indices [] c)
  | Rotate rs -> List.map (fun r -> Scalar r) rs
  | Assign (lv, e) ->
      let acc = expr_locs indices [] e in
      let acc =
        match lv with
        | Ast.Lvar _ -> acc
        | Ast.Larr (_, subs) ->
            (* writing a cell reads its subscripts, not the cell *)
            List.fold_left (expr_locs indices) acc subs
      in
      List.rev acc

let defs_at (g : t) (i : int) : loc list =
  let nd = g.nodes.(i) in
  let indices = index_names nd.loops in
  match nd.kind with
  | Entry | Exit | Branch _ -> []
  | Header l -> [ Scalar l.Ast.index ]
  | Rotate rs -> List.map (fun r -> Scalar r) rs
  | Assign (Ast.Lvar s, _) -> [ Scalar s ]
  | Assign (Ast.Larr (a, subs), _) -> [ loc_of_access indices a subs ]

(* ------------------------------------------------------------------ *)
(* The monotone framework *)

type direction = Forward | Backward

type 'f spec = {
  dir : direction;
  boundary : 'f;
  init : 'f;
  join : 'f -> 'f -> 'f;
  equal : 'f -> 'f -> bool;
  transfer : node -> 'f -> 'f;
}

type 'f solution = { before : 'f array; after : 'f array }

let solve ?cost (g : t) (spec : 'f spec) : 'f solution =
  let t0 = now () in
  let n = Array.length g.nodes in
  let before = Array.make n spec.init and after = Array.make n spec.init in
  let inq = Array.make n false in
  let q = Queue.create () in
  let push i =
    if not inq.(i) then begin
      inq.(i) <- true;
      Queue.push i q
    end
  in
  (match spec.dir with
  | Forward -> for i = 0 to n - 1 do push i done
  | Backward -> for i = n - 1 downto 0 do push i done);
  let steps = ref 0 in
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    inq.(i) <- false;
    incr steps;
    match spec.dir with
    | Forward ->
        let inf =
          let base = if i = g.entry then spec.boundary else spec.init in
          List.fold_left (fun acc p -> spec.join acc after.(p)) base g.pred.(i)
        in
        before.(i) <- inf;
        let out = spec.transfer g.nodes.(i) inf in
        if not (spec.equal out after.(i)) then begin
          after.(i) <- out;
          List.iter push g.succ.(i)
        end
    | Backward ->
        let outf =
          let base = if i = g.exit_ then spec.boundary else spec.init in
          List.fold_left (fun acc s -> spec.join acc before.(s)) base g.succ.(i)
        in
        after.(i) <- outf;
        let inf = spec.transfer g.nodes.(i) outf in
        if not (spec.equal inf before.(i)) then begin
          before.(i) <- inf;
          List.iter push g.pred.(i)
        end
  done;
  (match cost with
  | Some c ->
      c.solves <- c.solves + 1;
      c.steps <- c.steps + !steps;
      c.solve_seconds <- c.solve_seconds +. (now () -. t0)
  | None -> ());
  { before; after }

(* Shared helpers for the location-set analyses. *)

let is_const_cell = function
  | Cell (_, fs) -> List.for_all Affine.is_const fs
  | Scalar _ | Whole _ -> false

(* A write to [d] provably overwrites location [l] (on any execution
   reaching the program point, regardless of iteration): scalars by
   name, cells only when both sides are the same all-constant cell. *)
let strongly_overwrites (d : loc) (l : loc) =
  match d with
  | Scalar _ -> equal_loc d l
  | Cell _ -> is_const_cell d && equal_loc d l
  | Whole _ -> false

let mentions_index (idx : string) = function
  | Scalar _ | Whole _ -> false
  | Cell (_, fs) -> List.exists (fun f -> List.mem idx (Affine.vars f)) fs

(* ------------------------------------------------------------------ *)
(* Reaching definitions *)

type def = { d_id : int; d_node : int; d_loc : loc }

let def_sites (g : t) : def array =
  let acc = ref [] and next = ref 0 in
  Array.iter
    (fun nd ->
      List.iter
        (fun l ->
          acc := { d_id = !next; d_node = nd.id; d_loc = l } :: !acc;
          incr next)
        (defs_at g nd.id))
    g.nodes;
  Array.of_list (List.rev !acc)

module IntSet = Set.Make (Int)

type reaching = { r_defs : def array; r_sol : IntSet.t solution }

let reaching ?cost (g : t) : reaching =
  let defs = def_sites g in
  let n = Array.length g.nodes in
  let gen = Array.make n IntSet.empty in
  Array.iter (fun d -> gen.(d.d_node) <- IntSet.add d.d_id gen.(d.d_node)) defs;
  (* kill at a node: every site whose location the node's writes
     strongly overwrite *)
  let kill = Array.make n IntSet.empty in
  Array.iteri
    (fun i _ ->
      let writes = defs_at g i in
      if writes <> [] then
        kill.(i) <-
          Array.fold_left
            (fun acc (d : def) ->
              if List.exists (fun w -> strongly_overwrites w d.d_loc) writes
              then IntSet.add d.d_id acc
              else acc)
            IntSet.empty defs)
    g.nodes;
  let spec =
    {
      dir = Forward;
      boundary = IntSet.empty;
      init = IntSet.empty;
      join = IntSet.union;
      equal = IntSet.equal;
      transfer = (fun nd f -> IntSet.union gen.(nd.id) (IntSet.diff f kill.(nd.id)));
    }
  in
  { r_defs = defs; r_sol = solve ?cost g spec }

let reaching_defs_of (r : reaching) (node : int) (l : loc) : def list =
  IntSet.fold
    (fun id acc ->
      let d = r.r_defs.(id) in
      if may_alias d.d_loc l then d :: acc else acc)
    r.r_sol.before.(node) []
  |> List.rev

(* ------------------------------------------------------------------ *)
(* Liveness *)

let live ?cost (g : t) : LocSet.t solution =
  let boundary =
    List.fold_left
      (fun acc (a : Ast.array_decl) -> LocSet.add (Whole a.Ast.a_name) acc)
      LocSet.empty g.kernel.Ast.k_arrays
  in
  let transfer nd out =
    match nd.kind with
    | Header l ->
        (* The index changes here: cell facts that mention it name a
           different cell each iteration — widen them; the index itself
           is (re)defined. *)
        LocSet.fold
          (fun f acc ->
            if equal_loc f (Scalar l.Ast.index) then acc
            else if mentions_index l.Ast.index f then
              match f with
              | Cell (a, _) -> LocSet.add (Whole a) acc
              | _ -> LocSet.add f acc
            else LocSet.add f acc)
          out LocSet.empty
    | _ ->
        let writes = defs_at g nd.id in
        let killed =
          LocSet.filter
            (fun f ->
              not (List.exists (fun w -> strongly_overwrites w f) writes))
            out
        in
        (* a same-iteration exact cell write also kills its own fact:
           facts survive headers only as Whole, so an exact Cell fact
           here was generated in the same iteration *)
        let killed =
          LocSet.filter
            (fun f ->
              not
                (List.exists
                   (fun w ->
                     match (w, f) with
                     | Cell _, Cell _ -> equal_loc w f
                     | _ -> false)
                   writes))
            killed
        in
        List.fold_left (fun acc u -> LocSet.add u acc) killed (uses g nd.id)
  in
  solve ?cost g
    {
      dir = Backward;
      boundary;
      init = LocSet.empty;
      join = LocSet.union;
      equal = LocSet.equal;
      transfer;
    }

let live_at (s : LocSet.t) (l : loc) = LocSet.exists (fun f -> may_alias f l) s

(* ------------------------------------------------------------------ *)
(* Must-initialisation *)

let opt_must_join a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (LocSet.inter a b)

let opt_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> LocSet.equal a b
  | _ -> false

let must_init ?cost (g : t) : LocSet.t option solution =
  let boundary =
    let s =
      List.fold_left
        (fun acc (a : Ast.array_decl) -> LocSet.add (Whole a.Ast.a_name) acc)
        LocSet.empty g.kernel.Ast.k_arrays
    in
    let s =
      List.fold_left
        (fun acc (d : Ast.scalar_decl) ->
          if d.Ast.s_kind = Ast.Param then LocSet.add (Scalar d.Ast.s_name) acc
          else acc)
        s g.kernel.Ast.k_scalars
    in
    Some s
  in
  let transfer nd f =
    match f with
    | None -> None
    | Some s -> (
        match nd.kind with
        | Header l ->
            let s = LocSet.filter (fun f -> not (mentions_index l.Ast.index f)) s in
            Some (LocSet.add (Scalar l.Ast.index) s)
        | _ ->
            let writes = defs_at g nd.id in
            Some
              (List.fold_left
                 (fun acc w ->
                   match w with
                   | Scalar _ -> LocSet.add w acc
                   | Cell _ -> LocSet.add w acc
                   | Whole _ -> acc (* writes one unknown cell *))
                 s writes))
  in
  solve ?cost g
    {
      dir = Forward;
      boundary;
      init = None;
      join = opt_must_join;
      equal = opt_equal;
      transfer;
    }

let initialized_in (s : LocSet.t) (l : loc) =
  match l with
  | Scalar _ -> LocSet.mem l s
  | Cell (a, _) -> LocSet.mem l s || LocSet.mem (Whole a) s
  | Whole _ -> LocSet.mem l s

(* ------------------------------------------------------------------ *)
(* Anticipated overwrites *)

let anticipated ?cost (g : t) : LocSet.t option solution =
  let transfer nd f =
    match f with
    | None -> None
    | Some s -> (
        match nd.kind with
        | Header l ->
            Some
              (LocSet.filter
                 (fun f ->
                   (not (mentions_index l.Ast.index f))
                   && not (equal_loc f (Scalar l.Ast.index)))
                 s)
        | _ ->
            (* before = (after ∪ must-writes) \ may-reads *)
            let writes = defs_at g nd.id in
            let s =
              List.fold_left
                (fun acc w ->
                  match w with
                  | Scalar _ -> LocSet.add w acc
                  | Cell _ -> LocSet.add w acc (* exact cell, same iteration *)
                  | Whole _ -> acc)
                s writes
            in
            let reads = uses g nd.id in
            Some
              (LocSet.filter
                 (fun f -> not (List.exists (fun u -> may_alias f u) reads))
                 s))
  in
  solve ?cost g
    {
      dir = Backward;
      boundary = Some LocSet.empty;
      init = None;
      join = opt_must_join;
      equal = opt_equal;
      transfer;
    }

(* ------------------------------------------------------------------ *)
(* Use-before-def *)

type init_status = Initialized | Maybe_uninitialized | Uninitialized
type use_site = { u_node : int; u_loc : loc; u_status : init_status }

let use_before_def ?cost (g : t) : use_site list =
  let r = reaching ?cost g in
  let mi = must_init ?cost g in
  let sites = ref [] in
  Array.iter
    (fun nd ->
      if g.reachable.(nd.id) then
        List.iter
          (fun u ->
            let status =
              match mi.before.(nd.id) with
              | Some s when initialized_in s u -> Initialized
              | _ ->
                  if reaching_defs_of r nd.id u = [] then
                    (* nothing written in the kernel reaches; arrays and
                       Param scalars are host-initialised but those are
                       always must-init, so this is a genuine hole *)
                    Uninitialized
                  else Maybe_uninitialized
            in
            sites := { u_node = nd.id; u_loc = u; u_status = status } :: !sites)
          (uses g nd.id))
    g.nodes;
  List.rev !sites
