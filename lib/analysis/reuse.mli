(** Reuse analysis: uniformly generated sets and the reuse each carries.

    Scalar replacement consumes this analysis to decide, per set, whether
    the data can live in on-chip registers (and in how many); the
    saturation point computation consumes the set counts R and W
    (Section 5.1 of the paper). *)

open Ir

type group = {
  array : string;
  kind : Access.kind;
  members : Access.t list;  (** in execution order *)
}

(** Same coefficients on every dimension over the given index set. *)
val same_pattern : string list -> Access.t -> Access.t -> bool

(** Partition accesses into uniformly generated sets, reads and writes
    separately (linear time, hash-bucketed on the coefficient vectors).
    Non-affine accesses land in singleton groups. *)
val groups : Ast.stmt list -> group list

val read_sets : Ast.stmt list -> group list
val write_sets : Ast.stmt list -> group list

(** R and W of the saturation-point formula. *)
val set_counts : Ast.stmt list -> int * int

(** Members with distinct subscript expressions (one load serves all
    duplicates). *)
val distinct_members : group -> Access.t list

(** Loops of the group's nest that its subscripts do not vary with:
    temporal reuse is carried by each. *)
val invariant_loops : group -> Ast.loop list

(** Registers needed to exploit reuse carried by [carrier]: the product
    of inner varying trip counts times the distinct member count
    (Section 5.4 bounds this with tiling). *)
val bank_size : group -> carrier:Ast.loop -> int
