(** Collection and affine classification of array accesses.

    Every analysis and the memory side of the estimator work on the list
    of array accesses of a (possibly transformed) loop body, each
    annotated with its affine subscript functions over the enclosing loop
    indices and with the loop context it appears in. *)

open Ir

type kind = Read | Write [@@deriving show { with_path = false }, eq, ord]

type t = {
  id : int;  (** unique within one [collect] result *)
  array : string;
  kind : kind;
  subs : Ast.expr list;  (** raw subscript expressions *)
  affine : Affine.t option list;  (** affine form per dimension, if any *)
  loops : Ast.loop list;  (** enclosing loops, outermost first *)
  guarded : bool;  (** syntactically under an [if] *)
}

let indices a = List.map (fun (l : Ast.loop) -> l.index) a.loops
let depth a = List.length a.loops
let is_read a = a.kind = Read
let is_write a = a.kind = Write

(** All subscripts affine? *)
let is_affine a = List.for_all Option.is_some a.affine

let affine_exn a =
  List.map
    (function
      | Some f -> f
      | None -> invalid_arg "Access.affine_exn: non-affine subscript")
    a.affine

(** Collect accesses in execution order. Reads nested inside subscripts of
    other accesses are collected as their own accesses. *)
let collect (body : Ast.stmt list) : t list =
  let acc = ref [] in
  let next_id = ref 0 in
  let push ~loops ~guarded array kind subs =
    let affine = List.map Affine.of_expr subs in
    incr next_id;
    acc :=
      {
        id = !next_id - 1;
        array;
        kind;
        subs;
        affine;
        loops = List.rev loops;
        guarded;
      }
      :: !acc
  in
  let rec expr ~loops ~guarded (e : Ast.expr) =
    match e with
    | Ast.Int _ | Ast.Var _ -> ()
    | Ast.Arr (a, subs) ->
        List.iter (expr ~loops ~guarded) subs;
        push ~loops ~guarded a Read subs
    | Ast.Bin (_, a, b) ->
        expr ~loops ~guarded a;
        expr ~loops ~guarded b
    | Ast.Un (_, a) -> expr ~loops ~guarded a
    | Ast.Cond (c, t, e') ->
        expr ~loops ~guarded c;
        expr ~loops ~guarded:true t;
        expr ~loops ~guarded:true e'
  in
  let rec stmt ~loops ~guarded (s : Ast.stmt) =
    match s with
    | Ast.Assign (lv, e) -> (
        expr ~loops ~guarded e;
        match lv with
        | Ast.Lvar _ -> ()
        | Ast.Larr (a, subs) ->
            List.iter (expr ~loops ~guarded) subs;
            push ~loops ~guarded a Write subs)
    | Ast.If (c, t, e) ->
        expr ~loops ~guarded c;
        List.iter (stmt ~loops ~guarded:true) t;
        List.iter (stmt ~loops ~guarded:true) e
    | Ast.For l -> List.iter (stmt ~loops:(l :: loops) ~guarded) l.body
    | Ast.Rotate _ -> ()
  in
  List.iter (stmt ~loops:[] ~guarded:false) body;
  List.rev !acc

let reads accesses = List.filter is_read accesses
let writes accesses = List.filter is_write accesses
let to_array_map accesses =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun a ->
      let cur = try Hashtbl.find tbl a.array with Not_found -> [] in
      Hashtbl.replace tbl a.array (a :: cur))
    accesses;
  Hashtbl.fold (fun k v l -> (k, List.rev v) :: l) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(** Subscripts linearized into a single affine form using the array's
    row-major layout, e.g. [A[i][j]] with dims [[n; m]] becomes [m*i + j].
    [None] if any subscript is non-affine. *)
let linearized (decl : Ast.array_decl) (a : t) : Affine.t option =
  let rec go dims affs acc =
    match (dims, affs) with
    | [], [] -> Some acc
    | _ :: rest_dims, Some f :: rest ->
        let stride = List.fold_left ( * ) 1 rest_dims in
        go rest_dims rest (Affine.add acc (Affine.scale stride f))
    | _, None :: _ -> None
    | _ -> None
  in
  if List.length decl.a_dims <> List.length a.affine then None
  else go decl.a_dims a.affine Affine.zero

(** Does the access vary with loop index [v]? Exact for affine accesses,
    conservative (true) for non-affine ones that mention [v]. *)
let varies_with (a : t) v =
  List.exists2
    (fun sub aff ->
      match aff with
      | Some f -> Affine.coeff f v <> 0
      | None -> Loop_nest.expr_uses_var v sub)
    a.subs a.affine

(** Loop indices (from the access's own context) the access varies with. *)
let varying_indices a = List.filter (varies_with a) (indices a)

let pp fmt a =
  Format.fprintf fmt "%s %s%a"
    (match a.kind with Read -> "read" | Write -> "write")
    a.array
    (fun fmt subs ->
      List.iter (fun s -> Format.fprintf fmt "[%a]" Pretty.pp_expr s) subs)
    a.subs
