(** Persistent on-disk evaluation stores.

    Layout under a cache directory (see the implementation header for
    the full story):

    {v
    <cache-dir>/v1/<config-hash>/
      CONFIG                    full configuration string, plain text
      schedmemo.bin             shared tri-schedule memo (kernel-agnostic)
      points-<kernel-hash>.bin  one design-point cache per kernel
    v}

    Every cached value is keyed by a configuration string that digests
    the store schema version, the estimator version
    ({!Hls.Estimate.version}), all device and memory-model parameters,
    operator chaining, the backend name and the base transform-pipeline
    options — change any of them and the store goes cold rather than
    stale. Corrupt, truncated or mismatched files read as absent; writes
    are atomic (temp file + rename). *)

val schema_version : int

(** The canonical configuration string for a run. Two runs share cached
    values iff their strings are equal. *)
val config_string :
  backend:string ->
  Hls.Estimate.profile ->
  Transform.Pipeline.options ->
  string

(** [Digest.to_hex] of {!config_string} — the on-disk directory name. *)
val config_key :
  backend:string ->
  Hls.Estimate.profile ->
  Transform.Pipeline.options ->
  string

(** Content digest of a kernel (its printed form, name excluded), naming
    the kernel's point-cache file. *)
val kernel_key : Ir.Ast.kernel -> string

(** Merge the persisted points for a kernel into the store (entries
    already present win). Returns the number of points loaded, also
    accumulated into [store.loaded_points]. Missing or invalid files
    load zero points. *)
val load_points :
  cache_dir:string -> config:string -> kernel_key:string -> Store.t -> int

(** Persist a kernel's point cache, merged with what is already on disk
    (the in-memory entries win). Creates the directory as needed. *)
val save_points :
  cache_dir:string -> config:string -> kernel_key:string -> Store.t -> unit

(** Merge the persisted tri-schedule memo into [memo]; returns the
    number of new block shapes. *)
val load_memo : cache_dir:string -> config:string -> Hls.Schedule.memo -> int

val save_memo : cache_dir:string -> config:string -> Hls.Schedule.memo -> unit

(** {2 Diagnosis and removal — [defacto cache stats|clear]} *)

type config_stats = {
  cs_key : string;  (** directory name (config hash) *)
  cs_config : string option;  (** CONFIG contents when readable *)
  cs_point_files : int;
  cs_points : int;  (** cached design points across readable files *)
  cs_memo_shapes : int;  (** block shapes in the memo; [-1] if absent *)
  cs_bytes : int;
  cs_invalid : int;  (** unreadable, mismatched or foreign files *)
}

type dir_stats = {
  ds_dir : string;
  ds_exists : bool;
  ds_configs : config_stats list;
  ds_bytes : int;
}

val stats : cache_dir:string -> dir_stats

(** Remove the store. Deletes only files matching the store's own layout
    and then the emptied directories — foreign files are kept and
    counted, so pointing this at the wrong directory cannot destroy
    data. Returns [(removed, kept)]. *)
val clear : cache_dir:string -> int * int
