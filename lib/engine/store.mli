(** The unified evaluation store: design-point cache, content-addressed
    tri-schedule memo and evaluation counters as one value with a single
    fork/absorb lifecycle for domain parallelism and a persistent on-disk
    form (see {!Persist}).

    One store serves one estimation configuration (profile, pipeline,
    backend); the caches are exact under a fixed configuration and
    meaningless across two. *)

open Ir

(** The design point's transform configuration — re-export of
    {!Transform.Pipeline.config} and the cache key of the point table.
    Since the joint-space refactor a design point is a full transform
    configuration (unroll vector, tile, scalar-replace/peel/LICM
    toggles), not just an unroll vector. *)
type config = Transform.Pipeline.config = {
  vector : (string * int) list;  (** unroll factor per spine loop *)
  tile : (string * int) option;  (** strip-mine this loop to this tile *)
  scalar_replace : bool;
  peel : bool;
  licm : bool;
}

type point = {
  config : config;  (** the normalized configuration this point is *)
  vector : (string * int) list;
      (** [config.vector], kept as a field for vector-only call sites *)
  kernel : Ast.kernel;  (** transformed code *)
  estimate : Hls.Estimate.t;
  report : Transform.Scalar_replace.report;
}

type stats = {
  mutable evaluations : int;
      (** cache misses: full [Generate; Synthesize] runs *)
  mutable cache_hits : int;
  mutable quick_estimates : int;
      (** tier-1 analytical lower bounds computed *)
  mutable pruned : int;
      (** full syntheses skipped because a lower bound disqualified
          the point *)
  mutable transform_seconds : float;
  mutable estimate_seconds : float;
  mutable dfg_seconds : float;
  mutable schedule_seconds : float;
  mutable layout_seconds : float;
  mutable sched_memo_hits : int;
  mutable region_memo_hits : int;
      (** blocks that missed the whole-block memo but restored a
          statement-prefix scheduler snapshot and scheduled only the
          tail *)
  mutable delta_reuses : int;
      (** design points whose transform pipeline reused a cached
          outer-prefix unroll instead of unrolling from the source *)
  mutable checked_points : int;
  mutable verify_violations : int;
  mutable flow_builds : int;
      (** flow graphs constructed by the verified path's dataflow checks *)
  mutable flow_solves : int;  (** dataflow fixpoint solves run *)
  mutable flow_seconds : float;
      (** wall time building and solving flow graphs *)
  mutable joint_configs : int;
      (** configurations enumerated by joint sweeps (the joint space
          size, pruned configurations included) *)
  mutable joint_pruned_illegal : int;
      (** joint configurations dropped by the legality pre-pruner *)
  mutable joint_pruned_redundant : int;
      (** joint configurations dropped as duplicates of a canonical
          configuration elsewhere in the space *)
  mutable joint_pruned_bound : int;
      (** joint configurations skipped on tier-1 lower bounds *)
}

val fresh_stats : unit -> stats
val reset_stats : stats -> unit

(** Immutable copy (for before/after deltas). *)
val stats_copy : stats -> stats

(** Add [from]'s counters into [into] — the stats half of {!absorb}. *)
val stats_add : into:stats -> stats -> unit

val stats_diff : before:stats -> after:stats -> stats

type t = {
  points : (config, point) Hashtbl.t;
      (** evaluation memo, keyed on the normalized configuration *)
  sched_memo : Hls.Schedule.memo;
      (** fingerprint-keyed tri-schedule table; physically shared
          between the kernels of a session *)
  arena : Hls.Dfg.arena;
      (** reusable DFG build arena; per-store scratch, never persisted *)
  delta_cache : Transform.Unroll.cache;
      (** staged-unroll delta cache; per-store scratch, never persisted *)
  stats : stats;
  mutable loaded_points : int;
      (** points warm-loaded from a persistent store at creation *)
}

(** A fresh, empty store. Pass [sched_memo] to share one tri-schedule
    table across several stores (the multi-kernel session does: the
    fingerprints are kernel-agnostic, so one kernel's block shapes warm
    another's). *)
val create : ?sched_memo:Hls.Schedule.memo -> unit -> t

val find : t -> config -> point option
val add : t -> config -> point -> unit
val size : t -> int
val sched_memo_size : t -> int
val iter_points : t -> (config -> point -> unit) -> unit

(** A private copy for one domain of a parallel sweep: snapshots both
    caches and starts fresh counters — no mutable state, counters
    included, is ever shared across domains. *)
val fork : t -> t

(** Merge a fork's cache entries, tri-schedule memo and counters back
    into [into] (entries already present in [into] win). *)
val absorb : into:t -> t -> unit
