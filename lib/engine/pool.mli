(** A reusable worker-domain pool: spawn the domains once, run many
    batches of thunks over them, join once at shutdown. The multi-kernel
    session shares one pool across every parallel sweep it triggers. *)

type t

type task = unit -> unit

(** Spawn a pool of [max 1 n] worker domains. *)
val create : int -> t

val size : t -> int

(** Run a batch of thunks to completion on the pool's workers. Blocks
    until every thunk has finished; if any thunk raised, re-raises the
    first such exception (with its backtrace) after the batch drains.
    Batches do not overlap — callers serialize. *)
val run : t -> task list -> unit

(** Join all worker domains. The pool cannot be used afterwards;
    calling {!run} then raises [Invalid_argument]. Idempotent. *)
val shutdown : t -> unit

(** [with_pool n f] runs [f pool] and always shuts the pool down. *)
val with_pool : int -> (t -> 'a) -> 'a

(** One fewer than the recommended domain count, clamped to [1, 8] —
    the sweep's historical default parallelism. *)
val default_size : unit -> int
