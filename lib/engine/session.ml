(** Batched evaluation sessions: several kernels explored over one
    shared tri-schedule memo, one worker-domain pool and (optionally)
    one persistent cache directory.

    The session is generic in what "exploring a kernel" means — the
    [explore] callback receives the evaluation environment, the kernel's
    warm store and the shared pool, and returns whatever the caller
    wants per kernel ([Dse.Driver] plugs in the Figure-2 search). The
    session owns everything around it: building the per-run
    configuration string, warm-loading stores, sharing the schedule memo
    so one kernel's block shapes serve the next kernel's, timing each
    kernel, merging counters, and persisting the result.

    Determinism contract: a warm store only short-circuits evaluations
    that would have produced bit-identical points, so selections are the
    same cold and warm, and the same batched or sequential. *)

type task = { name : string; kernel : Ir.Ast.kernel }

type 'r outcome = {
  task : task;
  result : 'r;
  store : Store.t;
  loaded_points : int;  (** points warm-loaded from the persistent store *)
  stats : Store.stats;  (** this kernel's counters (snapshot) *)
  wall_seconds : float;
}

type 'r summary = {
  outcomes : 'r outcome list;
  sched_memo : Hls.Schedule.memo;  (** shared across all kernels *)
  loaded_memo_shapes : int;
  total : Store.stats;  (** sum over all kernels *)
  config : string;  (** the persistence configuration string *)
  saved_to : string option;  (** cache directory written, if any *)
}

let run_many ?cache_dir ?(cold = false) ?pipeline ?profile ?verify
    ?incremental ?capacity ?(backend = Backend.default) ?pool ?jobs
    ~(explore :
       env:Backend.env -> store:Store.t -> pool:Pool.t option -> 'r)
    (tasks : task list) : 'r summary =
  (* The configuration every cached value depends on. [make_env] applies
     the same defaults, so build one env up front to read them back. *)
  let probe =
    match tasks with
    | [] -> None
    | t :: _ ->
        Some
          (Backend.make_env ?pipeline ?profile ?verify ?incremental ?capacity
             t.kernel)
  in
  let config =
    match probe with
    | None -> ""
    | Some env ->
        Persist.config_string ~backend:backend.Backend.name
          env.Backend.profile env.Backend.pipeline
  in
  let sched_memo = Hls.Schedule.memo_create () in
  let loaded_memo_shapes =
    match cache_dir with
    | Some dir when not cold -> Persist.load_memo ~cache_dir:dir ~config sched_memo
    | _ -> 0
  in
  let run_tasks pool =
    List.map
      (fun task ->
        let env =
          Backend.make_env ?pipeline ?profile ?verify ?incremental ?capacity
            task.kernel
        in
        let store = Store.create ~sched_memo () in
        let loaded_points =
          match cache_dir with
          | Some dir when not cold ->
              Persist.load_points ~cache_dir:dir ~config
                ~kernel_key:(Persist.kernel_key task.kernel)
                store
          | _ -> 0
        in
        let t0 = Util.now () in
        let result = explore ~env ~store ~pool in
        let wall_seconds = Util.now () -. t0 in
        {
          task;
          result;
          store;
          loaded_points;
          stats = Store.stats_copy store.Store.stats;
          wall_seconds;
        })
      tasks
  in
  let outcomes =
    match pool with
    | Some p -> run_tasks (Some p)
    | None ->
        let n = match jobs with Some j -> j | None -> Pool.default_size () in
        if n <= 1 then run_tasks None
        else Pool.with_pool n (fun p -> run_tasks (Some p))
  in
  let total = Store.fresh_stats () in
  List.iter (fun o -> Store.stats_add ~into:total o.stats) outcomes;
  let saved_to =
    match cache_dir with
    | Some dir when tasks <> [] ->
        Persist.save_memo ~cache_dir:dir ~config sched_memo;
        List.iter
          (fun o ->
            Persist.save_points ~cache_dir:dir ~config
              ~kernel_key:(Persist.kernel_key o.task.kernel)
              o.store)
          outcomes;
        Some dir
    | _ -> None
  in
  { outcomes; sched_memo; loaded_memo_shapes; total; config; saved_to }
