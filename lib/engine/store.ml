(** The unified evaluation store: one value owning every piece of
    reusable evaluation state — the design-point cache keyed on the
    normalized transform {!config}, the content-addressed tri-schedule
    memo keyed on {!Hls.Dfg.fingerprint}, and the evaluation counters.

    Before the engine existed these three lived as separate fields of
    [Dse.Design.context] with per-call-site fork/absorb plumbing; the
    store makes the lifecycle one operation: {!fork} gives a domain of a
    parallel sweep a private copy (snapshotted caches, fresh counters —
    no shared mutable state crosses a domain boundary), {!absorb} merges
    a fork back on the joining side, and {!Persist} saves/loads the two
    caches to a versioned on-disk directory so later runs warm-start.

    One store serves one estimation configuration (profile, pipeline,
    backend): the caches are exact under a fixed configuration and
    meaningless across two. The owning context/session fixes the
    configuration for the store's lifetime; {!Persist} keys the on-disk
    form by a configuration hash so a mismatched cache is never read. *)

open Ir

(** The design point's transform configuration — re-export of
    {!Transform.Pipeline.config}, the cache key of the point table.
    Since the joint-space refactor a design point is a full transform
    configuration (unroll vector, tile, scalar-replace/peel/LICM
    toggles), not just an unroll vector. *)
type config = Transform.Pipeline.config = {
  vector : (string * int) list;  (** unroll factor per spine loop *)
  tile : (string * int) option;  (** strip-mine this loop to this tile *)
  scalar_replace : bool;
  peel : bool;
  licm : bool;
}

type point = {
  config : config;  (** the normalized configuration this point is *)
  vector : (string * int) list;
      (** [config.vector], kept as a field for the many vector-only
          call sites *)
  kernel : Ast.kernel;  (** transformed code *)
  estimate : Hls.Estimate.t;
  report : Transform.Scalar_replace.report;
}

type stats = {
  mutable evaluations : int;
      (** cache misses: full [Generate; Synthesize] runs *)
  mutable cache_hits : int;
  mutable quick_estimates : int;
      (** tier-1 analytical lower bounds computed *)
  mutable pruned : int;
      (** full syntheses skipped because a lower bound disqualified
          the point (over capacity or provably behind the incumbent) *)
  mutable transform_seconds : float;  (** wall time in the transform pipeline *)
  mutable estimate_seconds : float;  (** wall time in the synthesis estimator *)
  mutable dfg_seconds : float;  (** estimator time building DFGs *)
  mutable schedule_seconds : float;
      (** estimator time in the tri-mode scheduler (memo hits pay only
          the fingerprint) *)
  mutable layout_seconds : float;  (** estimator time in the data layout *)
  mutable sched_memo_hits : int;
      (** blocks whose tri-schedule was served content-addressed from
          the fingerprint memo instead of being scheduled *)
  mutable region_memo_hits : int;
      (** blocks that missed the whole-block memo but restored a
          statement-prefix scheduler snapshot and scheduled only the
          tail *)
  mutable delta_reuses : int;
      (** design points whose transform pipeline reused a cached
          outer-prefix unroll instead of unrolling from the source *)
  mutable checked_points : int;
      (** design points whose pipeline run was translation-validated *)
  mutable verify_violations : int;
      (** error-severity validation findings across checked points *)
  mutable flow_builds : int;
      (** flow graphs constructed by the verified path's dataflow checks *)
  mutable flow_solves : int;  (** dataflow fixpoint solves run *)
  mutable flow_seconds : float;
      (** wall time building and solving flow graphs *)
  mutable joint_configs : int;
      (** configurations enumerated by joint sweeps (the joint space
          size, pruned configurations included) *)
  mutable joint_pruned_illegal : int;
      (** joint configurations dropped by the legality pre-pruner
          before any transform ran *)
  mutable joint_pruned_redundant : int;
      (** joint configurations dropped as duplicates of a canonical
          configuration elsewhere in the space *)
  mutable joint_pruned_bound : int;
      (** joint configurations skipped on tier-1 lower bounds *)
}

let fresh_stats () =
  {
    evaluations = 0;
    cache_hits = 0;
    quick_estimates = 0;
    pruned = 0;
    transform_seconds = 0.0;
    estimate_seconds = 0.0;
    dfg_seconds = 0.0;
    schedule_seconds = 0.0;
    layout_seconds = 0.0;
    sched_memo_hits = 0;
    region_memo_hits = 0;
    delta_reuses = 0;
    checked_points = 0;
    verify_violations = 0;
    flow_builds = 0;
    flow_solves = 0;
    flow_seconds = 0.0;
    joint_configs = 0;
    joint_pruned_illegal = 0;
    joint_pruned_redundant = 0;
    joint_pruned_bound = 0;
  }

let reset_stats (s : stats) =
  s.evaluations <- 0;
  s.cache_hits <- 0;
  s.quick_estimates <- 0;
  s.pruned <- 0;
  s.transform_seconds <- 0.0;
  s.estimate_seconds <- 0.0;
  s.dfg_seconds <- 0.0;
  s.schedule_seconds <- 0.0;
  s.layout_seconds <- 0.0;
  s.sched_memo_hits <- 0;
  s.region_memo_hits <- 0;
  s.delta_reuses <- 0;
  s.checked_points <- 0;
  s.verify_violations <- 0;
  s.flow_builds <- 0;
  s.flow_solves <- 0;
  s.flow_seconds <- 0.0;
  s.joint_configs <- 0;
  s.joint_pruned_illegal <- 0;
  s.joint_pruned_redundant <- 0;
  s.joint_pruned_bound <- 0

let stats_copy (s : stats) : stats =
  {
    evaluations = s.evaluations;
    cache_hits = s.cache_hits;
    quick_estimates = s.quick_estimates;
    pruned = s.pruned;
    transform_seconds = s.transform_seconds;
    estimate_seconds = s.estimate_seconds;
    dfg_seconds = s.dfg_seconds;
    schedule_seconds = s.schedule_seconds;
    layout_seconds = s.layout_seconds;
    sched_memo_hits = s.sched_memo_hits;
    region_memo_hits = s.region_memo_hits;
    delta_reuses = s.delta_reuses;
    checked_points = s.checked_points;
    verify_violations = s.verify_violations;
    flow_builds = s.flow_builds;
    flow_solves = s.flow_solves;
    flow_seconds = s.flow_seconds;
    joint_configs = s.joint_configs;
    joint_pruned_illegal = s.joint_pruned_illegal;
    joint_pruned_redundant = s.joint_pruned_redundant;
    joint_pruned_bound = s.joint_pruned_bound;
  }

(** Add [from]'s counters into [into] — the stats half of {!absorb}. *)
let stats_add ~(into : stats) (from : stats) =
  into.evaluations <- into.evaluations + from.evaluations;
  into.cache_hits <- into.cache_hits + from.cache_hits;
  into.quick_estimates <- into.quick_estimates + from.quick_estimates;
  into.pruned <- into.pruned + from.pruned;
  into.transform_seconds <- into.transform_seconds +. from.transform_seconds;
  into.estimate_seconds <- into.estimate_seconds +. from.estimate_seconds;
  into.dfg_seconds <- into.dfg_seconds +. from.dfg_seconds;
  into.schedule_seconds <- into.schedule_seconds +. from.schedule_seconds;
  into.layout_seconds <- into.layout_seconds +. from.layout_seconds;
  into.sched_memo_hits <- into.sched_memo_hits + from.sched_memo_hits;
  into.region_memo_hits <- into.region_memo_hits + from.region_memo_hits;
  into.delta_reuses <- into.delta_reuses + from.delta_reuses;
  into.checked_points <- into.checked_points + from.checked_points;
  into.verify_violations <- into.verify_violations + from.verify_violations;
  into.flow_builds <- into.flow_builds + from.flow_builds;
  into.flow_solves <- into.flow_solves + from.flow_solves;
  into.flow_seconds <- into.flow_seconds +. from.flow_seconds;
  into.joint_configs <- into.joint_configs + from.joint_configs;
  into.joint_pruned_illegal <-
    into.joint_pruned_illegal + from.joint_pruned_illegal;
  into.joint_pruned_redundant <-
    into.joint_pruned_redundant + from.joint_pruned_redundant;
  into.joint_pruned_bound <- into.joint_pruned_bound + from.joint_pruned_bound

let stats_diff ~(before : stats) ~(after : stats) : stats =
  {
    evaluations = after.evaluations - before.evaluations;
    cache_hits = after.cache_hits - before.cache_hits;
    quick_estimates = after.quick_estimates - before.quick_estimates;
    pruned = after.pruned - before.pruned;
    transform_seconds = after.transform_seconds -. before.transform_seconds;
    estimate_seconds = after.estimate_seconds -. before.estimate_seconds;
    dfg_seconds = after.dfg_seconds -. before.dfg_seconds;
    schedule_seconds = after.schedule_seconds -. before.schedule_seconds;
    layout_seconds = after.layout_seconds -. before.layout_seconds;
    sched_memo_hits = after.sched_memo_hits - before.sched_memo_hits;
    region_memo_hits = after.region_memo_hits - before.region_memo_hits;
    delta_reuses = after.delta_reuses - before.delta_reuses;
    checked_points = after.checked_points - before.checked_points;
    verify_violations = after.verify_violations - before.verify_violations;
    flow_builds = after.flow_builds - before.flow_builds;
    flow_solves = after.flow_solves - before.flow_solves;
    flow_seconds = after.flow_seconds -. before.flow_seconds;
    joint_configs = after.joint_configs - before.joint_configs;
    joint_pruned_illegal =
      after.joint_pruned_illegal - before.joint_pruned_illegal;
    joint_pruned_redundant =
      after.joint_pruned_redundant - before.joint_pruned_redundant;
    joint_pruned_bound = after.joint_pruned_bound - before.joint_pruned_bound;
  }

type t = {
  points : (config, point) Hashtbl.t;
      (** evaluation memo, keyed on the normalized configuration *)
  sched_memo : Hls.Schedule.memo;
      (** fingerprint-keyed tri-schedule table. In a multi-kernel
          session this table is physically shared between the kernels'
          stores (fingerprints are kernel-agnostic), so one kernel's
          block shapes warm another's *)
  arena : Hls.Dfg.arena;
      (** reusable DFG build arena — scratch state, never shared across
          domains and never persisted; owning it here gives every
          evaluation through this store the incremental build path *)
  delta_cache : Transform.Unroll.cache;
      (** staged-unroll delta cache — like [arena], per-store scratch:
          consecutive sweep points sharing an outer unroll prefix rebuild
          only the innermost axis *)
  stats : stats;
  mutable loaded_points : int;
      (** points warm-loaded from a persistent store at creation *)
}

let create ?sched_memo () : t =
  {
    points = Hashtbl.create 64;
    sched_memo =
      (match sched_memo with
      | Some m -> m
      | None -> Hls.Schedule.memo_create ());
    arena = Hls.Dfg.arena ();
    delta_cache = Transform.Unroll.cache ();
    stats = fresh_stats ();
    loaded_points = 0;
  }

let find (t : t) key = Hashtbl.find_opt t.points key
let add (t : t) key p = Hashtbl.replace t.points key p
let size (t : t) = Hashtbl.length t.points
let sched_memo_size (t : t) = Hls.Schedule.memo_size t.sched_memo

let iter_points (t : t) f = Hashtbl.iter f t.points

(** A private copy for one domain of a parallel sweep: snapshots both
    caches and starts fresh counters, so no mutable state — counters
    included — is ever shared across domains. *)
let fork (t : t) : t =
  {
    points = Hashtbl.copy t.points;
    sched_memo = Hls.Schedule.memo_copy t.sched_memo;
    arena = Hls.Dfg.arena ();
    delta_cache = Transform.Unroll.cache ();
    stats = fresh_stats ();
    loaded_points = 0;
  }

(** Merge a fork's cache entries, tri-schedule memo and counters back
    into [into] (entries already present in [into] are kept as-is). *)
let absorb ~(into : t) (forked : t) : unit =
  Hashtbl.iter
    (fun k p ->
      if not (Hashtbl.mem into.points k) then Hashtbl.replace into.points k p)
    forked.points;
  Hls.Schedule.memo_absorb ~into:into.sched_memo forked.sched_memo;
  stats_add ~into:into.stats forked.stats
