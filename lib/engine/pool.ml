(** A reusable worker-domain pool. Spawning a domain costs hundreds of
    microseconds and the multi-kernel session runs one parallel sweep
    per kernel per search step; reusing one set of domains across all of
    them keeps that cost constant per session instead of per sweep.

    The pool runs batches of thunks: {!run} enqueues them all, workers
    drain the queue, and the call returns when every thunk has finished.
    Only one batch runs at a time (the session driver is sequential
    between sweeps); an exception raised by a thunk is stashed and
    re-raised in the caller after the batch drains, so no worker domain
    is ever lost to an exception. *)

type task = unit -> unit

type t = {
  mutex : Mutex.t;
  work_available : Condition.t;  (** signalled on enqueue and shutdown *)
  batch_done : Condition.t;  (** signalled when [pending] reaches 0 *)
  queue : task Queue.t;
  mutable pending : int;  (** enqueued or running tasks of this batch *)
  mutable stashed : (exn * Printexc.raw_backtrace) option;
  mutable quit : bool;
  mutable domains : unit Domain.t list;
}

let size t = List.length t.domains

let worker (t : t) () =
  let rec loop () =
    Mutex.lock t.mutex;
    let rec wait () =
      if t.quit then begin
        Mutex.unlock t.mutex;
        None
      end
      else
        match Queue.take_opt t.queue with
        | Some task ->
            Mutex.unlock t.mutex;
            Some task
        | None ->
            Condition.wait t.work_available t.mutex;
            wait ()
    in
    match wait () with
    | None -> ()
    | Some task ->
        (try task ()
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           Mutex.lock t.mutex;
           if t.stashed = None then t.stashed <- Some (e, bt);
           Mutex.unlock t.mutex);
        Mutex.lock t.mutex;
        t.pending <- t.pending - 1;
        if t.pending = 0 then Condition.broadcast t.batch_done;
        Mutex.unlock t.mutex;
        loop ()
  in
  loop ()

let create n =
  let n = max 1 n in
  let t =
    {
      mutex = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      queue = Queue.create ();
      pending = 0;
      stashed = None;
      quit = false;
      domains = [];
    }
  in
  t.domains <- List.init n (fun _ -> Domain.spawn (worker t));
  t

let run (t : t) (tasks : task list) =
  match tasks with
  | [] -> ()
  | _ ->
      Mutex.lock t.mutex;
      if t.quit then begin
        Mutex.unlock t.mutex;
        invalid_arg "Pool.run: pool is shut down"
      end;
      t.stashed <- None;
      List.iter (fun task -> Queue.add task t.queue) tasks;
      t.pending <- t.pending + List.length tasks;
      Condition.broadcast t.work_available;
      while t.pending > 0 do
        Condition.wait t.batch_done t.mutex
      done;
      let stashed = t.stashed in
      t.stashed <- None;
      Mutex.unlock t.mutex;
      (match stashed with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())

let shutdown (t : t) =
  Mutex.lock t.mutex;
  if not t.quit then begin
    t.quit <- true;
    Condition.broadcast t.work_available
  end;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

(** [with_pool n f] runs [f pool] and always shuts the pool down. *)
let with_pool n f =
  let t = create n in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(** One fewer than the recommended domain count, clamped to [1, 8] —
    the same default the parallel sweep has always used. *)
let default_size () =
  max 1 (min 8 (Domain.recommended_domain_count () - 1))
