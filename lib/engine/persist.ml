(** Persistent on-disk evaluation stores: the cold-start/warm-start
    discipline. A cache directory holds, per estimation configuration,
    the design-point caches of every kernel ever evaluated under it plus
    the shared fingerprint-keyed tri-schedule memo, so repeated CLI,
    bench and CI runs warm-start instead of re-synthesizing, and
    cross-kernel fingerprint hits are shared across processes.

    {2 Layout}

    {v
    <cache-dir>/
      v1/                          versioned root (schema_version)
        <config-hash>/             one dir per estimation configuration
          CONFIG                   the full configuration string, plain text
          schedmemo.bin            fingerprint -> tri-schedule (kernel-agnostic)
          points-<kernel-hash>.bin config -> point, one file per kernel
    v}

    {2 Invalidation}

    The configuration hash digests everything a cached value can depend
    on: the schema version, the estimator version ({!Hls.Estimate.version}),
    every device parameter, every memory-model parameter, operator
    chaining, the backend name, and the base transform-pipeline options.
    A run under a different configuration lands in a different directory
    and never sees the stale entries; [defacto cache clear] removes them.
    The device's [capacity_slices] is included even though behavioral
    estimates do not read it, because the [lowlevel] backend's P&R
    degradation does.

    Each [.bin] file additionally embeds the full configuration string
    (not just its hash) in a header that is compared verbatim on load;
    a mismatched, truncated or otherwise unreadable file is treated as
    absent (cold), never trusted. Writes go to a temp file in the same
    directory and are renamed into place, so a crashed run cannot leave
    a half-written store behind. *)

(* 2: the tri-schedule memo payload grew a second, region-level table
   (prefix fingerprint -> scheduler snapshot); v1 memo files no longer
   unmarshal into it.
   3: design points are keyed by full transform configurations
   (vector + tile + toggles) instead of bare unroll vectors, and the
   point record grew a [config] field; v2 point files no longer
   unmarshal into it. *)
let schema_version = 3

(* ------------------------------------------------------------------ *)
(* Canonical configuration strings *)

let device_string (d : Hls.Device.t) =
  Printf.sprintf "device{name=%s;slices=%d;mems=%d;width=%d;clock=%g;ffs=%d}"
    d.Hls.Device.name d.Hls.Device.capacity_slices d.Hls.Device.num_memories
    d.Hls.Device.memory_width_bits d.Hls.Device.clock_ns
    d.Hls.Device.ffs_per_slice

let mem_string (m : Hls.Memory_model.t) =
  Printf.sprintf "mem{rlat=%d;wlat=%d;rocc=%d;wocc=%d}"
    m.Hls.Memory_model.read_latency m.Hls.Memory_model.write_latency
    m.Hls.Memory_model.read_occupancy m.Hls.Memory_model.write_occupancy

let scalar_string (c : Transform.Scalar_replace.config) =
  Printf.sprintf "scalar{across=%b;chains=%b;span=%d;regs=%d}"
    c.Transform.Scalar_replace.across_loops c.Transform.Scalar_replace.chains
    c.Transform.Scalar_replace.max_chain_span
    c.Transform.Scalar_replace.max_registers

let pipeline_string (o : Transform.Pipeline.options) =
  let vec =
    String.concat ","
      (List.map
         (fun (i, u) -> Printf.sprintf "%s=%d" i u)
         (List.sort compare o.Transform.Pipeline.vector))
  in
  Printf.sprintf "pipeline{vector=[%s];%s;peel=%b;licm=%b;tile=%s}" vec
    (scalar_string o.Transform.Pipeline.scalar)
    o.Transform.Pipeline.peel o.Transform.Pipeline.licm
    (match o.Transform.Pipeline.tile with
    | None -> "none"
    | Some (l, t) -> Printf.sprintf "%s:%d" l t)

(** The full configuration string: everything a cached point or
    tri-schedule can depend on. The verify flag is deliberately absent —
    verified evaluation is bit-identical by contract. *)
let config_string ~(backend : string) (profile : Hls.Estimate.profile)
    (pipeline : Transform.Pipeline.options) : string =
  String.concat "|"
    [
      Printf.sprintf "schema=%d" schema_version;
      "estimator=" ^ Hls.Estimate.version;
      device_string profile.Hls.Estimate.device;
      mem_string profile.Hls.Estimate.mem;
      Printf.sprintf "chaining=%b" profile.Hls.Estimate.chaining;
      "backend=" ^ backend;
      pipeline_string pipeline;
    ]

let digest s = Digest.to_hex (Digest.string s)
let config_key ~backend profile pipeline =
  digest (config_string ~backend profile pipeline)

(** Kernel identity: the digest of its pretty-printed form, so the same
    loop nest loaded from a file or the built-in suite shares a cache
    file and a renamed copy does not collide. *)
let kernel_key (k : Ir.Ast.kernel) =
  digest (Ir.Pretty.kernel_to_string { k with Ir.Ast.k_name = "" })

(* ------------------------------------------------------------------ *)
(* Files *)

let magic = "defacto-store"

type header = { h_magic : string; h_schema : int; h_config : string }

let version_dir cache_dir = Filename.concat cache_dir "v1"

let config_dir ~cache_dir ~config =
  Filename.concat (version_dir cache_dir) (digest config)

let memo_file dir = Filename.concat dir "schedmemo.bin"
let points_file dir ~kernel_key = Filename.concat dir ("points-" ^ kernel_key ^ ".bin")

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Write [payload] (already a closure over output_value calls) to a temp
   file next to [file], then rename into place. *)
let atomic_write file payload =
  mkdir_p (Filename.dirname file);
  let tmp =
    Printf.sprintf "%s.tmp.%d" file (Unix.getpid ())
  in
  let oc = open_out_bin tmp in
  (try payload oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp file

(* Read one store file; [None] when missing, corrupt, truncated or
   written under a different configuration — a cold read, never an
   error. *)
let read_payload : 'a. string -> config:string -> 'a option =
 fun file ~config ->
  if not (Sys.file_exists file) then None
  else
    try
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let h : header = Marshal.from_channel ic in
          if
            h.h_magic <> magic || h.h_schema <> schema_version
            || h.h_config <> config
          then None
          else Some (Marshal.from_channel ic))
    with _ -> None

let write_payload file ~config v =
  atomic_write file (fun oc ->
      Marshal.to_channel oc
        { h_magic = magic; h_schema = schema_version; h_config = config }
        [];
      Marshal.to_channel oc v [])

(* ------------------------------------------------------------------ *)
(* Point caches *)

type points_payload = (Store.config * Store.point) array

(** Merge the kernel's persisted points into [store] (entries already in
    the store win). Returns how many points were loaded; also recorded
    in [store.loaded_points]. *)
let load_points ~cache_dir ~config ~kernel_key (store : Store.t) : int =
  let dir = config_dir ~cache_dir ~config in
  match
    (read_payload (points_file dir ~kernel_key) ~config : points_payload option)
  with
  | None -> 0
  | Some entries ->
      let n = ref 0 in
      Array.iter
        (fun (k, p) ->
          if not (Hashtbl.mem store.Store.points k) then begin
            Hashtbl.replace store.Store.points k p;
            incr n
          end)
        entries;
      store.Store.loaded_points <- store.Store.loaded_points + !n;
      !n

(** Write the kernel's point cache, merged with whatever an earlier run
    already persisted (the store's entries win; under one configuration
    both are bit-identical anyway). *)
let save_points ~cache_dir ~config ~kernel_key (store : Store.t) : unit =
  let dir = config_dir ~cache_dir ~config in
  let merged = Hashtbl.copy store.Store.points in
  (match
     ( read_payload (points_file dir ~kernel_key) ~config
       : points_payload option )
   with
  | None -> ()
  | Some entries ->
      Array.iter
        (fun (k, p) ->
          if not (Hashtbl.mem merged k) then Hashtbl.replace merged k p)
        entries);
  let payload : points_payload =
    Array.of_seq (Seq.map (fun (k, p) -> (k, p)) (Hashtbl.to_seq merged))
  in
  write_payload (points_file dir ~kernel_key) ~config payload;
  (* Keep the configuration readable next to its hash for diagnosis. *)
  let cfg = Filename.concat dir "CONFIG" in
  if not (Sys.file_exists cfg) then
    atomic_write cfg (fun oc -> output_string oc (config ^ "\n"))

(* ------------------------------------------------------------------ *)
(* Tri-schedule memo *)

(** Merge the persisted tri-schedule memo into [memo]; returns how many
    distinct block shapes arrived. *)
let load_memo ~cache_dir ~config (memo : Hls.Schedule.memo) : int =
  let dir = config_dir ~cache_dir ~config in
  match
    (read_payload (memo_file dir) ~config : Hls.Schedule.memo option)
  with
  | None -> 0
  | Some disk ->
      let before = Hls.Schedule.memo_size memo in
      Hls.Schedule.memo_absorb ~into:memo disk;
      Hls.Schedule.memo_size memo - before

let save_memo ~cache_dir ~config (memo : Hls.Schedule.memo) : unit =
  let dir = config_dir ~cache_dir ~config in
  let merged = Hls.Schedule.memo_copy memo in
  (match
     (read_payload (memo_file dir) ~config : Hls.Schedule.memo option)
   with
  | None -> ()
  | Some disk -> Hls.Schedule.memo_absorb ~into:merged disk);
  write_payload (memo_file dir) ~config merged

(* ------------------------------------------------------------------ *)
(* Cache directory diagnosis and removal (defacto cache stats/clear) *)

type config_stats = {
  cs_key : string;  (** the directory name (config hash) *)
  cs_config : string option;  (** CONFIG contents when readable *)
  cs_point_files : int;
  cs_points : int;  (** total cached design points (readable files) *)
  cs_memo_shapes : int;  (** distinct block shapes in the memo, -1 if none *)
  cs_bytes : int;
  cs_invalid : int;  (** unreadable / mismatched / foreign files *)
}

type dir_stats = {
  ds_dir : string;
  ds_exists : bool;
  ds_configs : config_stats list;
  ds_bytes : int;
}

let file_size f = try (Unix.stat f).Unix.st_size with Unix.Unix_error _ -> 0

(* Re-read a file's own header (any config accepted) to count entries;
   used only by [stats], which must describe even foreign configs. *)
let read_with_own_header : 'a. string -> 'a option =
 fun file ->
  try
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let h : header = Marshal.from_channel ic in
        if h.h_magic <> magic || h.h_schema <> schema_version then None
        else Some (Marshal.from_channel ic))
  with _ -> None

let stats ~cache_dir : dir_stats =
  let vdir = version_dir cache_dir in
  if not (Sys.file_exists vdir) then
    { ds_dir = cache_dir; ds_exists = Sys.file_exists cache_dir; ds_configs = []; ds_bytes = 0 }
  else begin
    let configs =
      Sys.readdir vdir |> Array.to_list |> List.sort compare
      |> List.filter (fun d -> Sys.is_directory (Filename.concat vdir d))
      |> List.map (fun key ->
             let dir = Filename.concat vdir key in
             let files = Sys.readdir dir |> Array.to_list |> List.sort compare in
             let cs =
               List.fold_left
                 (fun cs f ->
                   let path = Filename.concat dir f in
                   let cs = { cs with cs_bytes = cs.cs_bytes + file_size path } in
                   if f = "CONFIG" then
                     {
                       cs with
                       cs_config =
                         (try
                            Some
                              (String.trim
                                 (In_channel.with_open_text path
                                    In_channel.input_all))
                          with Sys_error _ -> None);
                     }
                   else if f = "schedmemo.bin" then
                     match
                       (read_with_own_header path : Hls.Schedule.memo option)
                     with
                     | Some m ->
                         { cs with cs_memo_shapes = Hls.Schedule.memo_size m }
                     | None -> { cs with cs_invalid = cs.cs_invalid + 1 }
                   else if
                     String.length f > 7
                     && String.sub f 0 7 = "points-"
                     && Filename.check_suffix f ".bin"
                   then
                     match (read_with_own_header path : points_payload option) with
                     | Some entries ->
                         {
                           cs with
                           cs_point_files = cs.cs_point_files + 1;
                           cs_points = cs.cs_points + Array.length entries;
                         }
                     | None -> { cs with cs_invalid = cs.cs_invalid + 1 }
                   else { cs with cs_invalid = cs.cs_invalid + 1 })
                 {
                   cs_key = key;
                   cs_config = None;
                   cs_point_files = 0;
                   cs_points = 0;
                   cs_memo_shapes = -1;
                   cs_bytes = 0;
                   cs_invalid = 0;
                 }
                 files
             in
             cs)
    in
    {
      ds_dir = cache_dir;
      ds_exists = true;
      ds_configs = configs;
      ds_bytes = List.fold_left (fun a c -> a + c.cs_bytes) 0 configs;
    }
  end

(** Remove the store under [cache_dir]. Conservative by construction:
    only files matching the store's own layout ([CONFIG],
    [schedmemo.bin], [points-*.bin], leftover [*.tmp.*]) are deleted,
    then the emptied directories; anything else in the tree is left in
    place and reported back, so pointing [clear] at the wrong directory
    cannot destroy foreign data. Returns [(removed_files, kept_files)]. *)
let clear ~cache_dir : int * int =
  let vdir = version_dir cache_dir in
  if not (Sys.file_exists vdir) then (0, 0)
  else begin
    let removed = ref 0 and kept = ref 0 in
    let ours f =
      f = "CONFIG" || f = "schedmemo.bin"
      || (String.length f > 7 && String.sub f 0 7 = "points-")
    in
    let is_tmp f =
      (* leftover atomic_write temp files: <name>.tmp.<pid> *)
      let rec has_tmp i =
        i + 4 <= String.length f
        && (String.sub f i 4 = ".tmp" || has_tmp (i + 1))
      in
      has_tmp 0
    in
    Array.iter
      (fun d ->
        let dir = Filename.concat vdir d in
        if Sys.is_directory dir then begin
          Array.iter
            (fun f ->
              let path = Filename.concat dir f in
              if (not (Sys.is_directory path)) && (ours f || is_tmp f) then begin
                (try Sys.remove path; incr removed with Sys_error _ -> incr kept)
              end
              else incr kept)
            (Sys.readdir dir);
          try Unix.rmdir dir with Unix.Unix_error _ -> ()
        end
        else incr kept)
      (Sys.readdir vdir);
    (try Unix.rmdir vdir with Unix.Unix_error _ -> ());
    (!removed, !kept)
  end
