(** The layered evaluation engine — the one way design points get
    evaluated anywhere in the system.

    {v
        Session   batched multi-kernel driver (run_many)
           |
        Backend   fidelity levels as values: full, lowlevel,
           |      quick_gate composition (two-tier engine)
         Store    point cache + tri-schedule memo + counters,
           |      fork/absorb for domains, save/load via Persist
          Hls     scheduling, estimation, P&R degradation
    v}

    [Dse] (the search and the sweep) sits on top and never calls the
    estimator directly: every evaluation goes [Backend.evaluate] →
    [Store] → synthesis on miss. *)

module Util = Util
module Store = Store
module Backend = Backend
module Persist = Persist
module Pool = Pool
include Session
