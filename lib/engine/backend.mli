(** Pluggable estimator backends — the fidelity levels at which a design
    point can be evaluated, as first-class values, with the two-tier
    gating expressed as backend composition ({!quick_gate}) instead of
    inline logic in the search and the sweep. *)

open Ir

type env = {
  source : Ast.kernel;  (** the input loop nest *)
  profile : Hls.Estimate.profile;
  capacity : int;  (** device slices *)
  spine : Ast.loop list;
  spine_divisors : (string * int list) list;
      (** ascending divisors of each spine loop's trip count *)
  pipeline : Transform.Pipeline.options;
      (** base options (the searched knobs are set per point) *)
  quick_facts : (string * int) option -> Hls.Quick.facts;
      (** tier-1 pre-estimator facts per tile candidate, memoized and
          mutex-protected (safe to share across sweep domains); the
          facts for [Some (loop, tile)] come from the strip-mined
          source, keeping the quick bounds admissible under tiling *)
  verify : bool;
      (** translation-validate every uncached evaluation *)
  incremental : bool;
      (** use the structure-sharing paths (DFG arena, region-level
          schedule snapshots, delta transform cache); results are
          field-for-field identical either way. [false] is the
          [--no-incremental] escape hatch *)
}

val make_env :
  ?pipeline:Transform.Pipeline.options ->
  ?profile:Hls.Estimate.profile ->
  ?verify:bool ->
  ?incremental:bool ->
  ?capacity:int ->
  Ast.kernel ->
  env

(** Cover every spine loop and clamp factors to divisors of the trip
    counts — the space the search explores. *)
val normalize_vector : env -> (string * int) list -> (string * int) list

(** The env's base configuration at the given unroll vector: tile and
    toggles taken from the base pipeline options. *)
val base_config : env -> (string * int) list -> Store.config

(** Canonical cache key for a configuration: the vector is
    {!normalize_vector}d, a spine tile is clamped to the divisor the
    strip-mine would use (and dropped when that makes it a no-op), and
    the unroll factor of a tiled loop is forced to 1 (the strip-mine
    renames the loop, so the unroller would ignore the entry). A tile
    index naming no spine loop is kept verbatim — synthesizing such a
    configuration fails loudly in the pipeline. *)
val normalize_config : env -> Store.config -> Store.config

type t = {
  name : string;
      (** stable identifier; part of the persistent store key, so two
          backends never share cached points *)
  bound : env -> Store.t -> Store.config -> Hls.Quick.t option;
      (** admissible lower bounds for a configuration, or [None] when
          this backend offers no tier-1 gate *)
  synthesize : env -> Store.t -> Store.config -> Store.point;
      (** full evaluation of one configuration, bypassing the point
          cache (neither read nor written); bumps the store's counters *)
}

(** The paper's [Generate; Synthesize]: transform pipeline, DFG, fused
    tri-mode schedule, data layout. No tier-1 bound. *)
val full : t

(** {!full} composed with the P&R degradation model: the stored
    estimate carries post-route area and achieved-clock time. Cycle
    counts and balance are unchanged (Section 6.4). *)
val lowlevel : t

(** [quick_gate b] is [b] with the analytical pre-estimator
    ({!Hls.Quick}) as its tier-1 bound — the two-tier engine as backend
    composition. The bounds are admissible, so gating on them never
    changes a selection, only the set of synthesized points. *)
val quick_gate : t -> t

(** [quick_gate full] — the default of the CLI, bench and tests. *)
val default : t

val to_string : t -> string

(** Parse a backend name: [full], [quick+full] (aliases [tiered],
    [default]), [lowlevel], [quick+lowlevel]. *)
val of_string : string -> (t, string) result

val known_names : string list

(** Cached [Generate; Synthesize] through the store: configurations are
    normalized before the cache lookup, so any two spellings of the
    same design share one synthesis run. *)
val evaluate_config : env -> t -> Store.t -> Store.config -> Store.point

(** {!evaluate_config} at the env's base configuration — the historical
    vector-only entry point. *)
val evaluate : env -> t -> Store.t -> (string * int) list -> Store.point
