(** Pluggable estimator backends — the fidelity levels at which a design
    point can be evaluated, as first-class values, with the two-tier
    gating expressed as backend composition ({!quick_gate}) instead of
    inline logic in the search and the sweep. *)

open Ir

type env = {
  source : Ast.kernel;  (** the input loop nest *)
  profile : Hls.Estimate.profile;
  capacity : int;  (** device slices *)
  spine : Ast.loop list;
  spine_divisors : (string * int list) list;
      (** ascending divisors of each spine loop's trip count *)
  pipeline : Transform.Pipeline.options;
      (** base options (the vector is set per point) *)
  quick_facts : Hls.Quick.facts option Lazy.t;
      (** tier-1 pre-estimator facts; [None] when the pipeline tiles *)
  verify : bool;
      (** translation-validate every uncached evaluation *)
  incremental : bool;
      (** use the structure-sharing paths (DFG arena, region-level
          schedule snapshots, delta transform cache); results are
          field-for-field identical either way. [false] is the
          [--no-incremental] escape hatch *)
}

val make_env :
  ?pipeline:Transform.Pipeline.options ->
  ?profile:Hls.Estimate.profile ->
  ?verify:bool ->
  ?incremental:bool ->
  ?capacity:int ->
  Ast.kernel ->
  env

(** Cover every spine loop and clamp factors to divisors of the trip
    counts — the space the search explores. *)
val normalize_vector : env -> (string * int) list -> (string * int) list

type t = {
  name : string;
      (** stable identifier; part of the persistent store key, so two
          backends never share cached points *)
  bound : env -> Store.t -> (string * int) list -> Hls.Quick.t option;
      (** admissible lower bounds for a point, or [None] when this
          backend offers no tier-1 gate *)
  synthesize : env -> Store.t -> (string * int) list -> Store.point;
      (** full evaluation of one point, bypassing the point cache
          (neither read nor written); bumps the store's counters *)
}

(** The paper's [Generate; Synthesize]: transform pipeline, DFG, fused
    tri-mode schedule, data layout. No tier-1 bound. *)
val full : t

(** {!full} composed with the P&R degradation model: the stored
    estimate carries post-route area and achieved-clock time. Cycle
    counts and balance are unchanged (Section 6.4). *)
val lowlevel : t

(** [quick_gate b] is [b] with the analytical pre-estimator
    ({!Hls.Quick}) as its tier-1 bound — the two-tier engine as backend
    composition. The bounds are admissible, so gating on them never
    changes a selection, only the set of synthesized points. *)
val quick_gate : t -> t

(** [quick_gate full] — the default of the CLI, bench and tests. *)
val default : t

val to_string : t -> string

(** Parse a backend name: [full], [quick+full] (aliases [tiered],
    [default]), [lowlevel], [quick+lowlevel]. *)
val of_string : string -> (t, string) result

val known_names : string list

(** Cached [Generate; Synthesize] through the store: vectors are
    normalized before the cache lookup, so any two spellings of the
    same design share one synthesis run. *)
val evaluate : env -> t -> Store.t -> (string * int) list -> Store.point
