(** Batched evaluation sessions: several kernels explored over one
    shared tri-schedule memo, one worker-domain pool and (optionally)
    one persistent cache directory. Generic in what exploring a kernel
    means — see [Dse.Driver] for the search-specialized driver. *)

type task = { name : string; kernel : Ir.Ast.kernel }

type 'r outcome = {
  task : task;
  result : 'r;
  store : Store.t;
  loaded_points : int;  (** points warm-loaded from the persistent store *)
  stats : Store.stats;  (** this kernel's counters (snapshot) *)
  wall_seconds : float;
}

type 'r summary = {
  outcomes : 'r outcome list;
  sched_memo : Hls.Schedule.memo;  (** shared across all kernels *)
  loaded_memo_shapes : int;
  total : Store.stats;  (** sum over all kernels *)
  config : string;  (** the persistence configuration string *)
  saved_to : string option;  (** cache directory written, if any *)
}

(** Explore each kernel in order over one shared schedule memo.

    With [cache_dir], each kernel's point cache and the shared memo are
    warm-loaded before exploring and saved (merged with the directory's
    prior contents) afterwards; [cold] skips the loads but still saves,
    refreshing the cache from scratch. With [pool], sweeps share the
    caller's worker domains; otherwise a pool of [jobs] workers
    (default {!Pool.default_size}) is created for the session and shut
    down at the end — [jobs:1] runs without worker domains entirely.

    Warm stores only short-circuit evaluations that would have produced
    bit-identical points, so results are the same cold and warm. *)
val run_many :
  ?cache_dir:string ->
  ?cold:bool ->
  ?pipeline:Transform.Pipeline.options ->
  ?profile:Hls.Estimate.profile ->
  ?verify:bool ->
  ?incremental:bool ->
  ?capacity:int ->
  ?backend:Backend.t ->
  ?pool:Pool.t ->
  ?jobs:int ->
  explore:(env:Backend.env -> store:Store.t -> pool:Pool.t option -> 'r) ->
  task list ->
  'r summary
