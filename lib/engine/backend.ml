(** Pluggable estimator backends: the fidelity levels at which a design
    point can be evaluated, as first-class values.

    - {!full} is the paper's [Generate; Synthesize] — transform pipeline,
      DFG construction, fused tri-mode scheduling, data layout.
    - {!lowlevel} is {!full} composed with the P&R degradation model
      ({!Hls.Lowlevel}): the stored estimate carries the post-route area
      and the achieved-clock execution time instead of the behavioral
      ones.
    - {!quick_gate} is the tiered composition: it puts the closed-form
      analytical pre-estimator ({!Hls.Quick}) in front of any backend as
      its {!type-t.bound} tier, which is what the two-tier sweep and the
      search's capacity gate consult before paying for a synthesis. The
      bounds are admissible for {!full} (and remain admissible for
      {!lowlevel}, whose area and time only grow), so gating never
      changes a selection — only the set of synthesized points.

    A backend evaluates against an immutable {!env} (the evaluation
    environment a [Dse.Design.context] is a view of) and a mutable
    {!Store.t} (caches and counters). The backend's [name] identifies the
    fidelity level in the persistent store key: points cached under one
    backend are never served to another. *)

open Ir

type env = {
  source : Ast.kernel;  (** the input loop nest *)
  profile : Hls.Estimate.profile;
  capacity : int;  (** device slices *)
  spine : Ast.loop list;
  spine_divisors : (string * int list) list;
      (** ascending divisors of each spine loop's trip count *)
  pipeline : Transform.Pipeline.options;
      (** base options (the vector is set per point) *)
  quick_facts : Hls.Quick.facts option Lazy.t;
      (** tier-1 pre-estimator facts; [None] when the pipeline tiles
          (strip-mining adds loops the source skeleton cannot see) *)
  verify : bool;
      (** translation-validate every uncached evaluation
          ({!Check.Validate}); selections are bit-identical, violations
          are counted in the store's stats *)
  incremental : bool;
      (** use the structure-sharing evaluation paths: the store's DFG
          arena, region-level schedule snapshots and the delta transform
          cache. Results are field-for-field identical either way; [false]
          is the [--no-incremental] escape hatch that rebuilds every
          point from scratch *)
}

let make_env ?(pipeline = Transform.Pipeline.default)
    ?(profile = Hls.Estimate.default_profile ()) ?(verify = false)
    ?(incremental = true) ?capacity (source : Ast.kernel) : env =
  let spine = Loop_nest.spine source.k_body in
  {
    source;
    profile;
    capacity =
      (match capacity with
      | Some c -> c
      | None -> profile.Hls.Estimate.device.Hls.Device.capacity_slices);
    spine;
    spine_divisors =
      List.map
        (fun (l : Ast.loop) -> (l.index, Util.divisors (Ast.loop_trip l)))
        spine;
    pipeline;
    quick_facts =
      lazy
        (if pipeline.Transform.Pipeline.tile <> None then None
         else
           Some
             (Hls.Quick.facts ~device:profile.Hls.Estimate.device
                ~mem:profile.Hls.Estimate.mem source));
    verify;
    incremental;
  }

(** Normalise a vector to cover every spine loop, with factors clamped to
    divisors of the trip counts (the space the search explores; a
    non-divisor factor would leave an epilogue that defeats scalar
    replacement). The largest divisor no greater than the requested
    factor comes from the env's precomputed divisor lists. *)
let normalize_vector (env : env) (v : (string * int) list) :
    (string * int) list =
  List.map2
    (fun (l : Ast.loop) (_, divs) ->
      let u = max 1 (Option.value ~default:1 (List.assoc_opt l.index v)) in
      let u = min u (Ast.loop_trip l) in
      (* divisor lists are ascending; keep the largest one <= u *)
      let d =
        List.fold_left (fun best d -> if d <= u then d else best) 1 divs
      in
      (l.index, d))
    env.spine env.spine_divisors

type t = {
  name : string;
      (** stable identifier; part of the persistent store key, so two
          backends never share cached points *)
  bound : env -> Store.t -> (string * int) list -> Hls.Quick.t option;
      (** admissible lower bounds for a point, or [None] when this
          backend offers no tier-1 gate (then callers must synthesize) *)
  synthesize : env -> Store.t -> (string * int) list -> Store.point;
      (** full evaluation of one point, bypassing the point cache
          (neither read nor written); bumps the store's counters *)
}

(* ------------------------------------------------------------------ *)
(* Full behavioral synthesis *)

let full_synthesize (env : env) (store : Store.t) (v : (string * int) list) :
    Store.point =
  let v = normalize_vector env v in
  let opts = { env.pipeline with Transform.Pipeline.vector = v } in
  let stats = store.Store.stats in
  let t0 = Util.now () in
  let r =
    if not env.verify then
      Transform.Pipeline.apply
        ?delta:(if env.incremental then Some store.Store.delta_cache else None)
        opts env.source
    else begin
      (* Verified evaluation: same pipeline, instrumented per stage by
         the translation validator, plus the flow-graph dataflow checks
         (uninit/deadstore) over the transformed kernel — the pipeline
         must never manufacture an uninitialized read or a dead store.
         The transformed result is bit-identical; error-severity
         findings only bump the violation counter (the sweep itself is
         the paper's experiment — reporting stays the job of the
         drivers). *)
      let outcome = Check.Validate.run ~options:opts env.source in
      stats.Store.checked_points <- stats.Store.checked_points + 1;
      stats.Store.verify_violations <-
        stats.Store.verify_violations
        + List.length (Check.Validate.violations outcome);
      (match outcome.Check.Validate.result with
      | Some r ->
          let cost = Analysis.Flowgraph.fresh_cost () in
          let graph =
            Analysis.Flowgraph.build ~cost r.Transform.Pipeline.kernel
          in
          let flow_diags =
            Check.Uninit.check ~graph ~cost r.Transform.Pipeline.kernel
            @ Check.Deadstore.check ~graph ~cost r.Transform.Pipeline.kernel
          in
          stats.Store.verify_violations <-
            stats.Store.verify_violations
            + List.length (Check.Diag.errors flow_diags);
          stats.Store.flow_builds <-
            stats.Store.flow_builds + cost.Analysis.Flowgraph.builds;
          stats.Store.flow_solves <-
            stats.Store.flow_solves + cost.Analysis.Flowgraph.solves;
          stats.Store.flow_seconds <-
            stats.Store.flow_seconds
            +. cost.Analysis.Flowgraph.build_seconds
            +. cost.Analysis.Flowgraph.solve_seconds
      | None -> ());
      match outcome.Check.Validate.result with
      | Some r -> r
      | None ->
          (* The pipeline raised mid-stage; surface it like the
             unverified path would. *)
          failwith
            (String.concat "; "
               (List.map Check.Diag.render
                  (Check.Validate.violations outcome)))
    end
  in
  if r.Transform.Pipeline.delta_reused then
    stats.Store.delta_reuses <- stats.Store.delta_reuses + 1;
  let t1 = Util.now () in
  let timers = Hls.Estimate.fresh_timers () in
  let estimate =
    Hls.Estimate.estimate ~sched_memo:store.Store.sched_memo ~timers
      ?arena:(if env.incremental then Some store.Store.arena else None)
      env.profile r.Transform.Pipeline.kernel
  in
  let t2 = Util.now () in
  stats.Store.evaluations <- stats.Store.evaluations + 1;
  stats.Store.transform_seconds <- stats.Store.transform_seconds +. (t1 -. t0);
  stats.Store.estimate_seconds <- stats.Store.estimate_seconds +. (t2 -. t1);
  stats.Store.dfg_seconds <-
    stats.Store.dfg_seconds +. timers.Hls.Estimate.dfg_seconds;
  stats.Store.schedule_seconds <-
    stats.Store.schedule_seconds +. timers.Hls.Estimate.schedule_seconds;
  stats.Store.layout_seconds <-
    stats.Store.layout_seconds +. timers.Hls.Estimate.layout_seconds;
  stats.Store.sched_memo_hits <-
    stats.Store.sched_memo_hits + timers.Hls.Estimate.sched_memo_hits;
  stats.Store.region_memo_hits <-
    stats.Store.region_memo_hits + timers.Hls.Estimate.region_memo_hits;
  {
    Store.vector = v;
    kernel = r.Transform.Pipeline.kernel;
    estimate;
    report = r.Transform.Pipeline.report;
  }

let no_bound _env _store _v = None

let full : t = { name = "full"; bound = no_bound; synthesize = full_synthesize }

(* ------------------------------------------------------------------ *)
(* P&R degradation *)

let lowlevel : t =
  {
    name = "lowlevel";
    bound = no_bound;
    synthesize =
      (fun env store v ->
        let p = full_synthesize env store v in
        let impl =
          Hls.Lowlevel.place_and_route
            ~device:env.profile.Hls.Estimate.device p.Store.estimate
        in
        (* Fold the degradation into the stored estimate: post-route
           area, achieved-clock wall time. Cycle counts never change
           (Section 6.4), and balance is a behavioral property. *)
        {
          p with
          Store.estimate =
            {
              p.Store.estimate with
              Hls.Estimate.slices = impl.Hls.Lowlevel.actual_slices;
              time_ns = impl.Hls.Lowlevel.time_ns;
            };
        });
  }

(* ------------------------------------------------------------------ *)
(* Tiered composition *)

let quick_bound (env : env) (store : Store.t) (v : (string * int) list) :
    Hls.Quick.t option =
  match Lazy.force env.quick_facts with
  | None -> None
  | Some facts ->
      store.Store.stats.Store.quick_estimates <-
        store.Store.stats.Store.quick_estimates + 1;
      Some (Hls.Quick.bound facts ~vector:(normalize_vector env v))

(** [quick_gate b] is [b] with the analytical pre-estimator as its
    tier-1 bound: the two-tier engine as backend composition. *)
let quick_gate (b : t) : t =
  { b with name = "quick+" ^ b.name; bound = quick_bound }

(** The default two-tier backend of the CLI, bench and tests. *)
let default : t = quick_gate full

let to_string (b : t) = b.name

let of_string (s : string) : (t, string) result =
  match String.lowercase_ascii (String.trim s) with
  | "full" -> Ok full
  | "quick+full" | "tiered" | "default" -> Ok default
  | "lowlevel" -> Ok lowlevel
  | "quick+lowlevel" -> Ok (quick_gate lowlevel)
  | other ->
      Error
        (Printf.sprintf
           "unknown backend %S (have: full, quick+full, lowlevel, \
            quick+lowlevel)"
           other)

let known_names = [ "full"; "quick+full"; "lowlevel"; "quick+lowlevel" ]

(* ------------------------------------------------------------------ *)
(* Cached evaluation *)

(** Cached [Generate; Synthesize] through [store]: vectors are
    normalized before the cache lookup, so any two spellings of the same
    design share one synthesis run. *)
let evaluate (env : env) (b : t) (store : Store.t) (v : (string * int) list) :
    Store.point =
  let key = normalize_vector env v in
  match Store.find store key with
  | Some p ->
      store.Store.stats.Store.cache_hits <-
        store.Store.stats.Store.cache_hits + 1;
      p
  | None ->
      let p = b.synthesize env store key in
      Store.add store key p;
      p
