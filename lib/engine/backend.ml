(** Pluggable estimator backends: the fidelity levels at which a design
    point can be evaluated, as first-class values.

    - {!full} is the paper's [Generate; Synthesize] — transform pipeline,
      DFG construction, fused tri-mode scheduling, data layout.
    - {!lowlevel} is {!full} composed with the P&R degradation model
      ({!Hls.Lowlevel}): the stored estimate carries the post-route area
      and the achieved-clock execution time instead of the behavioral
      ones.
    - {!quick_gate} is the tiered composition: it puts the closed-form
      analytical pre-estimator ({!Hls.Quick}) in front of any backend as
      its {!type-t.bound} tier, which is what the two-tier sweep and the
      search's capacity gate consult before paying for a synthesis. The
      bounds are admissible for {!full} (and remain admissible for
      {!lowlevel}, whose area and time only grow), so gating never
      changes a selection — only the set of synthesized points.

    A backend evaluates against an immutable {!env} (the evaluation
    environment a [Dse.Design.context] is a view of) and a mutable
    {!Store.t} (caches and counters). The backend's [name] identifies the
    fidelity level in the persistent store key: points cached under one
    backend are never served to another. *)

open Ir

type env = {
  source : Ast.kernel;  (** the input loop nest *)
  profile : Hls.Estimate.profile;
  capacity : int;  (** device slices *)
  spine : Ast.loop list;
  spine_divisors : (string * int list) list;
      (** ascending divisors of each spine loop's trip count *)
  pipeline : Transform.Pipeline.options;
      (** base options (the searched knobs are set per point) *)
  quick_facts : (string * int) option -> Hls.Quick.facts;
      (** tier-1 pre-estimator facts per tile candidate, memoized and
          mutex-protected (safe to share across sweep domains). The
          facts for [Some (loop, tile)] are computed from the
          strip-mined source, so the quick bounds stay admissible over
          tiling design points *)
  verify : bool;
      (** translation-validate every uncached evaluation
          ({!Check.Validate}); selections are bit-identical, violations
          are counted in the store's stats *)
  incremental : bool;
      (** use the structure-sharing evaluation paths: the store's DFG
          arena, region-level schedule snapshots and the delta transform
          cache. Results are field-for-field identical either way; [false]
          is the [--no-incremental] escape hatch that rebuilds every
          point from scratch *)
}

let make_env ?(pipeline = Transform.Pipeline.default)
    ?(profile = Hls.Estimate.default_profile ()) ?(verify = false)
    ?(incremental = true) ?capacity (source : Ast.kernel) : env =
  let spine = Loop_nest.spine source.k_body in
  let quick_facts =
    (* One facts value per tile candidate, computed from the (possibly
       strip-mined) source. The memo and its mutex live in this closure
       and are shared by every fork of the owning context — OCaml 5
       mutexes are domain-safe, and the critical section is one table
       probe or one facts computation. *)
    let memo : ((string * int) option, Hls.Quick.facts) Hashtbl.t =
      Hashtbl.create 4
    in
    let lock = Mutex.create () in
    fun (tile : (string * int) option) ->
      Mutex.lock lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock lock)
        (fun () ->
          match Hashtbl.find_opt memo tile with
          | Some f -> f
          | None ->
              let k =
                match tile with
                | None -> source
                | Some (index, t) -> (
                    try Transform.Tiling.tile_for_registers ~index ~tile:t source
                    with _ -> source)
              in
              let f =
                Hls.Quick.facts ~device:profile.Hls.Estimate.device
                  ~mem:profile.Hls.Estimate.mem k
              in
              Hashtbl.replace memo tile f;
              f)
  in
  {
    source;
    profile;
    capacity =
      (match capacity with
      | Some c -> c
      | None -> profile.Hls.Estimate.device.Hls.Device.capacity_slices);
    spine;
    spine_divisors =
      List.map
        (fun (l : Ast.loop) -> (l.index, Util.divisors (Ast.loop_trip l)))
        spine;
    pipeline;
    quick_facts;
    verify;
    incremental;
  }

(** Normalise a vector to cover every spine loop, with factors clamped to
    divisors of the trip counts (the space the search explores; a
    non-divisor factor would leave an epilogue that defeats scalar
    replacement). The largest divisor no greater than the requested
    factor comes from the env's precomputed divisor lists. *)
let normalize_vector (env : env) (v : (string * int) list) :
    (string * int) list =
  List.map2
    (fun (l : Ast.loop) (_, divs) ->
      let u = max 1 (Option.value ~default:1 (List.assoc_opt l.index v)) in
      let u = min u (Ast.loop_trip l) in
      (* divisor lists are ascending; keep the largest one <= u *)
      let d =
        List.fold_left (fun best d -> if d <= u then d else best) 1 divs
      in
      (l.index, d))
    env.spine env.spine_divisors

(* ------------------------------------------------------------------ *)
(* Configurations *)

(** The env's base configuration at unroll vector [v]: tile and toggles
    from the base pipeline options — the design point the pre-refactor
    engine would have evaluated for [v]. *)
let base_config (env : env) (v : (string * int) list) : Store.config =
  { (Transform.Pipeline.config_of_options env.pipeline) with Store.vector = v }

(** Normalise a configuration to its canonical cache key: the vector is
    spine-normalized ({!normalize_vector}); a tile on a spine loop is
    clamped exactly as the strip-mine clamps it (largest divisor of the
    trip no greater than the request) and dropped when the clamp makes
    it a no-op (tile of 1, or the whole trip); the unroll factor of a
    tiled loop is forced to 1 (strip-mining renames the loop, so the
    unroller would ignore the entry — two spellings of the same
    design). A tile index naming no spine loop is kept verbatim:
    synthesis of such a configuration fails loudly in the pipeline. *)
let normalize_config (env : env) (c : Store.config) : Store.config =
  let tile =
    match c.Store.tile with
    | None -> None
    | Some (index, t) -> (
        match
          List.find_opt (fun (l : Ast.loop) -> l.index = index) env.spine
        with
        | None -> Some (index, t)
        | Some l ->
            let trip = Ast.loop_trip l in
            let t = max 1 (min t trip) in
            let divs =
              Option.value ~default:[ 1 ]
                (List.assoc_opt index env.spine_divisors)
            in
            let d =
              List.fold_left (fun best d -> if d <= t then d else best) 1 divs
            in
            if d <= 1 || d >= trip then None else Some (index, d))
  in
  let vector = normalize_vector env c.Store.vector in
  let vector =
    match tile with
    | Some (ti, _) ->
        List.map (fun (i, u) -> if i = ti then (i, 1) else (i, u)) vector
    | None -> vector
  in
  { c with Store.vector; tile }

type t = {
  name : string;
      (** stable identifier; part of the persistent store key, so two
          backends never share cached points *)
  bound : env -> Store.t -> Store.config -> Hls.Quick.t option;
      (** admissible lower bounds for a configuration, or [None] when
          this backend offers no tier-1 gate (then callers must
          synthesize) *)
  synthesize : env -> Store.t -> Store.config -> Store.point;
      (** full evaluation of one configuration, bypassing the point
          cache (neither read nor written); bumps the store's counters *)
}

(* ------------------------------------------------------------------ *)
(* Full behavioral synthesis *)

let full_synthesize (env : env) (store : Store.t) (c : Store.config) :
    Store.point =
  let c = normalize_config env c in
  let opts = Transform.Pipeline.apply_config ~base:env.pipeline c in
  let stats = store.Store.stats in
  let t0 = Util.now () in
  let r =
    if not env.verify then
      Transform.Pipeline.apply
        ?delta:(if env.incremental then Some store.Store.delta_cache else None)
        opts env.source
    else begin
      (* Verified evaluation: same pipeline, instrumented per stage by
         the translation validator, plus the flow-graph dataflow checks
         (uninit/deadstore) over the transformed kernel — the pipeline
         must never manufacture an uninitialized read or a dead store.
         The transformed result is bit-identical; error-severity
         findings only bump the violation counter (the sweep itself is
         the paper's experiment — reporting stays the job of the
         drivers). *)
      let outcome = Check.Validate.run ~options:opts env.source in
      stats.Store.checked_points <- stats.Store.checked_points + 1;
      stats.Store.verify_violations <-
        stats.Store.verify_violations
        + List.length (Check.Validate.violations outcome);
      (match outcome.Check.Validate.result with
      | Some r ->
          let cost = Analysis.Flowgraph.fresh_cost () in
          let graph =
            Analysis.Flowgraph.build ~cost r.Transform.Pipeline.kernel
          in
          let flow_diags =
            Check.Uninit.check ~graph ~cost r.Transform.Pipeline.kernel
            @ Check.Deadstore.check ~graph ~cost r.Transform.Pipeline.kernel
          in
          stats.Store.verify_violations <-
            stats.Store.verify_violations
            + List.length (Check.Diag.errors flow_diags);
          stats.Store.flow_builds <-
            stats.Store.flow_builds + cost.Analysis.Flowgraph.builds;
          stats.Store.flow_solves <-
            stats.Store.flow_solves + cost.Analysis.Flowgraph.solves;
          stats.Store.flow_seconds <-
            stats.Store.flow_seconds
            +. cost.Analysis.Flowgraph.build_seconds
            +. cost.Analysis.Flowgraph.solve_seconds
      | None -> ());
      match outcome.Check.Validate.result with
      | Some r -> r
      | None ->
          (* The pipeline raised mid-stage; surface it like the
             unverified path would. *)
          failwith
            (String.concat "; "
               (List.map Check.Diag.render
                  (Check.Validate.violations outcome)))
    end
  in
  if r.Transform.Pipeline.delta_reused then
    stats.Store.delta_reuses <- stats.Store.delta_reuses + 1;
  let t1 = Util.now () in
  let timers = Hls.Estimate.fresh_timers () in
  let estimate =
    Hls.Estimate.estimate ~sched_memo:store.Store.sched_memo ~timers
      ?arena:(if env.incremental then Some store.Store.arena else None)
      env.profile r.Transform.Pipeline.kernel
  in
  let t2 = Util.now () in
  stats.Store.evaluations <- stats.Store.evaluations + 1;
  stats.Store.transform_seconds <- stats.Store.transform_seconds +. (t1 -. t0);
  stats.Store.estimate_seconds <- stats.Store.estimate_seconds +. (t2 -. t1);
  stats.Store.dfg_seconds <-
    stats.Store.dfg_seconds +. timers.Hls.Estimate.dfg_seconds;
  stats.Store.schedule_seconds <-
    stats.Store.schedule_seconds +. timers.Hls.Estimate.schedule_seconds;
  stats.Store.layout_seconds <-
    stats.Store.layout_seconds +. timers.Hls.Estimate.layout_seconds;
  stats.Store.sched_memo_hits <-
    stats.Store.sched_memo_hits + timers.Hls.Estimate.sched_memo_hits;
  stats.Store.region_memo_hits <-
    stats.Store.region_memo_hits + timers.Hls.Estimate.region_memo_hits;
  {
    Store.config = c;
    vector = c.Store.vector;
    kernel = r.Transform.Pipeline.kernel;
    estimate;
    report = r.Transform.Pipeline.report;
  }

let no_bound _env _store _c = None

let full : t = { name = "full"; bound = no_bound; synthesize = full_synthesize }

(* ------------------------------------------------------------------ *)
(* P&R degradation *)

let lowlevel : t =
  {
    name = "lowlevel";
    bound = no_bound;
    synthesize =
      (fun env store c ->
        let p = full_synthesize env store c in
        let impl =
          Hls.Lowlevel.place_and_route
            ~device:env.profile.Hls.Estimate.device p.Store.estimate
        in
        (* Fold the degradation into the stored estimate: post-route
           area, achieved-clock wall time. Cycle counts never change
           (Section 6.4), and balance is a behavioral property. *)
        {
          p with
          Store.estimate =
            {
              p.Store.estimate with
              Hls.Estimate.slices = impl.Hls.Lowlevel.actual_slices;
              time_ns = impl.Hls.Lowlevel.time_ns;
            };
        });
  }

(* ------------------------------------------------------------------ *)
(* Tiered composition *)

let quick_bound (env : env) (store : Store.t) (c : Store.config) :
    Hls.Quick.t option =
  let c = normalize_config env c in
  let facts = env.quick_facts c.Store.tile in
  store.Store.stats.Store.quick_estimates <-
    store.Store.stats.Store.quick_estimates + 1;
  Some (Hls.Quick.bound facts ~vector:c.Store.vector)

(** [quick_gate b] is [b] with the analytical pre-estimator as its
    tier-1 bound: the two-tier engine as backend composition. *)
let quick_gate (b : t) : t =
  { b with name = "quick+" ^ b.name; bound = quick_bound }

(** The default two-tier backend of the CLI, bench and tests. *)
let default : t = quick_gate full

let to_string (b : t) = b.name

let of_string (s : string) : (t, string) result =
  match String.lowercase_ascii (String.trim s) with
  | "full" -> Ok full
  | "quick+full" | "tiered" | "default" -> Ok default
  | "lowlevel" -> Ok lowlevel
  | "quick+lowlevel" -> Ok (quick_gate lowlevel)
  | other ->
      Error
        (Printf.sprintf
           "unknown backend %S (have: full, quick+full, lowlevel, \
            quick+lowlevel)"
           other)

let known_names = [ "full"; "quick+full"; "lowlevel"; "quick+lowlevel" ]

(* ------------------------------------------------------------------ *)
(* Cached evaluation *)

(** Cached [Generate; Synthesize] through [store]: configurations are
    normalized before the cache lookup, so any two spellings of the same
    design share one synthesis run. *)
let evaluate_config (env : env) (b : t) (store : Store.t) (c : Store.config) :
    Store.point =
  let key = normalize_config env c in
  match Store.find store key with
  | Some p ->
      store.Store.stats.Store.cache_hits <-
        store.Store.stats.Store.cache_hits + 1;
      p
  | None ->
      let p = b.synthesize env store key in
      Store.add store key p;
      p

(** {!evaluate_config} at the env's base configuration — the historical
    vector-only entry point. *)
let evaluate (env : env) (b : t) (store : Store.t) (v : (string * int) list) :
    Store.point =
  evaluate_config env b store (base_config env v)
