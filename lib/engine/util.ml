(** Small helpers the evaluation engine shares with the design-space
    modules above it ([Dse.Util] re-exports these, so the divisor
    enumeration and the wall clock still exist in exactly one place). *)

(** Positive divisors of [n] in ascending order ([divisors 12] is
    [1; 2; 3; 4; 6; 12]). [n <= 0] has no positive divisors. *)
let divisors n =
  if n <= 0 then []
  else List.filter (fun d -> n mod d = 0) (List.init n (fun i -> i + 1))

(** Wall-clock timestamp in seconds, for the evaluation statistics. *)
let now () = Unix.gettimeofday ()
