(** Affine forms [c1*i1 + ... + cn*in + b] over loop index variables.

    The paper's input domain restricts array subscripts to affine
    expressions of the loop indices (Section 2.4); every analysis —
    dependence testing, uniformly generated sets, reuse, data layout —
    works on this normal form rather than on raw syntax. *)

type t = {
  terms : (string * int) list;
      (** coefficient per variable, sorted by name, coefficients nonzero *)
  const : int;
}
[@@deriving show { with_path = false }, eq, ord]

let normalize terms =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) terms in
  (* merge duplicate variables, then drop zero coefficients *)
  let rec merge_dups = function
    | (v1, c1) :: (v2, c2) :: rest when v1 = v2 -> merge_dups ((v1, c1 + c2) :: rest)
    | t :: rest -> t :: merge_dups rest
    | [] -> []
  in
  List.filter (fun (_, c) -> c <> 0) (merge_dups sorted)

let make terms const = { terms = normalize terms; const }
let const c = { terms = []; const = c }
let zero = const 0
let var ?(coeff = 1) v = make [ (v, coeff) ] 0
let is_const t = t.terms = []
let const_part t = t.const
let coeff t v = try List.assoc v t.terms with Not_found -> 0
let vars t = List.map fst t.terms

let rec merge f a b =
  match (a, b) with
  | [], rest | rest, [] -> List.map (fun (v, c) -> (v, f c 0)) rest
  | (va, ca) :: ta, (vb, cb) :: tb ->
      let cmp = String.compare va vb in
      if cmp = 0 then (va, f ca cb) :: merge f ta tb
      else if cmp < 0 then (va, f ca 0) :: merge f ta ((vb, cb) :: tb)
      else (vb, f 0 cb) :: merge f ((va, ca) :: ta) tb

let add a b =
  { terms = normalize (merge ( + ) a.terms b.terms); const = a.const + b.const }

let neg a =
  { terms = List.map (fun (v, c) -> (v, -c)) a.terms; const = -a.const }

let sub a b = add a (neg b)

let scale k a =
  if k = 0 then zero
  else { terms = List.map (fun (v, c) -> (v, k * c)) a.terms; const = k * a.const }

(** Multiplication of affine forms is affine only when one side is
    constant. *)
let mul a b =
  if is_const a then Some (scale a.const b)
  else if is_const b then Some (scale b.const a)
  else None

(** Linearize an AST expression into an affine form over the variables it
    mentions. Returns [None] for non-affine expressions (products of
    variables, divisions by non-constants, modulus, array reads,
    conditionals...). Division by a constant is accepted only when it
    divides the form exactly (all coefficients and the constant), which
    keeps the result exact. *)
let rec of_expr (e : Ast.expr) : t option =
  let open Ast in
  match e with
  | Int n -> Some (const n)
  | Var v -> Some (var v)
  | Un (Neg, a) -> Option.map neg (of_expr a)
  | Bin (Add, a, b) -> map2 add a b
  | Bin (Sub, a, b) -> map2 sub a b
  | Bin (Mul, a, b) -> (
      match (of_expr a, of_expr b) with
      | Some fa, Some fb -> mul fa fb
      | _ -> None)
  | Bin (Div, a, b) -> (
      match (of_expr a, of_expr b) with
      | Some fa, Some fb when is_const fb && fb.const <> 0 ->
          let d = fb.const in
          let divides =
            fa.const mod d = 0 && List.for_all (fun (_, c) -> c mod d = 0) fa.terms
          in
          if divides then
            Some
              {
                terms = List.map (fun (v, c) -> (v, c / d)) fa.terms;
                const = fa.const / d;
              }
          else None
      | _ -> None)
  | _ -> None

and map2 f a b =
  match (of_expr a, of_expr b) with
  | Some fa, Some fb -> Some (f fa fb)
  | _ -> None

(** Reconstruct a compact AST expression, e.g. [2*i + j - 3]. *)
let to_expr t : Ast.expr =
  let open Ast in
  let term (v, c) =
    if c = 1 then Var v
    else if c = -1 then Un (Neg, Var v)
    else Bin (Mul, Int c, Var v)
  in
  let combine acc (v, c) =
    match acc with
    | None -> Some (term (v, c))
    | Some e ->
        if c >= 0 then Some (Bin (Add, e, if c = 1 then Var v else Bin (Mul, Int c, Var v)))
        else Some (Bin (Sub, e, if c = -1 then Var v else Bin (Mul, Int (-c), Var v)))
  in
  match List.fold_left combine None t.terms with
  | None -> Int t.const
  | Some e ->
      if t.const = 0 then e
      else if t.const > 0 then Bin (Add, e, Int t.const)
      else Bin (Sub, e, Int (-t.const))

let eval ~env t =
  List.fold_left (fun acc (v, c) -> acc + (c * env v)) t.const t.terms

(** Substitute affine form [by] for variable [v]. *)
let subst t v by =
  let c = coeff t v in
  if c = 0 then t
  else
    let without =
      { t with terms = List.filter (fun (x, _) -> x <> v) t.terms }
    in
    add without (scale c by)

(** Two forms are uniformly generated (Section 4 of the paper) when their
    variable coefficients agree; they then differ only by a constant. *)
let uniformly_generated a b = equal { a with const = 0 } { b with const = 0 }

(** Constant difference [b - a] of two uniformly generated forms. *)
let ug_distance a b =
  if uniformly_generated a b then Some (b.const - a.const) else None

let to_string t = Pretty.expr_to_string (to_expr t)
