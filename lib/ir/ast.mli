(** Abstract syntax for the affine loop-nest language.

    This is the IR every compiler pass operates on. It models the paper's
    input domain (Section 2.4): loop nests over scalar and array
    variables, no pointers, affine subscript expressions with a fixed
    stride, constant loop bounds, and structured control flow whose
    memory accesses the hardware performs conditionally.

    Two constructs exist only in *transformed* code, never in source
    programs: [Rotate], the register-bank rotation emitted by scalar
    replacement for reuse carried by an outer loop, and [Register]
    scalars introduced by the compiler. *)

(** Source location carried from the frontend onto declarations and
    loops. Spans are metadata only: they never participate in derived
    equality or comparison, so a parsed kernel and a programmatically
    built kernel with the same structure compare equal. *)
type span = { sp_line : int; sp_col : int }

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Min
  | Max

type unop = Neg | Not | Bnot | Abs

type expr =
  | Int of int
  | Var of string
  | Arr of string * expr list  (** array read; one subscript per dimension *)
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Cond of expr * expr * expr  (** C ternary [c ? t : e] *)

type lvalue = Lvar of string | Larr of string * expr list

type stmt =
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | For of loop
  | Rotate of string list
      (** [Rotate [r0; ...; rn]] left-rotates a register bank: afterwards
          [r0] holds the old [r1], ..., [rn] holds the old [r0]. All
          transfers happen in parallel in hardware. *)

and loop = {
  index : string;
  lo : int;  (** inclusive lower bound *)
  hi : int;  (** exclusive upper bound; the loop runs while [index < hi] *)
  step : int;  (** positive stride *)
  body : stmt list;
  l_span : span option;
      (** where the [for] keyword appeared, when parsed from source *)
}

type array_decl = {
  a_name : string;
  a_elem : Dtype.t;
  a_dims : int list;  (** extent per dimension, outermost first *)
  a_span : span option;
}

(** How a scalar came to exist; the estimator charges register area for
    compiler-introduced registers, and code generation initialises
    [Param] scalars from the host. *)
type scalar_kind = Param | Register | Temp

type scalar_decl = {
  s_name : string;
  s_elem : Dtype.t;
  s_kind : scalar_kind;
  s_span : span option;
}

type kernel = {
  k_name : string;
  k_arrays : array_decl list;
  k_scalars : scalar_decl list;
  k_body : stmt list;
}

(** Printers and equalities (ppx_deriving). *)

val pp_span : Format.formatter -> span -> unit
val show_span : span -> string
val equal_span : span -> span -> bool
val pp_binop : Format.formatter -> binop -> unit
val equal_binop : binop -> binop -> bool
val pp_unop : Format.formatter -> unop -> unit
val pp_expr : Format.formatter -> expr -> unit
val show_expr : expr -> string
val equal_expr : expr -> expr -> bool
val pp_stmt : Format.formatter -> stmt -> unit
val show_stmt : stmt -> string
val equal_stmt : stmt -> stmt -> bool
val pp_loop : Format.formatter -> loop -> unit
val pp_kernel : Format.formatter -> kernel -> unit
val show_kernel : kernel -> string
val equal_kernel : kernel -> kernel -> bool

(** Trip count of a loop: how many times its body executes. Raises
    [Invalid_argument] on a non-positive step. *)
val loop_trip : loop -> int

val array_decl : ?elem:Dtype.t -> ?span:span -> string -> int list -> array_decl

val scalar_decl :
  ?elem:Dtype.t -> ?kind:scalar_kind -> ?span:span -> string -> scalar_decl
val find_array : kernel -> string -> array_decl option
val find_scalar : kernel -> string -> scalar_decl option

(** Total element count. *)
val array_size : array_decl -> int

(** Element type of an expression under the kernel's declarations:
    operand join for intermediate expressions. *)
val expr_type : kernel -> expr -> Dtype.t

(** Type wide enough to hold the *full* result of the expression without
    overflow — the width synthesis would give the wire. A register
    declared at this width behaves exactly like the unmaterialised
    expression, which is what lets LICM introduce temporaries without
    changing wrap-around behaviour. *)
val result_type : kernel -> expr -> Dtype.t

(** Traversals. *)

val fold_expr : ('a -> expr -> 'a) -> 'a -> expr -> 'a

val fold_stmt :
  stmt:('a -> stmt -> 'a) -> expr:('a -> expr -> 'a) -> 'a -> stmt -> 'a

val fold_stmts :
  stmt:('a -> stmt -> 'a) -> expr:('a -> expr -> 'a) -> 'a -> stmt list -> 'a

(** [List.map] that returns the input list physically unchanged when the
    function maps every element to itself (physically); the building
    block of the sharing-preserving rewrites below. *)
val map_sharing : ('a -> 'a) -> 'a list -> 'a list

(** Bottom-up expression rewriting; returns physically equal subtrees
    where the function changes nothing. *)
val map_expr : (expr -> expr) -> expr -> expr

(** Rewrite every expression (including lvalue subscripts) in a statement. *)
val map_stmt_exprs : (expr -> expr) -> stmt -> stmt

val map_body_exprs : (expr -> expr) -> stmt list -> stmt list

(** Substitute an expression for every occurrence of a variable. *)
val subst_var : string -> expr -> stmt list -> stmt list

(** All loop index names bound anywhere within the body. *)
val bound_indices : stmt list -> string list

(** Scalars read or written (excluding loop indices). *)
val scalars_used : stmt list -> string list

(** Arrays referenced (read or written). *)
val arrays_used : stmt list -> string list
