(** Element data types for scalars and array elements.

    The paper targets multimedia kernels operating on 8-bit (image) and
    16-bit (signal) data, with 32-bit accumulators; bit-width drives both
    the operator area model and the data fetch/consumption rates of the
    balance metric. *)

type t = {
  bits : int;  (** width in bits; must be positive *)
  signed : bool;
}
[@@deriving show { with_path = false }, eq, ord]

let make ~bits ~signed =
  if bits <= 0 || bits > 64 then
    invalid_arg (Printf.sprintf "Dtype.make: unsupported width %d" bits);
  { bits; signed }

let int8 = make ~bits:8 ~signed:true
let int16 = make ~bits:16 ~signed:true
let int32 = make ~bits:32 ~signed:true
let uint8 = make ~bits:8 ~signed:false
let uint16 = make ~bits:16 ~signed:false
let uint32 = make ~bits:32 ~signed:false
let bits t = t.bits
let is_signed t = t.signed

(** Smallest type able to hold the result of combining two operands, used
    when inferring widths of intermediate datapath values. *)
let join a b = { bits = max a.bits b.bits; signed = a.signed || b.signed }

(** Width at and beyond which a type is treated as unbounded: such widths
    only arise for compiler-created intermediates sized to hold their
    expression's full result (hardware wires), never for stored data in
    the paper's 8/16/32-bit domain. *)
let unbounded_bits = 48

(** Inclusive range of representable values, as [(lo, hi)]. Wide
    intermediate types are clamped to a safe native-int range. *)
let range t =
  if t.bits >= unbounded_bits then (min_int / 4, max_int / 4)
  else if t.signed then
    let h = (1 lsl (t.bits - 1)) - 1 in
    (-h - 1, h)
  else (0, (1 lsl t.bits) - 1)

(** Wrap an unbounded integer into the representable range of [t], with
    two's-complement semantics. Used by the reference interpreter so that
    transformed and original programs agree even at overflow. Wide
    intermediate types do not wrap. *)
let wrap t v =
  if t.bits >= unbounded_bits then v
  else begin
    let m = 1 lsl t.bits in
    let v = ((v mod m) + m) mod m in
    if t.signed && v >= m / 2 then v - m else v
  end

let to_string t = Printf.sprintf "%s%d" (if t.signed then "int" else "uint") t.bits
