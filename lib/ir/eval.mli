(** Reference interpreter for the IR.

    The interpreter defines the semantics every transformation must
    preserve; the property tests run random kernels on random inputs
    before and after each pass and require identical final stores.

    Arrays are flattened row-major. Every store wraps the value into the
    declared element type (two's complement), so programs agree even when
    intermediate results overflow. *)

exception Out_of_bounds of string
exception Unbound of string
exception Division_by_zero of string

type state = {
  kernel : Ast.kernel;
  arrays : (string, int array) Hashtbl.t;
  scalars : (string, int) Hashtbl.t;
}

(** Initialise a state: arrays zero-filled then overwritten by [inputs]
    (wrapped to their element types), [Param]-style scalars set from
    [params]. Raises [Unbound] for unknown names and [Invalid_argument]
    for size mismatches. *)
val init :
  ?inputs:(string * int array) list ->
  ?params:(string * int) list ->
  Ast.kernel ->
  state

val eval_expr : state -> Ast.expr -> int
val exec_stmt : state -> Ast.stmt -> unit
val exec_body : state -> Ast.stmt list -> unit

(** Run a kernel to completion and return the final state. *)
val run :
  ?inputs:(string * int array) list ->
  ?params:(string * int) list ->
  Ast.kernel ->
  state

val array_value : state -> string -> int array option
val scalar_value : state -> string -> int option

(** Final contents of every declared array, in declaration order — the
    canonical observable for equivalence testing. *)
val observables : state -> (string * int array) list
