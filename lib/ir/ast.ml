(** Abstract syntax for the affine loop-nest language.

    This is the IR that every compiler pass operates on. It models the
    paper's input domain (Section 2.4): loop nests over scalar and array
    variables, no pointers, affine subscript expressions with a fixed
    stride, constant loop bounds, and structured control flow whose memory
    accesses the hardware performs conditionally.

    Two constructs exist only in *transformed* code, never in source
    programs: [Rotate], the register-bank rotation emitted by scalar
    replacement for reuse carried by an outer loop, and register scalars
    introduced by the compiler (tracked in {!kernel.k_scalars}). *)

(** Source location carried from the frontend onto declarations and
    loops. Spans are metadata only: they never participate in derived
    equality or comparison, so a parsed kernel and a programmatically
    built kernel with the same structure compare equal. *)
type span = { sp_line : int; sp_col : int }
[@@deriving show { with_path = false }, eq, ord]

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Min
  | Max
[@@deriving show { with_path = false }, eq, ord]

type unop = Neg | Not | Bnot | Abs [@@deriving show { with_path = false }, eq, ord]

type expr =
  | Int of int
  | Var of string
  | Arr of string * expr list  (** array read; one subscript per dimension *)
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Cond of expr * expr * expr  (** C ternary [c ? t : e] *)
[@@deriving show { with_path = false }, eq, ord]

type lvalue =
  | Lvar of string
  | Larr of string * expr list
[@@deriving show { with_path = false }, eq, ord]

type stmt =
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | For of loop
  | Rotate of string list
      (** [Rotate [r0; ...; rn]] left-rotates a register bank: afterwards
          [r0] holds the old [r1], ..., [rn] holds the old [r0]. All
          transfers happen in parallel in hardware. *)

and loop = {
  index : string;
  lo : int;  (** inclusive lower bound *)
  hi : int;  (** exclusive upper bound; the loop runs while [index < hi] *)
  step : int;  (** positive stride *)
  body : stmt list;
  l_span : (span option[@equal fun _ _ -> true] [@compare fun _ _ -> 0]);
      (** where the [for] keyword appeared, when parsed from source *)
}
[@@deriving show { with_path = false }, eq, ord]

type array_decl = {
  a_name : string;
  a_elem : Dtype.t;
  a_dims : int list;  (** extent per dimension, outermost first *)
  a_span : (span option[@equal fun _ _ -> true] [@compare fun _ _ -> 0]);
}
[@@deriving show { with_path = false }, eq, ord]

(** How a scalar came to exist; the estimator charges register area for
    compiler-introduced registers but not for loop indices (which live in
    the controller), and code generation initialises [`Param] scalars from
    the host. *)
type scalar_kind = Param | Register | Temp
[@@deriving show { with_path = false }, eq, ord]

type scalar_decl = {
  s_name : string;
  s_elem : Dtype.t;
  s_kind : scalar_kind;
  s_span : (span option[@equal fun _ _ -> true] [@compare fun _ _ -> 0]);
}
[@@deriving show { with_path = false }, eq, ord]

type kernel = {
  k_name : string;
  k_arrays : array_decl list;
  k_scalars : scalar_decl list;
  k_body : stmt list;
}
[@@deriving show { with_path = false }, eq, ord]

let loop_trip { lo; hi; step; _ } =
  if step <= 0 then invalid_arg "Ast.loop_trip: nonpositive step";
  if hi <= lo then 0 else ((hi - lo) + step - 1) / step

let array_decl ?(elem = Dtype.int32) ?span name dims =
  { a_name = name; a_elem = elem; a_dims = dims; a_span = span }

let scalar_decl ?(elem = Dtype.int32) ?(kind = Temp) ?span name =
  { s_name = name; s_elem = elem; s_kind = kind; s_span = span }

let find_array k name = List.find_opt (fun a -> a.a_name = name) k.k_arrays

let find_scalar k name = List.find_opt (fun s -> s.s_name = name) k.k_scalars

let array_size a = List.fold_left ( * ) 1 a.a_dims

(** Element type of an expression under the kernel's declarations.
    Intermediate expressions take the join of their operand types;
    comparisons and logical operators produce a 1-bit value that we widen
    back on use, so for area purposes we report the operand join. *)
let rec expr_type k = function
  | Int _ -> Dtype.int32
  | Var v -> (
      match find_scalar k v with Some s -> s.s_elem | None -> Dtype.int32)
  | Arr (a, _) -> (
      match find_array k a with Some d -> d.a_elem | None -> Dtype.int32)
  | Bin (_, a, b) -> Dtype.join (expr_type k a) (expr_type k b)
  | Un (_, e) -> expr_type k e
  | Cond (_, t, e) -> Dtype.join (expr_type k t) (expr_type k e)

(** Type wide enough to hold the *full* result of the expression without
    overflow — the width synthesis would give the wire. A register
    declared at this width behaves exactly like the unmaterialised
    expression, which is what lets LICM introduce temporaries without
    changing wrap-around behaviour. *)
let rec result_type k e =
  let wide bits signed = Dtype.make ~bits:(min bits 64) ~signed in
  match e with
  | Int n ->
      let rec need b = if n >= -(1 lsl (b - 1)) && n < 1 lsl (b - 1) then b else need (b + 1) in
      wide (need 8) true
  | Var _ | Arr _ -> expr_type k e
  | Un (Neg, a) ->
      let t = result_type k a in
      wide (Dtype.bits t + 1) true
  | Un ((Not | Bnot | Abs), a) -> result_type k a
  | Bin (Mul, a, b) ->
      let ta = result_type k a and tb = result_type k b in
      wide (Dtype.bits ta + Dtype.bits tb) (Dtype.is_signed ta || Dtype.is_signed tb)
  | Bin ((Add | Sub), a, b) ->
      let ta = result_type k a and tb = result_type k b in
      wide (max (Dtype.bits ta) (Dtype.bits tb) + 1) true
  | Bin (Shl, a, Int s) when s >= 0 && s < 32 ->
      let ta = result_type k a in
      wide (Dtype.bits ta + s) (Dtype.is_signed ta)
  | Bin ((Lt | Le | Gt | Ge | Eq | Ne | And | Or), _, _) ->
      Dtype.make ~bits:8 ~signed:false
  | Bin ((Div | Mod | Band | Bor | Bxor | Shr | Min | Max | Shl), a, b) ->
      let ta = result_type k a and tb = result_type k b in
      Dtype.join ta tb
  | Cond (_, t, e') -> Dtype.join (result_type k t) (result_type k e')

(* ------------------------------------------------------------------ *)
(* Traversals *)

let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Int _ | Var _ -> acc
  | Arr (_, subs) -> List.fold_left (fold_expr f) acc subs
  | Bin (_, a, b) -> fold_expr f (fold_expr f acc a) b
  | Un (_, a) -> fold_expr f acc a
  | Cond (c, t, e) -> fold_expr f (fold_expr f (fold_expr f acc c) t) e

let rec fold_stmt ~stmt ~expr acc s =
  let acc = stmt acc s in
  match s with
  | Assign (lv, e) ->
      let acc =
        match lv with
        | Lvar _ -> acc
        | Larr (_, subs) -> List.fold_left (fold_expr expr) acc subs
      in
      fold_expr expr acc e
  | If (c, t, e) ->
      let acc = fold_expr expr acc c in
      let acc = List.fold_left (fold_stmt ~stmt ~expr) acc t in
      List.fold_left (fold_stmt ~stmt ~expr) acc e
  | For l -> List.fold_left (fold_stmt ~stmt ~expr) acc l.body
  | Rotate _ -> acc

let fold_stmts ~stmt ~expr acc body =
  List.fold_left (fold_stmt ~stmt ~expr) acc body

(** [List.map] that returns the input list physically unchanged when [f]
    maps every element to itself (physically). Rewrites over large
    transformed bodies touch a small fraction of the tree; preserving
    sharing keeps them (and the GC) linear in the *changed* part. *)
let rec map_sharing f l =
  match l with
  | [] -> []
  | x :: rest ->
      let x' = f x in
      let rest' = map_sharing f rest in
      if x' == x && rest' == rest then l else x' :: rest'

(** Bottom-up expression rewriting; shares unchanged subtrees. *)
let rec map_expr f e =
  let e' =
    match e with
    | Int _ | Var _ -> e
    | Arr (a, subs) ->
        let subs' = map_sharing (map_expr f) subs in
        if subs' == subs then e else Arr (a, subs')
    | Bin (op, a, b) ->
        let a' = map_expr f a and b' = map_expr f b in
        if a' == a && b' == b then e else Bin (op, a', b')
    | Un (op, a) ->
        let a' = map_expr f a in
        if a' == a then e else Un (op, a')
    | Cond (c, t, el) ->
        let c' = map_expr f c and t' = map_expr f t and el' = map_expr f el in
        if c' == c && t' == t && el' == el then e else Cond (c', t', el')
  in
  f e'

(** Rewrite every expression (including lvalue subscripts) in a
    statement; shares unchanged subtrees. *)
let rec map_stmt_exprs f s =
  match s with
  | Assign (lv, e) ->
      let lv' =
        match lv with
        | Lvar _ -> lv
        | Larr (a, subs) ->
            let subs' = map_sharing (map_expr f) subs in
            if subs' == subs then lv else Larr (a, subs')
      in
      let e' = map_expr f e in
      if lv' == lv && e' == e then s else Assign (lv', e')
  | If (c, t, e) ->
      let c' = map_expr f c in
      let t' = map_sharing (map_stmt_exprs f) t in
      let e' = map_sharing (map_stmt_exprs f) e in
      if c' == c && t' == t && e' == e then s else If (c', t', e')
  | For l ->
      let body' = map_sharing (map_stmt_exprs f) l.body in
      if body' == l.body then s else For { l with body = body' }
  | Rotate _ -> s

let map_body_exprs f body = map_sharing (map_stmt_exprs f) body

(** Substitute expression [by] for every occurrence of variable [v]. *)
let subst_var v by body =
  map_body_exprs (function Var x when x = v -> by | e -> e) body

(** All loop index names bound anywhere within [body]. *)
let bound_indices body =
  fold_stmts
    ~stmt:(fun acc s -> match s with For l -> l.index :: acc | _ -> acc)
    ~expr:(fun acc _ -> acc)
    [] body

(** Scalars read or written in [body] (excluding loop indices). *)
let scalars_used body =
  let add acc v = if List.mem v acc then acc else v :: acc in
  let acc =
    fold_stmts
      ~stmt:(fun acc s ->
        match s with
        | Assign (Lvar v, _) -> add acc v
        | Rotate rs -> List.fold_left add acc rs
        | _ -> acc)
      ~expr:(fun acc e -> match e with Var v -> add acc v | _ -> acc)
      [] body
  in
  let bound = bound_indices body in
  List.filter (fun v -> not (List.mem v bound)) acc

(** Arrays referenced (read or written) in [body]. *)
let arrays_used body =
  let add acc v = if List.mem v acc then acc else v :: acc in
  fold_stmts
    ~stmt:(fun acc s ->
      match s with Assign (Larr (a, _), _) -> add acc a | _ -> acc)
    ~expr:(fun acc e -> match e with Arr (a, _) -> add acc a | _ -> acc)
    [] body
