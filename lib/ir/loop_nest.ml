(** Utilities over loop nests: nest extraction, trip counts, index
    environments, and classification of where statements sit relative to
    the nest. *)

open Ast

(** The chain of loops from outermost to innermost along the *unique* loop
    spine of a statement list, together with the innermost body. A nest is
    perfect when every loop body on the spine contains exactly one
    statement, a [For]; the paper's transformed code is imperfect (loads
    before / stores after the inner loop), so we also expose the spine of
    an imperfect nest: at each level we follow the single [For] statement
    if there is exactly one. *)
let rec perfect_nest (body : stmt list) : loop list * stmt list =
  match body with
  | [ For l ] ->
      let inner, innermost = perfect_nest l.body in
      (l :: inner, innermost)
  | other -> ([], other)

(** Follow the loop spine even through imperfect levels: at each level,
    descend into the unique [For] among the statements. Returns the loops
    outermost-first. *)
let rec spine (body : stmt list) : loop list =
  let fors = List.filter_map (function For l -> Some l | _ -> None) body in
  match fors with [ l ] -> l :: spine l.body | _ -> []

let nest_depth body = List.length (spine body)

(** Indices of the spine loops, outermost first. *)
let spine_indices body = List.map (fun l -> l.index) (spine body)

let trip = loop_trip

(** Total iteration count of a perfect nest. *)
let total_iterations body =
  List.fold_left (fun acc l -> acc * trip l) 1 (spine body)

(** Iteration vectors of a loop list, outermost-first, in lexicographic
    execution order. Intended for small test nests — the list is
    materialised eagerly. *)
let iteration_vectors (loops : loop list) : int list list =
  let rec go = function
    | [] -> [ [] ]
    | l :: rest ->
        let tails = go rest in
        let rec values v acc = if v >= l.hi then List.rev acc else values (v + l.step) (v :: acc) in
        let vs = values l.lo [] in
        List.concat_map (fun v -> List.map (fun t -> v :: t) tails) vs
  in
  go loops

(** Does the expression depend on the given index variable? *)
let expr_uses_var v e =
  fold_expr (fun acc x -> acc || x = Var v) false e

(** Is the expression invariant with respect to loop index [v]?
    Conservative: any array read makes it variant unless its subscripts
    avoid [v] — reads may still alias writes inside the loop, but
    invariance here is used only on subscript expressions and scalars,
    which is exact. *)
let invariant_in v e = not (expr_uses_var v e)

(** Rename a loop index throughout a loop (binder and uses). *)
let rename_index (l : loop) fresh : loop =
  let body = subst_var l.index (Var fresh) l.body in
  { l with index = fresh; body }

(** Replace the innermost body of a perfect nest. *)
let rec with_innermost (body : stmt list) (f : stmt list -> stmt list) : stmt list =
  match body with
  | [ For l ] -> [ For { l with body = with_innermost l.body f } ]
  | other -> f other

(** Validate structural invariants used throughout the pipeline: positive
    steps, and no loop nested under a conditional — a conditionally
    executed loop has no static schedule, which puts it outside the
    paper's input domain (Section 2.4) and outside what the estimator,
    simulator and code generator model. Raises [Invalid_argument]. *)
let validate (k : kernel) =
  let check_loop l =
    if l.step <= 0 then
      invalid_arg
        (Printf.sprintf "loop %s has nonpositive step %d" l.index l.step)
  in
  let rec go ~under_if s =
    match s with
    | For l ->
        if under_if then
          invalid_arg
            (Printf.sprintf
               "loop %s is nested under a conditional, which is outside the \
                supported domain"
               l.index);
        check_loop l;
        List.iter (go ~under_if) l.body
    | If (_, t, e) ->
        List.iter (go ~under_if:true) t;
        List.iter (go ~under_if:true) e
    | Assign _ | Rotate _ -> ()
  in
  List.iter (go ~under_if:false) k.k_body;
  k
