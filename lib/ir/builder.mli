(** Combinators for constructing IR programmatically — used by the kernel
    library, the tests and the examples. The infix operators mirror C so
    that builder code reads like the paper's listings.

    Note the operators shadow the integer ones; open or alias the module
    locally ([module B = Ir.Builder]). *)

val int : int -> Ast.expr
val var : string -> Ast.expr
val arr : string -> Ast.expr list -> Ast.expr
val arr1 : string -> Ast.expr -> Ast.expr
val arr2 : string -> Ast.expr -> Ast.expr -> Ast.expr
val ( + ) : Ast.expr -> Ast.expr -> Ast.expr
val ( - ) : Ast.expr -> Ast.expr -> Ast.expr
val ( * ) : Ast.expr -> Ast.expr -> Ast.expr
val ( / ) : Ast.expr -> Ast.expr -> Ast.expr
val ( % ) : Ast.expr -> Ast.expr -> Ast.expr
val ( < ) : Ast.expr -> Ast.expr -> Ast.expr
val ( <= ) : Ast.expr -> Ast.expr -> Ast.expr
val ( > ) : Ast.expr -> Ast.expr -> Ast.expr
val ( >= ) : Ast.expr -> Ast.expr -> Ast.expr
val ( == ) : Ast.expr -> Ast.expr -> Ast.expr
val ( != ) : Ast.expr -> Ast.expr -> Ast.expr
val ( && ) : Ast.expr -> Ast.expr -> Ast.expr
val ( || ) : Ast.expr -> Ast.expr -> Ast.expr
val neg : Ast.expr -> Ast.expr
val abs : Ast.expr -> Ast.expr
val min_ : Ast.expr -> Ast.expr -> Ast.expr
val max_ : Ast.expr -> Ast.expr -> Ast.expr
val cond : Ast.expr -> Ast.expr -> Ast.expr -> Ast.expr

(** Scalar assignment. *)
val set : string -> Ast.expr -> Ast.stmt

(** Array element assignment. *)
val store : string -> Ast.expr list -> Ast.expr -> Ast.stmt

val store1 : string -> Ast.expr -> Ast.expr -> Ast.stmt
val store2 : string -> Ast.expr -> Ast.expr -> Ast.expr -> Ast.stmt
val if_ : Ast.expr -> Ast.stmt list -> Ast.stmt
val if_else : Ast.expr -> Ast.stmt list -> Ast.stmt list -> Ast.stmt
val rotate : string list -> Ast.stmt

(** [for_ i lo hi body] — stride-[step] loop with the index available as
    an expression inside [body]. *)
val for_ :
  ?step:int -> string -> int -> int -> (Ast.expr -> Ast.stmt list) -> Ast.stmt

(** Loop over an already-built body. *)
val loop : ?step:int -> string -> int -> int -> Ast.stmt list -> Ast.stmt

(** Assemble and structurally validate a kernel. *)
val kernel :
  ?arrays:Ast.array_decl list ->
  ?scalars:Ast.scalar_decl list ->
  string ->
  Ast.stmt list ->
  Ast.kernel
