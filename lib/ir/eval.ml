(** Reference interpreter for the IR.

    The interpreter defines the semantics that every transformation must
    preserve; the property tests in [test/] run random kernels on random
    inputs before and after each pass and require identical final stores.

    Arrays are flattened row-major. Every store wraps the value into the
    declared element type (two's complement), so programs agree even when
    intermediate results overflow. Out-of-bounds subscripts raise
    {!Out_of_bounds} — a transformation that produces one is buggy. *)

open Ast

exception Out_of_bounds of string
exception Unbound of string
exception Division_by_zero of string

type state = {
  kernel : kernel;
  arrays : (string, int array) Hashtbl.t;
  scalars : (string, int) Hashtbl.t;
}

let bool_of_int v = v <> 0
let int_of_bool b = if b then 1 else 0

let array_index (decl : array_decl) (subs : int list) =
  let rec go dims subs acc =
    match (dims, subs) with
    | [], [] -> acc
    | d :: dims, s :: subs ->
        if s < 0 || s >= d then
          raise
            (Out_of_bounds
               (Printf.sprintf "%s: subscript %d out of [0, %d)" decl.a_name s d))
        else go dims subs ((acc * d) + s)
    | _ ->
        raise
          (Out_of_bounds
             (Printf.sprintf "%s: expected %d subscripts, got %d" decl.a_name
                (List.length decl.a_dims) (List.length subs)))
  in
  go decl.a_dims subs 0

let init ?(inputs = []) ?(params = []) (kernel : kernel) : state =
  let arrays = Hashtbl.create 16 in
  List.iter
    (fun a -> Hashtbl.replace arrays a.a_name (Array.make (array_size a) 0))
    kernel.k_arrays;
  List.iter
    (fun (name, data) ->
      match find_array kernel name with
      | None -> raise (Unbound ("input array " ^ name))
      | Some a ->
          if Array.length data <> array_size a then
            invalid_arg
              (Printf.sprintf "Eval.init: %s expects %d elements, got %d" name
                 (array_size a) (Array.length data));
          Hashtbl.replace arrays name
            (Array.map (Dtype.wrap a.a_elem) data))
    inputs;
  let scalars = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace scalars s.s_name 0) kernel.k_scalars;
  List.iter (fun (name, v) -> Hashtbl.replace scalars name v) params;
  { kernel; arrays; scalars }

let lookup_scalar st v =
  match Hashtbl.find_opt st.scalars v with
  | Some x -> x
  | None -> raise (Unbound ("scalar " ^ v))

let array_decl_exn st a =
  match find_array st.kernel a with
  | Some d -> d
  | None -> raise (Unbound ("array " ^ a))

let rec eval_expr st e =
  match e with
  | Int n -> n
  | Var v -> lookup_scalar st v
  | Arr (a, subs) ->
      let decl = array_decl_exn st a in
      let idx = array_index decl (List.map (eval_expr st) subs) in
      (Hashtbl.find st.arrays a).(idx)
  | Un (op, a) -> (
      let v = eval_expr st a in
      match op with
      | Neg -> -v
      | Not -> int_of_bool (v = 0)
      | Bnot -> lnot v
      | Abs -> Stdlib.abs v)
  | Bin (op, a, b) -> eval_binop st op a b
  | Cond (c, t, e) ->
      if bool_of_int (eval_expr st c) then eval_expr st t else eval_expr st e

and eval_binop st op a b =
  (* && and || short-circuit, as in C; everything else is strict. *)
  match op with
  | And ->
      int_of_bool (bool_of_int (eval_expr st a) && bool_of_int (eval_expr st b))
  | Or ->
      int_of_bool (bool_of_int (eval_expr st a) || bool_of_int (eval_expr st b))
  | _ -> (
      let va = eval_expr st a in
      let vb = eval_expr st b in
      match op with
      | Add -> va + vb
      | Sub -> va - vb
      | Mul -> va * vb
      | Div ->
          if vb = 0 then raise (Division_by_zero (Pretty.expr_to_string b))
          else va / vb
      | Mod ->
          if vb = 0 then raise (Division_by_zero (Pretty.expr_to_string b))
          else va mod vb
      | Lt -> int_of_bool (va < vb)
      | Le -> int_of_bool (va <= vb)
      | Gt -> int_of_bool (va > vb)
      | Ge -> int_of_bool (va >= vb)
      | Eq -> int_of_bool (va = vb)
      | Ne -> int_of_bool (va <> vb)
      | Band -> va land vb
      | Bor -> va lor vb
      | Bxor -> va lxor vb
      | Shl -> va lsl vb
      | Shr -> va asr vb
      | Min -> min va vb
      | Max -> max va vb
      | And | Or -> assert false)

let scalar_type st v =
  match find_scalar st.kernel v with
  | Some s -> s.s_elem
  | None -> Dtype.int32

let rec exec_stmt st s =
  match s with
  | Assign (Lvar v, e) ->
      if not (Hashtbl.mem st.scalars v) then raise (Unbound ("scalar " ^ v));
      Hashtbl.replace st.scalars v (Dtype.wrap (scalar_type st v) (eval_expr st e))
  | Assign (Larr (a, subs), e) ->
      let decl = array_decl_exn st a in
      let idx = array_index decl (List.map (eval_expr st) subs) in
      (Hashtbl.find st.arrays a).(idx) <-
        Dtype.wrap decl.a_elem (eval_expr st e)
  | If (c, t, e) ->
      if bool_of_int (eval_expr st c) then exec_body st t else exec_body st e
  | For l ->
      if l.step <= 0 then invalid_arg "Eval: nonpositive loop step";
      Hashtbl.replace st.scalars l.index 0;
      let i = ref l.lo in
      while !i < l.hi do
        Hashtbl.replace st.scalars l.index !i;
        exec_body st l.body;
        i := !i + l.step
      done;
      Hashtbl.remove st.scalars l.index
  | Rotate rs -> (
      (* Parallel left rotation: r0 <- r1, ..., r(n-1) <- rn, rn <- r0. *)
      match rs with
      | [] | [ _ ] -> ()
      | first :: rest ->
          let values = List.map (lookup_scalar st) rs in
          let rotated = List.tl values @ [ List.hd values ] in
          List.iter2 (Hashtbl.replace st.scalars) (first :: rest) rotated)

and exec_body st body = List.iter (exec_stmt st) body

(** Run a kernel. [inputs] give initial array contents (missing arrays are
    zero-initialised); [params] give initial values of [Param] scalars.
    Returns the final state. *)
let run ?(inputs = []) ?(params = []) kernel =
  let st = init ~inputs ~params kernel in
  exec_body st kernel.k_body;
  st

let array_value st name = Hashtbl.find_opt st.arrays name
let scalar_value st name = Hashtbl.find_opt st.scalars name

(** Final contents of every declared array, in declaration order — the
    canonical observable for equivalence testing. *)
let observables st =
  List.map
    (fun a -> (a.a_name, Array.copy (Hashtbl.find st.arrays a.a_name)))
    st.kernel.k_arrays
