(** Utilities over loop nests: nest extraction, trip counts, iteration
    enumeration, and structural validation. *)

(** Loops of a *perfect* nest (each level contains exactly one statement,
    a [For]), outermost first, with the innermost straight-line body. *)
val perfect_nest : Ast.stmt list -> Ast.loop list * Ast.stmt list

(** The loop spine: at each level, descend into the unique [For] among
    the statements (imperfect levels allowed). Empty as soon as a level
    has zero or several loops. *)
val spine : Ast.stmt list -> Ast.loop list

val nest_depth : Ast.stmt list -> int
val spine_indices : Ast.stmt list -> string list
val trip : Ast.loop -> int

(** Product of the spine loops' trip counts. *)
val total_iterations : Ast.stmt list -> int

(** Iteration vectors of a loop list in lexicographic execution order;
    intended for small test nests (fully materialised). *)
val iteration_vectors : Ast.loop list -> int list list

val expr_uses_var : string -> Ast.expr -> bool

(** Is the expression invariant with respect to the index? Exact for the
    subscript/scalar expressions it is used on. *)
val invariant_in : string -> Ast.expr -> bool

(** Rename a loop's index (binder and uses). *)
val rename_index : Ast.loop -> string -> Ast.loop

(** Replace the innermost body of a perfect nest. *)
val with_innermost : Ast.stmt list -> (Ast.stmt list -> Ast.stmt list) -> Ast.stmt list

(** Check structural invariants (positive steps); raises
    [Invalid_argument] and otherwise returns the kernel unchanged. *)
val validate : Ast.kernel -> Ast.kernel
