(** Affine forms [c1*i1 + ... + cn*in + b] over loop index variables.

    The paper's input domain restricts array subscripts to affine
    expressions of the loop indices (Section 2.4); every analysis —
    dependence testing, uniformly generated sets, reuse, data layout —
    works on this normal form rather than on raw syntax. *)

type t = {
  terms : (string * int) list;
      (** coefficient per variable: sorted by name, merged, nonzero *)
  const : int;
}

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int

(** [make terms const] normalises the term list (sorting, merging
    duplicate variables, dropping zero coefficients). *)
val make : (string * int) list -> int -> t

val const : int -> t
val zero : t
val var : ?coeff:int -> string -> t
val is_const : t -> bool
val const_part : t -> int

(** Coefficient of a variable; 0 when absent. *)
val coeff : t -> string -> int

(** Variables with nonzero coefficients, sorted. *)
val vars : t -> string list

val add : t -> t -> t
val neg : t -> t
val sub : t -> t -> t
val scale : int -> t -> t

(** Product, affine only when one side is constant. *)
val mul : t -> t -> t option

(** Linearize an AST expression. [None] for non-affine expressions
    (products of variables, array reads, conditionals, inexact
    division). *)
val of_expr : Ast.expr -> t option

(** Reconstruct a compact AST expression, e.g. [2*i + j - 3]. *)
val to_expr : t -> Ast.expr

val eval : env:(string -> int) -> t -> int

(** Substitute an affine form for a variable. *)
val subst : t -> string -> t -> t

(** Two forms are uniformly generated (Section 4 of the paper) when their
    variable coefficients agree; they then differ only by a constant. *)
val uniformly_generated : t -> t -> bool

(** Constant difference [b - a] of two uniformly generated forms. *)
val ug_distance : t -> t -> int option

val to_string : t -> string
