(** C-like pretty printer for kernels, used in diagnostics, examples and
    golden tests. The output parses back through {!Frontend} for source
    programs (transformed code may contain [rotate_registers], printed in
    the paper's notation, which the front end also accepts). *)

open Ast

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | And -> "&&"
  | Or -> "||"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Min -> "min"
  | Max -> "max"

(* Precedence levels, greater binds tighter; mirrors C. *)
let prec = function
  | Or -> 1
  | And -> 2
  | Bor -> 3
  | Bxor -> 4
  | Band -> 5
  | Eq | Ne -> 6
  | Lt | Le | Gt | Ge -> 7
  | Shl | Shr -> 8
  | Add | Sub -> 9
  | Mul | Div | Mod -> 10
  | Min | Max -> 11

let rec pp_expr_prec p fmt e =
  match e with
  | Int n -> Format.fprintf fmt "%d" n
  | Var v -> Format.pp_print_string fmt v
  | Arr (a, subs) ->
      Format.pp_print_string fmt a;
      List.iter (fun s -> Format.fprintf fmt "[%a]" (pp_expr_prec 0) s) subs
  | Un (op, a) ->
      let s = match op with Neg -> "-" | Not -> "!" | Bnot -> "~" | Abs -> "abs" in
      if op = Abs then Format.fprintf fmt "abs(%a)" (pp_expr_prec 0) a
      else Format.fprintf fmt "%s%a" s (pp_expr_prec 12) a
  | Bin ((Min | Max) as op, a, b) ->
      Format.fprintf fmt "%s(%a, %a)" (binop_str op) (pp_expr_prec 0) a
        (pp_expr_prec 0) b
  | Bin (op, a, b) ->
      let q = prec op in
      let body fmt () =
        Format.fprintf fmt "%a %s %a" (pp_expr_prec q) a (binop_str op)
          (pp_expr_prec (q + 1)) b
      in
      if q < p then Format.fprintf fmt "(%a)" body () else body fmt ()
  | Cond (c, t, e) ->
      let body fmt () =
        Format.fprintf fmt "%a ? %a : %a" (pp_expr_prec 1) c (pp_expr_prec 1) t
          (pp_expr_prec 0) e
      in
      if p > 0 then Format.fprintf fmt "(%a)" body () else body fmt ()

let pp_expr fmt e = pp_expr_prec 0 fmt e

let pp_lvalue fmt = function
  | Lvar v -> Format.pp_print_string fmt v
  | Larr (a, subs) ->
      Format.pp_print_string fmt a;
      List.iter (fun s -> Format.fprintf fmt "[%a]" pp_expr s) subs

let rec pp_stmt fmt = function
  | Assign (lv, e) -> Format.fprintf fmt "@[<h>%a = %a;@]" pp_lvalue lv pp_expr e
  | If (c, t, []) ->
      Format.fprintf fmt "@[<v 2>if (%a) {@,%a@]@,}" pp_expr c pp_body t
  | If (c, t, e) ->
      Format.fprintf fmt "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}"
        pp_expr c pp_body t pp_body e
  | For l ->
      Format.fprintf fmt
        "@[<v 2>for (%s = %d; %s < %d; %s += %d) {@,%a@]@,}" l.index l.lo
        l.index l.hi l.index l.step pp_body l.body
  | Rotate rs ->
      Format.fprintf fmt "@[<h>rotate_registers(%a);@]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           Format.pp_print_string)
        rs

and pp_body fmt body =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt fmt body

let pp_array_decl fmt a =
  let dims = List.map (Printf.sprintf "[%d]") a.a_dims |> String.concat "" in
  Format.fprintf fmt "%s %s%s;" (Dtype.to_string a.a_elem) a.a_name dims

let pp_scalar_decl fmt s =
  Format.fprintf fmt "%s %s;%s" (Dtype.to_string s.s_elem) s.s_name
    (match s.s_kind with
    | Register -> " /* register */"
    | Param -> " /* param */"
    | Temp -> "")

let pp_kernel fmt k =
  Format.fprintf fmt "@[<v>/* kernel %s */@," k.k_name;
  List.iter (fun a -> Format.fprintf fmt "%a@," pp_array_decl a) k.k_arrays;
  List.iter (fun s -> Format.fprintf fmt "%a@," pp_scalar_decl s) k.k_scalars;
  pp_body fmt k.k_body;
  Format.fprintf fmt "@]"

let expr_to_string e = Format.asprintf "%a" pp_expr e
let stmt_to_string s = Format.asprintf "%a" pp_stmt s
let kernel_to_string k = Format.asprintf "%a" pp_kernel k
