(** Element data types for scalars and array elements.

    The paper targets multimedia kernels operating on 8-bit (image) and
    16-bit (signal) data with 32-bit accumulators; bit width drives both
    the operator area model and the data fetch/consumption rates of the
    balance metric. *)

type t = {
  bits : int;  (** width in bits; positive, at most 64 *)
  signed : bool;
}

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int

(** [make ~bits ~signed] builds a type. Raises [Invalid_argument] for
    non-positive widths or widths beyond 64 bits. *)
val make : bits:int -> signed:bool -> t

val int8 : t
val int16 : t
val int32 : t
val uint8 : t
val uint16 : t
val uint32 : t
val bits : t -> int
val is_signed : t -> bool

(** Smallest type able to hold either operand: maximum width, signed if
    either side is. *)
val join : t -> t -> t

(** Width at and beyond which a type is treated as unbounded by the
    reference interpreter. Such widths only arise for compiler-created
    intermediates sized to hold their expression's full result. *)
val unbounded_bits : int

(** Inclusive range of representable values, as [(lo, hi)]. Wide
    intermediate types are clamped to a safe native-int range. *)
val range : t -> int * int

(** Wrap an unbounded integer into the representable range, with
    two's-complement semantics; identity for wide intermediate types.
    Both the reference interpreter and the datapath simulator apply this
    at every store, so transformed and original programs agree even at
    overflow. *)
val wrap : t -> int -> int

(** ["int32"], ["uint8"], ... — also accepted back by the front end. *)
val to_string : t -> string
