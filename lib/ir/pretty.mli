(** C-like pretty printer for kernels, used in diagnostics, examples and
    golden tests. The output parses back through the front end (including
    the [rotate_registers] construct of transformed code). *)

val binop_str : Ast.binop -> string
val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_lvalue : Format.formatter -> Ast.lvalue -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_body : Format.formatter -> Ast.stmt list -> unit
val pp_array_decl : Format.formatter -> Ast.array_decl -> unit
val pp_scalar_decl : Format.formatter -> Ast.scalar_decl -> unit
val pp_kernel : Format.formatter -> Ast.kernel -> unit
val expr_to_string : Ast.expr -> string
val stmt_to_string : Ast.stmt -> string
val kernel_to_string : Ast.kernel -> string
