(** Combinators for constructing IR programmatically — used by the kernel
    library, the tests and the examples. The infix operators mirror C so
    that builder code reads like the paper's listings. *)

open Ast

let int n = Int n
let var v = Var v
let arr a subs = Arr (a, subs)
let arr1 a s = Arr (a, [ s ])
let arr2 a s0 s1 = Arr (a, [ s0; s1 ])
let ( + ) a b = Bin (Add, a, b)
let ( - ) a b = Bin (Sub, a, b)
let ( * ) a b = Bin (Mul, a, b)
let ( / ) a b = Bin (Div, a, b)
let ( % ) a b = Bin (Mod, a, b)
let ( < ) a b = Bin (Lt, a, b)
let ( <= ) a b = Bin (Le, a, b)
let ( > ) a b = Bin (Gt, a, b)
let ( >= ) a b = Bin (Ge, a, b)
let ( == ) a b = Bin (Eq, a, b)
let ( != ) a b = Bin (Ne, a, b)
let ( && ) a b = Bin (And, a, b)
let ( || ) a b = Bin (Or, a, b)
let neg a = Un (Neg, a)
let abs a = Un (Abs, a)
let min_ a b = Bin (Min, a, b)
let max_ a b = Bin (Max, a, b)
let cond c t e = Cond (c, t, e)

(** [set lv e] — assignment to a scalar. *)
let set v e = Assign (Lvar v, e)

(** [store a subs e] — assignment to an array element. *)
let store a subs e = Assign (Larr (a, subs), e)

let store1 a s e = Assign (Larr (a, [ s ]), e)
let store2 a s0 s1 e = Assign (Larr (a, [ s0; s1 ]), e)
let if_ c t = If (c, t, [])
let if_else c t e = If (c, t, e)
let rotate rs = Rotate rs

(** [for_ i lo hi body] — unit-stride loop [for (i = lo; i < hi; i++)],
    with the index available as an expression. *)
let for_ ?(step = 1) index lo hi body =
  For { index; lo; hi; step; body = body (Var index); l_span = None }

(** Loop without the callback convenience, for already-built bodies. *)
let loop ?(step = 1) index lo hi body =
  For { index; lo; hi; step; body; l_span = None }

let kernel ?(arrays = []) ?(scalars = []) name body =
  Loop_nest.validate
    { k_name = name; k_arrays = arrays; k_scalars = scalars; k_body = body }
