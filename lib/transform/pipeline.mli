(** The code-transformation pipeline applied to every design point the
    search visits: optional tiling, unroll-and-jam at the candidate
    vector, scalar replacement, loop peeling to specialise the
    first-iteration guards, LICM, and cleanup simplification (Figure 3 of
    the paper; data layout is a separate stage, see {!Data_layout}). *)

open Ir

type options = {
  vector : Unroll.vector;
  scalar : Scalar_replace.config;
  peel : bool;  (** peel carrier / leading iterations to remove guards *)
  licm : bool;
  tile : (string * int) option;
      (** strip-mine this loop to the given tile before replacement
          (register-pressure control, Section 5.4) *)
}

val default : options

type result = {
  kernel : Ast.kernel;
  report : Scalar_replace.report;
  options : options;
  delta_reused : bool;
      (** the unroll stage rebuilt only the innermost axis, reusing the
          delta cache's outer-prefix body (always [false] without
          [?delta]) *)
}

(** Pipeline stages in application order. [Tile] runs only when
    [options.tile] is set, [Peel]/[Licm] only when enabled. *)
type stage = Tile | Unroll_jam | Scalar_replace | Peel | Licm | Simplify

val stage_name : stage -> string

(** A [Failure] or [Invalid_argument] escaping a rewrite stage is
    re-raised as [Stage_error] naming the stage and the kernel, so
    pipeline failures are attributable instead of a naked string. *)
exception
  Stage_error of { stage : stage; kernel : string; message : string }

(** [apply ?observe ?delta opts k] runs the pipeline. When given,
    [observe] is called after every executed stage with the kernel
    before and after that stage — the hook the checker's translation
    validation uses. When given, [delta] stages the unroll through the
    cache so sweeps that vary the innermost factor fastest rebuild only
    that axis. The returned kernel is bit-identical whether or not
    either option is passed. *)
val apply :
  ?observe:(stage -> before:Ast.kernel -> after:Ast.kernel -> unit) ->
  ?delta:Unroll.cache ->
  options ->
  Ast.kernel ->
  result
