(** The code-transformation pipeline applied to every design point the
    search visits: optional tiling, unroll-and-jam at the candidate
    vector, scalar replacement, loop peeling to specialise the
    first-iteration guards, LICM, and cleanup simplification (Figure 3 of
    the paper; data layout is a separate stage, see {!Data_layout}). *)

open Ir

type options = {
  vector : Unroll.vector;
  scalar : Scalar_replace.config;
  peel : bool;  (** peel carrier / leading iterations to remove guards *)
  licm : bool;
  tile : (string * int) option;
      (** strip-mine this loop to the given tile before replacement
          (register-pressure control, Section 5.4) *)
}

val default : options

type result = {
  kernel : Ast.kernel;
  report : Scalar_replace.report;
  options : options;
}

val apply : options -> Ast.kernel -> result
