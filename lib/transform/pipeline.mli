(** The code-transformation pipeline applied to every design point the
    search visits: optional tiling, unroll-and-jam at the candidate
    vector, scalar replacement, loop peeling to specialise the
    first-iteration guards, LICM, and cleanup simplification (Figure 3 of
    the paper; data layout is a separate stage, see {!Data_layout}). *)

open Ir

type options = {
  vector : Unroll.vector;
  scalar : Scalar_replace.config;
  peel : bool;  (** peel carrier / leading iterations to remove guards *)
  licm : bool;
  tile : (string * int) option;
      (** strip-mine this loop to the given tile before replacement
          (register-pressure control, Section 5.4) *)
}

val default : options

(** A first-class design-point configuration: the searched knobs of the
    joint transform space, one value per design point. [options] is the
    full pipeline parameterization of a session (scalar-replacement
    budget, chain span, ...); a [config] picks the per-point transform
    decisions on top of it. *)
type config = {
  vector : Unroll.vector;  (** unroll factor per spine loop *)
  tile : (string * int) option;  (** strip-mine this loop to this tile *)
  scalar_replace : bool;
  peel : bool;
  licm : bool;
}

(** Whether a scalar-replacement configuration performs any replacement
    ([max_registers > 0]) — the boolean the joint space toggles. *)
val scalar_enabled : Scalar_replace.config -> bool

(** Project the searched knobs out of full pipeline options. *)
val config_of_options : options -> config

(** Concrete options for one design point: the config's knobs over
    [base]'s non-searched parameters. With replacement off the scalar
    configuration is [base]'s with a zero register budget, no cross-loop
    banks and no chains; with replacement on over a disabled base it is
    {!Scalar_replace.default_config}. Inverse of {!config_of_options}
    on the searched fields. *)
val apply_config : base:options -> config -> options

val pp_config : Format.formatter -> config -> unit
val config_to_string : config -> string

type result = {
  kernel : Ast.kernel;
  report : Scalar_replace.report;
  options : options;
  delta_reused : bool;
      (** the unroll stage rebuilt only the innermost axis, reusing the
          delta cache's outer-prefix body (always [false] without
          [?delta]) *)
}

(** Pipeline stages in application order. [Tile] runs only when
    [options.tile] is set, [Peel]/[Licm] only when enabled. A tile index
    naming no loop of the kernel raises {!Stage_error} (a named loop the
    strip-mine cannot split is a silent no-op). *)
type stage = Tile | Unroll_jam | Scalar_replace | Peel | Licm | Simplify

val stage_name : stage -> string

(** A [Failure] or [Invalid_argument] escaping a rewrite stage is
    re-raised as [Stage_error] naming the stage and the kernel, so
    pipeline failures are attributable instead of a naked string. *)
exception
  Stage_error of { stage : stage; kernel : string; message : string }

(** [apply ?observe ?delta opts k] runs the pipeline. When given,
    [observe] is called after every executed stage with the kernel
    before and after that stage — the hook the checker's translation
    validation uses. When given, [delta] stages the unroll through the
    cache so sweeps that vary the innermost factor fastest rebuild only
    that axis. The returned kernel is bit-identical whether or not
    either option is passed. *)
val apply :
  ?observe:(stage -> before:Ast.kernel -> after:Ast.kernel -> unit) ->
  ?delta:Unroll.cache ->
  options ->
  Ast.kernel ->
  result
