(** Fresh-name generation that avoids every identifier already present in
    a kernel (arrays, scalars, loop indices). *)

open Ir

type t = { mutable used : (string, unit) Hashtbl.t }

let of_kernel (k : Ast.kernel) : t =
  let used = Hashtbl.create 64 in
  List.iter (fun (a : Ast.array_decl) -> Hashtbl.replace used a.a_name ()) k.k_arrays;
  List.iter (fun (s : Ast.scalar_decl) -> Hashtbl.replace used s.s_name ()) k.k_scalars;
  List.iter (fun i -> Hashtbl.replace used i ()) (Ast.bound_indices k.k_body);
  { used }

let reserve t name = Hashtbl.replace t.used name ()

(** [fresh t base] returns [base] if unused, otherwise [base_0], [base_1], ...
    The result is reserved. *)
let fresh t base =
  let name =
    if not (Hashtbl.mem t.used base) then base
    else
      let rec go n =
        let cand = Printf.sprintf "%s_%d" base n in
        if Hashtbl.mem t.used cand then go (n + 1) else cand
      in
      go 0
  in
  reserve t name;
  name
