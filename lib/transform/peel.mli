(** Loop peeling.

    Scalar replacement emits register-bank loads guarded by
    [if (c == lo)] on the first iteration of the carrier loop
    (Figure 1(c) of the paper); peeling the first iteration specialises
    those guards away so every remaining iteration has the same memory
    schedule (Figure 1(d)). *)

open Ir

(** Peel the first iteration of every loop with the given index on the
    body's spine; [index == lo] guards in the remaining loop fold to
    false. *)
val peel_first : index:string -> Ast.stmt list -> Ast.stmt list

(** Peel the last iteration instead (store sinking epilogues). *)
val peel_last : index:string -> Ast.stmt list -> Ast.stmt list

(** [peel_first] on the kernel, followed by simplification. *)
val run : index:string -> Ast.kernel -> Ast.kernel
