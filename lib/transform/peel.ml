(** Loop peeling.

    Scalar replacement emits register-bank loads guarded by
    [if (c == lo)] on the first iteration of the carrier loop
    (Figure 1(c) of the paper). Peeling the first iteration specialises
    those guards away, so every remaining iteration has the same number
    of memory accesses and high-level synthesis can schedule them
    uniformly (Figure 1(d) and the paper's discussion of peeling). *)

open Ir
open Ast

(** Peel the first iteration of the loop with index [index] (searched on
    the nest spine): emits the body with [index := lo], followed by the
    loop starting at [lo + step]. Guards of the form [index == lo] inside
    the remaining loop are folded to false — the index is strictly
    greater than [lo] there. *)
let peel_first ~index (body : stmt list) : stmt list =
  (* Sharing-preserving: subtrees without the target loop come back
     physically unchanged, so peeling one loop of a large unrolled body
     copies only the peeled loop and its ancestors. *)
  let rec go (body : stmt list) =
    let changed = ref false in
    let body' =
      List.concat_map
        (fun s ->
          match s with
          | For l when l.index = index ->
              if Ast.loop_trip l = 0 then [ s ]
              else begin
                changed := true;
                let first = Ast.subst_var l.index (Int l.lo) l.body in
                let rest =
                  if l.lo + l.step >= l.hi then []
                  else
                    let kill_guard e =
                      match e with
                      | Bin (Eq, Var v, Int c) when v = l.index && c = l.lo -> Int 0
                      | Bin (Eq, Int c, Var v) when v = l.index && c = l.lo -> Int 0
                      | e -> e
                    in
                    [ For { l with lo = l.lo + l.step;
                            body = Ast.map_body_exprs kill_guard l.body } ]
                in
                first @ rest
              end
          | For l ->
              let b' = go l.body in
              if b' == l.body then [ s ]
              else begin
                changed := true;
                [ For { l with body = b' } ]
              end
          | If (c, t, e) ->
              let t' = go t and e' = go e in
              if t' == t && e' == e then [ s ]
              else begin
                changed := true;
                [ If (c, t', e') ]
              end
          | Assign _ | Rotate _ -> [ s ])
        body
    in
    if !changed then body' else body
  in
  go body

(** Peel the last iteration instead; useful for sinking epilogue stores. *)
let peel_last ~index (body : stmt list) : stmt list =
  let rec go body =
    let changed = ref false in
    let body' =
      List.concat_map
        (fun s ->
          match s with
          | For l when l.index = index ->
              let trip = Ast.loop_trip l in
              if trip = 0 then [ s ]
              else begin
                changed := true;
                let last_val = l.lo + ((trip - 1) * l.step) in
                let last = Ast.subst_var l.index (Int last_val) l.body in
                let rest =
                  if trip = 1 then [] else [ For { l with hi = last_val } ]
                in
                rest @ last
              end
          | For l ->
              let b' = go l.body in
              if b' == l.body then [ s ]
              else begin
                changed := true;
                [ For { l with body = b' } ]
              end
          | If (c, t, e) ->
              let t' = go t and e' = go e in
              if t' == t && e' == e then [ s ]
              else begin
                changed := true;
                [ If (c, t', e') ]
              end
          | Assign _ | Rotate _ -> [ s ])
        body
    in
    if !changed then body' else body
  in
  go body

let run ~index (k : kernel) : kernel =
  Simplify.run { k with k_body = peel_first ~index k.k_body }
