(** Scalar replacement (Section 4 of the paper), extended as the paper
    describes relative to Carr-Kennedy: redundant memory writes on output
    dependences are eliminated (store sinking), and reuse is exploited
    across *all* loops of the nest via rotating register banks loaded on
    the first iteration of the carrier loop.

    Four cooperating replacements, in order:

    + {b Hoist/sink} — a pattern invariant with respect to every loop
      deeper than level L loads into a register on entry to level L+1 and
      (if written) stores back on exit (FIR's [D[j]] accumulator);
    + {b Register banks} — a read-only pattern invariant with respect to
      an outer loop but varying inside it gets a bank holding one sweep's
      data, loaded under a [carrier == lo] guard that peeling later
      specialises, rotated once per inner iteration (FIR's [C]);
    + {b Chains} — members at a consistent dependence distance [d] along
      the innermost loop share a rotating chain of [d+1] registers, with
      guarded refills for the first [d] iterations of each sweep (JAC's
      row neighbours);
    + {b Element CSE} — repeated accesses to one element in a body
      collapse onto a register; read-modify-write groups (an accumulator
      whose loop was fully unrolled) load once and store once.

    Patterns without a consistent distance (the coupled [S[i+j]] reads of
    FIR) keep their memory accesses, exactly as in the paper. *)

open Ir

type config = {
  across_loops : bool;  (** banks across outer loops; on in the paper *)
  chains : bool;
  max_chain_span : int;
      (** longest reuse distance a chain may bridge; longer-spanning
          classes keep their memory accesses *)
  max_registers : int;  (** budget for introduced registers *)
}

val default_config : config

type report = {
  hoisted_members : int;
  banks : (string * int) list;  (** array, bank size per member group *)
  chain_lengths : (string * int) list;
  cse_loads : int;
  registers : int;  (** total registers introduced *)
  carriers : string list;  (** loops whose first iteration should be peeled *)
  innermost_peels : int;
      (** leading innermost iterations to peel for chain refills *)
}

val empty_report : report
val run : ?config:config -> Ast.kernel -> Ast.kernel * report
