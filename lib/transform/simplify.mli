(** Constant folding and algebraic simplification.

    Unrolling substitutes [i + k] into subscripts, producing shapes like
    [(i + 0)] and [2 * (i + 1)]; simplification restores the compact
    affine forms later passes pattern-match on. Branches with constant
    conditions (left behind by peeling) are folded away; single-iteration
    loops are inlined. *)

open Ir

val fold_expr : Ast.expr -> Ast.expr

(** Canonicalise through the affine form when the expression is affine. *)
val canon_expr : Ast.expr -> Ast.expr

val simpl_body : Ast.stmt list -> Ast.stmt list
val run : Ast.kernel -> Ast.kernel

(** Fold comparisons between a loop index and a constant using the
    enclosing loop's bounds: with [i] in [lo, hi), [i < c] is true when
    [hi <= c] and false when [c <= lo], and so on. Peeling shifts loop
    bounds, which is what turns the first-iteration guards of scalar
    replacement into constants. Ends with a full [run]. *)
val fold_ranges : Ast.kernel -> Ast.kernel
