(** Unroll-and-jam (Section 4 of the paper).

    Unrolling a loop by factor [u] replaces its body with [u] copies, the
    k-th copy with [index := index + k*step], and multiplies the step by
    [u]. When the body contains an inner loop, the copies of that loop
    are *jammed* (fused) into a single loop whose body is the
    concatenation of the copies' bodies — exposing operator and memory
    parallelism across outer-loop iterations to high-level synthesis.

    Factors that do not divide the trip count produce an epilogue loop
    with the original step. An unroll factor vector assigns a factor to
    each loop of the nest spine by index name; unlisted loops keep
    factor 1. *)

open Ir
open Ast

(** Unroll factor vectors, as an association from loop index to factor. *)
type vector = (string * int) list

let factor (v : vector) index =
  match List.assoc_opt index v with Some u -> max 1 u | None -> 1

let product (v : vector) = List.fold_left (fun acc (_, u) -> acc * max 1 u) 1 v

(** Clamp each factor to the loop's trip count and drop non-spine
    entries; factors are also rounded down to the nearest divisor when
    [divisors_only] (the design space the paper explores uses divisor
    factors, keeping all iterations in the main unrolled loop). *)
let clamp ?(divisors_only = false) (body : stmt list) (v : vector) : vector =
  let spine = Loop_nest.spine body in
  List.filter_map
    (fun (l : loop) ->
      let u = factor v l.index in
      let trip = Ast.loop_trip l in
      let u = min u (max trip 1) in
      let u =
        if divisors_only then (
          let rec down u = if u <= 1 || trip mod u = 0 then max u 1 else down (u - 1) in
          down u)
        else u
      in
      if u > 1 then Some (l.index, u) else None)
    spine

(** Substitute [index := index + offset] in a body. *)
let shift_body index offset body =
  if offset = 0 then body
  else Ast.subst_var index (Bin (Add, Var index, Int offset)) body

(* Jam copies of a body: if every copy has the shape
   [pre @ [For inner] @ post] with identical inner headers, fuse the inner
   loops; otherwise concatenate. The reordering performed by fusion is the
   classic unroll-and-jam legality condition; the caller is responsible
   for checking it (see [jam_legal]). *)
let rec jam (copies : stmt list list) : stmt list =
  let split_on_for body =
    let rec go pre = function
      | For l :: post -> Some (List.rev pre, l, post)
      | s :: rest -> go (s :: pre) rest
      | [] -> None
    in
    go [] body
  in
  let splits = List.map split_on_for copies in
  let fusable =
    List.for_all Option.is_some splits
    &&
    match List.filter_map Fun.id splits with
    | [] -> false
    | (_, l0, _) :: rest as parts ->
        List.for_all
          (fun (_, (l : loop), _) ->
            l.index = l0.index && l.lo = l0.lo && l.hi = l0.hi
            && l.step = l0.step)
          rest
        (* Fusing reorders each copy's pre/post statements across the
           other copies' loops; that is only trivially safe when there
           are none (the level is perfectly nested). A scalar
           accumulator reset between copies, for instance, must keep the
           copies' loops apart. *)
        && List.for_all (fun (pre, _, post) -> pre = [] && post = []) parts
  in
  if fusable then begin
    let parts = List.filter_map Fun.id splits in
    let pres = List.concat_map (fun (p, _, _) -> p) parts in
    let posts = List.concat_map (fun (_, _, p) -> p) parts in
    let bodies = List.map (fun (_, (l : loop), _) -> l.body) parts in
    let l0 = (fun (_, l, _) -> l) (List.hd parts) in
    pres @ [ For { l0 with body = jam bodies } ] @ posts
  end
  else List.concat copies

(** Unroll one loop by [u] (assumed >= 1, <= trip), jamming inner loops,
    and recursively applying [v] to inner loops. *)
let rec unroll_loop (v : vector) (l : loop) : stmt list =
  let u = factor v l.index in
  let trip = Ast.loop_trip l in
  let u = min u (max trip 1) in
  if u <= 1 then [ For { l with body = unroll_body v l.body } ]
  else begin
    let main_trips = trip / u in
    let main_hi = l.lo + (main_trips * u * l.step) in
    let copies =
      List.init u (fun k -> shift_body l.index (k * l.step) l.body)
    in
    let jammed = unroll_body v (jam copies) in
    let main =
      if main_trips = 0 then []
      else [ For { l with hi = main_hi; step = l.step * u; body = jammed } ]
    in
    let epilogue =
      if main_hi >= l.hi then []
      else [ For { l with lo = main_hi; body = unroll_body v l.body } ]
    in
    main @ epilogue
  end

and unroll_body (v : vector) (body : stmt list) : stmt list =
  List.concat_map
    (fun s ->
      match s with
      | For l -> unroll_loop v l
      | If (c, t, e) -> [ If (c, unroll_body v t, unroll_body v e) ]
      | Assign _ | Rotate _ -> [ s ])
    body

(** Unroll-and-jam is legal when fusing the unrolled outer iterations does
    not reverse any dependence: no dependence carried by an outer loop may
    have a negative distance entry on an inner loop. Wildcard or coupled
    entries are treated conservatively as potentially negative. *)
let jam_legal (k : kernel) : bool =
  let deps = Analysis.Dependence.dependences k k.k_body in
  List.for_all
    (fun (d : Analysis.Dependence.dep) ->
      let rec check = function
        | [] -> true
        | Analysis.Dependence.Exact 0 :: rest -> check rest
        | Analysis.Dependence.Exact v :: rest ->
            if v < 0 then false
            else
              (* once strictly positive, inner negative entries are fine
                 only if bounded by the unroll window; be conservative and
                 require non-negative throughout *)
              List.for_all
                (function
                  | Analysis.Dependence.Exact w -> w >= 0
                  | Analysis.Dependence.Any -> true
                  | Analysis.Dependence.Coupled -> false)
                rest
        | Analysis.Dependence.Any :: rest -> check rest
        | Analysis.Dependence.Coupled :: _ -> false
      in
      check d.distance)
    deps

(** Single-entry staged-unroll cache for one source kernel: the jamming
    legality verdict (a dependence analysis of the source, identical for
    every point of a sweep) and the raw body after unrolling the
    outer-prefix factors. The sweep's lexicographic walk varies the
    innermost factor fastest, so consecutive points share the outer
    prefix and rebuild only the innermost axis. Keys compare the kernel
    physically: the cache serves one sweep's source, never stale data. *)
type cache = {
  mutable legal : (kernel * bool) option;
  mutable outer : (kernel * vector * Ast.stmt list) option;
}

let cache () : cache = { legal = None; outer = None }

(** The vector {!run} would actually apply to [k]: clamped to trip
    counts, dropped when trivial, and reduced to the innermost loop when
    jamming is not provably legal (plain unrolling of the innermost loop
    keeps original iteration order, so it never reorders a dependence).
    With [cache], the legality verdict is reused across points. *)
let effective ?(cache : cache option) (k : kernel) (v : vector) : vector =
  let v = clamp k.k_body v in
  if v = [] then []
  else begin
    let multi_loop =
      List.length (List.filter (fun (_, u) -> u > 1) v) > 1
      || (match Loop_nest.spine k.k_body with
         | [] -> false
         | spine ->
             let innermost = (List.nth spine (List.length spine - 1)).index in
             List.exists (fun (i, u) -> u > 1 && i <> innermost) v)
    in
    let legal () =
      match cache with
      | Some c -> (
          match c.legal with
          | Some (k0, b) when k0 == k -> b
          | _ ->
              let b = jam_legal k in
              c.legal <- Some (k, b);
              b)
      | None -> jam_legal k
    in
    if (not multi_loop) || legal () then v
    else
      match List.rev (Loop_nest.spine k.k_body) with
      | [] -> []
      | inner :: _ -> List.filter (fun (i, _) -> i = inner.index) v
  end

(** Apply an unroll-factor vector to a kernel, then simplify so that
    subscripts return to canonical affine shape. *)
let run (v : vector) (k : kernel) : kernel =
  match effective k v with
  | [] -> Simplify.run k
  | v -> Simplify.run { k with k_body = unroll_body v k.k_body }

(** Like {!run}, staged through [cache]: the factors of the outer spine
    loops are applied first (raw, unsimplified) and that intermediate
    body is memoized, so a point that shares the previous point's outer
    prefix unrolls only the innermost axis. Staging is exact — unrolling
    is applied loop-by-loop outside-in either way, and simplification
    runs once at the end in both paths — so the result is the same
    kernel {!run} returns. The boolean reports whether the cached prefix
    was reused (the [delta_reuses] counter). *)
let run_delta ~(cache : cache) (v : vector) (k : kernel) : kernel * bool =
  match effective ~cache k v with
  | [] -> (Simplify.run k, false)
  | ve -> (
      let inner_index =
        match List.rev (Loop_nest.spine k.k_body) with
        | [] -> ""
        | l :: _ -> l.index
      in
      let outer = List.filter (fun (i, _) -> i <> inner_index) ve in
      let inner = List.filter (fun (i, _) -> i = inner_index) ve in
      match outer with
      | [] -> (Simplify.run { k with k_body = unroll_body ve k.k_body }, false)
      | _ ->
          let mid, reused =
            match cache.outer with
            | Some (k0, o0, body) when k0 == k && o0 = outer -> (body, true)
            | _ ->
                let body = unroll_body outer k.k_body in
                cache.outer <- Some (k, outer, body);
                (body, false)
          in
          let body = if inner = [] then mid else unroll_body inner mid in
          (Simplify.run { k with k_body = body }, reused))
