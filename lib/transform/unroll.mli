(** Unroll-and-jam (Section 4 of the paper).

    Unrolling a loop by factor [u] replaces its body with [u] copies, the
    k-th with [index := index + k*step], and multiplies the step by [u];
    copies of an inner loop are jammed (fused) into one loop, exposing
    operator and memory parallelism across outer iterations. Factors that
    do not divide the trip count leave an epilogue loop. *)

open Ir

(** Unroll factor per loop index; unlisted loops keep factor 1. *)
type vector = (string * int) list

val factor : vector -> string -> int
val product : vector -> int

(** Clamp factors to trip counts and to the nest spine; round down to
    divisors when [divisors_only]. *)
val clamp : ?divisors_only:bool -> Ast.stmt list -> vector -> vector

(** Unroll-and-jam is legal when fusing the unrolled outer iterations
    does not reverse any dependence. Conservative: coupled distances
    refuse. *)
val jam_legal : Ast.kernel -> bool

(** Single-entry staged-unroll cache for one source kernel: the jamming
    legality verdict and the raw outer-prefix-unrolled body. Keyed by
    physical equality on the source kernel, so it never serves stale
    data across kernels; create one per evaluation store. *)
type cache

val cache : unit -> cache

(** The vector {!run} would actually apply: clamped to trip counts and
    reduced to the innermost loop when jamming is not provably legal.
    With [cache], the legality verdict is reused across design points. *)
val effective : ?cache:cache -> Ast.kernel -> vector -> vector

(** Apply a vector, then simplify back to canonical subscripts. When
    jamming is not provably legal, only the innermost spine loop is
    unrolled (plain unrolling never reorders a dependence). *)
val run : vector -> Ast.kernel -> Ast.kernel

(** Like {!run}, staged through [cache]: outer spine factors are applied
    first and memoized raw, so a design point sharing the previous
    point's outer prefix unrolls only the innermost axis. Staging is
    exact (unrolling proceeds loop-by-loop outside-in either way, and
    simplification runs once at the end in both paths), so the kernel is
    the one {!run} returns. The boolean reports a prefix reuse. *)
val run_delta : cache:cache -> vector -> Ast.kernel -> Ast.kernel * bool
