(** Unroll-and-jam (Section 4 of the paper).

    Unrolling a loop by factor [u] replaces its body with [u] copies, the
    k-th with [index := index + k*step], and multiplies the step by [u];
    copies of an inner loop are jammed (fused) into one loop, exposing
    operator and memory parallelism across outer iterations. Factors that
    do not divide the trip count leave an epilogue loop. *)

open Ir

(** Unroll factor per loop index; unlisted loops keep factor 1. *)
type vector = (string * int) list

val factor : vector -> string -> int
val product : vector -> int

(** Clamp factors to trip counts and to the nest spine; round down to
    divisors when [divisors_only]. *)
val clamp : ?divisors_only:bool -> Ast.stmt list -> vector -> vector

(** Unroll-and-jam is legal when fusing the unrolled outer iterations
    does not reverse any dependence. Conservative: coupled distances
    refuse. *)
val jam_legal : Ast.kernel -> bool

(** Apply a vector, then simplify back to canonical subscripts. When
    jamming is not provably legal, only the innermost spine loop is
    unrolled (plain unrolling never reorders a dependence). *)
val run : vector -> Ast.kernel -> Ast.kernel
