(** Fresh-name generation that avoids every identifier already present in
    a kernel (arrays, scalars, loop indices). *)

type t

val of_kernel : Ir.Ast.kernel -> t
val reserve : t -> string -> unit

(** [fresh t base] returns [base] if unused, otherwise [base_0],
    [base_1], ... The result is reserved. *)
val fresh : t -> string -> string
