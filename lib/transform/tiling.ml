(** Loop tiling (Section 5.4 of the paper).

    Tiling bounds the number of on-chip registers scalar replacement
    introduces: strip-mining a bank's varying loop and moving the tile
    loop outside the reuse carrier shrinks the localised iteration space
    — and with it the bank — to the tile size, at the cost of reloading
    the bank once per tile. *)

open Ir
open Ast

(** [strip_mine ~index ~tile body] splits the spine loop [index] into a
    tile loop [index_t] (stride [tile * step]) and an intra-tile loop
    (the original name, rebased to the tile origin):

    {v for (i = lo; i < hi; i += s)          for (i_t = lo; i_t < hi; i_t += T*s)
         B(i)                         ==>      for (i_l = 0; i_l < T; i_l++)
                                                 B(i_t + i_l*s)              v}

    Iteration order is unchanged, so strip-mining alone is always legal.
    [tile] must divide the trip count (clamped down to a divisor
    otherwise). Returns the rewritten body and the tile-loop index. *)
let strip_mine ~index ~tile names (body : stmt list) : stmt list * string option
    =
  let tile_index = ref None in
  let rec go body =
    List.map
      (fun s ->
        match s with
        | For l when l.index = index && Ast.loop_trip l > 1 ->
            let trip = Ast.loop_trip l in
            let tile =
              let t = max 1 (min tile trip) in
              let rec down t = if trip mod t = 0 then t else down (t - 1) in
              down t
            in
            if tile <= 1 || tile >= trip then For l
            else begin
              let it = Names.fresh names (index ^ "_t") in
              let il = Names.fresh names (index ^ "_l") in
              tile_index := Some it;
              let inner_body =
                Ast.subst_var l.index
                  (Bin (Add, Var it, Bin (Mul, Var il, Int l.step)))
                  l.body
              in
              For
                {
                  index = it;
                  lo = l.lo;
                  hi = l.hi;
                  step = tile * l.step;
                  body =
                    [ For
                        { index = il; lo = 0; hi = tile; step = 1;
                          body = inner_body; l_span = l.l_span } ];
                  l_span = l.l_span;
                }
            end
        | For l -> For { l with body = go l.body }
        | If (c, t, e) -> If (c, go t, go e)
        | Assign _ | Rotate _ -> s)
      body
  in
  let body = go body in
  (body, !tile_index)

(** Interchange two *adjacent* perfectly nested spine loops, the outer
    one named [outer]. Legality: no dependence whose distance vector
    becomes lexicographically negative, i.e. no dependence with distance
    [(+, -)] on the pair. Returns [None] when illegal or when the loops
    are not adjacent/perfect. *)
let interchange ~outer (k : kernel) : kernel option =
  let deps = Analysis.Dependence.dependences k k.k_body in
  let spine = Loop_nest.spine k.k_body in
  let inner_name =
    let rec go = function
      | (a : loop) :: (b : loop) :: _ when a.index = outer -> Some b.index
      | _ :: rest -> go rest
      | [] -> None
    in
    go spine
  in
  match inner_name with
  | None -> None
  | Some inner_name ->
      let legal =
        List.for_all
          (fun (d : Analysis.Dependence.dep) ->
            let entry idx =
              let rec go loops entries =
                match (loops, entries) with
                | (l : loop) :: ls, e :: es ->
                    if l.index = idx then Some e else go ls es
                | _ -> None
              in
              go d.loops d.distance
            in
            match (entry outer, entry inner_name) with
            | Some (Analysis.Dependence.Exact o), Some (Analysis.Dependence.Exact i) ->
                not (o > 0 && i < 0)
            | Some (Analysis.Dependence.Exact 0), _ | _, Some (Analysis.Dependence.Exact 0)
              ->
                true
            | None, _ | _, None -> true
            | _ -> false (* Any/Coupled on either: conservative *))
          deps
      in
      if not legal then None
      else begin
        let rec go body =
          List.map
            (fun s ->
              match s with
              | For l when l.index = outer -> (
                  match l.body with
                  | [ For m ] -> For { m with body = [ For { l with body = m.body } ] }
                  | _ -> For { l with body = go l.body })
              | For l -> For { l with body = go l.body }
              | If (c, t, e) -> If (c, go t, go e)
              | Assign _ | Rotate _ -> s)
            body
        in
        let body = go k.k_body in
        if body = k.k_body then None else Some { k with k_body = body }
      end

(** Best-effort register-pressure reduction: strip-mine the loop [index]
    to [tile] iterations and bubble the tile loop as far out as
    dependence legality allows. The register banks a subsequent scalar
    replacement builds over [index] then hold [tile] elements instead of
    the full trip count. *)
let tile_for_registers ~index ~tile (k : kernel) : kernel =
  let names = Names.of_kernel k in
  let body, tile_idx = strip_mine ~index ~tile names k.k_body in
  match tile_idx with
  | None -> k
  | Some it ->
      let k = Loop_nest.validate { k with k_body = body } in
      (* Bubble the tile loop outward while legal. *)
      let rec bubble k =
        let spine = Loop_nest.spine k.k_body in
        let above =
          let rec go prev = function
            | (l : loop) :: _ when l.index = it -> prev
            | l :: rest -> go (Some l) rest
            | [] -> None
          in
          go None spine
        in
        match above with
        | None -> k
        | Some outer -> (
            match interchange ~outer:outer.index k with
            | Some k' -> bubble k'
            | None -> k)
      in
      bubble k
