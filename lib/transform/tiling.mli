(** Loop tiling (Section 5.4 of the paper): bounds the register pressure
    of scalar replacement by strip-mining a bank's varying loop and
    moving the tile loop outside the reuse carrier. *)

open Ir

(** [strip_mine ~index ~tile names body] splits the spine loop into a
    tile loop (stride [tile * step]) and a unit intra-tile loop; always
    legal (iteration order unchanged). Non-divisor tiles are rounded down
    to a divisor. Returns the rewritten body and the tile loop's index
    when one was created. *)
val strip_mine :
  index:string ->
  tile:int ->
  Names.t ->
  Ast.stmt list ->
  Ast.stmt list * string option

(** Interchange two adjacent perfectly nested spine loops, the outer one
    named [outer]. [None] when not adjacent/perfect or when a dependence
    distance would turn lexicographically negative. *)
val interchange : outer:string -> Ast.kernel -> Ast.kernel option

(** Strip-mine [index] to [tile] iterations and bubble the tile loop as
    far out as dependences allow; banks over [index] built by a later
    scalar replacement then hold [tile] elements. *)
val tile_for_registers : index:string -> tile:int -> Ast.kernel -> Ast.kernel
