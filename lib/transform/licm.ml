(** Loop-invariant code motion for pure expressions.

    Hoists non-trivial subexpressions that are invariant with respect to a
    loop into fresh temporaries computed before the loop. Array reads are
    hoistable only when no write in the loop may touch the array (the
    invariant-access *memory* motion with store sinking lives in
    {!Scalar_replace}, which also handles the write side). *)

open Ir
open Ast

let scalars_assigned_in body =
  Ast.fold_stmts
    ~stmt:(fun acc s ->
      match s with
      | Assign (Lvar v, _) -> v :: acc
      | Rotate rs -> rs @ acc
      | _ -> acc)
    ~expr:(fun acc _ -> acc)
    [] body

let arrays_written_in body =
  Ast.fold_stmts
    ~stmt:(fun acc s ->
      match s with Assign (Larr (a, _), _) -> a :: acc | _ -> acc)
    ~expr:(fun acc _ -> acc)
    [] body

(** Is [e] invariant in the loop and side-effect free? Indices of loops
    nested inside also vary per iteration, so they count as variant.
    Membership sets are hashed: the assigned-scalar list of a heavily
    unrolled body is as long as the body itself, and this test runs per
    expression node. *)
let invariant ~variant ~assigned ~written e =
  let rec go e =
    match e with
    | Int _ -> true
    | Var v -> (not (Hashtbl.mem variant v)) && not (Hashtbl.mem assigned v)
    | Arr (a, subs) -> (not (Hashtbl.mem written a)) && List.for_all go subs
    | Bin (_, a, b) -> go a && go b
    | Un (_, a) -> go a
    | Cond (c, t, e) -> go c && go t && go e
  in
  go e

let set_of_list l =
  let t = Hashtbl.create (max 16 (List.length l)) in
  List.iter (fun x -> Hashtbl.replace t x ()) l;
  t

(** Worth hoisting: anything costlier than a leaf or a leaf-plus-constant. *)
let non_trivial e =
  match e with
  | Int _ | Var _ -> false
  | Bin ((Add | Sub), Var _, Int _) -> false
  | _ -> true

let run (k : kernel) : kernel =
  let names = Names.of_kernel k in
  let new_scalars = ref [] in
  let declare ty =
    let v = Names.fresh names "t" in
    new_scalars :=
      { s_name = v; s_elem = ty; s_kind = Temp; s_span = None } :: !new_scalars;
    v
  in
  (* Innermost-first over statement lists, so that an expression hoisted
     out of the inner loop can be hoisted again out of the outer one. *)
  let rec body_stmts (body : stmt list) : stmt list =
    List.concat_map
      (fun s ->
        match s with
        | For l ->
            let l = { l with body = body_stmts l.body } in
            let pre, l = hoist_out l in
            pre @ [ For l ]
        | If (c, t, e) -> [ If (c, body_stmts t, body_stmts e) ]
        | Assign _ | Rotate _ -> [ s ])
      body
  and hoist_out (l : loop) : stmt list * loop =
    let assigned = set_of_list (scalars_assigned_in l.body) in
    let written = set_of_list (arrays_written_in l.body) in
    let variant = set_of_list (l.index :: Ast.bound_indices l.body) in
    let hoisted = ref [] in
    let rec rewrite e =
      if non_trivial e && invariant ~variant ~assigned ~written e then begin
        match List.assoc_opt e !hoisted with
        | Some v -> Var v
        | None ->
            let v = declare (Ast.result_type k e) in
            hoisted := (e, v) :: !hoisted;
            Var v
      end
      else
        match e with
        | Int _ | Var _ -> e
        | Arr (a, subs) ->
            let subs' = Ast.map_sharing rewrite subs in
            if subs' == subs then e else Arr (a, subs')
        | Bin (op, a, b) ->
            let a' = rewrite a and b' = rewrite b in
            if a' == a && b' == b then e else Bin (op, a', b')
        | Un (op, a) ->
            let a' = rewrite a in
            if a' == a then e else Un (op, a')
        | Cond (c, t, e') ->
            let c' = rewrite c and t' = rewrite t and e'' = rewrite e' in
            if c' == c && t' == t && e'' == e' then e else Cond (c', t', e'')
    in
    let rec rw_stmt s =
      match s with
      | Assign (Lvar v, e) ->
          let e' = rewrite e in
          if e' == e then s else Assign (Lvar v, e')
      | Assign (Larr (a, subs), e) ->
          let subs' = Ast.map_sharing rewrite subs in
          let e' = rewrite e in
          if subs' == subs && e' == e then s else Assign (Larr (a, subs'), e')
      | If (c, t, e) ->
          let c' = rewrite c in
          let t' = Ast.map_sharing rw_stmt t in
          let e' = Ast.map_sharing rw_stmt e in
          if c' == c && t' == t && e' == e then s else If (c', t', e')
      | For _ ->
          (* Inner loops were processed on the way up; expressions that
             could leave them already sit directly in this body. *)
          s
      | Rotate _ -> s
    in
    let body = Ast.map_sharing rw_stmt l.body in
    let pre = List.rev_map (fun (e, v) -> Assign (Lvar v, e)) !hoisted in
    (pre, { l with body })
  in
  let body = body_stmts k.k_body in
  { k with k_body = body; k_scalars = k.k_scalars @ List.rev !new_scalars }
