(** Loop-invariant code motion for pure expressions.

    Hoists non-trivial subexpressions that are invariant with respect to a
    loop into fresh temporaries computed before the loop. Array reads are
    hoistable only when no write in the loop may touch the array (the
    invariant-access *memory* motion with store sinking lives in
    {!Scalar_replace}, which also handles the write side). *)

open Ir
open Ast

let scalars_assigned_in body =
  Ast.fold_stmts
    ~stmt:(fun acc s ->
      match s with
      | Assign (Lvar v, _) -> v :: acc
      | Rotate rs -> rs @ acc
      | _ -> acc)
    ~expr:(fun acc _ -> acc)
    [] body

let arrays_written_in body =
  Ast.fold_stmts
    ~stmt:(fun acc s ->
      match s with Assign (Larr (a, _), _) -> a :: acc | _ -> acc)
    ~expr:(fun acc _ -> acc)
    [] body

(** Is [e] invariant in the loop and side-effect free? Indices of loops
    nested inside also vary per iteration, so they count as variant. *)
let invariant ~variant ~assigned ~written e =
  let rec go e =
    match e with
    | Int _ -> true
    | Var v -> (not (List.mem v variant)) && not (List.mem v assigned)
    | Arr (a, subs) -> (not (List.mem a written)) && List.for_all go subs
    | Bin (_, a, b) -> go a && go b
    | Un (_, a) -> go a
    | Cond (c, t, e) -> go c && go t && go e
  in
  go e

(** Worth hoisting: anything costlier than a leaf or a leaf-plus-constant. *)
let non_trivial e =
  match e with
  | Int _ | Var _ -> false
  | Bin ((Add | Sub), Var _, Int _) -> false
  | _ -> true

let run (k : kernel) : kernel =
  let names = Names.of_kernel k in
  let new_scalars = ref [] in
  let declare ty =
    let v = Names.fresh names "t" in
    new_scalars :=
      { s_name = v; s_elem = ty; s_kind = Temp; s_span = None } :: !new_scalars;
    v
  in
  (* Innermost-first over statement lists, so that an expression hoisted
     out of the inner loop can be hoisted again out of the outer one. *)
  let rec body_stmts (body : stmt list) : stmt list =
    List.concat_map
      (fun s ->
        match s with
        | For l ->
            let l = { l with body = body_stmts l.body } in
            let pre, l = hoist_out l in
            pre @ [ For l ]
        | If (c, t, e) -> [ If (c, body_stmts t, body_stmts e) ]
        | Assign _ | Rotate _ -> [ s ])
      body
  and hoist_out (l : loop) : stmt list * loop =
    let assigned = scalars_assigned_in l.body in
    let written = arrays_written_in l.body in
    let variant = l.index :: Ast.bound_indices l.body in
    let hoisted = ref [] in
    let rec rewrite e =
      if non_trivial e && invariant ~variant ~assigned ~written e then begin
        match List.assoc_opt e !hoisted with
        | Some v -> Var v
        | None ->
            let v = declare (Ast.result_type k e) in
            hoisted := (e, v) :: !hoisted;
            Var v
      end
      else
        match e with
        | Int _ | Var _ -> e
        | Arr (a, subs) -> Arr (a, List.map rewrite subs)
        | Bin (op, a, b) -> Bin (op, rewrite a, rewrite b)
        | Un (op, a) -> Un (op, rewrite a)
        | Cond (c, t, e') -> Cond (rewrite c, rewrite t, rewrite e')
    in
    let rec rw_stmt s =
      match s with
      | Assign (Lvar v, e) -> Assign (Lvar v, rewrite e)
      | Assign (Larr (a, subs), e) ->
          Assign (Larr (a, List.map rewrite subs), rewrite e)
      | If (c, t, e) -> If (rewrite c, List.map rw_stmt t, List.map rw_stmt e)
      | For inner ->
          (* Inner loops were processed on the way up; expressions that
             could leave them already sit directly in this body. *)
          For inner
      | Rotate rs -> Rotate rs
    in
    let body = List.map rw_stmt l.body in
    let pre = List.rev_map (fun (e, v) -> Assign (Lvar v, e)) !hoisted in
    (pre, { l with body })
  in
  let body = body_stmts k.k_body in
  { k with k_body = body; k_scalars = k.k_scalars @ List.rev !new_scalars }
