(** Loop normalization: rewrite every loop to run from 0 with stride 1,
    substituting [index := lo + step*index] in the body (the paper's final
    generated code, Figure 1(d), is normalized). Custom data layout
    requires it: after normalization the distribution modulus divides
    every subscript coefficient. *)

open Ir
open Ast

let rec norm_stmt (s : stmt) : stmt =
  match s with
  | For l ->
      let trip = Ast.loop_trip l in
      if l.lo = 0 && l.step = 1 then For { l with body = List.map norm_stmt l.body }
      else begin
        let body =
          Ast.subst_var l.index
            (Bin (Add, Int l.lo, Bin (Mul, Int l.step, Var l.index)))
            l.body
        in
        For
          { index = l.index; lo = 0; hi = trip; step = 1;
            body = List.map norm_stmt body; l_span = l.l_span }
      end
  | If (c, t, e) -> If (c, List.map norm_stmt t, List.map norm_stmt e)
  | Assign _ | Rotate _ -> s

let run (k : kernel) : kernel =
  Simplify.run { k with k_body = List.map norm_stmt k.k_body }
