(** The code-transformation pipeline applied to every design point the
    search visits: unroll-and-jam at the candidate unroll vector, scalar
    replacement, loop peeling to specialise first-iteration loads, LICM,
    and cleanup simplification (Figure 3 of the paper; data layout is a
    separate stage, see {!Layout}). *)

open Ir

type options = {
  vector : Unroll.vector;
  scalar : Scalar_replace.config;
  peel : bool;  (** peel carrier / leading iterations to despecialise guards *)
  licm : bool;
  tile : (string * int) option;
      (** strip-mine this loop to the given tile before replacement
          (register-pressure control, Section 5.4) *)
}

let default =
  {
    vector = [];
    scalar = Scalar_replace.default_config;
    peel = true;
    licm = true;
    tile = None;
  }

(* ------------------------------------------------------------------ *)
(* First-class design-point configurations *)

type config = {
  vector : Unroll.vector;  (** unroll factor per spine loop *)
  tile : (string * int) option;  (** strip-mine this loop to this tile *)
  scalar_replace : bool;
  peel : bool;
  licm : bool;
}

(** Whether a scalar-replacement configuration performs any replacement
    at all — the boolean the joint design space toggles. *)
let scalar_enabled (c : Scalar_replace.config) =
  c.Scalar_replace.max_registers > 0

(** The scalar-replacement configuration [apply_config] uses for a
    design point with replacement off: register budget zero, no
    cross-loop banks, no chains (the ablation driver's no-replace
    setting). Every other knob of [base] is preserved so the off-state
    is a function of the base options alone. *)
let scalar_disabled (base : Scalar_replace.config) =
  {
    base with
    Scalar_replace.across_loops = false;
    chains = false;
    max_registers = 0;
  }

(** Project the searchable knobs out of full pipeline options. *)
let config_of_options (o : options) : config =
  {
    vector = o.vector;
    tile = o.tile;
    scalar_replace = scalar_enabled o.scalar;
    peel = o.peel;
    licm = o.licm;
  }

(** Concrete pipeline options for one design point: the config's knobs
    over [base]'s non-searched parameters (the scalar-replacement
    budget, chain span, ...). Inverse of {!config_of_options} on the
    searched fields. *)
let apply_config ~(base : options) (c : config) : options =
  {
    vector = c.vector;
    scalar =
      (if c.scalar_replace then
         if scalar_enabled base.scalar then base.scalar
         else Scalar_replace.default_config
       else scalar_disabled base.scalar);
    peel = c.peel;
    licm = c.licm;
    tile = c.tile;
  }

let pp_config fmt (c : config) =
  Format.fprintf fmt "(%s%s | %s%s%s)"
    (String.concat ", "
       (List.map (fun (i, u) -> Printf.sprintf "%s=%d" i u) c.vector))
    (match c.tile with
    | None -> ""
    | Some (l, t) -> Printf.sprintf " | tile %s:%d" l t)
    (if c.scalar_replace then "sr+" else "sr-")
    (if c.peel then " peel+" else " peel-")
    (if c.licm then " licm+" else " licm-")

let config_to_string (c : config) = Format.asprintf "%a" pp_config c

type result = {
  kernel : Ast.kernel;
  report : Scalar_replace.report;
  options : options;
  delta_reused : bool;
      (** the unroll stage rebuilt only the innermost axis, reusing the
          delta cache's outer-prefix body (always [false] without
          [?delta]) *)
}

type stage = Tile | Unroll_jam | Scalar_replace | Peel | Licm | Simplify

let stage_name = function
  | Tile -> "tile"
  | Unroll_jam -> "unroll"
  | Scalar_replace -> "scalar-replace"
  | Peel -> "peel"
  | Licm -> "licm"
  | Simplify -> "simplify"

exception
  Stage_error of {
    stage : stage;
    kernel : string;  (** kernel name *)
    message : string;
  }

let () =
  Printexc.register_printer (function
    | Stage_error { stage; kernel; message } ->
        Some
          (Printf.sprintf "Transform.Pipeline.Stage_error(%s, %s): %s"
             (stage_name stage) kernel message)
    | _ -> None)

let apply ?observe ?delta (opts : options) (k : Ast.kernel) : result =
  let kname = k.Ast.k_name in
  (* Run one stage: a [Failure]/[Invalid_argument] escaping a rewrite
     (e.g. a non-positive stride reaching [Ast.loop_trip] or a
     [Loop_nest.validate] rejection) is re-raised as a [Stage_error]
     naming the stage and kernel; the checker's post-hoc validation hook
     sees every stage boundary through [observe]. *)
  let stage tag f k =
    let k' =
      try f k
      with Failure msg | Invalid_argument msg ->
        raise (Stage_error { stage = tag; kernel = kname; message = msg })
    in
    (match observe with
    | Some obs -> obs tag ~before:k ~after:k'
    | None -> ());
    k'
  in
  let k =
    match opts.tile with
    | Some (index, tile) ->
        stage Tile
          (fun k ->
            (* A tile index naming no loop at all is a configuration
               error, not a silent no-op: the joint search relies on
               illegal configurations failing loudly ([Stage_error]) so
               its legality pruning is testable. A named loop the
               strip-mine cannot split (trip <= tile, trip 1) is still a
               no-op — the tile is then merely redundant. *)
            let rec has_loop body =
              List.exists
                (function
                  | Ast.For l ->
                      l.Ast.index = index || has_loop l.Ast.body
                  | Ast.If (_, t, e) -> has_loop t || has_loop e
                  | Ast.Assign _ | Ast.Rotate _ -> false)
                body
            in
            if not (has_loop k.Ast.k_body) then
              failwith
                (Printf.sprintf "tile index '%s' names no loop" index);
            Tiling.tile_for_registers ~index ~tile k)
          k
    | None -> k
  in
  let delta_reused = ref false in
  let k =
    stage Unroll_jam
      (fun k ->
        match delta with
        | Some cache ->
            let k, reused = Unroll.run_delta ~cache opts.vector k in
            if reused then delta_reused := true;
            k
        | None -> Unroll.run opts.vector k)
      k
  in
  let report = ref Scalar_replace.empty_report in
  let k =
    stage Scalar_replace
      (fun k ->
        let k, r = Scalar_replace.run ~config:opts.scalar k in
        report := r;
        k)
      k
  in
  let report = !report in
  let k =
    if
      (not opts.peel)
      (* Nothing to peel: the stage would only replay the final
         range-fold, so make the no-peel spelling bit-identical to
         [peel = false] (the joint pruner canonicalizes on this). *)
      || report.Scalar_replace.innermost_peels = 0
         && report.Scalar_replace.carriers = []
    then k
    else
      stage Peel
        (fun k ->
          (* Peel leading iterations of the innermost loop first (while
             the spine is still intact) to strip the chain refill guards;
             peeling replicates the innermost body, so bound it to small
             counts. *)
          (* All peels are raw [peel_first] edits; one simplification
             pass at the end folds every peeled copy at once — peeling
             itself never needs the intermediate folds (it matches the
             [For] node and the syntactic [index == lo] guards, both of
             which survive unsimplified), and one pass over the final
             body costs a fraction of one pass per peel. *)
          let k =
            if report.Scalar_replace.innermost_peels > 0
               && report.Scalar_replace.innermost_peels <= 4
            then begin
              let rec peel_n n k =
                if n = 0 then k
                else
                  match List.rev (Loop_nest.spine k.Ast.k_body) with
                  | [] -> k
                  | inner :: _ ->
                      peel_n (n - 1)
                        { k with
                          Ast.k_body =
                            Peel.peel_first ~index:inner.Ast.index k.Ast.k_body
                        }
              in
              peel_n report.Scalar_replace.innermost_peels k
            end
            else k
          in
          (* Then peel the first iteration of every bank carrier. *)
          let k =
            List.fold_left
              (fun k index ->
                { k with Ast.k_body = Peel.peel_first ~index k.Ast.k_body })
              k report.Scalar_replace.carriers
          in
          Simplify.fold_ranges k)
        k
  in
  let k = if opts.licm then stage Licm Licm.run k else k in
  let k = stage Simplify Simplify.run k in
  { kernel = k; report; options = opts; delta_reused = !delta_reused }
