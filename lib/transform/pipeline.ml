(** The code-transformation pipeline applied to every design point the
    search visits: unroll-and-jam at the candidate unroll vector, scalar
    replacement, loop peeling to specialise first-iteration loads, LICM,
    and cleanup simplification (Figure 3 of the paper; data layout is a
    separate stage, see {!Layout}). *)

open Ir

type options = {
  vector : Unroll.vector;
  scalar : Scalar_replace.config;
  peel : bool;  (** peel carrier / leading iterations to despecialise guards *)
  licm : bool;
  tile : (string * int) option;
      (** strip-mine this loop to the given tile before replacement
          (register-pressure control, Section 5.4) *)
}

let default =
  {
    vector = [];
    scalar = Scalar_replace.default_config;
    peel = true;
    licm = true;
    tile = None;
  }

type result = {
  kernel : Ast.kernel;
  report : Scalar_replace.report;
  options : options;
  delta_reused : bool;
      (** the unroll stage rebuilt only the innermost axis, reusing the
          delta cache's outer-prefix body (always [false] without
          [?delta]) *)
}

type stage = Tile | Unroll_jam | Scalar_replace | Peel | Licm | Simplify

let stage_name = function
  | Tile -> "tile"
  | Unroll_jam -> "unroll"
  | Scalar_replace -> "scalar-replace"
  | Peel -> "peel"
  | Licm -> "licm"
  | Simplify -> "simplify"

exception
  Stage_error of {
    stage : stage;
    kernel : string;  (** kernel name *)
    message : string;
  }

let () =
  Printexc.register_printer (function
    | Stage_error { stage; kernel; message } ->
        Some
          (Printf.sprintf "Transform.Pipeline.Stage_error(%s, %s): %s"
             (stage_name stage) kernel message)
    | _ -> None)

let apply ?observe ?delta (opts : options) (k : Ast.kernel) : result =
  let kname = k.Ast.k_name in
  (* Run one stage: a [Failure]/[Invalid_argument] escaping a rewrite
     (e.g. a non-positive stride reaching [Ast.loop_trip] or a
     [Loop_nest.validate] rejection) is re-raised as a [Stage_error]
     naming the stage and kernel; the checker's post-hoc validation hook
     sees every stage boundary through [observe]. *)
  let stage tag f k =
    let k' =
      try f k
      with Failure msg | Invalid_argument msg ->
        raise (Stage_error { stage = tag; kernel = kname; message = msg })
    in
    (match observe with
    | Some obs -> obs tag ~before:k ~after:k'
    | None -> ());
    k'
  in
  let k =
    match opts.tile with
    | Some (index, tile) ->
        stage Tile (Tiling.tile_for_registers ~index ~tile) k
    | None -> k
  in
  let delta_reused = ref false in
  let k =
    stage Unroll_jam
      (fun k ->
        match delta with
        | Some cache ->
            let k, reused = Unroll.run_delta ~cache opts.vector k in
            if reused then delta_reused := true;
            k
        | None -> Unroll.run opts.vector k)
      k
  in
  let report = ref Scalar_replace.empty_report in
  let k =
    stage Scalar_replace
      (fun k ->
        let k, r = Scalar_replace.run ~config:opts.scalar k in
        report := r;
        k)
      k
  in
  let report = !report in
  let k =
    if not opts.peel then k
    else
      stage Peel
        (fun k ->
          (* Peel leading iterations of the innermost loop first (while
             the spine is still intact) to strip the chain refill guards;
             peeling replicates the innermost body, so bound it to small
             counts. *)
          (* All peels are raw [peel_first] edits; one simplification
             pass at the end folds every peeled copy at once — peeling
             itself never needs the intermediate folds (it matches the
             [For] node and the syntactic [index == lo] guards, both of
             which survive unsimplified), and one pass over the final
             body costs a fraction of one pass per peel. *)
          let k =
            if report.Scalar_replace.innermost_peels > 0
               && report.Scalar_replace.innermost_peels <= 4
            then begin
              let rec peel_n n k =
                if n = 0 then k
                else
                  match List.rev (Loop_nest.spine k.Ast.k_body) with
                  | [] -> k
                  | inner :: _ ->
                      peel_n (n - 1)
                        { k with
                          Ast.k_body =
                            Peel.peel_first ~index:inner.Ast.index k.Ast.k_body
                        }
              in
              peel_n report.Scalar_replace.innermost_peels k
            end
            else k
          in
          (* Then peel the first iteration of every bank carrier. *)
          let k =
            List.fold_left
              (fun k index ->
                { k with Ast.k_body = Peel.peel_first ~index k.Ast.k_body })
              k report.Scalar_replace.carriers
          in
          Simplify.fold_ranges k)
        k
  in
  let k = if opts.licm then stage Licm Licm.run k else k in
  let k = stage Simplify Simplify.run k in
  { kernel = k; report; options = opts; delta_reused = !delta_reused }
