(** The code-transformation pipeline applied to every design point the
    search visits: unroll-and-jam at the candidate unroll vector, scalar
    replacement, loop peeling to specialise first-iteration loads, LICM,
    and cleanup simplification (Figure 3 of the paper; data layout is a
    separate stage, see {!Layout}). *)

open Ir

type options = {
  vector : Unroll.vector;
  scalar : Scalar_replace.config;
  peel : bool;  (** peel carrier / leading iterations to despecialise guards *)
  licm : bool;
  tile : (string * int) option;
      (** strip-mine this loop to the given tile before replacement
          (register-pressure control, Section 5.4) *)
}

let default =
  {
    vector = [];
    scalar = Scalar_replace.default_config;
    peel = true;
    licm = true;
    tile = None;
  }

type result = {
  kernel : Ast.kernel;
  report : Scalar_replace.report;
  options : options;
}

let apply (opts : options) (k : Ast.kernel) : result =
  let k = match opts.tile with
    | Some (index, tile) -> Tiling.tile_for_registers ~index ~tile k
    | None -> k
  in
  let k = Unroll.run opts.vector k in
  let k, report = Scalar_replace.run ~config:opts.scalar k in
  let k =
    if not opts.peel then k
    else begin
      (* Peel leading iterations of the innermost loop first (while the
         spine is still intact) to strip the chain refill guards; peeling
         replicates the innermost body, so bound it to small counts. *)
      let k =
        if report.innermost_peels > 0 && report.innermost_peels <= 4 then begin
          let rec peel_n n k =
            if n = 0 then k
            else
              match List.rev (Loop_nest.spine k.Ast.k_body) with
              | [] -> k
              | inner :: _ -> peel_n (n - 1) (Peel.run ~index:inner.index k)
          in
          peel_n report.innermost_peels k
        end
        else k
      in
      (* Then peel the first iteration of every bank carrier. *)
      let k =
        List.fold_left (fun k index -> Peel.run ~index k) k report.carriers
      in
      Simplify.fold_ranges k
    end
  in
  let k = if opts.licm then Licm.run k else k in
  let k = Simplify.run k in
  { kernel = k; report; options = opts }
