(** Loop normalization: rewrite every loop to run from 0 with stride 1,
    substituting [index := lo + step*index] in the body. Custom data
    layout requires it: after normalization the distribution modulus
    divides every subscript coefficient. *)

val run : Ir.Ast.kernel -> Ir.Ast.kernel
