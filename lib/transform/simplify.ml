(** Constant folding and algebraic simplification.

    Unrolling substitutes [i + k] into subscripts, producing shapes like
    [(i + 0)] and [2 * (i + 1)]; simplification restores the compact
    affine forms every later pass pattern-matches on. Branches with
    constant conditions (left behind by peeling) are folded away. *)

open Ir
open Ast

let rec fold_expr (e : expr) : expr =
  match e with
  | Int _ | Var _ -> e
  | Arr (a, subs) -> Arr (a, List.map fold_expr subs)
  | Un (op, a) -> (
      let a = fold_expr a in
      match (op, a) with
      | Neg, Int n -> Int (-n)
      | Not, Int n -> Int (if n = 0 then 1 else 0)
      | Bnot, Int n -> Int (lnot n)
      | Abs, Int n -> Int (abs n)
      | Neg, Un (Neg, x) -> x
      | _ -> Un (op, a))
  | Cond (c, t, el) -> (
      let c = fold_expr c in
      match c with
      | Int 0 -> fold_expr el
      | Int _ -> fold_expr t
      | _ -> Cond (c, fold_expr t, fold_expr el))
  | Bin (op, a, b) -> (
      let a = fold_expr a and b = fold_expr b in
      match (op, a, b) with
      | Add, Int x, Int y -> Int (x + y)
      | Sub, Int x, Int y -> Int (x - y)
      | Mul, Int x, Int y -> Int (x * y)
      | Div, Int x, Int y when y <> 0 -> Int (x / y)
      | Mod, Int x, Int y when y <> 0 -> Int (x mod y)
      | Lt, Int x, Int y -> Int (if x < y then 1 else 0)
      | Le, Int x, Int y -> Int (if x <= y then 1 else 0)
      | Gt, Int x, Int y -> Int (if x > y then 1 else 0)
      | Ge, Int x, Int y -> Int (if x >= y then 1 else 0)
      | Eq, Int x, Int y -> Int (if x = y then 1 else 0)
      | Ne, Int x, Int y -> Int (if x <> y then 1 else 0)
      | And, Int x, Int y -> Int (if x <> 0 && y <> 0 then 1 else 0)
      | Or, Int x, Int y -> Int (if x <> 0 || y <> 0 then 1 else 0)
      | Band, Int x, Int y -> Int (x land y)
      | Bor, Int x, Int y -> Int (x lor y)
      | Bxor, Int x, Int y -> Int (x lxor y)
      | Shl, Int x, Int y when y >= 0 -> Int (x lsl y)
      | Shr, Int x, Int y when y >= 0 -> Int (x asr y)
      | Min, Int x, Int y -> Int (min x y)
      | Max, Int x, Int y -> Int (max x y)
      | Add, x, Int 0 | Add, Int 0, x -> x
      | Sub, x, Int 0 -> x
      | Mul, _, Int 0 | Mul, Int 0, _ -> Int 0
      | Mul, x, Int 1 | Mul, Int 1, x -> x
      | Div, x, Int 1 -> x
      | And, x, Int n when n <> 0 -> x
      | And, Int n, x when n <> 0 -> x
      | And, _, Int 0 | And, Int 0, _ -> Int 0
      | Or, x, Int 0 | Or, Int 0, x -> x
      (* Re-associate constants: (x + c1) + c2 and (x + c1) - c2 etc. *)
      | Add, Bin (Add, x, Int c1), Int c2 -> fold_expr (Bin (Add, x, Int (c1 + c2)))
      | Add, Bin (Sub, x, Int c1), Int c2 -> fold_expr (Bin (Add, x, Int (c2 - c1)))
      | Sub, Bin (Add, x, Int c1), Int c2 -> fold_expr (Bin (Add, x, Int (c1 - c2)))
      | Sub, Bin (Sub, x, Int c1), Int c2 -> fold_expr (Bin (Sub, x, Int (c1 + c2)))
      | _ -> Bin (op, a, b))

(** Normalise an expression through its affine form when possible — the
    canonical shape later passes compare syntactically. *)
let canon_expr e =
  let e = fold_expr e in
  match Affine.of_expr e with Some f -> Affine.to_expr f | None -> e

let rec simpl_stmt (s : stmt) : stmt list =
  match s with
  | Assign (lv, e) ->
      let lv =
        match lv with
        | Lvar _ -> lv
        | Larr (a, subs) -> Larr (a, List.map canon_expr subs)
      in
      [ Assign (lv, map_expr canon_expr e) ]
  | If (c, t, el) -> (
      let c = map_expr canon_expr c in
      let t = simpl_body t and el = simpl_body el in
      match c with
      | Int 0 -> el
      | Int _ -> t
      | _ -> if t = [] && el = [] then [] else [ If (c, t, el) ])
  | For l ->
      let trip = Ast.loop_trip l in
      if trip = 0 then []
      else if trip = 1 then
        (* Single-iteration loops are inlined so that analyses see their
           body's subscripts as constants in the index. *)
        simpl_body (Ast.subst_var l.index (Int l.lo) l.body)
      else [ For { l with body = simpl_body l.body } ]
  | Rotate rs -> [ Rotate rs ]

and simpl_body body = List.concat_map simpl_stmt body

let run (k : Ast.kernel) : Ast.kernel = { k with k_body = simpl_body k.k_body }

(* ------------------------------------------------------------------ *)
(* Range-based folding *)

(** Fold comparisons between a loop index and a constant using the
    enclosing loop's bounds: with [i] in [lo, hi), [i < c] is true when
    [hi <= c] and false when [c <= lo], and so on. Peeling shifts loop
    bounds, which is what turns the first-iteration guards of scalar
    replacement ([i == lo], [i < lo + d]) into constants. *)
let fold_ranges (k : Ast.kernel) : Ast.kernel =
  let decide env v op c =
    match List.assoc_opt v env with
    | None -> None
    | Some (lo, hi) ->
        if hi <= lo then None
        else begin
          let last = hi - 1 in
          (* conservative: ignore stride, use [lo, hi) *)
          match op with
          | Lt -> if last < c then Some 1 else if lo >= c then Some 0 else None
          | Le -> if last <= c then Some 1 else if lo > c then Some 0 else None
          | Gt -> if lo > c then Some 1 else if last <= c then Some 0 else None
          | Ge -> if lo >= c then Some 1 else if last < c then Some 0 else None
          | Eq ->
              if c < lo || c > last then Some 0
              else if lo = last && c = lo then Some 1
              else None
          | Ne ->
              if c < lo || c > last then Some 1
              else if lo = last && c = lo then Some 0
              else None
          | _ -> None
        end
  in
  let flip = function
    | Lt -> Gt
    | Le -> Ge
    | Gt -> Lt
    | Ge -> Le
    | op -> op
  in
  let rec fold_e env e =
    match e with
    | Bin (((Lt | Le | Gt | Ge | Eq | Ne) as op), Var v, Int c) -> (
        match decide env v op c with Some r -> Int r | None -> e)
    | Bin (((Lt | Le | Gt | Ge | Eq | Ne) as op), Int c, Var v) -> (
        match decide env v (flip op) c with Some r -> Int r | None -> e)
    | Int _ | Var _ -> e
    | Arr (a, subs) -> Arr (a, List.map (fold_e env) subs)
    | Bin (op, a, b) -> Bin (op, fold_e env a, fold_e env b)
    | Un (op, a) -> Un (op, fold_e env a)
    | Cond (c, t, e') -> Cond (fold_e env c, fold_e env t, fold_e env e')
  in
  let rec fold_s env s =
    match s with
    | Assign (Lvar v, e) -> Assign (Lvar v, fold_e env e)
    | Assign (Larr (a, subs), e) ->
        Assign (Larr (a, List.map (fold_e env) subs), fold_e env e)
    | If (c, t, e) ->
        If (fold_e env c, List.map (fold_s env) t, List.map (fold_s env) e)
    | For l ->
        let env' = (l.index, (l.lo, l.hi)) :: env in
        For { l with body = List.map (fold_s env') l.body }
    | Rotate rs -> Rotate rs
  in
  run { k with k_body = List.map (fold_s []) k.k_body }
