(** Constant folding and algebraic simplification.

    Unrolling substitutes [i + k] into subscripts, producing shapes like
    [(i + 0)] and [2 * (i + 1)]; simplification restores the compact
    affine forms every later pass pattern-matches on. Branches with
    constant conditions (left behind by peeling) are folded away. *)

open Ir
open Ast

let rec fold_expr (e : expr) : expr =
  match e with
  | Int _ | Var _ -> e
  | Arr (a, subs) ->
      let subs' = Ast.map_sharing fold_expr subs in
      if subs' == subs then e else Arr (a, subs')
  | Un (op, a) -> (
      let a' = fold_expr a in
      match (op, a') with
      | Neg, Int n -> Int (-n)
      | Not, Int n -> Int (if n = 0 then 1 else 0)
      | Bnot, Int n -> Int (lnot n)
      | Abs, Int n -> Int (abs n)
      | Neg, Un (Neg, x) -> x
      | _ -> if a' == a then e else Un (op, a'))
  | Cond (c, t, el) -> (
      let c' = fold_expr c in
      match c' with
      | Int 0 -> fold_expr el
      | Int _ -> fold_expr t
      | _ ->
          let t' = fold_expr t and el' = fold_expr el in
          if c' == c && t' == t && el' == el then e else Cond (c', t', el'))
  | Bin (op, a0, b0) -> (
      let a = fold_expr a0 and b = fold_expr b0 in
      match (op, a, b) with
      | Add, Int x, Int y -> Int (x + y)
      | Sub, Int x, Int y -> Int (x - y)
      | Mul, Int x, Int y -> Int (x * y)
      | Div, Int x, Int y when y <> 0 -> Int (x / y)
      | Mod, Int x, Int y when y <> 0 -> Int (x mod y)
      | Lt, Int x, Int y -> Int (if x < y then 1 else 0)
      | Le, Int x, Int y -> Int (if x <= y then 1 else 0)
      | Gt, Int x, Int y -> Int (if x > y then 1 else 0)
      | Ge, Int x, Int y -> Int (if x >= y then 1 else 0)
      | Eq, Int x, Int y -> Int (if x = y then 1 else 0)
      | Ne, Int x, Int y -> Int (if x <> y then 1 else 0)
      | And, Int x, Int y -> Int (if x <> 0 && y <> 0 then 1 else 0)
      | Or, Int x, Int y -> Int (if x <> 0 || y <> 0 then 1 else 0)
      | Band, Int x, Int y -> Int (x land y)
      | Bor, Int x, Int y -> Int (x lor y)
      | Bxor, Int x, Int y -> Int (x lxor y)
      | Shl, Int x, Int y when y >= 0 -> Int (x lsl y)
      | Shr, Int x, Int y when y >= 0 -> Int (x asr y)
      | Min, Int x, Int y -> Int (min x y)
      | Max, Int x, Int y -> Int (max x y)
      | Add, x, Int 0 | Add, Int 0, x -> x
      | Sub, x, Int 0 -> x
      | Mul, _, Int 0 | Mul, Int 0, _ -> Int 0
      | Mul, x, Int 1 | Mul, Int 1, x -> x
      | Div, x, Int 1 -> x
      | And, x, Int n when n <> 0 -> x
      | And, Int n, x when n <> 0 -> x
      | And, _, Int 0 | And, Int 0, _ -> Int 0
      | Or, x, Int 0 | Or, Int 0, x -> x
      (* Re-associate constants: (x + c1) + c2 and (x + c1) - c2 etc. *)
      | Add, Bin (Add, x, Int c1), Int c2 -> fold_expr (Bin (Add, x, Int (c1 + c2)))
      | Add, Bin (Sub, x, Int c1), Int c2 -> fold_expr (Bin (Add, x, Int (c2 - c1)))
      | Sub, Bin (Add, x, Int c1), Int c2 -> fold_expr (Bin (Add, x, Int (c1 - c2)))
      | Sub, Bin (Sub, x, Int c1), Int c2 -> fold_expr (Bin (Sub, x, Int (c1 + c2)))
      | _ -> if a == a0 && b == b0 then e else Bin (op, a, b))

(** Normalise an expression through its affine form when possible — the
    canonical shape later passes compare syntactically. Returns the
    input physically unchanged when it is already in canonical form. *)
let canon_expr e =
  let e' = fold_expr e in
  match Affine.of_expr e' with
  | None -> e'
  | Some f ->
      let c = Affine.to_expr f in
      if c = e then e else c

(* [fold_expr] restricted to the root: operands are assumed already
   folded, so only the node's own arms apply. Re-association arms
   recurse on the node they rebuild (depth bounded by the constant
   chain), never into operands. *)
let rec fold1 (e : expr) : expr =
  match e with
  | Int _ | Var _ | Arr _ -> e
  | Un (op, a) -> (
      match (op, a) with
      | Neg, Int n -> Int (-n)
      | Not, Int n -> Int (if n = 0 then 1 else 0)
      | Bnot, Int n -> Int (lnot n)
      | Abs, Int n -> Int (abs n)
      | Neg, Un (Neg, x) -> x
      | _ -> e)
  | Cond (c, t, el) -> ( match c with Int 0 -> el | Int _ -> t | _ -> e)
  | Bin (op, a, b) -> (
      match (op, a, b) with
      | Add, Int x, Int y -> Int (x + y)
      | Sub, Int x, Int y -> Int (x - y)
      | Mul, Int x, Int y -> Int (x * y)
      | Div, Int x, Int y when y <> 0 -> Int (x / y)
      | Mod, Int x, Int y when y <> 0 -> Int (x mod y)
      | Lt, Int x, Int y -> Int (if x < y then 1 else 0)
      | Le, Int x, Int y -> Int (if x <= y then 1 else 0)
      | Gt, Int x, Int y -> Int (if x > y then 1 else 0)
      | Ge, Int x, Int y -> Int (if x >= y then 1 else 0)
      | Eq, Int x, Int y -> Int (if x = y then 1 else 0)
      | Ne, Int x, Int y -> Int (if x <> y then 1 else 0)
      | And, Int x, Int y -> Int (if x <> 0 && y <> 0 then 1 else 0)
      | Or, Int x, Int y -> Int (if x <> 0 || y <> 0 then 1 else 0)
      | Band, Int x, Int y -> Int (x land y)
      | Bor, Int x, Int y -> Int (x lor y)
      | Bxor, Int x, Int y -> Int (x lxor y)
      | Shl, Int x, Int y when y >= 0 -> Int (x lsl y)
      | Shr, Int x, Int y when y >= 0 -> Int (x asr y)
      | Min, Int x, Int y -> Int (min x y)
      | Max, Int x, Int y -> Int (max x y)
      | Add, x, Int 0 | Add, Int 0, x -> x
      | Sub, x, Int 0 -> x
      | Mul, _, Int 0 | Mul, Int 0, _ -> Int 0
      | Mul, x, Int 1 | Mul, Int 1, x -> x
      | Div, x, Int 1 -> x
      | And, x, Int n when n <> 0 -> x
      | And, Int n, x when n <> 0 -> x
      | And, _, Int 0 | And, Int 0, _ -> Int 0
      | Or, x, Int 0 | Or, Int 0, x -> x
      | Add, Bin (Add, x, Int c1), Int c2 -> fold1 (Bin (Add, x, Int (c1 + c2)))
      | Add, Bin (Sub, x, Int c1), Int c2 -> fold1 (Bin (Add, x, Int (c2 - c1)))
      | Sub, Bin (Add, x, Int c1), Int c2 -> fold1 (Bin (Add, x, Int (c1 - c2)))
      | Sub, Bin (Sub, x, Int c1), Int c2 -> fold1 (Bin (Sub, x, Int (c1 + c2)))
      | _ -> e)

(** [map_expr canon_expr] applies {!canon_expr} at every node, and each
    application re-walks its whole subtree ([fold_expr] and
    [Affine.of_expr] both recurse) — quadratic on the long accumulation
    chains unrolling builds. [canon_rec] computes the same result in one
    bottom-up pass: operands are canonicalized exactly once, folding at
    a node assumes folded operands ({!fold1}), and the affine attempt is
    skipped outright when an operand is already known non-affine. The
    boolean tracks "may be affine" — exactly the shapes
    [Affine.of_expr] accepts — so it never skips a node the original
    would have normalised. *)
let rec canon_rec (e0 : expr) : expr * bool =
  let e, cap =
    match e0 with
    | Int _ | Var _ -> (e0, true)
    | Arr (a, subs) ->
        let subs' = Ast.map_sharing (fun s -> fst (canon_rec s)) subs in
        ((if subs' == subs then e0 else Arr (a, subs')), false)
    | Un (op, a) ->
        let a', ca = canon_rec a in
        ((if a' == a then e0 else Un (op, a')), op = Neg && ca)
    | Bin (op, a, b) ->
        let a', ca = canon_rec a and b', cb = canon_rec b in
        ( (if a' == a && b' == b then e0 else Bin (op, a', b')),
          (match op with Add | Sub | Mul | Div -> ca && cb | _ -> false) )
    | Cond (c, t, el) ->
        let c', _ = canon_rec c
        and t', _ = canon_rec t
        and el', _ = canon_rec el in
        ( (if c' == c && t' == t && el' == el then e0
           else Cond (c', t', el')),
          false )
  in
  let e' = fold1 e in
  if e' == e then
    if not cap then (e, false)
    else
      match Affine.of_expr e with
      | None -> (e, false)
      | Some f ->
          let c = Affine.to_expr f in
          ((if c = e then e else c), true)
  else begin
    (* An arm fired: the result is a constant, an already-canonical
       operand, or a small rebuilt node — finish it the way [canon_expr]
       would, with walks bounded by that result. *)
    let r = fold_expr e' in
    match Affine.of_expr r with
    | None -> (r, false)
    | Some f ->
        let c = Affine.to_expr f in
        ((if c = e then e else c), true)
  end

let canon_deep e = fst (canon_rec e)

let rec simpl_stmt (s : stmt) : stmt list =
  match s with
  | Assign (lv, e) ->
      let lv' =
        match lv with
        | Lvar _ -> lv
        | Larr (a, subs) ->
            let subs' = Ast.map_sharing canon_expr subs in
            if subs' == subs then lv else Larr (a, subs')
      in
      let e' = canon_deep e in
      if lv' == lv && e' == e then [ s ] else [ Assign (lv', e') ]
  | If (c, t, el) -> (
      let c' = canon_deep c in
      let t' = simpl_body t and el' = simpl_body el in
      match c' with
      | Int 0 -> el'
      | Int _ -> t'
      | _ ->
          if t' = [] && el' = [] then []
          else if c' == c && t' == t && el' == el then [ s ]
          else [ If (c', t', el') ])
  | For l ->
      let trip = Ast.loop_trip l in
      if trip = 0 then []
      else if trip = 1 then
        (* Single-iteration loops are inlined so that analyses see their
           body's subscripts as constants in the index. *)
        simpl_body (Ast.subst_var l.index (Int l.lo) l.body)
      else
        let body' = simpl_body l.body in
        if body' == l.body then [ s ] else [ For { l with body = body' } ]
  | Rotate _ -> [ s ]

and simpl_body body =
  match body with
  | [] -> []
  | s :: rest -> (
      let ss = simpl_stmt s in
      let rest' = simpl_body rest in
      match ss with
      | [ s' ] when s' == s && rest' == rest -> body
      | _ -> ss @ rest')

let run (k : Ast.kernel) : Ast.kernel = { k with k_body = simpl_body k.k_body }

(* ------------------------------------------------------------------ *)
(* Range-based folding *)

(** Fold comparisons between a loop index and a constant using the
    enclosing loop's bounds: with [i] in [lo, hi), [i < c] is true when
    [hi <= c] and false when [c <= lo], and so on. Peeling shifts loop
    bounds, which is what turns the first-iteration guards of scalar
    replacement ([i == lo], [i < lo + d]) into constants. *)
let fold_ranges (k : Ast.kernel) : Ast.kernel =
  let decide env v op c =
    match List.assoc_opt v env with
    | None -> None
    | Some (lo, hi) ->
        if hi <= lo then None
        else begin
          let last = hi - 1 in
          (* conservative: ignore stride, use [lo, hi) *)
          match op with
          | Lt -> if last < c then Some 1 else if lo >= c then Some 0 else None
          | Le -> if last <= c then Some 1 else if lo > c then Some 0 else None
          | Gt -> if lo > c then Some 1 else if last <= c then Some 0 else None
          | Ge -> if lo >= c then Some 1 else if last < c then Some 0 else None
          | Eq ->
              if c < lo || c > last then Some 0
              else if lo = last && c = lo then Some 1
              else None
          | Ne ->
              if c < lo || c > last then Some 1
              else if lo = last && c = lo then Some 0
              else None
          | _ -> None
        end
  in
  let flip = function
    | Lt -> Gt
    | Le -> Ge
    | Gt -> Lt
    | Ge -> Le
    | op -> op
  in
  let rec fold_e env e =
    match e with
    | Bin (((Lt | Le | Gt | Ge | Eq | Ne) as op), Var v, Int c) -> (
        match decide env v op c with Some r -> Int r | None -> e)
    | Bin (((Lt | Le | Gt | Ge | Eq | Ne) as op), Int c, Var v) -> (
        match decide env v (flip op) c with Some r -> Int r | None -> e)
    | Int _ | Var _ -> e
    | Arr (a, subs) ->
        let subs' = Ast.map_sharing (fold_e env) subs in
        if subs' == subs then e else Arr (a, subs')
    | Bin (op, a, b) ->
        let a' = fold_e env a and b' = fold_e env b in
        if a' == a && b' == b then e else Bin (op, a', b')
    | Un (op, a) ->
        let a' = fold_e env a in
        if a' == a then e else Un (op, a')
    | Cond (c, t, e') ->
        let c' = fold_e env c and t' = fold_e env t and e'' = fold_e env e' in
        if c' == c && t' == t && e'' == e' then e else Cond (c', t', e'')
  in
  let rec fold_s env s =
    match s with
    | Assign (Lvar v, e) ->
        let e' = fold_e env e in
        if e' == e then s else Assign (Lvar v, e')
    | Assign (Larr (a, subs), e) ->
        let subs' = Ast.map_sharing (fold_e env) subs in
        let e' = fold_e env e in
        if subs' == subs && e' == e then s else Assign (Larr (a, subs'), e')
    | If (c, t, e) ->
        let c' = fold_e env c in
        let t' = Ast.map_sharing (fold_s env) t in
        let e' = Ast.map_sharing (fold_s env) e in
        if c' == c && t' == t && e' == e then s else If (c', t', e')
    | For l ->
        let env' = (l.index, (l.lo, l.hi)) :: env in
        let body' = Ast.map_sharing (fold_s env') l.body in
        if body' == l.body then s else For { l with body = body' }
    | Rotate _ -> s
  in
  run { k with k_body = Ast.map_sharing (fold_s []) k.k_body }
