(** Scalar replacement (Section 4 of the paper), extended as the paper
    describes relative to Carr-Kennedy:

    - redundant memory *writes* on output dependences are eliminated
      (store sinking), and
    - reuse is exploited across *all* loops of the nest, not only the
      innermost one, via rotating register banks loaded on the first
      iteration of the carrier loop.

    Four cooperating replacements, applied in this order:

    1. {b Hoist/sink} — an access pattern invariant with respect to every
       loop deeper than level L is loaded into a register on entry to
       level L+1 and (if written) stored back on exit; e.g. the [D[j]]
       accumulator of FIR.
    2. {b Register banks} — a read-only pattern invariant with respect to
       an outer loop [c] but varying inside it has full reuse carried by
       [c]: a bank of registers holds one sweep's worth of data, loaded
       during the first iteration of [c] (guarded by [c == lo], later
       specialised by loop peeling) and rotated once per iteration of the
       innermost varying loop; e.g. the [C] coefficients of FIR.
    3. {b Chains} — members of a pattern at a *consistent* dependence
       distance [d] along the innermost varying loop share a rotating
       chain of [d+1] registers; trailing members refill under a
       [index < lo + d*step] guard, which bounded peeling of the
       innermost loop later removes; e.g. the stencil reads of JAC.
    4. {b Load CSE} — loop-independent reuse: syntactically identical
       reads in one body load once; e.g. [S_0] of FIR.

    Patterns without a consistent distance (the coupled [S[i+j]] reads of
    FIR) keep their memory accesses, exactly as in the paper. *)

open Ir
open Ast
module Access = Analysis.Access

type config = {
  across_loops : bool;
      (** exploit reuse carried by outer loops (banks); on in the paper *)
  chains : bool;  (** exploit consistent innermost-loop distances *)
  max_chain_span : int;
      (** longest reuse distance a chain may bridge; classes spanning
          further keep their memory accesses (peeling that many leading
          iterations must stay cheap) *)
  max_registers : int;  (** budget for introduced registers *)
}

let default_config =
  { across_loops = true; chains = true; max_chain_span = 4; max_registers = 2048 }

type report = {
  hoisted_members : int;
  banks : (string * int) list;  (** array, bank size per member group *)
  chain_lengths : (string * int) list;  (** array, registers per chain *)
  cse_loads : int;
  registers : int;
  carriers : string list;  (** loops whose first iteration should be peeled *)
  innermost_peels : int;
      (** leading iterations of the innermost loop to peel for chains *)
}

let empty_report =
  {
    hoisted_members = 0;
    banks = [];
    chain_lengths = [];
    cse_loads = 0;
    registers = 0;
    carriers = [];
    innermost_peels = 0;
  }

(* ------------------------------------------------------------------ *)
(* Tree-edit helpers, all keyed by spine-loop index *)

(** Replace the (canonical) read expression [Arr (a, subs)] by [Var r] in
    a statement list. *)
let replace_read a subs r body =
  Ast.map_body_exprs
    (fun e -> if e = Arr (a, subs) then Var r else e)
    body

(** Replace writes [A[subs] = e] by [r = e]. *)
let rec replace_write a subs r body =
  List.map
    (fun s ->
      match s with
      | Assign (Larr (a', subs'), e) when a' = a && subs' = subs ->
          Assign (Lvar r, e)
      | Assign _ | Rotate _ -> s
      | If (c, t, el) -> If (c, replace_write a subs r t, replace_write a subs r el)
      | For l -> For { l with body = replace_write a subs r l.body })
    body

(** Insert [pre] at the start and [post] at the end of the body of the
    spine loop named [index]. Shares unchanged subtrees, so an edit that
    leaves the target body physically unchanged (e.g. a scan) returns
    the input body itself. *)
let rec edit_loop_body ~index f body =
  Ast.map_sharing
    (fun s ->
      match s with
      | For l when l.index = index ->
          let b' = f l.body in
          if b' == l.body then s else For { l with body = b' }
      | For l ->
          let b' = edit_loop_body ~index f l.body in
          if b' == l.body then s else For { l with body = b' }
      | If (c, t, e) ->
          let t' = edit_loop_body ~index f t
          and e' = edit_loop_body ~index f e in
          if t' == t && e' == e then s else If (c, t', e')
      | Assign _ | Rotate _ -> s)
    body

let insert_in_loop ~index ~pre ~post body =
  edit_loop_body ~index (fun b -> pre @ b @ post) body

(* ------------------------------------------------------------------ *)
(* Pattern facts *)

(** One uniformly generated pattern of an array, with its distinct
    subscript-expression members. *)
type pattern = {
  array : string;
  elem : Dtype.t;
  members : Access.t list;  (** distinct; execution order *)
  has_reads : bool;
  has_writes : bool;
  any_guarded : bool;
  varying : Ast.loop list;  (** spine loops the pattern varies with, outer first *)
  spine : Ast.loop list;
  spine_only : bool;
      (** every loop the members vary with is on the spine; off-spine
          variation (epilogue loops of a non-divisor unroll factor) makes
          the pattern ineligible for register promotion *)
}

let patterns_of (k : kernel) : pattern list =
  let spine = Loop_nest.spine k.k_body in
  let groups = Analysis.Reuse.groups k.k_body in
  (* Merge the read group and write group of the same array+pattern so
     hoist/sink treats them together. *)
  let same_pat (a : Access.t) (b : Access.t) =
    a.array = b.array
    && Analysis.Reuse.same_pattern (List.map (fun (l : loop) -> l.index) spine) a b
  in
  let merged : Access.t list list =
    List.fold_left
      (fun acc (g : Analysis.Reuse.group) ->
        match g.members with
        | [] -> acc
        | m :: _ ->
            let rec insert = function
              | [] -> [ g.members ]
              | (n :: _ as grp) :: rest when same_pat m n ->
                  (grp @ g.members) :: rest
              | grp :: rest -> grp :: insert rest
            in
            insert acc)
      [] groups
  in
  List.filter_map
    (fun (members : Access.t list) ->
      match members with
      | [] -> None
      | m :: _ ->
          let elem =
            match Ast.find_array k m.array with
            | Some d -> d.a_elem
            | None -> Dtype.int32
          in
          let distinct =
            let seen = Hashtbl.create 16 in
            List.rev
              (List.fold_left
                 (fun acc (a : Access.t) ->
                   let key = (a.subs, a.kind) in
                   if Hashtbl.mem seen key then acc
                   else begin
                     Hashtbl.replace seen key ();
                     a :: acc
                   end)
                 [] members)
          in
          let varying =
            List.filter
              (fun (l : loop) ->
                List.exists (fun a -> Access.varies_with a l.index) members)
              spine
          in
          let spine_names = List.map (fun (l : loop) -> l.index) spine in
          let spine_only =
            List.for_all
              (fun (a : Access.t) ->
                List.for_all
                  (fun idx ->
                    List.mem idx spine_names
                    || not (Access.varies_with a idx))
                  (Access.indices a))
              members
          in
          Some
            {
              array = m.array;
              elem;
              members = distinct;
              has_reads = List.exists Access.is_read members;
              has_writes = List.exists Access.is_write members;
              any_guarded = List.exists (fun (a : Access.t) -> a.guarded) members;
              varying;
              spine;
              spine_only;
            })
    merged

(** Another pattern of the same array may alias this one (no proven
    independence between any cross pair). *)
let may_alias (k : kernel) (p : pattern) (q : pattern) =
  let decl = Ast.find_array k p.array in
  List.exists
    (fun a ->
      List.exists
        (fun b ->
          match Analysis.Dependence.test ?decl a b with
          | Analysis.Dependence.Independent -> false
          | _ -> true)
        q.members)
    p.members

(* ------------------------------------------------------------------ *)

type state = {
  mutable kernel : kernel;
  mutable report : report;
  names : Names.t;
  mutable budget : int;
}

let declare st base elem =
  let name = Names.fresh st.names base in
  st.kernel <-
    {
      st.kernel with
      k_scalars =
        st.kernel.k_scalars
        @ [ { s_name = name; s_elem = elem; s_kind = Register; s_span = None } ];
    };
  name

(* ------------------------------------------------------------------ *)
(* Case 1: hoist/sink *)

let try_hoist (k : kernel) (st : state) (p : pattern) (others : pattern list) =
  let spine = p.spine in
  let innermost_spine =
    match List.rev spine with [] -> None | l :: _ -> Some l
  in
  let aliasing = List.exists (fun q -> may_alias k p q) others in
  let deepest_varying =
    (* position of the deepest spine loop the pattern varies with *)
    let rec go i best = function
      | [] -> best
      | (l : loop) :: rest ->
          go (i + 1) (if List.memq l p.varying then i else best) rest
    in
    go 0 (-1) spine
  in
  let applicable =
    spine <> [] && p.spine_only
    && (match innermost_spine with
       | Some l -> not (List.memq l p.varying)
       | None -> false)
    && (not p.any_guarded) && not aliasing
    && st.budget >= List.length p.members
  in
  if not applicable then ()
  else begin
    (* Hoist each distinct member to just inside the deepest varying
       loop (or outside the whole nest when invariant everywhere). *)
    let member_exprs =
      List.rev
        (List.fold_left
           (fun acc (a : Access.t) ->
             if List.exists (fun s -> s = a.Access.subs) acc then acc
             else a.subs :: acc)
           [] p.members)
    in
    List.iter
      (fun subs ->
        let r = declare st (String.lowercase_ascii p.array ^ "_r") p.elem in
        st.budget <- st.budget - 1;
        let load = Assign (Lvar r, Arr (p.array, subs)) in
        let store = Assign (Larr (p.array, subs), Var r) in
        let pre = if p.has_reads || p.has_writes then [ load ] else [] in
        let post = if p.has_writes then [ store ] else [] in
        let body = st.kernel.k_body in
        let body = replace_read p.array subs r body in
        let body = replace_write p.array subs r body in
        let body =
          if deepest_varying < 0 then pre @ body @ post
          else
            let target = (List.nth spine deepest_varying).index in
            insert_in_loop ~index:target ~pre ~post body
        in
        st.kernel <- { st.kernel with k_body = body };
        st.report <-
          {
            st.report with
            hoisted_members = st.report.hoisted_members + 1;
            registers = st.report.registers + 1;
          })
      member_exprs
  end

(* ------------------------------------------------------------------ *)
(* Case 2: register banks across an outer carrier loop *)

let try_bank ~written (st : state) (p : pattern) =
  let spine = p.spine in
  (* Outermost spine loop the pattern is invariant to, with varying loops
     strictly inside it. *)
  let carrier =
    let rec go = function
      | [] -> None
      | (l : loop) :: rest ->
          if
            (not (List.memq l p.varying))
            && List.exists (fun v -> List.memq v rest) p.varying
          then Some l
          else go rest
    in
    go spine
  in
  match carrier with
  | None -> ()
  | Some carrier ->
      let inner_of_carrier =
        let rec drop = function
          | (l : loop) :: rest -> if l.index = carrier.index then rest else drop rest
          | [] -> []
        in
        drop spine
      in
      let varying_inside = List.filter (fun l -> List.memq l p.varying) inner_of_carrier in
      (* Varying loops must be contiguous on the spine below the carrier:
         a non-varying loop *between* two varying ones desynchronises the
         rotation count from the bank size. Non-varying loops below the
         deepest varying loop only repeat full cycles and are fine. *)
      let contiguous =
        let rec check seen_varying = function
          | [] -> true
          | (l : loop) :: rest ->
              let v = List.memq l p.varying in
              if v then check true rest
              else if not seen_varying then check false rest
              else
                (* non-varying after a varying loop: legal only if no
                   varying loop follows *)
                List.for_all (fun m -> not (List.memq m p.varying)) rest
        in
        check false inner_of_carrier
      in
      let bank_n =
        List.fold_left (fun acc l -> acc * Ast.loop_trip l) 1 varying_inside
      in
      let innermost_varying =
        match List.rev varying_inside with [] -> None | l :: _ -> Some l
      in
      let n_regs = bank_n * List.length p.members in
      let applicable =
        p.has_reads && (not p.has_writes) && p.spine_only
        && (not (List.mem p.array written))
        && (not p.any_guarded)
        && contiguous && bank_n > 1
        && innermost_varying <> None
        && st.budget >= n_regs
      in
      if not applicable then ()
      else begin
        let rot_loop = Option.get innermost_varying in
        List.iteri
          (fun mi (a : Access.t) ->
            let base =
              Printf.sprintf "%s_%d" (String.lowercase_ascii p.array) mi
            in
            let regs = List.init bank_n (fun j -> Printf.sprintf "%s_%d" base j) in
            let regs = List.map (fun r -> declare st r p.elem) regs in
            st.budget <- st.budget - bank_n;
            let r0 = List.hd regs in
            let load =
              If
                ( Bin (Eq, Var carrier.index, Int carrier.lo),
                  [ Assign (Lvar r0, Arr (p.array, a.subs)) ],
                  [] )
            in
            let body = st.kernel.k_body in
            (* Replace uses first (the guarded load's own read must stay). *)
            let body =
              edit_loop_body ~index:carrier.index
                (fun b -> replace_read p.array a.subs r0 b)
                body
            in
            let rotate = if bank_n > 1 then [ Rotate regs ] else [] in
            let body =
              insert_in_loop ~index:rot_loop.index ~pre:[ load ] ~post:rotate body
            in
            st.kernel <- { st.kernel with k_body = body };
            st.report <-
              {
                st.report with
                banks = (p.array, bank_n) :: st.report.banks;
                registers = st.report.registers + bank_n;
                carriers =
                  (if List.mem carrier.index st.report.carriers then
                     st.report.carriers
                   else carrier.index :: st.report.carriers);
              })
          p.members
      end

(* ------------------------------------------------------------------ *)
(* Case 3: chains along the innermost varying loop *)

(** Consistent distance (in iterations of [inner]) from member [a] to
    member [b]: requires an exact dependence solution, zero on every
    other varying loop. *)
let chain_distance (inner : loop) (a : Access.t) (b : Access.t) : int option =
  match Analysis.Dependence.ug_distance_vector a b with
  | Analysis.Dependence.Distance entries ->
      let loops = Analysis.Dependence.common_loops a b in
      let rec go loops entries acc =
        match (loops, entries) with
        | [], [] -> acc
        | (l : loop) :: ls, e :: es -> (
            match e with
            | Analysis.Dependence.Exact d when l.index = inner.index ->
                if acc = None then go ls es (Some d) else None
            | Analysis.Dependence.Exact 0 -> go ls es acc
            | Analysis.Dependence.Any -> go ls es acc
            | Analysis.Dependence.Exact _ | Analysis.Dependence.Coupled -> None)
        | _ -> None
      in
      go loops entries None
  | _ -> None

(* Floor division (exact linearity in the divisor direction:
   [fdiv (x + d*g) g = fdiv x g + d] for any integers, which makes the
   residue below a canonical class key). *)
let fdiv x y =
  let q = x / y and r = x mod y in
  if r <> 0 && r < 0 <> (y < 0) then q - 1 else q

(** Cheap chain-class key of a member: the canonical residue of its
    subscript constants modulo the inner-loop shift vector [g]
    (per-dimension coefficient of the inner index times its step), plus
    the member's position [idx] along [g]. Two members of one uniformly
    generated pattern admit a consistent inner-loop distance exactly
    when their residues agree (the distance is then the [idx]
    difference) — the dependence-system view of {!chain_distance}
    restricted to shifts along the inner direction. [None] when the
    member does not vary with the inner loop (no chain possible). *)
let chain_key (inner : loop) (a : Access.t) : (int list * int) option =
  if not (Access.is_affine a) then None
  else begin
    let affs = Access.affine_exn a in
    let g = List.map (fun f -> Affine.coeff f inner.index * inner.step) affs in
    let c = List.map Affine.const_part affs in
    let rec first_nz gs cs =
      match (gs, cs) with
      | gk :: _, ck :: _ when gk <> 0 -> Some (gk, ck)
      | _ :: gs, _ :: cs -> first_nz gs cs
      | _ -> None
    in
    match first_nz g c with
    | None -> None
    | Some (gk0, ck0) ->
        let idx = fdiv ck0 gk0 in
        Some (List.map2 (fun ck gk -> ck - (idx * gk)) c g, idx)
  end

(** Partition a pattern's members into chain classes, each member paired
    with its distance to the class's first member. The fast path buckets
    by {!chain_key} in linear time and verifies every multi-member class
    against the dependence solver (one {!chain_distance} call per
    chained member — coupled subscripts like FIR's [S[i+j]] fail the
    check); on any disagreement the original pairwise solver scan runs
    instead, so the result is the one the quadratic algorithm computes,
    always. *)
let partition_chains (inner : loop) (members : Access.t list) :
    (Access.t * int) list list =
  let slow () =
    let classes : (Access.t * Access.t list) list ref = ref [] in
    List.iter
      (fun (a : Access.t) ->
        let rec insert = function
          | [] -> [ (a, [ a ]) ]
          | (m, cls) :: rest -> (
              match chain_distance inner m a with
              | Some _ -> (m, a :: cls) :: rest
              | None -> (m, cls) :: insert rest)
        in
        classes := insert !classes)
      members;
    List.map
      (fun (_, cls) ->
        match List.rev cls with
        | [] -> []
        | first :: _ as cls ->
            List.map
              (fun a ->
                (a, Option.value ~default:0 (chain_distance inner first a)))
              cls)
      !classes
  in
  let trip = Ast.loop_trip inner in
  let keyed = List.map (fun a -> (a, chain_key inner a)) members in
  if List.exists (fun (_, k) -> k = None) keyed then
    (* No inner variation (or a non-affine member): no pair admits a
       distance, every member is its own class. *)
    List.map (fun (a, _) -> [ (a, 0) ]) keyed
  else begin
    (* Insertion scan as in [slow], with the O(1) key test standing in
       for the solver: same residue, and the distance realizable within
       the trip count (the solver's own admissibility cut). *)
    let classes : (int list * int * (Access.t * int) list) list ref = ref [] in
    List.iter
      (fun (a, key) ->
        let residue, idx = Option.get key in
        let rec insert = function
          | [] -> [ (residue, idx, [ (a, 0) ]) ]
          | (res, ridx, cls) :: rest ->
              if res = residue && abs (ridx - idx) < trip then
                (res, ridx, (a, ridx - idx) :: cls) :: rest
              else (res, ridx, cls) :: insert rest
        in
        classes := insert !classes)
      keyed;
    let classes = List.map (fun (_, _, cls) -> List.rev cls) !classes in
    let verified =
      List.for_all
        (fun cls ->
          match cls with
          | [] | [ _ ] -> true
          | (first, _) :: rest ->
              List.for_all
                (fun (a, d) -> chain_distance inner first a = Some d)
                rest)
        classes
    in
    if verified then classes else slow ()
  end

(** Batched tree edits of the chains phase: replacements and inserts
    accumulated across all patterns, applied in one walk each. *)
type chain_edits = {
  repl : (string * expr list, string * string) Hashtbl.t;
      (** (array, subscripts) -> (target inner-loop index, register) *)
  mutable inserts : (string * stmt list * stmt list) list;
      (** (inner-loop index, pre, post) in reverse application order *)
}

let apply_chain_edits (st : state) (ed : chain_edits) =
  if Hashtbl.length ed.repl = 0 then ()
  else begin
    (* Replace member reads under every loop named by their class's
       inner index — what per-class [edit_loop_body]+[replace_read]
       did, composed. Inserted loads are untouched exactly as in the
       sequential order (each class replaced before inserting, and no
       two classes share a member's (array, subscripts)). *)
    let rec rw_expr stack e =
      match e with
      | Arr (a, subs) -> (
          let subs' = Ast.map_sharing (rw_expr stack) subs in
          match Hashtbl.find_opt ed.repl (a, subs') with
          | Some (idx, r) when List.mem idx stack -> Var r
          | _ -> if subs' == subs then e else Arr (a, subs'))
      | Int _ | Var _ -> e
      | Bin (op, a, b) ->
          let a' = rw_expr stack a and b' = rw_expr stack b in
          if a' == a && b' == b then e else Bin (op, a', b')
      | Un (op, a) ->
          let a' = rw_expr stack a in
          if a' == a then e else Un (op, a')
      | Cond (c, t, e') ->
          let c' = rw_expr stack c
          and t' = rw_expr stack t
          and e'' = rw_expr stack e' in
          if c' == c && t' == t && e'' == e' then e else Cond (c', t', e'')
    in
    let rec rw_stmt stack s =
      match s with
      | Assign (lv, e) ->
          let lv' =
            match lv with
            | Lvar _ -> lv
            | Larr (a, subs) ->
                let subs' = Ast.map_sharing (rw_expr stack) subs in
                if subs' == subs then lv else Larr (a, subs')
          in
          let e' = rw_expr stack e in
          if lv' == lv && e' == e then s else Assign (lv', e')
      | If (c, t, e) ->
          let c' = rw_expr stack c in
          let t' = Ast.map_sharing (rw_stmt stack) t in
          let e' = Ast.map_sharing (rw_stmt stack) e in
          if c' == c && t' == t && e' == e then s else If (c', t', e')
      | For l ->
          let body' = Ast.map_sharing (rw_stmt (l.index :: stack)) l.body in
          if body' == l.body then s else For { l with body = body' }
      | Rotate _ -> s
    in
    let body = Ast.map_sharing (rw_stmt []) st.kernel.k_body in
    (* Stack the per-class inserts: applying classes one at a time
       prepends each later class's loads above the earlier ones and
       appends its rotate below, per target loop. *)
    let ins_tbl : (string, stmt list * stmt list) Hashtbl.t =
      Hashtbl.create 8
    in
    List.iter
      (fun (idx, pre, post) ->
        (* [ed.inserts] is in reverse application order, so the first
           entry seen here is the last class applied: its [pre] goes
           outermost (first) and its [post] last. *)
        let cur_pre, cur_post =
          Option.value ~default:([], []) (Hashtbl.find_opt ins_tbl idx)
        in
        Hashtbl.replace ins_tbl idx (cur_pre @ pre, post @ cur_post))
      ed.inserts;
    let rec ins_stmt s =
      match s with
      | For l -> (
          let body' = Ast.map_sharing ins_stmt l.body in
          match Hashtbl.find_opt ins_tbl l.index with
          | Some (pre, post) -> For { l with body = pre @ body' @ post }
          | None -> if body' == l.body then s else For { l with body = body' })
      | If (c, t, e) ->
          let t' = Ast.map_sharing ins_stmt t in
          let e' = Ast.map_sharing ins_stmt e in
          if t' == t && e' == e then s else If (c, t', e')
      | Assign _ | Rotate _ -> s
    in
    st.kernel <- { st.kernel with k_body = Ast.map_sharing ins_stmt body }
  end

let try_chains ~(config : config) ~written (st : state) (ed : chain_edits)
    (p : pattern) =
  let innermost_varying =
    match List.rev p.varying with [] -> None | l :: _ -> Some l
  in
  let spine_innermost =
    match List.rev p.spine with [] -> None | l :: _ -> Some l
  in
  match (innermost_varying, spine_innermost) with
  | Some inner, Some spine_inner
    when inner.index = spine_inner.index
         && p.spine_only
         && p.has_reads && (not p.has_writes)
         && (not (List.mem p.array written))
         && not p.any_guarded ->
      let classes = partition_chains inner p.members in
      List.iter
        (fun cls ->
          match cls with
          | [] | [ _ ] -> () (* single member: CSE handles duplicates *)
          | _ ->
              (* Distance d of member m relative to the first member: m
                 touches the first member's element d iterations later.
                 The member with minimal d reads the *newest* data each
                 iteration and leads the chain; a member at delay k reads
                 what the lead read k iterations ago. *)
              let with_d = List.map (fun (a, d) -> (d, a)) cls in
              let with_d = List.sort (fun (x, _) (y, _) -> compare x y) with_d in
              let dmin = fst (List.hd with_d) in
              let dmax = fst (List.nth with_d (List.length with_d - 1)) in
              let span = dmax - dmin in
              let lead = snd (List.hd with_d) in
              let n_regs = span + 1 in
              if span <= 0 || span > config.max_chain_span || st.budget < n_regs
              then ()
              else begin
                let base = String.lowercase_ascii p.array ^ "_h" in
                let regs =
                  List.init n_regs (fun j ->
                      declare st (Printf.sprintf "%s%d" base j) p.elem)
                in
                st.budget <- st.budget - n_regs;
                let reg j = List.nth regs j in
                (* Loads at the top of the innermost body: lead first,
                   then guarded refills for trailing members. *)
                let lead_load =
                  Assign (Lvar (reg span), Arr (p.array, lead.Access.subs))
                in
                let refills =
                  List.filter_map
                    (fun (d, (a : Access.t)) ->
                      let delay = d - dmin in
                      if delay = 0 then None
                      else
                        Some
                          (If
                             ( Bin
                                 ( Lt,
                                   Var inner.index,
                                   Int (inner.lo + (delay * inner.step)) ),
                               [ Assign (Lvar (reg (span - delay)), Arr (p.array, a.subs)) ],
                               [] )))
                    with_d
                in
                List.iter
                  (fun (d, (a : Access.t)) ->
                    let delay = d - dmin in
                    Hashtbl.replace ed.repl (p.array, a.Access.subs)
                      (inner.index, reg (span - delay)))
                  with_d;
                ed.inserts <-
                  (inner.index, lead_load :: refills, [ Rotate regs ])
                  :: ed.inserts;
                st.report <-
                  {
                    st.report with
                    chain_lengths = (p.array, n_regs) :: st.report.chain_lengths;
                    registers = st.report.registers + n_regs;
                    innermost_peels = max st.report.innermost_peels span;
                  }
              end)
        classes
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Case 4: element replacement within the innermost body.

   Accesses to one array element (same canonical subscripts) repeated in
   the innermost body collapse onto a register: read-only groups load
   once (the paper's loop-independent [S_0] of FIR); read-modify-write
   groups (an accumulator whose carrying loop was fully unrolled) load
   once, accumulate in the register, and store once at the end of the
   body — the within-body face of redundant-write elimination. *)

(** All accesses of [array] anywhere in the body belong to one uniformly
    generated pattern, so distinct constant offsets address distinct
    elements and same-element groups are exact. *)
let array_single_pattern (st : state) array =
  let accesses = Access.collect st.kernel.k_body in
  let of_array = List.filter (fun (a : Access.t) -> a.Access.array = array) accesses in
  let indices =
    List.sort_uniq String.compare (List.concat_map Access.indices of_array)
  in
  match of_array with
  | [] -> true
  | first :: rest ->
      Access.is_affine first
      && List.for_all (fun a -> Analysis.Reuse.same_pattern indices first a) rest

let cse_loads (st : state) =
  let written = Licm.arrays_written_in st.kernel.k_body in
  let spine = Loop_nest.spine st.kernel.k_body in
  let loop_free =
    not
      (List.exists
         (function Ast.For _ -> true | _ -> false)
         st.kernel.k_body)
  in
  match (List.rev spine, loop_free) with
  | [], false -> ()
  | target, _ ->
      (* Scan the innermost body in document order, recording for each
         (array, subs) element: occurrence count, writes, whether the
         first occurrence is an unguarded write, guarded uses. *)
      let stats : (string * expr list, int * bool * bool * bool) Hashtbl.t =
        Hashtbl.create 16
      in
      let order : (string * expr list) list ref = ref [] in
      let note key ~write ~guarded =
        let count, has_w, first_w, any_g =
          Option.value ~default:(0, false, false, false) (Hashtbl.find_opt stats key)
        in
        if count = 0 then order := key :: !order;
        Hashtbl.replace stats key
          ( count + 1,
            has_w || write,
            (if count = 0 then write && not guarded else first_w),
            any_g || guarded )
      in
      let rec scan_expr guarded e =
        match e with
        | Arr (a, subs) ->
            List.iter (scan_expr guarded) subs;
            note (a, subs) ~write:false ~guarded
        | Bin (_, x, y) ->
            scan_expr guarded x;
            scan_expr guarded y
        | Un (_, x) -> scan_expr guarded x
        | Cond (c, t, e') ->
            scan_expr guarded c;
            scan_expr true t;
            scan_expr true e'
        | Int _ | Var _ -> ()
      in
      let rec scan_stmt guarded s =
        match s with
        | Assign (lv, e) -> (
            scan_expr guarded e;
            match lv with
            | Larr (a, subs) ->
                List.iter (scan_expr guarded) subs;
                note (a, subs) ~write:true ~guarded
            | Lvar _ -> ())
        | If (c, t, e) ->
            scan_expr guarded c;
            List.iter (scan_stmt true) t;
            List.iter (scan_stmt true) e
        | For _ -> ()
        | Rotate _ -> ()
      in
      let apply_inner f =
        st.kernel <-
          {
            st.kernel with
            k_body =
              (match target with
              | inner :: _ ->
                  edit_loop_body ~index:inner.Ast.index f st.kernel.k_body
              | [] -> f st.kernel.k_body (* loop-free kernel: one block *));
          }
      in
      apply_inner (fun body ->
          List.iter (scan_stmt false) body;
          body);
      (* Decide all replacements first (caching the per-array pattern
         check), then rewrite the body in a single pass. *)
      let single_pattern_cache = Hashtbl.create 8 in
      let single_pattern a =
        match Hashtbl.find_opt single_pattern_cache a with
        | Some v -> v
        | None ->
            let v = array_single_pattern st a in
            Hashtbl.replace single_pattern_cache a v;
            v
      in
      let chosen : (string * expr list, string * bool * bool) Hashtbl.t =
        Hashtbl.create 16
      in
      let pre = ref [] and post = ref [] in
      List.iter
        (fun ((a, subs) as key) ->
          let count, has_w, first_is_write, _any_g = Hashtbl.find stats key in
          let worth = count > 1 && st.budget > 0 in
          let safe =
            if has_w then single_pattern a else not (List.mem a written)
          in
          if worth && safe then begin
            let elem =
              match Ast.find_array st.kernel a with
              | Some d -> d.a_elem
              | None -> Dtype.int32
            in
            let r = declare st (String.lowercase_ascii a ^ "_s") elem in
            st.budget <- st.budget - 1;
            Hashtbl.replace chosen key (r, has_w, first_is_write);
            if not first_is_write then
              pre := Assign (Lvar r, Arr (a, subs)) :: !pre;
            if has_w then post := Assign (Larr (a, subs), Var r) :: !post;
            st.report <-
              {
                st.report with
                cse_loads = st.report.cse_loads + 1;
                registers = st.report.registers + 1;
              }
          end)
        (List.rev !order);
      if Hashtbl.length chosen > 0 then
        apply_inner (fun body ->
            let rw_read e =
              match e with
              | Arr (a, subs) -> (
                  match Hashtbl.find_opt chosen (a, subs) with
                  | Some (r, _, _) -> Var r
                  | None -> e)
              | e -> e
            in
            let rec rw_stmt s =
              match s with
              | Assign (Larr (a, subs), e) -> (
                  let subs = List.map (map_expr rw_read) subs in
                  let e = map_expr rw_read e in
                  match Hashtbl.find_opt chosen (a, subs) with
                  | Some (r, true, _) -> Assign (Lvar r, e)
                  | _ -> Assign (Larr (a, subs), e))
              | Assign (Lvar v, e) -> Assign (Lvar v, map_expr rw_read e)
              | If (c, t, e) ->
                  If (map_expr rw_read c, List.map rw_stmt t, List.map rw_stmt e)
              | For l -> For { l with body = List.map rw_stmt l.body }
              | Rotate rs -> Rotate rs
            in
            List.rev !pre @ List.map rw_stmt body @ List.rev !post)

(* ------------------------------------------------------------------ *)

let run ?(config = default_config) (k : kernel) : kernel * report =
  let st =
    {
      kernel = k;
      report = empty_report;
      names = Names.of_kernel k;
      budget = config.max_registers;
    }
  in
  (* Each phase wants the pattern facts of the current kernel; a phase
     that made no edits leaves [st.kernel] physically unchanged, so the
     previous phase's patterns (and the access walk behind them) are
     still exact and can be reused. *)
  let cached : (kernel * pattern list) option ref = ref None in
  let patterns () =
    match !cached with
    | Some (k, ps) when k == st.kernel -> ps
    | _ ->
        let ps = patterns_of st.kernel in
        cached := Some (st.kernel, ps);
        ps
  in
  (* Hoist/sink first: it removes accumulator traffic and its aliasing
     checks see the original access set. *)
  let ps = patterns () in
  List.iter
    (fun p ->
      let others = List.filter (fun q -> q != p && q.array = p.array) ps in
      try_hoist k st p others)
    ps;
  if config.across_loops then begin
    let ps = patterns () in
    let written = Licm.arrays_written_in st.kernel.k_body in
    (* Smallest banks first, to fit more of them in the budget. *)
    let with_est =
      List.map
        (fun p ->
          let est =
            List.fold_left
              (fun acc (l : loop) ->
                if List.memq l p.varying then acc * Ast.loop_trip l else acc)
              (List.length p.members)
              p.spine
          in
          (est, p))
        ps
    in
    List.iter
      (fun (_, p) -> try_bank ~written st p)
      (List.sort (fun (a, _) (b, _) -> compare a b) with_est)
  end;
  if config.chains then begin
    let ps = patterns () in
    let written = Licm.arrays_written_in st.kernel.k_body in
    let ed = { repl = Hashtbl.create 64; inserts = [] } in
    List.iter (fun p -> try_chains ~config ~written st ed p) ps;
    apply_chain_edits st ed
  end;
  cse_loads st;
  (st.kernel, st.report)
