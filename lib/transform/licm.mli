(** Loop-invariant code motion for pure expressions.

    Hoists non-trivial subexpressions invariant with respect to a loop
    into fresh temporaries computed before it. Array reads are hoistable
    only when no write in the loop may touch the array; the
    invariant-access *memory* motion with store sinking lives in
    {!Scalar_replace}. Temporaries are declared at the expression's full
    result width so materialising them cannot change wrap-around
    behaviour. *)

open Ir

val scalars_assigned_in : Ast.stmt list -> string list
val arrays_written_in : Ast.stmt list -> string list
val run : Ast.kernel -> Ast.kernel
