(** Recursive-descent parser for the C subset of the paper (Section 2.4):
    declarations of scalar and multi-dimensional array variables followed
    by loop-nest code. Loop bounds must fold to constants; strides are
    fixed. The intrinsics [abs], [min], [max] and the compiler-output
    construct [rotate_registers] are accepted so pretty-printed
    transformed code round-trips. Fixed-width type names ([int16],
    [uint8], ...) are accepted alongside the C spellings. *)

exception Error of Lexer.pos * string

(** Parse a kernel from source text; raises {!Error} or {!Lexer.Error}
    with a position on malformed input. Semantic checks (declarations,
    subscript arity, index discipline) are included. *)
val kernel_of_string : name:string -> string -> Ir.Ast.kernel

(** [Result]-returning variant with a rendered ["line:col: message"]
    diagnostic. *)
val kernel_of_string_res :
  name:string -> string -> (Ir.Ast.kernel, string) result
