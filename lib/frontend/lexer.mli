(** Hand-written lexer for the C subset: integer literals, identifiers,
    keywords, operators, with [//] and [/* ... */] comments and
    line/column tracking for diagnostics. *)

type pos = { line : int; col : int }
type located = { tok : Token.t; pos : pos }

exception Error of pos * string

(** Tokenize the whole input eagerly; the last element is [EOF]. *)
val tokenize : string -> located list
