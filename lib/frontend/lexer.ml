(** Hand-written lexer for the C subset. Tracks line/column positions for
    diagnostics; supports [//] and [/* ... */] comments. *)

type pos = { line : int; col : int }

type located = { tok : Token.t; pos : pos }

exception Error of pos * string

let error pos fmt = Format.kasprintf (fun msg -> raise (Error (pos, msg))) fmt

type cursor = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable col : int;
}

let cursor src = { src; off = 0; line = 1; col = 1 }
let eof c = c.off >= String.length c.src
let peek c = if eof c then '\000' else c.src.[c.off]

let peek2 c =
  if c.off + 1 >= String.length c.src then '\000' else c.src.[c.off + 1]

let advance c =
  if not (eof c) then begin
    if c.src.[c.off] = '\n' then begin
      c.line <- c.line + 1;
      c.col <- 1
    end
    else c.col <- c.col + 1;
    c.off <- c.off + 1
  end

let pos_of c = { line = c.line; col = c.col }

let is_digit ch = ch >= '0' && ch <= '9'

let is_ident_start ch =
  (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || ch = '_'

let is_ident ch = is_ident_start ch || is_digit ch

let rec skip_space c =
  match peek c with
  | ' ' | '\t' | '\r' | '\n' ->
      advance c;
      skip_space c
  | '/' when peek2 c = '/' ->
      while (not (eof c)) && peek c <> '\n' do
        advance c
      done;
      skip_space c
  | '/' when peek2 c = '*' ->
      let start = pos_of c in
      advance c;
      advance c;
      let rec go () =
        if eof c then error start "unterminated comment"
        else if peek c = '*' && peek2 c = '/' then begin
          advance c;
          advance c
        end
        else begin
          advance c;
          go ()
        end
      in
      go ();
      skip_space c
  | _ -> ()

let keyword = function
  | "for" -> Some Token.KW_FOR
  | "if" -> Some Token.KW_IF
  | "else" -> Some Token.KW_ELSE
  | "int" -> Some Token.KW_INT
  | "char" -> Some Token.KW_CHAR
  | "short" -> Some Token.KW_SHORT
  | "long" -> Some Token.KW_LONG
  | "unsigned" -> Some Token.KW_UNSIGNED
  | "signed" -> Some Token.KW_SIGNED
  | _ -> None

let next c : located =
  skip_space c;
  let pos = pos_of c in
  let tok : Token.t =
    if eof c then Token.EOF
    else
      let ch = peek c in
      if is_digit ch then begin
        let start = c.off in
        while is_digit (peek c) do
          advance c
        done;
        let text = String.sub c.src start (c.off - start) in
        match int_of_string_opt text with
        | Some n -> Token.INT_LIT n
        | None -> error pos "integer literal out of range: %s" text
      end
      else if is_ident_start ch then begin
        let start = c.off in
        while is_ident (peek c) do
          advance c
        done;
        let text = String.sub c.src start (c.off - start) in
        match keyword text with Some t -> t | None -> Token.IDENT text
      end
      else begin
        let two tok = advance c; advance c; tok in
        let one tok = advance c; tok in
        match (ch, peek2 c) with
        | '+', '=' -> two Token.PLUS_ASSIGN
        | '+', '+' -> two Token.PLUS_PLUS
        | '-', '=' -> two Token.MINUS_ASSIGN
        | '<', '=' -> two Token.LE
        | '<', '<' -> two Token.SHL
        | '>', '=' -> two Token.GE
        | '>', '>' -> two Token.SHR
        | '=', '=' -> two Token.EQ
        | '!', '=' -> two Token.NE
        | '&', '&' -> two Token.AMP_AMP
        | '|', '|' -> two Token.BAR_BAR
        | '(', _ -> one Token.LPAREN
        | ')', _ -> one Token.RPAREN
        | '{', _ -> one Token.LBRACE
        | '}', _ -> one Token.RBRACE
        | '[', _ -> one Token.LBRACKET
        | ']', _ -> one Token.RBRACKET
        | ';', _ -> one Token.SEMI
        | ',', _ -> one Token.COMMA
        | '?', _ -> one Token.QUESTION
        | ':', _ -> one Token.COLON
        | '=', _ -> one Token.ASSIGN
        | '+', _ -> one Token.PLUS
        | '-', _ -> one Token.MINUS
        | '*', _ -> one Token.STAR
        | '/', _ -> one Token.SLASH
        | '%', _ -> one Token.PERCENT
        | '<', _ -> one Token.LT
        | '>', _ -> one Token.GT
        | '!', _ -> one Token.BANG
        | '&', _ -> one Token.AMP
        | '|', _ -> one Token.BAR
        | '^', _ -> one Token.CARET
        | '~', _ -> one Token.TILDE
        | _ -> error pos "unexpected character %C" ch
      end
  in
  { tok; pos }

(** Tokenize the whole input eagerly; the parser indexes into the result. *)
let tokenize src =
  let c = cursor src in
  let rec go acc =
    let t = next c in
    if t.tok = Token.EOF then List.rev (t :: acc) else go (t :: acc)
  in
  go []
