(** Recursive-descent parser for the C subset of the paper (Section 2.4):
    declarations of scalar and (multi-dimensional) array variables followed
    by loop-nest code. Loop bounds must fold to constants; strides are
    fixed. The intrinsics [abs], [min], [max] and the compiler-output
    construct [rotate_registers] are accepted so that pretty-printed
    transformed code round-trips. *)

open Ir

exception Error of Lexer.pos * string

let error pos fmt = Format.kasprintf (fun msg -> raise (Error (pos, msg))) fmt

type state = { toks : Lexer.located array; mutable pos : int }

let current st = st.toks.(st.pos)
let peek_tok st = (current st).tok
let peek_pos st = (current st).pos

let advance st =
  if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let expect st tok =
  let t = current st in
  if t.tok = tok then advance st
  else
    error t.pos "expected '%s' but found '%s'" (Token.to_string tok)
      (Token.to_string t.tok)

let accept st tok =
  if peek_tok st = tok then begin
    advance st;
    true
  end
  else false

let ident st =
  match current st with
  | { tok = Token.IDENT name; _ } ->
      advance st;
      name
  | t -> error t.pos "expected identifier, found '%s'" (Token.to_string t.tok)

(* ------------------------------------------------------------------ *)
(* Types *)

(* Fixed-width names (the pretty printer's output) double as type
   specifiers: int8, int16, int32, uint8, uint16, uint32. *)
let fixed_width_type = function
  | "int8" -> Some (Dtype.make ~bits:8 ~signed:true)
  | "int16" -> Some (Dtype.make ~bits:16 ~signed:true)
  | "int32" -> Some (Dtype.make ~bits:32 ~signed:true)
  | "uint8" -> Some (Dtype.make ~bits:8 ~signed:false)
  | "uint16" -> Some (Dtype.make ~bits:16 ~signed:false)
  | "uint32" -> Some (Dtype.make ~bits:32 ~signed:false)
  | _ -> None

let is_type_start = function
  | Token.KW_INT | Token.KW_CHAR | Token.KW_SHORT | Token.KW_LONG
  | Token.KW_UNSIGNED | Token.KW_SIGNED ->
      true
  | Token.IDENT name -> fixed_width_type name <> None
  | _ -> false

let rec parse_type st : Dtype.t =
  let pos = peek_pos st in
  match peek_tok st with
  | Token.IDENT name when fixed_width_type name <> None ->
      advance st;
      Option.get (fixed_width_type name)
  | _ -> parse_c_type st pos

and parse_c_type st pos : Dtype.t =
  let signed = ref true in
  let bits = ref None in
  let rec go () =
    match peek_tok st with
    | Token.KW_UNSIGNED ->
        advance st;
        signed := false;
        go ()
    | Token.KW_SIGNED ->
        advance st;
        signed := true;
        go ()
    | Token.KW_CHAR ->
        advance st;
        bits := Some 8;
        go ()
    | Token.KW_SHORT ->
        advance st;
        bits := Some 16;
        (* absorb the optional "int" of "short int" *)
        ignore (accept st Token.KW_INT);
        go ()
    | Token.KW_LONG ->
        advance st;
        bits := Some 32;
        ignore (accept st Token.KW_INT);
        go ()
    | Token.KW_INT ->
        advance st;
        if !bits = None then bits := Some 32;
        go ()
    | _ -> ()
  in
  go ();
  match !bits with
  | Some b -> Dtype.make ~bits:b ~signed:!signed
  | None -> error pos "incomplete type specifier"

(* ------------------------------------------------------------------ *)
(* Expressions: precedence climbing *)

let binop_of_token = function
  | Token.BAR_BAR -> Some (Ast.Or, 1)
  | Token.AMP_AMP -> Some (Ast.And, 2)
  | Token.BAR -> Some (Ast.Bor, 3)
  | Token.CARET -> Some (Ast.Bxor, 4)
  | Token.AMP -> Some (Ast.Band, 5)
  | Token.EQ -> Some (Ast.Eq, 6)
  | Token.NE -> Some (Ast.Ne, 6)
  | Token.LT -> Some (Ast.Lt, 7)
  | Token.LE -> Some (Ast.Le, 7)
  | Token.GT -> Some (Ast.Gt, 7)
  | Token.GE -> Some (Ast.Ge, 7)
  | Token.SHL -> Some (Ast.Shl, 8)
  | Token.SHR -> Some (Ast.Shr, 8)
  | Token.PLUS -> Some (Ast.Add, 9)
  | Token.MINUS -> Some (Ast.Sub, 9)
  | Token.STAR -> Some (Ast.Mul, 10)
  | Token.SLASH -> Some (Ast.Div, 10)
  | Token.PERCENT -> Some (Ast.Mod, 10)
  | _ -> None

let rec parse_expr st : Ast.expr =
  let cond = parse_binary st 1 in
  if accept st Token.QUESTION then begin
    let t = parse_expr st in
    expect st Token.COLON;
    let e = parse_expr st in
    Ast.Cond (cond, t, e)
  end
  else cond

and parse_binary st min_prec : Ast.expr =
  let lhs = parse_unary st in
  let rec loop lhs =
    match binop_of_token (peek_tok st) with
    | Some (op, p) when p >= min_prec ->
        advance st;
        let rhs = parse_binary st (p + 1) in
        loop (Ast.Bin (op, lhs, rhs))
    | _ -> lhs
  in
  loop lhs

and parse_unary st : Ast.expr =
  match peek_tok st with
  | Token.MINUS ->
      advance st;
      Ast.Un (Ast.Neg, parse_unary st)
  | Token.BANG ->
      advance st;
      Ast.Un (Ast.Not, parse_unary st)
  | Token.TILDE ->
      advance st;
      Ast.Un (Ast.Bnot, parse_unary st)
  | Token.PLUS ->
      advance st;
      parse_unary st
  | _ -> parse_primary st

and parse_primary st : Ast.expr =
  let t = current st in
  match t.tok with
  | Token.INT_LIT n ->
      advance st;
      Ast.Int n
  | Token.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Token.RPAREN;
      e
  | Token.IDENT name -> (
      advance st;
      match peek_tok st with
      | Token.LPAREN -> parse_call st t.pos name
      | Token.LBRACKET ->
          let subs = parse_subscripts st in
          Ast.Arr (name, subs)
      | _ -> Ast.Var name)
  | tok -> error t.pos "expected expression, found '%s'" (Token.to_string tok)

and parse_subscripts st =
  let rec go acc =
    if accept st Token.LBRACKET then begin
      let e = parse_expr st in
      expect st Token.RBRACKET;
      go (e :: acc)
    end
    else List.rev acc
  in
  go []

and parse_call st pos name =
  expect st Token.LPAREN;
  let args =
    if peek_tok st = Token.RPAREN then []
    else
      let rec go acc =
        let e = parse_expr st in
        if accept st Token.COMMA then go (e :: acc) else List.rev (e :: acc)
      in
      go []
  in
  expect st Token.RPAREN;
  match (name, args) with
  | "abs", [ a ] -> Ast.Un (Ast.Abs, a)
  | "min", [ a; b ] -> Ast.Bin (Ast.Min, a, b)
  | "max", [ a; b ] -> Ast.Bin (Ast.Max, a, b)
  | _ ->
      error pos "unknown function '%s' with %d argument(s)" name
        (List.length args)

(* ------------------------------------------------------------------ *)
(* Constant folding for loop bounds *)

let rec const_eval st (e : Ast.expr) : int =
  let pos = peek_pos st in
  match e with
  | Ast.Int n -> n
  | Ast.Un (Ast.Neg, a) -> -const_eval st a
  | Ast.Bin (op, a, b) -> (
      let va = const_eval st a and vb = const_eval st b in
      match op with
      | Ast.Add -> va + vb
      | Ast.Sub -> va - vb
      | Ast.Mul -> va * vb
      | Ast.Div when vb <> 0 -> va / vb
      | _ -> error pos "loop bound is not a constant expression")
  | _ -> error pos "loop bound is not a constant expression"

(* ------------------------------------------------------------------ *)
(* Statements *)

let rec parse_stmt st : Ast.stmt =
  match peek_tok st with
  | Token.KW_FOR -> parse_for st
  | Token.KW_IF -> parse_if st
  | Token.IDENT "rotate_registers" -> parse_rotate st
  | Token.IDENT _ -> parse_assign st
  | tok -> error (peek_pos st) "expected statement, found '%s'" (Token.to_string tok)

and parse_block st : Ast.stmt list =
  if accept st Token.LBRACE then begin
    let rec go acc =
      if accept st Token.RBRACE then List.rev acc else go (parse_stmt st :: acc)
    in
    go []
  end
  else [ parse_stmt st ]

and parse_for st : Ast.stmt =
  let pos = peek_pos st in
  expect st Token.KW_FOR;
  expect st Token.LPAREN;
  let index = ident st in
  expect st Token.ASSIGN;
  let lo = const_eval st (parse_expr st) in
  expect st Token.SEMI;
  let test_var = ident st in
  if test_var <> index then
    error pos "loop test must compare the index '%s', found '%s'" index test_var;
  let exclusive =
    match peek_tok st with
    | Token.LT ->
        advance st;
        true
    | Token.LE ->
        advance st;
        false
    | tok -> error (peek_pos st) "expected '<' or '<=', found '%s'" (Token.to_string tok)
  in
  let bound = const_eval st (parse_expr st) in
  let hi = if exclusive then bound else bound + 1 in
  expect st Token.SEMI;
  let inc_var = ident st in
  if inc_var <> index then
    error pos "loop increment must update the index '%s', found '%s'" index inc_var;
  let step =
    match peek_tok st with
    | Token.PLUS_PLUS ->
        advance st;
        1
    | Token.PLUS_ASSIGN ->
        advance st;
        const_eval st (parse_expr st)
    | Token.ASSIGN ->
        (* i = i + c *)
        advance st;
        let e = parse_expr st in
        (match e with
        | Ast.Bin (Ast.Add, Ast.Var v, step_e) when v = index ->
            const_eval st step_e
        | _ -> error pos "unsupported loop increment")
    | tok -> error (peek_pos st) "expected loop increment, found '%s'" (Token.to_string tok)
  in
  if step <= 0 then error pos "loop stride must be positive";
  expect st Token.RPAREN;
  let body = parse_block st in
  let l_span = Some { Ast.sp_line = pos.Lexer.line; sp_col = pos.Lexer.col } in
  Ast.For { index; lo; hi; step; body; l_span }

and parse_if st : Ast.stmt =
  expect st Token.KW_IF;
  expect st Token.LPAREN;
  let c = parse_expr st in
  expect st Token.RPAREN;
  let then_ = parse_block st in
  let else_ = if accept st Token.KW_ELSE then parse_block st else [] in
  Ast.If (c, then_, else_)

and parse_rotate st : Ast.stmt =
  advance st (* rotate_registers *);
  expect st Token.LPAREN;
  let rec go acc =
    let name = ident st in
    if accept st Token.COMMA then go (name :: acc) else List.rev (name :: acc)
  in
  let regs = go [] in
  expect st Token.RPAREN;
  expect st Token.SEMI;
  Ast.Rotate regs

and parse_assign st : Ast.stmt =
  let pos = peek_pos st in
  let name = ident st in
  let lv =
    if peek_tok st = Token.LBRACKET then Ast.Larr (name, parse_subscripts st)
    else Ast.Lvar name
  in
  let as_expr = function
    | Ast.Lvar v -> Ast.Var v
    | Ast.Larr (a, subs) -> Ast.Arr (a, subs)
  in
  let stmt =
    match peek_tok st with
    | Token.ASSIGN ->
        advance st;
        Ast.Assign (lv, parse_expr st)
    | Token.PLUS_ASSIGN ->
        advance st;
        Ast.Assign (lv, Ast.Bin (Ast.Add, as_expr lv, parse_expr st))
    | Token.MINUS_ASSIGN ->
        advance st;
        Ast.Assign (lv, Ast.Bin (Ast.Sub, as_expr lv, parse_expr st))
    | tok -> error pos "expected assignment, found '%s'" (Token.to_string tok)
  in
  expect st Token.SEMI;
  stmt

(* ------------------------------------------------------------------ *)
(* Declarations and program *)

let parse_decl st (arrays, scalars) =
  let elem = parse_type st in
  let rec one (arrays, scalars) =
    let pos = peek_pos st in
    let name = ident st in
    let dims =
      let rec go acc =
        if accept st Token.LBRACKET then begin
          let n = const_eval st (parse_expr st) in
          expect st Token.RBRACKET;
          if n <= 0 then error pos "array dimension must be positive";
          go (n :: acc)
        end
        else List.rev acc
      in
      go []
    in
    let dup =
      List.exists (fun (a : Ast.array_decl) -> a.a_name = name) arrays
      || List.exists (fun (s : Ast.scalar_decl) -> s.s_name = name) scalars
    in
    if dup then error pos "duplicate declaration of '%s'" name;
    let span = Some { Ast.sp_line = pos.Lexer.line; sp_col = pos.Lexer.col } in
    let acc =
      if dims = [] then
        ( arrays,
          { Ast.s_name = name; s_elem = elem; s_kind = Ast.Temp; s_span = span }
          :: scalars )
      else
        ( { Ast.a_name = name; a_elem = elem; a_dims = dims; a_span = span }
          :: arrays,
          scalars )
    in
    if accept st Token.COMMA then one acc else acc
  in
  let acc = one (arrays, scalars) in
  expect st Token.SEMI;
  acc

(* ------------------------------------------------------------------ *)
(* Semantic checks *)

let check_kernel st (k : Ast.kernel) =
  let pos = { Lexer.line = 0; col = 0 } in
  ignore st;
  let scalar_declared v =
    List.exists (fun (s : Ast.scalar_decl) -> s.s_name = v) k.k_scalars
  in
  let rec check_expr bound (e : Ast.expr) =
    match e with
    | Ast.Int _ -> ()
    | Ast.Var v ->
        if not (List.mem v bound || scalar_declared v) then
          error pos "use of undeclared variable '%s'" v
    | Ast.Arr (a, subs) -> (
        match Ast.find_array k a with
        | None -> error pos "use of undeclared array '%s'" a
        | Some d ->
            if List.length subs <> List.length d.a_dims then
              error pos "array '%s' has %d dimension(s) but %d subscript(s)" a
                (List.length d.a_dims) (List.length subs);
            List.iter (check_expr bound) subs)
    | Ast.Bin (_, a, b) ->
        check_expr bound a;
        check_expr bound b
    | Ast.Un (_, a) -> check_expr bound a
    | Ast.Cond (c, t, e) ->
        check_expr bound c;
        check_expr bound t;
        check_expr bound e
  in
  let rec check_stmt bound (s : Ast.stmt) =
    match s with
    | Ast.Assign (Ast.Lvar v, e) ->
        if List.mem v bound then error pos "assignment to loop index '%s'" v;
        if not (scalar_declared v) then
          error pos "assignment to undeclared scalar '%s'" v;
        check_expr bound e
    | Ast.Assign (Ast.Larr (a, subs), e) ->
        check_expr bound (Ast.Arr (a, subs));
        check_expr bound e
    | Ast.If (c, t, e) ->
        check_expr bound c;
        List.iter (check_stmt bound) t;
        List.iter (check_stmt bound) e
    | Ast.For l ->
        if List.mem l.index bound then
          error pos "loop index '%s' shadows an enclosing index" l.index;
        List.iter (check_stmt (l.index :: bound)) l.body
    | Ast.Rotate rs ->
        List.iter
          (fun r ->
            if not (scalar_declared r) then
              error pos "rotate_registers over undeclared scalar '%s'" r)
          rs
  in
  List.iter (check_stmt []) k.k_body;
  k

let parse_program st ~name : Ast.kernel =
  let rec decls acc =
    if is_type_start (peek_tok st) then decls (parse_decl st acc) else acc
  in
  let arrays, scalars = decls ([], []) in
  let rec stmts acc =
    if peek_tok st = Token.EOF then List.rev acc
    else stmts (parse_stmt st :: acc)
  in
  let body = stmts [] in
  let k =
    {
      Ast.k_name = name;
      k_arrays = List.rev arrays;
      k_scalars = List.rev scalars;
      k_body = body;
    }
  in
  check_kernel st (Loop_nest.validate k)

(** Parse a kernel from source text. Raises {!Error} or {!Lexer.Error}
    with a position on malformed input. *)
let kernel_of_string ~name src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0 } in
  parse_program st ~name

(** [Result]-returning variant with a rendered diagnostic. *)
let kernel_of_string_res ~name src =
  match kernel_of_string ~name src with
  | k -> Ok k
  | exception Error (pos, msg) ->
      Result.Error (Printf.sprintf "%d:%d: %s" pos.line pos.col msg)
  | exception Lexer.Error (pos, msg) ->
      Result.Error (Printf.sprintf "%d:%d: %s" pos.Lexer.line pos.Lexer.col msg)
  | exception Invalid_argument msg ->
      (* structural domain violations from Loop_nest.validate *)
      Result.Error msg
