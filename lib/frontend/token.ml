(** Tokens of the C subset accepted by the front end. *)

type t =
  | INT_LIT of int
  | IDENT of string
  | KW_FOR
  | KW_IF
  | KW_ELSE
  | KW_INT
  | KW_CHAR
  | KW_SHORT
  | KW_LONG
  | KW_UNSIGNED
  | KW_SIGNED
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | QUESTION
  | COLON
  | ASSIGN  (** [=] *)
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | PLUS_PLUS
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | AMP_AMP
  | BAR_BAR
  | BANG
  | AMP
  | BAR
  | CARET
  | TILDE
  | SHL
  | SHR
  | EOF

let to_string = function
  | INT_LIT n -> string_of_int n
  | IDENT s -> s
  | KW_FOR -> "for"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_INT -> "int"
  | KW_CHAR -> "char"
  | KW_SHORT -> "short"
  | KW_LONG -> "long"
  | KW_UNSIGNED -> "unsigned"
  | KW_SIGNED -> "signed"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | QUESTION -> "?"
  | COLON -> ":"
  | ASSIGN -> "="
  | PLUS_ASSIGN -> "+="
  | MINUS_ASSIGN -> "-="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | PLUS_PLUS -> "++"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EQ -> "=="
  | NE -> "!="
  | AMP_AMP -> "&&"
  | BAR_BAR -> "||"
  | BANG -> "!"
  | AMP -> "&"
  | BAR -> "|"
  | CARET -> "^"
  | TILDE -> "~"
  | SHL -> "<<"
  | SHR -> ">>"
  | EOF -> "<eof>"
