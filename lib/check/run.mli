(** Driver: run every checker pass over a kernel and render findings.
    Shared by [defacto check], CI and the verified explorer. *)

open Ir

type config = {
  options : Transform.Pipeline.options option;
      (** legality/validation against these concrete pipeline options *)
  validate : bool;  (** run the (more expensive) pipeline validation *)
  max_points : int option;  (** footprint enumeration budget *)
}

val default : config

(** The passes a configuration runs, in order: wellformed, bounds,
    uninit, deadstore, legality, and — when [config.validate] —
    validate. (Well-formedness errors short-circuit the rest at run
    time.) *)
val pass_names : config -> string list

(** Wellformed, then (unless well-formedness errored) bounds, the
    flow-graph passes (uninit, deadstore), legality and — when
    [config.validate] — pipeline validation. The result is sorted
    deterministically by (span, pass, stage, severity, message). *)
val all : ?config:config -> Ast.kernel -> Diag.t list

(** Deterministic diagnostic order (the sort {!all} applies). *)
val compare_diag : Diag.t -> Diag.t -> int

(** 0 clean (at most Info), 1 warnings, 2 errors. [~fail_on:Warning]
    tightens the threshold: warnings exit 2 as well. *)
val exit_code : ?fail_on:Diag.severity -> Diag.t list -> int

val render_human : ?file:string -> kernel:string -> Diag.t list -> string

(** One kernel's findings as a JSON object (kernel, counts, exit_code,
    diagnostics array). [passes] adds a ["passes"] array tagging which
    passes ran; [fail_on] is reflected in the ["exit_code"] field. *)
val render_json :
  ?file:string ->
  ?fail_on:Diag.severity ->
  ?passes:string list ->
  kernel:string ->
  Diag.t list ->
  string
