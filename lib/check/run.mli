(** Driver: run every checker pass over a kernel and render findings.
    Shared by [defacto check], CI and the verified explorer. *)

open Ir

type config = {
  options : Transform.Pipeline.options option;
      (** legality/validation against these concrete pipeline options *)
  validate : bool;  (** run the (more expensive) pipeline validation *)
  max_points : int option;  (** footprint enumeration budget *)
}

val default : config

(** Wellformed, then (unless well-formedness errored) bounds, legality
    and — when [config.validate] — pipeline validation. *)
val all : ?config:config -> Ast.kernel -> Diag.t list

(** 0 clean (at most Info), 1 warnings, 2 errors. *)
val exit_code : Diag.t list -> int

val render_human : ?file:string -> kernel:string -> Diag.t list -> string

(** One kernel's findings as a JSON object (kernel, counts, exit_code,
    diagnostics array). *)
val render_json : ?file:string -> kernel:string -> Diag.t list -> string
