(** Uninitialized-read detection: flow-graph use-before-def facts with
    the {!Bounds} severity discipline — provable uninitialized reads are
    errors, possible (not-on-every-path) ones are warnings. Reads made
    by a register bank rotation cap at warning: a rotation only moves
    lane values, so an unassigned source lane is a defect only if a
    later real read consumes it. *)

open Ir

(** [check k] builds the kernel's flow graph (or reuses [graph]) and
    reports uninitialized scalar reads. [cost] accumulates flowgraph
    construction/solve counters. *)
val check :
  ?graph:Analysis.Flowgraph.t ->
  ?cost:Analysis.Flowgraph.cost ->
  Ast.kernel ->
  Diag.t list
