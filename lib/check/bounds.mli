(** Affine out-of-bounds detection via interval propagation of
    {!Analysis.Affine} subscript forms over the loop-bound box. Provable
    overruns (unguarded affine access whose interval leaves the extent)
    are errors; possible overruns (guarded accesses) are warnings;
    non-affine or symbolic subscripts are unverifiable Info findings. *)

open Ir

(** Inclusive range of values a loop index takes; [None] exactly when
    the body never executes — zero-trip bounds ([hi <= lo], e.g.
    [for i in 0..0]) or a non-positive step (which {!Wellformed}
    rejects). Never raises. *)
val index_range : Ast.loop -> (int * int) option

val check : Ast.kernel -> Diag.t list
