(** Affine out-of-bounds detection via interval propagation of
    {!Analysis.Affine} subscript forms over the loop-bound box. Provable
    overruns (unguarded affine access whose interval leaves the extent)
    are errors; possible overruns (guarded accesses) are warnings;
    non-affine or symbolic subscripts are unverifiable Info findings. *)

open Ir

(** Range of values a loop index takes; [None] for zero-trip loops. *)
val index_range : Ast.loop -> (int * int) option

val check : Ast.kernel -> Diag.t list
