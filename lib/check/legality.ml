(** Per-transform legality predicates, checked *before* the rewrite.

    The pipeline's stages each have a static precondition (Section 4 of
    the paper): unroll-and-jam must not reverse a dependence when the
    unrolled outer iterations are fused; scalar replacement requires
    consistent dependence distances within a uniformly generated set;
    tiling and peeling require their loop to sit on the nest spine.

    Since the flow-graph refactor the jam and replaceability predicates
    consult dataflow facts ({!Analysis.Flowgraph}) *alongside* the
    dependence analysis, and are strictly stronger than the old
    dependence-only forms (which stay exposed as [*_dependence] — the
    test suite cross-validates [new => old] on random kernels):

    - [jam_unroll_legal] additionally rejects loop-carried {e scalar}
      recurrences that are not commutative/associative reductions. The
      array dependence test cannot see them — [s = s * 2 + A[i][j]]
      under unroll-and-jam silently reorders the chain.
    - [replaceable_group] additionally rejects groups whose array is
      also written (for read sets) or read (for write sets) through a
      {e different} access pattern that reaches the group's accesses:
      caching the set in registers would miss those foreign accesses. *)

open Ir
module Dependence = Analysis.Dependence
module Reuse = Analysis.Reuse
module Flowgraph = Analysis.Flowgraph

let pass = "legality"

let diagf ?span sev fmt = Diag.diagf ?span sev ~pass fmt

(* ------------------------------------------------------------------ *)
(* Dependence-only predicates (the pre-flowgraph forms) *)

(** Fusing the unrolled outer iterations preserves every *array*
    dependence. Same predicate the pipeline consults
    ({!Transform.Unroll.jam_legal}); conservative on coupled distances,
    blind to scalar recurrences. *)
let jam_unroll_legal_dependence = Transform.Unroll.jam_legal

(** Every pair of members of the uniformly generated set has a
    consistent (exact or unconstrained) dependence distance. *)
let replaceable_group_dependence (_k : Ast.kernel) (g : Reuse.group) : bool =
  let members = Array.of_list g.Reuse.members in
  let n = Array.length members in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if !ok then
        match Dependence.ug_distance_vector members.(i) members.(j) with
        | Dependence.Independent -> ()
        | Dependence.Distance entries ->
            if
              List.exists
                (function
                  | Dependence.Coupled -> true
                  | Dependence.Exact _ | Dependence.Any -> false)
                entries
            then ok := false
        | Dependence.Unknown -> ok := false
    done
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* Scalar recurrences under unroll-and-jam *)

let commutative_assoc = function
  | Ast.Add | Ast.Mul | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Min | Ast.Max ->
      true
  | _ -> false

let count_var s e =
  Ast.fold_expr
    (fun n e -> match e with Ast.Var v when String.equal v s -> n + 1 | _ -> n)
    0 e

(* [s = s ⊕ e] with ⊕ commutative and associative and [e] independent of
   [s] — the one loop-carried scalar shape unroll-and-jam may reorder
   freely (the accumulated multiset is permutation-invariant). *)
let reduction_op s (rhs : Ast.expr) : Ast.binop option =
  match rhs with
  | Ast.Bin (op, a, b) when commutative_assoc op ->
      if a = Ast.Var s && count_var s b = 0 then Some op
      else if b = Ast.Var s && count_var s a = 0 then Some op
      else None
  | _ -> None

(* Is every body occurrence of [s] part of one single-operator
   reduction? Any other read (a guard, a subscript, an array store of
   the running value) observes intermediate sums, which jamming
   permutes. *)
let reduction_only (g : Flowgraph.t) (body : Flowgraph.node list) (s : string)
    : bool =
  let ok = ref true and op = ref None in
  List.iter
    (fun (nd : Flowgraph.node) ->
      if !ok then
        match nd.Flowgraph.kind with
        | Flowgraph.Assign (Ast.Lvar x, rhs) when String.equal x s -> (
            match reduction_op s rhs with
            | Some o -> (
                match !op with
                | None -> op := Some o
                | Some o' -> if o <> o' then ok := false)
            | None -> ok := false)
        | Flowgraph.Header _ -> ()
        | _ ->
            if
              List.exists
                (fun u -> Flowgraph.equal_loc u (Flowgraph.Scalar s))
                (Flowgraph.uses g nd.Flowgraph.id)
            then ok := false)
    body;
  !ok

(** First scalar whose loop-carried dependence chain unroll-and-jam
    would reorder, as [(loop index, scalar)]; [None] when every carried
    scalar is a plain reduction. Only non-innermost loops matter: the
    innermost-only fallback unrolls within one iteration and never
    reorders a chain. *)
let scalar_jam_hazard ?cost (g : Flowgraph.t) : (string * string) option =
  let live = Flowgraph.live ?cost g in
  let result = ref None in
  Array.iter
    (fun (hn : Flowgraph.node) ->
      if !result = None && g.Flowgraph.reachable.(hn.Flowgraph.id) then
        match hn.Flowgraph.kind with
        | Flowgraph.Header l ->
            let body =
              Array.to_list g.Flowgraph.nodes
              |> List.filter (fun (nd : Flowgraph.node) ->
                     nd.Flowgraph.id <> hn.Flowgraph.id
                     && List.memq l nd.Flowgraph.loops)
            in
            let indices =
              l.Ast.index
              :: List.filter_map
                   (fun (nd : Flowgraph.node) ->
                     match nd.Flowgraph.kind with
                     | Flowgraph.Header l' -> Some l'.Ast.index
                     | _ -> None)
                   body
            in
            let is_innermost =
              not
                (List.exists
                   (fun (nd : Flowgraph.node) ->
                     match nd.Flowgraph.kind with
                     | Flowgraph.Header _ -> true
                     | _ -> false)
                   body)
            in
            if not is_innermost then begin
              let body_ids =
                List.map (fun (nd : Flowgraph.node) -> nd.Flowgraph.id) body
              in
              let entries =
                List.filter
                  (fun i -> List.mem i body_ids)
                  g.Flowgraph.succ.(hn.Flowgraph.id)
              in
              let defined =
                body
                |> List.concat_map (fun (nd : Flowgraph.node) ->
                       Flowgraph.defs_at g nd.Flowgraph.id)
                |> List.filter_map (function
                     | Flowgraph.Scalar s -> Some s
                     | _ -> None)
                |> List.sort_uniq compare
              in
              List.iter
                (fun s ->
                  if !result = None && not (List.mem s indices) then
                    let carried =
                      (* live into the body: a body read may see the
                         previous outer iteration's value *)
                      List.exists
                        (fun e ->
                          Flowgraph.LocSet.mem (Flowgraph.Scalar s)
                            live.Flowgraph.before.(e))
                        entries
                    in
                    if carried && not (reduction_only g body s) then
                      result := Some (l.Ast.index, s))
                defined
            end
        | _ -> ())
    g.Flowgraph.nodes;
  !result

(** Dependence preservation *and* no reorderable scalar recurrence. *)
let jam_unroll_legal ?graph ?cost (k : Ast.kernel) : bool =
  jam_unroll_legal_dependence k
  &&
  let g = match graph with Some g -> g | None -> Flowgraph.build ?cost k in
  scalar_jam_hazard ?cost g = None

(* ------------------------------------------------------------------ *)
(* Scalar replacement: foreign accesses through other patterns *)

type replace_verdict =
  | Replaceable
  | Inconsistent_distances
  | Foreign_accesses of string

let linear_parts (fs : Affine.t list) =
  List.map (fun (f : Affine.t) -> Affine.make f.Affine.terms 0) fs

let same_linear fs gs =
  List.length fs = List.length gs && List.for_all2 Affine.equal fs gs

(* How a location relates to a group's access pattern: [`Match] same
   array and same subscript coefficients, [`Foreign] same array through
   another pattern (a whole-array loc counts as both), [`Other] a
   different array or a scalar. *)
let classify ~array ~pattern (l : Flowgraph.loc) =
  match l with
  | Flowgraph.Scalar _ -> `Other
  | Flowgraph.Whole a -> if String.equal a array then `Both else `Other
  | Flowgraph.Cell (a, fs) ->
      if not (String.equal a array) then `Other
      else if same_linear (linear_parts fs) pattern then `Match
      else `Foreign

let matches c = c = `Match || c = `Both
let foreign c = c = `Foreign || c = `Both
let intset_mem = Flowgraph.IntSet.mem

(* A foreign access the cached registers would miss: for a read set, a
   foreign *write* whose definition reaches one of the group's reads
   (the registers would serve a stale value); for a write set, a member
   write reaching a foreign *access* (which would see memory the
   registers have not flushed, or clobber it). *)
let foreign_hazard (g : Reuse.group) (graph : Flowgraph.t)
    (r : Flowgraph.reaching) : string option =
  match
    List.find_opt Analysis.Access.is_affine g.Reuse.members
  with
  | None -> None (* non-affine group: the dependence predicate decides *)
  | Some rep ->
      let pattern = linear_parts (Analysis.Access.affine_exn rep) in
      let array = g.Reuse.array in
      let classify = classify ~array ~pattern in
      let reachable = graph.Flowgraph.reachable in
      let hazard = ref None in
      (match g.Reuse.kind with
      | Analysis.Access.Read ->
          let foreign_defs =
            Array.to_list r.Flowgraph.r_defs
            |> List.filter (fun (d : Flowgraph.def) ->
                   foreign (classify d.Flowgraph.d_loc))
          in
          if foreign_defs <> [] then
            Array.iter
              (fun (nd : Flowgraph.node) ->
                if !hazard = None && reachable.(nd.Flowgraph.id) then
                  List.iter
                    (fun u ->
                      if !hazard = None && matches (classify u) then
                        if
                          List.exists
                            (fun (d : Flowgraph.def) ->
                              intset_mem d.Flowgraph.d_id
                                r.Flowgraph.r_sol.Flowgraph.before.(nd
                                .Flowgraph.id)
                              && Flowgraph.may_alias d.Flowgraph.d_loc u)
                            foreign_defs
                        then
                          hazard :=
                            Some
                              "a write through a different access pattern \
                               reaches the set's reads")
                    (Flowgraph.uses graph nd.Flowgraph.id))
              graph.Flowgraph.nodes
      | Analysis.Access.Write ->
          let member_defs =
            Array.to_list r.Flowgraph.r_defs
            |> List.filter (fun (d : Flowgraph.def) ->
                   matches (classify d.Flowgraph.d_loc))
          in
          Array.iter
            (fun (nd : Flowgraph.node) ->
              if !hazard = None && reachable.(nd.Flowgraph.id) then
                let foreign_here =
                  List.filter
                    (fun l -> foreign (classify l))
                    (Flowgraph.uses graph nd.Flowgraph.id
                    @ Flowgraph.defs_at graph nd.Flowgraph.id)
                in
                if foreign_here <> [] then
                  List.iter
                    (fun (d : Flowgraph.def) ->
                      if
                        !hazard = None
                        && intset_mem d.Flowgraph.d_id
                             r.Flowgraph.r_sol.Flowgraph.before.(nd
                             .Flowgraph.id)
                        && List.exists
                             (Flowgraph.may_alias d.Flowgraph.d_loc)
                             foreign_here
                      then
                        hazard :=
                          Some
                            "the set's writes reach an access through a \
                             different pattern")
                    member_defs)
            graph.Flowgraph.nodes);
      !hazard

(** Dependence-distance consistency *and* no reaching foreign access. *)
let replaceable_verdict ?graph ?cost (k : Ast.kernel) (g : Reuse.group) :
    replace_verdict =
  if not (replaceable_group_dependence k g) then Inconsistent_distances
  else
    let graph =
      match graph with Some g -> g | None -> Flowgraph.build ?cost k
    in
    let r = Flowgraph.reaching ?cost graph in
    match foreign_hazard g graph r with
    | Some why -> Foreign_accesses why
    | None -> Replaceable

let replaceable_group ?graph ?cost (k : Ast.kernel) (g : Reuse.group) : bool =
  replaceable_verdict ?graph ?cost k g = Replaceable

(* ------------------------------------------------------------------ *)

let spine_loop (k : Ast.kernel) index =
  List.find_opt
    (fun (l : Ast.loop) -> l.Ast.index = index)
    (Loop_nest.spine k.Ast.k_body)

(** Strip-mining [index] by [tile] actually splits a loop: the index
    names a spine loop and the tile, rounded down to a divisor of the
    trip exactly as {!Transform.Tiling.strip_mine} rounds it, is a
    proper fraction of the trip. (A trip-5 loop with tile 2 rounds to
    1 and splits nothing, so it is {e not} applicable.) *)
let tiling_applicable (k : Ast.kernel) ~index ~tile : bool =
  match spine_loop k index with
  | None -> false
  | Some l ->
      let trip = Ast.loop_trip l in
      tile > 1 && tile < trip
      &&
      let t = max 1 (min tile trip) in
      let rec down t = if trip mod t = 0 then t else down (t - 1) in
      down t > 1

(** Peeling the first iteration of [index] leaves a well-defined rest
    loop: the index is on the spine with at least one iteration. *)
let peeling_applicable (k : Ast.kernel) ~index : bool =
  match spine_loop k index with
  | None -> false
  | Some l -> Ast.loop_trip l >= 1

(* ------------------------------------------------------------------ *)
(* Joint-configuration verdicts: the pre-enumeration pruner *)

type config_verdict =
  | Config_legal
  | Config_redundant of Transform.Pipeline.config
  | Config_illegal of string

let rec body_has_loop index body =
  List.exists
    (function
      | Ast.For l -> l.Ast.index = index || body_has_loop index l.Ast.body
      | Ast.If (_, t, e) -> body_has_loop index t || body_has_loop index e
      | Ast.Assign _ | Ast.Rotate _ -> false)
    body

(** Whether [c] asks for an actual unroll-and-jam: a factor above 1 on a
    spine loop that is not the innermost (innermost-only unrolling never
    reorders anything). *)
let wants_jam (k : Ast.kernel) (c : Transform.Pipeline.config) : bool =
  let spine = Loop_nest.spine k.Ast.k_body in
  let innermost =
    match List.rev spine with l :: _ -> Some l.Ast.index | [] -> None
  in
  List.exists
    (fun (index, factor) ->
      factor > 1 && Some index <> innermost && spine_loop k index <> None)
    c.Transform.Pipeline.vector

(** Pre-enumeration verdict on one joint configuration, before any
    transform runs (the joint sweep's pruner):

    - [Config_illegal]: evaluating [c] either raises
      [Transform.Pipeline.Stage_error] (a tile index naming no loop of
      the kernel) or silently changes the kernel's results (a requested
      unroll-and-jam whose array dependences are preserved but which
      reorders a non-reduction loop-carried scalar recurrence — the
      hazard the dependence test cannot see). A jam that fails the
      dependence test is {e not} illegal: the pipeline falls back to
      innermost-only unrolling.
    - [Config_redundant canon]: [c] evaluates cleanly but denotes the
      same design as the canonical [canon] (an inapplicable tile
      request; an unroll factor above 1 on a loop the tile renames; a
      peel request with scalar replacement off, which peels nothing).
    - [Config_legal] otherwise. *)
let config_verdict ?graph ?cost (k : Ast.kernel)
    (c : Transform.Pipeline.config) : config_verdict =
  let illegal_tile =
    match c.Transform.Pipeline.tile with
    | Some (index, _) when not (body_has_loop index k.Ast.k_body) ->
        Some
          (Printf.sprintf "tile index '%s' names no loop of the kernel" index)
    | _ -> None
  in
  match illegal_tile with
  | Some why -> Config_illegal why
  | None ->
      if
        wants_jam k c
        && jam_unroll_legal_dependence k
        &&
        let g =
          match graph with Some g -> g | None -> Flowgraph.build ?cost k
        in
        scalar_jam_hazard ?cost g <> None
      then
        Config_illegal
          "unroll-and-jam at this vector reorders a loop-carried scalar \
           recurrence the dependence test cannot see"
      else begin
        (* Canonicalize the redundant spellings. *)
        let tile =
          match c.Transform.Pipeline.tile with
          | Some (index, t)
            when spine_loop k index <> None
                 && not (tiling_applicable k ~index ~tile:t) ->
              None
          | t -> t
        in
        let vector =
          match tile with
          | Some (ti, t) when tiling_applicable k ~index:ti ~tile:t ->
              (* Strip-mining renames the loop, so the unroller ignores
                 its entry: factor 1 is the canonical spelling. *)
              List.map
                (fun (i, u) -> if i = ti then (i, 1) else (i, u))
                c.Transform.Pipeline.vector
          | _ -> c.Transform.Pipeline.vector
        in
        let peel =
          (* With replacement off the scalar report is empty, so the
             peel stage has nothing to peel. *)
          c.Transform.Pipeline.peel && c.Transform.Pipeline.scalar_replace
        in
        let canon = { c with Transform.Pipeline.tile; vector; peel } in
        if canon = c then Config_legal else Config_redundant canon
      end

(* ------------------------------------------------------------------ *)

let check ?graph ?cost ?(options : Transform.Pipeline.options option)
    (k : Ast.kernel) : Diag.t list =
  let graph =
    match graph with Some g -> g | None -> Flowgraph.build ?cost k
  in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let spine = Loop_nest.spine k.Ast.k_body in
  let innermost =
    match List.rev spine with l :: _ -> Some l.Ast.index | [] -> None
  in
  let jam_dep_ok = jam_unroll_legal_dependence k in
  let hazard = scalar_jam_hazard ?cost graph in
  (* Unroll-and-jam. *)
  (match options with
  | None ->
      if not jam_dep_ok then
        add
          (diagf Info
             "unroll-and-jam is not provably legal: outer unrolling will fall \
              back to innermost-only unrolling");
      (match hazard with
      | Some (index, s) when jam_dep_ok ->
          add
            (diagf Info
               "unroll-and-jam is not provably safe: loop '%s' carries a \
                scalar recurrence on '%s' that fusing outer iterations would \
                reorder"
               index s)
      | _ -> ())
  | Some opts ->
      List.iter
        (fun (index, factor) ->
          let span =
            Option.bind (spine_loop k index) (fun l -> l.Ast.l_span)
          in
          if factor <= 0 then
            add
              (diagf Error ?span "unroll factor %d for loop '%s' is not \
                                  positive" factor index)
          else if factor > 1 && spine_loop k index = None then
            add
              (diagf Warning
                 "unroll factor for '%s' names no spine loop; the pipeline \
                  ignores it"
                 index))
        opts.Transform.Pipeline.vector;
      let wants_jam =
        List.exists
          (fun (index, factor) ->
            factor > 1 && Some index <> innermost
            && spine_loop k index <> None)
          opts.Transform.Pipeline.vector
      in
      if wants_jam && not jam_dep_ok then
        add
          (diagf Warning
             "unroll-and-jam at this vector is not provably legal \
              (dependence would be reordered); the pipeline falls back to \
              innermost-only unrolling");
      (match hazard with
      | Some (index, s) when wants_jam && jam_dep_ok ->
          add
            (diagf Warning
               "unroll-and-jam at this vector reorders the scalar recurrence \
                on '%s' carried by loop '%s' (the dependence test cannot see \
                scalar chains); results may differ"
               s index)
      | _ -> ());
      (* Tiling. *)
      match opts.Transform.Pipeline.tile with
      | None -> ()
      | Some (index, tile) ->
          if spine_loop k index = None then
            add
              (diagf Error "tile index '%s' does not name a spine loop" index)
          else if not (tiling_applicable k ~index ~tile) then
            add
              (diagf Warning
                 "tile %d on loop '%s' has no effect (not a proper fraction \
                  of the trip count)"
                 tile index));
  (* Scalar replacement: groups with reuse the rewrite will skip (or
     must skip) are reported as unexploited reuse, with the reason. *)
  let r = lazy (Flowgraph.reaching ?cost graph) in
  List.iter
    (fun (g : Reuse.group) ->
      let distinct = List.length (Reuse.distinct_members g) in
      let has_reuse =
        distinct > 1 || Reuse.invariant_loops g <> []
        || List.length g.Reuse.members > distinct
      in
      if has_reuse then
        let kind_name =
          match g.Reuse.kind with
          | Analysis.Access.Read -> "read"
          | Analysis.Access.Write -> "write"
        in
        if not (replaceable_group_dependence k g) then
          add
            (diagf Info
               "uniformly generated %s set on '%s' (%d members) has \
                inconsistent dependence distances; scalar replacement will \
                skip it"
               kind_name g.Reuse.array
               (List.length g.Reuse.members))
        else
          match foreign_hazard g graph (Lazy.force r) with
          | Some why ->
              add
                (diagf Info
                   "uniformly generated %s set on '%s' (%d members) is not \
                    register-cacheable: %s"
                   kind_name g.Reuse.array
                   (List.length g.Reuse.members)
                   why)
          | None -> ())
    (Reuse.groups k.Ast.k_body);
  List.rev !diags
