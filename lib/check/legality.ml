(** Per-transform legality predicates, checked *before* the rewrite.

    The pipeline's stages each have a static precondition (Section 4 of
    the paper): unroll-and-jam must not reverse a dependence when the
    unrolled outer iterations are fused; scalar replacement requires
    consistent dependence distances within a uniformly generated set;
    tiling and peeling require their loop to sit on the nest spine. This
    pass evaluates those predicates on the source kernel — optionally
    against a concrete {!Transform.Pipeline.options} — and reports what
    the pipeline will do about any that fail (fall back, skip, or
    raise). *)

open Ir
module Dependence = Analysis.Dependence
module Reuse = Analysis.Reuse

let pass = "legality"

let diagf ?span sev fmt = Diag.diagf ?span sev ~pass fmt

(** Fusing the unrolled outer iterations preserves every dependence.
    Same predicate the pipeline consults ({!Transform.Unroll.jam_legal});
    conservative on coupled distances. *)
let jam_unroll_legal = Transform.Unroll.jam_legal

(** Scalar replacement may cache this uniformly generated set in
    registers: every pair of members has a consistent (exact or
    unconstrained) dependence distance, so the reuse distance is the
    same on every iteration. *)
let replaceable_group (_k : Ast.kernel) (g : Reuse.group) : bool =
  let members = Array.of_list g.Reuse.members in
  let n = Array.length members in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if !ok then
        match Dependence.ug_distance_vector members.(i) members.(j) with
        | Dependence.Independent -> ()
        | Dependence.Distance entries ->
            if
              List.exists
                (function
                  | Dependence.Coupled -> true
                  | Dependence.Exact _ | Dependence.Any -> false)
                entries
            then ok := false
        | Dependence.Unknown -> ok := false
    done
  done;
  !ok

let spine_loop (k : Ast.kernel) index =
  List.find_opt
    (fun (l : Ast.loop) -> l.Ast.index = index)
    (Loop_nest.spine k.Ast.k_body)

(** Strip-mining [index] by [tile] actually splits a loop: the index
    names a spine loop and the tile is a proper fraction of its trip. *)
let tiling_applicable (k : Ast.kernel) ~index ~tile : bool =
  match spine_loop k index with
  | None -> false
  | Some l -> tile > 1 && tile < Ast.loop_trip l

(** Peeling the first iteration of [index] leaves a well-defined rest
    loop: the index is on the spine with at least one iteration. *)
let peeling_applicable (k : Ast.kernel) ~index : bool =
  match spine_loop k index with
  | None -> false
  | Some l -> Ast.loop_trip l >= 1

(* ------------------------------------------------------------------ *)

let check ?(options : Transform.Pipeline.options option) (k : Ast.kernel) :
    Diag.t list =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let spine = Loop_nest.spine k.Ast.k_body in
  let innermost =
    match List.rev spine with l :: _ -> Some l.Ast.index | [] -> None
  in
  let jam_ok = jam_unroll_legal k in
  (* Unroll-and-jam. *)
  (match options with
  | None ->
      if not jam_ok then
        add
          (diagf Info
             "unroll-and-jam is not provably legal: outer unrolling will fall \
              back to innermost-only unrolling")
  | Some opts ->
      List.iter
        (fun (index, factor) ->
          let span =
            Option.bind (spine_loop k index) (fun l -> l.Ast.l_span)
          in
          if factor <= 0 then
            add
              (diagf Error ?span "unroll factor %d for loop '%s' is not \
                                  positive" factor index)
          else if factor > 1 && spine_loop k index = None then
            add
              (diagf Warning
                 "unroll factor for '%s' names no spine loop; the pipeline \
                  ignores it"
                 index))
        opts.Transform.Pipeline.vector;
      let wants_jam =
        List.exists
          (fun (index, factor) ->
            factor > 1 && Some index <> innermost
            && spine_loop k index <> None)
          opts.Transform.Pipeline.vector
      in
      if wants_jam && not jam_ok then
        add
          (diagf Warning
             "unroll-and-jam at this vector is not provably legal \
              (dependence would be reordered); the pipeline falls back to \
              innermost-only unrolling");
      (* Tiling. *)
      match opts.Transform.Pipeline.tile with
      | None -> ()
      | Some (index, tile) ->
          if spine_loop k index = None then
            add
              (diagf Error "tile index '%s' does not name a spine loop" index)
          else if not (tiling_applicable k ~index ~tile) then
            add
              (diagf Warning
                 "tile %d on loop '%s' has no effect (not a proper fraction \
                  of the trip count)"
                 tile index));
  (* Scalar replacement: groups with reuse whose distances are not
     consistent are skipped by the rewrite, never transformed wrongly —
     report them as unexploited reuse. *)
  List.iter
    (fun (g : Reuse.group) ->
      let distinct = List.length (Reuse.distinct_members g) in
      let has_reuse =
        distinct > 1 || Reuse.invariant_loops g <> []
        || List.length g.Reuse.members > distinct
      in
      if has_reuse && not (replaceable_group k g) then
        add
          (diagf Info
             "uniformly generated %s set on '%s' (%d members) has \
              inconsistent dependence distances; scalar replacement will \
              skip it"
             (match g.Reuse.kind with
             | Analysis.Access.Read -> "read"
             | Analysis.Access.Write -> "write")
             g.Reuse.array
             (List.length g.Reuse.members)))
    (Reuse.groups k.Ast.k_body);
  List.rev !diags
