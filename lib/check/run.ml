(** Driver: run every pass over a kernel and render the findings.

    The CLI ([defacto check]), CI and the verified explorer all go
    through here so they share one pass order, one rendering and one
    exit-code discipline. Pass order mirrors a compiler: structural
    well-formedness first (and, when it errors, alone — the later passes
    assume a structurally sound kernel), then bounds, the flow-graph
    passes (uninit, deadstore), transform legality, and optionally the
    full pipeline validation. One flow graph is built per run and shared
    by every pass that consults it.

    Diagnostics are sorted deterministically by (span, pass, stage,
    severity, message) before rendering, so [--format=json] output is
    stable across runs and diffable in CI. *)

open Ir

type config = {
  options : Transform.Pipeline.options option;
      (** legality/validation against these concrete pipeline options;
          [Transform.Pipeline.default] when absent *)
  validate : bool;  (** run the (more expensive) pipeline validation *)
  max_points : int option;  (** footprint enumeration budget *)
}

let default = { options = None; validate = true; max_points = None }

(** Passes the configuration runs, in order (well-formedness errors
    short-circuit the rest). The JSON rendering exposes this list so CI
    can assert a pass was active. *)
let pass_names (config : config) : string list =
  [ "wellformed"; "bounds"; "uninit"; "deadstore"; "legality" ]
  @ if config.validate then [ "validate" ] else []

(* Deterministic render order: source position first (spanless findings
   lead, as whole-kernel notes), then pass, stage, severity (errors
   before warnings at one site), message. *)
let compare_diag (a : Diag.t) (b : Diag.t) =
  let span_key = function
    | None -> (-1, -1)
    | Some (sp : Ast.span) -> (sp.Ast.sp_line, sp.Ast.sp_col)
  in
  let c = compare (span_key a.Diag.span) (span_key b.Diag.span) in
  if c <> 0 then c
  else
    let c = compare a.Diag.pass b.Diag.pass in
    if c <> 0 then c
    else
      let c = compare a.Diag.stage b.Diag.stage in
      if c <> 0 then c
      else
        let c = Diag.compare_severity b.Diag.severity a.Diag.severity in
        if c <> 0 then c else compare a.Diag.message b.Diag.message

let sort = List.stable_sort compare_diag

let all ?(config = default) (k : Ast.kernel) : Diag.t list =
  let wf = Wellformed.check k in
  if Diag.errors wf <> [] then sort wf
  else
    let graph = Analysis.Flowgraph.build k in
    let bounds = Bounds.check k in
    let uninit = Uninit.check ~graph k in
    let deadstore = Deadstore.check ~graph k in
    let legality = Legality.check ~graph ?options:config.options k in
    let validation =
      if not config.validate then []
      else if Diag.errors bounds <> [] then []
        (* out-of-bounds source: the pipeline may legitimately move the
           overrun around; don't pile on stage findings *)
      else
        (Validate.run
           ?options:config.options
           ?max_points:config.max_points k)
          .Validate.diags
    in
    sort (wf @ bounds @ uninit @ deadstore @ legality @ validation)

(** [fail_on] tightens the threshold: with [Warning], warning findings
    exit 2 like errors do. The default [Error] keeps the usual 0/1/2. *)
let exit_code ?(fail_on = Diag.Error) ds =
  match (Diag.max_severity ds, fail_on) with
  | Some Diag.Error, _ -> 2
  | Some Diag.Warning, Diag.Error -> 1
  | Some Diag.Warning, _ -> 2
  | (Some Diag.Info | None), _ -> 0

let count sev ds = List.length (List.filter (fun d -> d.Diag.severity = sev) ds)

let render_human ?file ~kernel (ds : Diag.t list) : string =
  let buf = Buffer.create 256 in
  List.iter
    (fun d ->
      Buffer.add_string buf (Diag.render ?file d);
      Buffer.add_char buf '\n')
    ds;
  let e = count Diag.Error ds
  and w = count Diag.Warning ds
  and i = count Diag.Info ds in
  Buffer.add_string buf
    (if e = 0 && w = 0 then
       Printf.sprintf "%s: clean (%d informational finding(s))\n" kernel i
     else
       Printf.sprintf "%s: %d error(s), %d warning(s), %d informational\n"
         kernel e w i);
  Buffer.contents buf

let render_json ?file ?fail_on ?passes ~kernel (ds : Diag.t list) : string =
  let fields =
    [ Printf.sprintf {|"kernel": "%s"|} (Diag.json_escape kernel) ]
    @ (match file with
      | Some f -> [ Printf.sprintf {|"file": "%s"|} (Diag.json_escape f) ]
      | None -> [])
    @ (match passes with
      | Some ps ->
          [ Printf.sprintf {|"passes": [%s]|}
              (String.concat ", "
                 (List.map
                    (fun p -> Printf.sprintf {|"%s"|} (Diag.json_escape p))
                    ps));
          ]
      | None -> [])
    @ [
        Printf.sprintf {|"errors": %d|} (count Diag.Error ds);
        Printf.sprintf {|"warnings": %d|} (count Diag.Warning ds);
        Printf.sprintf {|"infos": %d|} (count Diag.Info ds);
        Printf.sprintf {|"exit_code": %d|} (exit_code ?fail_on ds);
        Printf.sprintf {|"diagnostics": [%s]|}
          (String.concat ", " (List.map Diag.to_json ds));
      ]
  in
  "{" ^ String.concat ", " fields ^ "}"
