(** Driver: run every pass over a kernel and render the findings.

    The CLI ([defacto check]), CI and the verified explorer all go
    through here so they share one pass order, one rendering and one
    exit-code discipline. Pass order mirrors a compiler: structural
    well-formedness first (and, when it errors, alone — the later passes
    assume a structurally sound kernel), then bounds, transform
    legality, and optionally the full pipeline validation. *)

open Ir

type config = {
  options : Transform.Pipeline.options option;
      (** legality/validation against these concrete pipeline options;
          [Transform.Pipeline.default] when absent *)
  validate : bool;  (** run the (more expensive) pipeline validation *)
  max_points : int option;  (** footprint enumeration budget *)
}

let default = { options = None; validate = true; max_points = None }

let all ?(config = default) (k : Ast.kernel) : Diag.t list =
  let wf = Wellformed.check k in
  if Diag.errors wf <> [] then wf
  else
    let bounds = Bounds.check k in
    let legality = Legality.check ?options:config.options k in
    let validation =
      if not config.validate then []
      else if Diag.errors bounds <> [] then []
        (* out-of-bounds source: the pipeline may legitimately move the
           overrun around; don't pile on stage findings *)
      else
        (Validate.run
           ?options:config.options
           ?max_points:config.max_points k)
          .Validate.diags
    in
    wf @ bounds @ legality @ validation

let exit_code = Diag.exit_code

let count sev ds = List.length (List.filter (fun d -> d.Diag.severity = sev) ds)

let render_human ?file ~kernel (ds : Diag.t list) : string =
  let buf = Buffer.create 256 in
  List.iter
    (fun d ->
      Buffer.add_string buf (Diag.render ?file d);
      Buffer.add_char buf '\n')
    ds;
  let e = count Diag.Error ds
  and w = count Diag.Warning ds
  and i = count Diag.Info ds in
  Buffer.add_string buf
    (if e = 0 && w = 0 then
       Printf.sprintf "%s: clean (%d informational finding(s))\n" kernel i
     else
       Printf.sprintf "%s: %d error(s), %d warning(s), %d informational\n"
         kernel e w i);
  Buffer.contents buf

let render_json ?file ~kernel (ds : Diag.t list) : string =
  let fields =
    [ Printf.sprintf {|"kernel": "%s"|} (Diag.json_escape kernel) ]
    @ (match file with
      | Some f -> [ Printf.sprintf {|"file": "%s"|} (Diag.json_escape f) ]
      | None -> [])
    @ [
        Printf.sprintf {|"errors": %d|} (count Diag.Error ds);
        Printf.sprintf {|"warnings": %d|} (count Diag.Warning ds);
        Printf.sprintf {|"infos": %d|} (count Diag.Info ds);
        Printf.sprintf {|"exit_code": %d|} (exit_code ds);
        Printf.sprintf {|"diagnostics": [%s]|}
          (String.concat ", " (List.map Diag.to_json ds));
      ]
  in
  "{" ^ String.concat ", " fields ^ "}"
