(** Shared diagnostics for the static-analysis passes. *)

open Ir

type severity = Info | Warning | Error

val severity_name : severity -> string

(** Info < Warning < Error. *)
val compare_severity : severity -> severity -> int

type t = {
  severity : severity;
  pass : string;  (** wellformed | bounds | legality | validate | pipeline *)
  stage : string option;  (** pipeline stage tag, for validation findings *)
  span : Ast.span option;
  message : string;
}

val make : ?stage:string -> ?span:Ast.span -> severity -> pass:string -> string -> t

(** Printf-style constructor. *)
val diagf :
  ?stage:string ->
  ?span:Ast.span ->
  severity ->
  pass:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val errors : t list -> t list
val warnings : t list -> t list
val max_severity : t list -> severity option

(** 0 clean (at most Info), 1 warnings, 2 errors. *)
val exit_code : t list -> int

(** [file:line:col: severity: [pass/stage] message]. *)
val render : ?file:string -> t -> string

val pp : Format.formatter -> t -> unit

val json_escape : string -> string

(** One finding as a JSON object. *)
val to_json : t -> string

(** Convert a structured pipeline failure into a diagnostic. *)
val of_stage_error :
  stage:Transform.Pipeline.stage -> kernel:string -> string -> t
