(** Structural well-formedness: declared-before-use scalars and arrays,
    subscript arity vs. declared rank, loop-index shadowing and
    assignment, positive strides, loops not nested under conditionals,
    plus advisory findings for zero-trip loops and narrowing stores.
    Pure — never raises. *)

open Ir

val check : Ast.kernel -> Diag.t list
