(** Post-hoc translation validation of the transformation pipeline:
    after every executed stage the output kernel is structurally
    re-verified and its array-access footprint compared against the
    pre-stage kernel (reads(post) ⊆ reads(pre) ∪ writes(pre),
    writes(post) ⊆ writes(pre), must-writes(pre) ⊆ writes(post)).
    Violations are Error diagnostics carrying the stage tag. *)

open Ir

type array_fp = {
  size : int;  (** linearized element count *)
  may_read : Bytes.t;
  may_write : Bytes.t;
  must_write : Bytes.t;
  mutable oob_read : bool;  (** some read resolved outside the box *)
  mutable oob_write : bool;
}

type t = {
  arrays : (string * array_fp) list;  (** enumerable arrays, sorted *)
  skipped : (string * string) list;  (** array name, reason *)
}

val default_max_points : int

(** Per-array element footprint of a kernel, by enumeration with a
    partial evaluator (loop indices and compile-time-known scalars).
    Arrays with unevaluable subscripts, and every array of a kernel
    whose iteration space exceeds [max_points], land in [skipped]. *)
val footprint : ?max_points:int -> Ast.kernel -> t

val compare_footprints : stage:string -> pre:t -> post:t -> Diag.t list

type outcome = {
  result : Transform.Pipeline.result option;
      (** [None] when the pipeline itself failed; the failure is then an
          error diagnostic *)
  diags : Diag.t list;
}

(** Error-severity findings only. *)
val violations : outcome -> Diag.t list

(** Apply the pipeline with per-stage validation. The transformed result
    is bit-identical to [Transform.Pipeline.apply options k]. *)
val run :
  ?options:Transform.Pipeline.options ->
  ?max_points:int ->
  Ast.kernel ->
  outcome
