(** Dead- and redundant-store detection: scalar stores never read again
    (liveness) and array-cell stores provably overwritten before any
    read (anticipated overwrites). All findings are warnings. *)

open Ir

(** [check k] builds the kernel's flow graph (or reuses [graph]) and
    reports dead and redundant stores. [cost] accumulates flowgraph
    construction/solve counters. *)
val check :
  ?graph:Analysis.Flowgraph.t ->
  ?cost:Analysis.Flowgraph.cost ->
  Ast.kernel ->
  Diag.t list
