(** Uninitialized-read detection on the flow graph.

    Classifies every scalar read with {!Analysis.Flowgraph.use_before_def}
    and reports, with the same severity discipline as {!Bounds}: a read
    no definition can reach is a provable hole and an error; a read that
    some but not all paths initialise is a warning. [Param] scalars and
    whole arrays are host-initialised, so only [Temp] and [Register]
    scalars (and undeclared names, which {!Wellformed} already rejects)
    can be flagged. Reads inside zero-trip loop bodies never execute and
    are not reported. *)

open Ir
module Flowgraph = Analysis.Flowgraph

let pass = "uninit"

let diagf ?span sev fmt = Diag.diagf ?span sev ~pass fmt

let check ?graph ?cost (k : Ast.kernel) : Diag.t list =
  let g =
    match graph with Some g -> g | None -> Flowgraph.build ?cost k
  in
  let sites = Flowgraph.use_before_def ?cost g in
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (s : Flowgraph.use_site) ->
      match (s.Flowgraph.u_loc, s.Flowgraph.u_status) with
      | _, Flowgraph.Initialized -> None
      | (Flowgraph.Cell _ | Flowgraph.Whole _), _ ->
          (* array cells are host-initialised; a may-miss here only means
             the kernel did not write them, which is not a defect *)
          None
      | Flowgraph.Scalar name, status ->
          let key = (s.Flowgraph.u_node, name, status) in
          if Hashtbl.mem seen key then None
          else begin
            Hashtbl.add seen key ();
            let node = g.Flowgraph.nodes.(s.Flowgraph.u_node) in
            let span = node.Flowgraph.span in
            let rotation =
              match node.Flowgraph.kind with
              | Flowgraph.Rotate _ -> true
              | _ -> false
            in
            match status with
            | Flowgraph.Uninitialized when rotation ->
                (* a rotation moves lane values without consuming them:
                   an unassigned source lane is only a defect if a later
                   real read uses what it rotated in, which the rotate's
                   own definition of the destination hides from
                   reaching-defs — so this cannot be called provable *)
                Some
                  (diagf ?span Diag.Warning
                     "register bank rotation reads lane '%s', which is \
                      never assigned before this point"
                     name)
            | Flowgraph.Uninitialized ->
                Some
                  (diagf ?span Diag.Error
                     "scalar '%s' is read but never assigned before this use"
                     name)
            | Flowgraph.Maybe_uninitialized ->
                Some
                  (diagf ?span Diag.Warning
                     "scalar '%s' may be read before it is assigned (not \
                      initialised on every path to this read)"
                     name)
            | Flowgraph.Initialized -> None
          end)
    sites
