(** Affine out-of-bounds detection.

    Every array access is classified per dimension by evaluating its
    {!Analysis.Affine} subscript form over the loop-bound box with
    interval arithmetic. For an affine function over a box the interval
    endpoints are attained at corners of the box, and the input domain's
    loops iterate the full box — so an unguarded access whose interval
    leaves [0, extent) is a *provable* overrun (Error), while a guarded
    access (syntactically under an [if]) may be saved by its guard and
    is flagged as a *possible* overrun (Warning). Non-affine or symbolic
    subscripts are reported as unverifiable (Info), never guessed at. *)

open Ir
module Access = Analysis.Access

let pass = "bounds"

let diagf ?span sev fmt = Diag.diagf ?span sev ~pass fmt

(** Range of values a loop index takes; [None] for zero-trip loops. *)
(* [None] exactly when the body never runs: zero-trip bounds (hi <= lo,
   e.g. [for i in 0..0]) or a non-positive step (which {!Wellformed}
   rejects). Never raises — [loop_trip] is only consulted once the step
   is known positive. *)
let index_range (l : Ast.loop) : (int * int) option =
  if l.Ast.step <= 0 || l.Ast.hi <= l.Ast.lo then None
  else
    let trip = Ast.loop_trip l in
    Some (l.Ast.lo, l.Ast.lo + ((trip - 1) * l.Ast.step))

type interval_result =
  | Interval of int * int  (** inclusive min/max over the box *)
  | Symbolic of string  (** a variable the loop box does not bound *)
  | Empty  (** enclosed in a zero-trip loop: never executes *)

(** Interval of an affine form over the access's enclosing-loop box. *)
let interval (acc : Access.t) (f : Affine.t) : interval_result =
  if List.exists (fun (l : Ast.loop) -> index_range l = None) acc.Access.loops
  then Empty
  else
    let ranges =
      List.filter_map
        (fun (l : Ast.loop) ->
          Option.map (fun r -> (l.Ast.index, r)) (index_range l))
        acc.Access.loops
    in
    let rec go lo hi = function
      | [] -> Interval (lo, hi)
      | (v, c) :: rest -> (
          match List.assoc_opt v ranges with
          | None -> Symbolic v
          | Some (vmin, vmax) ->
              if c >= 0 then go (lo + (c * vmin)) (hi + (c * vmax)) rest
              else go (lo + (c * vmax)) (hi + (c * vmin)) rest)
    in
    go f.Affine.const f.Affine.const f.Affine.terms

let access_span (acc : Access.t) : Ast.span option =
  (* Innermost enclosing loop that carries a span. *)
  List.fold_left
    (fun sp (l : Ast.loop) ->
      match l.Ast.l_span with Some _ as s -> s | None -> sp)
    None acc.Access.loops

let kind_name = function Access.Read -> "read" | Access.Write -> "write"

let check_access (k : Ast.kernel) (acc : Access.t) : Diag.t list =
  match Ast.find_array k acc.Access.array with
  | None -> []  (* undeclared array: Wellformed reports it *)
  | Some decl ->
      let span = access_span acc in
      let dims = decl.Ast.a_dims in
      if List.length acc.Access.subs <> List.length dims then []
        (* arity mismatch: Wellformed reports it *)
      else
        List.concat
          (List.mapi
             (fun d (af, extent) ->
               match af with
               | None ->
                   [ diagf Info ?span
                       "%s of '%s' dimension %d has a non-affine subscript; \
                        not checked"
                       (kind_name acc.Access.kind) acc.Access.array d ]
               | Some f -> (
                   match interval acc f with
                   | Empty -> []
                   | Symbolic v ->
                       [ diagf Info ?span
                           "%s of '%s' dimension %d depends on '%s', which no \
                            enclosing loop bounds; not checked"
                           (kind_name acc.Access.kind) acc.Access.array d v ]
                   | Interval (lo, hi) ->
                       if lo >= 0 && hi < extent then []
                       else
                         let describe =
                           Printf.sprintf
                             "%s of '%s' dimension %d: subscript %s ranges \
                              over [%d, %d] but the extent is %d"
                             (kind_name acc.Access.kind) acc.Access.array d
                             (Affine.to_string f) lo hi extent
                         in
                         if acc.Access.guarded then
                           [ diagf Warning ?span
                               "possible out-of-bounds %s (access is guarded)"
                               describe ]
                         else
                           [ diagf Error ?span "out-of-bounds %s" describe ]))
             (List.combine acc.Access.affine dims))

let check (k : Ast.kernel) : Diag.t list =
  List.concat_map (check_access k) (Access.collect k.Ast.k_body)
