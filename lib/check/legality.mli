(** Per-transform legality predicates, checked before the rewrite:
    unroll-and-jam dependence preservation, scalar-replacement reuse
    preconditions, tiling/peeling applicability.

    The jam and replaceability predicates consult flow-graph dataflow
    facts ({!Analysis.Flowgraph}) alongside the dependence analysis and
    are strictly stronger than the dependence-only forms, which stay
    exposed as [*_dependence] for cross-validation. *)

open Ir

(** Fusing the unrolled outer iterations preserves every *array*
    dependence (the pre-flowgraph predicate, same as
    {!Transform.Unroll.jam_legal}; blind to scalar recurrences). *)
val jam_unroll_legal_dependence : Ast.kernel -> bool

(** [jam_unroll_legal_dependence] *and* every loop-carried scalar of a
    non-innermost loop is a single-operator commutative/associative
    reduction (anything else would be reordered by fusing the unrolled
    outer iterations). Implies {!jam_unroll_legal_dependence}. *)
val jam_unroll_legal :
  ?graph:Analysis.Flowgraph.t ->
  ?cost:Analysis.Flowgraph.cost ->
  Ast.kernel ->
  bool

(** First scalar whose carried dependence chain unroll-and-jam would
    reorder, as [(loop index, scalar name)]. *)
val scalar_jam_hazard :
  ?cost:Analysis.Flowgraph.cost ->
  Analysis.Flowgraph.t ->
  (string * string) option

(** Every pair of members of the uniformly generated set has a
    consistent (exact or unconstrained) dependence distance (the
    pre-flowgraph predicate). *)
val replaceable_group_dependence : Ast.kernel -> Analysis.Reuse.group -> bool

(** Why a uniformly generated set may not be cached in registers. *)
type replace_verdict =
  | Replaceable
  | Inconsistent_distances
      (** some member pair has no consistent dependence distance *)
  | Foreign_accesses of string
      (** an access to the same array through a different subscript
          pattern reaches the set (reaching-definitions fact); the
          payload describes the direction *)

val replaceable_verdict :
  ?graph:Analysis.Flowgraph.t ->
  ?cost:Analysis.Flowgraph.cost ->
  Ast.kernel ->
  Analysis.Reuse.group ->
  replace_verdict

(** [replaceable_verdict ... = Replaceable]. Implies
    {!replaceable_group_dependence}. *)
val replaceable_group :
  ?graph:Analysis.Flowgraph.t ->
  ?cost:Analysis.Flowgraph.cost ->
  Ast.kernel ->
  Analysis.Reuse.group ->
  bool

(** [index] names a spine loop and [tile] is a proper fraction of its
    trip count. *)
val tiling_applicable : Ast.kernel -> index:string -> tile:int -> bool

(** [index] names a spine loop with at least one iteration. *)
val peeling_applicable : Ast.kernel -> index:string -> bool

(** Pre-enumeration verdict on one joint transform configuration — the
    joint sweep's pruner. *)
type config_verdict =
  | Config_legal
  | Config_redundant of Transform.Pipeline.config
      (** evaluates cleanly but denotes the same design as the carried
          canonical configuration *)
  | Config_illegal of string
      (** force-evaluating it raises [Transform.Pipeline.Stage_error]
          (tile index naming no loop) or silently changes results (a
          jam reordering a non-reduction scalar recurrence) *)

(** Whether the configuration asks for an actual unroll-and-jam: a
    factor above 1 on a non-innermost spine loop. *)
val wants_jam : Ast.kernel -> Transform.Pipeline.config -> bool

(** Verdict for one configuration, before any transform runs. [graph]
    reuses an already-built flow graph of the source kernel. *)
val config_verdict :
  ?graph:Analysis.Flowgraph.t ->
  ?cost:Analysis.Flowgraph.cost ->
  Ast.kernel ->
  Transform.Pipeline.config ->
  config_verdict

(** Diagnostics for the kernel, optionally against the concrete pipeline
    options of a design point (unroll vector, tile request). [graph]
    reuses an already-built flow graph; [cost] accumulates flowgraph
    counters. *)
val check :
  ?graph:Analysis.Flowgraph.t ->
  ?cost:Analysis.Flowgraph.cost ->
  ?options:Transform.Pipeline.options ->
  Ast.kernel ->
  Diag.t list
