(** Per-transform legality predicates, checked before the rewrite:
    unroll-and-jam dependence preservation, scalar-replacement reuse
    preconditions, tiling/peeling applicability. *)

open Ir

(** Fusing the unrolled outer iterations preserves every dependence
    (same predicate the pipeline consults; conservative on coupled
    distances). *)
val jam_unroll_legal : Ast.kernel -> bool

(** Every pair of members of the uniformly generated set has a
    consistent (exact or unconstrained) dependence distance, the
    precondition for caching the set in registers. *)
val replaceable_group : Ast.kernel -> Analysis.Reuse.group -> bool

(** [index] names a spine loop and [tile] is a proper fraction of its
    trip count. *)
val tiling_applicable : Ast.kernel -> index:string -> tile:int -> bool

(** [index] names a spine loop with at least one iteration. *)
val peeling_applicable : Ast.kernel -> index:string -> bool

(** Diagnostics for the kernel, optionally against the concrete pipeline
    options of a design point (unroll vector, tile request). *)
val check : ?options:Transform.Pipeline.options -> Ast.kernel -> Diag.t list
