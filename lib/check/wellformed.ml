(** Structural well-formedness of a kernel.

    These are the paper's input-domain invariants (Section 2.4) plus the
    internal conventions every later pass relies on: all scalars and
    arrays declared before use, subscript arity matching the declared
    rank, no loop-index shadowing or assignment, positive strides, loops
    not nested under conditionals, and (as advisory findings) zero-trip
    loops and narrowing assignments. The pass is pure: it never raises,
    it returns diagnostics. *)

open Ir

let pass = "wellformed"

let diagf ?stage ?span sev fmt = Diag.diagf ?stage ?span sev ~pass fmt

type env = {
  kernel : Ast.kernel;
  mutable diags : Diag.t list;
  mutable bound : string list;  (** loop indices in scope, innermost first *)
}

let add env d = env.diags <- d :: env.diags

let scalar_declared env v =
  List.exists (fun (s : Ast.scalar_decl) -> s.s_name = v) env.kernel.Ast.k_scalars

(* ------------------------------------------------------------------ *)
(* Declarations *)

let check_decls env =
  let k = env.kernel in
  (* Positive extents. *)
  List.iter
    (fun (a : Ast.array_decl) ->
      if a.a_dims = [] then
        add env
          (diagf Error ?span:a.a_span "array '%s' declared with no dimensions"
             a.a_name);
      List.iter
        (fun d ->
          if d <= 0 then
            add env
              (diagf Error ?span:a.a_span
                 "array '%s' has non-positive extent %d" a.a_name d))
        a.a_dims)
    k.Ast.k_arrays;
  (* Duplicate names across both namespaces. *)
  let names =
    List.map (fun (a : Ast.array_decl) -> (a.a_name, a.a_span)) k.Ast.k_arrays
    @ List.map (fun (s : Ast.scalar_decl) -> (s.s_name, s.s_span)) k.Ast.k_scalars
  in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (name, span) ->
      if Hashtbl.mem seen name then
        add env (diagf Error ?span "duplicate declaration of '%s'" name)
      else Hashtbl.add seen name ())
    names

(* ------------------------------------------------------------------ *)
(* Expressions and statements *)

let rec check_expr env ?span (e : Ast.expr) =
  match e with
  | Ast.Int _ -> ()
  | Ast.Var v ->
      if not (List.mem v env.bound || scalar_declared env v) then
        add env (diagf Error ?span "use of undeclared variable '%s'" v)
  | Ast.Arr (a, subs) ->
      (match Ast.find_array env.kernel a with
      | None -> add env (diagf Error ?span "use of undeclared array '%s'" a)
      | Some d ->
          let rank = List.length d.Ast.a_dims in
          let arity = List.length subs in
          if arity <> rank then
            let span =
              match span with Some _ -> span | None -> d.Ast.a_span
            in
            add env
              (diagf Error ?span
                 "array '%s' has rank %d but is subscripted with %d index(es)"
                 a rank arity));
      List.iter (check_expr env ?span) subs
  | Ast.Bin (_, a, b) ->
      check_expr env ?span a;
      check_expr env ?span b
  | Ast.Un (_, a) -> check_expr env ?span a
  | Ast.Cond (c, t, e) ->
      check_expr env ?span c;
      check_expr env ?span t;
      check_expr env ?span e

let rec check_stmt env ~under_if ?span (s : Ast.stmt) =
  match s with
  | Ast.Assign (Ast.Lvar v, e) ->
      if List.mem v env.bound then
        add env (diagf Error ?span "assignment to loop index '%s'" v);
      if (not (List.mem v env.bound)) && not (scalar_declared env v) then
        add env (diagf Error ?span "assignment to undeclared scalar '%s'" v);
      check_expr env ?span e;
      (* Type consistency: flag narrowing stores as advisory findings
         only — accumulations routinely produce intermediate results
         wider than the stored element. *)
      (match Ast.find_scalar env.kernel v with
      | Some d
        when Dtype.bits (Ast.result_type env.kernel e) > Dtype.bits d.Ast.s_elem
        ->
          add env
            (diagf Info ?span
               "store to '%s' narrows a %d-bit value to %d bits" v
               (Dtype.bits (Ast.result_type env.kernel e))
               (Dtype.bits d.Ast.s_elem))
      | _ -> ())
  | Ast.Assign (Ast.Larr (a, subs), e) ->
      check_expr env ?span (Ast.Arr (a, subs));
      check_expr env ?span e;
      (match Ast.find_array env.kernel a with
      | Some d
        when Dtype.bits (Ast.result_type env.kernel e) > Dtype.bits d.Ast.a_elem
        ->
          add env
            (diagf Info ?span
               "store to '%s' narrows a %d-bit value to %d bits" a
               (Dtype.bits (Ast.result_type env.kernel e))
               (Dtype.bits d.Ast.a_elem))
      | _ -> ())
  | Ast.If (c, t, e) ->
      check_expr env ?span c;
      List.iter (check_stmt env ~under_if:true ?span) t;
      List.iter (check_stmt env ~under_if:true ?span) e
  | Ast.For l ->
      let span = match l.Ast.l_span with Some _ as sp -> sp | None -> span in
      if under_if then
        add env
          (diagf Error ?span
             "loop over '%s' nested under a conditional (outside the input \
              domain)"
             l.Ast.index);
      if l.Ast.step <= 0 then
        add env
          (diagf Error ?span "loop over '%s' has non-positive stride %d"
             l.Ast.index l.Ast.step)
      else if Ast.loop_trip l = 0 then
        add env
          (diagf Warning ?span "loop over '%s' has zero iterations (%d..%d)"
             l.Ast.index l.Ast.lo l.Ast.hi);
      if List.mem l.Ast.index env.bound then
        add env
          (diagf Error ?span "loop index '%s' shadows an enclosing index"
             l.Ast.index)
      else if scalar_declared env l.Ast.index then
        add env
          (diagf Warning ?span
             "loop index '%s' shadows a declared scalar" l.Ast.index);
      let saved = env.bound in
      env.bound <- l.Ast.index :: env.bound;
      List.iter (check_stmt env ~under_if:false ?span) l.Ast.body;
      env.bound <- saved
  | Ast.Rotate rs ->
      List.iter
        (fun r ->
          if not (scalar_declared env r) then
            add env
              (diagf Error ?span "rotate_registers over undeclared scalar '%s'"
                 r))
        rs

let check (k : Ast.kernel) : Diag.t list =
  let env = { kernel = k; diags = []; bound = [] } in
  check_decls env;
  List.iter (check_stmt env ~under_if:false) k.Ast.k_body;
  List.rev env.diags
