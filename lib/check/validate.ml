(** Post-hoc translation validation of the transformation pipeline.

    {!run} re-applies {!Transform.Pipeline.apply} through its [observe]
    hook and, after every executed stage (tile, unroll, scalar replace,
    peel, LICM, simplify), re-verifies the output kernel structurally
    and compares its array-access *footprint* — the per-array sets of
    elements that may be read, may be written, and must be written —
    against the pre-stage kernel:

    - reads(post) ⊆ reads(pre) ∪ writes(pre): a stage may drop reads
      (register reuse) and may re-load an element it wrote (scalar
      replacement's refill of a write-only bank), but must never read
      data the input kernel did not touch;
    - writes(post) ⊆ writes(pre): no stage invents a store;
    - must-writes(pre) ⊆ writes(post): no store the input definitely
      performed disappears (store sinking may coalesce, not drop).

    Footprints are computed by enumerating the loop nests with a partial
    evaluator that tracks loop indices and compile-time-known scalars
    (so LICM temporaries in subscripts resolve); guards whose condition
    is undecidable contribute to the may-sets of both branches. Arrays
    whose subscripts stay unevaluable, and kernels whose iteration space
    exceeds the point budget, are skipped with an Info finding — never
    silently. Violations carry the stage tag. *)

open Ir

let pass = "validate"

let diagf ?stage sev fmt = Diag.diagf ?stage sev ~pass fmt

(* ------------------------------------------------------------------ *)
(* Partial expression evaluation under known scalars / loop indices *)

let rec peval env (e : Ast.expr) : int option =
  match e with
  | Ast.Int n -> Some n
  | Ast.Var v -> Hashtbl.find_opt env v
  | Ast.Arr _ -> None
  | Ast.Un (op, a) -> (
      match peval env a with
      | None -> None
      | Some va -> (
          match op with
          | Ast.Neg -> Some (-va)
          | Ast.Not -> Some (if va = 0 then 1 else 0)
          | Ast.Bnot -> Some (lnot va)
          | Ast.Abs -> Some (abs va)))
  | Ast.Bin (op, a, b) -> (
      match (peval env a, peval env b) with
      | Some va, Some vb -> (
          let bool_ c = Some (if c then 1 else 0) in
          match op with
          | Ast.Add -> Some (va + vb)
          | Ast.Sub -> Some (va - vb)
          | Ast.Mul -> Some (va * vb)
          | Ast.Div -> if vb = 0 then None else Some (va / vb)
          | Ast.Mod -> if vb = 0 then None else Some (va mod vb)
          | Ast.Lt -> bool_ (va < vb)
          | Ast.Le -> bool_ (va <= vb)
          | Ast.Gt -> bool_ (va > vb)
          | Ast.Ge -> bool_ (va >= vb)
          | Ast.Eq -> bool_ (va = vb)
          | Ast.Ne -> bool_ (va <> vb)
          | Ast.And -> bool_ (va <> 0 && vb <> 0)
          | Ast.Or -> bool_ (va <> 0 || vb <> 0)
          | Ast.Band -> Some (va land vb)
          | Ast.Bor -> Some (va lor vb)
          | Ast.Bxor -> Some (va lxor vb)
          | Ast.Shl -> if vb < 0 || vb > 62 then None else Some (va lsl vb)
          | Ast.Shr -> if vb < 0 || vb > 62 then None else Some (va asr vb)
          | Ast.Min -> Some (min va vb)
          | Ast.Max -> Some (max va vb))
      | _ -> None)
  | Ast.Cond (c, t, e') -> (
      match peval env c with
      | Some vc -> peval env (if vc <> 0 then t else e')
      | None -> None)

(* ------------------------------------------------------------------ *)
(* Footprints *)

type array_fp = {
  size : int;  (** linearized element count *)
  may_read : Bytes.t;
  may_write : Bytes.t;
  must_write : Bytes.t;
  mutable oob_read : bool;  (** some read resolved outside the box *)
  mutable oob_write : bool;
}

type t = {
  arrays : (string * array_fp) list;  (** enumerable arrays, sorted *)
  skipped : (string * string) list;  (** array name, reason *)
}

(** Default budget on statement executions during enumeration; one mm
    lattice point costs ~1.3e5, so this admits every kernel in the repo
    with two orders of magnitude to spare. *)
let default_max_points = 1 lsl 24

exception Skip_all of string

(** Estimated statement executions, to refuse enormous nests upfront. *)
let rec work_of_body body =
  List.fold_left
    (fun acc s ->
      acc
      +
      match s with
      | Ast.Assign _ | Ast.Rotate _ -> 1
      | Ast.If (_, t, e) -> 1 + work_of_body t + work_of_body e
      | Ast.For l ->
          let trip = if l.Ast.step <= 0 then 0 else Ast.loop_trip l in
          1 + (trip * work_of_body l.Ast.body))
    0 body

let footprint ?(max_points = default_max_points) (k : Ast.kernel) : t =
  let fps = Hashtbl.create 8 in
  let skipped : (string, string) Hashtbl.t = Hashtbl.create 4 in
  let skip a reason =
    if not (Hashtbl.mem skipped a) then Hashtbl.add skipped a reason
  in
  List.iter
    (fun (a : Ast.array_decl) ->
      let size = Ast.array_size a in
      Hashtbl.replace fps a.Ast.a_name
        ( a.Ast.a_dims,
          {
            size;
            may_read = Bytes.make size '\000';
            may_write = Bytes.make size '\000';
            must_write = Bytes.make size '\000';
            oob_read = false;
            oob_write = false;
          } ))
    k.Ast.k_arrays;
  let env : (string, int) Hashtbl.t = Hashtbl.create 16 in
  (* Linearize row-major; [None] when a subscript is unevaluable, [Some
     (-1)] when evaluable but outside the declared box. *)
  let linear dims subs =
    let rec go acc dims subs =
      match (dims, subs) with
      | [], [] -> Some acc
      | d :: dims, s :: subs -> (
          match peval env s with
          | None -> None
          | Some v ->
              if v < 0 || v >= d then Some (-1)
              else go ((acc * d) + v) dims subs)
      | _ -> Some (-1) (* arity mismatch: treat as out of the box *)
    in
    go 0 dims subs
  in
  let touch ~write ~certain a subs =
    match Hashtbl.find_opt fps a with
    | None -> skip a "not declared"
    | Some (dims, fp) -> (
        match linear dims subs with
        | None -> skip a "unevaluable subscript"
        | Some idx ->
            if idx < 0 then
              if write then fp.oob_write <- true else fp.oob_read <- true
            else if write then begin
              Bytes.set fp.may_write idx '\001';
              if certain then Bytes.set fp.must_write idx '\001'
            end
            else Bytes.set fp.may_read idx '\001')
  in
  (* Record every array read inside an expression (subscripts first). *)
  let rec reads_in e =
    match e with
    | Ast.Int _ | Ast.Var _ -> ()
    | Ast.Arr (a, subs) ->
        List.iter reads_in subs;
        touch ~write:false ~certain:false a subs
    | Ast.Bin (_, a, b) ->
        reads_in a;
        reads_in b
    | Ast.Un (_, a) -> reads_in a
    | Ast.Cond (c, t, e') ->
        reads_in c;
        reads_in t;
        reads_in e'
  in
  let budget = ref max_points in
  let spend () =
    decr budget;
    if !budget < 0 then raise (Skip_all "iteration budget exceeded")
  in
  let rec walk ~certain stmts = List.iter (stmt ~certain) stmts
  and stmt ~certain s =
    spend ();
    match s with
    | Ast.Assign (Ast.Lvar v, e) ->
        reads_in e;
        (match (certain, peval env e) with
        | true, Some n -> Hashtbl.replace env v n
        | _ -> Hashtbl.remove env v)
    | Ast.Assign (Ast.Larr (a, subs), e) ->
        List.iter reads_in subs;
        reads_in e;
        touch ~write:true ~certain a subs
    | Ast.If (c, t, e) -> (
        reads_in c;
        match peval env c with
        | Some vc -> walk ~certain (if vc <> 0 then t else e)
        | None ->
            walk ~certain:false t;
            walk ~certain:false e)
    | Ast.For l ->
        if l.Ast.step <= 0 then raise (Skip_all "non-positive loop stride");
        let i = ref l.Ast.lo in
        while !i < l.Ast.hi do
          Hashtbl.replace env l.Ast.index !i;
          walk ~certain l.Ast.body;
          i := !i + l.Ast.step
        done;
        Hashtbl.remove env l.Ast.index
    | Ast.Rotate rs ->
        (* Register values permute: forget anything we knew about them. *)
        List.iter (Hashtbl.remove env) rs
  in
  (* Known [Param]/[Temp] scalars have no compile-time value: only loop
     indices and scalars assigned evaluable expressions enter [env]. *)
  (try
     if work_of_body k.Ast.k_body > max_points then
       raise (Skip_all "iteration space exceeds the point budget");
     walk ~certain:true k.Ast.k_body
   with Skip_all reason ->
     List.iter
       (fun (a : Ast.array_decl) -> skip a.Ast.a_name reason)
       k.Ast.k_arrays);
  let arrays =
    Hashtbl.fold
      (fun name (_, fp) acc ->
        if Hashtbl.mem skipped name then acc else (name, fp) :: acc)
      fps []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let skipped =
    Hashtbl.fold (fun name reason acc -> (name, reason) :: acc) skipped []
    |> List.sort compare
  in
  { arrays; skipped }

(* ------------------------------------------------------------------ *)
(* Footprint comparison *)

(** Elements set in [a] but in neither [b] nor [c]: count and first
    offending linear index. *)
let not_covered a b c =
  let n = Bytes.length a in
  let count = ref 0 and first = ref (-1) in
  for i = 0 to n - 1 do
    if
      Bytes.get a i <> '\000'
      && Bytes.get b i = '\000'
      && (match c with None -> true | Some c -> Bytes.get c i = '\000')
    then begin
      incr count;
      if !first < 0 then first := i
    end
  done;
  (!count, !first)

let compare_footprints ~stage ~(pre : t) ~(post : t) : Diag.t list =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  List.iter
    (fun (name, fp_post) ->
      match List.assoc_opt name pre.arrays with
      | None -> ()  (* unenumerable on the pre side: reported as skipped *)
      | Some fp_pre ->
          if fp_pre.size <> fp_post.size then
            add
              (diagf Error ~stage
                 "array '%s' changed size across the stage (%d -> %d elements)"
                 name fp_pre.size fp_post.size)
          else begin
            let n, first =
              not_covered fp_post.may_read fp_pre.may_read
                (Some fp_pre.may_write)
            in
            if n > 0 then
              add
                (diagf Error ~stage
                   "stage reads %d element(s) of '%s' the input kernel never \
                    touches (first at linear index %d)"
                   n name first);
            let n, first = not_covered fp_post.may_write fp_pre.may_write None in
            if n > 0 then
              add
                (diagf Error ~stage
                   "stage writes %d element(s) of '%s' the input kernel never \
                    writes (first at linear index %d)"
                   n name first);
            let n, first = not_covered fp_pre.must_write fp_post.may_write None in
            if n > 0 then
              add
                (diagf Error ~stage
                   "stage drops %d write(s) to '%s' the input kernel always \
                    performs (first at linear index %d)"
                   n name first);
            if fp_post.oob_read && not fp_pre.oob_read then
              add
                (diagf Error ~stage
                   "stage introduces an out-of-bounds read of '%s'" name);
            if fp_post.oob_write && not fp_pre.oob_write then
              add
                (diagf Error ~stage
                   "stage introduces an out-of-bounds write of '%s'" name)
          end)
    post.arrays;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Pipeline instrumentation *)

type outcome = {
  result : Transform.Pipeline.result option;
      (** [None] when the pipeline itself failed; the failure is then an
          error diagnostic *)
  diags : Diag.t list;
}

let violations (o : outcome) = Diag.errors o.diags

(** Apply the pipeline with per-stage validation. The transformed result
    is bit-identical to [Transform.Pipeline.apply options k]. *)
let run ?(options = Transform.Pipeline.default) ?max_points (k : Ast.kernel) :
    outcome =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let skip_reported : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let report_skips (fp : t) stage =
    List.iter
      (fun (name, reason) ->
        if not (Hashtbl.mem skip_reported name) then begin
          Hashtbl.add skip_reported name ();
          add
            (diagf Info ~stage "array '%s' not validated: %s" name reason)
        end)
      fp.skipped
  in
  (* The pipeline threads each stage's output into the next stage, so
     the [before] kernel is physically the previous [after]: cache one
     footprint to halve the enumeration work. *)
  let cache : (Ast.kernel * t) option ref = ref None in
  let fp_of kk =
    match !cache with
    | Some (prev, fp) when prev == kk -> fp
    | _ -> footprint ?max_points kk
  in
  let observe stage ~before ~after =
    let sname = Transform.Pipeline.stage_name stage in
    (* Structural re-verification of the stage output. *)
    List.iter
      (fun (d : Diag.t) ->
        if d.Diag.severity = Diag.Error then
          add { d with Diag.pass; stage = Some sname })
      (Wellformed.check after);
    let pre = fp_of before in
    let post = footprint ?max_points after in
    cache := Some (after, post);
    report_skips pre sname;
    report_skips post sname;
    List.iter add (compare_footprints ~stage:sname ~pre ~post)
  in
  match Transform.Pipeline.apply ~observe options k with
  | r -> { result = Some r; diags = List.rev !diags }
  | exception Transform.Pipeline.Stage_error { stage; kernel; message } ->
      add (Diag.of_stage_error ~stage ~kernel message);
      { result = None; diags = List.rev !diags }
