(** Dead- and redundant-store detection on the flow graph.

    A scalar store whose target is not live afterwards is dead: nothing
    ever reads the value. An array-cell store whose target is provably
    overwritten before any possible read (the {!Analysis.Flowgraph.anticipated}
    must-analysis) is redundant. Both are warnings — the code is
    correct, just wasteful — but a dead store to a compiler-introduced
    [Register] scalar gets its own message: the transform pipeline must
    never emit one, and the test suite cross-checks that scalar
    replacement does not (see test_flowgraph.ml).

    [Rotate] is not a store candidate: its register bank is live by
    construction of the reuse chain it implements, and flagging it would
    second-guess {!Transform.Scalar_replace}'s own accounting. Stores in
    zero-trip loop bodies never execute and are not reported. *)

open Ir
module Flowgraph = Analysis.Flowgraph

let pass = "deadstore"

let diagf ?span sev fmt = Diag.diagf ?span sev ~pass fmt

let check ?graph ?cost (k : Ast.kernel) : Diag.t list =
  let g =
    match graph with Some g -> g | None -> Flowgraph.build ?cost k
  in
  let live = Flowgraph.live ?cost g in
  let ant = Flowgraph.anticipated ?cost g in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  Array.iter
    (fun (nd : Flowgraph.node) ->
      if g.Flowgraph.reachable.(nd.Flowgraph.id) then
        match nd.Flowgraph.kind with
        | Flowgraph.Assign (Ast.Lvar s, _) ->
            let l = Flowgraph.Scalar s in
            if not (Flowgraph.live_at live.Flowgraph.after.(nd.Flowgraph.id) l)
            then
              let register =
                match Ast.find_scalar k s with
                | Some d -> d.Ast.s_kind = Ast.Register
                | None -> false
              in
              let msg =
                if register then
                  Printf.sprintf
                    "dead store to compiler-introduced register '%s': the \
                     value is never read"
                    s
                else
                  Printf.sprintf
                    "dead store: scalar '%s' is never read after this \
                     assignment"
                    s
              in
              add (Diag.make ?span:nd.Flowgraph.span Diag.Warning ~pass msg)
        | Flowgraph.Assign (Ast.Larr (_, _), _) -> (
            match Flowgraph.defs_at g nd.Flowgraph.id with
            | [ (Flowgraph.Cell (a, _) as l) ] -> (
                match ant.Flowgraph.after.(nd.Flowgraph.id) with
                | Some s when Flowgraph.LocSet.mem l s ->
                    add
                      (diagf ?span:nd.Flowgraph.span Diag.Warning
                         "redundant store: this cell of '%s' is overwritten \
                          before any read"
                         a)
                | _ -> ())
            | _ -> () (* non-affine target: no claim *))
        | _ -> ())
    g.Flowgraph.nodes;
  List.rev !diags
