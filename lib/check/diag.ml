(** Shared diagnostics for the static-analysis passes.

    Every checker pass ({!Wellformed}, {!Bounds}, {!Legality},
    {!Validate}) reports through this one type so the CLI, CI and the
    verified explorer render findings uniformly: a severity, the pass
    that found it, an optional pipeline-stage tag (for post-hoc
    validation findings), an optional source span, and the message. *)

open Ir

type severity = Info | Warning | Error

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

(* Ordered for [max_severity]: Info < Warning < Error. *)
let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2
let compare_severity a b = compare (severity_rank a) (severity_rank b)

type t = {
  severity : severity;
  pass : string;  (** wellformed | bounds | legality | validate | pipeline *)
  stage : string option;  (** pipeline stage tag, for validation findings *)
  span : Ast.span option;
  message : string;
}

let make ?stage ?span severity ~pass message =
  { severity; pass; stage; span; message }

(** [diagf severity ~pass fmt ...] — printf-style constructor. *)
let diagf ?stage ?span severity ~pass fmt =
  Format.kasprintf (fun message -> make ?stage ?span severity ~pass message) fmt

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds

let max_severity = function
  | [] -> None
  | d :: ds ->
      Some
        (List.fold_left
           (fun acc d ->
             if compare_severity d.severity acc > 0 then d.severity else acc)
           d.severity ds)

(** Exit-code discipline shared by the CLI and CI: 0 when clean (at most
    Info findings), 1 when the worst finding is a warning, 2 on any
    error. *)
let exit_code ds =
  match max_severity ds with
  | Some Error -> 2
  | Some Warning -> 1
  | Some Info | None -> 0

(** Rendered as [file:line:col: severity: [pass/stage] message], with
    the location parts present only when known. *)
let render ?file (d : t) : string =
  let buf = Buffer.create 80 in
  (match (file, d.span) with
  | Some f, Some sp ->
      Buffer.add_string buf (Printf.sprintf "%s:%d:%d: " f sp.Ast.sp_line sp.Ast.sp_col)
  | Some f, None -> Buffer.add_string buf (Printf.sprintf "%s: " f)
  | None, Some sp ->
      Buffer.add_string buf (Printf.sprintf "%d:%d: " sp.Ast.sp_line sp.Ast.sp_col)
  | None, None -> ());
  Buffer.add_string buf (severity_name d.severity);
  Buffer.add_string buf ": ";
  (match d.stage with
  | Some s -> Buffer.add_string buf (Printf.sprintf "[%s/%s] " d.pass s)
  | None -> Buffer.add_string buf (Printf.sprintf "[%s] " d.pass));
  Buffer.add_string buf d.message;
  Buffer.contents buf

let pp fmt d = Format.pp_print_string fmt (render d)

(* ------------------------------------------------------------------ *)
(* JSON (hand-rolled: the repo carries no JSON dependency) *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json (d : t) : string =
  let fields =
    [ Printf.sprintf {|"severity": "%s"|} (severity_name d.severity);
      Printf.sprintf {|"pass": "%s"|} (json_escape d.pass) ]
    @ (match d.stage with
      | Some s -> [ Printf.sprintf {|"stage": "%s"|} (json_escape s) ]
      | None -> [])
    @ (match d.span with
      | Some sp ->
          [ Printf.sprintf {|"line": %d|} sp.Ast.sp_line;
            Printf.sprintf {|"col": %d|} sp.Ast.sp_col ]
      | None -> [])
    @ [ Printf.sprintf {|"message": "%s"|} (json_escape d.message) ]
  in
  "{" ^ String.concat ", " fields ^ "}"

(** Convert a structured pipeline failure into a diagnostic. *)
let of_stage_error ~(stage : Transform.Pipeline.stage) ~kernel message =
  diagf Error ~pass:"pipeline"
    ~stage:(Transform.Pipeline.stage_name stage)
    "kernel '%s': %s" kernel message
