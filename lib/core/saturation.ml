(** Saturation points (Section 5.1 of the paper).

    A saturation point is an unroll-factor vector at which the memory
    parallelism of the unrolled body reaches the bandwidth of the
    architecture. With R uniformly generated read sets and W write sets
    remaining after scalar replacement and redundant-write elimination,

    {v Psat = lcm(gcd(R, W), NumMemories) v}

    and the saturation set contains the vectors of product [Psat] whose
    factors are 1 on loops that no surviving memory access varies with
    (unrolling those cannot add memory parallelism). *)

open Ir
module Access = Analysis.Access

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)
let lcm a b = if a = 0 || b = 0 then 0 else abs (a * b) / gcd a b

type t = {
  psat : int;
  r : int;  (** uniformly generated read sets in the replaced baseline *)
  w : int;
  eligible : string list;
      (** loops whose unrolling adds memory parallelism, outermost first *)
}

(** Loops some steady-state (unguarded) memory access varies with.
    Guarded accesses are the first-iteration bank loads that peeling
    moves out of the main body, so they do not count. *)
let eligible_loops (k : Ast.kernel) : string list =
  let spine = Loop_nest.spine k.k_body in
  let accesses = Access.collect k.k_body in
  List.filter_map
    (fun (l : Ast.loop) ->
      let varies =
        List.exists
          (fun (a : Access.t) ->
            (not a.Access.guarded) && Access.varies_with a l.index)
          accesses
      in
      if varies then Some l.index else None)
    spine

(** Compute the saturation data for a source kernel: apply the scalar
    pipeline at the baseline (no unrolling, no peeling so the spine stays
    whole), then count the surviving uniformly generated sets. *)
let compute ?(pipeline = Transform.Pipeline.default) ~num_memories
    (source : Ast.kernel) : t =
  let opts =
    { pipeline with Transform.Pipeline.vector = []; peel = false }
  in
  let r = Transform.Pipeline.apply opts source in
  let k = r.Transform.Pipeline.kernel in
  let nr, nw = Analysis.Reuse.set_counts k.k_body in
  let nr = max nr 1 and nw = max nw 1 in
  let psat = lcm (gcd nr nw) num_memories in
  { psat = max psat 1; r = nr; w = nw; eligible = eligible_loops k }

(** All divisor-factor vectors over the eligible loops whose product is
    exactly [target], as full spine vectors (ineligible loops at 1).
    Ordered lexicographically by the eligible loops, outermost first. *)
let vectors_with_product (ctx : Design.context) (sat : t) (target : int) :
    (string * int) list list =
  let eligible =
    List.filter
      (fun (l : Ast.loop) -> List.mem l.index sat.eligible)
      ctx.Design.spine
  in
  let rec go remaining target =
    match remaining with
    | [] -> if target = 1 then [ [] ] else []
    | (l : Ast.loop) :: rest ->
        let trip = Ast.loop_trip l in
        List.concat_map
          (fun d ->
            if target mod d = 0 then
              List.map (fun tl -> (l.index, d) :: tl) (go rest (target / d))
            else [])
          (List.filter (fun d -> d <= trip) (Util.divisors (min target trip)))
  in
  List.map (Design.normalize_vector ctx) (go eligible target)

(** The saturation set Sat. *)
let sat_set (ctx : Design.context) (sat : t) : (string * int) list list =
  vectors_with_product ctx sat sat.psat

(** Sat_i: the saturation point that puts the whole factor [Psat] on loop
    [index], when the trip count allows it. *)
let sat_i (ctx : Design.context) (sat : t) index : (string * int) list option =
  List.find_opt
    (fun v ->
      List.for_all
        (fun (i, u) -> if i = index then u = sat.psat else u = 1)
        v)
    (sat_set ctx sat)
