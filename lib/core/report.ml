(** Human-readable exploration reports: everything a designer needs to
    review the search's decision — the saturation analysis, the search
    trace with per-step verdicts, the selected design's estimates and
    resource breakdown, the data layout, and the comparison against the
    no-unrolling baseline. Rendered as markdown. *)

open Ir

type t = {
  context : Design.context;
  result : Search.result;
  baseline : Design.point;
}

let build (ctx : Design.context) : t =
  let result = Search.run ctx in
  let baseline = Design.evaluate ctx (Design.ubase ctx) in
  { context = ctx; result; baseline }

let speedup (r : t) =
  float_of_int (Design.cycles r.baseline)
  /. float_of_int (Design.cycles r.result.Search.selected)

let pp_vector = Design.pp_vector

let render fmt (r : t) =
  let ctx = r.context in
  let sel = r.result.Search.selected in
  let device = ctx.Design.profile.Hls.Estimate.device in
  let mem = ctx.Design.profile.Hls.Estimate.mem in
  Format.fprintf fmt "# Design space exploration: %s@.@."
    ctx.Design.source.Ast.k_name;
  Format.fprintf fmt
    "- device: %s (%d slices, %d memories, %.0f ns clock)@.- memory model: %s \
     (read %d / write %d cycles)@.- capacity budget: %d slices@.@."
    device.Hls.Device.name device.Hls.Device.capacity_slices
    device.Hls.Device.num_memories device.Hls.Device.clock_ns
    (Hls.Memory_model.name mem)
    mem.Hls.Memory_model.read_latency mem.Hls.Memory_model.write_latency
    ctx.Design.capacity;
  Format.fprintf fmt "## Input@.@.```c@.%s@.```@.@."
    (Pretty.kernel_to_string ctx.Design.source);
  let sat = r.result.Search.sat in
  Format.fprintf fmt "## Saturation analysis@.@.";
  Format.fprintf fmt
    "- uniformly generated sets after replacement: R = %d reads, W = %d \
     writes@.- Psat = lcm(gcd(R, W), memories) = %d@.- loops eligible for \
     unrolling: %s@.- initial point Uinit = %a@.@."
    sat.Saturation.r sat.Saturation.w sat.Saturation.psat
    (String.concat ", " sat.Saturation.eligible)
    pp_vector r.result.Search.uinit;
  Format.fprintf fmt "## Search trace@.@.";
  Format.fprintf fmt "| design | cycles | slices | balance | verdict |@.";
  Format.fprintf fmt "|---|---|---|---|---|@.";
  List.iter
    (fun (s : Search.step) ->
      Format.fprintf fmt "| %a | %d | %d | %.3f | %s |@." pp_vector
        s.point.Design.vector (Design.cycles s.point) (Design.space s.point)
        (Design.balance s.point) s.verdict)
    r.result.Search.steps;
  let st = r.result.Search.stats in
  Format.fprintf fmt "@.## Evaluation statistics@.@.";
  Format.fprintf fmt
    "- designs synthesized: %d (%d cache hits)@.- quick estimates: %d; \
     points pruned without synthesis: %d@.- transform time: %.1f ms; \
     estimate time: %.1f ms (dfg %.1f, schedule %.1f, layout %.1f)@.- \
     scheduler memo: %d block tri-schedules served content-addressed; %d \
     distinct shapes memoized@.- designs memoized in the context: %d@.@."
    st.Design.evaluations st.Design.cache_hits st.Design.quick_estimates
    st.Design.pruned
    (1000.0 *. st.Design.transform_seconds)
    (1000.0 *. st.Design.estimate_seconds)
    (1000.0 *. st.Design.dfg_seconds)
    (1000.0 *. st.Design.schedule_seconds)
    (1000.0 *. st.Design.layout_seconds)
    st.Design.sched_memo_hits (Design.sched_memo_size ctx)
    (Design.cache_size ctx);
  if st.Design.region_memo_hits > 0 || st.Design.delta_reuses > 0 then
    Format.fprintf fmt
      "- incremental evaluation: %d region-prefix scheduler restores; %d \
       delta transform reuses@.@."
      st.Design.region_memo_hits st.Design.delta_reuses;
  if st.Design.checked_points > 0 then
    Format.fprintf fmt
      "- translation validation: %d design point(s) checked, %d violation(s)@.@."
      st.Design.checked_points st.Design.verify_violations;
  if st.Design.flow_builds > 0 then
    Format.fprintf fmt
      "- dataflow checks: %d flow graph(s) built, %d fixpoint solve(s), %.1f \
       ms@.@."
      st.Design.flow_builds st.Design.flow_solves
      (1000.0 *. st.Design.flow_seconds);
  Format.fprintf fmt "## Selected design: %a@.@." pp_vector sel.Design.vector;
  let e = sel.Design.estimate in
  Format.fprintf fmt
    "- execution: %d cycles (%.1f us at the target clock)@.- memory-only \
     bound: %d cycles; compute-only bound: %d cycles@.- balance B = F/C = \
     %.3f (F = %.1f, C = %.1f bits/cycle)@.- area: %d slices (%.1f%% of the \
     device)@.- registers: %d bits; FSM states: %d; memories used: %d@.@."
    e.Hls.Estimate.cycles
    (e.Hls.Estimate.time_ns /. 1000.0)
    e.Hls.Estimate.mem_only_cycles e.Hls.Estimate.comp_only_cycles
    e.Hls.Estimate.balance e.Hls.Estimate.fetch_rate
    e.Hls.Estimate.consumption_rate e.Hls.Estimate.slices
    (100.0 *. float_of_int e.Hls.Estimate.slices
    /. float_of_int device.Hls.Device.capacity_slices)
    e.Hls.Estimate.register_bits e.Hls.Estimate.states
    e.Hls.Estimate.memories_used;
  if e.Hls.Estimate.usage <> [] then begin
    Format.fprintf fmt "### Allocated operators@.@.";
    Format.fprintf fmt "| operator | width | units | slices |@.|---|---|---|---|@.";
    List.iter
      (fun ((cls, w), n) ->
        Format.fprintf fmt "| %s | %d | %d | %d |@."
          (Hls.Op_model.class_name cls)
          w n
          (n * Hls.Op_model.area cls ~width:w))
      e.Hls.Estimate.usage;
    Format.fprintf fmt "@."
  end;
  let rep = sel.Design.report in
  Format.fprintf fmt "### Scalar replacement@.@.";
  Format.fprintf fmt
    "- accumulators hoisted/sunk: %d@.- register banks: %s@.- chains: %s@.- \
     element CSE loads: %d@.- registers introduced: %d@.@."
    rep.Transform.Scalar_replace.hoisted_members
    (match rep.Transform.Scalar_replace.banks with
    | [] -> "none"
    | b ->
        String.concat ", "
          (List.map (fun (a, n) -> Printf.sprintf "%s x%d" a n) b))
    (match rep.Transform.Scalar_replace.chain_lengths with
    | [] -> "none"
    | c ->
        String.concat ", "
          (List.map (fun (a, n) -> Printf.sprintf "%s x%d" a n) c))
    rep.Transform.Scalar_replace.cse_loads
    rep.Transform.Scalar_replace.registers;
  (* Data layout of the selected code. *)
  let accesses = Analysis.Access.collect sel.Design.kernel.Ast.k_body in
  let layout =
    Data_layout.Layout.assign ~num_memories:device.Hls.Device.num_memories
      sel.Design.kernel accesses
  in
  Format.fprintf fmt "### Data layout@.@.```@.%a```@.@." Data_layout.Layout.pp
    layout;
  Format.fprintf fmt "## Baseline comparison@.@.";
  Format.fprintf fmt
    "| design | cycles | slices | balance |@.|---|---|---|---|@.";
  Format.fprintf fmt "| baseline %a | %d | %d | %.3f |@." pp_vector
    r.baseline.Design.vector (Design.cycles r.baseline)
    (Design.space r.baseline) (Design.balance r.baseline);
  Format.fprintf fmt "| selected %a | %d | %d | %.3f |@.@." pp_vector
    sel.Design.vector (Design.cycles sel) (Design.space sel)
    (Design.balance sel);
  Format.fprintf fmt "**Speedup over baseline: %.2fx**@.@." (speedup r);
  Format.fprintf fmt "## Generated code@.@.```c@.%s@.```@."
    (Pretty.kernel_to_string sel.Design.kernel)

let to_string (r : t) = Format.asprintf "%a" render r
