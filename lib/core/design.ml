(** A design point: one unroll-factor vector, the code it generates, and
    the behavioral synthesis estimates for it. Evaluating a point is the
    `Generate; Synthesize; Balance` sequence of the paper's Figure 2.

    Evaluation is memoized: every context carries a cache keyed on the
    normalized unroll vector, shared by the search, the exhaustive sweep,
    and the drivers, plus counters ([stats]) that record how many designs
    were actually synthesized versus served from the cache. *)

open Ir

type point = {
  vector : (string * int) list;  (** unroll factor per spine loop *)
  kernel : Ast.kernel;  (** transformed code *)
  estimate : Hls.Estimate.t;
  report : Transform.Scalar_replace.report;
}

type stats = {
  mutable evaluations : int;
      (** cache misses: full [Generate; Synthesize] runs *)
  mutable cache_hits : int;
  mutable quick_estimates : int;
      (** tier-1 analytical lower bounds computed ({!quick}) *)
  mutable pruned : int;
      (** full syntheses skipped because a lower bound disqualified
          the point (over capacity or provably behind the incumbent) *)
  mutable transform_seconds : float;  (** wall time in the transform pipeline *)
  mutable estimate_seconds : float;  (** wall time in the synthesis estimator *)
  mutable dfg_seconds : float;  (** estimator time building DFGs *)
  mutable schedule_seconds : float;
      (** estimator time in the tri-mode scheduler (memo hits pay only
          the fingerprint) *)
  mutable layout_seconds : float;  (** estimator time in the data layout *)
  mutable sched_memo_hits : int;
      (** blocks whose tri-schedule was served content-addressed from
          the fingerprint memo instead of being scheduled *)
  mutable checked_points : int;
      (** design points whose pipeline run was translation-validated
          ([--verify]) *)
  mutable verify_violations : int;
      (** error-severity validation findings across checked points *)
}

let fresh_stats () =
  {
    evaluations = 0;
    cache_hits = 0;
    quick_estimates = 0;
    pruned = 0;
    transform_seconds = 0.0;
    estimate_seconds = 0.0;
    dfg_seconds = 0.0;
    schedule_seconds = 0.0;
    layout_seconds = 0.0;
    sched_memo_hits = 0;
    checked_points = 0;
    verify_violations = 0;
  }

type context = {
  source : Ast.kernel;  (** the input loop nest *)
  profile : Hls.Estimate.profile;
  capacity : int;  (** device slices *)
  spine : Ast.loop list;
  spine_divisors : (string * int list) list;
      (** ascending divisors of each spine loop's trip count *)
  pipeline : Transform.Pipeline.options;  (** base options (vector is set per point) *)
  cache : ((string * int) list, point) Hashtbl.t;
      (** evaluation memo, keyed on the normalized vector *)
  sched_memo : Hls.Schedule.memo;
      (** content-addressed tri-schedule table keyed on
          {!Hls.Dfg.fingerprint}: each distinct block shape is scheduled
          once per context — across blocks of one point, across lattice
          points, and (via {!fork}/{!absorb}) across sweep domains *)
  quick_facts : Hls.Quick.facts option Lazy.t;
      (** tier-1 pre-estimator facts; [None] when the pipeline tiles
          (strip-mining adds loops the source skeleton cannot see) *)
  verify : bool;
      (** translation-validate every uncached evaluation
          ({!Check.Validate}); selections are bit-identical, violations
          are counted in [stats] *)
  stats : stats;
}

let context ?(pipeline = Transform.Pipeline.default)
    ?(profile = Hls.Estimate.default_profile ()) ?(verify = false)
    (source : Ast.kernel) =
  let spine = Loop_nest.spine source.k_body in
  {
    source;
    profile;
    capacity = profile.Hls.Estimate.device.Hls.Device.capacity_slices;
    spine;
    spine_divisors =
      List.map
        (fun (l : Ast.loop) -> (l.index, Util.divisors (Ast.loop_trip l)))
        spine;
    pipeline;
    cache = Hashtbl.create 64;
    sched_memo = Hls.Schedule.memo_create ();
    quick_facts =
      lazy
        (if pipeline.Transform.Pipeline.tile <> None then None
         else
           Some
             (Hls.Quick.facts ~device:profile.Hls.Estimate.device
                ~mem:profile.Hls.Estimate.mem source));
    verify;
    stats = fresh_stats ();
  }

(** Normalise a vector to cover every spine loop, with factors clamped to
    divisors of the trip counts (the space the search explores; a
    non-divisor factor would leave an epilogue that defeats scalar
    replacement). The largest divisor no greater than the requested
    factor comes from the context's precomputed divisor lists rather
    than a linear downward scan. *)
let normalize_vector (ctx : context) (v : (string * int) list) :
    (string * int) list =
  List.map2
    (fun (l : Ast.loop) (_, divs) ->
      let u = max 1 (Option.value ~default:1 (List.assoc_opt l.index v)) in
      let u = min u (Ast.loop_trip l) in
      (* divisor lists are ascending; keep the largest one <= u *)
      let d =
        List.fold_left (fun best d -> if d <= u then d else best) 1 divs
      in
      (l.index, d))
    ctx.spine ctx.spine_divisors

let product v = List.fold_left (fun acc (_, u) -> acc * u) 1 v

(** Equality of the designs two vectors denote: loops missing from either
    side count as factor 1, so a partial vector compares equal to its
    spine-normalized form (and vectors of different lengths never raise). *)
let vector_equal a b =
  let factor v i = Option.value ~default:1 (List.assoc_opt i v) in
  let indices =
    List.sort_uniq compare (List.map fst a @ List.map fst b)
  in
  List.for_all (fun i -> factor a i = factor b i) indices

(** Unroll factor vector corresponding to no unrolling (the baseline of
    Table 2: all other transformations still apply). *)
let ubase (ctx : context) = List.map (fun (l : Ast.loop) -> (l.index, 1)) ctx.spine

(** Full unrolling of every loop. *)
let umax (ctx : context) =
  List.map (fun (l : Ast.loop) -> (l.index, Ast.loop_trip l)) ctx.spine

(** Generate the code for a vector and estimate it — the paper's
    [Generate] followed by [Synthesize] — bypassing the cache (the
    result is not stored either). Still bumps [stats]. *)
let evaluate_uncached (ctx : context) (v : (string * int) list) : point =
  let v = normalize_vector ctx v in
  let opts = { ctx.pipeline with Transform.Pipeline.vector = v } in
  let t0 = Util.now () in
  let r =
    if not ctx.verify then Transform.Pipeline.apply opts ctx.source
    else begin
      (* Verified evaluation: same pipeline, instrumented per stage by
         the translation validator. The transformed result is
         bit-identical; error-severity findings only bump the violation
         counter (the sweep itself is the paper's experiment — reporting
         stays the job of the drivers). *)
      let outcome = Check.Validate.run ~options:opts ctx.source in
      ctx.stats.checked_points <- ctx.stats.checked_points + 1;
      ctx.stats.verify_violations <-
        ctx.stats.verify_violations
        + List.length (Check.Validate.violations outcome);
      match outcome.Check.Validate.result with
      | Some r -> r
      | None ->
          (* The pipeline raised mid-stage; surface it like the
             unverified path would. *)
          failwith
            (String.concat "; "
               (List.map Check.Diag.render
                  (Check.Validate.violations outcome)))
    end
  in
  let t1 = Util.now () in
  let timers = Hls.Estimate.fresh_timers () in
  let estimate =
    Hls.Estimate.estimate ~sched_memo:ctx.sched_memo ~timers ctx.profile
      r.Transform.Pipeline.kernel
  in
  let t2 = Util.now () in
  ctx.stats.evaluations <- ctx.stats.evaluations + 1;
  ctx.stats.transform_seconds <- ctx.stats.transform_seconds +. (t1 -. t0);
  ctx.stats.estimate_seconds <- ctx.stats.estimate_seconds +. (t2 -. t1);
  ctx.stats.dfg_seconds <-
    ctx.stats.dfg_seconds +. timers.Hls.Estimate.dfg_seconds;
  ctx.stats.schedule_seconds <-
    ctx.stats.schedule_seconds +. timers.Hls.Estimate.schedule_seconds;
  ctx.stats.layout_seconds <-
    ctx.stats.layout_seconds +. timers.Hls.Estimate.layout_seconds;
  ctx.stats.sched_memo_hits <-
    ctx.stats.sched_memo_hits + timers.Hls.Estimate.sched_memo_hits;
  {
    vector = v;
    kernel = r.Transform.Pipeline.kernel;
    estimate;
    report = r.Transform.Pipeline.report;
  }

(** Cached [Generate; Synthesize]: vectors are normalized before the
    cache lookup, so any two spellings of the same design share one
    synthesis run. *)
let evaluate (ctx : context) (v : (string * int) list) : point =
  let key = normalize_vector ctx v in
  match Hashtbl.find_opt ctx.cache key with
  | Some p ->
      ctx.stats.cache_hits <- ctx.stats.cache_hits + 1;
      p
  | None ->
      let p = evaluate_uncached ctx key in
      Hashtbl.replace ctx.cache key p;
      p

(* ------------------------------------------------------------------ *)
(* Tier-1 analytical bounds *)

(** Admissible lower bounds for the design point at [v], without
    generating or estimating anything — the two-tier engine's tier 1.
    [None] when the pre-estimator does not apply (tiling pipeline). *)
let quick (ctx : context) (v : (string * int) list) : Hls.Quick.t option =
  match Lazy.force ctx.quick_facts with
  | None -> None
  | Some facts ->
      ctx.stats.quick_estimates <- ctx.stats.quick_estimates + 1;
      Some (Hls.Quick.bound facts ~vector:(normalize_vector ctx v))

(** Record that one full synthesis was skipped on tier-1 evidence. *)
let note_pruned (ctx : context) =
  ctx.stats.pruned <- ctx.stats.pruned + 1

(* ------------------------------------------------------------------ *)
(* Cache and statistics plumbing *)

let cache_size (ctx : context) = Hashtbl.length ctx.cache

(** Distinct block shapes whose tri-schedule is memoized. *)
let sched_memo_size (ctx : context) = Hls.Schedule.memo_size ctx.sched_memo

let reset_stats (ctx : context) =
  ctx.stats.evaluations <- 0;
  ctx.stats.cache_hits <- 0;
  ctx.stats.quick_estimates <- 0;
  ctx.stats.pruned <- 0;
  ctx.stats.transform_seconds <- 0.0;
  ctx.stats.estimate_seconds <- 0.0;
  ctx.stats.dfg_seconds <- 0.0;
  ctx.stats.schedule_seconds <- 0.0;
  ctx.stats.layout_seconds <- 0.0;
  ctx.stats.sched_memo_hits <- 0;
  ctx.stats.checked_points <- 0;
  ctx.stats.verify_violations <- 0

(** Immutable copy of the context's counters (for before/after deltas). *)
let stats_snapshot (ctx : context) : stats =
  {
    evaluations = ctx.stats.evaluations;
    cache_hits = ctx.stats.cache_hits;
    quick_estimates = ctx.stats.quick_estimates;
    pruned = ctx.stats.pruned;
    transform_seconds = ctx.stats.transform_seconds;
    estimate_seconds = ctx.stats.estimate_seconds;
    dfg_seconds = ctx.stats.dfg_seconds;
    schedule_seconds = ctx.stats.schedule_seconds;
    layout_seconds = ctx.stats.layout_seconds;
    sched_memo_hits = ctx.stats.sched_memo_hits;
    checked_points = ctx.stats.checked_points;
    verify_violations = ctx.stats.verify_violations;
  }

let stats_diff ~(before : stats) ~(after : stats) : stats =
  {
    evaluations = after.evaluations - before.evaluations;
    cache_hits = after.cache_hits - before.cache_hits;
    quick_estimates = after.quick_estimates - before.quick_estimates;
    pruned = after.pruned - before.pruned;
    transform_seconds = after.transform_seconds -. before.transform_seconds;
    estimate_seconds = after.estimate_seconds -. before.estimate_seconds;
    dfg_seconds = after.dfg_seconds -. before.dfg_seconds;
    schedule_seconds = after.schedule_seconds -. before.schedule_seconds;
    layout_seconds = after.layout_seconds -. before.layout_seconds;
    sched_memo_hits = after.sched_memo_hits - before.sched_memo_hits;
    checked_points = after.checked_points - before.checked_points;
    verify_violations = after.verify_violations - before.verify_violations;
  }

(** A private copy of [ctx] for one domain of a parallel sweep: shares
    the immutable fields, snapshots the current cache, and starts fresh
    counters. Never share one mutable context across domains — fork per
    domain and [absorb] the forks back on the joining side. *)
let fork (ctx : context) : context =
  (* Lazy.force is not domain-safe: settle the shared suspension here,
     on the forking side, before any domain can race on it. *)
  ignore (Lazy.force ctx.quick_facts);
  {
    ctx with
    cache = Hashtbl.copy ctx.cache;
    sched_memo = Hls.Schedule.memo_copy ctx.sched_memo;
    stats = fresh_stats ();
  }

(** Merge a fork's cache entries, tri-schedule memo and counters back
    into [into] (entries already present in [into] are kept as-is). *)
let absorb ~(into : context) (forked : context) : unit =
  Hashtbl.iter
    (fun k p -> if not (Hashtbl.mem into.cache k) then Hashtbl.replace into.cache k p)
    forked.cache;
  Hls.Schedule.memo_absorb ~into:into.sched_memo forked.sched_memo;
  into.stats.evaluations <- into.stats.evaluations + forked.stats.evaluations;
  into.stats.cache_hits <- into.stats.cache_hits + forked.stats.cache_hits;
  into.stats.quick_estimates <-
    into.stats.quick_estimates + forked.stats.quick_estimates;
  into.stats.pruned <- into.stats.pruned + forked.stats.pruned;
  into.stats.transform_seconds <-
    into.stats.transform_seconds +. forked.stats.transform_seconds;
  into.stats.estimate_seconds <-
    into.stats.estimate_seconds +. forked.stats.estimate_seconds;
  into.stats.dfg_seconds <- into.stats.dfg_seconds +. forked.stats.dfg_seconds;
  into.stats.schedule_seconds <-
    into.stats.schedule_seconds +. forked.stats.schedule_seconds;
  into.stats.layout_seconds <-
    into.stats.layout_seconds +. forked.stats.layout_seconds;
  into.stats.sched_memo_hits <-
    into.stats.sched_memo_hits + forked.stats.sched_memo_hits;
  into.stats.checked_points <-
    into.stats.checked_points + forked.stats.checked_points;
  into.stats.verify_violations <-
    into.stats.verify_violations + forked.stats.verify_violations

let balance (p : point) = p.estimate.Hls.Estimate.balance
let space (p : point) = p.estimate.Hls.Estimate.slices
let cycles (p : point) = p.estimate.Hls.Estimate.cycles
let fits (ctx : context) (p : point) = space p <= ctx.capacity

let pp_vector fmt v =
  Format.fprintf fmt "(%s)"
    (String.concat ", " (List.map (fun (i, u) -> Printf.sprintf "%s=%d" i u) v))

let pp_point fmt p =
  Format.fprintf fmt "%a: cycles=%d slices=%d balance=%.3f" pp_vector p.vector
    (cycles p) (space p) (balance p)

let pp_stats fmt (s : stats) =
  Format.fprintf fmt
    "%d synthesized, %d cache hits, %d quick estimates, %d pruned, %d sched \
     memo hits (transform %.1f ms, estimate %.1f ms)"
    s.evaluations s.cache_hits s.quick_estimates s.pruned s.sched_memo_hits
    (1000.0 *. s.transform_seconds)
    (1000.0 *. s.estimate_seconds);
  if s.checked_points > 0 then
    Format.fprintf fmt "; verified %d point(s), %d violation(s)"
      s.checked_points s.verify_violations

(** Per-stage wall-time split of the estimator (the [--profile] view):
    DFG construction, scheduling, data layout, and whatever remains of
    [estimate_seconds] (region walk, area fold). *)
let pp_profile fmt (s : stats) =
  let other =
    Float.max 0.0
      (s.estimate_seconds -. s.dfg_seconds -. s.schedule_seconds
     -. s.layout_seconds)
  in
  Format.fprintf fmt
    "transform %.1f ms; estimate %.1f ms = dfg %.1f + schedule %.1f + layout \
     %.1f + other %.1f; %d tri-schedules served from the fingerprint memo"
    (1000.0 *. s.transform_seconds)
    (1000.0 *. s.estimate_seconds)
    (1000.0 *. s.dfg_seconds)
    (1000.0 *. s.schedule_seconds)
    (1000.0 *. s.layout_seconds)
    (1000.0 *. other) s.sched_memo_hits;
  if s.checked_points > 0 then
    Format.fprintf fmt
      "; translation validation: %d point(s) checked, %d violation(s)"
      s.checked_points s.verify_violations
