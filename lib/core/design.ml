(** A design point: one unroll-factor vector, the code it generates, and
    the behavioral synthesis estimates for it. Evaluating a point is the
    [Generate; Synthesize; Balance] sequence of the paper's Figure 2.

    Since the layered-engine refactor this module is a thin view over
    {!Engine}: a [context] bundles an evaluation environment
    ({!Engine.Backend.env}), a pluggable backend ({!Engine.Backend.t})
    and a unified store ({!Engine.Store.t} — point cache, tri-schedule
    memo and counters with one fork/absorb lifecycle and a persistent
    on-disk form). Every evaluation anywhere in the system goes through
    [Engine.Backend.evaluate]; nothing here talks to the estimator
    directly. *)

open Ir

type config = Engine.Store.config = {
  vector : (string * int) list;  (** unroll factor per spine loop *)
  tile : (string * int) option;  (** strip-mine this loop to this tile *)
  scalar_replace : bool;
  peel : bool;
  licm : bool;
}

type point = Engine.Store.point = {
  config : config;  (** the normalized configuration this point is *)
  vector : (string * int) list;
      (** [config.vector], kept as a field for vector-only call sites *)
  kernel : Ast.kernel;  (** transformed code *)
  estimate : Hls.Estimate.t;
  report : Transform.Scalar_replace.report;
}

type stats = Engine.Store.stats = {
  mutable evaluations : int;
      (** cache misses: full [Generate; Synthesize] runs *)
  mutable cache_hits : int;
  mutable quick_estimates : int;
      (** tier-1 analytical lower bounds computed ({!quick}) *)
  mutable pruned : int;
      (** full syntheses skipped because a lower bound disqualified
          the point (over capacity or provably behind the incumbent) *)
  mutable transform_seconds : float;  (** wall time in the transform pipeline *)
  mutable estimate_seconds : float;  (** wall time in the synthesis estimator *)
  mutable dfg_seconds : float;  (** estimator time building DFGs *)
  mutable schedule_seconds : float;
      (** estimator time in the tri-mode scheduler (memo hits pay only
          the fingerprint) *)
  mutable layout_seconds : float;  (** estimator time in the data layout *)
  mutable sched_memo_hits : int;
      (** blocks whose tri-schedule was served content-addressed from
          the fingerprint memo instead of being scheduled *)
  mutable region_memo_hits : int;
      (** blocks that missed the whole-block memo but restored a
          statement-prefix scheduler snapshot and scheduled only the
          tail *)
  mutable delta_reuses : int;
      (** design points whose transform pipeline reused a cached
          outer-prefix unroll instead of unrolling from the source *)
  mutable checked_points : int;
      (** design points whose pipeline run was translation-validated
          ([--verify]) *)
  mutable verify_violations : int;
      (** error-severity validation findings across checked points *)
  mutable flow_builds : int;
      (** flow graphs the verified path's dataflow checks constructed *)
  mutable flow_solves : int;  (** dataflow fixpoint solves run *)
  mutable flow_seconds : float;
      (** wall time building and solving flow graphs *)
  mutable joint_configs : int;
      (** configurations enumerated by joint sweeps (the joint space
          size before any pruning) *)
  mutable joint_pruned_illegal : int;
      (** joint configurations dropped by the legality pre-pruner *)
  mutable joint_pruned_redundant : int;
      (** joint configurations dropped as duplicates of a canonical
          configuration already enumerated *)
  mutable joint_pruned_bound : int;
      (** joint configurations skipped on tier-1 lower bounds *)
}

let fresh_stats = Engine.Store.fresh_stats

type context = {
  source : Ast.kernel;  (** the input loop nest *)
  profile : Hls.Estimate.profile;
  capacity : int;  (** device slices *)
  spine : Ast.loop list;
  spine_divisors : (string * int list) list;
      (** ascending divisors of each spine loop's trip count *)
  pipeline : Transform.Pipeline.options;  (** base options (vector is set per point) *)
  backend : Engine.Backend.t;
      (** the fidelity level evaluations run at; the default is the
          two-tier composition [quick_gate full] *)
  store : Engine.Store.t;
      (** point cache + tri-schedule memo + counters. Updating
          [pipeline] or [profile] with a record update invalidates the
          cached points — build a fresh context instead (updating
          [capacity] is fine for the [full] backends: it does not enter
          behavioral evaluation). *)
  quick_facts : (string * int) option -> Hls.Quick.facts;
      (** tier-1 pre-estimator facts per tile candidate, memoized and
          mutex-protected; facts for a tile come from the strip-mined
          source, keeping the quick bounds admissible under tiling *)
  verify : bool;
      (** translation-validate every uncached evaluation
          ({!Check.Validate}); selections are bit-identical, violations
          are counted in [stats] *)
  incremental : bool;
      (** use the structure-sharing evaluation paths (DFG arena,
          region-level schedule snapshots, delta transform cache);
          [false] is the [--no-incremental] escape hatch *)
  stats : stats;  (** alias of [store.stats] — kept as a field so the
          historical [ctx.stats.evaluations] accesses keep working *)
}

(** The engine view of a context: same fields, minus the mutable store.
    Cheap (one record allocation); the quick-facts suspension is shared,
    not rebuilt. *)
let env (ctx : context) : Engine.Backend.env =
  {
    Engine.Backend.source = ctx.source;
    profile = ctx.profile;
    capacity = ctx.capacity;
    spine = ctx.spine;
    spine_divisors = ctx.spine_divisors;
    pipeline = ctx.pipeline;
    quick_facts = ctx.quick_facts;
    verify = ctx.verify;
    incremental = ctx.incremental;
  }

(** A context over an engine-built environment and an existing (possibly
    warm-loaded) store — how the session driver hands evaluation state
    to the search. *)
let of_env ?(backend = Engine.Backend.default) ~(store : Engine.Store.t)
    (env : Engine.Backend.env) : context =
  {
    source = env.Engine.Backend.source;
    profile = env.Engine.Backend.profile;
    capacity = env.Engine.Backend.capacity;
    spine = env.Engine.Backend.spine;
    spine_divisors = env.Engine.Backend.spine_divisors;
    pipeline = env.Engine.Backend.pipeline;
    backend;
    store;
    quick_facts = env.Engine.Backend.quick_facts;
    verify = env.Engine.Backend.verify;
    incremental = env.Engine.Backend.incremental;
    stats = store.Engine.Store.stats;
  }

let context ?pipeline ?profile ?verify ?incremental ?capacity ?backend ?store
    (source : Ast.kernel) =
  let store =
    match store with Some s -> s | None -> Engine.Store.create ()
  in
  of_env ?backend ~store
    (Engine.Backend.make_env ?pipeline ?profile ?verify ?incremental ?capacity
       source)

let normalize_vector (ctx : context) (v : (string * int) list) :
    (string * int) list =
  Engine.Backend.normalize_vector (env ctx) v

let product v = List.fold_left (fun acc (_, u) -> acc * u) 1 v

(** Equality of the designs two vectors denote: loops missing from either
    side count as factor 1, so a partial vector compares equal to its
    spine-normalized form (and vectors of different lengths never raise). *)
let vector_equal a b =
  let factor v i = Option.value ~default:1 (List.assoc_opt i v) in
  let indices =
    List.sort_uniq compare (List.map fst a @ List.map fst b)
  in
  List.for_all (fun i -> factor a i = factor b i) indices

(** Unroll factor vector corresponding to no unrolling (the baseline of
    Table 2: all other transformations still apply). *)
let ubase (ctx : context) = List.map (fun (l : Ast.loop) -> (l.index, 1)) ctx.spine

(** Full unrolling of every loop. *)
let umax (ctx : context) =
  List.map (fun (l : Ast.loop) -> (l.index, Ast.loop_trip l)) ctx.spine

(** The backend's synthesis, bypassing the point cache (neither read nor
    written). Still bumps the store's counters. *)
let evaluate_uncached (ctx : context) (v : (string * int) list) : point =
  ctx.backend.Engine.Backend.synthesize (env ctx) ctx.store
    (Engine.Backend.base_config (env ctx) (normalize_vector ctx v))

(** Cached [Generate; Synthesize] through the context's store: vectors
    are normalized before the cache lookup, so any two spellings of the
    same design share one synthesis run. *)
let evaluate (ctx : context) (v : (string * int) list) : point =
  Engine.Backend.evaluate (env ctx) ctx.backend ctx.store v

(* ------------------------------------------------------------------ *)
(* Joint configurations *)

(** The context's base configuration at unroll vector [v]: tile and
    toggles from the base pipeline options — what the vector-only entry
    points evaluate. *)
let base_config (ctx : context) (v : (string * int) list) : config =
  Engine.Backend.base_config (env ctx) v

(** Canonical cache key of a configuration (see
    {!Engine.Backend.normalize_config}). *)
let normalize_config (ctx : context) (c : config) : config =
  Engine.Backend.normalize_config (env ctx) c

(** Equality of the designs two configurations denote: vectors compare
    via {!vector_equal}, the other knobs structurally. *)
let config_equal (a : config) (b : config) =
  vector_equal a.vector b.vector
  && a.tile = b.tile
  && a.scalar_replace = b.scalar_replace
  && a.peel = b.peel && a.licm = b.licm

(** Cached evaluation of one joint configuration (normalized before the
    cache lookup, like {!evaluate}). *)
let evaluate_config (ctx : context) (c : config) : point =
  Engine.Backend.evaluate_config (env ctx) ctx.backend ctx.store c

(** The backend's tier-1 bound for a joint configuration. *)
let quick_config (ctx : context) (c : config) : Hls.Quick.t option =
  ctx.backend.Engine.Backend.bound (env ctx) ctx.store c

(* ------------------------------------------------------------------ *)
(* Tier-1 analytical bounds *)

(** The backend's tier-1 bound for the design point at [v] — admissible
    lower bounds without generating or estimating anything. [None] when
    the backend has no bound tier (plain [full]/[lowlevel]) or the
    pre-estimator does not apply (tiling pipeline); callers must then
    synthesize instead of pruning. *)
let quick (ctx : context) (v : (string * int) list) : Hls.Quick.t option =
  ctx.backend.Engine.Backend.bound (env ctx) ctx.store
    (Engine.Backend.base_config (env ctx) v)

(** Record that one full synthesis was skipped on tier-1 evidence. *)
let note_pruned (ctx : context) =
  ctx.stats.pruned <- ctx.stats.pruned + 1

(* ------------------------------------------------------------------ *)
(* Store and statistics plumbing *)

let cache_size (ctx : context) = Engine.Store.size ctx.store

(** Distinct block shapes whose tri-schedule is memoized. *)
let sched_memo_size (ctx : context) = Engine.Store.sched_memo_size ctx.store

let reset_stats (ctx : context) = Engine.Store.reset_stats ctx.stats

(** Immutable copy of the context's counters (for before/after deltas). *)
let stats_snapshot (ctx : context) : stats = Engine.Store.stats_copy ctx.stats

let stats_diff = Engine.Store.stats_diff

(** A private copy of [ctx] for one domain of a parallel sweep: shares
    the immutable fields, snapshots the store's caches, and starts fresh
    counters — no mutable state, counters included, is ever shared
    across domains. Never share one mutable context across domains —
    fork per domain and [absorb] the forks back on the joining side. *)
let fork (ctx : context) : context =
  (* The quick-facts memo is mutex-protected and domain-safe, but
     pre-warm the base pipeline's entry here so sweep domains start
     from a hit instead of contending on the first computation. *)
  ignore (ctx.quick_facts ctx.pipeline.Transform.Pipeline.tile);
  let store = Engine.Store.fork ctx.store in
  { ctx with store; stats = store.Engine.Store.stats }

(** Merge a fork's cache entries, tri-schedule memo and counters back
    into [into] (entries already present in [into] are kept as-is). *)
let absorb ~(into : context) (forked : context) : unit =
  Engine.Store.absorb ~into:into.store forked.store

let balance (p : point) = p.estimate.Hls.Estimate.balance
let space (p : point) = p.estimate.Hls.Estimate.slices
let cycles (p : point) = p.estimate.Hls.Estimate.cycles
let fits (ctx : context) (p : point) = space p <= ctx.capacity

let pp_config = Transform.Pipeline.pp_config
let config_to_string = Transform.Pipeline.config_to_string

let pp_vector fmt v =
  Format.fprintf fmt "(%s)"
    (String.concat ", " (List.map (fun (i, u) -> Printf.sprintf "%s=%d" i u) v))

let pp_point fmt p =
  Format.fprintf fmt "%a: cycles=%d slices=%d balance=%.3f" pp_vector p.vector
    (cycles p) (space p) (balance p)

let pp_stats fmt (s : stats) =
  Format.fprintf fmt
    "%d synthesized, %d cache hits, %d quick estimates, %d pruned, %d sched \
     memo hits (transform %.1f ms, estimate %.1f ms)"
    s.evaluations s.cache_hits s.quick_estimates s.pruned s.sched_memo_hits
    (1000.0 *. s.transform_seconds)
    (1000.0 *. s.estimate_seconds);
  if s.checked_points > 0 then
    Format.fprintf fmt "; verified %d point(s), %d violation(s)"
      s.checked_points s.verify_violations;
  if s.joint_configs > 0 then
    Format.fprintf fmt
      "; joint space: %d config(s) enumerated, %d illegal, %d redundant, %d \
       bound-pruned"
      s.joint_configs s.joint_pruned_illegal s.joint_pruned_redundant
      s.joint_pruned_bound

(** Per-stage wall-time split of the estimator (the [--profile] view):
    DFG construction, scheduling, data layout, and whatever remains of
    [estimate_seconds] (region walk, area fold). *)
let pp_profile fmt (s : stats) =
  let other =
    Float.max 0.0
      (s.estimate_seconds -. s.dfg_seconds -. s.schedule_seconds
     -. s.layout_seconds)
  in
  Format.fprintf fmt
    "transform %.1f ms; estimate %.1f ms = dfg %.1f + schedule %.1f + layout \
     %.1f + other %.1f; %d tri-schedules served from the fingerprint memo"
    (1000.0 *. s.transform_seconds)
    (1000.0 *. s.estimate_seconds)
    (1000.0 *. s.dfg_seconds)
    (1000.0 *. s.schedule_seconds)
    (1000.0 *. s.layout_seconds)
    (1000.0 *. other) s.sched_memo_hits;
  if s.region_memo_hits > 0 || s.delta_reuses > 0 then
    Format.fprintf fmt
      "; incremental: %d region-prefix restores, %d delta transform reuses"
      s.region_memo_hits s.delta_reuses;
  if s.checked_points > 0 then
    Format.fprintf fmt
      "; translation validation: %d point(s) checked, %d violation(s)"
      s.checked_points s.verify_violations;
  if s.flow_builds > 0 then
    Format.fprintf fmt
      "; flowgraph: %d build(s), %d solve(s) in %.1f ms"
      s.flow_builds s.flow_solves
      (1000.0 *. s.flow_seconds)
