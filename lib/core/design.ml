(** A design point: one unroll-factor vector, the code it generates, and
    the behavioral synthesis estimates for it. Evaluating a point is the
    `Generate; Synthesize; Balance` sequence of the paper's Figure 2. *)

open Ir

type point = {
  vector : (string * int) list;  (** unroll factor per spine loop *)
  kernel : Ast.kernel;  (** transformed code *)
  estimate : Hls.Estimate.t;
  report : Transform.Scalar_replace.report;
}

type context = {
  source : Ast.kernel;  (** the input loop nest *)
  profile : Hls.Estimate.profile;
  capacity : int;  (** device slices *)
  spine : Ast.loop list;
  pipeline : Transform.Pipeline.options;  (** base options (vector is set per point) *)
}

let context ?(pipeline = Transform.Pipeline.default)
    ?(profile = Hls.Estimate.default_profile ()) (source : Ast.kernel) =
  {
    source;
    profile;
    capacity = profile.Hls.Estimate.device.Hls.Device.capacity_slices;
    spine = Loop_nest.spine source.k_body;
    pipeline;
  }

(** Normalise a vector to cover every spine loop, with factors clamped to
    divisors of the trip counts (the space the search explores; a
    non-divisor factor would leave an epilogue that defeats scalar
    replacement). *)
let normalize_vector (ctx : context) (v : (string * int) list) :
    (string * int) list =
  List.map
    (fun (l : Ast.loop) ->
      let u = max 1 (Option.value ~default:1 (List.assoc_opt l.index v)) in
      let trip = Ast.loop_trip l in
      let u = min u trip in
      let rec down u = if u <= 1 || trip mod u = 0 then max 1 u else down (u - 1) in
      (l.index, down u))
    ctx.spine

let product v = List.fold_left (fun acc (_, u) -> acc * u) 1 v

let vector_equal a b =
  List.for_all2 (fun (i, u) (j, w) -> i = j && u = w) a b

(** Unroll factor vector corresponding to no unrolling (the baseline of
    Table 2: all other transformations still apply). *)
let ubase (ctx : context) = List.map (fun (l : Ast.loop) -> (l.index, 1)) ctx.spine

(** Full unrolling of every loop. *)
let umax (ctx : context) =
  List.map (fun (l : Ast.loop) -> (l.index, Ast.loop_trip l)) ctx.spine

(** Generate the code for a vector and estimate it — the paper's
    [Generate] followed by [Synthesize]. *)
let evaluate (ctx : context) (v : (string * int) list) : point =
  let v = normalize_vector ctx v in
  let opts = { ctx.pipeline with Transform.Pipeline.vector = v } in
  let r = Transform.Pipeline.apply opts ctx.source in
  let estimate = Hls.Estimate.estimate ctx.profile r.Transform.Pipeline.kernel in
  {
    vector = v;
    kernel = r.Transform.Pipeline.kernel;
    estimate;
    report = r.Transform.Pipeline.report;
  }

let balance (p : point) = p.estimate.Hls.Estimate.balance
let space (p : point) = p.estimate.Hls.Estimate.slices
let cycles (p : point) = p.estimate.Hls.Estimate.cycles
let fits (ctx : context) (p : point) = space p <= ctx.capacity

let pp_vector fmt v =
  Format.fprintf fmt "(%s)"
    (String.concat ", " (List.map (fun (i, u) -> Printf.sprintf "%s=%d" i u) v))

let pp_point fmt p =
  Format.fprintf fmt "%a: cycles=%d slices=%d balance=%.3f" pp_vector p.vector
    (cycles p) (space p) (balance p)
