(** The search-specialized session driver: {!Engine.run_many} with the
    Figure-2 exploration as the per-kernel work. One call explores a
    batch of kernels over one shared tri-schedule memo, one worker-domain
    pool and (optionally) one persistent cache directory; a warm second
    run performs zero full syntheses and selects bit-identical designs. *)

type outcome = {
  task : Engine.task;
  search : Search.result;
  baseline : Design.point;  (** the no-unrolling design ([ubase]) *)
  ctx : Design.context;  (** post-run context (store, stats, capacity) *)
  loaded_points : int;  (** points warm-loaded from the persistent store *)
  stats : Design.stats;  (** this kernel's counters, baseline included *)
  wall_seconds : float;
}

type summary = {
  outcomes : outcome list;
  total : Design.stats;  (** sum over all kernels *)
  loaded_memo_shapes : int;
      (** tri-schedules warm-loaded from the persistent store *)
  sched_memo_shapes : int;
      (** distinct block shapes in the shared memo after the session *)
  config : string;  (** the persistence configuration string *)
  saved_to : string option;  (** cache directory written, if any *)
}

(** Cycles of the baseline over cycles of the selected design. *)
val speedup : outcome -> float

(** Explore each kernel in order. With [cache_dir], stores are
    warm-loaded before and saved after ([cold] skips the loads);
    selections are bit-identical cold and warm, batched and sequential.
    [pool]/[jobs] control the worker domains shared by all sweeps of the
    session (see {!Engine.run_many}). *)
val run_many :
  ?cache_dir:string ->
  ?cold:bool ->
  ?pipeline:Transform.Pipeline.options ->
  ?profile:Hls.Estimate.profile ->
  ?verify:bool ->
  ?incremental:bool ->
  ?capacity:int ->
  ?backend:Engine.Backend.t ->
  ?pool:Engine.Pool.t ->
  ?jobs:int ->
  ?search_config:Search.config ->
  Engine.task list ->
  summary
