(** The design space exploration algorithm — Figure 2 of the paper.

    Starting from a saturation point chosen with dependence information
    (Section 5.3), the search walks the unroll-factor space guided by the
    balance metric's monotonicity (Observation 3): while compute bound it
    doubles the unroll product; once a memory-bound or over-capacity
    design appears it bisects between the last compute-bound design that
    fits and the current one, always on products that are multiples of
    the saturation product. *)

open Ir

type config = {
  balance_tolerance : float;
      (** |B - 1| within this is considered balanced (the paper tests
          B = 1 exactly, which floating-point estimates never hit) *)
  max_steps : int;  (** hard cap on evaluated designs *)
}

let default_config = { balance_tolerance = 0.05; max_steps = 64 }

type step = {
  point : Design.point;
  verdict : string;  (** human-readable: compute-bound, memory-bound, ... *)
}

type result = {
  selected : Design.point;
  steps : step list;  (** every synthesized design, in search order *)
  sat : Saturation.t;
  uinit : (string * int) list;
  stats : Design.stats;
      (** evaluation counters for this run only: synthesis runs, cache
          hits, transform/estimate wall time *)
}

(* ------------------------------------------------------------------ *)
(* Vector enumeration within bounds *)

(* The enumeration primitives are shared with [Space] through
   [Dse.Util]; here they range over the saturation analysis's eligible
   loops. *)
let vectors_between (ctx : Design.context) (sat : Saturation.t) ~lower ~upper
    ~product : (string * int) list list =
  Util.vectors_between ctx ~eligible:sat.Saturation.eligible ~lower ~upper
    ~product

(** Products reachable by some vector of eligible divisor factors. *)
let achievable_products (ctx : Design.context) (sat : Saturation.t) ~upper :
    int list =
  Util.achievable_products ctx ~eligible:sat.Saturation.eligible ~upper

(* ------------------------------------------------------------------ *)
(* Loop ranking for Uinit and Increase (Section 5.3) *)

(** Higher weight = more promising to unroll: a loop carrying no (true,
    anti or output) dependence is unboundedly parallel; otherwise larger
    minimum nonzero carried distances admit more parallelism. *)
let loop_weights (source : Ast.kernel) : (string * float) list =
  let spine = Loop_nest.spine source.k_body in
  List.map
    (fun (l : Ast.loop) ->
      if Analysis.Dependence.loop_carries_no_dependence source source.k_body l.index
      then (l.index, Float.infinity)
      else
        match
          Analysis.Dependence.min_carried_distance source source.k_body l.index
        with
        | Some d -> (l.index, float_of_int d)
        | None -> (l.index, 1.0))
    spine

let score weights v =
  List.fold_left
    (fun acc (i, u) ->
      if u <= 1 then acc
      else
        let w =
          match List.assoc_opt i weights with
          | Some w when w = Float.infinity -> 1000.0
          | Some w -> w
          | None -> 1.0
        in
        acc +. (w *. Float.log (float_of_int u)))
    0.0 v

(** Initial point: prefer Sat_i of a dependence-free loop; otherwise the
    saturation-set vector that weights loops by carried distance. *)
let choose_uinit (ctx : Design.context) (sat : Saturation.t) :
    (string * int) list =
  let weights = loop_weights ctx.Design.source in
  let free_loop =
    List.find_opt
      (fun i -> List.assoc_opt i weights = Some Float.infinity)
      sat.Saturation.eligible
  in
  let by_sat_i =
    Option.bind free_loop (fun i -> Saturation.sat_i ctx sat i)
  in
  match by_sat_i with
  | Some v -> v
  | None -> (
      match Saturation.sat_set ctx sat with
      | [] -> Design.ubase ctx
      | vs ->
          List.fold_left
            (fun best v -> if score weights v > score weights best then v else best)
            (List.hd vs) (List.tl vs))

(* ------------------------------------------------------------------ *)
(* Figure 2 *)

let run ?(config = default_config) (ctx : Design.context) : result =
  let sat =
    Saturation.compute ~pipeline:ctx.Design.pipeline
      ~num_memories:ctx.Design.profile.Hls.Estimate.device.Hls.Device.num_memories
      ctx.Design.source
  in
  let weights = loop_weights ctx.Design.source in
  let umax = Design.umax ctx in
  let ubase = Design.ubase ctx in
  let uinit = choose_uinit ctx sat in
  let psat_product = max 1 (Design.product uinit) in
  (* The context's evaluation cache is the memo: it keys on the
     *normalized* vector, so partial vectors from [choose_uinit] /
     [Saturation.sat_i] and full vectors from [vectors_between] that
     denote the same design share one synthesis run. *)
  let stats_before = Design.stats_snapshot ctx in
  let steps = ref [] in
  let evaluate v = Design.evaluate ctx v in
  let log point verdict = steps := { point; verdict } :: !steps in
  (* Tier-1 capacity gate: the analytical area floor is admissible, so a
     point it puts over capacity needs no synthesis to be rejected. *)
  let quick_over_capacity v =
    match Design.quick ctx v with
    | Some q -> q.Hls.Quick.slices_lb > ctx.Design.capacity
    | None -> false
  in
  let pick_best cands =
    match cands with
    | [] -> None
    | v :: rest ->
        Some
          (List.fold_left
             (fun best v -> if score weights v > score weights best then v else best)
             v rest)
  in
  (* Increase: the dominating vector whose product is (closest to) twice
     the current one. Divisor-constrained trip counts (e.g. 30) may not
     admit the exact double, so nearby achievable products are tried in
     order of distance from 2*P. *)
  let increase u =
    let p = Design.product u in
    let target = 2 * p in
    let products =
      achievable_products ctx sat ~upper:umax
      |> List.filter (fun q -> q > p)
      |> List.sort (fun a b ->
             compare (abs (a - target), a) (abs (b - target), b))
    in
    let rec try_products = function
      | [] -> u
      | q :: rest -> (
          match pick_best (vectors_between ctx sat ~lower:u ~upper:umax ~product:q) with
          | Some v -> v
          | None -> try_products rest)
    in
    try_products products
  in
  (* SelectBetween: a product that is a multiple of P(Uinit), strictly
     between the two, as close to the midpoint as possible. *)
  let select_between usmall ularge =
    let ps = Design.product usmall and pl = Design.product ularge in
    let mid = (ps + pl) / 2 in
    let candidates =
      achievable_products ctx sat ~upper:ularge
      |> List.filter (fun p -> p > ps && p < pl && p mod psat_product = 0)
      |> List.sort (fun a b -> compare (abs (a - mid)) (abs (b - mid)))
    in
    let rec try_products = function
      | [] -> usmall
      | p :: rest -> (
          match
            pick_best (vectors_between ctx sat ~lower:usmall ~upper:ularge ~product:p)
          with
          | Some v -> v
          | None -> try_products rest)
    in
    try_products candidates
  in
  (* FindLargestFit: the largest design between Ubase and Uinit that fits
     the device, regardless of balance. *)
  let find_largest_fit () =
    let products =
      achievable_products ctx sat ~upper:uinit
      |> List.filter (fun p -> p <= Design.product uinit)
      |> List.sort (fun a b -> compare b a)
    in
    let rec go = function
      | [] -> ubase
      | p :: rest -> (
          match pick_best (vectors_between ctx sat ~lower:ubase ~upper:uinit ~product:p) with
          | Some v ->
              if quick_over_capacity v then begin
                Design.note_pruned ctx;
                go rest
              end
              else begin
                let pt = evaluate v in
                log pt "fit-probe";
                if Design.space pt <= ctx.Design.capacity then v else go rest
              end
          | None -> go rest)
    in
    go products
  in
  let balanced b = Float.abs (b -. 1.0) <= config.balance_tolerance in
  (* State of Figure 2. *)
  let ucurr = ref uinit in
  let umb = ref umax in
  let ucb = ref ubase in
  let seen_cb = ref false in
  let ok = ref false in
  let iterations = ref 0 in
  while not !ok do
    incr iterations;
    if !iterations > config.max_steps then ok := true
    else if quick_over_capacity !ucurr then begin
      (* Rejected on the tier-1 bound alone: same move as the
         over-capacity verdict, with no synthesis and no logged step. *)
      Design.note_pruned ctx;
      if Design.vector_equal !ucurr uinit then begin
        ucurr := find_largest_fit ();
        ok := true
      end
      else begin
        ucurr := select_between !ucb !ucurr;
        if Design.vector_equal !ucurr !ucb then ok := true
      end
    end
    else begin
      let pt = evaluate !ucurr in
      let b = Design.balance pt in
      if Design.space pt > ctx.Design.capacity then begin
        log pt "over-capacity";
        if Design.vector_equal !ucurr uinit then begin
          ucurr := find_largest_fit ();
          ok := true
        end
        else ucurr := select_between !ucb !ucurr
      end
      else if balanced b then begin
        log pt "balanced";
        ok := true
      end
      else if b < 1.0 then begin
        log pt "memory-bound";
        umb := !ucurr;
        if Design.vector_equal !ucurr uinit then ok := true
        else ucurr := select_between !ucb !umb
      end
      else begin
        log pt "compute-bound";
        ucb := !ucurr;
        seen_cb := true;
        if Design.vector_equal !umb umax then ucurr := increase !ucb
        else ucurr := select_between !ucb !umb
      end;
      if (not !ok) && Design.vector_equal !ucurr !ucb then ok := true
    end
  done;
  let selected = evaluate !ucurr in
  (* Make sure the selected design appears in the step log. *)
  if not (List.exists (fun s -> Design.vector_equal s.point.Design.vector !ucurr) !steps)
  then log selected "selected";
  let stats =
    Design.stats_diff ~before:stats_before ~after:(Design.stats_snapshot ctx)
  in
  { selected; steps = List.rev !steps; sat; uinit; stats }

(** Number of distinct designs synthesized during the search. *)
let designs_evaluated (r : result) : int =
  List.sort_uniq compare (List.map (fun s -> s.point.Design.vector) r.steps)
  |> List.length
