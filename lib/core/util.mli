(** Small helpers shared by the design-space modules (and the bench
    harness). *)

(** Positive divisors of [n] in ascending order; empty for [n <= 0]. *)
val divisors : int -> int list

(** Wall-clock timestamp in seconds. *)
val now : unit -> float
