(** Small helpers shared by the design-space modules (and the bench
    harness): timestamps, divisors, and the unroll-vector enumeration
    primitives used by both the search and the sweep. *)

open Ir

(** Positive divisors of [n] in ascending order; empty for [n <= 0]. *)
val divisors : int -> int list

(** Wall-clock timestamp in seconds. *)
val now : unit -> float

(** The context's precomputed ascending divisors of a spine loop's trip
    count (computed on the spot for a loop the table misses). *)
val spine_divisors_of : Design.context -> Ast.loop -> int list

(** All normalized vectors of eligible divisor factors with unroll
    product exactly [product], each loop's factor within its
    [lower]/[upper] entries (missing entries mean factor 1). *)
val vectors_between :
  Design.context ->
  eligible:string list ->
  lower:(string * int) list ->
  upper:(string * int) list ->
  product:int ->
  (string * int) list list

(** Products reachable by some vector of eligible divisor factors, each
    factor bounded by its [upper] entry. *)
val achievable_products :
  Design.context -> eligible:string list -> upper:(string * int) list -> int list

(** All divisor vectors over the eligible loops with unroll product at
    most [max_product]; ineligible spine loops are pinned to factor 1.
    Lexicographic ascending-divisor order. *)
val divisor_vectors :
  ?max_product:int ->
  Design.context ->
  eligible:string list ->
  (string * int) list list
