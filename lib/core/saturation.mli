(** Saturation points (Section 5.1 of the paper).

    A saturation point is an unroll-factor vector at which the unrolled
    body's memory parallelism reaches the architecture's bandwidth. With
    R uniformly generated read sets and W write sets remaining after
    scalar replacement and redundant-write elimination,
    [Psat = lcm(gcd(R, W), NumMemories)]; the saturation set contains the
    vectors of product [Psat] whose factors are 1 on loops that no
    surviving memory access varies with. *)

open Ir

type t = {
  psat : int;
  r : int;  (** uniformly generated read sets in the replaced baseline *)
  w : int;
  eligible : string list;
      (** loops whose unrolling adds memory parallelism, outermost first *)
}

(** Loops some steady-state (unguarded) memory access varies with —
    guarded accesses are the first-iteration bank loads that peeling
    removes from the main body. *)
val eligible_loops : Ast.kernel -> string list

(** Saturation data for a source kernel: the scalar pipeline runs at the
    baseline (unpeeled, so the spine stays whole), then the surviving
    uniformly generated sets are counted. *)
val compute :
  ?pipeline:Transform.Pipeline.options -> num_memories:int -> Ast.kernel -> t

(** All divisor-factor vectors over the eligible loops with the given
    product, as full spine vectors. *)
val vectors_with_product :
  Design.context -> t -> int -> (string * int) list list

(** The saturation set Sat. *)
val sat_set : Design.context -> t -> (string * int) list list

(** Sat_i: the whole factor [Psat] on one loop, when its trip count
    allows. *)
val sat_i : Design.context -> t -> string -> (string * int) list option
