(** Human-readable exploration reports: the saturation analysis, the
    search trace with verdicts, the selected design's estimates, resource
    and replacement breakdown, its data layout, the baseline comparison,
    and the generated code — rendered as markdown. *)

type t = {
  context : Design.context;
  result : Search.result;
  baseline : Design.point;
}

(** Run the search and the baseline evaluation. *)
val build : Design.context -> t

val speedup : t -> float
val render : Format.formatter -> t -> unit
val to_string : t -> string
