(** Small helpers shared by the design-space modules (and the bench
    harness): timestamps, divisor arithmetic, and the unroll-vector
    enumeration primitives that the search ([Search]) and the sweep
    ([Space]) both build on. The scalar helpers live in the engine
    library; the vector enumerators live here because they read the
    context's precomputed divisor tables. *)

open Ir

(** Positive divisors of [n] in ascending order ([divisors 12] is
    [1; 2; 3; 4; 6; 12]). [n <= 0] has no positive divisors. *)
let divisors = Engine.Util.divisors

(** Wall-clock timestamp in seconds, for the evaluation statistics. *)
let now = Engine.Util.now

(* Divisor lists come from the context's precomputed [spine_divisors]
   tables: these helpers run on every Increase/SelectBetween move of the
   search and on every sweep enumeration, so recomputing
   [Util.divisors] per loop per call is pure waste. *)
let spine_divisors_of (ctx : Design.context) (l : Ast.loop) : int list =
  match List.assoc_opt l.index ctx.Design.spine_divisors with
  | Some ds -> ds
  | None -> divisors (Ast.loop_trip l)

(** All normalized vectors of eligible divisor factors with the exact
    unroll product [product], bounded per loop by [lower]/[upper]
    (missing entries mean factor 1). The search's SelectBetween move. *)
let vectors_between (ctx : Design.context) ~(eligible : string list) ~lower
    ~upper ~product : (string * int) list list =
  let lo i = Option.value ~default:1 (List.assoc_opt i lower) in
  let hi i = Option.value ~default:1 (List.assoc_opt i upper) in
  let rec go loops target =
    match loops with
    | [] -> if target = 1 then [ [] ] else []
    | (l : Ast.loop) :: rest ->
        let cands =
          spine_divisors_of ctx l
          |> List.filter (fun d ->
                 d >= lo l.index && d <= hi l.index && target mod d = 0)
        in
        List.concat_map
          (fun d ->
            List.map (fun tl -> (l.index, d) :: tl) (go rest (target / d)))
          cands
  in
  let loops =
    List.filter
      (fun (l : Ast.loop) -> List.mem l.index eligible)
      ctx.Design.spine
  in
  List.map (Design.normalize_vector ctx) (go loops product)

(** Products reachable by some vector of eligible divisor factors, each
    loop's factor bounded by its [upper] entry (missing means 1). *)
let achievable_products (ctx : Design.context) ~(eligible : string list)
    ~upper : int list =
  let rec go loops acc =
    match loops with
    | [] -> acc
    | (l : Ast.loop) :: rest ->
        if not (List.mem l.index eligible) then go rest acc
        else begin
          let cap = Option.value ~default:1 (List.assoc_opt l.index upper) in
          let ds = List.filter (fun d -> d <= cap) (spine_divisors_of ctx l) in
          go rest
            (List.sort_uniq compare
               (List.concat_map (fun p -> List.map (fun d -> p * d) ds) acc))
        end
  in
  go ctx.Design.spine [ 1 ]

(** All divisor vectors over the eligible loops whose unroll product is
    at most [max_product]; ineligible spine loops are pinned to factor 1.
    The product bound is enforced *during* the recursion — factors are
    all >= 1, so a prefix already over the bound cannot be completed —
    which keeps deep nests from materializing the full cross-product
    first. The enumeration is accumulator-style: each completed vector
    is consed exactly once and the whole list reversed at the end; the
    output order is the same lexicographic (ascending-divisor) order as
    a nested [concat_map]. *)
let divisor_vectors ?(max_product = max_int) (ctx : Design.context)
    ~(eligible : string list) : (string * int) list list =
  let rec go loops divs budget prefix acc =
    match (loops, divs) with
    | [], _ -> List.rev prefix :: acc
    | (l : Ast.loop) :: rest, (_, ds) :: rest_divs ->
        if List.mem l.index eligible then
          List.fold_left
            (fun acc d ->
              if d > budget then acc
              else go rest rest_divs (budget / d) ((l.index, d) :: prefix) acc)
            acc ds
        else go rest rest_divs budget ((l.index, 1) :: prefix) acc
    | _ :: _, [] ->
        invalid_arg "divisor_vectors: spine and spine_divisors disagree"
  in
  List.rev (go ctx.Design.spine ctx.Design.spine_divisors max_product [] [])
