(** Small helpers shared by the design-space modules (and the bench
    harness). The implementations live in the engine library now; these
    aliases keep the historical [Dse.Util] call sites working. *)

(** Positive divisors of [n] in ascending order ([divisors 12] is
    [1; 2; 3; 4; 6; 12]). [n <= 0] has no positive divisors. *)
let divisors = Engine.Util.divisors

(** Wall-clock timestamp in seconds, for the evaluation statistics. *)
let now = Engine.Util.now
