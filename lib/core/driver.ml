(** The search-specialized session driver: {!Engine.run_many} with the
    Figure-2 exploration plugged in as the per-kernel work.

    One call explores a batch of kernels over one shared tri-schedule
    memo (cross-kernel fingerprint hits), one worker-domain pool, and —
    when [cache_dir] is given — one persistent store, so a second run
    over the same kernels performs zero full syntheses while selecting
    bit-identical designs. *)

type outcome = {
  task : Engine.task;
  search : Search.result;
  baseline : Design.point;  (** the no-unrolling design ([ubase]) *)
  ctx : Design.context;  (** post-run context (store, stats, capacity) *)
  loaded_points : int;  (** points warm-loaded from the persistent store *)
  stats : Design.stats;  (** this kernel's counters, baseline included *)
  wall_seconds : float;
}

type summary = {
  outcomes : outcome list;
  total : Design.stats;  (** sum over all kernels *)
  loaded_memo_shapes : int;
      (** tri-schedules warm-loaded from the persistent store *)
  sched_memo_shapes : int;
      (** distinct block shapes in the shared memo after the session *)
  config : string;  (** the persistence configuration string *)
  saved_to : string option;  (** cache directory written, if any *)
}

let speedup (o : outcome) : float =
  float_of_int (Design.cycles o.baseline)
  /. float_of_int (max 1 (Design.cycles o.search.Search.selected))

(** Explore each kernel with the Figure-2 search (plus the [ubase]
    baseline evaluation the drivers report speedup against). See
    {!Engine.run_many} for [cache_dir]/[cold]/[pool]/[jobs]; the sweep
    behind any reporting the caller does afterwards can reuse the
    returned contexts' stores. *)
let run_many ?cache_dir ?cold ?pipeline ?profile ?verify ?incremental
    ?capacity ?backend ?pool ?jobs ?search_config (tasks : Engine.task list) :
    summary =
  let summary =
    Engine.run_many ?cache_dir ?cold ?pipeline ?profile ?verify ?incremental
      ?capacity ?backend ?pool ?jobs
      ~explore:(fun ~env ~store ~pool:_ ->
        let ctx = Design.of_env ?backend ~store env in
        let search = Search.run ?config:search_config ctx in
        let baseline = Design.evaluate ctx (Design.ubase ctx) in
        (ctx, search, baseline))
      tasks
  in
  let outcomes =
    List.map
      (fun (o : _ Engine.outcome) ->
        let ctx, search, baseline = o.Engine.result in
        {
          task = o.Engine.task;
          search;
          baseline;
          ctx;
          loaded_points = o.Engine.loaded_points;
          stats = o.Engine.stats;
          wall_seconds = o.Engine.wall_seconds;
        })
      summary.Engine.outcomes
  in
  {
    outcomes;
    total = summary.Engine.total;
    loaded_memo_shapes = summary.Engine.loaded_memo_shapes;
    sched_memo_shapes = Hls.Schedule.memo_size summary.Engine.sched_memo;
    config = summary.Engine.config;
    saved_to = summary.Engine.saved_to;
  }
