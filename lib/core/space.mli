(** The full design space, used as the evaluation oracle (Section 6.3):
    the paper plots balance, cycles and area for every unroll-factor
    combination and reports that the search visits only ~0.3% of the
    space while landing near the best design.

    The space size follows the paper's accounting — all integer unroll
    factors for each explorable loop — while the exhaustive sweep
    evaluates the divisor sub-lattice, which contains every distinct
    generated design. The sweep runs on several OCaml 5 domains (see
    [jobs]) with per-domain forks of the evaluation cache merged back on
    join; its result order is deterministic and independent of [jobs]. *)

type sweep_point = { vector : (string * int) list; point : Design.point }

type t = {
  points : sweep_point list;  (** the divisor lattice, evaluated *)
  pruned : int;  (** lattice points skipped on tier-1 lower bounds *)
  total_designs : int;  (** paper-style size: product of trip counts *)
}

(** All divisor vectors over the explorable loops with unroll product at
    most [max_product] (default unbounded). The bound is enforced during
    enumeration, so deep nests never materialize the full cross-product. *)
val divisor_vectors :
  ?max_product:int ->
  Design.context ->
  eligible:string list ->
  (string * int) list list

(** Number of domains a sweep uses when [jobs] is not given: one per
    recommended domain minus the joining domain, capped at 8. *)
val default_jobs : unit -> int

(** Evaluate the whole lattice. [eligible] defaults to the saturation
    analysis's loops; [max_product] skips points with larger unroll
    products; [jobs] is the number of evaluating domains ([jobs <= 1]
    forces the sequential path; the default is {!default_jobs}).

    [prune] (default [false]) switches the sweep to two-tier: tier-1
    lower bounds ({!Design.quick}) are computed for the whole lattice
    first, points are visited in ascending lower-bound order, and a
    point is skipped without synthesis when its bounds prove it cannot
    fit the device or cannot come within [prune_slack] (default 0.05,
    matching {!smallest_comparable}) of the best fitting design found
    so far. Admissible: {!best_fitting} and {!smallest_comparable} (at
    slacks up to [prune_slack]) select the same designs as the
    exhaustive sweep; only [points] shrinks — skipped points are
    counted in [pruned] and in [Design.stats.pruned]. With [jobs > 1]
    the pruned *set* may vary between runs (domain timing decides
    which points see the incumbent early), the selections never do.
    When tier 1 does not apply (tiling pipelines) the sweep silently
    falls back to exhaustive evaluation.

    [pool] runs the workers on a shared {!Engine.Pool} instead of
    spawning fresh domains — the multi-kernel session passes its pool so
    the domain-spawn cost is paid once per session, not once per sweep.
    With a pool, [jobs] defaults to the pool's size. *)
val sweep :
  ?eligible:string list ->
  ?max_product:int ->
  ?prune:bool ->
  ?prune_slack:float ->
  ?jobs:int ->
  ?pool:Engine.Pool.t ->
  Design.context ->
  t

(** Best-performing design that fits the device. *)
val best_fitting : Design.context -> t -> sweep_point option

(** Smallest design within [slack] of the best fitting design's
    performance — the paper's third optimization criterion. *)
val smallest_comparable :
  ?slack:float -> Design.context -> t -> sweep_point option

(** Fraction of the paper-style space a search visited. *)
val fraction_searched : t -> visited:int -> float

(** {2 The joint configuration space}

    Design points promoted from unroll vectors to full transform
    configurations ({!Design.config}): unroll vector x tile option x
    scalar-replacement/peel/LICM toggles, searched jointly. *)

type joint_point = { config : Design.config; point : Design.point }

type joint = {
  points : joint_point list;
      (** the evaluated configurations, in enumeration order *)
  space_size : int;
      (** joint lattice size before any pruning: unroll vectors x tile
          options x toggle combinations *)
  pruned_illegal : int;  (** dropped by the legality pre-pruner *)
  pruned_redundant : int;
      (** dropped as another spelling of a configuration already
          enumerated (canonicalization + dedupe) *)
  pruned_bound : int;  (** skipped on tier-1 lower bounds *)
  truncated : bool;  (** the evaluation [budget] ran out *)
  total_designs : int;
      (** paper-style accounting over the joint space: all integer
          unroll factors x tile options x toggles *)
}

(** [[4; 8; 16]] — the default tile-size requests of the joint sweep. *)
val default_tile_candidates : int list

(** The tile options the joint sweep enumerates over the context's spine
    for the requested sizes: [None], plus each size clamped to the
    divisor the strip-mine would use on every loop it properly splits. *)
val joint_tile_options :
  Design.context -> candidates:int list -> (string * int) option list

(** Sweep the joint configuration space. Enumeration runs the full
    product (counted in [space_size]); each configuration then passes
    the legality pre-pruner ({!Check.Legality.config_verdict}, one
    shared flow graph of the source — illegal and redundant
    configurations are dropped before any transform runs) and canonical
    dedupe. Below [exhaustive_below] surviving configurations (default
    64) every survivor is evaluated in enumeration order; above it the
    sweep turns best-first — ascending tier-1 cycle bounds, skipping
    configurations whose bounds prove they cannot beat the incumbent or
    fit the device (admissible: the selection matches the exhaustive
    sweep's). [budget] caps the number of full evaluations ([truncated]
    reports hitting it). Sequential; counters land in the context's
    [joint_*] stats. *)
val sweep_joint :
  ?eligible:string list ->
  ?max_product:int ->
  ?tile_candidates:int list ->
  ?exhaustive_below:int ->
  ?budget:int ->
  Design.context ->
  joint

(** Best configuration of the joint space: fewest cycles among the
    fitting points, ties to the smaller design, then to enumeration
    order (which puts the unroll-only sub-space first). *)
val joint_best : Design.context -> joint -> joint_point option
