(** The full design space, used as the evaluation oracle (Section 6.3):
    the paper plots balance, cycles and area for *every* unroll-factor
    combination and reports that the search visits only ~0.3% of the
    space while landing near the best design.

    The space size follows the paper's accounting — all integer unroll
    factors for each explorable loop (trip_1 * trip_2 * ...) — while the
    exhaustive sweep evaluates the divisor sub-lattice, which contains
    every distinct generated design (a non-divisor factor leaves an
    epilogue that only degrades the design).

    The sweep can run on several OCaml 5 domains ([jobs]): the vector
    list is chunked over a work queue, each domain evaluates against a
    {!Design.fork} of the context, and the forks' caches and counters
    are merged back on join. The result order is deterministic and
    identical to the sequential sweep regardless of [jobs].

    With [~prune:true] the sweep runs two-tier: tier-1 lower bounds
    ({!Design.quick}) are computed for the whole lattice first, points
    are visited in ascending lower-bound order, and a point is skipped —
    never generated, never estimated — when its bounds prove it cannot
    fit the device or cannot come within [prune_slack] of the best
    fitting design seen so far. Pruning is admissible: skipped points
    can be neither {!best_fitting} nor {!smallest_comparable} (at the
    default matching slack), so both selections are unchanged; only the
    set of evaluated points shrinks. *)

open Ir

type sweep_point = {
  vector : (string * int) list;
  point : Design.point;
}

type t = {
  points : sweep_point list;  (** the divisor lattice, evaluated *)
  pruned : int;  (** lattice points skipped on tier-1 lower bounds *)
  total_designs : int;  (** paper-style space size: product of trip counts *)
}

(** All divisor vectors over the explorable loops whose unroll product
    is at most [max_product] — {!Util.divisor_vectors}, re-exported
    because the sweep's callers have always found it here. [eligible]
    defaults to the loops the saturation analysis considers (those that
    carry memory accesses); MM's innermost loop is excluded exactly as
    in the paper. *)
let divisor_vectors ?max_product (ctx : Design.context)
    ~(eligible : string list) : (string * int) list list =
  Util.divisor_vectors ?max_product ctx ~eligible

(* Run one worker thunk per fork: on the caller's own spawned domains,
   or on a shared {!Engine.Pool} when the session provides one (the
   multi-kernel driver runs many sweeps; reusing its pool keeps the
   domain-spawn cost per session instead of per sweep). Either way the
   call returns only when every worker has drained the cursor. *)
let run_workers ?pool (workers : (unit -> unit) array) =
  match pool with
  | Some p -> Engine.Pool.run p (Array.to_list workers)
  | None ->
      let domains = Array.map Domain.spawn workers in
      Array.iter Domain.join domains

(* Evaluate [vectors] on [jobs] workers. Work is handed out in chunks
   from an atomic cursor; each worker writes its results at the vectors'
   original indices, so the merged order matches the sequential order.
   Every worker gets a {!Design.fork} seeded with the current cache, and
   the forks are absorbed back after the join. *)
let evaluate_parallel ?pool ~jobs (ctx : Design.context) (vectors : (string * int) list array) :
    sweep_point array =
  let n = Array.length vectors in
  let results : sweep_point option array = Array.make n None in
  let cursor = Atomic.make 0 in
  let chunk = max 1 (n / (jobs * 8)) in
  let forks = Array.init jobs (fun _ -> Design.fork ctx) in
  let worker (fork : Design.context) () =
    let rec loop () =
      let start = Atomic.fetch_and_add cursor chunk in
      if start < n then begin
        for i = start to min (start + chunk) n - 1 do
          let v = vectors.(i) in
          results.(i) <- Some { vector = v; point = Design.evaluate fork v }
        done;
        loop ()
      end
    in
    loop ()
  in
  run_workers ?pool (Array.map worker forks);
  Array.iter (fun fork -> Design.absorb ~into:ctx fork) forks;
  Array.map (function Some sp -> sp | None -> assert false) results

(** Number of domains a sweep uses when [jobs] is not given. *)
let default_jobs () = max 1 (min 8 (Domain.recommended_domain_count () - 1))

(* Two-tier sweep over [vecs] whose tier-1 bounds [q] are already known.
   Points are visited in ascending lower-bound order so cheap designs
   establish the incumbent early; results land at their original lattice
   indices, so the surviving points come out in lattice order. The
   incumbent only ever holds the true cycle count of a fitting evaluated
   point, so a skip is justified no matter when it is read — with
   several domains the *set* of pruned points may vary between runs
   (a slower domain may evaluate a point a faster run would skip), but
   the selected designs never do. *)
let evaluate_pruned ?pool ~jobs ~prune_slack (ctx : Design.context)
    (vecs : (string * int) list array) (q : Hls.Quick.t array) :
    sweep_point option array =
  let n = Array.length vecs in
  let limit inc =
    if inc = max_int then max_int
    else int_of_float (Float.ceil (float_of_int inc *. (1.0 +. prune_slack)))
  in
  let results : sweep_point option array = Array.make n None in
  if jobs <= 1 || n < 2 * jobs then begin
    (* Sequentially, visit in *reverse* lattice order, deferring points
       the gate would skip. Reversed, the high-unroll (fast) designs
       come first, so the incumbent tightens immediately and the slow
       low-unroll tail is gated — the same prunes the bound-ascending
       permutation finds. Unlike that permutation, a reversed lattice
       walk keeps consecutive points structurally adjacent (runs of
       shared outer-unroll prefixes, shared schedule prefixes), which
       is the locality the incremental caches feed on. Deferred points
       are re-checked against the final incumbent, so late tightening
       loses no prunes. *)
    let incumbent = ref max_int in
    let visit i =
      let p = Design.evaluate ctx vecs.(i) in
      results.(i) <- Some { vector = vecs.(i); point = p };
      if Design.space p <= ctx.Design.capacity then
        incumbent := min !incumbent (Design.cycles p)
    in
    let deferred = ref [] in
    for i = n - 1 downto 0 do
      let qi = q.(i) in
      if qi.Hls.Quick.slices_lb > ctx.Design.capacity then
        Design.note_pruned ctx
      else if qi.Hls.Quick.cycles_lb > limit !incumbent then
        deferred := i :: !deferred
      else visit i
    done;
    List.iter
      (fun i ->
        if q.(i).Hls.Quick.cycles_lb > limit !incumbent then
          Design.note_pruned ctx
        else visit i)
      !deferred
  end
  else begin
    (* With several domains the forks do not share scratch caches, so
       the bound-ascending order keeps its original value: it tightens
       the shared incumbent as early as possible. *)
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        compare (q.(a).Hls.Quick.cycles_lb, a) (q.(b).Hls.Quick.cycles_lb, b))
      order;
    let incumbent = Atomic.make max_int in
    let rec lower_incumbent c =
      let cur = Atomic.get incumbent in
      if c < cur && not (Atomic.compare_and_set incumbent cur c) then
        lower_incumbent c
    in
    let cursor = Atomic.make 0 in
    let chunk = max 1 (n / (jobs * 8)) in
    let forks = Array.init jobs (fun _ -> Design.fork ctx) in
    let worker (fork : Design.context) () =
      let rec loop () =
        let start = Atomic.fetch_and_add cursor chunk in
        if start < n then begin
          for k = start to min (start + chunk) n - 1 do
            let i = order.(k) in
            let qi = q.(i) in
            if
              qi.Hls.Quick.slices_lb > ctx.Design.capacity
              || qi.Hls.Quick.cycles_lb > limit (Atomic.get incumbent)
            then Design.note_pruned fork
            else begin
              let p = Design.evaluate fork vecs.(i) in
              results.(i) <- Some { vector = vecs.(i); point = p };
              if Design.space p <= ctx.Design.capacity then
                lower_incumbent (Design.cycles p)
            end
          done;
          loop ()
        end
      in
      loop ()
    in
    run_workers ?pool (Array.map worker forks);
    Array.iter (fun fork -> Design.absorb ~into:ctx fork) forks
  end;
  results

let sweep ?eligible ?(max_product = max_int) ?(prune = false)
    ?(prune_slack = 0.05) ?jobs ?pool (ctx : Design.context) : t =
  let sat =
    lazy
      (Saturation.compute ~pipeline:ctx.Design.pipeline
         ~num_memories:ctx.Design.profile.Hls.Estimate.device.Hls.Device.num_memories
         ctx.Design.source)
  in
  let eligible =
    match eligible with
    | Some e -> e
    | None -> (Lazy.force sat).Saturation.eligible
  in
  let vectors = divisor_vectors ~max_product ctx ~eligible in
  let jobs =
    match (jobs, pool) with
    | Some j, _ -> max 1 j
    | None, Some p -> Engine.Pool.size p
    | None, None -> default_jobs ()
  in
  (* Tier-1 bounds for the whole lattice; unavailable (tiling) means the
     sweep silently falls back to exhaustive evaluation. *)
  let quicks =
    if not prune then None
    else
      let qs = List.map (fun v -> Design.quick ctx v) vectors in
      if List.exists Option.is_none qs then None
      else Some (Array.of_list (List.map Option.get qs))
  in
  (* Pruning provably cannot skip a point when every lower bound fits
     the device and lies within the slack band of the smallest bound:
     the incumbent is the true cycle count of some fitting point, which
     is at least the smallest bound, so the gate never fires. In that
     case — and on lattices too small to amortize the sort — the
     two-tier machinery only costs: the bound-ascending visit order
     breaks the locality the incremental caches feed on (consecutive
     lattice points share schedule-prefix and outer-unroll structure).
     Fall back to the plain lattice-order sweep; the result is the same
     point set either way. *)
  let gate_worthwhile (q : Hls.Quick.t array) =
    Array.length q >= 16
    && (Array.exists
          (fun (qi : Hls.Quick.t) ->
            qi.Hls.Quick.slices_lb > ctx.Design.capacity)
          q
       ||
       let min_lb =
         Array.fold_left
           (fun m (qi : Hls.Quick.t) -> min m qi.Hls.Quick.cycles_lb)
           max_int q
       in
       let band =
         if min_lb = max_int then max_int
         else
           int_of_float
             (Float.ceil (float_of_int min_lb *. (1.0 +. prune_slack)))
       in
       Array.exists
         (fun (qi : Hls.Quick.t) -> qi.Hls.Quick.cycles_lb > band)
         q)
  in
  let points, pruned =
    match quicks with
    | Some q when gate_worthwhile q ->
        let vecs = Array.of_list vectors in
        let results = evaluate_pruned ?pool ~jobs ~prune_slack ctx vecs q in
        let pts = List.filter_map (fun x -> x) (Array.to_list results) in
        (pts, Array.length vecs - List.length pts)
    | _ ->
        let pts =
          if jobs <= 1 || List.length vectors < 2 * jobs then
            List.map (fun v -> { vector = v; point = Design.evaluate ctx v }) vectors
          else
            Array.to_list
              (evaluate_parallel ?pool ~jobs ctx (Array.of_list vectors))
        in
        (pts, 0)
  in
  let total_designs =
    List.fold_left
      (fun acc (l : Ast.loop) ->
        if List.mem l.index eligible then acc * Ast.loop_trip l else acc)
      1 ctx.Design.spine
  in
  { points; pruned; total_designs }

(** Best-performing design in the space that fits the device. *)
let best_fitting (ctx : Design.context) (t : t) : sweep_point option =
  let fitting =
    List.filter (fun sp -> Design.space sp.point <= ctx.Design.capacity) t.points
  in
  match fitting with
  | [] -> None
  | p :: rest ->
      Some
        (List.fold_left
           (fun best sp ->
             if Design.cycles sp.point < Design.cycles best.point then sp else best)
           p rest)

(** Smallest design whose performance is within [slack] (e.g. 0.05) of
    the best fitting design — the paper's third optimization criterion. *)
let smallest_comparable ?(slack = 0.05) (ctx : Design.context) (t : t) :
    sweep_point option =
  match best_fitting ctx t with
  | None -> None
  | Some best ->
      let limit =
        int_of_float
          (Float.ceil (float_of_int (Design.cycles best.point) *. (1.0 +. slack)))
      in
      let comparable =
        List.filter
          (fun sp ->
            Design.space sp.point <= ctx.Design.capacity
            && Design.cycles sp.point <= limit)
          t.points
      in
      List.fold_left
        (fun acc sp ->
          match acc with
          | None -> Some sp
          | Some cur ->
              if Design.space sp.point < Design.space cur.point then Some sp
              else acc)
        None comparable

(** Fraction of the paper-style design space a search visited. *)
let fraction_searched (t : t) ~(visited : int) : float =
  float_of_int visited /. float_of_int (max 1 t.total_designs)

(* ------------------------------------------------------------------ *)
(* The joint configuration space *)

type joint_point = {
  config : Design.config;
  point : Design.point;
}

type joint = {
  points : joint_point list;
      (** the evaluated configurations, in enumeration order *)
  space_size : int;
      (** joint lattice size before any pruning: unroll vectors x tile
          options x toggle combinations *)
  pruned_illegal : int;  (** dropped by the legality pre-pruner *)
  pruned_redundant : int;
      (** dropped as another spelling of a configuration already
          enumerated (canonicalization + dedupe) *)
  pruned_bound : int;  (** skipped on tier-1 lower bounds *)
  truncated : bool;  (** the evaluation [budget] ran out *)
  total_designs : int;
      (** paper-style accounting over the joint space: all integer
          unroll factors x tile options x toggles *)
}

let default_tile_candidates = [ 4; 8; 16 ]

(** The tile options the joint sweep enumerates: no tile, plus each
    requested size clamped to the divisor the strip-mine would use, on
    every spine loop it properly splits. *)
let joint_tile_options (ctx : Design.context) ~(candidates : int list) :
    (string * int) option list =
  let tiles =
    List.concat_map
      (fun (l : Ast.loop) ->
        let trip = Ast.loop_trip l in
        let divs = Util.spine_divisors_of ctx l in
        List.filter_map
          (fun t ->
            let t = max 1 (min t trip) in
            let d =
              List.fold_left (fun best d -> if d <= t then d else best) 1 divs
            in
            if d <= 1 || d >= trip then None else Some (l.Ast.index, d))
          candidates)
      ctx.Design.spine
    |> List.sort_uniq compare
  in
  None :: List.map (fun x -> Some x) tiles

(* All eight toggle combinations, the base pipeline's first so the
   unroll-only sub-space is enumerated (and, small spaces, evaluated)
   before any variation — ties in the selection then resolve toward the
   design the vector-only sweep would pick. *)
let toggle_combos (ctx : Design.context) : (bool * bool * bool) list =
  let b = Design.base_config ctx [] in
  let base = (b.Design.scalar_replace, b.Design.peel, b.Design.licm) in
  let all =
    List.concat_map
      (fun sr ->
        List.concat_map
          (fun peel -> List.map (fun licm -> (sr, peel, licm)) [ true; false ])
          [ true; false ])
      [ true; false ]
  in
  base :: List.filter (fun t -> t <> base) all

let sweep_joint ?eligible ?(max_product = max_int)
    ?(tile_candidates = default_tile_candidates) ?(exhaustive_below = 64)
    ?budget (ctx : Design.context) : joint =
  let eligible =
    match eligible with
    | Some e -> e
    | None ->
        (Saturation.compute ~pipeline:ctx.Design.pipeline
           ~num_memories:
             ctx.Design.profile.Hls.Estimate.device.Hls.Device.num_memories
           ctx.Design.source)
          .Saturation.eligible
  in
  let vectors = divisor_vectors ~max_product ctx ~eligible in
  let tiles = joint_tile_options ctx ~candidates:tile_candidates in
  let toggles = toggle_combos ctx in
  (* One flow graph of the source serves every legality verdict. *)
  let graph = Analysis.Flowgraph.build ctx.Design.source in
  let enumerated = ref 0 and ill = ref 0 and red = ref 0 in
  let seen : (Design.config, unit) Hashtbl.t = Hashtbl.create 64 in
  let survivors = ref [] in
  List.iter
    (fun (sr, peel, licm) ->
      List.iter
        (fun tile ->
          List.iter
            (fun vector ->
              incr enumerated;
              let c =
                {
                  Design.vector;
                  tile;
                  scalar_replace = sr;
                  peel;
                  licm;
                }
              in
              match
                Check.Legality.config_verdict ~graph ctx.Design.source c
              with
              | Check.Legality.Config_illegal _ -> incr ill
              | Check.Legality.Config_redundant _ ->
                  (* Its canonical spelling is elsewhere in the cube. *)
                  incr red
              | Check.Legality.Config_legal ->
                  let key = Design.normalize_config ctx c in
                  if Hashtbl.mem seen key then incr red
                  else begin
                    Hashtbl.replace seen key ();
                    survivors := key :: !survivors
                  end)
            vectors)
        tiles)
    toggles;
  let survivors = Array.of_list (List.rev !survivors) in
  let n = Array.length survivors in
  let bounds = Array.map (fun c -> Design.quick_config ctx c) survivors in
  (* Below the threshold, evaluate every legal configuration in
     enumeration order (ascending-bound visiting buys nothing a cache
     this small cannot absorb, and the full point set is the oracle the
     tests want). Above it, best-first: visit in ascending cycle lower
     bound so the incumbent tightens immediately, and skip every
     configuration whose bound already proves it cannot beat the
     incumbent or fit the device — admissible, so the selection is the
     one the exhaustive sweep would make. *)
  let exhaustive = n <= exhaustive_below in
  let order = Array.init n (fun i -> i) in
  if not exhaustive then begin
    let lb i =
      match bounds.(i) with
      | Some q -> q.Hls.Quick.cycles_lb
      | None -> 0
    in
    Array.sort (fun a b -> compare (lb a, a) (lb b, b)) order
  end;
  let results : joint_point option array = Array.make n None in
  let incumbent = ref max_int in
  let bound_pruned = ref 0 and evaluated = ref 0 in
  let truncated = ref false in
  Array.iter
    (fun i ->
      let c = survivors.(i) in
      let skip =
        match bounds.(i) with
        | None -> false
        | Some q ->
            q.Hls.Quick.slices_lb > ctx.Design.capacity
            || ((not exhaustive) && q.Hls.Quick.cycles_lb > !incumbent)
      in
      if skip then begin
        incr bound_pruned;
        Design.note_pruned ctx
      end
      else
        match budget with
        | Some b when !evaluated >= b -> truncated := true
        | _ ->
            incr evaluated;
            let p = Design.evaluate_config ctx c in
            results.(i) <- Some { config = c; point = p };
            if Design.space p <= ctx.Design.capacity then
              incumbent := min !incumbent (Design.cycles p))
    order;
  let st = ctx.Design.stats in
  st.Design.joint_configs <- st.Design.joint_configs + !enumerated;
  st.Design.joint_pruned_illegal <- st.Design.joint_pruned_illegal + !ill;
  st.Design.joint_pruned_redundant <- st.Design.joint_pruned_redundant + !red;
  st.Design.joint_pruned_bound <- st.Design.joint_pruned_bound + !bound_pruned;
  let total_designs =
    List.fold_left
      (fun acc (l : Ast.loop) ->
        if List.mem l.index eligible then acc * Ast.loop_trip l else acc)
      1 ctx.Design.spine
    * List.length tiles * List.length toggles
  in
  {
    points = List.filter_map (fun x -> x) (Array.to_list results);
    space_size = !enumerated;
    pruned_illegal = !ill;
    pruned_redundant = !red;
    pruned_bound = !bound_pruned;
    truncated = !truncated;
    total_designs;
  }

(** Best configuration of the joint space: fewest cycles among the
    fitting points, ties to the smaller design, then to enumeration
    order (which puts the unroll-only sub-space first). *)
let joint_best (ctx : Design.context) (j : joint) : joint_point option =
  List.fold_left
    (fun best jp ->
      if Design.space jp.point > ctx.Design.capacity then best
      else
        match best with
        | None -> Some jp
        | Some b ->
            let c = Design.cycles jp.point and cb = Design.cycles b.point in
            if c < cb || (c = cb && Design.space jp.point < Design.space b.point)
            then Some jp
            else best)
    None j.points
