(** The full design space, used as the evaluation oracle (Section 6.3):
    the paper plots balance, cycles and area for *every* unroll-factor
    combination and reports that the search visits only ~0.3% of the
    space while landing near the best design.

    The space size follows the paper's accounting — all integer unroll
    factors for each explorable loop (trip_1 * trip_2 * ...) — while the
    exhaustive sweep evaluates the divisor sub-lattice, which contains
    every distinct generated design (a non-divisor factor leaves an
    epilogue that only degrades the design). *)

open Ir

type sweep_point = {
  vector : (string * int) list;
  point : Design.point;
}

type t = {
  points : sweep_point list;  (** the divisor lattice, evaluated *)
  total_designs : int;  (** paper-style space size: product of trip counts *)
}

(** All divisor vectors over the explorable loops. [eligible] defaults to
    the loops the saturation analysis considers (those that carry memory
    accesses); MM's innermost loop is excluded exactly as in the paper. *)
let divisor_vectors (ctx : Design.context) ~(eligible : string list) :
    (string * int) list list =
  let rec go = function
    | [] -> [ [] ]
    | (l : Ast.loop) :: rest ->
        let tails = go rest in
        let trip = Ast.loop_trip l in
        let ds =
          if List.mem l.index eligible then
            List.filter (fun d -> trip mod d = 0) (List.init trip (fun i -> i + 1))
          else [ 1 ]
        in
        List.concat_map (fun d -> List.map (fun tl -> (l.index, d) :: tl) tails) ds
  in
  go ctx.Design.spine

let sweep ?eligible ?(max_product = max_int) (ctx : Design.context) : t =
  let sat =
    lazy
      (Saturation.compute ~pipeline:ctx.Design.pipeline
         ~num_memories:ctx.Design.profile.Hls.Estimate.device.Hls.Device.num_memories
         ctx.Design.source)
  in
  let eligible =
    match eligible with
    | Some e -> e
    | None -> (Lazy.force sat).Saturation.eligible
  in
  let vectors =
    List.filter
      (fun v -> List.fold_left (fun acc (_, u) -> acc * u) 1 v <= max_product)
      (divisor_vectors ctx ~eligible)
  in
  let points =
    List.map (fun v -> { vector = v; point = Design.evaluate ctx v }) vectors
  in
  let total_designs =
    List.fold_left
      (fun acc (l : Ast.loop) ->
        if List.mem l.index eligible then acc * Ast.loop_trip l else acc)
      1 ctx.Design.spine
  in
  { points; total_designs }

(** Best-performing design in the space that fits the device. *)
let best_fitting (ctx : Design.context) (t : t) : sweep_point option =
  let fitting =
    List.filter (fun sp -> Design.space sp.point <= ctx.Design.capacity) t.points
  in
  match fitting with
  | [] -> None
  | p :: rest ->
      Some
        (List.fold_left
           (fun best sp ->
             if Design.cycles sp.point < Design.cycles best.point then sp else best)
           p rest)

(** Smallest design whose performance is within [slack] (e.g. 0.05) of
    the best fitting design — the paper's third optimization criterion. *)
let smallest_comparable ?(slack = 0.05) (ctx : Design.context) (t : t) :
    sweep_point option =
  match best_fitting ctx t with
  | None -> None
  | Some best ->
      let limit =
        int_of_float
          (Float.ceil (float_of_int (Design.cycles best.point) *. (1.0 +. slack)))
      in
      let comparable =
        List.filter
          (fun sp ->
            Design.space sp.point <= ctx.Design.capacity
            && Design.cycles sp.point <= limit)
          t.points
      in
      List.fold_left
        (fun acc sp ->
          match acc with
          | None -> Some sp
          | Some cur ->
              if Design.space sp.point < Design.space cur.point then Some sp
              else acc)
        None comparable

(** Fraction of the paper-style design space a search visited. *)
let fraction_searched (t : t) ~(visited : int) : float =
  float_of_int visited /. float_of_int (max 1 t.total_designs)
