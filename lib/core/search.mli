(** The design space exploration algorithm — Figure 2 of the paper.

    Starting from a saturation point chosen with dependence information
    (Section 5.3), the search walks the unroll-factor space guided by the
    balance metric's monotonicity (Observation 3): while compute bound it
    doubles the unroll product; once a memory-bound or over-capacity
    design appears it bisects between the last fitting compute-bound
    design and the current one, on products that are multiples of the
    saturation product. Space-constrained initial designs fall back to
    the largest design that fits ([FindLargestFit]). *)

type config = {
  balance_tolerance : float;
      (** |B - 1| within this counts as balanced (the paper tests B = 1
          exactly, which floating-point estimates never hit) *)
  max_steps : int;  (** hard cap on evaluated designs *)
}

val default_config : config

type step = {
  point : Design.point;
  verdict : string;
      (** "compute-bound", "memory-bound", "balanced", "over-capacity",
          "fit-probe" or "selected" *)
}

type result = {
  selected : Design.point;
  steps : step list;  (** every synthesized design, in search order *)
  sat : Saturation.t;
  uinit : (string * int) list;
  stats : Design.stats;
      (** evaluation counters for this run only: synthesis runs, cache
          hits, transform/estimate wall time. On a fresh context,
          [stats.evaluations] equals {!designs_evaluated}. *)
}

(** Per-loop desirability for unrolling: infinite for loops carrying no
    dependence, otherwise the minimum carried distance. *)
val loop_weights : Ir.Ast.kernel -> (string * float) list

(** Initial point: Sat_i of a dependence-free loop when one exists,
    otherwise the saturation vector weighted by carried distances. *)
val choose_uinit : Design.context -> Saturation.t -> (string * int) list

val run : ?config:config -> Design.context -> result

(** Distinct designs synthesized during the search. *)
val designs_evaluated : result -> int
