(** A design point: one unroll-factor vector, the code it generates, and
    the behavioral synthesis estimates for it. Evaluating a point is the
    [Generate; Synthesize; Balance] sequence of the paper's Figure 2.

    Evaluation is memoized: every context carries a cache keyed on the
    normalized unroll vector, shared by the search, the exhaustive sweep,
    and the drivers, plus counters ([stats]) that record how many designs
    were actually synthesized versus served from the cache. *)

open Ir

type point = {
  vector : (string * int) list;  (** unroll factor per spine loop *)
  kernel : Ast.kernel;  (** transformed code *)
  estimate : Hls.Estimate.t;
  report : Transform.Scalar_replace.report;
}

type stats = {
  mutable evaluations : int;
      (** cache misses: full [Generate; Synthesize] runs *)
  mutable cache_hits : int;
  mutable quick_estimates : int;
      (** tier-1 analytical lower bounds computed ({!quick}) *)
  mutable pruned : int;
      (** full syntheses skipped because a tier-1 lower bound already
          disqualified the point *)
  mutable transform_seconds : float;  (** wall time in the transform pipeline *)
  mutable estimate_seconds : float;  (** wall time in the synthesis estimator *)
  mutable dfg_seconds : float;  (** estimator time building DFGs *)
  mutable schedule_seconds : float;
      (** estimator time in the tri-mode scheduler (memo hits pay only
          the fingerprint) *)
  mutable layout_seconds : float;  (** estimator time in the data layout *)
  mutable sched_memo_hits : int;
      (** blocks whose tri-schedule was served content-addressed from
          the fingerprint memo instead of being scheduled *)
  mutable checked_points : int;
      (** design points whose pipeline run was translation-validated
          ([--verify]) *)
  mutable verify_violations : int;
      (** error-severity validation findings across checked points *)
}

val fresh_stats : unit -> stats

type context = {
  source : Ast.kernel;  (** the input loop nest *)
  profile : Hls.Estimate.profile;
  capacity : int;  (** device slices *)
  spine : Ast.loop list;
  spine_divisors : (string * int list) list;
      (** ascending divisors of each spine loop's trip count *)
  pipeline : Transform.Pipeline.options;
      (** base options; the vector is set per point *)
  cache : ((string * int) list, point) Hashtbl.t;
      (** evaluation memo, keyed on the normalized vector. Updating
          [pipeline] or [profile] with a record update invalidates the
          cached points — build a fresh context with {!context} instead
          (updating [capacity] is fine: it does not enter evaluation). *)
  sched_memo : Hls.Schedule.memo;
      (** content-addressed tri-schedule table keyed on
          {!Hls.Dfg.fingerprint}: each distinct block shape is scheduled
          once per context — across blocks of one point, across lattice
          points, and (via {!fork}/{!absorb}) across sweep domains. The
          memo is exact, so estimates are bit-identical with or without
          it. Like [cache], it is tied to [pipeline]/[profile]. *)
  quick_facts : Hls.Quick.facts option Lazy.t;
      (** tier-1 pre-estimator facts; [None] when the pipeline tiles *)
  verify : bool;
      (** translation-validate every uncached evaluation with
          {!Check.Validate}: the transformed result and every selection
          are bit-identical to an unverified run; error-severity
          findings bump [stats.verify_violations] *)
  stats : stats;
}

val context :
  ?pipeline:Transform.Pipeline.options ->
  ?profile:Hls.Estimate.profile ->
  ?verify:bool ->
  Ast.kernel ->
  context

(** Cover every spine loop and clamp factors to divisors of the trip
    counts — the space the search explores (a non-divisor factor leaves
    an epilogue that defeats scalar replacement). *)
val normalize_vector : context -> (string * int) list -> (string * int) list

val product : (string * int) list -> int

(** Equality of the designs two vectors denote: loops missing from either
    side count as factor 1, so partial and spine-normalized spellings of
    the same design compare equal and differing lengths never raise. *)
val vector_equal : (string * int) list -> (string * int) list -> bool

(** No unrolling — the baseline of the paper's Table 2 (all other
    transformations still apply). *)
val ubase : context -> (string * int) list

(** Full unrolling of every loop. *)
val umax : context -> (string * int) list

(** Generate the code for a vector and estimate it, through the cache:
    vectors are normalized before lookup, so any two spellings of the
    same design share one synthesis run. *)
val evaluate : context -> (string * int) list -> point

(** Like {!evaluate} but bypassing the cache entirely (neither read nor
    written); still counted in [stats]. *)
val evaluate_uncached : context -> (string * int) list -> point

(** Tier 1 of the two-tier engine: admissible lower bounds on the
    point's cycles and slices straight from the source kernel — no
    code generation, no scheduling. The bounds never exceed what
    {!evaluate} would report for the same vector, so callers may skip
    evaluation of points they disqualify without changing any
    selection. [None] when the pre-estimator does not apply (tiling
    pipelines). Counted in [stats.quick_estimates]. *)
val quick : context -> (string * int) list -> Hls.Quick.t option

(** Record that one full synthesis was skipped on tier-1 evidence
    (bumps [stats.pruned]). *)
val note_pruned : context -> unit

(** Number of distinct designs currently memoized. *)
val cache_size : context -> int

(** Number of distinct block shapes whose tri-schedule is memoized. *)
val sched_memo_size : context -> int

val reset_stats : context -> unit

(** Immutable copy of the context's counters (for before/after deltas). *)
val stats_snapshot : context -> stats

val stats_diff : before:stats -> after:stats -> stats

(** A private copy of [ctx] for one domain of a parallel sweep: shares
    the immutable fields, snapshots the current cache, and starts fresh
    counters. Never share one mutable context across domains. *)
val fork : context -> context

(** Merge a fork's cache entries and counters back into [into]. *)
val absorb : into:context -> context -> unit

val balance : point -> float
val space : point -> int
val cycles : point -> int
val fits : context -> point -> bool
val pp_vector : Format.formatter -> (string * int) list -> unit
val pp_point : Format.formatter -> point -> unit
val pp_stats : Format.formatter -> stats -> unit

(** Per-stage wall-time split of the estimator (dfg / schedule / layout
    / other) plus the scheduler-memo hit count — the [--profile] view. *)
val pp_profile : Format.formatter -> stats -> unit
