(** A design point: one unroll-factor vector, the code it generates, and
    the behavioral synthesis estimates for it. Evaluating a point is the
    [Generate; Synthesize; Balance] sequence of the paper's Figure 2.

    This module is a view over the layered engine: a [context] bundles
    an evaluation environment, a pluggable backend
    ({!Engine.Backend.t} — [full], [lowlevel], or either behind the
    analytical tier-1 gate) and a unified store ({!Engine.Store.t} —
    point cache, tri-schedule memo and counters, forkable across sweep
    domains and persistable across runs). Every evaluation in the
    system goes through here into [Engine.Backend.evaluate]. *)

open Ir

type config = Engine.Store.config = {
  vector : (string * int) list;  (** unroll factor per spine loop *)
  tile : (string * int) option;  (** strip-mine this loop to this tile *)
  scalar_replace : bool;
  peel : bool;
  licm : bool;
}

type point = Engine.Store.point = {
  config : config;  (** the normalized configuration this point is *)
  vector : (string * int) list;
      (** [config.vector], kept as a field for vector-only call sites *)
  kernel : Ast.kernel;  (** transformed code *)
  estimate : Hls.Estimate.t;
  report : Transform.Scalar_replace.report;
}

type stats = Engine.Store.stats = {
  mutable evaluations : int;
      (** cache misses: full [Generate; Synthesize] runs *)
  mutable cache_hits : int;
  mutable quick_estimates : int;
      (** tier-1 analytical lower bounds computed ({!quick}) *)
  mutable pruned : int;
      (** full syntheses skipped because a tier-1 lower bound already
          disqualified the point *)
  mutable transform_seconds : float;  (** wall time in the transform pipeline *)
  mutable estimate_seconds : float;  (** wall time in the synthesis estimator *)
  mutable dfg_seconds : float;  (** estimator time building DFGs *)
  mutable schedule_seconds : float;
      (** estimator time in the tri-mode scheduler (memo hits pay only
          the fingerprint) *)
  mutable layout_seconds : float;  (** estimator time in the data layout *)
  mutable sched_memo_hits : int;
      (** blocks whose tri-schedule was served content-addressed from
          the fingerprint memo instead of being scheduled *)
  mutable region_memo_hits : int;
      (** blocks that missed the whole-block memo but restored a
          statement-prefix scheduler snapshot and scheduled only the
          tail *)
  mutable delta_reuses : int;
      (** design points whose transform pipeline reused a cached
          outer-prefix unroll instead of unrolling from the source *)
  mutable checked_points : int;
      (** design points whose pipeline run was translation-validated
          ([--verify]) *)
  mutable verify_violations : int;
      (** error-severity validation findings across checked points *)
  mutable flow_builds : int;
      (** flow graphs the verified path's dataflow checks constructed *)
  mutable flow_solves : int;  (** dataflow fixpoint solves run *)
  mutable flow_seconds : float;
      (** wall time building and solving flow graphs *)
  mutable joint_configs : int;
      (** configurations enumerated by joint sweeps (the joint space
          size before any pruning) *)
  mutable joint_pruned_illegal : int;
      (** joint configurations dropped by the legality pre-pruner *)
  mutable joint_pruned_redundant : int;
      (** joint configurations dropped as duplicates of a canonical
          configuration already enumerated *)
  mutable joint_pruned_bound : int;
      (** joint configurations skipped on tier-1 lower bounds *)
}

val fresh_stats : unit -> stats

type context = {
  source : Ast.kernel;  (** the input loop nest *)
  profile : Hls.Estimate.profile;
  capacity : int;  (** device slices *)
  spine : Ast.loop list;
  spine_divisors : (string * int list) list;
      (** ascending divisors of each spine loop's trip count *)
  pipeline : Transform.Pipeline.options;
      (** base options; the vector is set per point *)
  backend : Engine.Backend.t;
      (** the fidelity level evaluations run at; defaults to the
          two-tier composition [Engine.Backend.default] *)
  store : Engine.Store.t;
      (** point cache + tri-schedule memo + counters. Updating
          [pipeline] or [profile] with a record update invalidates the
          cached points — build a fresh context with {!context} instead
          (updating [capacity] is fine for the behavioral backends: it
          does not enter evaluation). *)
  quick_facts : (string * int) option -> Hls.Quick.facts;
      (** tier-1 pre-estimator facts per tile candidate, memoized and
          mutex-protected; facts for a tile come from the strip-mined
          source, keeping the quick bounds admissible under tiling *)
  verify : bool;
      (** translation-validate every uncached evaluation with
          {!Check.Validate}: the transformed result and every selection
          are bit-identical to an unverified run; error-severity
          findings bump [stats.verify_violations] *)
  incremental : bool;
      (** use the structure-sharing evaluation paths (DFG arena,
          region-level schedule snapshots, delta transform cache);
          [false] is the [--no-incremental] escape hatch. Either way the
          results are field-for-field identical *)
  stats : stats;
      (** alias of [store.stats]; merged across domains on {!absorb} *)
}

(** Build a context. [store] plugs in an existing (possibly warm-loaded
    or memo-sharing) store; the default is fresh and empty. [capacity]
    overrides the device's slice capacity. *)
val context :
  ?pipeline:Transform.Pipeline.options ->
  ?profile:Hls.Estimate.profile ->
  ?verify:bool ->
  ?incremental:bool ->
  ?capacity:int ->
  ?backend:Engine.Backend.t ->
  ?store:Engine.Store.t ->
  Ast.kernel ->
  context

(** The engine view of a context (cheap: one record allocation, shared
    quick-facts suspension). *)
val env : context -> Engine.Backend.env

(** A context over an engine-built environment and an existing store —
    how the session driver hands evaluation state to the search. *)
val of_env :
  ?backend:Engine.Backend.t -> store:Engine.Store.t -> Engine.Backend.env -> context

(** Cover every spine loop and clamp factors to divisors of the trip
    counts — the space the search explores (a non-divisor factor leaves
    an epilogue that defeats scalar replacement). *)
val normalize_vector : context -> (string * int) list -> (string * int) list

val product : (string * int) list -> int

(** Equality of the designs two vectors denote: loops missing from either
    side count as factor 1, so partial and spine-normalized spellings of
    the same design compare equal and differing lengths never raise. *)
val vector_equal : (string * int) list -> (string * int) list -> bool

(** No unrolling — the baseline of the paper's Table 2 (all other
    transformations still apply). *)
val ubase : context -> (string * int) list

(** Full unrolling of every loop. *)
val umax : context -> (string * int) list

(** Generate the code for a vector and estimate it, through the store's
    point cache: vectors are normalized before lookup, so any two
    spellings of the same design share one synthesis run. *)
val evaluate : context -> (string * int) list -> point

(** The context's base configuration at the given unroll vector: tile
    and toggles from the base pipeline options — what the vector-only
    entry points evaluate. *)
val base_config : context -> (string * int) list -> config

(** Canonical cache key of a configuration (see
    {!Engine.Backend.normalize_config}): normalized vector, strip-mine
    clamped tile (dropped when a no-op), unroll factor 1 on the tiled
    loop. *)
val normalize_config : context -> config -> config

(** Equality of the designs two configurations denote: vectors compare
    via {!vector_equal}, the other knobs structurally. *)
val config_equal : config -> config -> bool

(** Cached evaluation of one joint configuration (normalized before the
    cache lookup, like {!evaluate}). *)
val evaluate_config : context -> config -> point

(** The backend's tier-1 bound for a joint configuration ({!quick} over
    the full knob set). *)
val quick_config : context -> config -> Hls.Quick.t option

(** Like {!evaluate} but bypassing the cache entirely (neither read nor
    written); still counted in [stats]. *)
val evaluate_uncached : context -> (string * int) list -> point

(** The backend's tier-1 bound: admissible lower bounds on the point's
    cycles and slices straight from the source kernel — no code
    generation, no scheduling. The bounds never exceed what {!evaluate}
    would report for the same vector, so callers may skip evaluation of
    points they disqualify without changing any selection. [None] when
    the backend has no bound tier (plain [full]/[lowlevel]); callers
    must then evaluate instead of pruning. Counted in
    [stats.quick_estimates]. *)
val quick : context -> (string * int) list -> Hls.Quick.t option

(** Record that one full synthesis was skipped on tier-1 evidence
    (bumps [stats.pruned]). *)
val note_pruned : context -> unit

(** Number of distinct designs currently memoized. *)
val cache_size : context -> int

(** Number of distinct block shapes whose tri-schedule is memoized. *)
val sched_memo_size : context -> int

val reset_stats : context -> unit

(** Immutable copy of the context's counters (for before/after deltas). *)
val stats_snapshot : context -> stats

val stats_diff : before:stats -> after:stats -> stats

(** A private copy of [ctx] for one domain of a parallel sweep: shares
    the immutable fields, snapshots the store's caches, and starts fresh
    counters. Never share one mutable context across domains. *)
val fork : context -> context

(** Merge a fork's cache entries, schedule memo and counters back into
    [into]. *)
val absorb : into:context -> context -> unit

val balance : point -> float
val space : point -> int
val cycles : point -> int
val fits : context -> point -> bool
val pp_vector : Format.formatter -> (string * int) list -> unit
val pp_config : Format.formatter -> config -> unit
val config_to_string : config -> string
val pp_point : Format.formatter -> point -> unit
val pp_stats : Format.formatter -> stats -> unit

(** Per-stage wall-time split of the estimator (dfg / schedule / layout
    / other) plus the scheduler-memo hit count — the [--profile] view. *)
val pp_profile : Format.formatter -> stats -> unit
