(** A design point: one unroll-factor vector, the code it generates, and
    the behavioral synthesis estimates for it. Evaluating a point is the
    [Generate; Synthesize; Balance] sequence of the paper's Figure 2. *)

open Ir

type point = {
  vector : (string * int) list;  (** unroll factor per spine loop *)
  kernel : Ast.kernel;  (** transformed code *)
  estimate : Hls.Estimate.t;
  report : Transform.Scalar_replace.report;
}

type context = {
  source : Ast.kernel;  (** the input loop nest *)
  profile : Hls.Estimate.profile;
  capacity : int;  (** device slices *)
  spine : Ast.loop list;
  pipeline : Transform.Pipeline.options;
      (** base options; the vector is set per point *)
}

val context :
  ?pipeline:Transform.Pipeline.options ->
  ?profile:Hls.Estimate.profile ->
  Ast.kernel ->
  context

(** Cover every spine loop and clamp factors to divisors of the trip
    counts — the space the search explores (a non-divisor factor leaves
    an epilogue that defeats scalar replacement). *)
val normalize_vector : context -> (string * int) list -> (string * int) list

val product : (string * int) list -> int
val vector_equal : (string * int) list -> (string * int) list -> bool

(** No unrolling — the baseline of the paper's Table 2 (all other
    transformations still apply). *)
val ubase : context -> (string * int) list

(** Full unrolling of every loop. *)
val umax : context -> (string * int) list

(** Generate the code for a vector and estimate it. *)
val evaluate : context -> (string * int) list -> point

val balance : point -> float
val space : point -> int
val cycles : point -> int
val fits : context -> point -> bool
val pp_vector : Format.formatter -> (string * int) list -> unit
val pp_point : Format.formatter -> point -> unit
