(** Behavioral VHDL emission — the system's SUIF2VHDL stage (Figure 3 of
    the paper). The transformed kernel becomes one entity whose
    architecture holds a single clocked process: array variables carry a
    [map_to_memory] directive naming the physical memory chosen by the
    data layout, compiler registers become process variables, loops
    become VHDL [for] loops, and register rotation becomes the parallel
    shift sequence. Monet-generation behavioral synthesis consumed
    exactly this style. *)

(** Emit the support package, entity and architecture.
    [memory_of_array] names the physical memory of each array (from the
    data layout); omitted arrays get memory 0. *)
val emit : ?memory_of_array:(string * int) list -> Ir.Ast.kernel -> string

(** Rewrite the kernel to its distributed arrays first
    ({!Data_layout.Renaming}), then emit with each bank's physical
    memory in the directive comments. *)
val emit_with_layout : num_memories:int -> Ir.Ast.kernel -> string
