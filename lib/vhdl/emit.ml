(** Behavioral VHDL emission — the system's SUIF2VHDL stage (Figure 3 of
    the paper).

    The transformed kernel is emitted as one entity whose architecture
    holds a single clocked process: array variables carry a
    [map_to_memory] directive naming the physical memory chosen by the
    data layout, compiler registers become process variables, loops
    become VHDL [for] loops, and register rotation becomes the parallel
    shift sequence. Behavioral synthesis tools of the Monet generation
    consumed exactly this style: untimed sequential statements over
    integer variables, with binding/allocation/scheduling left to the
    tool. *)

open Ir
module Access = Analysis.Access

let type_name (d : Dtype.t) =
  Printf.sprintf "%s%d" (if Dtype.is_signed d then "int" else "uint") (Dtype.bits d)

let binop_vhdl : Ast.binop -> string option = function
  | Ast.Add -> Some "+"
  | Ast.Sub -> Some "-"
  | Ast.Mul -> Some "*"
  | Ast.Div -> Some "/"
  | Ast.Mod -> Some "mod"
  | _ -> None

let cmp_vhdl : Ast.binop -> string option = function
  | Ast.Lt -> Some "<"
  | Ast.Le -> Some "<="
  | Ast.Gt -> Some ">"
  | Ast.Ge -> Some ">="
  | Ast.Eq -> Some "="
  | Ast.Ne -> Some "/="
  | _ -> None

(** Value-position expression (integer-typed in VHDL). *)
let rec pp_expr fmt (e : Ast.expr) =
  match e with
  | Ast.Int n -> Format.fprintf fmt "%d" n
  | Ast.Var v -> Format.pp_print_string fmt v
  | Ast.Arr (a, subs) ->
      Format.fprintf fmt "%s(%a)" a
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp_expr)
        subs
  | Ast.Bin (op, a, b) -> (
      match binop_vhdl op with
      | Some s -> Format.fprintf fmt "(%a %s %a)" pp_expr a s pp_expr b
      | None -> (
          match cmp_vhdl op with
          | Some s -> Format.fprintf fmt "b2i(%a %s %a)" pp_expr a s pp_expr b
          | None -> (
              match op with
              | Ast.Min -> Format.fprintf fmt "imin(%a, %a)" pp_expr a pp_expr b
              | Ast.Max -> Format.fprintf fmt "imax(%a, %a)" pp_expr a pp_expr b
              | Ast.And -> Format.fprintf fmt "b2i(%a and %a)" pp_bool a pp_bool b
              | Ast.Or -> Format.fprintf fmt "b2i(%a or %a)" pp_bool a pp_bool b
              | Ast.Shl -> Format.fprintf fmt "shl(%a, %a)" pp_expr a pp_expr b
              | Ast.Shr -> Format.fprintf fmt "shr(%a, %a)" pp_expr a pp_expr b
              | Ast.Band -> Format.fprintf fmt "iand(%a, %a)" pp_expr a pp_expr b
              | Ast.Bor -> Format.fprintf fmt "ior(%a, %a)" pp_expr a pp_expr b
              | Ast.Bxor -> Format.fprintf fmt "ixor(%a, %a)" pp_expr a pp_expr b
              | _ -> assert false)))
  | Ast.Un (Ast.Neg, a) -> Format.fprintf fmt "(-%a)" pp_expr a
  | Ast.Un (Ast.Abs, a) -> Format.fprintf fmt "abs(%a)" pp_expr a
  | Ast.Un (Ast.Not, a) -> Format.fprintf fmt "b2i(not %a)" pp_bool a
  | Ast.Un (Ast.Bnot, a) -> Format.fprintf fmt "inot(%a)" pp_expr a
  | Ast.Cond (c, t, e') ->
      Format.fprintf fmt "sel(%a, %a, %a)" pp_bool c pp_expr t pp_expr e'

(** Boolean-position expression (VHDL conditions). *)
and pp_bool fmt (e : Ast.expr) =
  match e with
  | Ast.Bin (op, a, b) when cmp_vhdl op <> None ->
      Format.fprintf fmt "(%a %s %a)" pp_expr a
        (Option.get (cmp_vhdl op))
        pp_expr b
  | Ast.Bin (Ast.And, a, b) -> Format.fprintf fmt "(%a and %a)" pp_bool a pp_bool b
  | Ast.Bin (Ast.Or, a, b) -> Format.fprintf fmt "(%a or %a)" pp_bool a pp_bool b
  | Ast.Un (Ast.Not, a) -> Format.fprintf fmt "(not %a)" pp_bool a
  | e -> Format.fprintf fmt "(%a /= 0)" pp_expr e

let rec pp_stmt fmt (s : Ast.stmt) =
  match s with
  | Ast.Assign (Ast.Lvar v, e) -> Format.fprintf fmt "@[<h>%s := %a;@]" v pp_expr e
  | Ast.Assign (Ast.Larr (a, subs), e) ->
      Format.fprintf fmt "@[<h>%s(%a) := %a;@]" a
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp_expr)
        subs pp_expr e
  | Ast.If (c, t, []) ->
      Format.fprintf fmt "@[<v 2>if %a then@,%a@]@,end if;" pp_bool c pp_body t
  | Ast.If (c, t, e) ->
      Format.fprintf fmt "@[<v 2>if %a then@,%a@]@,@[<v 2>else@,%a@]@,end if;"
        pp_bool c pp_body t pp_body e
  | Ast.For l ->
      if l.step = 1 then
        Format.fprintf fmt "@[<v 2>for %s in %d to %d loop@,%a@]@,end loop;"
          l.index l.lo (l.hi - 1) pp_body l.body
      else begin
        (* VHDL for-loops are unit stride; iterate the trip count and
           derive the index. *)
        let trip = Ast.loop_trip l in
        Format.fprintf fmt
          "@[<v 2>for %s_it in 0 to %d loop@,%s := %d + %s_it * %d;@,%a@]@,end loop;"
          l.index (trip - 1) l.index l.lo l.index l.step pp_body l.body
      end
  | Ast.Rotate [] -> ()
  | Ast.Rotate (r0 :: rest as rs) ->
      Format.fprintf fmt "@[<v>rot_tmp := %s;@," r0;
      List.iteri
        (fun i r ->
          let next = try List.nth rs (i + 1) with _ -> "" in
          if next <> "" then Format.fprintf fmt "%s := %s;@," r next)
        (r0 :: rest);
      let last = List.nth rs (List.length rs - 1) in
      Format.fprintf fmt "%s := rot_tmp;@]" last

and pp_body fmt body =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt fmt body

let needs_rot_tmp body =
  Ast.fold_stmts
    ~stmt:(fun acc s -> acc || match s with Ast.Rotate _ -> true | _ -> false)
    ~expr:(fun acc _ -> acc)
    false body

(** Loops whose VHDL form needs an explicit index variable (non-unit
    stride). *)
let strided_indices body =
  Ast.fold_stmts
    ~stmt:(fun acc s ->
      match s with
      | Ast.For l when l.step <> 1 -> l.index :: acc
      | _ -> acc)
    ~expr:(fun acc _ -> acc)
    [] body
  |> List.sort_uniq String.compare

let support_package = {|library IEEE;
use IEEE.std_logic_1164.all;

package defacto_support is
  function b2i(b : boolean) return integer;
  function sel(b : boolean; t, e : integer) return integer;
  function imin(a, b : integer) return integer;
  function imax(a, b : integer) return integer;
end package;

package body defacto_support is
  function b2i(b : boolean) return integer is
  begin
    if b then return 1; else return 0; end if;
  end function;
  function sel(b : boolean; t, e : integer) return integer is
  begin
    if b then return t; else return e; end if;
  end function;
  function imin(a, b : integer) return integer is
  begin
    if a < b then return a; else return b; end if;
  end function;
  function imax(a, b : integer) return integer is
  begin
    if a > b then return a; else return b; end if;
  end function;
end package body;
|}

(** Emit the full design: support package, entity, and one behavioral
    process. [memory_of_array] names the physical memory of each array
    (from the data layout); omitted arrays get memory 0. *)
let emit ?(memory_of_array : (string * int) list = []) (k : Ast.kernel) : string
    =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  Format.fprintf fmt "%s@." support_package;
  Format.fprintf fmt
    "library IEEE;@.use IEEE.std_logic_1164.all;@.use work.defacto_support.all;@.@.";
  Format.fprintf fmt "entity %s is@." k.k_name;
  Format.fprintf fmt
    "  port (clk : in std_logic; start : in std_logic; done : out std_logic);@.";
  Format.fprintf fmt "end entity %s;@.@." k.k_name;
  Format.fprintf fmt "architecture behavioral of %s is@." k.k_name;
  List.iter
    (fun (a : Ast.array_decl) ->
      let size = Ast.array_size a in
      let mem = Option.value ~default:0 (List.assoc_opt a.a_name memory_of_array) in
      Format.fprintf fmt
        "  type %s_t is array (0 to %d) of integer range %d to %d;@."
        a.a_name (size - 1)
        (fst (Dtype.range a.a_elem))
        (snd (Dtype.range a.a_elem));
      Format.fprintf fmt
        "  shared variable %s : %s_t; -- pragma map_to_memory mem%d (%s)@."
        a.a_name a.a_name mem (type_name a.a_elem))
    k.k_arrays;
  Format.fprintf fmt "begin@.";
  Format.fprintf fmt "  main : process@.";
  List.iter
    (fun (s : Ast.scalar_decl) ->
      Format.fprintf fmt "    variable %s : integer range %d to %d := 0;%s@."
        s.s_name
        (fst (Dtype.range s.s_elem))
        (snd (Dtype.range s.s_elem))
        (match s.s_kind with
        | Ast.Register -> " -- register (scalar replacement)"
        | Ast.Param -> " -- parameter"
        | Ast.Temp -> ""))
    k.k_scalars;
  List.iter
    (fun i -> Format.fprintf fmt "    variable %s : integer := 0;@." i)
    (strided_indices k.k_body);
  if needs_rot_tmp k.k_body then
    Format.fprintf fmt "    variable rot_tmp : integer := 0;@.";
  Format.fprintf fmt "  begin@.";
  Format.fprintf fmt "    wait until rising_edge(clk) and start = '1';@.";
  Format.fprintf fmt "    done <= '0';@.";
  Format.fprintf fmt "    @[<v 4>    %a@]@." pp_body k.k_body;
  Format.fprintf fmt "    done <= '1';@.";
  Format.fprintf fmt "  end process;@.";
  Format.fprintf fmt "end architecture behavioral;@.";
  Format.pp_print_flush fmt ();
  Buffer.contents buf

(** Emit a kernel together with its computed layout: the kernel is first
    rewritten to distributed arrays, and the directive comments name each
    bank's physical memory. *)
let emit_with_layout ~num_memories (k : Ast.kernel) : string =
  let d = Data_layout.Renaming.rewrite ~num_memories k in
  let mem_of_array =
    List.map
      (fun ((ar, vid), m) ->
        let name =
          if
            List.exists
              (fun (orig, _) -> orig = ar)
              d.Data_layout.Renaming.split
          then Data_layout.Renaming.bank_name ar vid
          else ar
        in
        (name, m))
      d.Data_layout.Renaming.layout.Data_layout.Layout.phys
  in
  emit ~memory_of_array:mem_of_array d.Data_layout.Renaming.kernel
