(** Quickstart: write a loop nest in the C subset, run the design space
    exploration, and inspect the chosen hardware design.

    {v dune exec examples/quickstart.exe v} *)

let source =
  {|
  /* dot product of two 256-element vectors, accumulated in 32 bits */
  short x[256];
  short y[256];
  int dot[1];
  for (i = 0; i < 256; i++)
    dot[0] = dot[0] + x[i] * y[i];
|}

let () =
  (* 1. Parse the kernel. *)
  let kernel =
    match Frontend.Parser.kernel_of_string_res ~name:"dot" source with
    | Ok k -> k
    | Error msg -> failwith msg
  in
  Format.printf "Input kernel:@.%s@.@." (Ir.Pretty.kernel_to_string kernel);

  (* 2. Build an exploration context: the default profile is a
     Virtex-1000-class FPGA with four pipelined external memories and a
     40 ns clock. *)
  let profile = Hls.Estimate.default_profile ~pipelined:true () in
  let ctx = Dse.Design.context ~profile kernel in

  (* 3. Run the balance-guided search (Figure 2 of the paper). *)
  let result = Dse.Search.run ctx in
  Format.printf "Saturation: R=%d W=%d Psat=%d@." result.sat.Dse.Saturation.r
    result.sat.Dse.Saturation.w result.sat.Dse.Saturation.psat;
  Format.printf "Search trace:@.";
  List.iter
    (fun (s : Dse.Search.step) ->
      Format.printf "  %a  [%s]@." Dse.Design.pp_point s.point s.verdict)
    result.steps;

  (* 4. Inspect the selected design. *)
  let sel = result.selected in
  Format.printf "@.Selected design: %a@." Dse.Design.pp_point sel;
  Format.printf "Estimates: %a@." Hls.Estimate.pp sel.estimate;

  (* 5. Compare against the no-unrolling baseline. *)
  let base = Dse.Design.evaluate ctx (Dse.Design.ubase ctx) in
  Format.printf "Baseline:  %a@." Dse.Design.pp_point base;
  Format.printf "Speedup: %.2fx@."
    (float_of_int (Dse.Design.cycles base)
    /. float_of_int (Dse.Design.cycles sel));

  (* 6. The generated code is ordinary IR: run it against the reference
     interpreter to confirm it still computes a dot product. *)
  let x = Array.init 256 (fun i -> (i mod 17) - 8) in
  let y = Array.init 256 (fun i -> (i mod 11) - 5) in
  let expected = ref 0 in
  Array.iteri (fun i xi -> expected := !expected + (xi * y.(i))) x;
  let st = Ir.Eval.run ~inputs:[ ("x", x); ("y", y) ] sel.kernel in
  let got = (Option.get (Ir.Eval.array_value st "dot")).(0) in
  Format.printf "Functional check: dot = %d (expected %d) -> %s@." got !expected
    (if got = !expected then "OK" else "MISMATCH")
