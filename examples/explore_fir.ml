(** The paper's running example, end to end: FIR through unroll-and-jam,
    scalar replacement, peeling and data layout — printing the code at
    each stage (compare with Figure 1 of the paper) and then the full
    exploration under both memory models.

    {v dune exec examples/explore_fir.exe v} *)

let rule title =
  Format.printf "@.%s@.%s@." title (String.make (String.length title) '-')

let () =
  let fir = Option.get (Kernels.find "fir") in
  rule "Original kernel (Figure 1(a))";
  Format.printf "%s@." (Ir.Pretty.kernel_to_string fir);

  (* Unroll-and-jam both loops by 2, as in Figure 1(b). *)
  let unrolled = Transform.Unroll.run [ ("j", 2); ("i", 2) ] fir in
  rule "After unroll-and-jam by (2, 2) (Figure 1(b))";
  Format.printf "%s@." (Ir.Pretty.kernel_to_string unrolled);

  (* Scalar replacement introduces the accumulators, the rotating C
     register banks and the S_0 temporary of Figure 1(c); peeling the
     first j iteration then specialises the guarded bank loads
     (Figure 1(d) without the data layout). *)
  let r =
    Transform.Pipeline.apply
      { Transform.Pipeline.default with vector = [ ("j", 2); ("i", 2) ] }
      fir
  in
  rule "After scalar replacement and peeling (Figure 1(c)-(d))";
  Format.printf "%s@." (Ir.Pretty.kernel_to_string r.kernel);
  Format.printf
    "@.registers introduced: %d (banks: %s; hoisted accumulators: %d; CSE loads: %d)@."
    r.report.registers
    (String.concat ", "
       (List.map
          (fun (a, n) -> Printf.sprintf "%s x%d" a n)
          r.report.banks))
    r.report.hoisted_members r.report.cse_loads;

  (* The custom data layout distributes S, C and D across the four
     memories (Figure 1(d)'s S0/S1, C0/C1, D2/D3). *)
  let d = Data_layout.Renaming.rewrite ~num_memories:4 r.kernel in
  rule "Custom data layout";
  List.iter
    (fun (orig, banks) ->
      Format.printf "%s -> %s@." orig (String.concat ", " banks))
    d.split;

  (* Exploration under both memory models. *)
  List.iter
    (fun pipelined ->
      rule
        (Printf.sprintf "Design space exploration (%s memories)"
           (if pipelined then "pipelined" else "non-pipelined"));
      let profile = Hls.Estimate.default_profile ~pipelined () in
      let ctx = Dse.Design.context ~profile fir in
      let res = Dse.Search.run ctx in
      Format.printf "Uinit = %a (R=%d, W=%d, Psat=%d)@." Dse.Design.pp_vector
        res.uinit res.sat.r res.sat.w res.sat.psat;
      List.iter
        (fun (s : Dse.Search.step) ->
          Format.printf "  %a [%s]@." Dse.Design.pp_point s.point s.verdict)
        res.steps;
      let base = Dse.Design.evaluate ctx (Dse.Design.ubase ctx) in
      Format.printf "selected %a@."
        Dse.Design.pp_point res.selected;
      Format.printf "speedup over baseline: %.2fx@."
        (float_of_int (Dse.Design.cycles base)
        /. float_of_int (Dse.Design.cycles res.selected)))
    [ true; false ]
