(** Building a kernel programmatically with {!Ir.Builder} — a 2D
    correlation, the workload class the paper's introduction motivates —
    and exploring it on a customised platform (two memories, smaller
    device), with tiling to bound the coefficient register bank.

    {v dune exec examples/custom_kernel.exe v} *)

open Ir
module B = Builder

(* corr[i][j] = sum_{di,dj} img[i+di][j+dj] * w[di][dj], 5x5 window *)
let correlation =
  B.kernel "corr5x5"
    ~arrays:
      [
        Ast.array_decl ~elem:Dtype.uint8 "img" [ 36; 36 ];
        Ast.array_decl ~elem:Dtype.int16 "w" [ 5; 5 ];
        Ast.array_decl ~elem:Dtype.int32 "corr" [ 32; 32 ];
      ]
    [
      B.for_ "i" 0 32 (fun i ->
          [
            B.for_ "j" 0 32 (fun j ->
                [
                  B.for_ "di" 0 5 (fun di ->
                      [
                        B.for_ "dj" 0 5 (fun dj ->
                            [
                              B.store2 "corr" i j
                                B.(
                                  arr2 "corr" i j
                                  + (arr2 "img" (i + di) (j + dj)
                                    * arr2 "w" di dj));
                            ]);
                      ]);
                ]);
          ]);
    ]

let () =
  Format.printf "Kernel:@.%s@.@." (Pretty.kernel_to_string correlation);

  (* A smaller platform: 2 memories, half the slices, non-pipelined. *)
  let device =
    {
      Hls.Device.default with
      Hls.Device.name = "small platform";
      num_memories = 2;
      capacity_slices = 6000;
    }
  in
  let profile =
    {
      Hls.Estimate.device;
      mem = Hls.Memory_model.non_pipelined;
      chaining = false;
    }
  in
  let ctx = Dse.Design.context ~profile correlation in
  let res = Dse.Search.run ctx in
  Format.printf "Exploration on %s (%d memories, %d slices):@."
    device.Hls.Device.name device.Hls.Device.num_memories
    device.Hls.Device.capacity_slices;
  List.iter
    (fun (s : Dse.Search.step) ->
      Format.printf "  %a [%s]@." Dse.Design.pp_point s.point s.verdict)
    res.steps;
  Format.printf "selected: %a@.@." Dse.Design.pp_point res.selected;

  (* Register pressure control (Section 5.4): tiling the j loop bounds
     the bank scalar replacement builds for the window coefficients. *)
  let tiled =
    Transform.Pipeline.apply
      {
        Transform.Pipeline.default with
        tile = Some ("j", 8);
        scalar =
          { Transform.Scalar_replace.default_config with max_registers = 128 };
      }
      correlation
  in
  Format.printf
    "With tiling j by 8 and a 128-register budget: %d registers, banks %s@."
    tiled.report.registers
    (String.concat ", "
       (List.map
          (fun (a, n) -> Printf.sprintf "%s x%d" a n)
          tiled.report.banks));

  (* Functional check of the tiled, replaced code. *)
  let inputs = Kernels.test_inputs correlation in
  let reference = Eval.observables (Eval.run ~inputs correlation) in
  let out = Eval.observables (Eval.run ~inputs tiled.kernel) in
  let ok =
    List.for_all2
      (fun (n1, a1) (n2, a2) -> n1 = n2 && a1 = a2)
      reference out
  in
  Format.printf "Functional check after tiling: %s@."
    (if ok then "OK" else "MISMATCH")
