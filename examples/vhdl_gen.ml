(** Generating behavioral VHDL for a selected design — the output the
    DEFACTO flow hands to behavioral synthesis (SUIF2VHDL stage).

    {v dune exec examples/vhdl_gen.exe [kernel] v}

    Writes [<kernel>_selected.vhd] to the current directory and prints a
    summary. *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "fir" in
  let kernel =
    match Kernels.find name with
    | Some k -> k
    | None ->
        Printf.eprintf "unknown kernel %s (have: %s)\n" name
          (String.concat ", " Kernels.names);
        exit 1
  in
  let profile = Hls.Estimate.default_profile ~pipelined:true () in
  let ctx = Dse.Design.context ~profile kernel in
  let res = Dse.Search.run ctx in
  let sel = res.selected in
  Format.printf "selected design for %s: %a@." name Dse.Design.pp_point sel;
  let vhdl =
    Vhdl.Emit.emit_with_layout ~num_memories:4 sel.Dse.Design.kernel
  in
  let path = name ^ "_selected.vhd" in
  Out_channel.with_open_text path (fun oc -> output_string oc vhdl);
  Format.printf "wrote %s (%d lines)@." path
    (List.length (String.split_on_char '\n' vhdl));
  (* show the entity declaration *)
  let lines = String.split_on_char '\n' vhdl in
  let rec show started = function
    | [] -> ()
    | l :: rest ->
        let started =
          started
          ||
          match String.index_opt l 'e' with
          | Some 0 -> String.length l > 6 && String.sub l 0 6 = "entity"
          | _ -> false
        in
        if started then begin
          print_endline l;
          if String.length l >= 10 && String.sub l 0 10 = "end entity" then ()
          else show true rest
        end
        else show false rest
  in
  print_newline ();
  show false lines
