int A[8];
for (i = 0; i < 8; i++)
  A[i] = B[i] + 1;
