int A[10];
int x;
for (i = 0; i < 12; i++) {
  if (i < 10)
    x = x + A[i];
}
