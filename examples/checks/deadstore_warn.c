int A[8];
int B[8];
int t;
for (i = 0; i < 8; i++) {
  t = A[i] + 1;
  B[i] = A[i] * 2;
}
