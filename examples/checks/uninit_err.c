int A[8];
int s;
for (i = 0; i < 8; i++)
  A[i] = s + i;
