int x[16];
int y[16];
for (i = 0; i < 16; i++)
  y[i] = y[i] + (3 * x[i]);
