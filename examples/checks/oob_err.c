int A[8];
for (i = 0; i < 10; i++)
  A[i] = A[i] + 1;
