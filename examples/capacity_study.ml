(** How the selected design adapts to device capacity — the space
    constraint branch of the search algorithm (FindLargestFit): shrink
    the device and watch the search settle for smaller designs.

    {v dune exec examples/capacity_study.exe v} *)

let () =
  let kernel = Option.get (Kernels.find "mm") in
  let profile = Hls.Estimate.default_profile ~pipelined:true () in
  Format.printf "kernel mm; device capacities swept from generous to tiny@.@.";
  Format.printf "%10s %16s %10s %10s %10s@." "capacity" "selected" "slices"
    "cycles" "speedup";
  let base_ctx = Dse.Design.context ~profile kernel in
  let base = Dse.Design.evaluate base_ctx (Dse.Design.ubase base_ctx) in
  List.iter
    (fun capacity ->
      let ctx = { base_ctx with Dse.Design.capacity } in
      let res = Dse.Search.run ctx in
      let sel = res.selected in
      Format.printf "%10d %16s %10d %10d %9.2fx@." capacity
        (Format.asprintf "%a" Dse.Design.pp_vector sel.vector)
        (Dse.Design.space sel) (Dse.Design.cycles sel)
        (float_of_int (Dse.Design.cycles base)
        /. float_of_int (Dse.Design.cycles sel)))
    [ 12288; 9000; 7000; 5000; 4200; 4000 ];
  Format.printf
    "@.Every selected design fits its device; smaller devices trade cycles for area.@."
