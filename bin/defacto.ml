(** The [defacto] command-line driver: design space exploration for
    FPGA-bound loop nests, following So, Hall & Diniz (PLDI 2002).

    {v
    defacto explore   -k fir                 run the Figure-2 search
    defacto explore   -k fir -k mm ...       batched multi-kernel session
    defacto estimate  -k mm -u i=2,j=2       synthesize one design point
    defacto transform -k jac -u j=2          print the transformed code
    defacto space     -k pat                 exhaustive design-space sweep
    defacto check     -k fir                 static checks + pipeline validation
    defacto vhdl      -k fir -u j=2,i=2      emit behavioral VHDL
    defacto cache     stats|clear            inspect/remove a persistent store
    defacto kernels                          list built-in kernels
    v}

    Kernels come from the built-in suite ([-k], repeatable for [explore])
    or from a C-subset source file ([-f]). With [--cache-dir] (or
    [DEFACTO_CACHE_DIR]) evaluations persist across runs: a warm rerun
    performs zero full syntheses and selects bit-identical designs. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared arguments *)

let kernel_arg =
  let doc = "Built-in kernel name (fir, mm, pat, jac, sobel)." in
  Arg.(value & opt (some string) None & info [ "k"; "kernel" ] ~docv:"NAME" ~doc)

let file_arg =
  let doc = "Parse the kernel from a C-subset source $(docv)." in
  Arg.(value & opt (some file) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)

let pipelined_arg =
  let doc = "Model non-pipelined memory accesses (7-cycle reads, 3-cycle writes)." in
  Arg.(value & flag & info [ "non-pipelined" ] ~doc)

let memories_arg =
  let doc = "Number of external memories." in
  Arg.(value & opt int 4 & info [ "memories" ] ~docv:"N" ~doc)

let capacity_arg =
  let doc = "Device capacity in slices." in
  Arg.(value & opt int 12288 & info [ "capacity" ] ~docv:"SLICES" ~doc)

let unroll_arg =
  let doc = "Unroll factor vector, e.g. $(b,j=2,i=4)." in
  Arg.(value & opt string "" & info [ "u"; "unroll" ] ~docv:"VEC" ~doc)

let output_arg =
  let doc = "Write output to $(docv) instead of stdout." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let load_kernel kernel file : (Ir.Ast.kernel, string) result =
  match (kernel, file) with
  | Some name, _ -> (
      match Kernels.find name with
      | Some k -> Ok k
      | None -> (
          match Gallery.find name with
          | Some k -> Ok k
          | None ->
              Error
                (Printf.sprintf "unknown kernel %s (have: %s)" name
                   (String.concat ", " (Kernels.names @ Gallery.names)))))
  | None, Some path -> (
      let src = In_channel.with_open_text path In_channel.input_all in
      let name = Filename.remove_extension (Filename.basename path) in
      match Frontend.Parser.kernel_of_string_res ~name src with
      | Ok k -> Ok k
      | Error msg -> Error (path ^ ": " ^ msg))
  | None, None -> Error "specify a kernel with -k or a source file with -f"

let parse_vector (s : string) : (string * int) list =
  if String.trim s = "" then []
  else
    String.split_on_char ',' s
    |> List.map (fun part ->
           match String.split_on_char '=' (String.trim part) with
           | [ i; u ] -> (
               match int_of_string_opt (String.trim u) with
               | Some n when n >= 1 -> (String.trim i, n)
               | _ ->
                   prerr_endline
                     (Printf.sprintf
                        "defacto: bad unroll factor %S (expected \
                         loop=positive-integer)"
                        part);
                   exit 1)
           | _ ->
               prerr_endline
                 (Printf.sprintf
                    "defacto: bad unroll component %S (expected loop=factor)"
                    part);
               exit 1)

let make_profile ~non_pipelined ~memories =
  let device = { Hls.Device.default with Hls.Device.num_memories = memories } in
  {
    Hls.Estimate.device;
    mem = Hls.Memory_model.of_flag ~pipelined:(not non_pipelined);
    chaining = false;
  }

let with_output output f =
  match output with
  | None -> f Format.std_formatter
  | Some path ->
      Out_channel.with_open_text path (fun oc ->
          let fmt = Format.formatter_of_out_channel oc in
          f fmt;
          Format.pp_print_flush fmt ())

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline ("defacto: " ^ msg);
      exit 1

(* ------------------------------------------------------------------ *)
(* Engine arguments (persistence + backend) *)

let cache_dir_arg =
  let doc =
    "Persist evaluated design points and tri-schedules under $(docv) and \
     warm-start from whatever earlier runs left there. The store is keyed \
     on the estimator version and the full device/memory configuration, \
     so changing either only makes it cold, never stale."
  in
  let env = Cmd.Env.info "DEFACTO_CACHE_DIR" ~doc:"Default for --cache-dir." in
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR" ~env ~doc)

let cold_arg =
  let doc =
    "Ignore whatever --cache-dir already holds (the run still saves its \
     results, refreshing the store)."
  in
  Arg.(value & flag & info [ "cold" ] ~doc)

let backend_arg =
  let doc =
    Printf.sprintf
      "Estimator backend: one of %s. $(b,quick+)-prefixed backends gate \
       full synthesis behind the analytical pre-estimator (admissible: \
       selections are unchanged); $(b,lowlevel) folds the place-and-route \
       degradation model into every estimate."
      (String.concat ", " (List.map (fun n -> "$(b," ^ n ^ ")") Engine.Backend.known_names))
  in
  Arg.(value & opt string "quick+full" & info [ "backend" ] ~docv:"NAME" ~doc)

let backend_of_flag name = or_die (Engine.Backend.of_string name)

(* ------------------------------------------------------------------ *)
(* explore *)

let report_arg =
  let doc = "Write a full markdown exploration report to $(docv) ('-' for stdout)." in
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)

let profile_arg =
  let doc =
    "Print the estimator's per-stage wall-time split (dfg construction, \
     scheduling, data layout) and the content-addressed scheduler memo \
     counters after the search."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let verify_arg =
  let doc =
    "Translation-validate the transformation pipeline of every visited \
     design point (per-stage footprint comparison); selections are \
     bit-identical, violations are counted in the stats."
  in
  Arg.(value & flag & info [ "verify" ] ~doc)

let joint_arg =
  let doc =
    "Search the joint transform-configuration space (unroll vector x \
     tile x scalar-replace/peel/licm toggles) instead of the unroll \
     lattice alone: illegal and redundant configurations are pruned \
     before any transform runs, and above a size threshold the sweep \
     turns best-first on the analytical bounds."
  in
  Arg.(value & flag & info [ "joint" ] ~doc)

let tile_candidates_arg =
  let doc =
    "Comma-separated tile-size requests for the joint space (default \
     4,8,16); each is clamped to the nearest trip-count divisor per \
     spine loop. Only meaningful with $(b,--joint)."
  in
  Arg.(value & opt (some string) None & info [ "tile-candidates" ] ~docv:"T,T,..." ~doc)

let parse_tile_candidates = function
  | None -> Dse.Space.default_tile_candidates
  | Some s ->
      String.split_on_char ',' s
      |> List.filter (fun x -> String.trim x <> "")
      |> List.map (fun x ->
             match int_of_string_opt (String.trim x) with
             | Some t when t > 1 -> t
             | _ ->
                 prerr_endline
                   ("defacto: --tile-candidates: bad tile size '" ^ x ^ "'");
                 exit 1)

let print_joint_counters (j : Dse.Space.joint) =
  Format.printf
    "# joint space: %d config(s) enumerated, %d illegal, %d redundant, %d \
     bound-pruned, %d evaluated%s@."
    j.Dse.Space.space_size j.Dse.Space.pruned_illegal
    j.Dse.Space.pruned_redundant j.Dse.Space.pruned_bound
    (List.length j.Dse.Space.points)
    (if j.Dse.Space.truncated then " (budget exhausted)" else "")

let no_incremental_arg =
  let doc =
    "Rebuild every design point from scratch: disable the store's DFG \
     arena, the region-level schedule snapshots and the delta transform \
     cache. Results are field-for-field identical; this is the A/B \
     escape hatch for timing the structure-sharing paths."
  in
  Arg.(value & flag & info [ "no-incremental" ] ~doc)

let explore_kernels_arg =
  let doc =
    "Built-in kernel name (fir, mm, pat, jac, sobel). Repeatable: several \
     $(b,-k) flags run one batched session over all of them, sharing the \
     tri-schedule memo, the worker domains and the persistent store."
  in
  Arg.(value & opt_all string [] & info [ "k"; "kernel" ] ~docv:"NAME" ~doc)

let explore_jobs_arg =
  let doc =
    "Size of the session's worker-domain pool (1 disables parallel \
     sweeps; the default scales with the host's cores)."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let load_tasks kernels file : Engine.task list =
  match (kernels, file) with
  | [], None ->
      prerr_endline "defacto: specify a kernel with -k or a source file with -f";
      exit 1
  | names, file ->
      let named =
        List.map
          (fun n ->
            let k = or_die (load_kernel (Some n) None) in
            { Engine.name = n; kernel = k })
          names
      in
      let from_file =
        match file with
        | None -> []
        | Some _ ->
            let k = or_die (load_kernel None file) in
            [ { Engine.name = k.Ir.Ast.k_name; kernel = k } ]
      in
      named @ from_file

let explore kernels file non_pipelined memories capacity report prof verify
    no_incremental cache_dir cold backend_name jobs joint tile_candidates =
  let tile_candidates = parse_tile_candidates tile_candidates in
  let incremental = not no_incremental in
  let tasks = load_tasks kernels file in
  let profile = make_profile ~non_pipelined ~memories in
  let backend = backend_of_flag backend_name in
  (match report with
  | Some dest ->
      let k =
        match tasks with
        | [ t ] -> t.Engine.kernel
        | _ ->
            prerr_endline "defacto: --report takes exactly one kernel";
            exit 1
      in
      let ctx =
        Dse.Design.context ~profile ~verify ~incremental ~capacity ~backend k
      in
      let r = Dse.Report.build ctx in
      let text = Dse.Report.to_string r in
      if dest = "-" then print_string text
      else begin
        (try Out_channel.with_open_text dest (fun oc -> output_string oc text)
         with Sys_error msg ->
           prerr_endline ("defacto: " ^ msg);
           exit 1);
        Format.printf "report written to %s@." dest
      end;
      exit 0
  | None -> ());
  let summary =
    Dse.Driver.run_many ?cache_dir ~cold ~profile ~verify ~incremental
      ~capacity ~backend ?jobs tasks
  in
  List.iter
    (fun (o : Dse.Driver.outcome) ->
      let r = o.Dse.Driver.search in
      Format.printf "kernel %s (%s memory, %d memories, capacity %d slices)@."
        o.Dse.Driver.task.Engine.kernel.Ir.Ast.k_name
        (Hls.Memory_model.name profile.Hls.Estimate.mem)
        memories capacity;
      Format.printf "saturation: R=%d W=%d Psat=%d eligible=[%s]@."
        r.sat.Dse.Saturation.r r.sat.Dse.Saturation.w r.sat.Dse.Saturation.psat
        (String.concat ", " r.sat.Dse.Saturation.eligible);
      Format.printf "Uinit = %a@." Dse.Design.pp_vector r.uinit;
      List.iter
        (fun (s : Dse.Search.step) ->
          Format.printf "  %a  [%s]@." Dse.Design.pp_point s.point s.verdict)
        r.steps;
      Format.printf "selected: %a@." Dse.Design.pp_point r.selected;
      Format.printf "baseline: %a@." Dse.Design.pp_point o.Dse.Driver.baseline;
      Format.printf "speedup over baseline: %.2fx@." (Dse.Driver.speedup o);
      Format.printf "stats: %a@." Dse.Design.pp_stats r.stats;
      if o.Dse.Driver.loaded_points > 0 then
        Format.printf "warm start: %d point(s) from the persistent store@."
          o.Dse.Driver.loaded_points;
      if verify then
        Format.printf "verify: %d design point(s) checked, %d violation(s)@."
          o.Dse.Driver.stats.Dse.Design.checked_points
          o.Dse.Driver.stats.Dse.Design.verify_violations;
      if prof then begin
        Format.printf "profile: %a@." Dse.Design.pp_profile o.Dse.Driver.stats;
        Format.printf
          "profile: %d distinct block shapes in the scheduler memo@."
          (Dse.Design.sched_memo_size o.Dse.Driver.ctx)
      end;
      if joint then begin
        (* The joint sweep reuses the outcome's context, so the search's
           warm point cache serves the unroll-only sub-space. *)
        let ctx = o.Dse.Driver.ctx in
        let j = Dse.Space.sweep_joint ~tile_candidates ctx in
        (match Dse.Space.joint_best ctx j with
        | Some b ->
            Format.printf "joint selection: %a: cycles=%d slices=%d@."
              Dse.Design.pp_config b.Dse.Space.config
              (Dse.Design.cycles b.Dse.Space.point)
              (Dse.Design.space b.Dse.Space.point);
            let sel = r.Dse.Search.selected in
            if
              Dse.Design.cycles b.Dse.Space.point
              < Dse.Design.cycles sel
              || Dse.Design.cycles b.Dse.Space.point = Dse.Design.cycles sel
                 && Dse.Design.space b.Dse.Space.point < Dse.Design.space sel
            then
              Format.printf
                "joint selection beats the unroll-only search (%d vs %d \
                 cycles, %d vs %d slices)@."
                (Dse.Design.cycles b.Dse.Space.point)
                (Dse.Design.cycles sel)
                (Dse.Design.space b.Dse.Space.point)
                (Dse.Design.space sel)
        | None -> Format.printf "joint selection: no fitting configuration@.");
        print_joint_counters j
      end)
    summary.Dse.Driver.outcomes;
  let t = summary.Dse.Driver.total in
  Format.printf
    "session: %d synthesized, %d cache hits, %d pruned, %d sched memo hits \
     over %d kernel(s); %d point(s) and %d tri-schedule(s) warm-loaded@."
    t.Dse.Design.evaluations t.Dse.Design.cache_hits t.Dse.Design.pruned
    t.Dse.Design.sched_memo_hits
    (List.length summary.Dse.Driver.outcomes)
    (List.fold_left
       (fun acc (o : Dse.Driver.outcome) -> acc + o.Dse.Driver.loaded_points)
       0 summary.Dse.Driver.outcomes)
    summary.Dse.Driver.loaded_memo_shapes;
  match summary.Dse.Driver.saved_to with
  | Some dir -> Format.printf "session: store saved to %s@." dir
  | None -> ()

let explore_cmd =
  let doc = "Run the balance-guided design space exploration (Figure 2)." in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(
      const explore $ explore_kernels_arg $ file_arg $ pipelined_arg
      $ memories_arg $ capacity_arg $ report_arg $ profile_arg $ verify_arg
      $ no_incremental_arg $ cache_dir_arg $ cold_arg $ backend_arg
      $ explore_jobs_arg $ joint_arg $ tile_candidates_arg)

(* ------------------------------------------------------------------ *)
(* estimate *)

let estimate kernel file non_pipelined memories unroll =
  let k = or_die (load_kernel kernel file) in
  let profile = make_profile ~non_pipelined ~memories in
  let ctx = Dse.Design.context ~profile k in
  let p = Dse.Design.evaluate ctx (parse_vector unroll) in
  Format.printf "%a@." Dse.Design.pp_vector p.Dse.Design.vector;
  Format.printf "%a@." Hls.Estimate.pp p.Dse.Design.estimate;
  Format.printf "time at 40ns clock: %.1f us@."
    (p.Dse.Design.estimate.Hls.Estimate.time_ns /. 1000.0);
  let impl = Hls.Lowlevel.place_and_route p.Dse.Design.estimate in
  Format.printf
    "after P&R model: %d slices, achieved clock %.1f ns (%s)@."
    impl.Hls.Lowlevel.actual_slices impl.Hls.Lowlevel.achieved_clock_ns
    (if impl.Hls.Lowlevel.meets_timing then "meets 40 ns" else "degraded")

let estimate_cmd =
  let doc = "Estimate area and cycles of one design point." in
  Cmd.v (Cmd.info "estimate" ~doc)
    Term.(const estimate $ kernel_arg $ file_arg $ pipelined_arg $ memories_arg $ unroll_arg)

(* ------------------------------------------------------------------ *)
(* transform *)

let transform kernel file unroll =
  let k = or_die (load_kernel kernel file) in
  let opts = { Transform.Pipeline.default with vector = parse_vector unroll } in
  let r = Transform.Pipeline.apply opts k in
  print_endline (Ir.Pretty.kernel_to_string r.Transform.Pipeline.kernel)

let transform_cmd =
  let doc = "Print the code after unroll-and-jam, scalar replacement and peeling." in
  Cmd.v (Cmd.info "transform" ~doc)
    Term.(const transform $ kernel_arg $ file_arg $ unroll_arg)

(* ------------------------------------------------------------------ *)
(* space *)

let max_product_arg =
  let doc = "Skip sweep points whose unroll product exceeds $(docv)." in
  Arg.(value & opt int 1024 & info [ "max-product" ] ~docv:"P" ~doc)

let jobs_arg =
  let doc =
    "Evaluate the sweep on $(docv) parallel domains (1 forces the \
     sequential path; the default scales with the host's cores)."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let prune_arg =
  let doc =
    "Two-tier sweep: skip full synthesis of points whose analytical lower \
     bounds prove they cannot fit the device or cannot beat the best \
     fitting design (admissible pruning; the selected designs are \
     unchanged)."
  in
  Arg.(value & flag & info [ "prune" ] ~doc)

let space kernel file non_pipelined memories capacity max_product prune jobs
    verify no_incremental cache_dir cold backend_name joint tile_candidates =
  let incremental = not no_incremental in
  let tile_candidates = parse_tile_candidates tile_candidates in
  let k = or_die (load_kernel kernel file) in
  let profile = make_profile ~non_pipelined ~memories in
  let backend = backend_of_flag backend_name in
  let store = Engine.Store.create () in
  let config =
    Engine.Persist.config_string ~backend:backend.Engine.Backend.name profile
      Transform.Pipeline.default
  in
  let kernel_key = Engine.Persist.kernel_key k in
  (match cache_dir with
  | Some dir when not cold ->
      ignore (Engine.Persist.load_points ~cache_dir:dir ~config ~kernel_key store);
      ignore
        (Engine.Persist.load_memo ~cache_dir:dir ~config
           store.Engine.Store.sched_memo)
  | _ -> ());
  let ctx =
    Dse.Design.context ~profile ~verify ~incremental ~capacity ~backend ~store
      k
  in
  if joint then begin
    let j = Dse.Space.sweep_joint ~max_product ~tile_candidates ctx in
    (match cache_dir with
    | Some dir ->
        Engine.Persist.save_points ~cache_dir:dir ~config ~kernel_key store;
        Engine.Persist.save_memo ~cache_dir:dir ~config
          store.Engine.Store.sched_memo
    | None -> ());
    Format.printf "# %-40s %10s %10s %10s %8s@." "config" "cycles" "slices"
      "balance" "fits";
    List.iter
      (fun (jp : Dse.Space.joint_point) ->
        Format.printf "%-42s %10d %10d %10.3f %8s@."
          (Dse.Design.config_to_string jp.Dse.Space.config)
          (Dse.Design.cycles jp.Dse.Space.point)
          (Dse.Design.space jp.Dse.Space.point)
          (Dse.Design.balance jp.Dse.Space.point)
          (if Dse.Design.space jp.Dse.Space.point <= capacity then "yes"
           else "no"))
      j.Dse.Space.points;
    (match Dse.Space.joint_best ctx j with
    | Some b ->
        Format.printf "# best fitting: %a: cycles=%d slices=%d@."
          Dse.Design.pp_config b.Dse.Space.config
          (Dse.Design.cycles b.Dse.Space.point)
          (Dse.Design.space b.Dse.Space.point)
    | None -> Format.printf "# no fitting design@.");
    print_joint_counters j;
    if verify then
      Format.printf "# verify: %d design point(s) checked, %d violation(s)@."
        ctx.Dse.Design.stats.Dse.Design.checked_points
        ctx.Dse.Design.stats.Dse.Design.verify_violations;
    Format.printf "# stats: %a@." Dse.Design.pp_stats ctx.Dse.Design.stats;
    exit 0
  end;
  let sp = Dse.Space.sweep ~max_product ~prune ?jobs ctx in
  (match cache_dir with
  | Some dir ->
      Engine.Persist.save_points ~cache_dir:dir ~config ~kernel_key store;
      Engine.Persist.save_memo ~cache_dir:dir ~config
        store.Engine.Store.sched_memo
  | None -> ());
  Format.printf "# %-24s %10s %10s %10s %8s@." "vector" "cycles" "slices"
    "balance" "fits";
  List.iter
    (fun (sp : Dse.Space.sweep_point) ->
      Format.printf "%-26s %10d %10d %10.3f %8s@."
        (Format.asprintf "%a" Dse.Design.pp_vector sp.Dse.Space.vector)
        (Dse.Design.cycles sp.Dse.Space.point)
        (Dse.Design.space sp.Dse.Space.point)
        (Dse.Design.balance sp.Dse.Space.point)
        (if Dse.Design.space sp.Dse.Space.point <= capacity then "yes" else "no"))
    sp.Dse.Space.points;
  (match Dse.Space.best_fitting ctx sp with
  | Some best ->
      Format.printf "# best fitting: %a@." Dse.Design.pp_point best.Dse.Space.point
  | None -> Format.printf "# no fitting design@.");
  if sp.Dse.Space.pruned > 0 then
    Format.printf "# pruned without synthesis: %d of %d lattice points@."
      sp.Dse.Space.pruned
      (sp.Dse.Space.pruned + List.length sp.Dse.Space.points);
  if verify then
    Format.printf "# verify: %d design point(s) checked, %d violation(s)@."
      ctx.Dse.Design.stats.Dse.Design.checked_points
      ctx.Dse.Design.stats.Dse.Design.verify_violations;
  Format.printf "# stats: %a@." Dse.Design.pp_stats ctx.Dse.Design.stats

let space_cmd =
  let doc = "Exhaustively sweep the (divisor) design space and report every point." in
  Cmd.v (Cmd.info "space" ~doc)
    Term.(
      const space $ kernel_arg $ file_arg $ pipelined_arg $ memories_arg
      $ capacity_arg $ max_product_arg $ prune_arg $ jobs_arg $ verify_arg
      $ no_incremental_arg $ cache_dir_arg $ cold_arg $ backend_arg
      $ joint_arg $ tile_candidates_arg)

(* ------------------------------------------------------------------ *)
(* cache *)

let cache_action_arg =
  let doc = "$(b,stats) summarizes the store; $(b,clear) removes it." in
  Arg.(
    required
    & pos 0 (some (enum [ ("stats", `Stats); ("clear", `Clear) ])) None
    & info [] ~docv:"ACTION" ~doc)

let cache action cache_dir =
  let dir =
    match cache_dir with
    | Some d -> d
    | None ->
        prerr_endline
          "defacto: cache: specify --cache-dir (or set DEFACTO_CACHE_DIR)";
        exit 1
  in
  match action with
  | `Stats ->
      let s = Engine.Persist.stats ~cache_dir:dir in
      if not s.Engine.Persist.ds_exists then
        Format.printf "%s: no store@." dir
      else begin
        Format.printf "%s: %d configuration(s), %d byte(s)@." dir
          (List.length s.Engine.Persist.ds_configs)
          s.Engine.Persist.ds_bytes;
        List.iter
          (fun (c : Engine.Persist.config_stats) ->
            Format.printf
              "  %s: %d point(s) in %d kernel file(s), %d memo shape(s)%s@."
              c.Engine.Persist.cs_key c.Engine.Persist.cs_points
              c.Engine.Persist.cs_point_files
              (max 0 c.Engine.Persist.cs_memo_shapes)
              (if c.Engine.Persist.cs_invalid > 0 then
                 Printf.sprintf ", %d invalid file(s)"
                   c.Engine.Persist.cs_invalid
               else "");
            match c.Engine.Persist.cs_config with
            | Some cfg -> Format.printf "    %s@." cfg
            | None -> ())
          s.Engine.Persist.ds_configs
      end
  | `Clear ->
      let removed, kept = Engine.Persist.clear ~cache_dir:dir in
      Format.printf "%s: removed %d file(s)%s@." dir removed
        (if kept > 0 then
           Printf.sprintf ", kept %d unrecognized file(s)" kept
         else "")

let cache_cmd =
  let doc =
    "Inspect ($(b,stats)) or remove ($(b,clear)) a persistent evaluation \
     store. $(b,clear) only deletes files matching the store's own layout, \
     so a mistyped directory cannot lose foreign data."
  in
  Cmd.v (Cmd.info "cache" ~doc) Term.(const cache $ cache_action_arg $ cache_dir_arg)

(* ------------------------------------------------------------------ *)
(* check *)

let format_arg =
  let doc = "Output format: $(b,human) or $(b,json)." in
  Arg.(
    value
    & opt (enum [ ("human", `Human); ("json", `Json) ]) `Human
    & info [ "format" ] ~docv:"FMT" ~doc)

let no_validate_arg =
  let doc =
    "Skip the (more expensive) per-stage pipeline translation validation; \
     run only the structural, bounds, dataflow and legality passes."
  in
  Arg.(value & flag & info [ "no-validate" ] ~doc)

let fail_on_arg =
  let doc =
    "Severity that makes the exit code 2: $(b,error) (the default — \
     warnings exit 1 as usual) or $(b,warning) (warnings exit 2 too, for \
     CI jobs that want to be strict)."
  in
  Arg.(
    value
    & opt
        (enum [ ("error", Check.Diag.Error); ("warning", Check.Diag.Warning) ])
        Check.Diag.Error
    & info [ "fail-on" ] ~docv:"SEV" ~doc)

(* Exit-code discipline (asserted by the integration tests and relied on
   by CI): 0 when clean (at most informational findings), 1 when the
   worst finding is a warning, 2 on any error. [--fail-on=warning]
   promotes warnings to exit 2. *)
let check kernel file unroll format no_validate fail_on =
  (* A kernel that does not even load (front-end rejection) is an error
     by the same discipline. *)
  let k =
    match load_kernel kernel file with
    | Ok k -> k
    | Error msg ->
        prerr_endline ("defacto: " ^ msg);
        exit 2
  in
  let options =
    match parse_vector unroll with
    | [] -> None
    | v -> Some { Transform.Pipeline.default with Transform.Pipeline.vector = v }
  in
  let config =
    { Check.Run.default with Check.Run.options; validate = not no_validate }
  in
  let ds = Check.Run.all ~config k in
  (match format with
  | `Human -> print_string (Check.Run.render_human ?file ~kernel:k.Ir.Ast.k_name ds)
  | `Json ->
      print_endline
        (Check.Run.render_json ?file ~fail_on
           ~passes:(Check.Run.pass_names config) ~kernel:k.Ir.Ast.k_name ds));
  exit (Check.Run.exit_code ~fail_on ds)

let check_cmd =
  let doc =
    "Statically check a kernel: structural well-formedness, affine bounds, \
     flow-graph dataflow facts (uninitialized reads, dead stores), \
     transform legality, and per-stage translation validation of the \
     pipeline. Exits 0 when clean, 1 on warnings, 2 on errors (see \
     $(b,--fail-on))."
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const check $ kernel_arg $ file_arg $ unroll_arg $ format_arg
      $ no_validate_arg $ fail_on_arg)

(* ------------------------------------------------------------------ *)
(* vhdl *)

let vhdl kernel file unroll memories output =
  let k = or_die (load_kernel kernel file) in
  let opts = { Transform.Pipeline.default with vector = parse_vector unroll } in
  let r = Transform.Pipeline.apply opts k in
  let text = Vhdl.Emit.emit_with_layout ~num_memories:memories r.Transform.Pipeline.kernel in
  with_output output (fun fmt -> Format.fprintf fmt "%s" text)

let vhdl_cmd =
  let doc = "Emit behavioral VHDL for a design point (after data layout)." in
  Cmd.v (Cmd.info "vhdl" ~doc)
    Term.(const vhdl $ kernel_arg $ file_arg $ unroll_arg $ memories_arg $ output_arg)

(* ------------------------------------------------------------------ *)
(* simulate *)

let simulate kernel file non_pipelined memories unroll =
  let k = or_die (load_kernel kernel file) in
  let profile = make_profile ~non_pipelined ~memories in
  let ctx = Dse.Design.context ~profile k in
  let p = Dse.Design.evaluate ctx (parse_vector unroll) in
  let inputs = Kernels.test_inputs k in
  let sim = Hls.Sim.run ~inputs profile p.Dse.Design.kernel in
  let reference = Ir.Eval.observables (Ir.Eval.run ~inputs k) in
  let ok =
    List.for_all
      (fun (arr, data) -> List.assoc_opt arr sim.Hls.Sim.arrays = Some data)
      reference
  in
  Format.printf "design %a@." Dse.Design.pp_vector p.Dse.Design.vector;
  Format.printf
    "simulated %d cycles (estimator: %d); %d loads, %d stores issued (%d \
     suppressed by predication)@."
    sim.Hls.Sim.cycles p.Dse.Design.estimate.Hls.Estimate.cycles
    sim.Hls.Sim.dynamic_loads sim.Hls.Sim.dynamic_stores
    sim.Hls.Sim.stores_suppressed;
  Format.printf "datapath vs reference interpreter: %s@."
    (if ok then "IDENTICAL" else "MISMATCH");
  if not ok then exit 1

let simulate_cmd =
  let doc =
    "Execute the scheduled datapath cycle-faithfully and compare against the \
     reference interpreter."
  in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const simulate $ kernel_arg $ file_arg $ pipelined_arg $ memories_arg
      $ unroll_arg)

(* ------------------------------------------------------------------ *)
(* kernels *)

let kernels () =
  let show source name =
    let k =
      match Kernels.find name with
      | Some k -> k
      | None -> Option.get (Gallery.find name)
    in
    let spine = Ir.Loop_nest.spine k.Ir.Ast.k_body in
    Printf.printf "%-12s %-8s loops: %s\n" name source
      (String.concat ", "
         (List.map
            (fun (l : Ir.Ast.loop) ->
              Printf.sprintf "%s[%d..%d)" l.Ir.Ast.index l.Ir.Ast.lo
                l.Ir.Ast.hi)
            spine))
  in
  List.iter (show "paper") Kernels.names;
  List.iter (show "gallery") Gallery.names

let kernels_cmd =
  let doc = "List the built-in kernels (the paper's five benchmarks)." in
  Cmd.v (Cmd.info "kernels" ~doc) Term.(const kernels $ const ())

(* ------------------------------------------------------------------ *)

let main =
  let doc = "compiler-directed design space exploration for FPGA-based systems" in
  Cmd.group
    (Cmd.info "defacto" ~version:"1.0.0" ~doc)
    [
      explore_cmd;
      estimate_cmd;
      transform_cmd;
      space_cmd;
      cache_cmd;
      check_cmd;
      vhdl_cmd;
      simulate_cmd;
      kernels_cmd;
    ]

let () = exit (Cmd.eval main)
