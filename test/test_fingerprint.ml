(** Content-addressed scheduling tests: the DFG fingerprint must be
    invariant under scalar/array renaming and constant shifts (so
    iteration-shifted unroll copies collide) while separating blocks
    that schedule differently, and the tri-schedule memo keyed on it
    must be exact — estimates with and without the memo agree
    field-for-field on random kernels, every gallery kernel and full
    divisor lattices, and the simulated datapath is untouched. *)

open Ir
module B = Builder
module Design = Dse.Design
module Space = Dse.Space

(* ------------------------------------------------------------------ *)
(* Fingerprint invariance / separation on hand-built blocks *)

let fp_of (k : Ast.kernel) : string =
  let accesses = Analysis.Access.collect k.Ast.k_body in
  let cursor = Hls.Dfg.cursor_of accesses in
  let mem_of (a : Analysis.Access.t) = a.Analysis.Access.id mod 4 in
  let g = Hls.Dfg.of_block ~kernel:k ~mem_of ~cursor k.Ast.k_body in
  Hls.Dfg.fingerprint g

(** A saxpy-shaped straight-line block, parameterized by every name and
    by the (constant) element index — a renamed or index-shifted
    instance is exactly what unrolling produces. *)
let saxpy ?(elem = Dtype.int16) ~a ~x ~y ~s off =
  B.kernel "blk"
    ~arrays:[ Ast.array_decl ~elem x [ 16 ]; Ast.array_decl ~elem y [ 16 ] ]
    ~scalars:[ Ast.scalar_decl a; Ast.scalar_decl s ]
    [
      B.set s B.((var a * arr1 x (int off)) + arr1 y (int off));
      B.store1 y (B.int off) (B.var s);
    ]

let test_fingerprint_collides () =
  Alcotest.(check string) "renamed scalars and arrays collide"
    (fp_of (saxpy ~a:"a" ~x:"x" ~y:"y" ~s:"s" 0))
    (fp_of (saxpy ~a:"alpha" ~x:"xs" ~y:"ys" ~s:"acc" 0));
  Alcotest.(check string) "iteration-shifted constants collide"
    (fp_of (saxpy ~a:"a" ~x:"x" ~y:"y" ~s:"s" 0))
    (fp_of (saxpy ~a:"a" ~x:"x" ~y:"y" ~s:"s" 3))

let test_fingerprint_separates () =
  let base = fp_of (saxpy ~a:"a" ~x:"x" ~y:"y" ~s:"s" 0) in
  (* different operator class: x[0] + y[0] instead of a * x[0] + y[0] *)
  let add_only =
    B.kernel "blk"
      ~arrays:
        [
          Ast.array_decl ~elem:Dtype.int16 "x" [ 16 ];
          Ast.array_decl ~elem:Dtype.int16 "y" [ 16 ];
        ]
      ~scalars:[ Ast.scalar_decl "a"; Ast.scalar_decl "s" ]
      [
        B.set "s" B.(arr1 "x" (int 0) + arr1 "y" (int 0));
        B.store1 "y" (B.int 0) (B.var "s");
      ]
  in
  Alcotest.(check bool) "different operator class separates" false
    (base = fp_of add_only);
  (* different operand width *)
  Alcotest.(check bool) "different element width separates" false
    (base = fp_of (saxpy ~elem:Dtype.int32 ~a:"a" ~x:"x" ~y:"y" ~s:"s" 0));
  (* extra statement *)
  let wider =
    B.kernel "blk"
      ~arrays:
        [
          Ast.array_decl ~elem:Dtype.int16 "x" [ 16 ];
          Ast.array_decl ~elem:Dtype.int16 "y" [ 16 ];
        ]
      ~scalars:[ Ast.scalar_decl "a"; Ast.scalar_decl "s" ]
      [
        B.set "s" B.((var "a" * arr1 "x" (int 0)) + arr1 "y" (int 0));
        B.store1 "y" (B.int 0) (B.var "s");
        B.store1 "x" (B.int 1) (B.var "s");
      ]
  in
  Alcotest.(check bool) "extra store separates" false (base = fp_of wider)

(* ------------------------------------------------------------------ *)
(* Exactness: memoized estimate = plain estimate, field for field *)

let estimates_identical (a : Hls.Estimate.t) (b : Hls.Estimate.t) =
  compare a b = 0

let prop_memo_exact_random =
  Helpers.qtest "memoized estimate = plain estimate (random kernels)"
    ~count:60
    QCheck2.Gen.(
      Helpers.gen_kernel >>= fun k ->
      Helpers.gen_vector_for k >>= fun v -> return (k, v))
    (fun (k, vector) ->
      let r = Transform.Pipeline.apply { Transform.Pipeline.default with vector } k in
      let tk = r.Transform.Pipeline.kernel in
      let profile = Hls.Estimate.default_profile () in
      let plain = Hls.Estimate.estimate profile tk in
      let memo = Hls.Schedule.memo_create () in
      let cold = Hls.Estimate.estimate ~sched_memo:memo profile tk in
      let warm = Hls.Estimate.estimate ~sched_memo:memo profile tk in
      estimates_identical plain cold && estimates_identical plain warm)

let test_memo_exact_gallery () =
  List.iter
    (fun pipelined ->
      List.iter
        (fun name ->
          let k = Option.get (Kernels.find name) in
          let profile = Hls.Estimate.default_profile ~pipelined () in
          (* one memo across all vectors of the kernel: later points hit
             entries populated by earlier ones, which is the production
             access pattern *)
          let memo = Hls.Schedule.memo_create () in
          List.iter
            (fun vector ->
              let r =
                Transform.Pipeline.apply
                  { Transform.Pipeline.default with vector } k
              in
              let tk = r.Transform.Pipeline.kernel in
              let plain = Hls.Estimate.estimate profile tk in
              let memoized = Hls.Estimate.estimate ~sched_memo:memo profile tk in
              Alcotest.(check bool)
                (Printf.sprintf "%s %s pipelined=%b" name
                   (Helpers.vector_to_string vector) pipelined)
                true
                (estimates_identical plain memoized))
            [ []; [ ("i", 2) ]; [ ("j", 2) ]; [ ("i", 2); ("j", 2) ];
              [ ("i", 4); ("j", 4) ]; [ ("i", 3); ("j", 5) ] ])
        Kernels.names)
    [ true; false ]

let test_memo_exact_lattice () =
  List.iter
    (fun name ->
      let k = Option.get (Kernels.find name) in
      let profile = Hls.Estimate.default_profile () in
      let ctx = Design.context ~profile k in
      let sp = Space.sweep ~max_product:16 ~jobs:1 ctx in
      (* block shapes repeat across these kernels' lattices even at a
         small product bound; deeper nests only share shapes at larger
         products, which the bench covers *)
      if List.mem name [ "fir"; "mm"; "pat" ] then
        Alcotest.(check bool)
          (name ^ ": the sweep hit the scheduler memo")
          true
          (ctx.Design.stats.Design.sched_memo_hits > 0);
      List.iter
        (fun (pt : Space.sweep_point) ->
          let plain =
            Hls.Estimate.estimate ctx.Design.profile pt.Space.point.Design.kernel
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s %s" name (Helpers.vector_to_string pt.Space.vector))
            true
            (estimates_identical plain pt.Space.point.Design.estimate))
        sp.Space.points)
    Kernels.names

let test_warm_run_served_from_memo () =
  let k = Option.get (Kernels.find "fir") in
  let profile = Hls.Estimate.default_profile () in
  let r =
    Transform.Pipeline.apply
      { Transform.Pipeline.default with vector = [ ("i", 4); ("j", 4) ] }
      k
  in
  let tk = r.Transform.Pipeline.kernel in
  let memo = Hls.Schedule.memo_create () in
  let cold = Hls.Estimate.fresh_timers () in
  ignore (Hls.Estimate.estimate ~sched_memo:memo ~timers:cold profile tk);
  let shapes = Hls.Schedule.memo_size memo in
  Alcotest.(check bool) "cold run memoized some shapes" true (shapes > 0);
  ignore cold;
  let warm = Hls.Estimate.fresh_timers () in
  ignore (Hls.Estimate.estimate ~sched_memo:memo ~timers:warm profile tk);
  Alcotest.(check int) "warm run adds no shapes" shapes
    (Hls.Schedule.memo_size memo);
  Alcotest.(check bool) "warm run schedules nothing fresh" true
    (warm.Hls.Estimate.sched_memo_hits >= shapes)

(* ------------------------------------------------------------------ *)
(* The simulated datapath is independent of the memo *)

let test_sim_unchanged_under_memo () =
  List.iter
    (fun name ->
      let k = Option.get (Kernels.find name) in
      let profile = Hls.Estimate.default_profile () in
      let ctx = Design.context ~profile k in
      let inputs = Kernels.test_inputs k in
      let reference = Eval.observables (Eval.run ~inputs k) in
      List.iter
        (fun vector ->
          (* evaluate through the context, so the estimate comes out of
             the shared fingerprint memo *)
          let pt = Design.evaluate ctx vector in
          let sim = Hls.Sim.run ~inputs profile pt.Design.kernel in
          Alcotest.(check bool)
            (Printf.sprintf "%s %s values" name (Helpers.vector_to_string vector))
            true
            (List.for_all
               (fun (arr, data) ->
                 List.assoc_opt arr sim.Hls.Sim.arrays = Some data)
               reference);
          Alcotest.(check int)
            (Printf.sprintf "%s %s cycles" name (Helpers.vector_to_string vector))
            pt.Design.estimate.Hls.Estimate.cycles sim.Hls.Sim.cycles)
        [ []; [ ("i", 2) ]; [ ("i", 2); ("j", 2) ]; [ ("i", 4); ("j", 4) ] ])
    Kernels.names

let () =
  Alcotest.run "fingerprint"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "renaming and shifts collide" `Quick
            test_fingerprint_collides;
          Alcotest.test_case "structural differences separate" `Quick
            test_fingerprint_separates;
        ] );
      ( "memo-exactness",
        [
          prop_memo_exact_random;
          Alcotest.test_case "every gallery kernel" `Quick test_memo_exact_gallery;
          Alcotest.test_case "full divisor lattices" `Quick test_memo_exact_lattice;
          Alcotest.test_case "warm run served from the memo" `Quick
            test_warm_run_served_from_memo;
        ] );
      ( "sim",
        [
          Alcotest.test_case "datapath unchanged under memoization" `Quick
            test_sim_unchanged_under_memo;
        ] );
    ]
