(** Datapath simulator tests: the scheduled hardware graphs must compute
    exactly what the source program computes (cross-checked against the
    reference interpreter), with the same cycle count the estimator
    reports, for every kernel under many unroll vectors and both memory
    models. *)

open Ir

let sim_matches ?(pipelined = true) name vector =
  let k = Option.get (Kernels.find name) in
  let r = Transform.Pipeline.apply { Transform.Pipeline.default with vector } k in
  let transformed = r.Transform.Pipeline.kernel in
  let profile = Hls.Estimate.default_profile ~pipelined () in
  let inputs = Kernels.test_inputs k in
  let sim = Hls.Sim.run ~inputs profile transformed in
  let reference = Eval.observables (Eval.run ~inputs k) in
  let est = Hls.Estimate.estimate profile transformed in
  let values_ok =
    List.for_all
      (fun (arr, data) ->
        match List.assoc_opt arr sim.Hls.Sim.arrays with
        | Some d -> d = data
        | None -> false)
      reference
  in
  (values_ok, sim.Hls.Sim.cycles = est.Hls.Estimate.cycles, sim)

let test_values_all_kernels () =
  List.iter
    (fun pipelined ->
      List.iter
        (fun name ->
          List.iter
            (fun vector ->
              let values_ok, _, _ = sim_matches ~pipelined name vector in
              Alcotest.(check bool)
                (Printf.sprintf "%s %s %b values" name
                   (Helpers.vector_to_string vector) pipelined)
                true values_ok)
            [ []; [ ("i", 2) ]; [ ("j", 2) ]; [ ("i", 2); ("j", 2) ];
              [ ("i", 3); ("j", 5) ] ])
        Kernels.names)
    [ true; false ]

let test_cycles_match_estimator () =
  List.iter
    (fun name ->
      List.iter
        (fun vector ->
          let _, cycles_ok, _ = sim_matches name vector in
          Alcotest.(check bool)
            (Printf.sprintf "%s %s cycles" name (Helpers.vector_to_string vector))
            true cycles_ok)
        [ []; [ ("i", 2); ("j", 2) ]; [ ("i", 4); ("j", 4) ] ])
    Kernels.names

let test_guarded_stores_suppressed () =
  (* A kernel with a data-dependent store: the predicated datapath must
     suppress the store on not-taken paths and still agree with the
     interpreter. *)
  let src =
    {| short x[32]; short y[32];
       for (i = 0; i < 32; i++)
         if (x[i] > 0) y[i] = x[i]; else y[i] = 0 - x[i]; |}
  in
  let k = Result.get_ok (Frontend.Parser.kernel_of_string_res ~name:"absval" src) in
  let profile = Hls.Estimate.default_profile () in
  let inputs = Kernels.test_inputs k in
  (* simulate the *raw* kernel: the pipeline's CSE would legitimately
     rewrite the two guarded stores into one unconditional store *)
  let sim = Hls.Sim.run ~inputs profile k in
  let reference = Eval.observables (Eval.run ~inputs k) in
  Alcotest.(check bool) "values" true
    (List.for_all
       (fun (arr, data) -> List.assoc_opt arr sim.Hls.Sim.arrays = Some data)
       reference);
  Alcotest.(check bool) "some stores were suppressed" true
    (sim.Hls.Sim.stores_suppressed > 0)

let test_dynamic_counts () =
  (* FIR at (2,2): peeled first j iteration loads the 32 C coefficients;
     the steady state loads 3 S words per iteration. *)
  let _, _, sim = sim_matches "fir" [ ("j", 2); ("i", 2) ] in
  Alcotest.(check bool) "plausible dynamic load count" true
    (sim.Hls.Sim.dynamic_loads > 1000 && sim.Hls.Sim.dynamic_loads < 4000);
  (* one store per output element (redundant writes eliminated) *)
  Alcotest.(check int) "64 output stores" 64 sim.Hls.Sim.dynamic_stores

let test_sim_random_kernels =
  Helpers.qtest "sim agrees with eval on random kernels" ~count:60
    QCheck2.Gen.(
      Helpers.gen_kernel >>= fun k ->
      Helpers.gen_vector_for k >>= fun v -> return (k, v))
    (fun (k, v) ->
      let r = Transform.Pipeline.apply { Transform.Pipeline.default with vector = v } k in
      let profile = Hls.Estimate.default_profile () in
      let inputs = Helpers.inputs_for k in
      let sim = Hls.Sim.run ~inputs profile r.Transform.Pipeline.kernel in
      let reference = Eval.observables (Eval.run ~inputs k) in
      List.for_all
        (fun (arr, data) -> List.assoc_opt arr sim.Hls.Sim.arrays = Some data)
        reference)

let () =
  Alcotest.run "sim"
    [
      ( "datapath",
        [
          Alcotest.test_case "values, all kernels" `Quick test_values_all_kernels;
          Alcotest.test_case "cycles match estimator" `Quick
            test_cycles_match_estimator;
          Alcotest.test_case "guarded stores" `Quick test_guarded_stores_suppressed;
          Alcotest.test_case "dynamic access counts" `Quick test_dynamic_counts;
          test_sim_random_kernels;
        ] );
    ]
