(** Design-space-exploration tests: saturation analysis, the Figure-2
    search on all five kernels under both memory models, the space
    oracle, and the paper's selection-quality claims. *)

module Design = Dse.Design
module Search = Dse.Search
module Saturation = Dse.Saturation
module Space = Dse.Space

let ctx ?(pipelined = true) ?capacity name =
  let k = Option.get (Kernels.find name) in
  let profile = Hls.Estimate.default_profile ~pipelined () in
  let c = Design.context ~profile k in
  match capacity with None -> c | Some capacity -> { c with Design.capacity }

let saturation name =
  let k = Option.get (Kernels.find name) in
  Saturation.compute ~num_memories:4 k

(* ------------------------------------------------------------------ *)
(* Saturation *)

let test_psat () =
  List.iter
    (fun name ->
      let s = saturation name in
      Alcotest.(check int) (name ^ " Psat") 4 s.Saturation.psat)
    Kernels.names

let test_eligible_loops () =
  (* MM: the innermost k loop carries no steady-state memory access, so
     only i and j are eligible — the paper's restriction to the two
     outermost loops. *)
  let s = saturation "mm" in
  Alcotest.(check (list string)) "mm eligible" [ "i"; "j" ] s.Saturation.eligible;
  let s = saturation "fir" in
  Alcotest.(check (list string)) "fir eligible" [ "j"; "i" ] s.Saturation.eligible

let test_sat_set () =
  let c = ctx "fir" in
  let s = saturation "fir" in
  let sat = Saturation.sat_set c s in
  Alcotest.(check int) "three vectors of product 4" 3 (List.length sat);
  List.iter
    (fun v -> Alcotest.(check int) "product" 4 (Design.product v))
    sat

let test_sat_i () =
  let c = ctx "fir" in
  let s = saturation "fir" in
  (match Saturation.sat_i c s "j" with
  | Some v -> Alcotest.(check int) "all factor on j" 4 (List.assoc "j" v)
  | None -> Alcotest.fail "Sat_j must exist for FIR");
  (* JAC: trips of 30 cannot carry a lone factor of 4 *)
  let cj = ctx "jac" in
  let sj = saturation "jac" in
  Alcotest.(check bool) "no Sat_i for JAC" true (Saturation.sat_i cj sj "i" = None)

(* ------------------------------------------------------------------ *)
(* The Figure-2 search *)

let test_uinit_uses_dependence_free_loop () =
  (* FIR's j loop carries no dependence: Uinit = Sat_j. *)
  let r = Search.run (ctx "fir") in
  Alcotest.(check (option int)) "j gets the factor" (Some 4)
    (List.assoc_opt "j" r.Search.uinit);
  Alcotest.(check (option int)) "i stays 1" (Some 1)
    (List.assoc_opt "i" r.Search.uinit)

let test_search_all_kernels () =
  List.iter
    (fun pipelined ->
      List.iter
        (fun name ->
          let c = ctx ~pipelined name in
          let r = Search.run c in
          let sel = r.Search.selected in
          Alcotest.(check bool)
            (Printf.sprintf "%s %b fits" name pipelined)
            true
            (Design.space sel <= c.Design.capacity);
          let base = Design.evaluate c (Design.ubase c) in
          Alcotest.(check bool)
            (Printf.sprintf "%s %b speeds up" name pipelined)
            true
            (Design.cycles sel < Design.cycles base))
        Kernels.names)
    [ true; false ]

let test_search_visits_few () =
  List.iter
    (fun name ->
      let c = ctx name in
      let r = Search.run c in
      let visited = Search.designs_evaluated r in
      let sp = Space.sweep ~max_product:1 c in
      (* paper-style space size: product of eligible trip counts *)
      let frac = Space.fraction_searched sp ~visited in
      Alcotest.(check bool)
        (Printf.sprintf "%s searches under 5%% (%d of %d)" name visited
           sp.Space.total_designs)
        true (frac < 0.05))
    Kernels.names

let test_memory_bound_stops_at_uinit () =
  (* Non-pipelined JAC is memory bound at the saturation point: the
     algorithm stops there (the paper's non-pipelined FIR behaviour). *)
  let c = ctx ~pipelined:false "jac" in
  let r = Search.run c in
  Alcotest.(check bool) "selected = Uinit" true
    (Design.vector_equal r.Search.selected.Design.vector r.Search.uinit)

let test_capacity_constraint () =
  (* With a small device (between the baseline's and the saturation
     point's footprint), the search must return a fitting design. *)
  let c = ctx ~capacity:4500 "mm" in
  let base = Design.evaluate c (Design.ubase c) in
  Alcotest.(check bool) "baseline fits the test device" true
    (Design.space base <= 4500);
  let r = Search.run c in
  Alcotest.(check bool) "fits small device" true
    (Design.space r.Search.selected <= 4500)

let test_search_deterministic () =
  let r1 = Search.run (ctx "sobel") in
  let r2 = Search.run (ctx "sobel") in
  Alcotest.(check bool) "same selection" true
    (Design.vector_equal r1.Search.selected.Design.vector
       r2.Search.selected.Design.vector)

(* ------------------------------------------------------------------ *)
(* Space oracle and selection quality *)

let test_space_sweep () =
  let c = ctx "pat" in
  let sp = Space.sweep c in
  (* PAT: j in {1,7,49}, i in {1,2,4,8,16} -> 15 divisor points *)
  Alcotest.(check int) "divisor lattice size" 15 (List.length sp.Space.points);
  Alcotest.(check int) "paper-style space size" (49 * 16) sp.Space.total_designs

let test_selected_close_to_best () =
  (* The headline claim, on the pipelined configuration: the selected
     design's cycles are within a small factor of the best fitting
     design in the whole space. *)
  List.iter
    (fun name ->
      let c = ctx name in
      let r = Search.run c in
      let sp = Space.sweep ~max_product:256 c in
      match Space.best_fitting c sp with
      | None -> Alcotest.fail "no fitting design"
      | Some best ->
          let ratio =
            float_of_int (Design.cycles r.Search.selected)
            /. float_of_int (Design.cycles best.Space.point)
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s within 4x of best (%.2f)" name ratio)
            true (ratio <= 4.0))
    Kernels.names

let test_smallest_comparable () =
  let c = ctx "fir" in
  let sp = Space.sweep ~max_product:64 c in
  match Space.smallest_comparable c sp with
  | None -> Alcotest.fail "no comparable design"
  | Some sc -> (
      match Space.best_fitting c sp with
      | None -> Alcotest.fail "no best"
      | Some best ->
          Alcotest.(check bool) "not larger than best" true
            (Design.space sc.Space.point <= Design.space best.Space.point))

let test_balance_monotone_to_saturation () =
  (* Observation 3 along multiples of Psat on FIR's dependence-free
     loop: balance does not increase once past the saturation point. *)
  let c = ctx "fir" in
  let b v = Design.balance (Design.evaluate c v) in
  let at_sat = b [ ("j", 4); ("i", 1) ] in
  let beyond = b [ ("j", 16); ("i", 1) ] in
  let far = b [ ("j", 64); ("i", 1) ] in
  Alcotest.(check bool) "non-increasing beyond saturation" true
    (beyond <= at_sat +. 0.2 && far <= beyond +. 0.2)

let () =
  Alcotest.run "dse"
    [
      ( "saturation",
        [
          Alcotest.test_case "Psat" `Quick test_psat;
          Alcotest.test_case "eligible loops" `Quick test_eligible_loops;
          Alcotest.test_case "saturation set" `Quick test_sat_set;
          Alcotest.test_case "Sat_i" `Quick test_sat_i;
        ] );
      ( "search",
        [
          Alcotest.test_case "Uinit from dependences" `Quick
            test_uinit_uses_dependence_free_loop;
          Alcotest.test_case "all kernels, both memories" `Quick
            test_search_all_kernels;
          Alcotest.test_case "tiny fraction searched" `Quick test_search_visits_few;
          Alcotest.test_case "memory-bound stops at Uinit" `Quick
            test_memory_bound_stops_at_uinit;
          Alcotest.test_case "capacity constraint" `Quick test_capacity_constraint;
          Alcotest.test_case "deterministic" `Quick test_search_deterministic;
        ] );
      ( "space",
        [
          Alcotest.test_case "sweep" `Quick test_space_sweep;
          Alcotest.test_case "selected close to best" `Slow
            test_selected_close_to_best;
          Alcotest.test_case "smallest comparable" `Quick test_smallest_comparable;
          Alcotest.test_case "balance monotonicity" `Quick
            test_balance_monotone_to_saturation;
        ] );
    ]
