(** Unit and property tests for the IR: data types, affine forms, the
    pretty printer, loop-nest utilities and the reference interpreter. *)

open Ir
module B = Builder

(* ------------------------------------------------------------------ *)
(* Dtype *)

let test_wrap () =
  Alcotest.(check int) "int8 positive wrap" (-128) (Dtype.wrap Dtype.int8 128);
  Alcotest.(check int) "int8 identity" 127 (Dtype.wrap Dtype.int8 127);
  Alcotest.(check int) "int8 negative" (-1) (Dtype.wrap Dtype.int8 255);
  Alcotest.(check int) "uint8 wrap" 1 (Dtype.wrap Dtype.uint8 257);
  Alcotest.(check int) "uint8 negative wraps" 255 (Dtype.wrap Dtype.uint8 (-1));
  Alcotest.(check int) "int16" (-32768) (Dtype.wrap Dtype.int16 32768)

let test_range () =
  Alcotest.(check (pair int int)) "int8" (-128, 127) (Dtype.range Dtype.int8);
  Alcotest.(check (pair int int)) "uint8" (0, 255) (Dtype.range Dtype.uint8)

let test_join () =
  let j = Dtype.join Dtype.int8 Dtype.uint16 in
  Alcotest.(check int) "width" 16 (Dtype.bits j);
  Alcotest.(check bool) "signedness" true (Dtype.is_signed j)

let test_make_invalid () =
  Alcotest.check_raises "zero width" (Invalid_argument "Dtype.make: unsupported width 0")
    (fun () -> ignore (Dtype.make ~bits:0 ~signed:true))

(* ------------------------------------------------------------------ *)
(* Affine *)

let affine = Alcotest.testable Affine.pp Affine.equal

let test_affine_of_expr () =
  let e = B.((B.int 2 * var "i") + var "j" + B.int 3) in
  match Affine.of_expr e with
  | None -> Alcotest.fail "should be affine"
  | Some f ->
      Alcotest.(check int) "coeff i" 2 (Affine.coeff f "i");
      Alcotest.(check int) "coeff j" 1 (Affine.coeff f "j");
      Alcotest.(check int) "const" 3 (Affine.const_part f)

let test_affine_nonaffine () =
  Alcotest.(check bool) "i*j rejected" true
    (Affine.of_expr B.(var "i" * var "j") = None);
  Alcotest.(check bool) "array read rejected" true
    (Affine.of_expr B.(arr1 "a" (var "i")) = None);
  Alcotest.(check bool) "division folds when exact" true
    (Affine.of_expr B.((B.int 4 * var "i") / B.int 2)
    = Some (Affine.var ~coeff:2 "i"));
  Alcotest.(check bool) "inexact division rejected" true
    (Affine.of_expr B.(var "i" / B.int 2) = None)

let test_affine_algebra () =
  let f = Affine.make [ ("i", 2); ("j", -1) ] 5 in
  let g = Affine.make [ ("i", -2); ("k", 3) ] 1 in
  let s = Affine.add f g in
  Alcotest.(check int) "i cancels" 0 (Affine.coeff s "i");
  Alcotest.(check int) "j stays" (-1) (Affine.coeff s "j");
  Alcotest.(check int) "k joins" 3 (Affine.coeff s "k");
  Alcotest.(check int) "consts add" 6 (Affine.const_part s);
  Alcotest.check affine "sub self is zero" Affine.zero (Affine.sub f f);
  Alcotest.check affine "scale" (Affine.make [ ("i", 4); ("j", -2) ] 10) (Affine.scale 2 f)

let test_affine_subst () =
  let f = Affine.make [ ("i", 2); ("j", 1) ] 1 in
  (* i := 3k + 4 *)
  let s = Affine.subst f "i" (Affine.make [ ("k", 3) ] 4) in
  Alcotest.check affine "substituted"
    (Affine.make [ ("j", 1); ("k", 6) ] 9)
    s

let test_uniformly_generated () =
  let f = Affine.make [ ("i", 1); ("j", 1) ] 0 in
  let g = Affine.make [ ("i", 1); ("j", 1) ] 2 in
  let h = Affine.make [ ("i", 2) ] 0 in
  Alcotest.(check bool) "ug" true (Affine.uniformly_generated f g);
  Alcotest.(check bool) "distance" true (Affine.ug_distance f g = Some 2);
  Alcotest.(check bool) "not ug" false (Affine.uniformly_generated f h)

let prop_affine_roundtrip =
  Helpers.qtest "affine to_expr/of_expr roundtrip"
    QCheck2.Gen.(
      let* terms =
        list_size (int_range 0 3)
          (pair (oneofl [ "i"; "j"; "k" ]) (int_range (-4) 4))
      in
      let* const = int_range (-10) 10 in
      return (Affine.make terms const))
    (fun f ->
      match Affine.of_expr (Affine.to_expr f) with
      | Some f' -> Affine.equal f f'
      | None -> false)

let prop_affine_eval_linear =
  Helpers.qtest "affine add commutes with eval"
    QCheck2.Gen.(
      let gen_aff =
        let* terms =
          list_size (int_range 0 3)
            (pair (oneofl [ "i"; "j" ]) (int_range (-4) 4))
        in
        let* const = int_range (-10) 10 in
        return (Affine.make terms const)
      in
      triple gen_aff gen_aff (pair (int_range (-5) 5) (int_range (-5) 5)))
    (fun (f, g, (vi, vj)) ->
      let env = function "i" -> vi | "j" -> vj | _ -> 0 in
      Affine.eval ~env (Affine.add f g) = Affine.eval ~env f + Affine.eval ~env g)

(* ------------------------------------------------------------------ *)
(* Loop nest utilities *)

let fir () = Option.get (Kernels.find "fir")

let test_spine () =
  let k = fir () in
  Alcotest.(check (list string)) "spine" [ "j"; "i" ] (Loop_nest.spine_indices k.k_body);
  Alcotest.(check int) "total iterations" (64 * 32) (Loop_nest.total_iterations k.k_body)

let test_trip () =
  Alcotest.(check int) "basic" 10
    (Ast.loop_trip { index = "i"; lo = 0; hi = 10; step = 1; body = []; l_span = None });
  Alcotest.(check int) "strided" 5
    (Ast.loop_trip { index = "i"; lo = 0; hi = 10; step = 2; body = []; l_span = None });
  Alcotest.(check int) "uneven stride rounds up" 4
    (Ast.loop_trip { index = "i"; lo = 0; hi = 10; step = 3; body = []; l_span = None });
  Alcotest.(check int) "empty" 0
    (Ast.loop_trip { index = "i"; lo = 5; hi = 5; step = 1; body = []; l_span = None })

let test_iteration_vectors () =
  let loops =
    [
      { Ast.index = "i"; lo = 0; hi = 4; step = 2; body = []; l_span = None };
      { Ast.index = "j"; lo = 1; hi = 3; step = 1; body = []; l_span = None };
    ]
  in
  Alcotest.(check (list (list int)))
    "lexicographic order"
    [ [ 0; 1 ]; [ 0; 2 ]; [ 2; 1 ]; [ 2; 2 ] ]
    (Loop_nest.iteration_vectors loops)

let test_validate_rejects () =
  Alcotest.(check bool) "nonpositive step raises" true
    (try
       ignore
         (B.kernel "bad" [ Ast.For { index = "i"; lo = 0; hi = 4; step = 0; body = []; l_span = None } ]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Pretty printer *)

let test_pretty_precedence () =
  Alcotest.(check string) "mul binds tighter" "a + b * c"
    (Pretty.expr_to_string B.(var "a" + (var "b" * var "c")));
  Alcotest.(check string) "parens for re-associated sub" "a * (b - c)"
    (Pretty.expr_to_string B.(var "a" * (var "b" - var "c")));
  Alcotest.(check string) "comparison chain" "a < b && c >= 1"
    (Pretty.expr_to_string B.((var "a" < var "b") && (var "c" >= B.int 1)))

let test_pretty_roundtrip_kernels () =
  (* Pretty-printed built-ins parse back and evaluate identically. *)
  List.iter
    (fun name ->
      let k = Option.get (Kernels.find name) in
      let src = Pretty.kernel_to_string k in
      match Frontend.Parser.kernel_of_string_res ~name src with
      | Error msg -> Alcotest.failf "%s does not reparse: %s" name msg
      | Ok k' ->
          let inputs = Kernels.test_inputs k in
          Helpers.check_equiv ~inputs ~reference:k k' (name ^ " roundtrip"))
    Kernels.names

(* ------------------------------------------------------------------ *)
(* Interpreter *)

let test_eval_fir_small () =
  (* 4-tap FIR against a hand-computed expectation. *)
  let k =
    B.kernel "t"
      ~arrays:[ Ast.array_decl "s" [ 6 ]; Ast.array_decl "c" [ 2 ]; Ast.array_decl "d" [ 4 ] ]
      [
        B.loop "j" 0 4
          [ B.loop "i" 0 2 [ B.store1 "d" B.(var "j")
                B.(arr1 "d" (var "j") + (arr1 "s" (var "i" + var "j") * arr1 "c" (var "i"))) ] ];
      ]
  in
  let s = [| 1; 2; 3; 4; 5; 6 |] and c = [| 10; 1 |] in
  let st = Eval.run ~inputs:[ ("s", s); ("c", c) ] k in
  let d = Option.get (Eval.array_value st "d") in
  Alcotest.(check (array int)) "fir result" [| 12; 23; 34; 45 |] d

let test_eval_rotate () =
  let k =
    B.kernel "t"
      ~scalars:[ Ast.scalar_decl "a"; Ast.scalar_decl "b"; Ast.scalar_decl "c" ]
      ~arrays:[ Ast.array_decl "o" [ 3 ] ]
      [
        B.set "a" (B.int 1);
        B.set "b" (B.int 2);
        B.set "c" (B.int 3);
        B.rotate [ "a"; "b"; "c" ];
        B.store1 "o" (B.int 0) (B.var "a");
        B.store1 "o" (B.int 1) (B.var "b");
        B.store1 "o" (B.int 2) (B.var "c");
      ]
  in
  let st = Eval.run k in
  Alcotest.(check (array int)) "left rotation" [| 2; 3; 1 |]
    (Option.get (Eval.array_value st "o"))

let test_eval_out_of_bounds () =
  let k =
    B.kernel "t" ~arrays:[ Ast.array_decl "a" [ 4 ] ]
      [ B.store1 "a" (B.int 4) (B.int 1) ]
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Eval.run k);
       false
     with Eval.Out_of_bounds _ -> true)

let test_eval_division_by_zero () =
  let k =
    B.kernel "t" ~arrays:[ Ast.array_decl "a" [ 1 ] ]
      [ B.store1 "a" (B.int 0) B.(B.int 4 / B.int 0) ]
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Eval.run k);
       false
     with Eval.Division_by_zero _ -> true)

let test_eval_conditional () =
  let k =
    B.kernel "t" ~arrays:[ Ast.array_decl "a" [ 4 ] ]
      [
        B.for_ "i" 0 4 (fun i ->
            [ B.if_else B.(i < B.int 2)
                [ B.store1 "a" i (B.int 1) ]
                [ B.store1 "a" i B.(cond (i == B.int 2) (B.int 5) (B.int 9)) ] ]);
      ]
  in
  let st = Eval.run k in
  Alcotest.(check (array int)) "if and ternary" [| 1; 1; 5; 9 |]
    (Option.get (Eval.array_value st "a"))

let test_eval_wrapping_store () =
  let k =
    B.kernel "t" ~arrays:[ Ast.array_decl ~elem:Dtype.uint8 "a" [ 1 ] ]
      [ B.store1 "a" (B.int 0) (B.int 300) ]
  in
  let st = Eval.run k in
  Alcotest.(check (array int)) "store wraps to declared type" [| 44 |]
    (Option.get (Eval.array_value st "a"))

let test_eval_guard_short_circuit () =
  (* && must not evaluate the second operand when the first is false:
     here the second operand would divide by zero. *)
  let k =
    B.kernel "t" ~arrays:[ Ast.array_decl "a" [ 1 ] ]
      [
        B.if_
          B.((B.int 0 != B.int 0) && (B.int 1 / B.int 0 == B.int 0))
          [ B.store1 "a" (B.int 0) (B.int 1) ];
      ]
  in
  let st = Eval.run k in
  Alcotest.(check (array int)) "no store, no crash" [| 0 |]
    (Option.get (Eval.array_value st "a"))

let () =
  Alcotest.run "ir"
    [
      ( "dtype",
        [
          Alcotest.test_case "wrap" `Quick test_wrap;
          Alcotest.test_case "range" `Quick test_range;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "make rejects bad widths" `Quick test_make_invalid;
        ] );
      ( "affine",
        [
          Alcotest.test_case "of_expr" `Quick test_affine_of_expr;
          Alcotest.test_case "non-affine rejected" `Quick test_affine_nonaffine;
          Alcotest.test_case "algebra" `Quick test_affine_algebra;
          Alcotest.test_case "subst" `Quick test_affine_subst;
          Alcotest.test_case "uniformly generated" `Quick test_uniformly_generated;
          prop_affine_roundtrip;
          prop_affine_eval_linear;
        ] );
      ( "loop_nest",
        [
          Alcotest.test_case "spine" `Quick test_spine;
          Alcotest.test_case "trip counts" `Quick test_trip;
          Alcotest.test_case "iteration vectors" `Quick test_iteration_vectors;
          Alcotest.test_case "validate" `Quick test_validate_rejects;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "precedence" `Quick test_pretty_precedence;
          Alcotest.test_case "kernel roundtrip" `Quick test_pretty_roundtrip_kernels;
        ] );
      ( "eval",
        [
          Alcotest.test_case "small FIR" `Quick test_eval_fir_small;
          Alcotest.test_case "rotate" `Quick test_eval_rotate;
          Alcotest.test_case "out of bounds" `Quick test_eval_out_of_bounds;
          Alcotest.test_case "division by zero" `Quick test_eval_division_by_zero;
          Alcotest.test_case "conditionals" `Quick test_eval_conditional;
          Alcotest.test_case "wrapping stores" `Quick test_eval_wrapping_store;
          Alcotest.test_case "short circuit" `Quick test_eval_guard_short_circuit;
        ] );
    ]
