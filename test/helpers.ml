(** Shared test utilities: kernel equality checking through the reference
    interpreter, and a random generator of small, well-formed affine
    kernels for the semantics-preservation property tests. *)

open Ir

let vector_to_string v =
  String.concat "," (List.map (fun (i, u) -> Printf.sprintf "%s=%d" i u) v)

(** Run both kernels on the same inputs and compare every declared array
    of [reference]. [translate_in]/[translate_out] adapt inputs/outputs
    when the candidate uses a different data layout. *)
let equivalent ?(inputs = []) ?(translate_in = fun i -> i)
    ?(translate_out = fun o -> o) ~(reference : Ast.kernel)
    (candidate : Ast.kernel) : bool =
  let ref_out = Eval.observables (Eval.run ~inputs reference) in
  let cand_out =
    translate_out (Eval.observables (Eval.run ~inputs:(translate_in inputs) candidate))
  in
  List.for_all
    (fun (name, data) ->
      match List.assoc_opt name cand_out with
      | Some d -> d = data
      | None -> false)
    ref_out

let check_equiv ?inputs ?translate_in ?translate_out ~reference candidate msg =
  Alcotest.(check bool) msg true
    (equivalent ?inputs ?translate_in ?translate_out ~reference candidate)

(* ------------------------------------------------------------------ *)
(* Random affine kernels *)

(** A generated kernel always takes this shape: a 1-3 deep perfect nest
    over arrays with in-bounds affine accesses, computing sums/products
    of reads into an output array (possibly accumulating). Array sizes
    are derived from the maximum subscript value so evaluation never goes
    out of bounds. *)
let gen_kernel : Ast.kernel QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* depth = int_range 1 3 in
  let* trips = list_repeat depth (int_range 2 6) in
  let indices = List.filteri (fun i _ -> i < depth) [ "i"; "j"; "k" ] in
  let* n_in = int_range 1 2 in
  (* subscript form: one or two enclosing indices with coeff 1-2 plus an
     offset 0-3 *)
  let gen_sub =
    let* which = int_range 0 (depth - 1) in
    let* coeff = int_range 1 2 in
    let* use_second = bool in
    let* offset = int_range 0 3 in
    let second =
      if use_second && depth > 1 then [ (List.nth indices ((which + 1) mod depth), 1) ]
      else []
    in
    return (Affine.make ((List.nth indices which, coeff) :: second) offset)
  in
  let max_value (f : Affine.t) =
    List.fold_left
      (fun acc v ->
        let c = Affine.coeff f v in
        let pos = List.length (List.filter (fun i -> i = v) indices) in
        ignore pos;
        let idx = List.mapi (fun i x -> (x, i)) indices in
        let ti = List.assoc v idx in
        acc + (c * (List.nth trips ti - 1)))
      (Affine.const_part f) (Affine.vars f)
  in
  let* in_subs = list_repeat n_in gen_sub in
  let* out_sub = gen_sub in
  let arrays_in =
    List.mapi
      (fun i f ->
        Ast.array_decl ~elem:Dtype.int16 (Printf.sprintf "a%d" i) [ max_value f + 1 ])
      in_subs
  in
  let out_decl = Ast.array_decl ~elem:Dtype.int32 "out" [ max_value out_sub + 1 ] in
  let* accumulate = bool in
  let* use_mul = bool in
  let reads =
    List.mapi
      (fun i f -> Ast.Arr (Printf.sprintf "a%d" i, [ Affine.to_expr f ]))
      in_subs
  in
  let combine a b = if use_mul then Ast.Bin (Ast.Mul, a, b) else Ast.Bin (Ast.Add, a, b) in
  let rhs =
    match reads with
    | [] -> Ast.Int 1
    | r :: rest -> List.fold_left combine r rest
  in
  let out_ref = [ Affine.to_expr out_sub ] in
  let rhs = if accumulate then Ast.Bin (Ast.Add, Ast.Arr ("out", out_ref), rhs) else rhs in
  let body = [ Ast.Assign (Ast.Larr ("out", out_ref), rhs) ] in
  let nest =
    List.fold_right2
      (fun index trip inner ->
        [ Ast.For { Ast.index; lo = 0; hi = trip; step = 1; body = inner; l_span = None } ])
      indices trips body
  in
  return
    {
      Ast.k_name = "rand";
      k_arrays = arrays_in @ [ out_decl ];
      k_scalars = [];
      k_body = nest;
    }

(** Deterministic inputs for a generated kernel. *)
let inputs_for (k : Ast.kernel) = Kernels.test_inputs ~seed:7 k

(** Random unroll vector for a kernel's spine. *)
let gen_vector_for (k : Ast.kernel) : (string * int) list QCheck2.Gen.t =
  let open QCheck2.Gen in
  let spine = Loop_nest.spine k.k_body in
  let gens =
    List.map
      (fun (l : Ast.loop) ->
        let* u = int_range 1 (Ast.loop_trip l) in
        return (l.index, u))
      spine
  in
  flatten_l gens

let kernel_print k = Pretty.kernel_to_string k

(** Alcotest case from a QCheck2 property. *)
let qtest name ?(count = 100) gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count gen prop)
