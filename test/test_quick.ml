(** Two-tier estimation tests: the fused tri-mode scheduler must equal
    three independent single-mode runs, the analytical pre-estimator's
    lower bounds must be admissible (never exceed the full estimate),
    and pruned sweeps/searches must select the same designs as their
    exhaustive counterparts while synthesizing strictly fewer points. *)

open Ir
module B = Builder
module Dfg = Hls.Dfg
module Schedule = Hls.Schedule
module Estimate = Hls.Estimate
module Quick = Hls.Quick
module Design = Dse.Design
module Space = Dse.Space
module Search = Dse.Search

let sched_profiles =
  List.concat_map
    (fun pipelined ->
      List.map
        (fun chaining ->
          let p = Estimate.default_profile ~pipelined () in
          { Schedule.device = p.Estimate.device; mem = p.Estimate.mem; chaining })
        [ false; true ])
    [ true; false ]

(* ------------------------------------------------------------------ *)
(* Fused tri-mode scheduler == three independent runs *)

let tri_equals_three_runs (p : Schedule.profile) (g : Dfg.t) : bool =
  let t = Schedule.run_tri p g in
  t.Schedule.joint = Schedule.run ~mode:`Joint p g
  && t.Schedule.mem_only = Schedule.run ~mode:`Mem_only p g
  && t.Schedule.comp_only = Schedule.run ~mode:`Comp_only p g

(** Walk a kernel body the way the estimator does — maximal loop-free
    blocks, in traversal order so the access cursor stays in sync — and
    check [tri_equals_three_runs] on every block's DFG. *)
let tri_matches_on_kernel (k : Ast.kernel) : bool =
  let accesses = Analysis.Access.collect k.Ast.k_body in
  let cursor = Dfg.cursor_of accesses in
  let mem_of (a : Analysis.Access.t) = a.Analysis.Access.id mod 4 in
  let ok = ref true in
  let check_block stmts =
    if stmts <> [] then begin
      let g = Dfg.of_block ~kernel:k ~mem_of ~cursor stmts in
      List.iter (fun p -> ok := !ok && tri_equals_three_runs p g) sched_profiles
    end
  in
  let rec walk stmts =
    let rec go cur = function
      | [] -> check_block (List.rev cur)
      | Ast.For l :: rest ->
          check_block (List.rev cur);
          walk l.Ast.body;
          go [] rest
      | s :: rest -> go (s :: cur) rest
    in
    go [] stmts
  in
  walk k.Ast.k_body;
  !ok

let paper_kernels = [ "fir"; "mm"; "pat"; "jac"; "sobel" ]

let test_tri_paper_kernels () =
  List.iter
    (fun name ->
      let k = Option.get (Kernels.find name) in
      (* source blocks *)
      Alcotest.(check bool)
        (name ^ " source blocks") true (tri_matches_on_kernel k);
      (* transformed blocks: unrolling gives multi-statement blocks with
         replaced scalars, the structures the estimator actually sees *)
      let spine = Loop_nest.spine k.Ast.k_body in
      let vector =
        List.map (fun (l : Ast.loop) -> (l.Ast.index, 2)) spine
      in
      let r =
        Transform.Pipeline.apply { Transform.Pipeline.default with vector } k
      in
      Alcotest.(check bool)
        (name ^ " transformed blocks") true
        (tri_matches_on_kernel r.Transform.Pipeline.kernel))
    paper_kernels

(* Random straight-line blocks: stores of random expression trees over
   array reads, a scalar and constants, spread over the four memories. *)
let gen_block : Ast.stmt list QCheck2.Gen.t =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [
        map B.int (int_range 0 7);
        return (B.var "x");
        map (fun j -> B.arr1 "a" (B.int j)) (int_range 0 63);
      ]
  in
  let bins =
    [ B.( + ); B.( - ); B.( * ); B.( / ); B.( < ); B.( && ); B.min_; B.max_ ]
  in
  let rec go depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (1, leaf);
          ( 4,
            let* op = oneofl bins in
            let* a = go (depth - 1) in
            let* b = go (depth - 1) in
            return (op a b) );
          (1, map B.abs (go (depth - 1)));
        ]
  in
  let* n = int_range 1 5 in
  let* rhss = list_repeat n (go 3) in
  return (List.mapi (fun i rhs -> B.store1 "o" (B.int i) rhs) rhss)

let block_kernel stmts =
  B.kernel "t"
    ~arrays:[ Ast.array_decl "a" [ 64 ]; Ast.array_decl "o" [ 8 ] ]
    ~scalars:[ Ast.scalar_decl "x" ]
    stmts

let prop_tri_random_blocks stmts =
  let k = block_kernel stmts in
  let accesses = Analysis.Access.collect k.Ast.k_body in
  let mem_of (a : Analysis.Access.t) = a.Analysis.Access.id mod 4 in
  List.for_all
    (fun p ->
      (* each profile needs its own cursor: of_block consumes it *)
      let cursor = Dfg.cursor_of accesses in
      let g = Dfg.of_block ~kernel:k ~mem_of ~cursor stmts in
      tri_equals_three_runs p g)
    sched_profiles

(* ------------------------------------------------------------------ *)
(* Admissibility: quick lower bounds never exceed the full estimate *)

let admissible (q : Quick.t) (e : Estimate.t) : bool =
  q.Quick.cycles_lb <= e.Estimate.cycles
  && q.Quick.mem_cycles_lb <= e.Estimate.mem_only_cycles
  && q.Quick.comp_cycles_lb <= e.Estimate.comp_only_cycles
  && q.Quick.slices_lb <= e.Estimate.slices

let prop_quick_admissible (k, v) =
  let ctx = Design.context k in
  match Design.quick ctx v with
  | None -> true
  | Some q ->
      let p = Design.evaluate ctx v in
      admissible q p.Design.estimate

let test_quick_admissible_paper_kernels () =
  List.iter
    (fun name ->
      let k = Option.get (Kernels.find name) in
      let ctx = Design.context k in
      let sp = Space.sweep ~max_product:16 ~jobs:1 ctx in
      List.iter
        (fun (pt : Space.sweep_point) ->
          match Design.quick ctx pt.Space.vector with
          | None -> Alcotest.fail (name ^ ": quick facts unavailable")
          | Some q ->
              Alcotest.(check bool)
                (Printf.sprintf "%s %s admissible" name
                   (Helpers.vector_to_string pt.Space.vector))
                true
                (admissible q pt.Space.point.Design.estimate))
        sp.Space.points)
    paper_kernels

(* ------------------------------------------------------------------ *)
(* Pruned sweep: same selections, strictly fewer syntheses *)

let sweep_pair name ~max_product =
  let k = Option.get (Kernels.find name) in
  let full_ctx = Design.context k in
  let full = Space.sweep ~max_product ~jobs:1 full_ctx in
  let pruned_ctx = Design.context k in
  let pruned = Space.sweep ~max_product ~prune:true ~jobs:1 pruned_ctx in
  (full_ctx, full, pruned_ctx, pruned)

let test_pruned_sweep name () =
  let full_ctx, full, pruned_ctx, pruned = sweep_pair name ~max_product:256 in
  (* accounting: every lattice point is either synthesized or pruned *)
  Alcotest.(check int)
    (name ^ " points partition")
    (List.length full.Space.points)
    (List.length pruned.Space.points + pruned.Space.pruned);
  Alcotest.(check bool) (name ^ " some points pruned") true (pruned.Space.pruned > 0);
  (* strictly fewer full syntheses than the exhaustive sweep *)
  let full_evals = (Design.stats_snapshot full_ctx).Design.evaluations in
  let pruned_evals = (Design.stats_snapshot pruned_ctx).Design.evaluations in
  Alcotest.(check bool)
    (Printf.sprintf "%s fewer syntheses (%d < %d)" name pruned_evals full_evals)
    true
    (pruned_evals < full_evals);
  (* identical selections under both criteria *)
  let vec = function
    | Some (p : Space.sweep_point) -> Some p.Space.vector
    | None -> None
  in
  Alcotest.(check bool)
    (name ^ " same best fitting") true
    (vec (Space.best_fitting full_ctx full)
    = vec (Space.best_fitting pruned_ctx pruned));
  Alcotest.(check bool)
    (name ^ " same smallest comparable") true
    (vec (Space.smallest_comparable full_ctx full)
    = vec (Space.smallest_comparable pruned_ctx pruned))

(* ------------------------------------------------------------------ *)
(* Search: the tier-1 capacity gate *)

let test_search_capacity_gate () =
  let k = Option.get (Kernels.find "fir") in
  let ctx = Design.context k in
  (* a budget below the kernel's analytical area floor: every unrolled
     candidate is rejected by tier 1 alone, and the search must fall all
     the way back to the base design without a single wasted synthesis *)
  let floor =
    match Design.quick ctx (Design.ubase ctx) with
    | Some q -> q.Quick.slices_lb
    | None -> Alcotest.fail "quick facts unavailable for fir"
  in
  let ctx = { ctx with Design.capacity = floor - 1 } in
  let r = Search.run ctx in
  Alcotest.(check bool) "points pruned" true (r.Search.stats.Design.pruned > 0);
  Alcotest.(check bool) "falls back to ubase" true
    (Design.vector_equal r.Search.selected.Design.vector (Design.ubase ctx));
  Alcotest.(check int) "only the fallback synthesized" 1
    r.Search.stats.Design.evaluations

let test_search_selection_unchanged_by_gate () =
  (* at the real device capacity the tier-1 gate may skip syntheses but
     never changes the selected design: re-run search on a fresh context
     and compare with the estimator's verdict on the selected vector *)
  List.iter
    (fun name ->
      let k = Option.get (Kernels.find name) in
      let ctx = Design.context k in
      let r = Search.run ctx in
      let sel = r.Search.selected in
      Alcotest.(check bool)
        (name ^ " selected fits") true
        (Design.space sel <= ctx.Design.capacity))
    paper_kernels

(* ------------------------------------------------------------------ *)
(* normalize_vector: divisor-table lookup == linear downward scan *)

let gen_kernel_and_vector : (Ast.kernel * (string * int) list) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* k = Helpers.gen_kernel in
  let* v = Helpers.gen_vector_for k in
  (* occasionally push factors past the trip count to exercise clamping *)
  let* scaled = list_repeat (List.length v) (int_range 1 2) in
  return (k, List.map2 (fun (i, u) s -> (i, u * s)) v scaled)

let prop_normalize_matches_scan (k, v) =
  let ctx = Design.context k in
  let n = Design.normalize_vector ctx v in
  let spine = Loop_nest.spine k.Ast.k_body in
  List.length n = List.length spine
  && List.for_all2
       (fun (l : Ast.loop) (i, u) ->
         let trip = Ast.loop_trip l in
         let req =
           match List.assoc_opt l.Ast.index v with Some x -> x | None -> 1
         in
         let clamped = max 1 (min req trip) in
         let rec down d = if trip mod d = 0 then d else down (d - 1) in
         String.equal i l.Ast.index && u = down clamped)
       spine n

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "quick"
    [
      ( "tri-scheduler",
        [
          Alcotest.test_case "paper kernels, source and transformed" `Quick
            test_tri_paper_kernels;
          Helpers.qtest "random blocks: run_tri == three runs" ~count:100
            gen_block prop_tri_random_blocks;
        ] );
      ( "admissibility",
        [
          Helpers.qtest "random kernels and vectors" ~count:60
            gen_kernel_and_vector prop_quick_admissible;
          Alcotest.test_case "paper kernels, full lattice" `Quick
            test_quick_admissible_paper_kernels;
        ] );
      ( "pruned sweep",
        [
          Alcotest.test_case "fir: same selection, fewer syntheses" `Quick
            (test_pruned_sweep "fir");
          Alcotest.test_case "mm: same selection, fewer syntheses" `Quick
            (test_pruned_sweep "mm");
        ] );
      ( "search",
        [
          Alcotest.test_case "capacity gate prunes to base" `Quick
            test_search_capacity_gate;
          Alcotest.test_case "selection fits at device capacity" `Quick
            test_search_selection_unchanged_by_gate;
        ] );
      ( "normalize",
        [
          Helpers.qtest "divisor table matches downward scan" ~count:100
            gen_kernel_and_vector prop_normalize_matches_scan;
        ] );
    ]
