(** VHDL emission tests: structural checks on the generated text for the
    paper kernels, both raw and after data layout. *)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let emit name vector =
  let k = Option.get (Kernels.find name) in
  let r = Transform.Pipeline.apply { Transform.Pipeline.default with vector } k in
  Vhdl.Emit.emit r.Transform.Pipeline.kernel

let emit_laid_out name vector =
  let k = Option.get (Kernels.find name) in
  let r = Transform.Pipeline.apply { Transform.Pipeline.default with vector } k in
  Vhdl.Emit.emit_with_layout ~num_memories:4 r.Transform.Pipeline.kernel

let test_entity_structure () =
  let text = emit "fir" [] in
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("contains " ^ frag) true (contains text frag))
    [
      "entity fir is";
      "architecture behavioral of fir";
      "package defacto_support";
      "main : process";
      "for ";
      "end loop;";
      "end architecture behavioral;";
      "wait until rising_edge(clk)";
    ]

let test_memory_pragmas () =
  let text = emit_laid_out "fir" [ ("j", 2); ("i", 2) ] in
  Alcotest.(check bool) "maps arrays to memories" true
    (contains text "pragma map_to_memory mem");
  (* the distributed S banks appear *)
  Alcotest.(check bool) "bank arrays present" true
    (contains text "S0" && contains text "S1")

let test_registers_are_variables () =
  let text = emit "fir" [ ("j", 2); ("i", 2) ] in
  Alcotest.(check bool) "register comment" true
    (contains text "-- register (scalar replacement)")

let test_rotation_emitted () =
  let text = emit "fir" [ ("j", 2); ("i", 2) ] in
  Alcotest.(check bool) "rotation tmp" true (contains text "rot_tmp :=")

let test_strided_loop_form () =
  let text = emit "fir" [ ("j", 2); ("i", 2) ] in
  (* stride-2 loops derive the index from a unit-stride iterator *)
  Alcotest.(check bool) "derived index" true (contains text "_it * 2")

let test_all_kernels_emit () =
  List.iter
    (fun name ->
      let text = emit_laid_out name [] in
      Alcotest.(check bool) (name ^ " nonempty") true (String.length text > 500);
      Alcotest.(check bool) (name ^ " balanced loops") true
        (let count sub =
           let rec go i acc =
             if i + String.length sub > String.length text then acc
             else if String.sub text i (String.length sub) = sub then
               go (i + 1) (acc + 1)
             else go (i + 1) acc
           in
           go 0 0
         in
         count " loop" >= count "end loop;" && count "end loop;" > 0))
    Kernels.names

let test_conditionals () =
  (* SOBEL's min/abs go through the support package. *)
  let text = emit "sobel" [] in
  Alcotest.(check bool) "imin used" true (contains text "imin(");
  Alcotest.(check bool) "abs used" true (contains text "abs(")

let () =
  Alcotest.run "vhdl"
    [
      ( "emit",
        [
          Alcotest.test_case "entity structure" `Quick test_entity_structure;
          Alcotest.test_case "memory pragmas" `Quick test_memory_pragmas;
          Alcotest.test_case "registers" `Quick test_registers_are_variables;
          Alcotest.test_case "rotation" `Quick test_rotation_emitted;
          Alcotest.test_case "strided loops" `Quick test_strided_loop_form;
          Alcotest.test_case "all kernels emit" `Quick test_all_kernels_emit;
          Alcotest.test_case "conditionals" `Quick test_conditionals;
        ] );
    ]
