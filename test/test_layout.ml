(** Data layout tests: bank shape selection, virtual ids, physical
    binding, and the code-level renaming with scatter/gather round trips. *)

open Ir
module B = Builder
module Access = Analysis.Access
module Layout = Data_layout.Layout
module Renaming = Data_layout.Renaming

let layout_of ?(mems = 4) k =
  let accesses = Access.collect k.Ast.k_body in
  (Layout.assign ~num_memories:mems k accesses, accesses)

let transformed name vector =
  let k = Option.get (Kernels.find name) in
  let r = Transform.Pipeline.apply { Transform.Pipeline.default with vector } k in
  r.Transform.Pipeline.kernel

(* ------------------------------------------------------------------ *)

let test_fir_banks_grow_with_unroll () =
  let k = transformed "fir" [ ("j", 2); ("i", 2) ] in
  let layout, _ = layout_of k in
  let bank a = List.assoc a layout.Layout.banks in
  Alcotest.(check bool) "S spread over memories" true (bank "S" > 1);
  Alcotest.(check bool) "D spread over memories" true (bank "D" > 1)

let test_conflict_structure () =
  (* a[2i] and a[2i+1]: residues 0 and 1 mod 2 -> different banks. *)
  let k =
    B.kernel "t" ~arrays:[ Ast.array_decl "a" [ 32 ]; Ast.array_decl "o" [ 16 ] ]
      [
        B.for_ "i" 0 16 (fun i ->
            [ B.store1 "o" i B.(arr1 "a" (B.int 2 * i) + arr1 "a" ((B.int 2 * i) + B.int 1)) ]);
      ]
  in
  let layout, accesses = layout_of k in
  let a_reads = List.filter (fun (x : Access.t) -> x.array = "a") accesses in
  let mems = List.map (Layout.memory_of layout) a_reads in
  Alcotest.(check int) "two a reads" 2 (List.length mems);
  Alcotest.(check bool) "no conflict" true (List.nth mems 0 <> List.nth mems 1)

let test_non_uniform_single_memory () =
  (* a[i] and a[2i] are not uniformly generated: single bank. *)
  let k =
    B.kernel "t" ~arrays:[ Ast.array_decl "a" [ 32 ]; Ast.array_decl "o" [ 8 ] ]
      [
        B.for_ "i" 0 8 (fun i ->
            [ B.store1 "o" i B.(arr1 "a" i + arr1 "a" (B.int 2 * i)) ]);
      ]
  in
  let layout, _ = layout_of k in
  Alcotest.(check int) "one bank" 1 (List.assoc "a" layout.Layout.banks)

let test_2d_shape () =
  (* b[i][j], b[i+1][j], b[i][j+1], b[i+1][j+1] want a 2x2 shape. *)
  let k =
    B.kernel "t" ~arrays:[ Ast.array_decl "b" [ 8; 8 ]; Ast.array_decl "o" [ 16 ] ]
      [
        B.for_ ~step:2 "i" 0 8 (fun i ->
            [
              B.for_ ~step:2 "j" 0 8 (fun j ->
                  [
                    B.store1 "o" B.(i + j)
                      B.(
                        arr2 "b" i j + arr2 "b" (i + B.int 1) j
                        + arr2 "b" i (j + B.int 1)
                        + arr2 "b" (i + B.int 1) (j + B.int 1));
                  ]);
            ]);
      ]
  in
  let layout, accesses = layout_of k in
  Alcotest.(check (list int)) "2x2 shape" [ 2; 2 ] (List.assoc "b" layout.Layout.shapes);
  let b_reads = List.filter (fun (x : Access.t) -> x.array = "b") accesses in
  let mems = List.sort_uniq compare (List.map (Layout.memory_of layout) b_reads) in
  Alcotest.(check int) "four distinct memories" 4 (List.length mems)

let test_reads_bound_first () =
  let k = transformed "fir" [ ("j", 2); ("i", 2) ] in
  let layout, accesses = layout_of k in
  let first_read = List.find Access.is_read accesses in
  Alcotest.(check int) "first read on memory 0" 0
    (Layout.memory_of layout first_read)

(* ------------------------------------------------------------------ *)
(* Renaming *)

let test_renaming_fir () =
  let k = transformed "fir" [ ("j", 2); ("i", 2) ] in
  let d = Renaming.rewrite ~num_memories:4 k in
  Alcotest.(check bool) "some array split" true (d.Renaming.split <> []);
  List.iter
    (fun (orig, banks) ->
      Alcotest.(check bool)
        (orig ^ " bank names extend the original")
        true
        (List.for_all (fun b -> String.length b > String.length orig) banks))
    d.Renaming.split

let test_renaming_semantics () =
  List.iter
    (fun (name, vector) ->
      let k0 = Option.get (Kernels.find name) in
      let k = transformed name vector in
      let d = Renaming.rewrite ~num_memories:4 k in
      let inputs = Kernels.test_inputs k0 in
      let ref_out = Eval.observables (Eval.run ~inputs k0) in
      let dist_in = Renaming.scatter d k inputs in
      let dist_out = Eval.observables (Eval.run ~inputs:dist_in d.Renaming.kernel) in
      let out = Renaming.gather d k dist_out in
      List.iter
        (fun (arr, data) ->
          match List.assoc_opt arr out with
          | Some data' ->
              Alcotest.(check bool)
                (Printf.sprintf "%s %s array %s" name
                   (Helpers.vector_to_string vector) arr)
                true (data = data')
          | None -> Alcotest.failf "array %s missing after gather" arr)
        ref_out)
    [
      ("fir", [ ("j", 2); ("i", 2) ]);
      ("fir", [ ("j", 4); ("i", 4) ]);
      ("pat", [ ("j", 1); ("i", 4) ]);
      ("mm", [ ("i", 2); ("j", 2) ]);
    ]

let test_renaming_linearizes () =
  let k = transformed "mm" [] in
  let d = Renaming.rewrite ~num_memories:4 k in
  List.iter
    (fun (a : Ast.array_decl) ->
      Alcotest.(check int) (a.a_name ^ " flat") 1 (List.length a.a_dims))
    d.Renaming.kernel.Ast.k_arrays

let () =
  Alcotest.run "layout"
    [
      ( "banks",
        [
          Alcotest.test_case "FIR banks grow with unroll" `Quick
            test_fir_banks_grow_with_unroll;
          Alcotest.test_case "conflict structure" `Quick test_conflict_structure;
          Alcotest.test_case "non-uniform stays single" `Quick
            test_non_uniform_single_memory;
          Alcotest.test_case "2D block-cyclic shape" `Quick test_2d_shape;
          Alcotest.test_case "reads bound first" `Quick test_reads_bound_first;
        ] );
      ( "renaming",
        [
          Alcotest.test_case "FIR splits" `Quick test_renaming_fir;
          Alcotest.test_case "scatter/gather semantics" `Quick
            test_renaming_semantics;
          Alcotest.test_case "linearizes multi-dim arrays" `Quick
            test_renaming_linearizes;
        ] );
    ]
