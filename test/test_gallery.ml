(** The extended kernel gallery through the full flow: every kernel must
    survive exploration with a correct, fitting, baseline-beating (or at
    least baseline-matching) design — including the deliberately
    non-affine histogram, which the analyses must decline to transform
    rather than mistransform. *)

open Ir

let flow name =
  let k = Option.get (Gallery.find name) in
  let profile = Hls.Estimate.default_profile () in
  let ctx = Dse.Design.context ~profile k in
  let r = Dse.Search.run ctx in
  let sel = r.Dse.Search.selected in
  let inputs = Kernels.test_inputs k in
  (k, ctx, sel, inputs)

let test_flow_correct () =
  List.iter
    (fun name ->
      let k, ctx, sel, inputs = flow name in
      Alcotest.(check bool) (name ^ " correct") true
        (Helpers.equivalent ~inputs ~reference:k sel.Dse.Design.kernel);
      Alcotest.(check bool) (name ^ " fits") true
        (Dse.Design.space sel <= ctx.Dse.Design.capacity);
      let base = Dse.Design.evaluate ctx (Dse.Design.ubase ctx) in
      Alcotest.(check bool) (name ^ " not slower than baseline") true
        (Dse.Design.cycles sel <= Dse.Design.cycles base))
    Gallery.names

let test_flow_simulates () =
  List.iter
    (fun name ->
      let k, _, sel, inputs = flow name in
      let profile = Hls.Estimate.default_profile () in
      let sim = Hls.Sim.run ~inputs profile sel.Dse.Design.kernel in
      let reference = Eval.observables (Eval.run ~inputs k) in
      Alcotest.(check bool) (name ^ " datapath correct") true
        (List.for_all
           (fun (arr, data) -> List.assoc_opt arr sim.Hls.Sim.arrays = Some data)
           reference))
    Gallery.names

let test_histogram_conservative () =
  (* data-dependent subscripts: single memory, no register promotion of
     the histogram array *)
  let k = Option.get (Gallery.find "histogram") in
  let accesses = Analysis.Access.collect k.Ast.k_body in
  let layout = Data_layout.Layout.assign ~num_memories:4 k accesses in
  Alcotest.(check int) "hist in one bank" 1
    (List.assoc "hist" layout.Data_layout.Layout.banks);
  let r = Transform.Pipeline.apply Transform.Pipeline.default k in
  Alcotest.(check bool) "hist accesses survive" true
    (List.exists
       (fun (a : Analysis.Access.t) -> a.array = "hist")
       (Analysis.Access.collect r.Transform.Pipeline.kernel.Ast.k_body))

let test_conv1d_matches_fir_shape () =
  (* conv1d is FIR-shaped: the same machinery should bank the taps *)
  let k = Option.get (Gallery.find "conv1d") in
  let r =
    Transform.Pipeline.apply
      { Transform.Pipeline.default with vector = [ ("n", 2); ("k", 2) ] }
      k
  in
  Alcotest.(check bool) "taps banked" true
    (List.exists (fun (a, _) -> a = "h") r.Transform.Pipeline.report.banks)

let test_erosion_reduction () =
  (* min-reduction over the window must survive the whole pipeline *)
  let k = Option.get (Gallery.find "erosion") in
  let inputs = Kernels.test_inputs k in
  List.iter
    (fun v ->
      let r = Transform.Pipeline.apply { Transform.Pipeline.default with vector = v } k in
      Alcotest.(check bool)
        ("erosion " ^ Helpers.vector_to_string v)
        true
        (Helpers.equivalent ~inputs ~reference:k r.Transform.Pipeline.kernel))
    [ [ ("i", 2) ]; [ ("j", 4) ]; [ ("i", 2); ("j", 2) ] ]

let test_transpose_no_reuse () =
  (* transpose has no reuse: no registers should be introduced beyond
     the trivial, and the design must still be correct *)
  let k = Option.get (Gallery.find "transpose") in
  let r =
    Transform.Pipeline.apply
      { Transform.Pipeline.default with vector = [ ("i", 2); ("j", 2) ] }
      k
  in
  Alcotest.(check (list (pair string int))) "no banks" []
    r.Transform.Pipeline.report.banks;
  Helpers.check_equiv
    ~inputs:(Kernels.test_inputs k)
    ~reference:k r.Transform.Pipeline.kernel "transpose semantics"

let () =
  Alcotest.run "gallery"
    [
      ( "flow",
        [
          Alcotest.test_case "explore + correctness" `Quick test_flow_correct;
          Alcotest.test_case "datapath simulation" `Quick test_flow_simulates;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "histogram conservative" `Quick
            test_histogram_conservative;
          Alcotest.test_case "conv1d banks taps" `Quick
            test_conv1d_matches_fir_shape;
          Alcotest.test_case "erosion reduction" `Quick test_erosion_reduction;
          Alcotest.test_case "transpose no reuse" `Quick test_transpose_no_reuse;
        ] );
    ]
