(** Behavioral-synthesis estimator tests: DFG construction, the ASAP
    scheduler's resource discipline, the balance observations of
    Section 5.2 on the real kernels, and the P&R degradation model. *)

open Ir
module B = Builder
module Dfg = Hls.Dfg
module Schedule = Hls.Schedule
module Estimate = Hls.Estimate

let profile ?(pipelined = true) () = Estimate.default_profile ~pipelined ()

let sched_profile ?(pipelined = true) () =
  let p = profile ~pipelined () in
  { Schedule.device = p.Estimate.device; mem = p.Estimate.mem; chaining = false }

let estimate ?(pipelined = true) name vector =
  let k = Option.get (Kernels.find name) in
  let r = Transform.Pipeline.apply { Transform.Pipeline.default with vector } k in
  Estimate.estimate (profile ~pipelined ()) r.Transform.Pipeline.kernel

(* A block whose accesses are controlled precisely: [n] loads spread over
   the given memory ids. *)
let block_of_loads mems =
  let arrays = [ Ast.array_decl "a" [ 64 ]; Ast.array_decl "o" [ 64 ] ] in
  let stmts =
    List.mapi (fun idx _ -> B.store1 "o" (B.int idx) (B.arr1 "a" (B.int idx))) mems
  in
  let kernel = B.kernel "t" ~arrays stmts in
  let accesses = Analysis.Access.collect kernel.Ast.k_body in
  let reads = List.filter Analysis.Access.is_read accesses in
  let mem_tbl =
    List.map2 (fun (a : Analysis.Access.t) m -> (a.id, m)) reads mems
  in
  (* writes spread round-robin so the loads under test stay the bottleneck *)
  let writes = List.filter Analysis.Access.is_write accesses in
  let w_tbl =
    List.mapi (fun idx (a : Analysis.Access.t) -> (a.id, idx mod 4)) writes
  in
  let mem_of (a : Analysis.Access.t) =
    match List.assoc_opt a.id mem_tbl with
    | Some m -> m
    | None -> Option.value ~default:0 (List.assoc_opt a.id w_tbl)
  in
  let cursor = Dfg.cursor_of accesses in
  (kernel, Dfg.of_block ~kernel ~mem_of ~cursor stmts)

(* ------------------------------------------------------------------ *)
(* DFG *)

let test_dfg_counts () =
  let k = Option.get (Kernels.find "fir") in
  let accesses = Analysis.Access.collect k.Ast.k_body in
  let cursor = Dfg.cursor_of accesses in
  let inner =
    match Loop_nest.perfect_nest k.Ast.k_body with _, body -> body
  in
  let g = Dfg.of_block ~kernel:k ~mem_of:(fun _ -> 0) ~cursor inner in
  Alcotest.(check int) "3 loads" 3 (Dfg.n_loads g);
  Alcotest.(check int) "1 store" 1 (Dfg.n_stores g)

let test_dfg_cursor_desync () =
  let k = Option.get (Kernels.find "fir") in
  let cursor = Dfg.cursor_of [] in
  let inner = match Loop_nest.perfect_nest k.Ast.k_body with _, b -> b in
  Alcotest.(check bool) "desync detected" true
    (try
       ignore (Dfg.of_block ~kernel:k ~mem_of:(fun _ -> 0) ~cursor inner);
       false
     with Dfg.Desync _ -> true)

let test_dfg_strength_reduction () =
  (* x * 8 must classify as a free constant shift, not a multiplier. *)
  let k =
    B.kernel "t" ~arrays:[ Ast.array_decl "o" [ 4 ] ] ~scalars:[ Ast.scalar_decl "x" ]
      [ B.store1 "o" (B.int 0) B.(var "x" * B.int 8) ]
  in
  let accesses = Analysis.Access.collect k.Ast.k_body in
  let cursor = Dfg.cursor_of accesses in
  let g = Dfg.of_block ~kernel:k ~mem_of:(fun _ -> 0) ~cursor k.Ast.k_body in
  let has_mul =
    Array.exists
      (fun (n : Dfg.node) ->
        match n.kind with Dfg.Op { cls = Hls.Op_model.Mul; _ } -> true | _ -> false)
      g.Dfg.nodes
  in
  Alcotest.(check bool) "no multiplier allocated" false has_mul

(* ------------------------------------------------------------------ *)
(* Scheduler *)

let test_port_exclusivity () =
  (* 4 loads on one memory need 4 cycles pipelined; spread over 4
     memories they need 1 issue cycle (plus latency). *)
  let _, g1 = block_of_loads [ 0; 0; 0; 0 ] in
  let _, g4 = block_of_loads [ 0; 1; 2; 3 ] in
  let p = sched_profile () in
  let r1 = Schedule.run ~mode:`Mem_only p g1 in
  let r4 = Schedule.run ~mode:`Mem_only p g4 in
  Alcotest.(check bool) "serialized slower" true
    (r1.Schedule.cycles > r4.Schedule.cycles)

let test_non_pipelined_occupancy () =
  let _, g = block_of_loads [ 0; 0 ] in
  let rp = Schedule.run ~mode:`Mem_only (sched_profile ~pipelined:true ()) g in
  let rn = Schedule.run ~mode:`Mem_only (sched_profile ~pipelined:false ()) g in
  (* non-pipelined reads occupy the port for 7 cycles each *)
  Alcotest.(check bool) "occupancy respected" true
    (rn.Schedule.cycles >= (2 * 7) && rp.Schedule.cycles <= 4)

let test_modes_bound_joint () =
  (* The joint schedule can never beat either relaxed schedule. *)
  List.iter
    (fun name ->
      let e = estimate name [ ("j", 2); ("i", 2) ] in
      Alcotest.(check bool) (name ^ " mem <= joint") true
        (e.Estimate.mem_only_cycles <= e.Estimate.cycles);
      Alcotest.(check bool) (name ^ " comp <= joint") true
        (e.Estimate.comp_only_cycles <= e.Estimate.cycles))
    Kernels.names

let test_bits_moved () =
  let _, g = block_of_loads [ 0; 1 ] in
  let r = Schedule.run (sched_profile ()) g in
  (* 2 loads of int32 + 2 stores of int32 *)
  Alcotest.(check int) "bits counted" (4 * 32) r.Schedule.bits_moved

(* ------------------------------------------------------------------ *)
(* Estimates on the paper kernels *)

let test_cycles_decrease_with_unroll () =
  List.iter
    (fun name ->
      let base = estimate name [] in
      let unrolled = estimate name [ ("i", 2); ("j", 2) ] in
      Alcotest.(check bool)
        (name ^ " unrolling reduces cycles")
        true
        (unrolled.Estimate.cycles < base.Estimate.cycles))
    Kernels.names

let test_area_increases_with_unroll () =
  List.iter
    (fun name ->
      let small = estimate name [ ("i", 2); ("j", 2) ] in
      let big = estimate name [ ("i", 2); ("j", 2); ("k", 2) ] in
      ignore big;
      let bigger =
        match name with
        | "fir" -> estimate name [ ("j", 8); ("i", 8) ]
        | "mm" -> estimate name [ ("i", 8); ("j", 4) ]
        | "pat" -> estimate name [ ("j", 7); ("i", 8) ]
        | _ -> estimate name [ ("i", 6); ("j", 6) ]
      in
      Alcotest.(check bool)
        (name ^ " more unrolling, more slices")
        true
        (bigger.Estimate.slices > small.Estimate.slices))
    Kernels.names

let test_non_pipelined_slower () =
  List.iter
    (fun name ->
      let p = estimate ~pipelined:true name [ ("i", 2); ("j", 2) ] in
      let n = estimate ~pipelined:false name [ ("i", 2); ("j", 2) ] in
      Alcotest.(check bool) (name ^ " non-pipelined slower") true
        (n.Estimate.cycles > p.Estimate.cycles);
      Alcotest.(check bool) (name ^ " non-pipelined lower balance") true
        (n.Estimate.balance < p.Estimate.balance))
    Kernels.names

let test_fir_non_pipelined_memory_bound () =
  (* Figure 4: non-pipelined FIR is memory bound at every design point. *)
  List.iter
    (fun v ->
      let e = estimate ~pipelined:false "fir" v in
      Alcotest.(check bool)
        ("memory bound at " ^ Helpers.vector_to_string v)
        true
        (e.Estimate.balance < 1.0))
    [ []; [ ("j", 2) ]; [ ("j", 4) ]; [ ("j", 4); ("i", 4) ]; [ ("j", 8); ("i", 8) ] ]

let test_balance_rises_then_falls () =
  (* Observation 3 along the saturation direction for pipelined FIR:
     balance is maximal near the saturation point. *)
  let b v = (estimate "fir" v).Estimate.balance in
  let baseline = b [] in
  let sat = b [ ("j", 4) ] in
  let far = b [ ("j", 16); ("i", 8) ] in
  Alcotest.(check bool) "baseline is compute bound" true (baseline > 1.0);
  Alcotest.(check bool) "balance falls beyond saturation" true (far < sat || far < 1.0)

let test_operator_sharing () =
  (* Peeling duplicates code but synthesis reuses operators: the
     multiplier count must not double. *)
  let e = estimate "fir" [ ("j", 2); ("i", 2) ] in
  let mults =
    List.fold_left
      (fun acc ((cls, _), n) -> if cls = Hls.Op_model.Mul then acc + n else acc)
      0 e.Estimate.usage
  in
  Alcotest.(check bool) "at most 4 multipliers for 4 MACs" true (mults <= 4)

let test_registers_counted () =
  let e = estimate "fir" [ ("j", 2); ("i", 2) ] in
  (* 2 C banks of 16 x 32 bits dominate *)
  Alcotest.(check bool) "register bits include the banks" true
    (e.Estimate.register_bits >= 2 * 16 * 32)

(* ------------------------------------------------------------------ *)
(* P&R model *)

let test_pnr_degradation () =
  let small = estimate "fir" [] in
  let large = estimate "fir" [ ("j", 16); ("i", 8) ] in
  let i_small = Hls.Lowlevel.place_and_route small in
  let i_large = Hls.Lowlevel.place_and_route large in
  Alcotest.(check int) "cycles never change" small.Estimate.cycles
    i_small.Hls.Lowlevel.cycles;
  Alcotest.(check bool) "clock degrades with size" true
    (i_large.Hls.Lowlevel.achieved_clock_ns > i_small.Hls.Lowlevel.achieved_clock_ns);
  Alcotest.(check bool) "area grows super-linearly" true
    (float_of_int i_large.Hls.Lowlevel.actual_slices /. float_of_int large.Estimate.slices
    > float_of_int i_small.Hls.Lowlevel.actual_slices /. float_of_int small.Estimate.slices)

let () =
  Alcotest.run "hls"
    [
      ( "dfg",
        [
          Alcotest.test_case "node counts" `Quick test_dfg_counts;
          Alcotest.test_case "cursor desync" `Quick test_dfg_cursor_desync;
          Alcotest.test_case "strength reduction" `Quick test_dfg_strength_reduction;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "port exclusivity" `Quick test_port_exclusivity;
          Alcotest.test_case "non-pipelined occupancy" `Quick
            test_non_pipelined_occupancy;
          Alcotest.test_case "relaxed modes bound joint" `Quick test_modes_bound_joint;
          Alcotest.test_case "bits moved" `Quick test_bits_moved;
        ] );
      ( "estimate",
        [
          Alcotest.test_case "cycles decrease with unroll" `Quick
            test_cycles_decrease_with_unroll;
          Alcotest.test_case "area increases with unroll" `Quick
            test_area_increases_with_unroll;
          Alcotest.test_case "non-pipelined slower" `Quick test_non_pipelined_slower;
          Alcotest.test_case "FIR non-pipelined memory bound" `Quick
            test_fir_non_pipelined_memory_bound;
          Alcotest.test_case "balance rises then falls" `Quick
            test_balance_rises_then_falls;
          Alcotest.test_case "operator sharing" `Quick test_operator_sharing;
          Alcotest.test_case "registers counted" `Quick test_registers_counted;
        ] );
      ( "place-and-route",
        [ Alcotest.test_case "degradation model" `Quick test_pnr_degradation ] );
    ]
