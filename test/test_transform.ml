(** Transformation tests. Every pass is checked two ways: structurally
    (the paper's FIR example transforms into the Figure 1(c)/(d) shape)
    and semantically (random kernels, random unroll vectors, interpreter
    equality before and after — the strongest invariant in the system). *)

open Ir
module B = Builder
module P = Transform.Pipeline

let fir () = Option.get (Kernels.find "fir")
let mm () = Option.get (Kernels.find "mm")
let jac () = Option.get (Kernels.find "jac")

let apply ?(opts = P.default) vector k =
  P.apply { opts with P.vector } k

(* ------------------------------------------------------------------ *)
(* Simplify *)

let test_simplify_folds () =
  let e = B.((B.int 2 + B.int 3) * var "x" + B.int 0) in
  Alcotest.(check string) "constant folding" "5 * x"
    (Pretty.expr_to_string (Transform.Simplify.fold_expr e));
  Alcotest.(check string) "mul by zero" "0"
    (Pretty.expr_to_string (Transform.Simplify.fold_expr B.(var "x" * B.int 0)));
  Alcotest.(check string) "reassociation" "x + 5"
    (Pretty.expr_to_string
       (Transform.Simplify.fold_expr B.((var "x" + B.int 2) + B.int 3)))

let test_simplify_kills_dead_branches () =
  let k =
    B.kernel "t" ~arrays:[ Ast.array_decl "a" [ 2 ] ]
      [
        B.if_ (B.int 1) [ B.store1 "a" (B.int 0) (B.int 5) ];
        B.if_ (B.int 0) [ B.store1 "a" (B.int 1) (B.int 7) ];
      ]
  in
  let k' = Transform.Simplify.run k in
  Alcotest.(check int) "one statement remains" 1 (List.length k'.Ast.k_body)

let test_simplify_inlines_trip1 () =
  let k =
    B.kernel "t" ~arrays:[ Ast.array_decl "a" [ 4 ] ]
      [ B.loop "i" 2 3 [ B.store1 "a" (B.var "i") (B.int 1) ] ]
  in
  let k' = Transform.Simplify.run k in
  match k'.Ast.k_body with
  | [ Ast.Assign (Ast.Larr ("a", [ Ast.Int 2 ]), _) ] -> ()
  | _ -> Alcotest.failf "expected inlined body, got %s" (Pretty.kernel_to_string k')

let test_fold_ranges () =
  let k =
    B.kernel "t" ~arrays:[ Ast.array_decl "a" [ 8 ] ]
      [
        B.loop "i" 2 8
          [
            B.if_ B.(var "i" < B.int 2) [ B.store1 "a" (B.int 0) (B.int 1) ];
            B.if_ B.(var "i" >= B.int 2) [ B.store1 "a" (B.var "i") (B.int 2) ];
          ];
      ]
  in
  let k' = Transform.Simplify.fold_ranges k in
  match k'.Ast.k_body with
  | [ Ast.For l ] -> (
      match l.body with
      | [ Ast.Assign _ ] -> () (* dead guard gone, live guard dissolved *)
      | _ -> Alcotest.failf "unexpected result %s" (Pretty.kernel_to_string k'))
  | _ -> Alcotest.fail "expected one loop"

(* ------------------------------------------------------------------ *)
(* Unroll-and-jam *)

let test_unroll_structure () =
  let k = fir () in
  let k' = Transform.Unroll.run [ ("j", 2); ("i", 2) ] k in
  match Loop_nest.perfect_nest k'.Ast.k_body with
  | [ lj; li ], body ->
      Alcotest.(check int) "j step" 2 lj.Ast.step;
      Alcotest.(check int) "i step" 2 li.Ast.step;
      Alcotest.(check int) "jammed body has 4 statements" 4 (List.length body)
  | _ -> Alcotest.fail "expected a 2-deep perfect nest"

let test_unroll_epilogue () =
  (* 10 iterations unrolled by 3: main loop of 9 plus an epilogue. *)
  let k =
    B.kernel "t" ~arrays:[ Ast.array_decl "a" [ 10 ] ]
      [ B.for_ "i" 0 10 (fun i -> [ B.store1 "a" i i ]) ]
  in
  let k' = Transform.Unroll.run [ ("i", 3) ] k in
  (match k'.Ast.k_body with
  | Ast.For main :: rest ->
      Alcotest.(check int) "main covers 9" 9 main.hi;
      Alcotest.(check int) "main step" 3 main.step;
      Alcotest.(check bool) "epilogue exists" true (rest <> [])
  | _ -> Alcotest.failf "unexpected shape: %s" (Pretty.kernel_to_string k'));
  Helpers.check_equiv ~reference:k k' "epilogue semantics"

let test_unroll_full () =
  let k =
    B.kernel "t" ~arrays:[ Ast.array_decl "a" [ 4 ] ]
      [ B.for_ "i" 0 4 (fun i -> [ B.store1 "a" i i ]) ]
  in
  let k' = Transform.Unroll.run [ ("i", 4) ] k in
  Alcotest.(check int) "loop fully dissolved" 4 (List.length k'.Ast.k_body);
  Helpers.check_equiv ~reference:k k' "full unroll semantics"

let test_unroll_clamp () =
  let v =
    Transform.Unroll.clamp ~divisors_only:true (fir ()).Ast.k_body
      [ ("j", 100); ("i", 5) ]
  in
  Alcotest.(check (option int)) "j clamped to trip" (Some 64) (List.assoc_opt "j" v);
  Alcotest.(check (option int)) "i rounded to divisor" (Some 4) (List.assoc_opt "i" v)

let test_jam_legal () =
  Alcotest.(check bool) "FIR jam legal" true (Transform.Unroll.jam_legal (fir ()));
  Alcotest.(check bool) "MM jam legal" true (Transform.Unroll.jam_legal (mm ()))

(* ------------------------------------------------------------------ *)
(* Peeling *)

let test_peel_first () =
  let k = fir () in
  let body = Transform.Peel.peel_first ~index:"j" k.Ast.k_body in
  let loops =
    Ast.fold_stmts
      ~stmt:(fun acc s ->
        match s with Ast.For l when l.index = "j" -> l :: acc | _ -> acc)
      ~expr:(fun acc _ -> acc)
      [] body
  in
  Alcotest.(check int) "one j loop left" 1 (List.length loops);
  Alcotest.(check int) "starts at 1" 1 (List.hd loops).Ast.lo;
  Helpers.check_equiv
    ~inputs:(Kernels.test_inputs k)
    ~reference:k
    { k with Ast.k_body = body }
    "peel semantics"

let test_peel_last () =
  let k = fir () in
  let body = Transform.Peel.peel_last ~index:"i" k.Ast.k_body in
  Helpers.check_equiv ~inputs:(Kernels.test_inputs k) ~reference:k
    { k with Ast.k_body = body } "peel last semantics"

let test_peel_kills_guard () =
  let k =
    B.kernel "t" ~arrays:[ Ast.array_decl "a" [ 4 ] ]
      [
        B.for_ "i" 0 4 (fun i ->
            [
              B.if_ B.(i == B.int 0) [ B.store1 "a" (B.int 0) (B.int 9) ];
              B.store1 "a" i i;
            ]);
      ]
  in
  let body = Transform.Peel.peel_first ~index:"i" k.Ast.k_body in
  let k' = Transform.Simplify.run { k with Ast.k_body = body } in
  let has_if =
    Ast.fold_stmts
      ~stmt:(fun acc s -> acc || match s with Ast.If _ -> true | _ -> false)
      ~expr:(fun acc _ -> acc)
      false k'.Ast.k_body
  in
  Alcotest.(check bool) "guard specialised away" false has_if;
  Helpers.check_equiv ~reference:k k' "guard peel semantics"

(* ------------------------------------------------------------------ *)
(* LICM *)

let test_licm_hoists () =
  let k =
    B.kernel "t"
      ~arrays:[ Ast.array_decl "a" [ 8 ]; Ast.array_decl "b" [ 8 ] ]
      ~scalars:[ Ast.scalar_decl "x" ]
      [
        B.for_ "i" 0 8 (fun i ->
            [ B.store1 "a" i B.((var "x" * var "x") + arr1 "b" i) ]);
      ]
  in
  let k' = Transform.Licm.run k in
  (match k'.Ast.k_body with
  | [ Ast.Assign (Ast.Lvar _, _); Ast.For _ ] -> ()
  | _ -> Alcotest.failf "x*x not hoisted: %s" (Pretty.kernel_to_string k'));
  Helpers.check_equiv ~reference:k k' "licm semantics"

let test_licm_respects_writes () =
  (* b[0] is written in the loop: reads of b must not be hoisted. *)
  let k =
    B.kernel "t" ~arrays:[ Ast.array_decl "a" [ 8 ]; Ast.array_decl "b" [ 8 ] ]
      [
        B.for_ "i" 0 8 (fun i ->
            [
              B.store1 "b" (B.int 0) i;
              B.store1 "a" i B.(arr1 "b" (B.int 0) + arr1 "b" (B.int 1));
            ]);
      ]
  in
  let k' = Transform.Licm.run k in
  (match k'.Ast.k_body with
  | [ Ast.For _ ] -> ()
  | _ -> Alcotest.failf "unsafe hoist: %s" (Pretty.kernel_to_string k'));
  Helpers.check_equiv ~reference:k k' "licm write safety"

(* ------------------------------------------------------------------ *)
(* Scalar replacement: FIR turns into the Figure 1(c)/(d) shape *)

let count_accesses body =
  let accesses = Analysis.Access.collect body in
  ( List.length (Analysis.Access.reads accesses),
    List.length (Analysis.Access.writes accesses) )

let test_fir_2x2_shape () =
  let r = apply [ ("j", 2); ("i", 2) ] (fir ()) in
  let rep = r.P.report in
  Alcotest.(check int) "two accumulators hoisted" 2
    rep.Transform.Scalar_replace.hoisted_members;
  Alcotest.(check int) "two C banks" 2 (List.length rep.banks);
  Alcotest.(check bool) "bank size 16" true
    (List.for_all (fun (_, n) -> n = 16) rep.banks);
  Alcotest.(check int) "one CSE load (S_0)" 1 rep.cse_loads;
  Alcotest.(check (list string)) "carrier peeled" [ "j" ] rep.carriers;
  (* steady state: main j loop's inner body has exactly 3 S reads *)
  let main_loop =
    List.rev r.P.kernel.Ast.k_body
    |> List.find_map (function Ast.For l -> Some l | _ -> None)
  in
  match main_loop with
  | Some lj ->
      let inner =
        List.find_map (function Ast.For l -> Some l | _ -> None) lj.Ast.body
      in
      let reads, writes = count_accesses (Option.get inner).Ast.body in
      Alcotest.(check int) "3 loads in steady state" 3 reads;
      Alcotest.(check int) "0 stores in steady state" 0 writes
  | None -> Alcotest.fail "no main loop"

let test_mm_inner_clean () =
  (* After banking A and B and hoisting C, MM's innermost main loop body
     has no memory accesses at all — the paper's premise for exploring
     only the two outer loops. *)
  let r = apply [] (mm ()) in
  (* follow the *last* loop at each level: peeled copies come first *)
  let rec innermost body =
    match
      List.rev body |> List.find_map (function Ast.For l -> Some l | _ -> None)
    with
    | Some l -> innermost l.Ast.body
    | None -> body
  in
  let main =
    List.rev r.P.kernel.Ast.k_body
    |> List.find_map (function Ast.For l -> Some l | _ -> None)
  in
  let reads, writes = count_accesses (innermost (Option.get main).Ast.body) in
  Alcotest.(check (pair int int)) "no memory ops in innermost body" (0, 0)
    (reads, writes)

let test_jac_chains () =
  let r = apply [] (jac ()) in
  let rep = r.P.report in
  Alcotest.(check bool) "a chain for the row reuse" true
    (List.exists
       (fun (a, _) -> a = "A")
       rep.Transform.Scalar_replace.chain_lengths);
  Alcotest.(check bool) "chain spans 3 registers" true
    (List.for_all (fun (_, n) -> n = 3) rep.chain_lengths)

let test_register_budget () =
  let opts =
    {
      P.default with
      P.scalar =
        { Transform.Scalar_replace.default_config with max_registers = 8 };
    }
  in
  let r = apply ~opts [] (fir ()) in
  Alcotest.(check bool) "budget respected" true
    (r.P.report.Transform.Scalar_replace.registers <= 8);
  Helpers.check_equiv
    ~inputs:(Kernels.test_inputs (fir ()))
    ~reference:(fir ()) r.P.kernel "budget-limited semantics"

(* ------------------------------------------------------------------ *)
(* Tiling *)

let test_strip_mine () =
  let k = fir () in
  let names = Transform.Names.of_kernel k in
  let body, tile_idx =
    Transform.Tiling.strip_mine ~index:"i" ~tile:8 names k.Ast.k_body
  in
  Alcotest.(check bool) "tile loop created" true (tile_idx <> None);
  Alcotest.(check int) "nest now 3 deep" 3 (Loop_nest.nest_depth body);
  Helpers.check_equiv ~inputs:(Kernels.test_inputs k) ~reference:k
    { k with Ast.k_body = body } "strip-mine semantics"

let test_interchange () =
  let k = jac () in
  match Transform.Tiling.interchange ~outer:"i" k with
  | None -> Alcotest.fail "JAC loops are permutable"
  | Some k' ->
      Alcotest.(check (list string)) "order swapped" [ "j"; "i" ]
        (Loop_nest.spine_indices k'.Ast.k_body);
      Helpers.check_equiv ~inputs:(Kernels.test_inputs k) ~reference:k k'
        "interchange semantics"

let test_interchange_illegal () =
  (* b[i][j] = b[i-1][j+1]: distance (1, -1); interchange must refuse. *)
  let k =
    B.kernel "t" ~arrays:[ Ast.array_decl "b" [ 8; 8 ] ]
      [
        B.loop "i" 1 8
          [
            B.loop "j" 0 7
              [
                B.store2 "b" (B.var "i") (B.var "j")
                  B.(arr2 "b" (var "i" - B.int 1) (var "j" + B.int 1));
              ];
          ];
      ]
  in
  Alcotest.(check bool) "refused" true
    (Transform.Tiling.interchange ~outer:"i" k = None)

let test_tile_for_registers () =
  let k = fir () in
  let k' = Transform.Tiling.tile_for_registers ~index:"i" ~tile:8 k in
  Helpers.check_equiv ~inputs:(Kernels.test_inputs k) ~reference:k k'
    "tiling semantics";
  let _, rep = Transform.Scalar_replace.run k' in
  Alcotest.(check bool) "banks at most 8 wide" true
    (List.for_all (fun (_, n) -> n <= 8) rep.Transform.Scalar_replace.banks)

(* ------------------------------------------------------------------ *)
(* Property tests: the full pipeline preserves semantics *)

let prop_pipeline_preserves_semantics =
  Helpers.qtest "pipeline preserves semantics (random kernels)" ~count:120
    QCheck2.Gen.(
      Helpers.gen_kernel >>= fun k ->
      Helpers.gen_vector_for k >>= fun v -> return (k, v))
    (fun (k, v) ->
      let r = apply v k in
      Helpers.equivalent ~inputs:(Helpers.inputs_for k) ~reference:k r.P.kernel)

let prop_unroll_preserves_semantics =
  Helpers.qtest "unroll-and-jam alone preserves semantics" ~count:120
    QCheck2.Gen.(
      Helpers.gen_kernel >>= fun k ->
      Helpers.gen_vector_for k >>= fun v -> return (k, v))
    (fun (k, v) ->
      let k' = Transform.Unroll.run v k in
      Helpers.equivalent ~inputs:(Helpers.inputs_for k) ~reference:k k')

let test_paper_kernels_all_divisor_vectors () =
  List.iter
    (fun name ->
      let k = Option.get (Kernels.find name) in
      let spine = Loop_nest.spine k.Ast.k_body in
      List.iter
        (fun (uo, ui) ->
          match spine with
          | a :: b :: _ ->
              let v = [ (a.Ast.index, uo); (b.Ast.index, ui) ] in
              let r = apply v k in
              Alcotest.(check bool)
                (Printf.sprintf "%s %s" name (Helpers.vector_to_string v))
                true
                (Helpers.equivalent
                   ~inputs:(Kernels.test_inputs k)
                   ~reference:k r.P.kernel)
          | _ -> ())
        [ (2, 2); (2, 4); (4, 2); (1, 8); (8, 1); (3, 3); (2, 8) ])
    Kernels.names

let () =
  Alcotest.run "transform"
    [
      ( "simplify",
        [
          Alcotest.test_case "folding" `Quick test_simplify_folds;
          Alcotest.test_case "dead branches" `Quick test_simplify_kills_dead_branches;
          Alcotest.test_case "trip-1 inlining" `Quick test_simplify_inlines_trip1;
          Alcotest.test_case "range folding" `Quick test_fold_ranges;
        ] );
      ( "unroll",
        [
          Alcotest.test_case "structure" `Quick test_unroll_structure;
          Alcotest.test_case "epilogue" `Quick test_unroll_epilogue;
          Alcotest.test_case "full unroll" `Quick test_unroll_full;
          Alcotest.test_case "clamping" `Quick test_unroll_clamp;
          Alcotest.test_case "jam legality" `Quick test_jam_legal;
          prop_unroll_preserves_semantics;
        ] );
      ( "peel",
        [
          Alcotest.test_case "first" `Quick test_peel_first;
          Alcotest.test_case "last" `Quick test_peel_last;
          Alcotest.test_case "guard specialisation" `Quick test_peel_kills_guard;
        ] );
      ( "licm",
        [
          Alcotest.test_case "hoists invariants" `Quick test_licm_hoists;
          Alcotest.test_case "write safety" `Quick test_licm_respects_writes;
        ] );
      ( "scalar-replacement",
        [
          Alcotest.test_case "FIR figure-1 shape" `Quick test_fir_2x2_shape;
          Alcotest.test_case "MM clean innermost" `Quick test_mm_inner_clean;
          Alcotest.test_case "JAC chains" `Quick test_jac_chains;
          Alcotest.test_case "register budget" `Quick test_register_budget;
        ] );
      ( "tiling",
        [
          Alcotest.test_case "strip-mine" `Quick test_strip_mine;
          Alcotest.test_case "interchange" `Quick test_interchange;
          Alcotest.test_case "interchange legality" `Quick test_interchange_illegal;
          Alcotest.test_case "tile for registers" `Quick test_tile_for_registers;
        ] );
      ( "pipeline",
        [
          prop_pipeline_preserves_semantics;
          Alcotest.test_case "paper kernels x divisor vectors" `Slow
            test_paper_kernels_all_divisor_vectors;
        ] );
    ]
