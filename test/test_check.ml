(** The check layer: clean kernels stay clean (including across the
    verified divisor lattice, with selections bit-identical to an
    unverified sweep), mutated kernels are flagged, the legality pass
    agrees with the dependence analysis on hand-built carried
    dependences, a deliberately broken transform is caught with a
    stage-tagged diagnostic, and the [defacto check] exit codes follow
    the 0/1/2 discipline. *)

open Ir
module Diag = Check.Diag
module Design = Dse.Design
module Space = Dse.Space

let parse name src =
  match Frontend.Parser.kernel_of_string_res ~name src with
  | Ok k -> k
  | Error msg -> Alcotest.failf "parse %s: %s" name msg

let all_builtin () =
  List.map (fun n -> (n, Option.get (Kernels.find n))) Kernels.names
  @ List.map (fun n -> (n, Option.get (Gallery.find n))) Gallery.names

(* ------------------------------------------------------------------ *)
(* Clean kernels are clean *)

let test_builtins_clean () =
  List.iter
    (fun (name, k) ->
      let ds = Check.Run.all k in
      Alcotest.(check int)
        (name ^ " exit code (findings: "
        ^ String.concat "; " (List.map (Diag.render ~file:name) ds)
        ^ ")")
        0
        (Check.Run.exit_code ds))
    (all_builtin ())

(* Every divisor-lattice point of every built-in kernel validates, and
   verification never changes the selected design. *)
let verified_lattice name k ~max_product =
  let profile = Hls.Estimate.default_profile () in
  let plain = Design.context ~profile k in
  let verified = Design.context ~profile ~verify:true k in
  let sp_plain = Space.sweep ~max_product ~jobs:1 plain in
  let sp_verified = Space.sweep ~max_product ~jobs:1 verified in
  Alcotest.(check int)
    (name ^ " verified every lattice point")
    (List.length sp_verified.Space.points)
    verified.Design.stats.Design.checked_points;
  Alcotest.(check int)
    (name ^ " zero violations")
    0 verified.Design.stats.Design.verify_violations;
  let best sp ctx = (Option.get (Space.best_fitting ctx sp)).Space.vector in
  Alcotest.(check bool)
    (name ^ " same selection verified/unverified")
    true
    (Design.vector_equal (best sp_plain plain) (best sp_verified verified))

let test_paper_lattice_verified () =
  List.iter
    (fun name ->
      verified_lattice name (Option.get (Kernels.find name)) ~max_product:64)
    Kernels.names

let test_gallery_lattice_verified () =
  List.iter
    (fun name ->
      verified_lattice name (Option.get (Gallery.find name)) ~max_product:16)
    Gallery.names

(* ------------------------------------------------------------------ *)
(* Mutations are flagged (qcheck) *)

let flagged k = Check.Run.exit_code (Check.Run.all k) = 2

(* Dropping a declaration leaves uses of the array undeclared. *)
let prop_dropped_decl =
  Helpers.qtest "dropped declaration flagged" ~count:50 Helpers.gen_kernel
    (fun k -> flagged { k with Ast.k_arrays = List.tl k.Ast.k_arrays })

(* Generated arrays are sized exactly to their own subscript range, so
   swapping the subscripts of the output write and the first input read
   sends the array with the smaller extent out of bounds whenever the
   extents differ. *)
let swap_subscripts (k : Ast.kernel) =
  let out_sub = ref None and in_sub = ref None in
  let rec scan_expr = function
    | Ast.Arr ("a0", [ s ]) -> if !in_sub = None then in_sub := Some s
    | Ast.Arr (_, subs) -> List.iter scan_expr subs
    | Ast.Bin (_, a, b) ->
        scan_expr a;
        scan_expr b
    | Ast.Un (_, a) -> scan_expr a
    | Ast.Cond (c, a, b) ->
        scan_expr c;
        scan_expr a;
        scan_expr b
    | Ast.Var _ | Ast.Int _ -> ()
  in
  let rec scan_stmt = function
    | Ast.Assign (Ast.Larr ("out", [ s ]), rhs) ->
        if !out_sub = None then out_sub := Some s;
        scan_expr rhs
    | Ast.Assign (_, rhs) -> scan_expr rhs
    | Ast.For l -> List.iter scan_stmt l.Ast.body
    | Ast.If (_, t, e) ->
        List.iter scan_stmt t;
        List.iter scan_stmt e
    | Ast.Rotate _ -> ()
  in
  List.iter scan_stmt k.Ast.k_body;
  match (!out_sub, !in_sub) with
  | Some os, Some is ->
      let rec rw_expr = function
        | Ast.Arr ("a0", [ s ]) when s = is -> Ast.Arr ("a0", [ os ])
        | Ast.Arr (a, subs) -> Ast.Arr (a, List.map rw_expr subs)
        | Ast.Bin (op, a, b) -> Ast.Bin (op, rw_expr a, rw_expr b)
        | Ast.Un (op, a) -> Ast.Un (op, rw_expr a)
        | Ast.Cond (c, a, b) -> Ast.Cond (rw_expr c, rw_expr a, rw_expr b)
        | (Ast.Var _ | Ast.Int _) as e -> e
      in
      let rec rw_stmt = function
        | Ast.Assign (Ast.Larr ("out", [ s ]), rhs) when s = os ->
            Ast.Assign (Ast.Larr ("out", [ is ]), rw_expr rhs)
        | Ast.Assign (lv, rhs) -> Ast.Assign (lv, rw_expr rhs)
        | Ast.For l -> Ast.For { l with Ast.body = List.map rw_stmt l.Ast.body }
        | Ast.If (c, t, e) ->
            Ast.If (rw_expr c, List.map rw_stmt t, List.map rw_stmt e)
        | Ast.Rotate _ as s -> s
      in
      Some { k with Ast.k_body = List.map rw_stmt k.Ast.k_body }
  | _ -> None

let extent k name = List.hd (Option.get (Ast.find_array k name)).Ast.a_dims

let prop_swapped_subscript =
  Helpers.qtest "swapped subscript flagged" ~count:100 Helpers.gen_kernel
    (fun k ->
      QCheck2.assume (extent k "out" <> extent k "a0");
      match swap_subscripts k with
      | None -> QCheck2.assume_fail ()
      | Some k' -> flagged k')

(* Widening a loop that drives the output subscript overruns the output
   array, which is sized exactly to the original trips. *)
let widen_bound (k : Ast.kernel) =
  let writes =
    List.filter
      (fun (a : Analysis.Access.t) ->
        a.Analysis.Access.array = "out" && a.Analysis.Access.kind = Analysis.Access.Write)
      (Analysis.Access.collect k.Ast.k_body)
  in
  let var =
    List.find_map
      (fun (a : Analysis.Access.t) ->
        match a.Analysis.Access.affine with
        | Some f :: _ -> (
            match Affine.vars f with v :: _ -> Some v | [] -> None)
        | _ -> None)
      writes
  in
  Option.map
    (fun v ->
      let rec widen = function
        | Ast.For l when l.Ast.index = v ->
            Ast.For { l with Ast.hi = l.Ast.hi + 4 }
        | Ast.For l -> Ast.For { l with Ast.body = List.map widen l.Ast.body }
        | s -> s
      in
      { k with Ast.k_body = List.map widen k.Ast.k_body })
    var

let prop_widened_bound =
  Helpers.qtest "widened loop bound flagged" ~count:50 Helpers.gen_kernel
    (fun k ->
      match widen_bound k with
      | None -> QCheck2.assume_fail ()
      | Some k' -> flagged k')

(* ------------------------------------------------------------------ *)
(* Legality agrees with the dependence analysis *)

let has_jam_reversing_dep k =
  (* the predicate's ground truth, recomputed straight from the
     dependence analysis: an outer-carried dependence with a negative or
     coupled entry further in *)
  List.exists
    (fun (d : Analysis.Dependence.dep) ->
      let rec go = function
        | [] -> false
        | Analysis.Dependence.Exact 0 :: rest
        | Analysis.Dependence.Any :: rest ->
            go rest
        | Analysis.Dependence.Exact v :: rest ->
            v < 0
            || List.exists
                 (function
                   | Analysis.Dependence.Exact w -> w < 0
                   | Analysis.Dependence.Coupled -> true
                   | Analysis.Dependence.Any -> false)
                 rest
        | Analysis.Dependence.Coupled :: _ -> true
      in
      go d.Analysis.Dependence.distance)
    (Analysis.Dependence.dependences k k.Ast.k_body)

let legality_example name src ~legal =
  let k = parse name src in
  Alcotest.(check bool) (name ^ " jam_unroll_legal") legal
    (Check.Legality.jam_unroll_legal k);
  Alcotest.(check bool) (name ^ " agrees with Dependence") (not legal)
    (has_jam_reversing_dep k)

let test_legality_vs_dependence () =
  (* distance (1, -1): fusing the unrolled outer iterations reverses the
     dependence — the classic illegal unroll-and-jam *)
  legality_example "carried-(1,-1)" ~legal:false
    {| int A[9][9];
       for (i = 0; i < 8; i++)
         for (j = 1; j < 8; j++)
           A[i+1][j-1] = A[i][j] + 1; |};
  (* distance (1, 1): lexicographically positive throughout, jam-safe *)
  legality_example "carried-(1,1)" ~legal:true
    {| int A[9][9];
       for (i = 0; i < 8; i++)
         for (j = 0; j < 8; j++)
           A[i+1][j+1] = A[i][j] + 1; |};
  (* no dependence at all *)
  legality_example "independent" ~legal:true
    {| int A[8][8];
       int B[8][8];
       for (i = 0; i < 8; i++)
         for (j = 0; j < 8; j++)
           A[i][j] = B[i][j] + 1; |}

let reuse_group_for k array =
  List.find
    (fun (g : Analysis.Reuse.group) ->
      g.Analysis.Reuse.array = array
      && g.Analysis.Reuse.kind = Analysis.Access.Read
      && List.length g.Analysis.Reuse.members > 1)
    (Analysis.Reuse.groups k.Ast.k_body)

let test_replaceable_group () =
  (* A[i+j] vs A[i+j+1]: the distance system i+j = i'+j'+1 has infinitely
     many solutions per iteration — coupled, not replaceable *)
  let coupled =
    parse "coupled"
      {| int A[20];
         int out[10][10];
         for (i = 0; i < 10; i++)
           for (j = 0; j < 10; j++)
             out[i][j] = A[i+j] + A[i+j+1]; |}
  in
  let g = reuse_group_for coupled "A" in
  Alcotest.(check bool) "coupled group not replaceable" false
    (Check.Legality.replaceable_group coupled g);
  (* A[j] vs A[j+1]: exact distance 1 along j, any along i — replaceable *)
  let consistent =
    parse "consistent"
      {| int A[11];
         int out[10][10];
         for (i = 0; i < 10; i++)
           for (j = 0; j < 10; j++)
             out[i][j] = A[j] + A[j+1]; |}
  in
  let g = reuse_group_for consistent "A" in
  Alcotest.(check bool) "consistent group replaceable" true
    (Check.Legality.replaceable_group consistent g)

(* ------------------------------------------------------------------ *)
(* Translation validation *)

let test_validate_clean_and_identical () =
  List.iter
    (fun (name, k) ->
      let outcome = Check.Validate.run k in
      Alcotest.(check int) (name ^ " no violations") 0
        (List.length (Check.Validate.violations outcome));
      match outcome.Check.Validate.result with
      | None -> Alcotest.failf "%s: validated pipeline produced no result" name
      | Some r ->
          let plain = Transform.Pipeline.apply Transform.Pipeline.default k in
          Alcotest.(check bool)
            (name ^ " validated result bit-identical")
            true
            (Ast.equal_kernel r.Transform.Pipeline.kernel
               plain.Transform.Pipeline.kernel))
    (all_builtin ())

(* A broken unroll stage: the post-stage kernel writes D[0] where the
   pre-stage kernel wrote all of D. The footprint comparison must report
   an error diagnostic carrying the stage tag. *)
let test_broken_transform_caught () =
  let k = Option.get (Kernels.find "fir") in
  let rec break_stmt = function
    | Ast.Assign (Ast.Larr ("D", _), rhs) ->
        Ast.Assign (Ast.Larr ("D", [ Ast.Int 0 ]), rhs)
    | Ast.For l -> Ast.For { l with Ast.body = List.map break_stmt l.Ast.body }
    | s -> s
  in
  let broken = { k with Ast.k_body = List.map break_stmt k.Ast.k_body } in
  let pre = Check.Validate.footprint k in
  let post = Check.Validate.footprint broken in
  let ds = Check.Validate.compare_footprints ~stage:"unroll" ~pre ~post in
  Alcotest.(check bool) "stage-tagged error reported" true
    (List.exists
       (fun (d : Diag.t) ->
         d.Diag.severity = Diag.Error && d.Diag.stage = Some "unroll")
       ds)

(* ------------------------------------------------------------------ *)
(* Exit-code discipline of the installed binary *)

(* Resolve paths against the test binary so the test works both under
   [dune runtest] (cwd = test dir) and [dune exec] (cwd = root). *)
let build_path p = Filename.concat (Filename.dirname Sys.executable_name) p

let defacto args =
  Sys.command
    (Filename.quote_command
       (build_path "../bin/defacto.exe")
       ~stdout:Filename.null ~stderr:Filename.null args)

let test_exit_codes () =
  Alcotest.(check int) "clean kernel exits 0" 0 (defacto [ "check"; "-k"; "fir" ]);
  Alcotest.(check int) "clean fixture exits 0" 0
    (defacto [ "check"; "-f"; (build_path "../examples/checks/saxpy_ok.c") ]);
  Alcotest.(check int) "warning fixture exits 1" 1
    (defacto [ "check"; "-f"; (build_path "../examples/checks/guarded_oob_warn.c") ]);
  Alcotest.(check int) "error fixture exits 2" 2
    (defacto [ "check"; "-f"; (build_path "../examples/checks/oob_err.c") ]);
  Alcotest.(check int) "front-end rejection exits 2" 2
    (defacto [ "check"; "-f"; (build_path "../examples/checks/parse_err.c") ])

let () =
  Alcotest.run "check"
    [
      ( "clean",
        [
          Alcotest.test_case "built-ins clean" `Quick test_builtins_clean;
          Alcotest.test_case "paper lattice verified" `Slow
            test_paper_lattice_verified;
          Alcotest.test_case "gallery lattice verified" `Slow
            test_gallery_lattice_verified;
        ] );
      ( "mutations",
        [ prop_dropped_decl; prop_swapped_subscript; prop_widened_bound ] );
      ( "legality",
        [
          Alcotest.test_case "jam vs dependence" `Quick
            test_legality_vs_dependence;
          Alcotest.test_case "replaceable groups" `Quick test_replaceable_group;
        ] );
      ( "validate",
        [
          Alcotest.test_case "clean and bit-identical" `Quick
            test_validate_clean_and_identical;
          Alcotest.test_case "broken transform caught" `Quick
            test_broken_transform_caught;
        ] );
      ( "exit-codes",
        [ Alcotest.test_case "0/1/2 discipline" `Quick test_exit_codes ] );
    ]
