(** The incremental evaluation paths must be invisible in the results:
    a context with the structure-sharing machinery on (DFG arena,
    region-level schedule snapshots, delta transform cache — the
    default) and one with it off ([--no-incremental]) must produce
    field-for-field identical design points for the same evaluation
    sequence. Sequences matter: the delta cache and the region snapshots
    only engage when consecutive points share structure, so each check
    drives both contexts through the same multi-point walk. *)

open Ir
module Design = Dse.Design
module Space = Dse.Space

let points_identical (a : Design.point) (b : Design.point) =
  Design.vector_equal a.Design.vector b.Design.vector
  && compare a.Design.estimate b.Design.estimate = 0
  && a.Design.kernel = b.Design.kernel
  && a.Design.report = b.Design.report

(* ------------------------------------------------------------------ *)
(* Random kernels, random evaluation sequences *)

let prop_incremental_exact_random =
  Helpers.qtest "incremental = from-scratch (random kernels)" ~count:60
    QCheck2.Gen.(
      Helpers.gen_kernel >>= fun k ->
      list_size (int_range 2 6) (Helpers.gen_vector_for k) >>= fun vs ->
      return (k, vs))
    (fun (k, vectors) ->
      let profile = Hls.Estimate.default_profile () in
      let inc = Design.context ~profile ~incremental:true k in
      let scratch = Design.context ~profile ~incremental:false k in
      List.for_all
        (fun v ->
          points_identical (Design.evaluate inc v) (Design.evaluate scratch v))
        vectors)

(* ------------------------------------------------------------------ *)
(* Paper kernels, full divisor lattices *)

let test_incremental_exact_lattice () =
  List.iter
    (fun name ->
      let k = Option.get (Kernels.find name) in
      let profile = Hls.Estimate.default_profile () in
      let inc = Design.context ~profile ~incremental:true k in
      let scratch = Design.context ~profile ~incremental:false k in
      let sp_inc = Space.sweep ~max_product:16 ~jobs:1 inc in
      let sp_scr = Space.sweep ~max_product:16 ~jobs:1 scratch in
      Alcotest.(check int)
        (name ^ ": same lattice")
        (List.length sp_scr.Space.points)
        (List.length sp_inc.Space.points);
      List.iter2
        (fun (a : Space.sweep_point) (b : Space.sweep_point) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s %s" name
               (Helpers.vector_to_string a.Space.vector))
            true
            (points_identical a.Space.point b.Space.point))
        sp_inc.Space.points sp_scr.Space.points;
      (* The sharing machinery must actually have been exercised — a
         regression that silently disables it would leave the equality
         trivially true. The deeper nests feed both caches even at this
         small product bound. *)
      if List.mem name [ "jac"; "sobel" ] then begin
        Alcotest.(check bool)
          (name ^ ": region snapshots restored")
          true
          (inc.Design.stats.Design.region_memo_hits > 0);
        Alcotest.(check bool)
          (name ^ ": delta transforms reused")
          true
          (inc.Design.stats.Design.delta_reuses > 0)
      end;
      Alcotest.(check int)
        (name ^ ": scratch context restored no snapshots")
        0 scratch.Design.stats.Design.region_memo_hits;
      Alcotest.(check int)
        (name ^ ": scratch context reused no deltas")
        0 scratch.Design.stats.Design.delta_reuses)
    Kernels.names

(* ------------------------------------------------------------------ *)
(* The simulated datapath is identical through the incremental paths *)

let test_sim_unchanged () =
  let k = Option.get (Kernels.find "jac") in
  let profile = Hls.Estimate.default_profile () in
  let inc = Design.context ~profile ~incremental:true k in
  let inputs = Kernels.test_inputs ~seed:11 k in
  let reference = Eval.observables (Eval.run ~inputs k) in
  List.iter
    (fun vector ->
      let pt = Design.evaluate inc vector in
      let sim = Hls.Sim.run ~inputs profile pt.Design.kernel in
      List.iter
        (fun (arr, data) ->
          Alcotest.(check bool)
            (Printf.sprintf "jac %s %s" (Helpers.vector_to_string vector) arr)
            true
            (List.assoc_opt arr sim.Hls.Sim.arrays = Some data))
        reference)
    [ []; [ ("i", 2) ]; [ ("i", 2); ("j", 2) ]; [ ("i", 4); ("j", 4) ] ]

let () =
  Alcotest.run "incremental"
    [
      ( "exactness",
        [
          prop_incremental_exact_random;
          Alcotest.test_case "full divisor lattices" `Quick
            test_incremental_exact_lattice;
          Alcotest.test_case "datapath unchanged" `Quick test_sim_unchanged;
        ] );
    ]
