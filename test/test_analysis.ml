(** Analysis tests: access collection, dependence distances (validated
    against brute-force subscript enumeration), independence tests, and
    uniformly generated sets. *)

open Ir
module B = Builder
module Access = Analysis.Access
module Dep = Analysis.Dependence
module Reuse = Analysis.Reuse

let fir () = Option.get (Kernels.find "fir")
let jac () = Option.get (Kernels.find "jac")
let mm () = Option.get (Kernels.find "mm")

(* ------------------------------------------------------------------ *)
(* Access collection *)

let test_collect_fir () =
  let k = fir () in
  let accesses = Access.collect k.Ast.k_body in
  Alcotest.(check int) "4 accesses" 4 (List.length accesses);
  let reads = Access.reads accesses and writes = Access.writes accesses in
  Alcotest.(check int) "3 reads" 3 (List.length reads);
  Alcotest.(check int) "1 write" 1 (List.length writes);
  let w = List.hd writes in
  Alcotest.(check string) "write to D" "D" w.Access.array;
  Alcotest.(check (list string)) "write context" [ "j"; "i" ] (Access.indices w);
  Alcotest.(check bool) "affine" true (List.for_all Access.is_affine accesses)

let test_collect_guarded () =
  let k =
    B.kernel "t" ~arrays:[ Ast.array_decl "a" [ 8 ] ]
      [
        B.for_ "i" 0 4 (fun i ->
            [ B.if_ B.(i == B.int 0) [ B.store1 "a" i (B.arr1 "a" B.(i + B.int 4)) ] ]);
      ]
  in
  let accesses = Access.collect k.Ast.k_body in
  Alcotest.(check bool) "all guarded" true
    (List.for_all (fun a -> a.Access.guarded) accesses)

let test_varies_with () =
  let k = mm () in
  let accesses = Access.collect k.Ast.k_body in
  let find arr kind =
    List.find (fun a -> a.Access.array = arr && a.Access.kind = kind) accesses
  in
  let a = find "A" Access.Read in
  Alcotest.(check bool) "A varies i" true (Access.varies_with a "i");
  Alcotest.(check bool) "A not j" false (Access.varies_with a "j");
  Alcotest.(check bool) "A varies k" true (Access.varies_with a "k")

let test_linearized () =
  let k = mm () in
  let decl = Option.get (Ast.find_array k "A") in
  let accesses = Access.collect k.Ast.k_body in
  let a = List.find (fun x -> x.Access.array = "A") accesses in
  match Access.linearized decl a with
  | None -> Alcotest.fail "should linearize"
  | Some f ->
      (* A[i][k] with dims [32;16] -> 16*i + k *)
      Alcotest.(check int) "i coeff" 16 (Affine.coeff f "i");
      Alcotest.(check int) "k coeff" 1 (Affine.coeff f "k")

(* ------------------------------------------------------------------ *)
(* Dependence distances *)

let entry = Alcotest.testable Dep.pp_entry Dep.equal_entry

let dist_of k a1 a2 =
  let accesses = Access.collect k.Ast.k_body in
  let find pred = List.find pred accesses in
  Dep.ug_distance_vector (find a1) (find a2)

let test_fir_distances () =
  let k = fir () in
  (* D read vs D write: j distance 0, i unconstrained. *)
  (match
     dist_of k
       (fun a -> a.Access.array = "D" && Access.is_read a)
       (fun a -> a.Access.array = "D" && Access.is_write a)
   with
  | Dep.Distance [ dj; di ] ->
      Alcotest.check entry "j entry" (Dep.Exact 0) dj;
      Alcotest.check entry "i entry" Dep.Any di
  | r -> Alcotest.failf "unexpected result %s" (Dep.show_result r));
  (* S[i+j] self: coupled solutions. *)
  match
    dist_of k
      (fun a -> a.Access.array = "S")
      (fun a -> a.Access.array = "S")
  with
  | Dep.Distance [ dj; di ] ->
      Alcotest.check entry "j coupled" Dep.Coupled dj;
      Alcotest.check entry "i coupled" Dep.Coupled di
  | r -> Alcotest.failf "unexpected result %s" (Dep.show_result r)

let test_jac_distances () =
  let k = jac () in
  let accesses = Access.collect k.Ast.k_body in
  let a_reads = List.filter (fun a -> a.Access.array = "A") accesses in
  (* A[i][j-1] vs A[i][j+1]: exact (0, 2). *)
  let sub_const (a : Access.t) d =
    match List.nth a.Access.affine d with
    | Some f -> Affine.const_part f
    | None -> 0
  in
  let m1 = List.find (fun a -> sub_const a 1 = -1) a_reads in
  let p1 = List.find (fun a -> sub_const a 1 = 1) a_reads in
  (* the element A[i][j+1] reads is re-read by A[i][j-1] two j-iterations
     later: distance (0, 2) from p1 to m1 *)
  (match Dep.ug_distance_vector p1 m1 with
  | Dep.Distance [ di; dj ] ->
      Alcotest.check entry "i" (Dep.Exact 0) di;
      Alcotest.check entry "j" (Dep.Exact 2) dj
  | r -> Alcotest.failf "unexpected %s" (Dep.show_result r));
  (* A[i+1][j] to A[i-1][j]: exact (2, 0). *)
  let im1 = List.find (fun a -> sub_const a 0 = -1) a_reads in
  let ip1 = List.find (fun a -> sub_const a 0 = 1) a_reads in
  match Dep.ug_distance_vector ip1 im1 with
  | Dep.Distance [ di; dj ] ->
      Alcotest.check entry "i" (Dep.Exact 2) di;
      Alcotest.check entry "j" (Dep.Exact 0) dj
  | r -> Alcotest.failf "unexpected %s" (Dep.show_result r)

let test_independence () =
  (* a[2i] vs a[2i+1]: never equal. *)
  let k =
    B.kernel "t" ~arrays:[ Ast.array_decl "a" [ 32 ] ]
      [
        B.for_ "i" 0 8 (fun i ->
            [ B.store1 "a" B.((B.int 2 * i) + B.int 1) (B.arr1 "a" B.(B.int 2 * i)) ]);
      ]
  in
  let accesses = Access.collect k.Ast.k_body in
  let r = List.find Access.is_read accesses in
  let w = List.find Access.is_write accesses in
  Alcotest.(check bool) "gcd-independent" true
    (Dep.ug_distance_vector r w = Dep.Independent)

let test_banerjee () =
  (* Disjoint halves of one array: a[i] reads in [0,8), writes in [16,24). *)
  let k =
    B.kernel "t" ~arrays:[ Ast.array_decl "a" [ 32 ] ]
      [
        B.for_ "i" 0 8 (fun i ->
            [ B.store1 "a" B.(i + B.int 16) (B.arr1 "a" i) ]);
      ]
  in
  let decl = Ast.array_decl "a" [ 32 ] in
  let accesses = Access.collect k.Ast.k_body in
  let r = List.find Access.is_read accesses in
  let w = List.find Access.is_write accesses in
  Alcotest.(check bool) "banerjee proves independence" true
    (Analysis.Dependence.banerjee_test decl r w)

let test_carried_by () =
  let k = fir () in
  Alcotest.(check bool) "j carries nothing" true
    (Dep.loop_carries_no_dependence k k.Ast.k_body "j");
  Alcotest.(check bool) "i carries the reduction" false
    (Dep.loop_carries_no_dependence k k.Ast.k_body "i")

let test_carried_mm () =
  let k = mm () in
  Alcotest.(check bool) "i free" true (Dep.loop_carries_no_dependence k k.Ast.k_body "i");
  Alcotest.(check bool) "j free" true (Dep.loop_carries_no_dependence k k.Ast.k_body "j");
  Alcotest.(check bool) "k carries" false
    (Dep.loop_carries_no_dependence k k.Ast.k_body "k")

let test_min_distance () =
  (* b[i] = b[i-3] + 1 : carried distance 3. *)
  let k =
    B.kernel "t" ~arrays:[ Ast.array_decl "b" [ 16 ] ]
      [
        B.for_ "i" 3 16 (fun i ->
            [ B.store1 "b" i B.(arr1 "b" (i - B.int 3) + B.int 1) ]);
      ]
  in
  Alcotest.(check (option int)) "distance 3" (Some 3)
    (Dep.min_carried_distance k k.Ast.k_body "i")

(* ------------------------------------------------------------------ *)
(* Brute-force validation of the distance solver *)

(** For a random 2-deep nest with two accesses to the same array, compare
    the solver's verdict with brute-force: enumerate all iteration pairs
    and see which iteration differences make the subscripts collide. *)
let prop_distance_brute_force =
  Helpers.qtest "distance solver agrees with brute force" ~count:200
    QCheck2.Gen.(
      let gen_aff =
        let* ci = int_range 0 2 in
        let* cj = int_range 0 2 in
        let* c = int_range 0 4 in
        return (Affine.make [ ("i", ci); ("j", cj) ] c)
      in
      pair gen_aff gen_aff)
    (fun (f, g) ->
      let trip_i = 5 and trip_j = 5 in
      let loops =
        [
          { Ast.index = "i"; lo = 0; hi = trip_i; step = 1; body = []; l_span = None };
          { Ast.index = "j"; lo = 0; hi = trip_j; step = 1; body = []; l_span = None };
        ]
      in
      let size = 100 in
      let k =
        B.kernel "t" ~arrays:[ Ast.array_decl "a" [ size ] ]
          [
            B.loop "i" 0 trip_i
              [
                B.loop "j" 0 trip_j
                  [ B.store1 "a" (Affine.to_expr g) (B.arr1 "a" (Affine.to_expr f)) ];
              ];
          ]
      in
      let accesses = Access.collect k.Ast.k_body in
      let r = List.find Access.is_read accesses in
      let w = List.find Access.is_write accesses in
      let result = Dep.ug_distance_vector r w in
      (* brute force: all (ti, tj) with some iteration pair colliding *)
      let solutions = ref [] in
      List.iter
        (fun iv1 ->
          List.iter
            (fun iv2 ->
              let env1 v = List.assoc v (List.combine [ "i"; "j" ] iv1) in
              let env2 v = List.assoc v (List.combine [ "i"; "j" ] iv2) in
              if Affine.eval ~env:env1 f = Affine.eval ~env:env2 g then begin
                let d = List.map2 (fun a b -> b - a) iv1 iv2 in
                if not (List.mem d !solutions) then solutions := d :: !solutions
              end)
            (Loop_nest.iteration_vectors loops))
        (Loop_nest.iteration_vectors loops);
      match result with
      | Dep.Independent -> !solutions = []
      | Dep.Distance entries ->
          (* every brute-force solution must be admitted by the entries *)
          !solutions <> []
          && List.for_all
               (fun d ->
                 List.for_all2
                   (fun e v ->
                     match e with
                     | Dep.Exact x -> x = v
                     | Dep.Any | Dep.Coupled -> true)
                   entries d)
               !solutions
      | Dep.Unknown -> true)

(* ------------------------------------------------------------------ *)
(* Uniformly generated sets / reuse *)

let test_set_counts () =
  let expected = [ ("fir", (3, 1)); ("mm", (3, 1)); ("pat", (3, 1)); ("jac", (1, 1)) ] in
  List.iter
    (fun (name, (er, ew)) ->
      let k = Option.get (Kernels.find name) in
      let r, w = Reuse.set_counts k.Ast.k_body in
      Alcotest.(check (pair int int)) (name ^ " R/W sets") (er, ew) (r, w))
    expected

let test_jac_single_read_set () =
  let k = jac () in
  let reads = Reuse.read_sets k.Ast.k_body in
  Alcotest.(check int) "one uniformly generated read set" 1 (List.length reads);
  Alcotest.(check int) "four members" 4
    (List.length (List.hd reads).Reuse.members)

let test_invariant_loops () =
  let k = fir () in
  let groups = Reuse.groups k.Ast.k_body in
  let c = List.find (fun (g : Reuse.group) -> g.array = "C") groups in
  let invariant = Reuse.invariant_loops c in
  Alcotest.(check (list string)) "C invariant in j" [ "j" ]
    (List.map (fun (l : Ast.loop) -> l.index) invariant)

let test_bank_size () =
  let k = fir () in
  let groups = Reuse.groups k.Ast.k_body in
  let c = List.find (fun (g : Reuse.group) -> g.array = "C") groups in
  let spine = Loop_nest.spine k.Ast.k_body in
  let j = List.hd spine in
  Alcotest.(check int) "bank across j = 32 registers" 32
    (Reuse.bank_size c ~carrier:j)

let () =
  Alcotest.run "analysis"
    [
      ( "access",
        [
          Alcotest.test_case "collect FIR" `Quick test_collect_fir;
          Alcotest.test_case "guarded" `Quick test_collect_guarded;
          Alcotest.test_case "varies_with" `Quick test_varies_with;
          Alcotest.test_case "linearized" `Quick test_linearized;
        ] );
      ( "dependence",
        [
          Alcotest.test_case "FIR distances" `Quick test_fir_distances;
          Alcotest.test_case "JAC distances" `Quick test_jac_distances;
          Alcotest.test_case "gcd independence" `Quick test_independence;
          Alcotest.test_case "banerjee" `Quick test_banerjee;
          Alcotest.test_case "carried-by FIR" `Quick test_carried_by;
          Alcotest.test_case "carried-by MM" `Quick test_carried_mm;
          Alcotest.test_case "min distance" `Quick test_min_distance;
          prop_distance_brute_force;
        ] );
      ( "reuse",
        [
          Alcotest.test_case "set counts" `Quick test_set_counts;
          Alcotest.test_case "JAC single set" `Quick test_jac_single_read_set;
          Alcotest.test_case "invariant loops" `Quick test_invariant_loops;
          Alcotest.test_case "bank size" `Quick test_bank_size;
        ] );
    ]
