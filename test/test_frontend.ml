(** Front-end tests: lexing, parsing, declaration and semantic checks of
    the C subset. *)

open Ir

let parse src = Frontend.Parser.kernel_of_string_res ~name:"t" src

let parse_ok src =
  match parse src with
  | Ok k -> k
  | Error msg -> Alcotest.failf "unexpected parse error: %s" msg

let parse_err src =
  match parse src with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error msg -> msg

(* ------------------------------------------------------------------ *)

let test_kernels_parse () =
  List.iter
    (fun name ->
      let k = Option.get (Kernels.find name) in
      Alcotest.(check bool) (name ^ " has a loop nest") true
        (Loop_nest.nest_depth k.Ast.k_body >= 2))
    Kernels.names

let test_declarations () =
  let k =
    parse_ok
      {| int A[4][8]; unsigned char x; short s, t; int total;
         total = 0; |}
  in
  let a = Option.get (Ast.find_array k "A") in
  Alcotest.(check (list int)) "dims" [ 4; 8 ] a.Ast.a_dims;
  Alcotest.(check int) "elem width" 32 (Dtype.bits a.Ast.a_elem);
  let x = Option.get (Ast.find_scalar k "x") in
  Alcotest.(check bool) "unsigned char" true
    (Dtype.bits x.Ast.s_elem = 8 && not (Dtype.is_signed x.Ast.s_elem));
  let s = Option.get (Ast.find_scalar k "s") in
  Alcotest.(check int) "short" 16 (Dtype.bits s.Ast.s_elem)

let test_loop_forms () =
  let k =
    parse_ok
      {| int a[64];
         for (i = 0; i < 8; i++) a[i] = i;
         for (j = 0; j <= 7; j += 2) a[j] = j;
         for (m = 2; m < 10; m = m + 4) a[m] = m; |}
  in
  match k.Ast.k_body with
  | [ Ast.For l1; Ast.For l2; Ast.For l3 ] ->
      Alcotest.(check (pair int int)) "i++ bounds" (0, 8) (l1.lo, l1.hi);
      Alcotest.(check int) "i++ step" 1 l1.step;
      Alcotest.(check (pair int int)) "<= becomes exclusive" (0, 8) (l2.lo, l2.hi);
      Alcotest.(check int) "+= step" 2 l2.step;
      Alcotest.(check int) "m = m + 4 step" 4 l3.step
  | _ -> Alcotest.fail "expected three loops"

let test_precedence () =
  let k = parse_ok {| int a[1]; a[0] = 1 + 2 * 3 - 4 / 2; |} in
  let st = Eval.run k in
  Alcotest.(check (array int)) "C precedence" [| 5 |]
    (Option.get (Eval.array_value st "a"))

let test_ternary_and_calls () =
  let k =
    parse_ok
      {| int a[3];
         a[0] = 1 < 2 ? 10 : 20;
         a[1] = min(3, max(1, 7));
         a[2] = abs(0 - 9); |}
  in
  let st = Eval.run k in
  Alcotest.(check (array int)) "intrinsics" [| 10; 3; 9 |]
    (Option.get (Eval.array_value st "a"))

let test_comments_and_whitespace () =
  let k =
    parse_ok
      "int a[1]; // line comment\n/* block\n comment */ a[0] = /* inline */ 7;"
  in
  let st = Eval.run k in
  Alcotest.(check (array int)) "parsed through comments" [| 7 |]
    (Option.get (Eval.array_value st "a"))

let test_rotate_registers () =
  let k =
    parse_ok
      {| int r0, r1; int a[1];
         r0 = 1; r1 = 2;
         rotate_registers(r0, r1);
         a[0] = r0 * 10 + r1; |}
  in
  let st = Eval.run k in
  Alcotest.(check (array int)) "rotation applied" [| 21 |]
    (Option.get (Eval.array_value st "a"))

(* ------------------------------------------------------------------ *)
(* Errors *)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_errors () =
  let cases =
    [
      ("int a[4]; a[0] = b;", "undeclared");
      ("int a[4]; b[0] = 1;", "undeclared");
      ("int a[4]; for (i = 0; i < n; i++) a[i] = 0;", "constant");
      ("int a[4]; for (i = 0; j < 4; i++) a[i] = 0;", "index");
      ("int a[4]; for (i = 4; i < 0; i += 0) a[i] = 0;", "positive");
      ("int a[4]; a[0] = 1", "expected ';'");
      ("int a[4][2]; a[0] = 1;", "subscript");
      ("int a[4]; int a;", "duplicate");
      ("int a[4]; for (i = 0; i < 2; i++) for (i = 0; i < 2; i++) a[i] = 0;", "shadow");
      ("int a[4]; a[0] = foo(1);", "unknown function");
      ( "int a[4]; int x; for (i = 0; i < 4; i++) if (x > 0) for (k = 0; k \
         < 2; k++) a[i] = k;",
        "conditional" );
    ]
  in
  List.iter
    (fun (src, expect) ->
      let msg = parse_err src in
      Alcotest.(check bool)
        (Printf.sprintf "%S reports %s (got %s)" src expect msg)
        true (contains msg expect))
    cases

let test_error_position () =
  let msg = parse_err "int a[4];\n  a[0] = @;" in
  Alcotest.(check bool) ("position points to line 2: " ^ msg) true
    (contains msg "2:")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "frontend"
    [
      ( "parse",
        [
          Alcotest.test_case "built-in kernels" `Quick test_kernels_parse;
          Alcotest.test_case "declarations" `Quick test_declarations;
          Alcotest.test_case "loop forms" `Quick test_loop_forms;
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "ternary and intrinsics" `Quick test_ternary_and_calls;
          Alcotest.test_case "comments" `Quick test_comments_and_whitespace;
          Alcotest.test_case "rotate_registers" `Quick test_rotate_registers;
        ] );
      ( "errors",
        [
          Alcotest.test_case "diagnostics" `Quick test_errors;
          Alcotest.test_case "positions" `Quick test_error_position;
        ] );
    ]
