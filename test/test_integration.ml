(** End-to-end integration: C source -> front end -> exploration ->
    selected design -> generated code still computes the kernel -> VHDL
    emission. This is the full Figure-3 flow of the paper. *)


let full_flow ?(pipelined = true) name src =
  (* parse *)
  let k =
    match Frontend.Parser.kernel_of_string_res ~name src with
    | Ok k -> k
    | Error msg -> Alcotest.failf "parse: %s" msg
  in
  (* explore *)
  let profile = Hls.Estimate.default_profile ~pipelined () in
  let ctx = Dse.Design.context ~profile k in
  let r = Dse.Search.run ctx in
  let sel = r.Dse.Search.selected in
  (* the selected design's generated code is functionally the kernel *)
  let inputs = Kernels.test_inputs k in
  Alcotest.(check bool) (name ^ " selected code is correct") true
    (Helpers.equivalent ~inputs ~reference:k sel.Dse.Design.kernel);
  (* it fits and improves on the baseline *)
  Alcotest.(check bool) (name ^ " fits") true
    (Dse.Design.space sel <= ctx.Dse.Design.capacity);
  let base = Dse.Design.evaluate ctx (Dse.Design.ubase ctx) in
  Alcotest.(check bool) (name ^ " not slower than baseline") true
    (Dse.Design.cycles sel <= Dse.Design.cycles base);
  (* VHDL emission of the selected design succeeds *)
  let vhdl = Vhdl.Emit.emit_with_layout ~num_memories:4 sel.Dse.Design.kernel in
  Alcotest.(check bool) (name ^ " vhdl") true (String.length vhdl > 500);
  (sel, base)

let test_builtin_kernels_pipelined () =
  List.iter
    (fun name ->
      let src =
        match name with
        | "fir" -> Kernels.fir_src
        | "mm" -> Kernels.mm_src
        | "pat" -> Kernels.pat_src
        | "jac" -> Kernels.jac_src
        | _ -> Kernels.sobel_src
      in
      ignore (full_flow ~pipelined:true name src))
    Kernels.names

let test_builtin_kernels_non_pipelined () =
  List.iter
    (fun name ->
      let src =
        match name with
        | "fir" -> Kernels.fir_src
        | "mm" -> Kernels.mm_src
        | "pat" -> Kernels.pat_src
        | "jac" -> Kernels.jac_src
        | _ -> Kernels.sobel_src
      in
      ignore (full_flow ~pipelined:false name src))
    Kernels.names

let test_user_written_kernel () =
  (* a kernel that is none of the built-ins: a 2D correlation *)
  let src =
    {| short img[20][20];
       short w[3][3];
       int acc;
       short out[18][18];
       for (i = 0; i < 18; i++)
         for (j = 0; j < 18; j++) {
           acc = 0;
           for (di = 0; di < 3; di++)
             for (dj = 0; dj < 3; dj++)
               acc = acc + img[i+di][j+dj] * w[di][dj];
           out[i][j] = acc;
         } |}
  in
  ignore (full_flow "corr2d" src)

let test_speedups_reported () =
  (* Table-2 style: every kernel speeds up under both memory models. *)
  List.iter
    (fun pipelined ->
      List.iter
        (fun name ->
          let k = Option.get (Kernels.find name) in
          let profile = Hls.Estimate.default_profile ~pipelined () in
          let ctx = Dse.Design.context ~profile k in
          let r = Dse.Search.run ctx in
          let base = Dse.Design.evaluate ctx (Dse.Design.ubase ctx) in
          let speedup =
            float_of_int (Dse.Design.cycles base)
            /. float_of_int (Dse.Design.cycles r.Dse.Search.selected)
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s %s speedup %.2f > 1.5" name
               (if pipelined then "pipelined" else "non-pipelined")
               speedup)
            true (speedup > 1.5))
        Kernels.names)
    [ true; false ]

let () =
  Alcotest.run "integration"
    [
      ( "full-flow",
        [
          Alcotest.test_case "built-ins pipelined" `Quick test_builtin_kernels_pipelined;
          Alcotest.test_case "built-ins non-pipelined" `Quick
            test_builtin_kernels_non_pipelined;
          Alcotest.test_case "user kernel" `Quick test_user_written_kernel;
          Alcotest.test_case "speedups" `Slow test_speedups_reported;
        ] );
    ]
