(** Evaluation-cache, statistics and parallel-sweep tests: cached and
    uncached evaluation agree, the search memo keys on normalized
    vectors, the parallel sweep matches the sequential one
    point-for-point, and the stats counters are consistent. *)

module Design = Dse.Design
module Search = Dse.Search
module Space = Dse.Space

let ctx ?(pipelined = true) name =
  let k = Option.get (Kernels.find name) in
  let profile = Hls.Estimate.default_profile ~pipelined () in
  Design.context ~profile k

let estimates_equal (a : Design.point) (b : Design.point) =
  Design.cycles a = Design.cycles b
  && Design.space a = Design.space b
  && Design.balance a = Design.balance b

(* ------------------------------------------------------------------ *)
(* vector_equal is total (regression: used to raise Invalid_argument on
   vectors of different lengths) *)

let test_vector_equal_total () =
  Alcotest.(check bool) "partial = normalized" true
    (Design.vector_equal [ ("j", 4) ] [ ("j", 4); ("i", 1) ]);
  Alcotest.(check bool) "order-insensitive" true
    (Design.vector_equal [ ("i", 2); ("j", 3) ] [ ("j", 3); ("i", 2) ]);
  Alcotest.(check bool) "empty = all-ones" true
    (Design.vector_equal [] [ ("i", 1); ("j", 1) ]);
  Alcotest.(check bool) "differing factor" false
    (Design.vector_equal [ ("j", 4) ] [ ("j", 2); ("i", 1) ]);
  Alcotest.(check bool) "missing loop with factor > 1" false
    (Design.vector_equal [ ("j", 4) ] [ ("i", 2); ("j", 4) ])

let vector_gen spine =
  let open QCheck in
  let factor = Gen.int_range 1 20 in
  Gen.map
    (fun us ->
      List.concat
        (List.map2 (fun i u -> if u = 0 then [] else [ (i, u) ]) spine us))
    (Gen.flatten_l
       (List.map (fun _ -> Gen.oneof [ Gen.return 0; factor ]) spine))

let prop_vector_equal_reflexive =
  QCheck.Test.make ~count:200 ~name:"vector_equal total and reflexive"
    QCheck.(
      make ~print:(fun (a, b) ->
          Format.asprintf "%a vs %a" Design.pp_vector a Design.pp_vector b)
        (QCheck.Gen.pair (vector_gen [ "i"; "j"; "k" ]) (vector_gen [ "j"; "k" ])))
    (fun (a, b) ->
      (* must never raise, must be reflexive and symmetric *)
      let _ = Design.vector_equal a b in
      Design.vector_equal a a
      && Design.vector_equal a b = Design.vector_equal b a)

(* ------------------------------------------------------------------ *)
(* Cached and uncached evaluation agree *)

let prop_cached_uncached_agree =
  let c = ctx "mm" in
  let spine = List.map (fun (l : Ir.Ast.loop) -> l.Ir.Ast.index) c.Design.spine in
  QCheck.Test.make ~count:40 ~name:"cached evaluate = uncached evaluate"
    QCheck.(
      make ~print:(Format.asprintf "%a" Design.pp_vector) (vector_gen spine))
    (fun v ->
      estimates_equal (Design.evaluate c v) (Design.evaluate_uncached c v))

let test_memo_normalizes () =
  (* Regression: a partial vector and its spine-normalized form denote
     the same design and must share one synthesis run. *)
  let c = ctx "fir" in
  let p1 = Design.evaluate c [ ("j", 4) ] in
  let p2 = Design.evaluate c [ ("j", 4); ("i", 1) ] in
  Alcotest.(check bool) "same point" true (estimates_equal p1 p2);
  Alcotest.(check int) "one synthesis" 1 c.Design.stats.Design.evaluations;
  Alcotest.(check int) "one cache hit" 1 c.Design.stats.Design.cache_hits;
  Alcotest.(check int) "one memo entry" 1 (Design.cache_size c)

(* ------------------------------------------------------------------ *)
(* Search statistics *)

let test_search_stats_consistent () =
  List.iter
    (fun name ->
      let c = ctx name in
      let r = Search.run c in
      Alcotest.(check int)
        (name ^ ": evals = distinct designs in the trace")
        (Search.designs_evaluated r)
        r.Search.stats.Design.evaluations;
      Alcotest.(check int)
        (name ^ ": evals = designs memoized")
        (Design.cache_size c) r.Search.stats.Design.evaluations)
    Kernels.names

let test_search_reuses_cache () =
  let c = ctx "pat" in
  let r1 = Search.run c in
  let r2 = Search.run c in
  Alcotest.(check int) "second run synthesizes nothing" 0
    r2.Search.stats.Design.evaluations;
  Alcotest.(check bool) "same selection" true
    (Design.vector_equal r1.Search.selected.Design.vector
       r2.Search.selected.Design.vector)

let test_sweep_reuses_search_points () =
  (* The bench `frac` pattern: a sweep after a search on the same
     context must revisit the searched points for free. *)
  let c = ctx "sobel" in
  let r = Search.run c in
  let before = Design.stats_snapshot c in
  let sp = Space.sweep ~max_product:256 ~jobs:1 c in
  let d = Design.stats_diff ~before ~after:(Design.stats_snapshot c) in
  Alcotest.(check bool) "some points served from the cache" true
    (d.Design.cache_hits >= Search.designs_evaluated r);
  Alcotest.(check int) "every lattice point accounted for"
    (List.length sp.Space.points)
    (d.Design.evaluations + d.Design.cache_hits)

(* ------------------------------------------------------------------ *)
(* Lattice pruning and the parallel sweep *)

let prop_pruned_lattice_matches_filter =
  let c = ctx "mm" in
  let eligible = [ "i"; "j"; "k" ] in
  QCheck.Test.make ~count:50 ~name:"pruned enumeration = filter after"
    QCheck.(int_range 1 64)
    (fun max_product ->
      let pruned = Space.divisor_vectors ~max_product c ~eligible in
      let filtered =
        List.filter
          (fun v -> Design.product v <= max_product)
          (Space.divisor_vectors c ~eligible)
      in
      pruned = filtered)

let prop_parallel_sweep_matches_sequential =
  QCheck.Test.make ~count:6 ~name:"parallel sweep = sequential sweep"
    QCheck.(
      pair
        (oneofl [ "fir"; "mm"; "pat"; "jac"; "sobel" ])
        (int_range 4 128))
    (fun (name, max_product) ->
      let seq = Space.sweep ~max_product ~jobs:1 (ctx name) in
      let par = Space.sweep ~max_product ~jobs:3 (ctx name) in
      List.length seq.Space.points = List.length par.Space.points
      && List.for_all2
           (fun (a : Space.sweep_point) (b : Space.sweep_point) ->
             a.Space.vector = b.Space.vector
             && estimates_equal a.Space.point b.Space.point)
           seq.Space.points par.Space.points)

let test_parallel_sweep_merges_stats () =
  let c = ctx "pat" in
  let sp = Space.sweep ~jobs:2 c in
  Alcotest.(check int) "all points synthesized once"
    (List.length sp.Space.points)
    c.Design.stats.Design.evaluations;
  Alcotest.(check int) "forks merged into the shared cache"
    (List.length sp.Space.points)
    (Design.cache_size c)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "cache"
    [
      ( "vector-equal",
        [
          Alcotest.test_case "total on mixed lengths" `Quick
            test_vector_equal_total;
          qtest prop_vector_equal_reflexive;
        ] );
      ( "evaluation-cache",
        [
          qtest prop_cached_uncached_agree;
          Alcotest.test_case "memo keys on normalized vectors" `Quick
            test_memo_normalizes;
        ] );
      ( "stats",
        [
          Alcotest.test_case "search evals = cache misses" `Quick
            test_search_stats_consistent;
          Alcotest.test_case "second search is free" `Quick
            test_search_reuses_cache;
          Alcotest.test_case "sweep reuses search points" `Quick
            test_sweep_reuses_search_points;
        ] );
      ( "sweep",
        [
          qtest prop_pruned_lattice_matches_filter;
          qtest prop_parallel_sweep_matches_sequential;
          Alcotest.test_case "parallel sweep merges caches" `Quick
            test_parallel_sweep_merges_stats;
        ] );
    ]
