(** The joint transform-configuration space: persistent-store
    invalidation when any base pipeline option changes, soundness of the
    legality pre-pruner (rejected configurations raise [Stage_error] or
    demonstrably change results; accepted ones evaluate cleanly under
    translation validation), tier-1 admissibility over the joint space
    (tiling included), configuration normalization, and the joint
    sweep's dominance over the unroll-only sweep on the built-in
    kernels. *)

open Ir
module Design = Dse.Design
module Space = Dse.Space
module Store = Engine.Store
module Backend = Engine.Backend
module Persist = Engine.Persist
module Pipeline = Transform.Pipeline

let profile = Hls.Estimate.default_profile ()
let kernel name = Option.get (Kernels.find name)

let fresh_dir () =
  let f = Filename.temp_file "defacto-test-joint" "" in
  Sys.remove f;
  f

(* ------------------------------------------------------------------ *)
(* Satellite: the persisted store goes cold when any pipeline option
   changes. [Persist.config_string] digests the full base options —
   peel, LICM, tile and the scalar-replacement budget all land in the
   key, so flipping any of them reads as a different store. *)

let option_variants : (string * Pipeline.options) list =
  let d = Pipeline.default in
  [
    ("default", d);
    ("no-peel", { d with Pipeline.peel = false });
    ("no-licm", { d with Pipeline.licm = false });
    ("tiled", { d with Pipeline.tile = Some ("i", 4) });
    ( "no-scalar",
      { d with Pipeline.scalar = { d.Pipeline.scalar with max_registers = 0 } }
    );
  ]

let test_config_string_distinct () =
  let strings =
    List.map
      (fun (n, opts) ->
        (n, Persist.config_string ~backend:Backend.default.Backend.name profile opts))
      option_variants
  in
  List.iteri
    (fun i (ni, si) ->
      List.iteri
        (fun j (nj, sj) ->
          if i < j then
            Alcotest.(check bool)
              (Printf.sprintf "config strings differ: %s vs %s" ni nj)
              false (si = sj))
        strings)
    strings

let test_persist_invalidation () =
  let k = kernel "fir" in
  let dir = fresh_dir () in
  let cfg_of opts =
    Persist.config_string ~backend:Backend.default.Backend.name profile opts
  in
  let ctx = Design.context ~profile k in
  ignore (Design.evaluate ctx [ ("i", 2) ]);
  ignore (Design.evaluate ctx [ ("i", 4) ]);
  Persist.save_points ~cache_dir:dir
    ~config:(cfg_of Pipeline.default)
    ~kernel_key:(Persist.kernel_key k) ctx.Design.store;
  (* Same options: the points come back. *)
  let warm = Store.create () in
  let n_same =
    Persist.load_points ~cache_dir:dir
      ~config:(cfg_of Pipeline.default)
      ~kernel_key:(Persist.kernel_key k) warm
  in
  Alcotest.(check int) "same options reload the points" 2 n_same;
  (* Any flipped option: the store is cold. *)
  List.iter
    (fun (name, opts) ->
      if name <> "default" then begin
        let s = Store.create () in
        let n =
          Persist.load_points ~cache_dir:dir ~config:(cfg_of opts)
            ~kernel_key:(Persist.kernel_key k) s
        in
        Alcotest.(check int)
          (Printf.sprintf "store is cold under %s options" name)
          0 n
      end)
    option_variants;
  ignore (Persist.clear ~cache_dir:dir)

(* ------------------------------------------------------------------ *)
(* Random joint configurations over the random-kernel generator. The
   generated kernels are scalar-free perfect nests, so the only illegal
   configurations are tiles naming no loop — which must raise
   [Stage_error] when force-evaluated. The deterministic recurrence
   test below witnesses the other [Config_illegal] branch. *)

let gen_config_for (k : Ast.kernel) : Pipeline.config QCheck2.Gen.t =
  let open QCheck2.Gen in
  let spine = Loop_nest.spine k.Ast.k_body in
  let* vector = Helpers.gen_vector_for k in
  let* tile =
    let spine_tiles =
      List.map
        (fun (l : Ast.loop) ->
          let* t = int_range 2 (max 2 (Ast.loop_trip l)) in
          return (Some (l.Ast.index, t)))
        spine
    in
    oneof (return None :: return (Some ("zz", 4)) :: spine_tiles)
  in
  let* scalar_replace = bool in
  let* peel = bool in
  let* licm = bool in
  return { Pipeline.vector; tile; scalar_replace; peel; licm }

let gen_kernel_and_config : (Ast.kernel * Pipeline.config) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* k = Helpers.gen_kernel in
  let* c = gen_config_for k in
  return (k, c)

(* Force-evaluate a configuration through the raw pipeline (bypassing
   the context's normalization, which exists to repair exactly the
   spellings the pruner rejects) and compare against the source. *)
let force_outcome (k : Ast.kernel) (c : Pipeline.config) =
  let inputs = Helpers.inputs_for k in
  let reference = Eval.observables (Eval.run ~inputs k) in
  match
    Pipeline.apply (Pipeline.apply_config ~base:Pipeline.default c) k
  with
  | exception Pipeline.Stage_error _ -> `Raises
  | r ->
      if Eval.observables (Eval.run ~inputs r.Pipeline.kernel) = reference
      then `Clean
      else `Differs

let prune_soundness_prop (k, c) =
  match Check.Legality.config_verdict k c with
  | Check.Legality.Config_illegal _ -> (
      match force_outcome k c with
      | `Raises | `Differs -> true
      | `Clean ->
          QCheck2.Test.fail_reportf
            "illegal config %s evaluated cleanly on:@.%s"
            (Pipeline.config_to_string c)
            (Helpers.kernel_print k))
  | Check.Legality.Config_legal | Check.Legality.Config_redundant _ -> (
      (* Accepted configurations evaluate cleanly — through the real
         context path, under translation validation. *)
      let ctx = Design.context ~profile ~verify:true k in
      match Design.evaluate_config ctx c with
      | exception e ->
          QCheck2.Test.fail_reportf
            "accepted config %s raised %s on:@.%s"
            (Pipeline.config_to_string c) (Printexc.to_string e)
            (Helpers.kernel_print k)
      | _ ->
          let s = Design.stats_snapshot ctx in
          s.Design.verify_violations = 0)

let test_prune_soundness =
  Helpers.qtest "joint legality pruning is sound" ~count:150
    gen_kernel_and_config prune_soundness_prop

(* A configuration canonicalized as redundant denotes the same design:
   the context normalizes both spellings to the same point. *)
let redundant_agrees_prop (k, c) =
  match Check.Legality.config_verdict k c with
  | Check.Legality.Config_redundant canonical ->
      let ctx = Design.context ~profile k in
      let p = Design.evaluate_config ctx c in
      let p' = Design.evaluate_config ctx canonical in
      if p.Design.estimate = p'.Design.estimate then true
      else
        QCheck2.Test.fail_reportf
          "redundant %s and canonical %s disagree (cycles %d vs %d) on:@.%s"
          (Pipeline.config_to_string c)
          (Pipeline.config_to_string canonical)
          p.Design.estimate.Hls.Estimate.cycles
          p'.Design.estimate.Hls.Estimate.cycles (Helpers.kernel_print k)
  | _ -> true

let test_redundant_agrees =
  Helpers.qtest "redundant spellings evaluate identically" ~count:150
    gen_kernel_and_config redundant_agrees_prop

(* ------------------------------------------------------------------ *)
(* Deterministic witness for the hazard branch of [Config_illegal]: the
   non-commutative scalar recurrence (dependence-blind, flow-graph
   caught). Jamming it really does change results, so the pruner is
   rejecting genuinely unsafe configurations, not hedging. *)

let recurrence_kernel =
  let mk_loop index trip body =
    { Ast.index; lo = 0; hi = trip; step = 1; body; l_span = None }
  in
  {
    Ast.k_name = "rec";
    k_arrays = [ Ast.array_decl "a" [ 4; 4 ]; Ast.array_decl "out" [ 1 ] ];
    k_scalars = [ Ast.scalar_decl "s" ];
    k_body =
      [
        Ast.Assign (Ast.Lvar "s", Ast.Int 0);
        Ast.For
          (mk_loop "i" 4
             [
               Ast.For
                 (mk_loop "j" 4
                    [
                      Ast.Assign
                        ( Ast.Lvar "s",
                          Ast.Bin
                            ( Ast.Add,
                              Ast.Bin (Ast.Mul, Ast.Var "s", Ast.Int 2),
                              Ast.Arr ("a", [ Ast.Var "i"; Ast.Var "j" ]) ) );
                    ]);
             ]);
        Ast.Assign (Ast.Larr ("out", [ Ast.Int 0 ]), Ast.Var "s");
      ];
  }

let test_hazard_witness () =
  let c =
    {
      Pipeline.vector = [ ("i", 2); ("j", 1) ];
      tile = None;
      scalar_replace = true;
      peel = false;
      licm = false;
    }
  in
  (match Check.Legality.config_verdict recurrence_kernel c with
  | Check.Legality.Config_illegal _ -> ()
  | _ -> Alcotest.fail "expected the jam of the recurrence to be illegal");
  (match force_outcome recurrence_kernel c with
  | `Differs -> ()
  | `Raises -> Alcotest.fail "expected changed results, not an exception"
  | `Clean -> Alcotest.fail "jamming the recurrence did not change results");
  (* The unroll-only spelling of the same vector is just as illegal:
     the verdict does not depend on the toggles. *)
  let c0 = { c with Pipeline.scalar_replace = false } in
  match Check.Legality.config_verdict recurrence_kernel c0 with
  | Check.Legality.Config_illegal _ -> ()
  | _ -> Alcotest.fail "toggles must not mask the jam hazard"

(* A tile index naming no loop raises [Stage_error] — the other
   [Config_illegal] branch. *)
let test_unknown_tile_raises () =
  let k = kernel "fir" in
  let c =
    {
      Pipeline.vector = [];
      tile = Some ("zz", 4);
      scalar_replace = true;
      peel = true;
      licm = true;
    }
  in
  (match Check.Legality.config_verdict k c with
  | Check.Legality.Config_illegal _ -> ()
  | _ -> Alcotest.fail "unknown tile index must be illegal");
  match force_outcome k c with
  | `Raises -> ()
  | _ -> Alcotest.fail "unknown tile index must raise Stage_error"

(* ------------------------------------------------------------------ *)
(* Tier-1 admissibility over the joint space, tiling included: the
   quick bounds never exceed the synthesized estimate for any accepted
   configuration. *)

let admissible_prop (k, c) =
  match Check.Legality.config_verdict k c with
  | Check.Legality.Config_illegal _ -> true
  | _ -> (
      let ctx = Design.context ~profile k in
      let p = Design.evaluate_config ctx c in
      match Design.quick_config ctx c with
      | None -> QCheck2.Test.fail_reportf "no quick bound for %s"
                  (Pipeline.config_to_string c)
      | Some q ->
          if
            q.Hls.Quick.cycles_lb <= p.Design.estimate.Hls.Estimate.cycles
            && q.Hls.Quick.slices_lb <= p.Design.estimate.Hls.Estimate.slices
          then true
          else
            QCheck2.Test.fail_reportf
              "bound exceeds estimate for %s: cycles %d>%d or slices %d>%d on:@.%s"
              (Pipeline.config_to_string c) q.Hls.Quick.cycles_lb
              p.Design.estimate.Hls.Estimate.cycles q.Hls.Quick.slices_lb
              p.Design.estimate.Hls.Estimate.slices (Helpers.kernel_print k))

let test_admissible =
  Helpers.qtest "quick bounds admissible over the joint space" ~count:150
    gen_kernel_and_config admissible_prop

(* ------------------------------------------------------------------ *)
(* Configuration normalization. *)

let test_normalize () =
  let k = kernel "mm" in
  let ctx = Design.context ~profile k in
  let base = Design.base_config ctx [] in
  (* The tiled loop's unroll factor is forced to 1. *)
  let c =
    Design.normalize_config ctx
      { base with Design.vector = [ ("i", 2) ]; tile = Some ("i", 4) }
  in
  Alcotest.(check (option int)) "tiled loop pinned to factor 1" (Some 1)
    (List.assoc_opt "i" c.Design.vector);
  Alcotest.(check bool) "tile survives" true (c.Design.tile = Some ("i", 4));
  (* A non-divisor tile request is clamped to the divisor the
     strip-mine would use. *)
  let trip = Ast.loop_trip (List.hd ctx.Design.spine) in
  let c2 =
    Design.normalize_config ctx { base with Design.tile = Some ("i", trip - 1) }
  in
  (match c2.Design.tile with
  | Some ("i", t) ->
      Alcotest.(check bool) "clamped to a proper divisor" true
        (t > 1 && t < trip && trip mod t = 0)
  | other ->
      Alcotest.failf "expected a clamped tile, got %s"
        (match other with
        | None -> "none"
        | Some (i, t) -> Printf.sprintf "%s:%d" i t));
  (* Degenerate tiles are dropped. *)
  let c3 = Design.normalize_config ctx { base with Design.tile = Some ("i", 1) } in
  Alcotest.(check bool) "tile 1 dropped" true (c3.Design.tile = None);
  let c4 =
    Design.normalize_config ctx { base with Design.tile = Some ("i", trip) }
  in
  Alcotest.(check bool) "full-trip tile dropped" true (c4.Design.tile = None)

(* The vector API is the base-configuration special case: evaluating a
   vector and then its [base_config] spelling is one cache entry. *)
let test_vector_config_agree () =
  let k = kernel "fir" in
  let ctx = Design.context ~profile k in
  let p = Design.evaluate ctx [ ("i", 4) ] in
  let before = Design.stats_snapshot ctx in
  let p' = Design.evaluate_config ctx (Design.base_config ctx [ ("i", 4) ]) in
  let after = Design.stats_snapshot ctx in
  Alcotest.(check bool) "same estimate" true
    (p.Design.estimate = p'.Design.estimate);
  Alcotest.(check int) "no extra synthesis"
    before.Design.evaluations after.Design.evaluations

(* ------------------------------------------------------------------ *)
(* Warm replay across the configuration-keyed schema: persist points for
   non-base configurations (tile and toggles included), reload into a
   fresh store, and re-evaluate with zero syntheses. *)

let test_warm_replay_configs () =
  let k = kernel "mm" in
  let dir = fresh_dir () in
  let cfg =
    Persist.config_string ~backend:Backend.default.Backend.name profile
      Pipeline.default
  in
  let ctx = Design.context ~profile k in
  let base = Design.base_config ctx [] in
  let configs =
    [
      { base with Design.vector = [ ("i", 2) ] };
      { base with Design.vector = [ ("j", 2) ]; tile = Some ("k", 4) };
      { base with Design.scalar_replace = false; peel = false };
      { base with Design.licm = false; tile = Some ("k", 8) };
    ]
  in
  let cold = List.map (Design.evaluate_config ctx) configs in
  Persist.save_points ~cache_dir:dir ~config:cfg
    ~kernel_key:(Persist.kernel_key k) ctx.Design.store;
  let warm_store = Store.create () in
  let loaded =
    Persist.load_points ~cache_dir:dir ~config:cfg
      ~kernel_key:(Persist.kernel_key k) warm_store
  in
  Alcotest.(check bool) "all points reload" true
    (loaded >= List.length configs);
  let warm_ctx = Design.context ~profile ~store:warm_store k in
  let warm = List.map (Design.evaluate_config warm_ctx) configs in
  let s = Design.stats_snapshot warm_ctx in
  Alcotest.(check int) "zero syntheses on replay" 0 s.Design.evaluations;
  List.iter2
    (fun (c : Design.point) (w : Design.point) ->
      Alcotest.(check bool) "warm estimate equals cold" true
        (c.Design.estimate = w.Design.estimate))
    cold warm;
  ignore (Persist.clear ~cache_dir:dir)

(* ------------------------------------------------------------------ *)
(* The joint sweep dominates the unroll-only sweep: its search space
   contains every unroll-only point, so its selection can never be
   worse, on any built-in kernel. *)

let test_joint_dominates () =
  List.iter
    (fun name ->
      let k = kernel name in
      let ctx = Design.context ~profile k in
      let sw = Space.sweep ~max_product:16 ~jobs:1 ctx in
      let jctx = Design.context ~profile k in
      let j = Space.sweep_joint ~max_product:16 jctx in
      match (Space.best_fitting ctx sw, Space.joint_best jctx j) with
      | Some u, Some jb ->
          let uc = u.Space.point.Design.estimate.Hls.Estimate.cycles in
          let jc = jb.Space.point.Design.estimate.Hls.Estimate.cycles in
          Alcotest.(check bool)
            (Printf.sprintf "%s: joint (%d) <= unroll-only (%d)" name jc uc)
            true (jc <= uc)
      | None, _ -> Alcotest.failf "%s: no unroll-only selection" name
      | _, None -> Alcotest.failf "%s: no joint selection" name)
    Kernels.names

(* The exhaustive and best-first joint sweeps agree on the selection:
   the bound-guided prune is admissible. *)
let test_best_first_matches_exhaustive () =
  List.iter
    (fun name ->
      let k = kernel name in
      let cx = Design.context ~profile k in
      let ex = Space.sweep_joint ~max_product:8 ~exhaustive_below:max_int cx in
      let cb = Design.context ~profile k in
      let bf = Space.sweep_joint ~max_product:8 ~exhaustive_below:0 cb in
      match (Space.joint_best cx ex, Space.joint_best cb bf) with
      | Some a, Some b ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: best-first selection matches exhaustive" name)
            true
            (Design.config_equal a.Space.config b.Space.config
            && a.Space.point.Design.estimate = b.Space.point.Design.estimate)
      | None, None -> ()
      | _ -> Alcotest.failf "%s: sweeps disagree on having a selection" name)
    [ "fir"; "jac" ]

let () =
  Alcotest.run "joint"
    [
      ( "persist",
        [
          Alcotest.test_case "config strings pairwise distinct" `Quick
            test_config_string_distinct;
          Alcotest.test_case "option flip invalidates the store" `Quick
            test_persist_invalidation;
          Alcotest.test_case "warm replay of joint configs" `Quick
            test_warm_replay_configs;
        ] );
      ( "legality",
        [
          test_prune_soundness;
          test_redundant_agrees;
          Alcotest.test_case "recurrence jam hazard witness" `Quick
            test_hazard_witness;
          Alcotest.test_case "unknown tile index raises" `Quick
            test_unknown_tile_raises;
        ] );
      ( "bounds",
        [
          test_admissible;
          Alcotest.test_case "best-first matches exhaustive" `Quick
            test_best_first_matches_exhaustive;
        ] );
      ( "configs",
        [
          Alcotest.test_case "normalization" `Quick test_normalize;
          Alcotest.test_case "vector API agrees with base config" `Quick
            test_vector_config_agree;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "joint dominates unroll-only" `Quick
            test_joint_dominates;
        ] );
    ]
