(** Flow-graph framework: CFG shape against the documented node order,
    every dataflow analysis validated against an instrumented concrete
    interpreter on random kernels (and on the built-ins and their
    pipeline-transformed forms), the strengthened legality predicates
    cross-validated against the dependence-only ones, the
    scalar-replacement dead-store cross-check, and the zero-trip
    [Bounds.index_range] regression. *)

open Ir
module F = Analysis.Flowgraph
module Diag = Check.Diag
module G = QCheck2.Gen

let failf fmt = Printf.ksprintf failwith fmt

let all_builtin () =
  List.map (fun n -> (n, Option.get (Kernels.find n))) Kernels.names
  @ List.map (fun n -> (n, Option.get (Gallery.find n))) Gallery.names

let mk_loop ?(lo = 0) ?(step = 1) index hi body =
  { Ast.index; lo; hi; step; body; l_span = None }

let mk_kernel ?(arrays = []) ?(scalars = []) name body =
  { Ast.k_name = name; k_arrays = arrays; k_scalars = scalars; k_body = body }

(* ------------------------------------------------------------------ *)
(* CFG shape: the documented preorder node allocation and the
   trip-aware edges *)

let sorted_succ g i = List.sort compare g.F.succ.(i)

let test_cfg_straight_line_for () =
  (* entry=0; s=0 (1); header (2); s=s+a[i] (3); out[0]=s (4); exit=5 *)
  let k =
    mk_kernel "shape"
      ~arrays:[ Ast.array_decl "a" [ 4 ]; Ast.array_decl "out" [ 1 ] ]
      ~scalars:[ Ast.scalar_decl "s" ]
      [
        Ast.Assign (Ast.Lvar "s", Ast.Int 0);
        Ast.For
          (mk_loop "i" 4
             [
               Ast.Assign
                 ( Ast.Lvar "s",
                   Ast.Bin (Ast.Add, Ast.Var "s", Ast.Arr ("a", [ Ast.Var "i" ])) );
             ]);
        Ast.Assign (Ast.Larr ("out", [ Ast.Int 0 ]), Ast.Var "s");
      ]
  in
  let g = F.build k in
  Alcotest.(check int) "node count" 6 (Array.length g.F.nodes);
  Alcotest.(check int) "entry" 0 g.F.entry;
  Alcotest.(check int) "exit" 5 g.F.exit_;
  (match g.F.nodes.(2).F.kind with
  | F.Header l -> Alcotest.(check string) "header index" "i" l.Ast.index
  | _ -> Alcotest.fail "node 2 is not the loop header");
  Alcotest.(check (list int)) "entry -> init" [ 1 ] (sorted_succ g 0);
  Alcotest.(check (list int)) "init -> header" [ 2 ] (sorted_succ g 1);
  Alcotest.(check (list int)) "header -> body only (trip >= 1)" [ 3 ] (sorted_succ g 2);
  Alcotest.(check (list int)) "tail -> header and follow" [ 2; 4 ] (sorted_succ g 3);
  Alcotest.(check (list int)) "follow -> exit" [ 5 ] (sorted_succ g 4);
  Alcotest.(check bool) "all reachable" true
    (Array.for_all (fun b -> b) g.F.reachable)

let test_cfg_if_join () =
  (* entry=0; branch (1); then (2); else (3); join stmt (4); exit=5 *)
  let k =
    mk_kernel "ifshape"
      ~arrays:[ Ast.array_decl "out" [ 1 ] ]
      ~scalars:[ Ast.scalar_decl ~kind:Ast.Param "p"; Ast.scalar_decl "s" ]
      [
        Ast.If
          ( Ast.Bin (Ast.Lt, Ast.Var "p", Ast.Int 2),
            [ Ast.Assign (Ast.Lvar "s", Ast.Int 1) ],
            [ Ast.Assign (Ast.Lvar "s", Ast.Int 2) ] );
        Ast.Assign (Ast.Larr ("out", [ Ast.Int 0 ]), Ast.Var "s");
      ]
  in
  let g = F.build k in
  Alcotest.(check int) "node count" 6 (Array.length g.F.nodes);
  (match g.F.nodes.(1).F.kind with
  | F.Branch _ -> ()
  | _ -> Alcotest.fail "node 1 is not the branch");
  Alcotest.(check (list int)) "branch -> both arms" [ 2; 3 ] (sorted_succ g 1);
  Alcotest.(check (list int)) "then -> join" [ 4 ] (sorted_succ g 2);
  Alcotest.(check (list int)) "else -> join" [ 4 ] (sorted_succ g 3);
  (* both arms write s on every path: the read at the join is provably
     initialised *)
  let sites = F.use_before_def g in
  List.iter
    (fun (u : F.use_site) ->
      if u.F.u_node = 4 && F.equal_loc u.F.u_loc (F.Scalar "s") then
        Alcotest.(check bool) "s initialised at join" true
          (u.F.u_status = F.Initialized))
    sites

let test_cfg_zero_trip () =
  (* entry=0; header (1); body (2); follow (3); exit=4 *)
  let k =
    mk_kernel "zt"
      ~arrays:[ Ast.array_decl "out" [ 1 ] ]
      ~scalars:[ Ast.scalar_decl "s" ]
      [
        Ast.For (mk_loop "i" 0 [ Ast.Assign (Ast.Lvar "s", Ast.Int 1) ]);
        Ast.Assign (Ast.Larr ("out", [ Ast.Int 0 ]), Ast.Int 7);
      ]
  in
  let g = F.build k in
  Alcotest.(check int) "node count" 5 (Array.length g.F.nodes);
  Alcotest.(check (list int)) "header skips dead body" [ 3 ] (sorted_succ g 1);
  Alcotest.(check bool) "body node kept but unreachable" false g.F.reachable.(2);
  Alcotest.(check bool) "follow reachable" true g.F.reachable.(3)

let test_cfg_empty_body () =
  let g = F.build (mk_kernel "empty" []) in
  Alcotest.(check int) "entry+exit only" 2 (Array.length g.F.nodes);
  Alcotest.(check (list int)) "entry -> exit" [ 1 ] (sorted_succ g 0)

(* ------------------------------------------------------------------ *)
(* Instrumented reference interpreter.

   Nodes are matched to statements by replaying the builder's documented
   allocation order (entry first, then statements in preorder with a
   loop's header before its body). The interpreter then executes the
   kernel concretely, recording which definition each read observes, so
   the dataflow analyses' claims can be checked against ground truth. *)

type ann =
  | A_assign of int * Ast.lvalue * Ast.expr
  | A_rotate of int * string list
  | A_if of int * Ast.expr * ann list * ann list
  | A_for of int * Ast.loop * ann list

let annotate (body : Ast.stmt list) : ann list =
  let ctr = ref 1 in
  let rec go (s : Ast.stmt) =
    let id = !ctr in
    incr ctr;
    match s with
    | Ast.Assign (lv, e) -> A_assign (id, lv, e)
    | Ast.Rotate rs -> A_rotate (id, rs)
    | Ast.If (c, t, e) ->
        let t' = List.map go t in
        let e' = List.map go e in
        A_if (id, c, t', e')
    | Ast.For l -> A_for (id, l, List.map go l.Ast.body)
  in
  List.map go body

let check_alignment (g : F.t) (anns : ann list) =
  let rec chk (a : ann) =
    let expect id ok what =
      if not ok then failf "node %d is not the expected %s" id what
    in
    match a with
    | A_assign (id, lv, e) ->
        expect id
          (match g.F.nodes.(id).F.kind with
          | F.Assign (lv', e') -> Ast.equal_expr e e' && lv = lv'
          | _ -> false)
          "assignment"
    | A_rotate (id, rs) ->
        expect id
          (match g.F.nodes.(id).F.kind with
          | F.Rotate rs' -> rs = rs'
          | _ -> false)
          "rotate"
    | A_if (id, c, t, e) ->
        expect id
          (match g.F.nodes.(id).F.kind with
          | F.Branch c' -> Ast.equal_expr c c'
          | _ -> false)
          "branch";
        List.iter chk t;
        List.iter chk e
    | A_for (id, l, body) ->
        expect id
          (match g.F.nodes.(id).F.kind with
          | F.Header l' -> l.Ast.index = l'.Ast.index
          | _ -> false)
          "header";
        List.iter chk body
  in
  List.iter chk anns

(* A concrete memory location. *)
type cloc = CS of string | CA of string * int list

type trace = {
  (* (reader node, writer node): the read at [reader] observed the value
     last written by [writer] *)
  t_read_from : (int * int, unit) Hashtbl.t;
  (* nodes some instance of whose written value was read later (arrays
     surviving to exit count: the host reads them back) *)
  t_observed : (int, unit) Hashtbl.t;
  (* (node, scalar): a read at [node] found the scalar written *)
  t_read_written : (int * string, unit) Hashtbl.t;
  (* (node, scalar): a read at [node] found the scalar never written *)
  t_read_unwritten : (int * string, unit) Hashtbl.t;
}

let b2i b = if b then 1 else 0

let ev_bin (op : Ast.binop) a b =
  match op with
  | Ast.Add -> a + b
  | Ast.Sub -> a - b
  | Ast.Mul -> a * b
  | Ast.Div -> if b = 0 then 0 else a / b
  | Ast.Mod -> if b = 0 then 0 else a mod b
  | Ast.Lt -> b2i (a < b)
  | Ast.Le -> b2i (a <= b)
  | Ast.Gt -> b2i (a > b)
  | Ast.Ge -> b2i (a >= b)
  | Ast.Eq -> b2i (a = b)
  | Ast.Ne -> b2i (a <> b)
  | Ast.And -> b2i (a <> 0 && b <> 0)
  | Ast.Or -> b2i (a <> 0 || b <> 0)
  | Ast.Band -> a land b
  | Ast.Bor -> a lor b
  | Ast.Bxor -> a lxor b
  | Ast.Shl -> a lsl (b land 31)
  | Ast.Shr -> a asr (b land 31)
  | Ast.Min -> min a b
  | Ast.Max -> max a b

let ev_un (op : Ast.unop) a =
  match op with
  | Ast.Neg -> -a
  | Ast.Not -> b2i (a = 0)
  | Ast.Bnot -> lnot a
  | Ast.Abs -> abs a

(** Execute [anns] (the annotated body of [k]) concretely. [Param]
    scalars and arrays start host-initialised with deterministic values;
    [Temp]/[Register] scalars start unwritten (reads yield 0 and are
    recorded). Out-of-bounds accesses are skipped silently — they model
    no real cell, so they generate no events (transformed built-ins may
    evaluate both arms of a [Cond] mux). *)
let interp (k : Ast.kernel) (anns : ann list) : trace =
  let tr =
    {
      t_read_from = Hashtbl.create 64;
      t_observed = Hashtbl.create 64;
      t_read_written = Hashtbl.create 64;
      t_read_unwritten = Hashtbl.create 64;
    }
  in
  let scal : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (s : Ast.scalar_decl) ->
      if s.Ast.s_kind = Ast.Param then
        Hashtbl.replace scal s.Ast.s_name ((String.length s.Ast.s_name * 3) + 2))
    k.Ast.k_scalars;
  let dims : (string, int list) Hashtbl.t = Hashtbl.create 8 in
  let arrs : (string, (int list, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (a : Ast.array_decl) ->
      Hashtbl.replace dims a.Ast.a_name a.Ast.a_dims;
      Hashtbl.replace arrs a.Ast.a_name (Hashtbl.create 64))
    k.Ast.k_arrays;
  let lw : (cloc, int) Hashtbl.t = Hashtbl.create 64 in
  let in_bounds name idx =
    match Hashtbl.find_opt dims name with
    | None -> false
    | Some ds ->
        List.length ds = List.length idx
        && List.for_all2 (fun v d -> v >= 0 && v < d) idx ds
  in
  let note_read node c =
    (match Hashtbl.find_opt lw c with
    | Some w ->
        Hashtbl.replace tr.t_observed w ();
        Hashtbl.replace tr.t_read_from (node, w) ()
    | None -> ());
    match c with
    | CS s ->
        if Hashtbl.mem scal s then Hashtbl.replace tr.t_read_written (node, s) ()
        else Hashtbl.replace tr.t_read_unwritten (node, s) ()
    | CA _ -> ()
  in
  let write node c v =
    (match c with
    | CS s -> Hashtbl.replace scal s v
    | CA (a, idx) -> Hashtbl.replace (Hashtbl.find arrs a) idx v);
    Hashtbl.replace lw c node
  in
  let init_val name idx =
    (List.fold_left (fun acc v -> (acc * 5) + v + 3) (String.length name) idx
    mod 17)
    - 8
  in
  let rec ev node (e : Ast.expr) : int =
    match e with
    | Ast.Int n -> n
    | Ast.Var v ->
        note_read node (CS v);
        Option.value (Hashtbl.find_opt scal v) ~default:0
    | Ast.Arr (a, subs) ->
        let idx = List.map (ev node) subs in
        if not (in_bounds a idx) then 0
        else begin
          note_read node (CA (a, idx));
          match Hashtbl.find_opt (Hashtbl.find arrs a) idx with
          | Some x -> x
          | None -> init_val a idx
        end
    | Ast.Bin (op, x, y) -> ev_bin op (ev node x) (ev node y)
    | Ast.Un (op, x) -> ev_un op (ev node x)
    | Ast.Cond (c, t, e2) ->
        (* hardware evaluates both arms and muxes, matching the
           analysis's view of conditional reads *)
        let cv = ev node c in
        let tv = ev node t in
        let fv = ev node e2 in
        if cv <> 0 then tv else fv
  in
  let rec exec (a : ann) : unit =
    match a with
    | A_assign (id, Ast.Lvar s, e) -> write id (CS s) (ev id e)
    | A_assign (id, Ast.Larr (arr, subs), e) ->
        let v = ev id e in
        let idx = List.map (ev id) subs in
        if in_bounds arr idx then write id (CA (arr, idx)) v
    | A_rotate (id, rs) ->
        let vals =
          List.map
            (fun r ->
              note_read id (CS r);
              Option.value (Hashtbl.find_opt scal r) ~default:0)
            rs
        in
        let n = List.length rs in
        (* left rotation: r0 takes the old r1, ..., rn the old r0 *)
        List.iteri (fun i r -> write id (CS r) (List.nth vals ((i + 1) mod n))) rs
    | A_if (id, c, t, e) ->
        if ev id c <> 0 then List.iter exec t else List.iter exec e
    | A_for (id, l, body) ->
        if l.Ast.step > 0 then begin
          let i = ref l.Ast.lo in
          while !i < l.Ast.hi do
            write id (CS l.Ast.index) !i;
            List.iter exec body;
            i := !i + l.Ast.step
          done
        end
  in
  List.iter exec anns;
  (* the host reads every array back: final array writers are observed *)
  Hashtbl.iter
    (fun c w -> match c with CA _ -> Hashtbl.replace tr.t_observed w () | CS _ -> ())
    lw;
  tr

(* ------------------------------------------------------------------ *)
(* Soundness of every analysis against the interpreter *)

let soundness (k : Ast.kernel) : bool =
  let g = F.build k in
  let anns = annotate k.Ast.k_body in
  check_alignment g anns;
  let r = F.reaching g in
  let live = F.live g in
  let ant = F.anticipated g in
  let sites = F.use_before_def g in
  let tr = interp k anns in
  (* Reaching definitions: every concretely-observed (reader, writer)
     pair must be predicted — some definition made at the writer node
     reaches the reader's entry. *)
  Hashtbl.iter
    (fun (n, w) () ->
      let predicted =
        F.IntSet.exists
          (fun did -> r.F.r_defs.(did).F.d_node = w)
          r.F.r_sol.F.before.(n)
      in
      if not predicted then
        failf "node %d concretely reads a value written at node %d, \
               but no definition of node %d reaches node %d"
          n w w n)
    tr.t_read_from;
  (* Use-before-def: Initialized claims must never see an unwritten
     read; Uninitialized claims must never see a written one. *)
  List.iter
    (fun (u : F.use_site) ->
      match u.F.u_loc with
      | F.Scalar s -> (
          match u.F.u_status with
          | F.Initialized ->
              if Hashtbl.mem tr.t_read_unwritten (u.F.u_node, s) then
                failf "scalar %s claimed initialised at node %d but was \
                       concretely read unwritten"
                  s u.F.u_node
          | F.Uninitialized ->
              if Hashtbl.mem tr.t_read_written (u.F.u_node, s) then
                failf "scalar %s claimed never-initialised at node %d but \
                       was concretely read after a write"
                  s u.F.u_node
          | F.Maybe_uninitialized -> ())
      | _ -> ())
    sites;
  (* ... and every concrete unwritten read must be classified as not
     (provably) initialised. *)
  Hashtbl.iter
    (fun (n, s) () ->
      let flagged =
        List.exists
          (fun (u : F.use_site) ->
            u.F.u_node = n
            && F.equal_loc u.F.u_loc (F.Scalar s)
            && u.F.u_status <> F.Initialized)
          sites
      in
      if not flagged then
        failf "scalar %s concretely read unwritten at node %d but \
               use_before_def says Initialized (or missed the use)"
          s n)
    tr.t_read_unwritten;
  (* Liveness / anticipated: a store the analysis calls dead (or
     redundant) must never have an instance observed by a later read. *)
  Array.iter
    (fun (nd : F.node) ->
      if g.F.reachable.(nd.F.id) then
        match nd.F.kind with
        | F.Assign (Ast.Lvar s, _) ->
            if
              (not (F.live_at live.F.after.(nd.F.id) (F.Scalar s)))
              && Hashtbl.mem tr.t_observed nd.F.id
            then
              failf "store to %s at node %d is claimed dead but an \
                     instance was concretely read"
                s nd.F.id
        | F.Assign (Ast.Larr (a, _), _) -> (
            match F.defs_at g nd.F.id with
            | [ (F.Cell _ as l) ] -> (
                match ant.F.after.(nd.F.id) with
                | Some set when F.LocSet.mem l set ->
                    if Hashtbl.mem tr.t_observed nd.F.id then
                      failf "store to %s at node %d is claimed redundant \
                             but an instance was concretely read (or \
                             survived to exit)"
                        a nd.F.id
                | _ -> ())
            | _ -> ())
        | _ -> ()) g.F.nodes;
  (* End-to-end: a concrete uninitialised read implies Uninit reports
     something. *)
  if Hashtbl.length tr.t_read_unwritten > 0 then begin
    match Check.Uninit.check ~graph:g k with
    | [] -> failf "concrete uninitialised read but Check.Uninit is clean"
    | _ -> ()
  end;
  true

(* Random kernels with scalars, guards, reductions, possibly-dead
   temporaries and zero-trip loops — the shapes Helpers.gen_kernel
   (scalar-free perfect nests) cannot produce. *)
let gen_flow_kernel : Ast.kernel QCheck2.Gen.t =
  let open G in
  let* outer_trip = int_range 0 4 in
  let* inner_trip = option (int_range 0 3) in
  let* init_s = bool in
  let* tail_read = bool in
  let* guard_cut = int_range 0 3 in
  let* n_stmts = int_range 1 3 in
  let* picks = list_repeat n_stmts (pair (int_range 0 6) (int_range 0 2)) in
  let i = Ast.Var "i" in
  let sub kind =
    match kind with
    | 0 -> i
    | 1 when inner_trip <> None -> Ast.Bin (Ast.Add, i, Ast.Var "j")
    | _ -> Ast.Bin (Ast.Mul, Ast.Int 2, i)
  in
  let a s = Ast.Arr ("a", [ s ]) in
  let stmt (kind, sk) =
    let s = sub sk in
    match kind with
    | 0 -> Ast.Assign (Ast.Lvar "s", Ast.Bin (Ast.Add, Ast.Var "s", a s))
    | 1 -> Ast.Assign (Ast.Lvar "s", a s)
    | 2 -> Ast.Assign (Ast.Lvar "t", Ast.Bin (Ast.Add, a s, Ast.Int 1))
    | 3 -> Ast.Assign (Ast.Larr ("out", [ i ]), Ast.Bin (Ast.Add, Ast.Var "s", Ast.Var "p"))
    | 4 ->
        Ast.Assign
          (Ast.Larr ("out", [ i ]), Ast.Bin (Ast.Add, Ast.Arr ("out", [ i ]), a s))
    | 5 ->
        Ast.If
          ( Ast.Bin (Ast.Lt, i, Ast.Int guard_cut),
            [ Ast.Assign (Ast.Lvar "s", Ast.Bin (Ast.Add, Ast.Var "s", Ast.Int 1)) ],
            [] )
    | _ -> Ast.Assign (Ast.Lvar "s", Ast.Bin (Ast.Add, Ast.Bin (Ast.Mul, Ast.Var "s", Ast.Int 2), a s))
  in
  let inner = List.map stmt picks in
  let loop_body =
    match inner_trip with
    | None -> inner
    | Some t -> [ Ast.For (mk_loop "j" t inner) ]
  in
  let body =
    (if init_s then [ Ast.Assign (Ast.Lvar "s", Ast.Int 0) ] else [])
    @ [ Ast.For (mk_loop "i" outer_trip loop_body) ]
    @
    if tail_read then [ Ast.Assign (Ast.Larr ("out", [ Ast.Int 0 ]), Ast.Var "s") ]
    else []
  in
  return
    (mk_kernel "flowgen"
       ~arrays:[ Ast.array_decl "a" [ 8 ]; Ast.array_decl "out" [ 8 ] ]
       ~scalars:
         [
           Ast.scalar_decl "s";
           Ast.scalar_decl "t";
           Ast.scalar_decl ~kind:Ast.Param "p";
         ]
       body)

let test_soundness_random =
  Helpers.qtest "dataflow facts sound vs interpreter (random kernels)" ~count:300
    gen_flow_kernel
    (fun k -> soundness k)

let test_soundness_scalar_free =
  Helpers.qtest "dataflow facts sound vs interpreter (array nests)" ~count:100
    Helpers.gen_kernel
    (fun k -> soundness k)

let test_soundness_builtins () =
  List.iter
    (fun (name, k) ->
      Alcotest.(check bool) (name ^ " sound vs interpreter") true (soundness k))
    (all_builtin ())

(* The analyses stay sound on transformed code: Rotate, Register
   scalars, peel guards and tiled nests. *)
let test_soundness_transformed () =
  List.iter
    (fun (name, vec) ->
      let k = Option.get (Kernels.find name) in
      let vec = Transform.Unroll.clamp k.Ast.k_body vec in
      let opts = { Transform.Pipeline.default with vector = vec } in
      let r = Transform.Pipeline.apply opts k in
      Alcotest.(check bool)
        (name ^ " transformed kernel sound vs interpreter")
        true
        (soundness r.Transform.Pipeline.kernel))
    [ ("fir", [ ("i", 2); ("j", 2) ]); ("mm", [ ("i", 2); ("k", 2) ]);
      ("jac", [ ("i", 2) ]); ("sobel", [ ("i", 2); ("j", 2) ]) ]

(* ------------------------------------------------------------------ *)
(* Built-ins and gallery kernels are clean under the new passes *)

let test_builtins_clean () =
  List.iter
    (fun (name, k) ->
      let g = F.build k in
      let show ds = String.concat "; " (List.map (Diag.render ~file:name) ds) in
      let uninit = Check.Uninit.check ~graph:g k in
      let dead = Check.Deadstore.check ~graph:g k in
      Alcotest.(check string) (name ^ " no uninit findings") "" (show uninit);
      Alcotest.(check string) (name ^ " no deadstore findings") "" (show dead))
    (all_builtin ())

(* ------------------------------------------------------------------ *)
(* Legality: the flow-graph predicates agree with or strictly
   strengthen the dependence-only ones *)

let test_jam_equiv_scalar_free =
  Helpers.qtest "jam legality = dependence-only on scalar-free kernels" ~count:80
    Helpers.gen_kernel
    (fun k ->
      Check.Legality.jam_unroll_legal k
      = Check.Legality.jam_unroll_legal_dependence k)

let test_jam_implies_dependence =
  Helpers.qtest "strengthened jam legality implies dependence legality" ~count:150
    gen_flow_kernel
    (fun k ->
      (not (Check.Legality.jam_unroll_legal k))
      || Check.Legality.jam_unroll_legal_dependence k)

let test_replaceable_equiv_scalar_free =
  Helpers.qtest "replaceable = dependence-only on scalar-free kernels" ~count:80
    Helpers.gen_kernel
    (fun k ->
      List.for_all
        (fun gp ->
          Check.Legality.replaceable_group k gp
          = Check.Legality.replaceable_group_dependence k gp)
        (Analysis.Reuse.groups k.Ast.k_body))

(* A non-commutative scalar recurrence: invisible to the dependence
   test, caught by the flow-graph predicate. *)
let recurrence_kernel op =
  mk_kernel "rec"
    ~arrays:[ Ast.array_decl "a" [ 4; 4 ]; Ast.array_decl "out" [ 1 ] ]
    ~scalars:[ Ast.scalar_decl "s" ]
    [
      Ast.Assign (Ast.Lvar "s", Ast.Int 0);
      Ast.For
        (mk_loop "i" 4
           [
             Ast.For
               (mk_loop "j" 4
                  [
                    Ast.Assign
                      ( Ast.Lvar "s",
                        Ast.Bin
                          (Ast.Add, op (Ast.Var "s"), Ast.Arr ("a", [ Ast.Var "i"; Ast.Var "j" ]))
                      );
                  ]);
           ]);
      Ast.Assign (Ast.Larr ("out", [ Ast.Int 0 ]), Ast.Var "s");
    ]

let test_jam_scalar_recurrence () =
  let bad = recurrence_kernel (fun s -> Ast.Bin (Ast.Mul, s, Ast.Int 2)) in
  Alcotest.(check bool) "dependence test is blind to the recurrence" true
    (Check.Legality.jam_unroll_legal_dependence bad);
  Alcotest.(check bool) "flow-graph predicate rejects s = s*2 + a[i][j]" false
    (Check.Legality.jam_unroll_legal bad);
  (match Check.Legality.scalar_jam_hazard (F.build bad) with
  | Some (_, s) -> Alcotest.(check string) "hazard names the scalar" "s" s
  | None -> Alcotest.fail "expected a scalar jam hazard");
  let good = recurrence_kernel (fun s -> s) in
  Alcotest.(check bool) "plain reduction s = s + a[i][j] stays legal" true
    (Check.Legality.jam_unroll_legal good);
  Alcotest.(check bool) "no hazard on the reduction" true
    (Check.Legality.scalar_jam_hazard (F.build good) = None)

(* A foreign-pattern write into a read set's array: each read pair has
   consistent distances (dependence-only says replaceable), but a write
   through a different subscript pattern reaches the reads. *)
let test_replaceable_foreign_write () =
  let k =
    mk_kernel "foreign"
      ~arrays:[ Ast.array_decl "a" [ 8 ]; Ast.array_decl "out" [ 4 ] ]
      [
        Ast.For
          (mk_loop "i" 4
             [
               Ast.Assign
                 ( Ast.Larr ("out", [ Ast.Var "i" ]),
                   Ast.Bin
                     ( Ast.Add,
                       Ast.Arr ("a", [ Ast.Var "i" ]),
                       Ast.Arr ("a", [ Ast.Bin (Ast.Add, Ast.Var "i", Ast.Int 1) ]) ) );
               Ast.Assign
                 ( Ast.Larr ("a", [ Ast.Bin (Ast.Mul, Ast.Int 2, Ast.Var "i") ]),
                   Ast.Var "i" );
             ]);
      ]
  in
  let reads =
    List.filter
      (fun (g : Analysis.Reuse.group) ->
        g.Analysis.Reuse.array = "a" && List.length g.Analysis.Reuse.members > 1)
      (Analysis.Reuse.read_sets k.Ast.k_body)
  in
  match reads with
  | [ gp ] ->
      Alcotest.(check bool) "dependence-only predicate accepts the read set" true
        (Check.Legality.replaceable_group_dependence k gp);
      (match Check.Legality.replaceable_verdict k gp with
      | Check.Legality.Foreign_accesses _ -> ()
      | Check.Legality.Replaceable ->
          Alcotest.fail "foreign write a[2*i] not detected"
      | Check.Legality.Inconsistent_distances ->
          Alcotest.fail "unexpected inconsistent-distances verdict")
  | gs -> Alcotest.failf "expected one read set over a, got %d" (List.length gs)

(* ------------------------------------------------------------------ *)
(* Scalar replacement never introduces a dead store to its own
   registers, and never an uninitialised read *)

(* Dead stores to compiler-introduced registers. With
   [allow_priming_loads], stores whose right-hand side is a plain array
   read are exempt: those are the register bank initialisation loads,
   conservative by design (a guarded body store must preserve the
   original memory value), which the trip-aware CFG can prove dead when
   a write-only group's stores turn out to be unconditional. A dead
   *compute* store is never acceptable. *)
let register_dead_stores ?(allow_priming_loads = false) (tk : Ast.kernel) =
  let g = F.build tk in
  let live = F.live g in
  let dead = ref [] in
  Array.iter
    (fun (nd : F.node) ->
      if g.F.reachable.(nd.F.id) then
        match nd.F.kind with
        | F.Assign (Ast.Lvar _, Ast.Arr _) when allow_priming_loads -> ()
        | F.Assign (Ast.Lvar s, _) -> (
            match Ast.find_scalar tk s with
            | Some d when d.Ast.s_kind = Ast.Register ->
                if not (F.live_at live.F.after.(nd.F.id) (F.Scalar s)) then
                  dead := s :: !dead
            | _ -> ())
        | _ -> ()) g.F.nodes;
  !dead

let assert_no_register_deadstore name (tk : Ast.kernel) =
  let g = F.build tk in
  let live = F.live g in
  Array.iter
    (fun (nd : F.node) ->
      if g.F.reachable.(nd.F.id) then
        match nd.F.kind with
        | F.Assign (Ast.Lvar s, _) -> (
            match Ast.find_scalar tk s with
            | Some d when d.Ast.s_kind = Ast.Register ->
                if not (F.live_at live.F.after.(nd.F.id) (F.Scalar s)) then
                  failf "%s: scalar replacement introduced a dead store to \
                         register %s"
                    name s
            | _ -> ())
        | _ -> ()) g.F.nodes;
  match Diag.errors (Check.Uninit.check ~graph:g tk) with
  | [] -> ()
  | d :: _ ->
      failf "%s: transformed kernel has an uninit error: %s" name
        (Diag.render ~file:name d)

let transform_with k vec =
  let vec = Transform.Unroll.clamp k.Ast.k_body vec in
  let opts = { Transform.Pipeline.default with vector = vec } in
  (Transform.Pipeline.apply opts k).Transform.Pipeline.kernel

let test_scalar_replace_cross_check () =
  List.iter
    (fun (name, k) ->
      let spine = List.map (fun (l : Ast.loop) -> (l.Ast.index, 2)) (Loop_nest.spine k.Ast.k_body) in
      List.iter
        (fun vec -> assert_no_register_deadstore name (transform_with k vec))
        [ []; spine ])
    (all_builtin ())

(* Stage-local form of the cross-check for arbitrary random kernels: a
   source whose inner loop repeatedly overwrites the same output cell is
   already redundant, and unrolling legitimately turns that inherited
   redundancy into dead register stores — so the "never introduces one"
   claim is made of the scalar-replace stage itself, on store-clean
   input, and exempts the conservative bank-priming loads.
   Uninitialised reads must never appear, clean input or not. *)
let test_scalar_replace_cross_check_random =
  Helpers.qtest "scalar replace introduces no register dead stores (random)"
    ~count:60
    G.(Helpers.gen_kernel >>= fun k ->
       Helpers.gen_vector_for k >>= fun v -> return (k, v))
    (fun (k, vec) ->
      let vec = Transform.Unroll.clamp k.Ast.k_body vec in
      let opts = { Transform.Pipeline.default with vector = vec } in
      let staged = ref None in
      let observe stage ~before ~after =
        if stage = Transform.Pipeline.Scalar_replace then
          staged := Some (before, after)
      in
      let r = Transform.Pipeline.apply ~observe opts k in
      (match !staged with
      | Some (before, after) when Check.Deadstore.check before = [] -> (
          match register_dead_stores ~allow_priming_loads:true after with
          | [] -> ()
          | s :: _ ->
              failf "scalar replacement introduced a dead store to register \
                     %s on store-clean input"
                s)
      | _ -> ());
      (match
         Diag.errors (Check.Uninit.check r.Transform.Pipeline.kernel)
       with
      | [] -> ()
      | d :: _ ->
          failf "transformed kernel has an uninit error: %s"
            (Diag.render ~file:"rand" d));
      true)

(* ------------------------------------------------------------------ *)
(* Zero-trip regression: index_range is None, the body is unreachable,
   and no pass invents findings for code that never runs *)

let test_zero_trip_regression () =
  let l = mk_loop "i" 0 [ Ast.Assign (Ast.Larr ("out", [ Ast.Int 0 ]), Ast.Var "s") ] in
  Alcotest.(check (option (pair int int)))
    "index_range of for i in 0..0" None
    (Check.Bounds.index_range l);
  Alcotest.(check (option (pair int int)))
    "index_range of a non-positive step" None
    (Check.Bounds.index_range { l with Ast.step = 0 });
  let k =
    mk_kernel "zt"
      ~arrays:[ Ast.array_decl "out" [ 1 ] ]
      ~scalars:[ Ast.scalar_decl "s" ]
      [ Ast.For l ]
  in
  let g = F.build k in
  Alcotest.(check bool) "dead body kept but unreachable" false g.F.reachable.(2);
  Alcotest.(check int) "no uninit findings in dead code" 0
    (List.length (Check.Uninit.check ~graph:g k));
  Alcotest.(check int) "no deadstore findings in dead code" 0
    (List.length (Check.Deadstore.check ~graph:g k))

(* ------------------------------------------------------------------ *)
(* Run driver: deterministic ordering and the --fail-on threshold *)

let test_run_sorted_deterministic =
  Helpers.qtest "Run.all output is deterministically sorted" ~count:100
    gen_flow_kernel
    (fun k ->
      let ds = Check.Run.all k in
      let rec sorted = function
        | a :: (b :: _ as rest) ->
            Check.Run.compare_diag a b <= 0 && sorted rest
        | _ -> true
      in
      sorted ds
      && List.map (Diag.render ~file:"k") ds
         = List.map (Diag.render ~file:"k") (Check.Run.all k))

let test_fail_on_threshold () =
  (* a kernel with a warning-severity finding only: the dead temporary *)
  let k =
    mk_kernel "warnonly"
      ~arrays:[ Ast.array_decl "a" [ 8 ]; Ast.array_decl "out" [ 8 ] ]
      ~scalars:[ Ast.scalar_decl "t" ]
      [
        Ast.For
          (mk_loop "i" 8
             [
               Ast.Assign (Ast.Lvar "t", Ast.Bin (Ast.Add, Ast.Arr ("a", [ Ast.Var "i" ]), Ast.Int 1));
               Ast.Assign (Ast.Larr ("out", [ Ast.Var "i" ]), Ast.Arr ("a", [ Ast.Var "i" ]));
             ]);
      ]
  in
  let ds = Check.Run.all k in
  Alcotest.(check int) "warnings exit 1 by default" 1 (Check.Run.exit_code ds);
  Alcotest.(check int) "--fail-on=warning promotes to 2" 2
    (Check.Run.exit_code ~fail_on:Diag.Warning ds);
  (* an error-severity kernel is 2 under both thresholds *)
  let bad =
    mk_kernel "uninit"
      ~arrays:[ Ast.array_decl "out" [ 8 ] ]
      ~scalars:[ Ast.scalar_decl "s" ]
      [
        Ast.For
          (mk_loop "i" 8
             [ Ast.Assign (Ast.Larr ("out", [ Ast.Var "i" ]), Ast.Var "s") ]);
      ]
  in
  let bs = Check.Run.all bad in
  Alcotest.(check int) "errors exit 2" 2 (Check.Run.exit_code bs);
  Alcotest.(check int) "errors exit 2 under --fail-on=warning" 2
    (Check.Run.exit_code ~fail_on:Diag.Warning bs);
  (* clean kernels stay 0 under the tighter threshold *)
  let fir = Option.get (Kernels.find "fir") in
  Alcotest.(check int) "clean kernel stays 0 under --fail-on=warning" 0
    (Check.Run.exit_code ~fail_on:Diag.Warning (Check.Run.all fir))

let () =
  Alcotest.run "flowgraph"
    [
      ( "cfg-shape",
        [
          Alcotest.test_case "straight-line + for" `Quick test_cfg_straight_line_for;
          Alcotest.test_case "if join" `Quick test_cfg_if_join;
          Alcotest.test_case "zero-trip loop" `Quick test_cfg_zero_trip;
          Alcotest.test_case "empty body" `Quick test_cfg_empty_body;
        ] );
      ( "soundness",
        [
          test_soundness_random;
          test_soundness_scalar_free;
          Alcotest.test_case "built-ins + gallery" `Quick test_soundness_builtins;
          Alcotest.test_case "transformed built-ins" `Quick test_soundness_transformed;
          Alcotest.test_case "built-ins clean" `Quick test_builtins_clean;
        ] );
      ( "legality",
        [
          test_jam_equiv_scalar_free;
          test_jam_implies_dependence;
          test_replaceable_equiv_scalar_free;
          Alcotest.test_case "scalar recurrence vs reduction" `Quick
            test_jam_scalar_recurrence;
          Alcotest.test_case "foreign-pattern write" `Quick
            test_replaceable_foreign_write;
        ] );
      ( "cross-checks",
        [
          Alcotest.test_case "scalar replace: no register dead stores" `Quick
            test_scalar_replace_cross_check;
          test_scalar_replace_cross_check_random;
        ] );
      ( "driver",
        [
          Alcotest.test_case "zero-trip regression" `Quick test_zero_trip_regression;
          test_run_sorted_deterministic;
          Alcotest.test_case "--fail-on threshold" `Quick test_fail_on_threshold;
        ] );
    ]
